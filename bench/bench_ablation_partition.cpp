// Ablation: the paper's future-work partitioning improvements, quantified.
//
// §4 of the paper: "A tetrahedral mesh with a more regular connectivity
// pattern would allow better scaling in the matrix assembly process. The
// parallel decomposition … could be modified to account for the distribution
// of known displacements in order to improve the scaling of the solver."
// We compare the paper's node-balanced decomposition against the two
// proposed variants on the Fig. 7 workload.
#include <cstdio>

#include "common.h"

int main() {
  using namespace neuro;

  std::printf("== Ablation: mesh decomposition strategies (Fig. 7 workload) ==\n");
  const perf::PlatformModel platform = perf::deep_flow_cluster();
  bench::BrainProblem problem = bench::make_brain_problem(77511);
  std::printf("mesh: %d nodes → %d equations\n\n", problem.mesh.num_nodes(),
              problem.num_equations);

  struct Variant {
    const char* name;
    fem::PartitionKind kind;
  };
  const Variant variants[] = {
      {"node-balanced (paper)", fem::PartitionKind::kNodeBalanced},
      {"connectivity-balanced", fem::PartitionKind::kConnectivityBalanced},
      {"free-dof-balanced", fem::PartitionKind::kFreeNodeBalanced},
  };

  for (const int p : {4, 8, 16}) {
    std::printf("--- %d CPUs ---\n", p);
    std::printf("  %-24s | assemble(s) | solve(s) | imb(asm) | imb(slv)\n",
                "partitioner");
    for (const auto& v : variants) {
      fem::DeformationSolveOptions options;
      options.partition = v.kind;
      const bench::ScalingRow row =
          bench::run_scaling_point(problem, platform, p, options);
      std::printf("  %-24s | %11.2f | %8.2f | %8.2f | %8.2f\n", v.name,
                  row.assemble_s, row.solve_s, row.assemble_imbalance,
                  row.solve_imbalance);
    }
  }

  std::printf("\nexpected shape: connectivity-balancing lowers the assembly\n"
              "imbalance; free-dof balancing lowers the solve imbalance — the\n"
              "two effects the paper attributes its slow scaling to.\n");
  return 0;
}

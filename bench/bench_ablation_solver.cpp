// Ablation: Krylov method and preconditioner choice on the Fig. 7 system.
//
// The paper uses PETSc GMRES with block Jacobi preconditioning. This bench
// shows that configuration against the alternatives the same library offers
// (CG and BiCGStab; none/Jacobi/SSOR preconditioning), reporting iteration
// counts and predicted 8-CPU Deep Flow solve time.
#include <cstdio>

#include "common.h"

int main() {
  using namespace neuro;

  std::printf("== Ablation: solver / preconditioner (Fig. 7 system, 8 CPUs) ==\n");
  const perf::PlatformModel platform = perf::deep_flow_cluster();
  bench::BrainProblem problem = bench::make_brain_problem(77511);
  std::printf("mesh: %d nodes → %d equations\n\n", problem.mesh.num_nodes(),
              problem.num_equations);

  struct KrylovVariant {
    const char* name;
    fem::KrylovKind kind;
  };
  struct PrecondVariant {
    const char* name;
    solver::PreconditionerKind kind;
  };
  const KrylovVariant krylovs[] = {
      {"gmres(30)", fem::KrylovKind::kGmres},
      {"cg", fem::KrylovKind::kCg},
      {"bicgstab", fem::KrylovKind::kBicgstab},
  };
  const PrecondVariant preconds[] = {
      {"block-jacobi/ilu0 (paper)", solver::PreconditionerKind::kBlockJacobiIlu0},
      {"additive-schwarz/ilu0", solver::PreconditionerKind::kAdditiveSchwarzIlu0},
      {"block-jacobi/ic0", solver::PreconditionerKind::kBlockJacobiIc0},
      {"jacobi", solver::PreconditionerKind::kJacobi},
      {"ssor", solver::PreconditionerKind::kSsor},
      {"none", solver::PreconditionerKind::kNone},
  };

  std::printf("  %-10s %-26s | iterations | solve(s) predicted\n", "krylov",
              "preconditioner");
  for (const auto& k : krylovs) {
    for (const auto& m : preconds) {
      fem::DeformationSolveOptions options;
      options.krylov = k.kind;
      options.preconditioner = m.kind;
      options.solver.max_iterations = 4000;
      const bench::ScalingRow row = bench::run_scaling_point(
          problem, platform, 8, options, /*require_convergence=*/false);
      std::printf("  %-10s %-26s | %10d | %8.2f%s\n", k.name, m.name, row.iterations,
                  row.solve_s, row.converged ? "" : "  (did not converge)");
    }
  }

  std::printf("\nexpected shape: ILU(0) block preconditioning needs the fewest\n"
              "iterations for GMRES/BiCGStab (the paper's PETSc configuration);\n"
              "unpreconditioned Krylov is several times slower on this\n"
              "ill-conditioned near-incompressible elasticity system.\n"
              "note: CG stagnating under ILU(0) is the textbook caveat — an\n"
              "incomplete LU of an SPD non-M-matrix need not stay positive\n"
              "definite, which is why CG setups use IC/SSOR instead (and SSOR\n"
              "indeed gives CG its best time here).\n");
  return 0;
}

// Reproduces paper Fig. 4 quantitatively. The paper shows 2-D slices of the
// initial scan, the target scan, the simulated deformation, and their
// difference image, judging quality by the "very small intensity differences
// at the boundary of the simulated deformed brain". The phantom carries the
// exact deformation, so this bench reports the same intensity-difference
// evidence *and* true displacement error, rigid-only versus biomechanically
// simulated. (The example `neurosurgery_case` writes the actual slice images.)
//
// Expected shape: simulation beats rigid-only on boundary intensity MAD and
// on displacement residual; some interior misregistration remains (the paper
// reports the same, attributing it to the homogeneous material model).
#include <cstdio>
#include <cstring>
#include <iostream>

#include "core/evaluation.h"
#include "core/landmarks.h"
#include "core/pipeline.h"
#include "phantom/brain_phantom.h"

int main(int argc, char** argv) {
  using namespace neuro;

  // --bsr switches the FEM solve onto the block-CSR backend (docs/perf.md);
  // default output stays byte-comparable against the scalar reference runs.
  bool use_bsr = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--bsr") == 0) use_bsr = true;
  }

  std::printf("== Fig. 4: accuracy of the simulated deformation ==\n");
  phantom::PhantomConfig pcfg;
  pcfg.dims = {96, 96, 96};
  pcfg.spacing = {2.5, 2.5, 2.5};
  const phantom::ShiftConfig shift;  // 8 mm sinking + resection collapse
  const phantom::PhantomCase cas = phantom::make_case(pcfg, shift);
  std::printf("phantom: %d^3 voxels at %.1f mm, %.0f mm peak surface sinking\n",
              pcfg.dims.x, pcfg.spacing.x, shift.max_sink_mm);

  core::PipelineConfig config = core::default_pipeline_config();
  config.do_rigid_registration = false;  // same scanner frame, as in Fig. 4
  config.mesher.stride = 3;
  config.fem.nranks = 2;
  if (use_bsr) {
    std::printf("backend: block-CSR (overlapped halo exchange)\n");
    config.fem.backend = fem::MatrixBackend::kBsr;
  }
  const core::PipelineResult result =
      core::run_intraop_pipeline(cas.preop, cas.preop_labels, cas.intraop, config);
  NEURO_CHECK(result.fem.stats.converged);

  const core::AccuracyReport report = core::evaluate_against_truth(result, cas);
  core::print_report(report, std::cout);

  std::printf("\ntarget registration error at anatomical landmarks:\n");
  const core::TreReport tre =
      core::evaluate_landmarks(result, core::phantom_landmarks(cas));
  core::print_tre_report(tre, std::cout);

  std::printf("\npaper-shape checks:\n");
  std::printf("  boundary MAD improved by simulation: %s (%.2f -> %.2f)\n",
              report.mad_boundary_simulated < report.mad_boundary_rigid_only
                  ? "yes"
                  : "NO",
              report.mad_boundary_rigid_only, report.mad_boundary_simulated);
  std::printf("  displacement residual reduced:       %s (%.2f -> %.2f mm mean)\n",
              report.recovered_error.mean_mm < report.residual_rigid_only.mean_mm
                  ? "yes"
                  : "NO",
              report.residual_rigid_only.mean_mm, report.recovered_error.mean_mm);
  std::printf("  (interior misregistration persists near the resection cavity,\n"
              "   as the paper reports near the ventricles/falx)\n");
  return 0;
}

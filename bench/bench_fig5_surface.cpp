// Reproduces paper Fig. 5 numerically. The figure renders the deformed brain
// surface colored by displacement magnitude with arrows showing initial→final
// positions of surface points. This bench prints the distribution those
// renderings encode: surface displacement magnitudes overall and by height
// band, and the dominant direction (sinking) near the craniotomy. The example
// `neurosurgery_case` writes the OBJ surface + arrow CSV for actual rendering.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/pipeline.h"
#include "phantom/brain_phantom.h"

int main() {
  using namespace neuro;

  std::printf("== Fig. 5: surface deformation field ==\n");
  phantom::PhantomConfig pcfg;
  pcfg.dims = {80, 80, 80};
  pcfg.spacing = {3.0, 3.0, 3.0};
  const phantom::PhantomCase cas = phantom::make_case(pcfg, phantom::ShiftConfig{});

  core::PipelineConfig config = core::default_pipeline_config();
  config.do_rigid_registration = false;
  config.mesher.stride = 3;
  const core::PipelineResult result =
      core::run_intraop_pipeline(cas.preop, cas.preop_labels, cas.intraop, config);

  const auto& surface = result.surface_match.surface;
  const auto& disp = result.surface_match.displacements;

  double lo_z = 1e300, hi_z = -1e300;
  for (const auto& v : result.preop_surface.vertices) {
    lo_z = std::min(lo_z, v.z);
    hi_z = std::max(hi_z, v.z);
  }

  std::printf("surface: %d vertices, %d triangles\n", surface.num_vertices(),
              surface.num_triangles());

  // Magnitude histogram (the figure's color coding).
  std::vector<int> histogram(8, 0);
  double max_mag = 0.0, mean_mag = 0.0;
  for (const auto& d : disp) {
    const double m = norm(d);
    max_mag = std::max(max_mag, m);
    mean_mag += m;
    ++histogram[std::min<std::size_t>(static_cast<std::size_t>(m / 1.5),
                                      histogram.size() - 1)];
  }
  mean_mag /= static_cast<double>(disp.size());
  std::printf("displacement magnitude: mean %.2f mm, max %.2f mm\n", mean_mag, max_mag);
  std::printf("magnitude histogram (1.5 mm bins):");
  for (const int h : histogram) std::printf(" %d", h);
  std::printf("\n");

  // By height band (the paper's rendering shows the sinking concentrated at
  // the exposed top surface, fading toward the anchored base).
  std::printf("\n  height band | vertices | mean dz (mm) | mean |d| (mm)\n");
  for (int band = 0; band < 5; ++band) {
    const double z0 = lo_z + (hi_z - lo_z) * band / 5.0;
    const double z1 = lo_z + (hi_z - lo_z) * (band + 1) / 5.0;
    double sum_dz = 0.0, sum_m = 0.0;
    int n = 0;
    for (const mesh::VertId v : disp.ids()) {
      const double z = result.preop_surface.vertices[v].z;
      if (z < z0 || z >= z1) continue;
      sum_dz += disp[v].z;
      sum_m += norm(disp[v]);
      ++n;
    }
    std::printf("  %5.0f-%-5.0f | %8d | %12.2f | %12.2f\n", z0, z1, n,
                n ? sum_dz / n : 0.0, n ? sum_m / n : 0.0);
  }

  std::printf("\npaper-shape check: sinking (negative dz) dominates at the top "
              "band, base is static.\n");
  return 0;
}

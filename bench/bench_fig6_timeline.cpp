// Reproduces paper Fig. 6: the timeline of intraoperative image-processing
// actions (rigid registration → tissue classification → surface displacement
// → biomechanical simulation → visualization). Runs the full pipeline on a
// clinically-sized phantom and prints per-stage wall-clock on this host,
// including the ~0.5 s visualization resample the paper quotes.
//
// --json out.json      structured stage timings. Every row is a view over the
//                      same root obs::Span the human table prints, so the
//                      bench output and an exported trace cannot disagree.
// --trace-out t.json   enable tracing and export the merged Chrome trace.
// --dims N / --stride N / --ranks N   shrink or grow the phantom run (the
//                      defaults are the paper-shape 96³ / 3 / 2).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "core/pipeline.h"
#include "obs/trace.h"
#include "phantom/brain_phantom.h"

int main(int argc, char** argv) {
  using namespace neuro;

  std::string json_path;
  std::string trace_path;
  int dims = 96;
  int stride = 3;
  int ranks = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--dims") == 0 && i + 1 < argc) {
      dims = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--stride") == 0 && i + 1 < argc) {
      stride = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--ranks") == 0 && i + 1 < argc) {
      ranks = std::atoi(argv[++i]);
    } else {
      std::printf("usage: %s [--json out.json] [--trace-out trace.json] "
                  "[--dims N] [--stride N] [--ranks N]\n", argv[0]);
      return 2;
    }
  }
  if (!trace_path.empty()) obs::global().set_enabled(true);

  std::printf("== Fig. 6: intraoperative processing timeline ==\n");
  phantom::PhantomConfig pcfg;
  pcfg.dims = {dims, dims, dims};
  pcfg.spacing = {2.5, 2.5, 2.5};
  RigidTransform repositioning;
  repositioning.translation = {4.0, -2.0, 1.0};  // patient repositioning
  const phantom::PhantomCase cas =
      phantom::make_case(pcfg, phantom::ShiftConfig{}, repositioning);

  core::PipelineConfig config = core::default_pipeline_config();
  config.mesher.stride = stride;
  config.fem.nranks = ranks;
  const core::PipelineResult result =
      core::run_intraop_pipeline(cas.preop, cas.preop_labels, cas.intraop, config);

  std::printf("\n%-26s %10s\n", "action (during surgery)", "seconds");
  for (const auto& stage : result.timeline) {
    std::printf("%-26s %10.2f\n", stage.name.c_str(), stage.seconds);
  }
  std::printf("%-26s %10.2f\n", "total", result.total_seconds);

  std::printf("\nFEM stage detail: %d equations, %d GMRES iterations, "
              "assemble %.2f s + solve %.2f s (host wall)\n",
              result.fem.num_equations, result.fem.stats.iterations,
              result.fem.wall_assemble_s, result.fem.wall_solve_s);
  std::printf("paper-shape check: biomechanical simulation and resampling are "
              "interactive-scale;\nthe resample step is ~%.1f s (paper: ~0.5 s "
              "on 1999 hardware).\n",
              result.stage_seconds("visualization_resample"));

  if (!json_path.empty()) {
    std::ofstream os(json_path, std::ios::binary);
    if (!os) {
      std::printf("ERROR: cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    os << "{\n  \"dims\": " << dims << ",\n  \"stride\": " << stride
       << ",\n  \"ranks\": " << ranks << ",\n  \"stages\": [\n";
    for (std::size_t i = 0; i < result.timeline.size(); ++i) {
      const auto& stage = result.timeline[i];
      os << "    {\"name\": \"" << stage.name << "\", \"seconds\": "
         << stage.seconds << (i + 1 < result.timeline.size() ? "},\n" : "}\n");
    }
    os << "  ],\n  \"total_seconds\": " << result.total_seconds
       << ",\n  \"fem\": {\"equations\": " << result.fem.num_equations
       << ", \"iterations\": " << result.fem.stats.iterations
       << ", \"converged\": " << (result.fem.stats.converged ? "true" : "false")
       << "}\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!trace_path.empty()) {
    std::ofstream os(trace_path, std::ios::binary);
    if (!os) {
      std::printf("ERROR: cannot open %s for writing\n", trace_path.c_str());
      return 1;
    }
    obs::global().write_chrome_trace(os);
    std::printf("wrote %s (%zu trace events; open in ui.perfetto.dev)\n",
                trace_path.c_str(), obs::global().event_count());
  }
  return 0;
}

// Reproduces paper Fig. 6: the timeline of intraoperative image-processing
// actions (rigid registration → tissue classification → surface displacement
// → biomechanical simulation → visualization). Runs the full pipeline on a
// clinically-sized phantom and prints per-stage wall-clock on this host,
// including the ~0.5 s visualization resample the paper quotes.
#include <cstdio>

#include "core/pipeline.h"
#include "phantom/brain_phantom.h"

int main() {
  using namespace neuro;

  std::printf("== Fig. 6: intraoperative processing timeline ==\n");
  phantom::PhantomConfig pcfg;
  pcfg.dims = {96, 96, 96};
  pcfg.spacing = {2.5, 2.5, 2.5};
  RigidTransform repositioning;
  repositioning.translation = {4.0, -2.0, 1.0};  // patient repositioning
  const phantom::PhantomCase cas =
      phantom::make_case(pcfg, phantom::ShiftConfig{}, repositioning);

  core::PipelineConfig config = core::default_pipeline_config();
  config.mesher.stride = 3;
  config.fem.nranks = 2;
  const core::PipelineResult result =
      core::run_intraop_pipeline(cas.preop, cas.preop_labels, cas.intraop, config);

  std::printf("\n%-26s %10s\n", "action (during surgery)", "seconds");
  for (const auto& stage : result.timeline) {
    std::printf("%-26s %10.2f\n", stage.name.c_str(), stage.seconds);
  }
  std::printf("%-26s %10.2f\n", "total", result.total_seconds);

  std::printf("\nFEM stage detail: %d equations, %d GMRES iterations, "
              "assemble %.2f s + solve %.2f s (host wall)\n",
              result.fem.num_equations, result.fem.stats.iterations,
              result.fem.wall_assemble_s, result.fem.wall_solve_s);
  std::printf("paper-shape check: biomechanical simulation and resampling are "
              "interactive-scale;\nthe resample step is ~%.1f s (paper: ~0.5 s "
              "on 1999 hardware).\n",
              result.stage_seconds("visualization_resample"));
  return 0;
}

// Reproduces paper Fig. 7: timing for assembling, solving, and the sum of
// initialization, assembly and solve for a system of ~77,511 equations
// simulating brain deformation on the 16-node "Deep Flow" Alpha cluster
// (Fast Ethernet). Also prints the Fig. 3 platform table the model encodes.
//
// The SPMD algorithm really runs at each CPU count; times come from the
// calibrated platform model applied to the measured per-rank work
// (DESIGN.md §2 — this host has one core, a 1999 Alpha cluster does not fit
// in it). Expected shape: both curves descend sublinearly; assembly scaling
// limited by node-connectivity imbalance, solve scaling by the
// boundary-condition imbalance; total < 10 s at 16 CPUs.
#include <cstdio>

#include "common.h"

int main() {
  using namespace neuro;

  std::printf("== Fig. 7: ~77,511-equation brain deformation on Deep Flow ==\n");
  const perf::PlatformModel platform = perf::deep_flow_cluster();
  bench::print_platform_header(platform);

  bench::BrainProblem problem = bench::make_brain_problem(77511);
  std::printf("mesh: %d nodes, %d tets  →  %d equations (paper: 77,511)\n",
              problem.mesh.num_nodes(), problem.mesh.num_tets(),
              problem.num_equations);
  std::printf("fixed surface dofs: %zu of %d\n", 3 * problem.prescribed.size(),
              problem.num_equations);

  std::vector<bench::ScalingRow> rows;
  for (const int p : {1, 2, 4, 6, 8, 10, 12, 14, 16}) {
    rows.push_back(bench::run_scaling_point(problem, platform, p));
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  bench::print_scaling_table(rows);

  const auto& first = rows.front();
  const auto& last = rows.back();
  std::printf("\nassemble speedup at 16 CPUs: %.1fx   solve speedup: %.1fx\n",
              first.assemble_s / last.assemble_s, first.solve_s / last.solve_s);
  std::printf("16-CPU total (init+assemble+solve): %.1f s  —  paper: < 10 s\n",
              last.assemble_s + last.solve_s + last.init_s);
  return 0;
}

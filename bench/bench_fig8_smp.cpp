// Reproduces paper Fig. 8: assembling and solving the same ~77,511-equation
// system on (a) a Sun Ultra HPC 6000 SMP with 20 CPUs and (b) a cluster of
// two 4-CPU Sun Ultra 80 servers on Fast Ethernet. The paper's observation —
// "scaling performance similar to that obtained on the Deep Flow cluster,
// despite the differences in architectures" — is what the shapes should show.
#include <cstdio>

#include "common.h"

int main() {
  using namespace neuro;

  bench::BrainProblem problem = bench::make_brain_problem(77511);
  std::printf("mesh: %d nodes → %d equations (paper: 77,511)\n\n",
              problem.mesh.num_nodes(), problem.num_equations);

  std::printf("== Fig. 8a: Sun Ultra HPC 6000 SMP, 1–20 CPUs ==\n");
  const perf::PlatformModel smp = perf::ultra_hpc_6000();
  bench::print_platform_header(smp);
  std::vector<bench::ScalingRow> rows_a;
  for (const int p : {1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20}) {
    rows_a.push_back(bench::run_scaling_point(problem, smp, p));
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  bench::print_scaling_table(rows_a);

  std::printf("\n== Fig. 8b: 2x Sun Ultra 80 (4 CPUs each), Fast Ethernet ==\n");
  const perf::PlatformModel dual = perf::dual_ultra80_cluster();
  bench::print_platform_header(dual);
  std::vector<bench::ScalingRow> rows_b;
  for (const int p : {1, 2, 3, 4, 5, 6, 7, 8}) {
    rows_b.push_back(bench::run_scaling_point(problem, dual, p));
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  bench::print_scaling_table(rows_b);

  std::printf("\nsimilar-shape check (paper's key Fig. 8 observation):\n");
  std::printf("  SMP    assemble 1→8 CPUs: %.1fx   solve: %.1fx\n",
              rows_a[0].assemble_s / rows_a[4].assemble_s,
              rows_a[0].solve_s / rows_a[4].solve_s);
  std::printf("  2xU80  assemble 1→8 CPUs: %.1fx   solve: %.1fx\n",
              rows_b[0].assemble_s / rows_b[7].assemble_s,
              rows_b[0].solve_s / rows_b[7].solve_s);
  return 0;
}

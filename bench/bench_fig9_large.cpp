// Reproduces paper Fig. 9: assembling and solving a system of ~253,308
// equations (a 2.5x finer biomechanical model, anticipating heterogeneous
// brain structures) on the 20-CPU Sun Ultra HPC 6000. The paper's conclusion:
// even this system stays within a clinically compatible time frame.
#include <cstdio>

#include "common.h"

int main() {
  using namespace neuro;

  std::printf("== Fig. 9: ~253,308-equation system on Sun Ultra HPC 6000 ==\n");
  const perf::PlatformModel smp = perf::ultra_hpc_6000();
  bench::print_platform_header(smp);

  bench::BrainProblem problem = bench::make_brain_problem(253308);
  std::printf("mesh: %d nodes, %d tets → %d equations (paper: 253,308)\n",
              problem.mesh.num_nodes(), problem.mesh.num_tets(),
              problem.num_equations);

  std::vector<bench::ScalingRow> rows;
  for (const int p : {1, 2, 4, 8, 12, 16, 20}) {
    rows.push_back(bench::run_scaling_point(problem, smp, p));
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");
  bench::print_scaling_table(rows);

  const double total20 = rows.back().assemble_s + rows.back().solve_s + rows.back().init_s;
  std::printf("\n20-CPU total: %.1f s — the paper's conclusion: a system 2.5x "
              "larger than the\ncurrent model still assembles and solves in a "
              "clinically compatible time frame.\n", total20);
  return 0;
}

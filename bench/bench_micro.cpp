// Component micro-benchmarks (google-benchmark): per-kernel costs of every
// stage the pipeline is built from. These are host-hardware numbers, useful
// for spotting regressions and for sanity-checking the work accounting that
// feeds the platform models.
#include <benchmark/benchmark.h>
#include <algorithm>
#include <span>
#include <string>

#include "base/rng.h"
#include "core/deformation_field.h"
#include "fem/assembly.h"
#include "fem/boundary.h"
#include "fem/deformation_solver.h"
#include "fem/matrix_free.h"
#include "fem/strain.h"
#include "image/components.h"
#include "image/distance.h"
#include "image/filters.h"
#include "mesh/marching.h"
#include "mesh/mesher.h"
#include "mesh/refine.h"
#include "mesh/tri_surface.h"
#include "obs/trace.h"
#include "par/communicator.h"
#include "phantom/brain_phantom.h"
#include "reg/mutual_information.h"
#include "seg/intraop.h"
#include "solver/bsr_matrix.h"
#include "solver/krylov.h"
#include "solver/simd/block_kernels.h"
#include "solver/simd/dispatch.h"
#include "surface/active_surface.h"

namespace {

using namespace neuro;

const phantom::PhantomCase& shared_case() {
  static const phantom::PhantomCase cas = [] {
    phantom::PhantomConfig pc;
    pc.dims = {64, 64, 64};
    pc.spacing = {3.0, 3.0, 3.0};
    return phantom::make_case(pc, phantom::ShiftConfig{});
  }();
  return cas;
}

const mesh::TetMesh& shared_mesh() {
  static const mesh::TetMesh mesh = [] {
    mesh::MesherConfig mc;
    mc.stride = 2;
    mc.keep_labels = {3, 4, 5, 6};
    return mesh::mesh_labeled_volume(shared_case().preop_labels, mc);
  }();
  return mesh;
}

void BM_DistanceTransform(benchmark::State& state) {
  const auto& cas = shared_case();
  for (auto _ : state) {
    benchmark::DoNotOptimize(distance_to_label(cas.preop_labels, 3, 10.0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(cas.preop_labels.size()));
}
BENCHMARK(BM_DistanceTransform)->Unit(benchmark::kMillisecond);

void BM_GaussianSmooth(benchmark::State& state) {
  const auto& cas = shared_case();
  for (auto _ : state) {
    benchmark::DoNotOptimize(gaussian_smooth(cas.preop, 1.0));
  }
}
BENCHMARK(BM_GaussianSmooth)->Unit(benchmark::kMillisecond);

void BM_GradientMagnitude(benchmark::State& state) {
  const auto& cas = shared_case();
  for (auto _ : state) {
    benchmark::DoNotOptimize(gradient_magnitude(cas.preop));
  }
}
BENCHMARK(BM_GradientMagnitude)->Unit(benchmark::kMillisecond);

void BM_MutualInformation(benchmark::State& state) {
  const auto& cas = shared_case();
  reg::MiConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reg::mutual_information(cas.intraop, cas.preop, RigidTransform{}, cfg));
  }
}
BENCHMARK(BM_MutualInformation)->Unit(benchmark::kMillisecond);

void BM_KnnClassifyVolume(benchmark::State& state) {
  const auto& cas = shared_case();
  seg::IntraopSegmentationConfig cfg;
  cfg.classes = {0, 1, 2, 3, 4};
  cfg.exclude_classes = {5, 6};
  cfg.dt_saturation_mm = 10.0;
  cfg.dt_weight = 1.5;
  const seg::FeatureStack stack =
      seg::build_feature_stack(cas.intraop, cas.preop_labels, cfg);
  Rng rng(1);
  const seg::KnnClassifier knn(
      seg::select_prototypes_robust(cas.preop_labels, stack, cfg.prototypes_per_class,
                                    rng, cfg.exclude_classes, 6.0, 4.0),
      cfg.k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(knn.classify_volume(stack));
  }
}
BENCHMARK(BM_KnnClassifyVolume)->Unit(benchmark::kMillisecond);

void BM_MeshLabeledVolume(benchmark::State& state) {
  const auto& cas = shared_case();
  mesh::MesherConfig mc;
  mc.stride = static_cast<int>(state.range(0));
  mc.keep_labels = {3, 4, 5, 6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mesh::mesh_labeled_volume(cas.preop_labels, mc));
  }
}
BENCHMARK(BM_MeshLabeledVolume)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ElementStiffness(benchmark::State& state) {
  const auto D = fem::elasticity_matrix(fem::Material{3000, 0.45});
  const auto elem =
      fem::TetElement::from_vertices({0, 0, 0}, {2, 0.1, 0}, {0.3, 1.9, 0.1},
                                     {0.2, 0.3, 2.1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(elem.stiffness(D));
  }
}
BENCHMARK(BM_ElementStiffness);

void BM_AssembleElasticity(benchmark::State& state) {
  const auto& mesh = shared_mesh();
  const fem::MeshTopology topo = fem::MeshTopology::build(mesh);
  const auto materials = fem::MaterialMap::homogeneous_brain();
  const auto part = mesh::partition_node_balanced(mesh.num_nodes(), 1);
  for (auto _ : state) {
    par::run_spmd(1, [&](par::Communicator& comm) {
      benchmark::DoNotOptimize(
          fem::assemble_elasticity(mesh, topo, materials, part, {}, comm));
    });
  }
  state.SetItemsProcessed(state.iterations() * mesh.num_tets());
}
BENCHMARK(BM_AssembleElasticity)->Unit(benchmark::kMillisecond);

struct SolveFixture {
  mesh::TetMesh mesh;
  fem::MeshTopology topo;
  fem::MaterialMap materials = fem::MaterialMap::homogeneous_brain();
  fem::LocalSystem system;
  std::unique_ptr<solver::Preconditioner> precond;

  SolveFixture()
      : mesh(shared_mesh()),
        topo(fem::MeshTopology::build(mesh)),
        system(make_system()) {
    precond = solver::make_preconditioner(
        solver::PreconditionerKind::kBlockJacobiIlu0, system.A);
  }

  fem::LocalSystem make_system() {
    const auto part = mesh::partition_node_balanced(mesh.num_nodes(), 1);
    fem::LocalSystem sys = [&] {
      const solver::RowRange unit{solver::GlobalRow{0}, solver::GlobalRow{1}};
      fem::LocalSystem built{
          solver::DistCsrMatrix(1, unit, {0, 0}, {}, {}),
          solver::DistVector(1, unit)};
      par::run_spmd(1, [&](par::Communicator& comm) {
        built = fem::assemble_elasticity(mesh, topo, materials, part, {}, comm);
      });
      return built;
    }();
    // Fix the boundary so the operator is definite.
    const auto surface = mesh::extract_boundary_surface(mesh, {3, 4, 5, 6});
    std::vector<std::pair<mesh::NodeId, Vec3>> bc_nodes;
    for (const auto n : surface.mesh_nodes) bc_nodes.emplace_back(n, Vec3{});
    const auto bc = fem::DirichletSet::from_node_displacements(bc_nodes);
    par::run_spmd(1, [&](par::Communicator& comm) { apply_dirichlet(sys, bc, comm); });
    return sys;
  }
};

void BM_SpMV(benchmark::State& state) {
  static SolveFixture fixture;
  par::run_spmd(1, [&](par::Communicator& comm) {
    solver::DistVector x(fixture.system.b.global_size(), fixture.system.b.range(), 1.0);
    solver::DistVector y(fixture.system.b.global_size(), fixture.system.b.range());
    for (auto _ : state) {
      fixture.system.A.apply(x, y, comm);
      benchmark::DoNotOptimize(y.local().data());
    }
  });
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(fixture.system.A.local_nnz()));
  // Same traffic estimate the work accounting charges: value + index + x + y.
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<long>(12.0 * static_cast<double>(fixture.system.A.local_nnz()) +
                        16.0 * fixture.system.A.local_rows()));
}
BENCHMARK(BM_SpMV)->Unit(benchmark::kMillisecond);

// Block-CSR counterpart of BM_SpMV on the same assembled system: one column
// index per 3x3 block and register-blocked rows. The perf-smoke CI job tracks
// the bytes_per_second ratio of the two (expected well above 1.5x).
void BM_BsrSpMV(benchmark::State& state) {
  static SolveFixture fixture;
  static const solver::DistBsrMatrix bsr =
      solver::DistBsrMatrix::from_csr(fixture.system.A);
  par::run_spmd(1, [&](par::Communicator& comm) {
    solver::DistVector x(fixture.system.b.global_size(), fixture.system.b.range(), 1.0);
    solver::DistVector y(fixture.system.b.global_size(), fixture.system.b.range());
    for (auto _ : state) {
      bsr.apply(x, y, comm);
      benchmark::DoNotOptimize(y.local().data());
    }
  });
  state.SetItemsProcessed(state.iterations() * static_cast<long>(bsr.local_nnz()));
  state.SetBytesProcessed(
      state.iterations() *
      static_cast<long>(76.0 * static_cast<double>(bsr.local_blocks()) +
                        16.0 * bsr.local_rows()));
}
BENCHMARK(BM_BsrSpMV)->Unit(benchmark::kMillisecond);

// Matrix-free operator apply on the post-BC system, one rank. storage picks
// the policy (0 = node-pair blocks, 1 = element blocks, 2 = on-the-fly);
// scalar:1 forces kScalar dispatch, under which the node-pair policy
// delegates to the DistBsrMatrix kernel — i.e. storage:0/scalar:1 IS the BSR
// baseline on the identical dropped matrix, and the perf-smoke CI gate
// requires storage:0/scalar:0 to beat it by >= 1.3x in rows/s
// (tools/perf/check_bench_solver.py). The label records the resolved
// dispatch target and policy for the CI job log.
void BM_MatrixFreeApply(benchmark::State& state) {
  const auto storage = static_cast<fem::MatrixFreeStorage>(state.range(0));
  const auto dispatch = state.range(1) != 0
                            ? solver::simd::DispatchTarget::kScalar
                            : solver::simd::DispatchTarget::kAuto;
  const auto& mesh = shared_mesh();
  const fem::MeshTopology topo = fem::MeshTopology::build(mesh);
  const auto materials = fem::MaterialMap::homogeneous_brain();
  const auto part = mesh::partition_node_balanced(mesh.num_nodes(), 1);
  const auto surface = mesh::extract_boundary_surface(mesh, {3, 4, 5, 6});
  std::vector<std::pair<mesh::NodeId, Vec3>> bc_nodes;
  for (const auto n : surface.mesh_nodes) bc_nodes.emplace_back(n, Vec3{});
  const auto bc = fem::DirichletSet::from_node_displacements(bc_nodes);

  long rows = 0;
  par::run_spmd(1, [&](par::Communicator& comm) {
    fem::LocalMatrixFreeSystem sys = fem::assemble_elasticity_matrix_free(
        mesh, topo, materials, part, {}, comm, storage, dispatch);
    sys.A.apply_dirichlet(bc, sys.b, comm);
    sys.A.finalize(comm);
    solver::DistVector x(sys.b.global_size(), sys.b.range(), 1.0);
    solver::DistVector y(sys.b.global_size(), sys.b.range());
    for (auto _ : state) {
      sys.A.apply(x, y, comm);
      benchmark::DoNotOptimize(y.local().data());
    }
    rows = sys.b.local_size();
    state.SetLabel(std::string(fem::matrix_free_storage_name(sys.A.storage())) +
                   "/" +
                   std::string(solver::simd::dispatch_target_name(sys.A.dispatch())));
  });
  // Rows per second: every variant applies the same operator to the same
  // vector, so rows/s ratios are direct speedups.
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_MatrixFreeApply)
    ->Args({0, 1})
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({2, 0})
    ->ArgNames({"storage", "scalar"})
    ->Unit(benchmark::kMillisecond);

// The symmetric-upper 3x3 block kernel in isolation on a synthetic banded
// pattern (diagonal first, then 8 upper neighbours — ~12 logical blocks/row,
// the smoke mesh's density). scalar:1 runs the NEURO_BITEXACT fallback;
// scalar:0 the best vector ISA. The CI gate requires >= 1.5x and auto-skips
// when the machine resolves kAuto to kScalar (label carries the target).
void BM_SimdBlockKernel(benchmark::State& state) {
  const auto target = state.range(0) != 0
                          ? solver::simd::DispatchTarget::kScalar
                          : solver::simd::resolve_dispatch_target(
                                solver::simd::DispatchTarget::kAuto);
  // Sized to sit in L2 (~0.7 MB of block values): the gate measures kernel
  // arithmetic, not DRAM bandwidth — the full-matrix regime is what
  // BM_MatrixFreeApply covers.
  constexpr int kRows = 1024;
  constexpr int kUpper = 8;
  std::vector<std::int32_t> row_ptr(kRows + 1, 0);
  std::vector<std::int32_t> cols;
  for (int n = 0; n < kRows; ++n) {
    cols.push_back(n);  // diagonal first (kernel contract)
    for (int k = 1; k <= kUpper && n + k < kRows; ++k) cols.push_back(n + k);
    row_ptr[static_cast<std::size_t>(n) + 1] = static_cast<std::int32_t>(cols.size());
  }
  Rng rng(42);
  std::vector<double> valuesT(cols.size() * 9 + 4);
  for (double& v : valuesT) v = rng.uniform(-1.0, 1.0);
  std::vector<double> xg(static_cast<std::size_t>(kRows) * 3 + 1, 1.0);
  std::vector<double> y(static_cast<std::size_t>(kRows) * 3, 0.0);
  for (auto _ : state) {
    std::fill(y.begin(), y.end(), 0.0);
    solver::simd::block3_sym_apply(target, valuesT.data(), row_ptr.data(),
                                   cols.data(), kRows, xg.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.SetLabel(std::string(solver::simd::dispatch_target_name(target)));
  // Logical blocks applied: each stored off-diagonal serves two.
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<long>(2 * cols.size() - static_cast<std::size_t>(kRows)));
}
BENCHMARK(BM_SimdBlockKernel)->Arg(1)->Arg(0)->ArgName("scalar");

// Collectives per GMRES iteration, measured from the runtime's own work
// records on a 2-rank partitioned solve. Modified Gram-Schmidt pays j+2
// allreduces in iteration j (O(m^2) per restart cycle); classical pays a
// flat 1 (plus the occasional cancellation-guard norm), O(m) per cycle. The
// perf-smoke CI job records both counters into BENCH_solver.json.
void BM_GmresAllreduces(benchmark::State& state) {
  const bool classical = state.range(0) != 0;
  const auto& mesh = shared_mesh();
  const fem::MeshTopology topo = fem::MeshTopology::build(mesh);
  const auto materials = fem::MaterialMap::homogeneous_brain();
  constexpr int kRanks = 2;
  const auto part = mesh::partition_node_balanced(mesh.num_nodes(), kRanks);
  const auto surface = mesh::extract_boundary_surface(mesh, {3, 4, 5, 6});
  std::vector<std::pair<mesh::NodeId, Vec3>> bc_nodes;
  for (const auto n : surface.mesh_nodes) {
    bc_nodes.emplace_back(n, Vec3{0.5, 0.0, -0.5});
  }
  const auto bc = fem::DirichletSet::from_node_displacements(bc_nodes);

  double rounds = 0.0;
  int iterations = 0;
  for (auto _ : state) {
    par::run_spmd(kRanks, [&](par::Communicator& comm) {
      fem::LocalSystem sys =
          fem::assemble_elasticity(mesh, topo, materials, part, {}, comm);
      fem::apply_dirichlet(sys, bc, comm);
      sys.A.drop_zeros();
      sys.A.setup_ghosts(comm);
      const auto M = solver::make_preconditioner(
          solver::PreconditionerKind::kBlockJacobiIlu0, sys.A, comm, 1);
      solver::DistVector x(sys.b.global_size(), sys.b.range());
      solver::SolverConfig cfg;
      cfg.gmres_orthogonalization = classical
                                        ? solver::GramSchmidtKind::kClassical
                                        : solver::GramSchmidtKind::kModified;
      comm.work().take();  // isolate the solve's collectives
      const auto stats = solver::gmres(sys.A, sys.b, x, *M, cfg, comm);
      const par::WorkRecord w = comm.work().take();
      if (comm.rank() == 0) {
        rounds = w.coll_rounds;
        iterations = stats.iterations;
      }
    });
    benchmark::DoNotOptimize(rounds);
  }
  state.counters["allreduces_per_iter"] =
      rounds / static_cast<double>(std::max(1, iterations));
  state.counters["iterations"] = iterations;
}
BENCHMARK(BM_GmresAllreduces)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("cgs")
    ->Unit(benchmark::kMillisecond);

void BM_Ilu0Apply(benchmark::State& state) {
  static SolveFixture fixture;
  par::run_spmd(1, [&](par::Communicator& comm) {
    solver::DistVector r(fixture.system.b.global_size(), fixture.system.b.range(), 1.0);
    solver::DistVector z(fixture.system.b.global_size(), fixture.system.b.range());
    for (auto _ : state) {
      fixture.precond->apply(r, z, comm);
      benchmark::DoNotOptimize(z.local().data());
    }
  });
}
BENCHMARK(BM_Ilu0Apply)->Unit(benchmark::kMillisecond);

void BM_ActiveSurfaceIteration(benchmark::State& state) {
  const auto& cas = shared_case();
  const auto surface = mesh::extract_boundary_surface(shared_mesh(), {3, 4, 5, 6});
  const ImageL mask = seg::mask_of_labels(cas.intraop_labels, {3, 4, 5, 6});
  const ImageF sdf = signed_distance_to_label(mask, 1, 30.0);
  surface::ActiveSurfaceConfig cfg;
  cfg.max_iterations = 1;
  cfg.convergence_mm = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(surface::deform_to_distance_field(surface, sdf, cfg));
  }
  state.SetItemsProcessed(state.iterations() * surface.num_vertices());
}
BENCHMARK(BM_ActiveSurfaceIteration)->Unit(benchmark::kMillisecond);

void BM_RasterizeDisplacements(benchmark::State& state) {
  const auto& mesh = shared_mesh();
  const auto& cas = shared_case();
  std::vector<Vec3> u(static_cast<std::size_t>(mesh.num_nodes()), Vec3{1, 0, 0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::rasterize_displacements(mesh, u, cas.preop));
  }
}
BENCHMARK(BM_RasterizeDisplacements)->Unit(benchmark::kMillisecond);

void BM_WarpBackward(benchmark::State& state) {
  const auto& cas = shared_case();
  const ImageV field(cas.preop.dims(), Vec3{1, 0.5, -0.5}, cas.preop.spacing(),
                     cas.preop.origin());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::warp_backward(cas.preop, field));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(cas.preop.size()));
}
BENCHMARK(BM_WarpBackward)->Unit(benchmark::kMillisecond);

void BM_InvertField(benchmark::State& state) {
  const auto& cas = shared_case();
  ImageV field(cas.preop.dims(), Vec3{}, cas.preop.spacing(), cas.preop.origin());
  for (std::size_t i = 0; i < field.size(); ++i) {
    field.data()[i] = cas.true_backward_shift.data()[i];
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::invert_displacement_field(field, 8));
  }
}
BENCHMARK(BM_InvertField)->Unit(benchmark::kMillisecond);

void BM_RefineUniform(benchmark::State& state) {
  const auto& mesh = shared_mesh();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mesh::refine_uniform(mesh));
  }
  state.SetItemsProcessed(state.iterations() * mesh.num_tets());
}
BENCHMARK(BM_RefineUniform)->Unit(benchmark::kMillisecond);

void BM_MarchingTetrahedra(benchmark::State& state) {
  const auto& cas = shared_case();
  const ImageL mask = seg::mask_of_labels(cas.intraop_labels, {3, 4, 5, 6});
  const ImageF sdf = signed_distance_to_label(mask, 1, 1e6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mesh::marching_tetrahedra(sdf, 0.0));
  }
}
BENCHMARK(BM_MarchingTetrahedra)->Unit(benchmark::kMillisecond);

void BM_ConnectedComponents(benchmark::State& state) {
  const auto& cas = shared_case();
  const ImageL mask = seg::mask_of_labels(cas.intraop_labels, {3, 4, 5, 6});
  for (auto _ : state) {
    benchmark::DoNotOptimize(keep_largest_component(mask));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(mask.size()));
}
BENCHMARK(BM_ConnectedComponents)->Unit(benchmark::kMillisecond);

void BM_Ic0Apply(benchmark::State& state) {
  static SolveFixture fixture;
  static const solver::BlockJacobiIc0 ic(fixture.system.A);
  par::run_spmd(1, [&](par::Communicator& comm) {
    solver::DistVector r(fixture.system.b.global_size(), fixture.system.b.range(), 1.0);
    solver::DistVector z(fixture.system.b.global_size(), fixture.system.b.range());
    for (auto _ : state) {
      ic.apply(r, z, comm);
      benchmark::DoNotOptimize(z.local().data());
    }
  });
}
BENCHMARK(BM_Ic0Apply)->Unit(benchmark::kMillisecond);

void BM_ElementStrains(benchmark::State& state) {
  const auto& mesh = shared_mesh();
  std::vector<Vec3> u(static_cast<std::size_t>(mesh.num_nodes()));
  for (const mesh::NodeId n : mesh.node_ids()) {
    const Vec3& p = mesh.nodes[n];
    u[n.index()] = Vec3{0.01 * p.z, 0.0, -0.02 * p.z};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fem::element_strains(mesh, u));
  }
  state.SetItemsProcessed(state.iterations() * mesh.num_tets());
}
BENCHMARK(BM_ElementStrains)->Unit(benchmark::kMillisecond);

void BM_HistogramMatch(benchmark::State& state) {
  const auto& cas = shared_case();
  for (auto _ : state) {
    benchmark::DoNotOptimize(match_histogram(cas.intraop, cas.preop));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(cas.intraop.size()));
}
BENCHMARK(BM_HistogramMatch)->Unit(benchmark::kMillisecond);

// Communicator micro-benchmarks: the cost of a collective round on the
// threads-as-ranks runtime, with and without collective-order verification
// (par/verify.h). The disabled-verifier numbers must stay within noise of the
// pre-verifier runtime — the only added work is one predictable branch.
par::SpmdOptions comm_opts(bool verified) {
  par::SpmdOptions o;
  o.verify = verified ? par::SpmdOptions::Verify::kOn : par::SpmdOptions::Verify::kOff;
  return o;
}

void BM_CommBarrier(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  const bool verified = state.range(1) != 0;
  constexpr int kOpsPerBatch = 1000;
  for (auto _ : state) {
    par::run_spmd(
        P, [&](par::Communicator& comm) {
          for (int i = 0; i < kOpsPerBatch; ++i) comm.barrier();
        },
        comm_opts(verified));
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerBatch);
}
BENCHMARK(BM_CommBarrier)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->ArgNames({"ranks", "verify"})
    ->Unit(benchmark::kMillisecond);

void BM_CommAllreduce(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  const bool verified = state.range(1) != 0;
  constexpr int kOpsPerBatch = 500;
  for (auto _ : state) {
    par::run_spmd(
        P, [&](par::Communicator& comm) {
          double v = comm.rank();
          for (int i = 0; i < kOpsPerBatch; ++i) {
            v = comm.allreduce_sum(v) / P;
          }
          benchmark::DoNotOptimize(v);
        },
        comm_opts(verified));
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerBatch);
}
BENCHMARK(BM_CommAllreduce)
    ->Args({4, 0})
    ->Args({4, 1})
    ->ArgNames({"ranks", "verify"})
    ->Unit(benchmark::kMillisecond);

void BM_CommSendRecvPingPong(benchmark::State& state) {
  const bool verified = state.range(0) != 0;
  constexpr int kOpsPerBatch = 500;
  const std::vector<double> payload(64, 1.0);
  for (auto _ : state) {
    par::run_spmd(
        2, [&](par::Communicator& comm) {
          for (int i = 0; i < kOpsPerBatch; ++i) {
            if (comm.rank() == 0) {
              comm.send(1, 0, std::span<const double>(payload.data(), payload.size()));
              benchmark::DoNotOptimize(comm.recv<double>(1, 1));
            } else {
              benchmark::DoNotOptimize(comm.recv<double>(0, 0));
              comm.send(0, 1, std::span<const double>(payload.data(), payload.size()));
            }
          }
        },
        comm_opts(verified));
  }
  state.SetItemsProcessed(state.iterations() * kOpsPerBatch);
}
BENCHMARK(BM_CommSendRecvPingPong)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("verify")
    ->Unit(benchmark::kMillisecond);

void BM_SsdMetric(benchmark::State& state) {
  const auto& cas = shared_case();
  reg::MiConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg::mean_squared_difference(cas.intraop, cas.preop,
                                                          RigidTransform{}, cfg));
  }
}
BENCHMARK(BM_SsdMetric)->Unit(benchmark::kMillisecond);

// Span cost on the instrumented hot paths. enabled:0 is the clinical default
// — one relaxed atomic load and an inert Span, the price every Krylov
// iteration and comm op pays permanently; enabled:1 adds two steady_clock
// reads and a lock-free stream append. tools/perf/check_bench_solver.py gates
// the disabled path against the enabled one so instrumentation can never
// quietly grow a cost on runs that aren't being traced.
void BM_SpanOverhead(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  obs::Tracer tracer(enabled);
  std::size_t count = 0;
  for (auto _ : state) {
    {
      obs::Span span = tracer.span("bench.span");
      benchmark::DoNotOptimize(span);
    }
    // Recorded events accumulate; drain periodically OUTSIDE the timed region
    // so long benchmark runs stay memory-bounded without polluting the
    // measurement (the per-stream cap would otherwise truncate silently).
    if (enabled && ++count % 65536 == 0) {
      state.PauseTiming();
      tracer.clear();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanOverhead)->Arg(0)->Arg(1)->ArgName("enabled");

// The attribute-carrying variant the solver loops use: span + three attrs
// (ints and a double), matching the per-iteration telemetry payload.
void BM_SpanWithAttrsOverhead(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  obs::Tracer tracer(enabled);
  std::size_t count = 0;
  for (auto _ : state) {
    {
      obs::Span span = tracer.span("bench.iteration");
      if (span.active()) {
        span.attr("iteration", static_cast<std::int64_t>(count));
        span.attr("residual", 1e-5);
        span.attr("allreduces", 3);
      }
      benchmark::DoNotOptimize(span);
    }
    if (enabled && ++count % 65536 == 0) {
      state.PauseTiming();
      tracer.clear();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanWithAttrsOverhead)->Arg(0)->Arg(1)->ArgName("enabled");

// Flight-recorder ring mode (obs::FlightRecorder): same attr-carrying span
// as BM_SpanWithAttrsOverhead but recording into a bounded ring that wraps
// in place of the grow-then-truncate legacy path. No periodic drain is
// needed — wrapping IS the steady state, which is exactly the cost the gate
// in tools/perf/check_bench_solver.py bounds (enabled <= 2x the legacy
// attr-span bound; disabled unchanged at the inert-span bound).
void BM_RingRecordOverhead(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  obs::Tracer::Options options;
  options.ring_capacity = 4096;
  obs::Tracer tracer(enabled, options);
  std::int64_t count = 0;
  for (auto _ : state) {
    {
      obs::Span span = tracer.span("bench.iteration");
      if (span.active()) {
        span.attr("iteration", count);
        span.attr("residual", 1e-5);
        span.attr("allreduces", 3);
      }
      benchmark::DoNotOptimize(span);
    }
    ++count;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingRecordOverhead)->Arg(0)->Arg(1)->ArgName("enabled");

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the stock `library_build_type`
// context key reports how the *benchmark library* was compiled (the system
// package ships a debug build), not how this binary — the code under test —
// was compiled. tools/perf/check_bench_solver.py gates on the key we emit
// here, which reflects the translation unit's own optimization state.
int main(int argc, char** argv) {
#if defined(NDEBUG) && defined(__OPTIMIZE__)
  benchmark::AddCustomContext("neuro_build_type", "release");
#else
  benchmark::AddCustomContext("neuro_build_type", "debug");
#endif
  benchmark::AddCustomContext(
      "neuro_simd_target",
      std::string(neuro::solver::simd::dispatch_target_name(
          neuro::solver::simd::resolve_dispatch_target(
              neuro::solver::simd::DispatchTarget::kAuto))));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

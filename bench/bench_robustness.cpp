// Robustness study (extension): the paper notes that clinical viability
// "relies upon [the methods] being sufficiently robust to provide accurate
// results for typical clinical cases" and defers validation to more cases.
// The phantom makes a systematic sweep possible: vary image noise and
// deformation magnitude, run the full pipeline, and report accuracy.
//
// Expected shape: accuracy degrades gracefully with noise; the simulation
// keeps beating rigid-only registration across the clinical range of brain
// shift (a few mm to ~1.5 cm peak).
//
// Second section (docs/robustness.md): seeded fault campaigns against the
// degradation ladder. For each fault class this reports the time to a
// *usable* (validated) field and the ladder rung that produced it — the
// operative robustness metric: not "did the solve succeed" but "how fast did
// the surgeon get a field they can trust, and at what fidelity".
//
// Usage:
//   bench_robustness                      # noise sweep + fault section
//   bench_robustness --faults drop,stall  # restrict the fault campaigns
//   bench_robustness --faults none --json out.json
//       # machine-readable fault section only (CI; an env campaign from
//       # NEURO_FAULT_INJECT may still inject into the "none" run)
//   bench_robustness --faults drop --json out.json --postmortem-dir DIR
//       # additionally arm the flight recorder: campaigns that climb the
//       # degradation ladder leave post-mortem bundles in DIR
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "base/stopwatch.h"
#include "core/evaluation.h"
#include "core/landmarks.h"
#include "core/pipeline.h"
#include "fem/degradation.h"
#include "mesh/mesher.h"
#include "mesh/tri_surface.h"
#include "obs/flight_recorder.h"
#include "phantom/brain_phantom.h"

namespace {

using namespace neuro;

void noise_sweep() {
  std::printf("== Robustness sweep: noise level x deformation magnitude ==\n");
  std::printf(
      " noise | sink(mm) | residual(mm) | recovered(mm) | TRE rigid/sim (mm) | "
      "Dice  | converged\n");

  for (const double noise : {1.5, 3.0, 6.0, 9.0}) {
    for (const double sink : {4.0, 8.0, 12.0}) {
      phantom::PhantomConfig pc;
      pc.dims = {64, 64, 64};
      pc.spacing = {2.5, 2.5, 2.5};
      pc.noise_sigma = noise;
      phantom::ShiftConfig shift;
      shift.max_sink_mm = sink;
      const auto cas = phantom::make_case(pc, shift);

      core::PipelineConfig config = core::default_pipeline_config();
      config.do_rigid_registration = false;
      config.mesher.stride = 3;
      const auto result = core::run_intraop_pipeline(cas.preop, cas.preop_labels,
                                                     cas.intraop, config);
      const auto report = core::evaluate_against_truth(result, cas);
      const auto tre =
          core::evaluate_landmarks(result, core::phantom_landmarks(cas));
      std::printf(
          " %5.1f | %8.1f | %12.2f | %13.2f | %8.2f / %-8.2f | %.3f | %s\n",
          noise, sink, report.residual_rigid_only.mean_mm,
          report.recovered_error.mean_mm, tre.mean_rigid_only_mm,
          tre.mean_simulated_mm, report.brain_dice,
          result.fem.stats.converged ? "yes" : "NO");
    }
  }

  std::printf("\nexpected shape: the recovered field error stays below the "
              "rigid-only residual\nacross the sweep and is nearly noise-"
              "insensitive (the DT priors and surface\nsmoothing absorb it). "
              "Landmark TRE improves strongly for clinically large\nshifts "
              "(8–12 mm) and breaks even at small ones, where there is little\n"
              "deformation left to recover.\n\n");
}

// --- fault campaigns vs the degradation ladder -------------------------------

struct FaultRow {
  std::string name;
  bool usable = false;           ///< a validated field was delivered
  double seconds = 0.0;          ///< time to that field (the clinical metric)
  std::string rung = "-";        ///< ladder rung that produced it
  bool degraded = false;
  std::string trigger;           ///< typed reason the ladder left rung 0
  int attempts = 0;
};

par::FaultConfig campaign(const std::string& name) {
  par::FaultConfig fault;
  fault.seed = 7;
  fault.recv_timeout_ms = 200.0;
  if (name == "drop") {
    fault.kind = par::FaultKind::kDrop;
  } else if (name == "delay") {
    fault.kind = par::FaultKind::kDelay;
    fault.probability = 0.2;
    fault.delay_ms = 5.0;
    fault.recv_timeout_ms = 1000.0;
  } else if (name == "bit_flip") {
    fault.kind = par::FaultKind::kBitFlip;
  } else if (name == "stall") {
    fault.kind = par::FaultKind::kStallRank;
    fault.rank = 1;
    fault.delay_ms = 500.0;
  } else {
    NEURO_REQUIRE(name == "none",
                  "bench_robustness: unknown fault campaign '" << name << "'");
  }
  return fault;
}

FaultRow run_campaign(const mesh::TetMesh& mesh,
                      const std::vector<std::pair<mesh::NodeId, Vec3>>& prescribed,
                      const std::string& name) {
  fem::DeformationSolveOptions options;
  options.nranks = 2;
  options.fault_injection = campaign(name);

  FaultRow row;
  row.name = name;
  Stopwatch sw;
  const auto outcome = fem::solve_deformation_with_fallback(
      mesh, fem::MaterialMap::homogeneous_brain(), prescribed, options, {},
      base::DeadlineBudget(10.0));
  row.seconds = sw.seconds();
  if (outcome.ok()) {
    const fem::DegradationReport& report = outcome.value().report;
    row.usable = true;
    row.rung = fem::degradation_rung_name(report.rung);
    row.degraded = report.degraded;
    row.trigger = report.degraded ? report.trigger.to_string() : "-";
    row.attempts = static_cast<int>(report.attempts.size());
  } else {
    row.trigger = outcome.status().to_string();
  }
  return row;
}

void write_json(const std::vector<FaultRow>& rows, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  NEURO_REQUIRE(f != nullptr, "bench_robustness: cannot open " << path);
  std::fprintf(f, "{\n  \"fault_campaigns\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const FaultRow& r = rows[i];
    std::fprintf(f,
                 "    {\"fault\": \"%s\", \"usable_field\": %s, "
                 "\"time_to_usable_field_s\": %.6f, \"rung\": \"%s\", "
                 "\"degraded\": %s, \"trigger\": \"%s\", \"attempts\": %d}%s\n",
                 r.name.c_str(), r.usable ? "true" : "false", r.seconds,
                 r.rung.c_str(), r.degraded ? "true" : "false",
                 r.trigger.c_str(), r.attempts, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string item = list.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> faults{"none", "drop", "delay", "bit_flip", "stall"};
  std::string json_path;
  std::string postmortem_dir;
  bool sweep = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      faults = split_csv(argv[++i]);
      sweep = false;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
      sweep = false;
    } else if (std::strcmp(argv[i], "--postmortem-dir") == 0 && i + 1 < argc) {
      postmortem_dir = argv[++i];
      sweep = false;
    } else {
      std::printf("usage: %s [--faults none|drop,delay,bit_flip,stall] "
                  "[--json out.json] [--postmortem-dir DIR]\n", argv[0]);
      return 2;
    }
  }

  if (!postmortem_dir.empty()) {
    // Arming here is safe: no rank thread exists yet, so the recorder may
    // reconfigure the global tracer into ring mode. redact_timing keeps the
    // seeded campaigns' bundles byte-comparable across runs.
    obs::FlightRecorder::Options recorder_options;
    recorder_options.dump_dir = postmortem_dir;
    recorder_options.redact_timing = true;
    obs::recorder().arm(recorder_options);
  }

  if (sweep) noise_sweep();

  // A modest solid block: big enough for real 2-rank halo traffic, small
  // enough that the TSan CI job finishes each campaign in seconds.
  ImageL labels({13, 13, 13}, 1, {1.0, 1.0, 1.0});
  mesh::MesherConfig mc;
  mc.stride = 2;
  const mesh::TetMesh mesh = mesh::mesh_labeled_volume(labels, mc);
  const auto surface = mesh::extract_boundary_surface(mesh, {1});
  std::vector<std::pair<mesh::NodeId, Vec3>> prescribed;
  for (const auto n : surface.mesh_nodes) {
    prescribed.emplace_back(n, Vec3{0.1, -0.05, 0.08});
  }

  std::printf("== Fault campaigns vs the degradation ladder "
              "(%d nodes, 2 ranks) ==\n", mesh.num_nodes());
  std::printf(" fault     | usable | time-to-field(s) | rung                   "
              "| trigger\n");
  std::vector<FaultRow> rows;
  for (const std::string& name : faults) {
    rows.push_back(run_campaign(mesh, prescribed, name));
    const FaultRow& r = rows.back();
    std::printf(" %-9s | %-6s | %16.3f | %-22s | %s\n", r.name.c_str(),
                r.usable ? "yes" : "NO", r.seconds, r.rung.c_str(),
                r.trigger.c_str());
  }
  if (!json_path.empty()) write_json(rows, json_path);

  std::printf("\nexpected shape: the fault-free run stays on full_solve; a "
              "total drop or a\nstalled rank exhausts both solve rungs and "
              "lands on baseline_interpolation\nwithin ~2 recv timeouts; a "
              "mild delay is absorbed by rung 0. Every row\nreports a usable "
              "validated field — the ladder never aborts.\n");
  return 0;
}

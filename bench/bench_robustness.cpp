// Robustness study (extension): the paper notes that clinical viability
// "relies upon [the methods] being sufficiently robust to provide accurate
// results for typical clinical cases" and defers validation to more cases.
// The phantom makes a systematic sweep possible: vary image noise and
// deformation magnitude, run the full pipeline, and report accuracy.
//
// Expected shape: accuracy degrades gracefully with noise; the simulation
// keeps beating rigid-only registration across the clinical range of brain
// shift (a few mm to ~1.5 cm peak).
#include <cstdio>

#include "core/evaluation.h"
#include "core/landmarks.h"
#include "core/pipeline.h"
#include "phantom/brain_phantom.h"

int main() {
  using namespace neuro;

  std::printf("== Robustness sweep: noise level x deformation magnitude ==\n");
  std::printf(
      " noise | sink(mm) | residual(mm) | recovered(mm) | TRE rigid/sim (mm) | "
      "Dice  | converged\n");

  for (const double noise : {1.5, 3.0, 6.0, 9.0}) {
    for (const double sink : {4.0, 8.0, 12.0}) {
      phantom::PhantomConfig pc;
      pc.dims = {64, 64, 64};
      pc.spacing = {2.5, 2.5, 2.5};
      pc.noise_sigma = noise;
      phantom::ShiftConfig shift;
      shift.max_sink_mm = sink;
      const auto cas = phantom::make_case(pc, shift);

      core::PipelineConfig config = core::default_pipeline_config();
      config.do_rigid_registration = false;
      config.mesher.stride = 3;
      const auto result = core::run_intraop_pipeline(cas.preop, cas.preop_labels,
                                                     cas.intraop, config);
      const auto report = core::evaluate_against_truth(result, cas);
      const auto tre =
          core::evaluate_landmarks(result, core::phantom_landmarks(cas));
      std::printf(
          " %5.1f | %8.1f | %12.2f | %13.2f | %8.2f / %-8.2f | %.3f | %s\n",
          noise, sink, report.residual_rigid_only.mean_mm,
          report.recovered_error.mean_mm, tre.mean_rigid_only_mm,
          tre.mean_simulated_mm, report.brain_dice,
          result.fem.stats.converged ? "yes" : "NO");
    }
  }

  std::printf("\nexpected shape: the recovered field error stays below the "
              "rigid-only residual\nacross the sweep and is nearly noise-"
              "insensitive (the DT priors and surface\nsmoothing absorb it). "
              "Landmark TRE improves strongly for clinically large\nshifts "
              "(8–12 mm) and breaks even at small ones, where there is little\n"
              "deformation left to recover.\n");
  return 0;
}

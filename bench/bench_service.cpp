// bench_service: deterministic load generator for the multi-tenant session
// service (docs/service.md). Three seeded campaigns drive service::SessionServer
// with mixed-size phantom cases and report the SLO surface the service is
// gated on (tools/perf/check_bench_service.py):
//
//   baseline  closed-loop load inside capacity: every request must terminate
//             usable and p99 time-to-usable-field must meet the deadline.
//   overload  an open-loop burst of hundreds of requests against a bounded
//             queue: overload must manifest as typed rejections (queue full /
//             doomed deadline), never as lost requests or unbounded depth.
//   faults    a seeded kDrop communication-fault campaign: the degradation
//             ladder must keep the usable rate at 1.0 by trading fidelity.
//
// Usage:
//   bench_service                                  # all campaigns, table only
//   bench_service --requests 240 --json BENCH_service.json
//   bench_service --campaigns baseline,faults      # subset (CI smoke)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "par/fault_inject.h"
#include "phantom/brain_phantom.h"
#include "service/session_server.h"

namespace neuro {
namespace {

// --- deterministic case catalogue --------------------------------------------

/// One tenant: a phantom head at a given resolution with a progressing
/// deformation sequence. Mixed sizes make the cost model earn its keep —
/// admission must price a 48^3 stride-3 solve differently from a 32^3 one.
struct TenantCase {
  std::string name;
  std::vector<phantom::PhantomCase> scans;
  core::PipelineConfig config;
};

TenantCase make_tenant(const std::string& name, int dim, double spacing_mm,
                       int stride) {
  phantom::PhantomConfig pc;
  pc.dims = {dim, dim, dim};
  pc.spacing = {spacing_mm, spacing_mm, spacing_mm};
  TenantCase tenant;
  tenant.name = name;
  tenant.scans = phantom::make_case_sequence(pc, phantom::ShiftConfig{},
                                             {0.3, 0.6, 1.0});
  tenant.config = core::default_pipeline_config();
  tenant.config.do_rigid_registration = false;  // cases share the frame
  tenant.config.mesher.stride = stride;
  return tenant;
}

std::vector<TenantCase> make_catalogue() {
  std::vector<TenantCase> tenants;
  tenants.push_back(make_tenant("small_32", 32, 3.5, 4));
  tenants.push_back(make_tenant("medium_40", 40, 3.0, 4));
  tenants.push_back(make_tenant("large_48", 48, 2.8, 3));
  return tenants;
}

// --- campaign runner ---------------------------------------------------------

struct CampaignSpec {
  std::string name;
  int requests = 0;
  double deadline_seconds = 0.0;
  std::size_t queue_capacity = 16;
  /// Closed loop: at most `window` requests in flight (an OR streams scans as
  /// previous fields arrive). 0 = open loop: burst-submit a whole chunk.
  int window = 0;
  /// Open-loop bursts with a settle between them. Burst 1 hits an untrained
  /// cost model (rejections are all queue-full backpressure); later bursts
  /// hit a trained one, so deadline admission control gets to act too.
  int bursts = 1;
  par::FaultConfig fault;  ///< kNone = clean runs
};

struct CampaignResult {
  CampaignSpec spec;
  service::ServerStats stats;
  std::size_t max_queue_depth = 0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double max_s = 0.0;
};

double percentile(std::vector<double> sorted_values, double q) {
  if (sorted_values.empty()) return 0.0;
  const auto n = static_cast<double>(sorted_values.size());
  const auto rank = static_cast<std::size_t>(std::ceil(q * n));
  return sorted_values[std::min(sorted_values.size(), std::max<std::size_t>(
                                                          rank, 1)) -
                       1];
}

CampaignResult run_campaign(const CampaignSpec& spec,
                            const std::vector<TenantCase>& tenants) {
  service::ServerOptions options;
  options.workers = 2;
  options.rank_pool = 4;
  options.ranks_per_solve = 2;
  options.queue_capacity = spec.queue_capacity;
  options.default_deadline_seconds = spec.deadline_seconds;

  service::SessionServer server(options);
  std::vector<service::SessionId> sessions;
  for (const auto& tenant : tenants) {
    core::PipelineConfig config = tenant.config;
    config.fem.fault_injection = spec.fault;
    sessions.push_back(server.open_session(tenant.scans[0].preop,
                                           tenant.scans[0].preop_labels,
                                           config));
  }

  std::vector<double> usable_times;
  std::vector<service::RequestTicket> in_flight;
  const auto settle = [&] {
    for (const auto& ticket : in_flight) {
      const service::RequestReport report = server.wait(ticket);
      if (report.status.ok()) {
        usable_times.push_back(report.time_to_field_seconds);
      }
    }
    in_flight.clear();
  };

  const int bursts = std::max(1, spec.bursts);
  const int per_burst = (spec.requests + bursts - 1) / bursts;
  int i = 0;
  for (int burst = 0; burst < bursts; ++burst) {
    for (int j = 0; j < per_burst && i < spec.requests; ++j, ++i) {
      const auto tenant = static_cast<std::size_t>(i) % tenants.size();
      const auto& scans = tenants[tenant].scans;
      const auto& intraop =
          scans[static_cast<std::size_t>(i / tenants.size()) % scans.size()]
              .intraop;
      const auto ticket = server.submit(sessions[tenant], intraop);
      if (ticket.ok()) in_flight.push_back(ticket.value());
      if (spec.window > 0 &&
          in_flight.size() >= static_cast<std::size_t>(spec.window)) {
        settle();
      }
    }
    settle();
  }
  server.drain();

  CampaignResult result;
  result.spec = spec;
  result.stats = server.stats();
  result.max_queue_depth = server.max_queue_depth();
  std::sort(usable_times.begin(), usable_times.end());
  result.p50_s = percentile(usable_times, 0.50);
  result.p99_s = percentile(usable_times, 0.99);
  result.max_s = usable_times.empty() ? 0.0 : usable_times.back();
  server.shutdown();
  return result;
}

CampaignSpec campaign(const std::string& name, int scale) {
  CampaignSpec spec;
  spec.name = name;
  if (name == "baseline") {
    // In-capacity closed-loop load: the SLO the service advertises.
    spec.requests = std::max(12, scale / 10);
    spec.deadline_seconds = 10.0;
    spec.queue_capacity = 32;
    spec.window = 4;
  } else if (name == "overload") {
    // Hundreds of requests burst at a bounded queue: backpressure on display.
    spec.requests = scale;
    spec.deadline_seconds = 3.0;
    spec.queue_capacity = 12;
    spec.window = 0;
    spec.bursts = 2;
  } else if (name == "faults") {
    // Every solve attempt draws a seeded kDrop stream; the ladder must still
    // deliver a usable (degraded) field on every request.
    spec.requests = std::max(9, scale / 20);
    spec.deadline_seconds = 5.0;
    spec.queue_capacity = 16;
    spec.window = 3;
    spec.fault.kind = par::FaultKind::kDrop;
    spec.fault.probability = 1.0;
    spec.fault.seed = 2026;
    spec.fault.recv_timeout_ms = 25.0;
  } else {
    NEURO_REQUIRE(false,
                  "bench_service: unknown campaign '" << name << "'");
  }
  return spec;
}

// --- reporting ---------------------------------------------------------------

double usable_rate(const service::ServerStats& s) {
  return s.completed == 0
             ? 0.0
             : static_cast<double>(s.usable) / static_cast<double>(s.completed);
}

void print_table(const std::vector<CampaignResult>& rows) {
  std::printf("== Service load campaigns (docs/service.md) ==\n");
  std::printf(" campaign  | subm | admit | rej(full/ddl) | usable | degr "
              "| fail | retry | depth | p50(s) | p99(s)\n");
  std::printf("-----------+------+-------+---------------+--------+------"
              "+------+-------+-------+--------+-------\n");
  for (const auto& row : rows) {
    const auto& s = row.stats;
    std::printf(" %-9s | %4lld | %5lld |   %4lld / %4lld | %6lld | %4lld "
                "| %4lld | %5lld | %5zu | %6.3f | %6.3f\n",
                row.spec.name.c_str(), static_cast<long long>(s.submitted),
                static_cast<long long>(s.admitted),
                static_cast<long long>(s.rejected_queue_full),
                static_cast<long long>(s.rejected_deadline),
                static_cast<long long>(s.usable),
                static_cast<long long>(s.degraded),
                static_cast<long long>(s.failed),
                static_cast<long long>(s.retries), row.max_queue_depth,
                row.p50_s, row.p99_s);
  }
  std::printf("\nexpected shape: baseline stays fully usable inside its "
              "deadline; overload\nconverts excess load into typed rejections "
              "with queue depth <= capacity;\nthe fault campaign stays usable "
              "by degrading, not by failing.\n");
}

void write_json(const std::vector<CampaignResult>& rows, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  NEURO_REQUIRE(f != nullptr, "bench_service: cannot write " << path);
  std::fprintf(f, "{\n  \"bench\": \"service\",\n  \"campaigns\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const auto& s = row.stats;
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"requests\": %d, \"deadline_s\": %.3f,\n"
        "     \"workers\": 2, \"rank_pool\": 4, \"queue_capacity\": %zu,\n"
        "     \"submitted\": %lld, \"admitted\": %lld,\n"
        "     \"rejected_queue_full\": %lld, \"rejected_deadline\": %lld,\n"
        "     \"rejected_unknown_session\": %lld, \"rejected_draining\": "
        "%lld,\n"
        "     \"completed\": %lld, \"usable\": %lld, \"degraded\": %lld, "
        "\"failed\": %lld,\n"
        "     \"retries\": %lld, \"crashes\": %lld, \"resumes\": %lld,\n"
        "     \"usable_rate\": %.6f, \"max_queue_depth\": %zu,\n"
        "     \"time_to_usable_field_s\": {\"p50\": %.6f, \"p99\": %.6f, "
        "\"max\": %.6f}}%s\n",
        row.spec.name.c_str(), row.spec.requests, row.spec.deadline_seconds,
        row.spec.queue_capacity, static_cast<long long>(s.submitted),
        static_cast<long long>(s.admitted),
        static_cast<long long>(s.rejected_queue_full),
        static_cast<long long>(s.rejected_deadline),
        static_cast<long long>(s.rejected_unknown_session),
        static_cast<long long>(s.rejected_draining),
        static_cast<long long>(s.completed), static_cast<long long>(s.usable),
        static_cast<long long>(s.degraded), static_cast<long long>(s.failed),
        static_cast<long long>(s.retries), static_cast<long long>(s.crashes),
        static_cast<long long>(s.resumes), usable_rate(s),
        row.max_queue_depth, row.p50_s, row.p99_s, row.max_s,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

std::vector<std::string> split_csv(const std::string& arg) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= arg.size()) {
    const std::size_t comma = arg.find(',', start);
    const std::size_t end = comma == std::string::npos ? arg.size() : comma;
    if (end > start) out.push_back(arg.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace
}  // namespace neuro

int main(int argc, char** argv) {
  using namespace neuro;
  std::vector<std::string> names{"baseline", "overload", "faults"};
  int scale = 240;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--campaigns") == 0 && i + 1 < argc) {
      names = split_csv(argv[++i]);
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      scale = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::printf("usage: %s [--campaigns baseline,overload,faults] "
                  "[--requests N] [--json out.json]\n",
                  argv[0]);
      return 2;
    }
  }

  const std::vector<TenantCase> tenants = make_catalogue();
  std::printf("tenants:");
  for (const auto& tenant : tenants) {
    std::printf(" %s(%dv)", tenant.name.c_str(), tenant.scans[0].preop.dims().x);
  }
  std::printf("  overload scale: %d requests\n\n", scale);

  std::vector<CampaignResult> rows;
  for (const std::string& name : names) {
    rows.push_back(run_campaign(campaign(name, scale), tenants));
  }
  print_table(rows);
  if (json_path != nullptr) write_json(rows, json_path);
  return 0;
}

// Shared helpers for the figure-reproduction benches.
//
// Each bench builds a phantom brain mesh sized to the paper's equation count,
// prescribes the analytic brain-shift displacement on its surface (the same
// boundary data the pipeline's active surface would measure, minus the
// segmentation noise — the benches time the solver, not the segmentation),
// runs the real SPMD assemble/solve at each CPU count, and converts the
// recorded per-rank work into platform times with the calibrated models
// (DESIGN.md §2). Host wall-clock is also printed for transparency; on this
// single-core build machine it cannot show speedup.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "fem/deformation_solver.h"
#include "mesh/mesher.h"
#include "mesh/tri_surface.h"
#include "perf/models.h"
#include "phantom/brain_phantom.h"

namespace neuro::bench {

struct BrainProblem {
  phantom::PhantomConfig phantom_config;
  phantom::BrainGeometry geometry{phantom::PhantomConfig{}};
  mesh::TetMesh mesh;
  std::vector<std::pair<mesh::NodeId, Vec3>> prescribed;
  int num_equations = 0;
};

/// Labeled volume of the phantom anatomy at the given cube dimension, with
/// spacing scaled so the head has constant physical size.
inline ImageL phantom_labels(int dims, phantom::PhantomConfig* config_out = nullptr) {
  phantom::PhantomConfig pc;
  pc.dims = {dims, dims, dims};
  const double spacing = 2.5 * 96.0 / dims;
  pc.spacing = {spacing, spacing, spacing};
  const phantom::BrainGeometry geo(pc);
  ImageL labels(pc.dims, 0, pc.spacing);
  for (int k = 0; k < dims; ++k) {
    for (int j = 0; j < dims; ++j) {
      for (int i = 0; i < dims; ++i) {
        labels(i, j, k) = phantom::label(geo.tissue_at(labels.voxel_to_physical(i, j, k)));
      }
    }
  }
  if (config_out != nullptr) *config_out = pc;
  return labels;
}

/// Builds the FEM problem whose equation count approximates `target_equations`
/// (one refinement of the volume dimension by the cubic scaling law).
inline BrainProblem make_brain_problem(int target_equations) {
  mesh::MesherConfig mc;
  mc.stride = 2;
  mc.keep_labels = {phantom::label(phantom::Tissue::kBrain),
                    phantom::label(phantom::Tissue::kVentricle),
                    phantom::label(phantom::Tissue::kFalx),
                    phantom::label(phantom::Tissue::kTumor)};

  int dims = 96;
  BrainProblem problem;
  for (int iteration = 0; iteration < 2; ++iteration) {
    problem.mesh = mesh::mesh_labeled_volume(
        phantom_labels(dims, &problem.phantom_config), mc);
    const int eq = 3 * problem.mesh.num_nodes();
    if (std::abs(eq - target_equations) <= target_equations / 20) break;
    const double scale = std::cbrt(static_cast<double>(target_equations) / eq);
    int next = static_cast<int>(std::lround(dims * scale / 4.0)) * 4;
    if (next == dims) break;
    dims = next;
  }
  problem.geometry = phantom::BrainGeometry(problem.phantom_config);
  problem.num_equations = 3 * problem.mesh.num_nodes();

  // Prescribe the (negated) analytic backward shift on every boundary node:
  // the forward displacement the surface-matching stage would hand the FEM.
  const auto surface = mesh::extract_boundary_surface(problem.mesh, mc.keep_labels);
  const phantom::ShiftConfig shift;  // defaults: 8 mm sink + resection collapse
  problem.prescribed.reserve(surface.mesh_nodes.size());
  for (const auto n : surface.mesh_nodes) {
    const Vec3& p = problem.mesh.nodes[n];
    problem.prescribed.emplace_back(n, -1.0 * problem.geometry.shift_at(p, shift));
  }
  return problem;
}

struct ScalingRow {
  int nranks = 0;
  bool converged = true;
  double assemble_s = 0.0;   ///< model-predicted
  double solve_s = 0.0;      ///< model-predicted
  double init_s = 0.0;       ///< model-predicted (replicated setup)
  double assemble_imbalance = 1.0;
  double solve_imbalance = 1.0;
  int iterations = 0;
  double wall_assemble_s = 0.0;  ///< measured on this host (threads share 1 core)
  double wall_solve_s = 0.0;
};

/// Runs the deformation solve at `nranks` and converts per-rank work records
/// to `platform` times. Init is modeled as a replicated mesh-topology pass
/// (P-independent) plus each rank's own CSR-pattern construction (scales
/// with 1/P), which is how the assembly path actually initializes.
inline ScalingRow run_scaling_point(const BrainProblem& problem,
                                    const perf::PlatformModel& platform, int nranks,
                                    fem::DeformationSolveOptions options = {},
                                    bool require_convergence = true) {
  options.nranks = nranks;
  const fem::DeformationResult result = fem::solve_deformation(
      problem.mesh, fem::MaterialMap::homogeneous_brain(), problem.prescribed,
      options);
  NEURO_CHECK_MSG(result.stats.converged || !require_convergence,
                  "bench solve did not converge at P="
                      << nranks << " (residual "
                      << result.stats.relative_residual() << ")");
  ScalingRow row;
  row.converged = result.stats.converged;
  row.nranks = nranks;
  const auto& assemble = result.work.phase("assemble");
  const auto& solve = result.work.phase("solve");
  row.assemble_s = perf::predict_phase_seconds(platform, assemble);
  row.solve_s = perf::predict_phase_seconds(platform, solve);
  row.assemble_imbalance = perf::compute_imbalance(platform.machine, assemble);
  row.solve_imbalance = perf::compute_imbalance(platform.machine, solve);
  row.iterations = result.stats.iterations;
  row.wall_assemble_s = result.wall_assemble_s;
  row.wall_solve_s = result.wall_solve_s;

  // Initialization = replicated topology construction (every rank walks the
  // whole mesh; P-independent) + the rank's own CSR-pattern build (1/P).
  double nnz = 0.0;
  for (const auto& w : assemble) nnz += w.mem_bytes;
  par::WorkRecord init;
  init.mem_bytes = 2.0 * static_cast<double>(problem.mesh.num_tets()) * 200.0 +
                   0.8 * nnz / nranks * 1.0;
  row.init_s = platform.machine.compute_seconds(init);
  return row;
}

inline void print_platform_header(const perf::PlatformModel& platform) {
  std::printf("platform: %s\n", platform.name.c_str());
  std::printf("  machine: %-28s  %6.1f sustained Mflop/s, %6.1f MB/s memory\n",
              platform.machine.name.c_str(), platform.machine.flops_per_sec / 1e6,
              platform.machine.mem_bytes_per_sec / 1e6);
  std::printf("  network: %-28s  %6.1f us latency, %6.1f MB/s\n",
              platform.net.name.c_str(), platform.net.latency_sec * 1e6,
              platform.net.bandwidth_bytes_per_sec / 1e6);
}

inline void print_scaling_table(const std::vector<ScalingRow>& rows) {
  std::printf(
      "  CPUs | assemble(s) | solve(s) | a+s+init(s) | imb(asm) | imb(slv) | "
      "iters | host wall a/s (s)\n");
  for (const auto& r : rows) {
    std::printf(
        "  %4d | %11.2f | %8.2f | %11.2f | %8.2f | %8.2f | %5d | %6.2f / %.2f\n",
        r.nranks, r.assemble_s, r.solve_s, r.assemble_s + r.solve_s + r.init_s,
        r.assemble_imbalance, r.solve_imbalance, r.iterations, r.wall_assemble_s,
        r.wall_solve_s);
  }
}

}  // namespace neuro::bench

# Sanitizer wiring for every target in the build.
#
# NEURO_SANITIZE is a semicolon-separated list of sanitizers to instrument
# with, applied globally so libraries, tests, benches and tools all agree:
#
#   cmake -B build-asan -S . -DNEURO_SANITIZE="address;undefined"
#   cmake -B build-tsan -S . -DNEURO_SANITIZE=thread
#
# (or use the asan-ubsan / tsan presets in CMakePresets.json). ThreadSanitizer
# cannot be combined with AddressSanitizer or LeakSanitizer — the runtimes
# share shadow memory — so that combination is rejected at configure time.
# Suppression files live in tools/sanitize/ and are passed at *run* time:
#
#   TSAN_OPTIONS=suppressions=tools/sanitize/tsan.supp ctest --test-dir build-tsan
#
# See docs/static_analysis.md for the full workflow.

set(NEURO_SANITIZE "" CACHE STRING
    "Semicolon list of sanitizers: any of address;undefined;thread;leak")

if(NEURO_SANITIZE)
  set(_neuro_san_flags "")
  set(_has_thread FALSE)
  set(_has_addr_or_leak FALSE)
  foreach(san IN LISTS NEURO_SANITIZE)
    if(san STREQUAL "address")
      list(APPEND _neuro_san_flags -fsanitize=address)
      set(_has_addr_or_leak TRUE)
    elseif(san STREQUAL "undefined")
      # Recovery off: any UB report fails the test run instead of scrolling by.
      list(APPEND _neuro_san_flags -fsanitize=undefined -fno-sanitize-recover=all)
    elseif(san STREQUAL "thread")
      list(APPEND _neuro_san_flags -fsanitize=thread)
      set(_has_thread TRUE)
    elseif(san STREQUAL "leak")
      list(APPEND _neuro_san_flags -fsanitize=leak)
      set(_has_addr_or_leak TRUE)
    else()
      message(FATAL_ERROR
        "NEURO_SANITIZE: unknown sanitizer '${san}' "
        "(expected address, undefined, thread, or leak)")
    endif()
  endforeach()

  if(_has_thread AND _has_addr_or_leak)
    message(FATAL_ERROR
      "NEURO_SANITIZE: 'thread' cannot be combined with 'address' or 'leak'")
  endif()

  # Frame pointers keep sanitizer stack traces usable; O1 keeps the
  # instrumented test suite fast enough for CI without optimizing away the
  # interleavings TSan needs to see.
  list(APPEND _neuro_san_flags -fno-omit-frame-pointer -g)
  add_compile_options(${_neuro_san_flags})
  add_link_options(${_neuro_san_flags})
  message(STATUS "neurofem: sanitizers enabled: ${NEURO_SANITIZE}")
endif()

// Dynamic settling: integrate the brain mesh through time as it relaxes onto
// the measured intraoperative surface — the animated counterpart of the
// static solve, and a dynamic-relaxation solver when damped.
//
//   ./dynamic_settling [volume_size] [damping]
#include <cstdio>
#include <cstdlib>

#include "fem/deformation_solver.h"
#include "fem/dynamics.h"
#include "mesh/mesher.h"
#include "mesh/tri_surface.h"
#include "phantom/brain_phantom.h"

int main(int argc, char** argv) {
  using namespace neuro;

  const int size = argc > 1 ? std::atoi(argv[1]) : 48;
  const double damping = argc > 2 ? std::atof(argv[2]) : 3.0;

  std::printf("== dynamic settling of the brain model ==\n");
  phantom::PhantomConfig pc;
  pc.dims = {size, size, size};
  pc.spacing = {3.0, 3.0, 3.0};
  const phantom::BrainGeometry geo(pc);
  ImageL labels(pc.dims, 0, pc.spacing);
  for (int k = 0; k < size; ++k) {
    for (int j = 0; j < size; ++j) {
      for (int i = 0; i < size; ++i) {
        labels(i, j, k) = phantom::label(geo.tissue_at(labels.voxel_to_physical(i, j, k)));
      }
    }
  }
  mesh::MesherConfig mc;
  mc.stride = 3;
  mc.keep_labels = {3, 4, 5, 6};
  const mesh::TetMesh mesh = mesh::mesh_labeled_volume(labels, mc);
  const auto surface = mesh::extract_boundary_surface(mesh, mc.keep_labels);
  std::printf("brain mesh: %d nodes, %d tets\n", mesh.num_nodes(), mesh.num_tets());

  // Boundary displacements from the analytic shift (what the active surface
  // would measure).
  const phantom::ShiftConfig shift;
  std::vector<std::pair<mesh::NodeId, Vec3>> bcs;
  for (const auto n : surface.mesh_nodes) {
    const Vec3& p = mesh.nodes[n];
    bcs.emplace_back(n, -1.0 * geo.shift_at(p, shift));
  }

  const auto materials = fem::MaterialMap::homogeneous_brain();
  fem::DynamicsOptions dyn;
  dyn.density = 1.0e-6;
  dyn.damping_alpha = damping;
  dyn.steps = 4000;
  dyn.bc_ramp_steps = 500;
  dyn.energy_stride = 200;

  std::printf("integrating (%d steps, damping %.1f)...\n", dyn.steps, damping);
  const auto result = fem::integrate_dynamics(mesh, materials, bcs, dyn);
  std::printf("dt = %.3e (stability limit %.3e), %d steps taken\n", result.dt_used,
              result.stable_dt_estimate, result.steps_taken);

  std::printf("\n energy history (sampled every %d steps):\n", dyn.energy_stride);
  std::printf("  sample | kinetic      | strain\n");
  for (std::size_t s = 0; s < result.kinetic_energy.size(); s += 2) {
    std::printf("  %6zu | %.4e | %.4e\n", s, result.kinetic_energy[s],
                result.strain_energy[s]);
  }

  // Compare the settled state with the static solve.
  fem::DeformationSolveOptions static_opt;
  static_opt.solver.rtol = 1e-10;
  const auto static_solution = fem::solve_deformation(mesh, materials, bcs, static_opt);
  double max_diff = 0;
  for (int n = 0; n < mesh.num_nodes(); ++n) {
    max_diff = std::max(
        max_diff, norm(result.displacements[static_cast<std::size_t>(n)] -
                       static_solution.node_displacements[static_cast<std::size_t>(n)]));
  }
  std::printf("\nmax |dynamic - static| after settling: %.3f mm\n", max_diff);
  std::printf("%s\n", max_diff < 0.5 ? "OK: dynamic relaxation reached the static "
                                       "equilibrium."
                                     : "note: still settling — raise steps/damping.");
  return max_diff < 0.5 ? 0 : 1;
}

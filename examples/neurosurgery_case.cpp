// Full neurosurgery-case walkthrough, producing the paper's visual artifacts:
//
//   fig4a_preop.pgm      — slice of the first (preoperative) scan
//   fig4b_intraop.pgm    — the matching slice of the intraoperative scan
//   fig4c_simulated.pgm  — the simulated deformation of the first scan
//   fig4d_difference.pgm — |simulated − intraop| (the Fig. 4d evidence)
//   fig4d_rigid_only.pgm — |rigid-only − intraop| for comparison
//   fig5_surface.obj     — deformed brain surface (render with any OBJ viewer)
//   fig5_arrows.csv      — initial→final surface point pairs + magnitudes
//   case_report.txt      — timeline + quantitative accuracy report
//
//   ./neurosurgery_case [output_dir] [volume_size] [nranks]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/evaluation.h"
#include "core/landmarks.h"
#include "core/pipeline.h"
#include "fem/strain.h"
#include "image/io.h"
#include "mesh/tri_surface.h"
#include "phantom/brain_phantom.h"
#include "viz/colormap.h"
#include "viz/surface_export.h"

int main(int argc, char** argv) {
  using namespace neuro;

  const std::string out = argc > 1 ? argv[1] : ".";
  const int size = argc > 2 ? std::atoi(argv[2]) : 96;
  const int nranks = argc > 3 ? std::atoi(argv[3]) : 2;

  std::printf("== neurosurgery case study ==\n");
  phantom::PhantomConfig pcfg;
  pcfg.dims = {size, size, size};
  pcfg.spacing = {2.5, 2.5, 2.5};
  RigidTransform repositioning;
  repositioning.translation = {3.0, -2.0, 0.0};
  const phantom::PhantomCase cas =
      phantom::make_case(pcfg, phantom::ShiftConfig{}, repositioning);

  core::PipelineConfig config = core::default_pipeline_config();
  config.mesher.stride = 3;
  config.fem.nranks = nranks;
  std::printf("running the intraoperative pipeline (%d^3 voxels, %d ranks)...\n",
              size, nranks);
  const core::PipelineResult result =
      core::run_intraop_pipeline(cas.preop, cas.preop_labels, cas.intraop, config);
  const core::AccuracyReport report = core::evaluate_against_truth(result, cas);

  // Pick the axial slice through the craniotomy (where the shift is largest).
  const Vec3 cc = cas.geometry.craniotomy_center();
  const int slice = std::min(
      size - 1, static_cast<int>(cas.intraop.physical_to_voxel(
                    {cc.x, cc.y, cc.z - 0.25 * size * pcfg.spacing.z}).z));

  auto diff_image = [](const ImageF& a, const ImageF& b) {
    ImageF d(a.dims(), 0.0f, a.spacing(), a.origin());
    for (std::size_t i = 0; i < a.size(); ++i) {
      d.data()[i] = std::abs(a.data()[i] - b.data()[i]);
    }
    return d;
  };

  write_slice_pgm(out + "/fig4a_preop.pgm", result.aligned_preop, slice, 0, 255);
  write_slice_pgm(out + "/fig4b_intraop.pgm", cas.intraop, slice, 0, 255);
  write_slice_pgm(out + "/fig4c_simulated.pgm", result.warped_preop, slice, 0, 255);
  write_slice_pgm(out + "/fig4d_difference.pgm",
                  diff_image(result.warped_preop, cas.intraop), slice, 0, 128);
  write_slice_pgm(out + "/fig4d_rigid_only.pgm",
                  diff_image(result.aligned_preop, cas.intraop), slice, 0, 128);
  std::printf("wrote Fig. 4 slices (axial k=%d) to %s/\n", slice, out.c_str());

  // Color montage: intraop | simulated | field magnitude, one file (Fig. 4).
  {
    const viz::RgbImage panel = viz::montage(
        {viz::render_slice(cas.intraop, slice, viz::ColormapKind::kGray, 0, 255),
         viz::render_slice(result.warped_preop, slice, viz::ColormapKind::kGray, 0, 255),
         viz::render_field_magnitude(result.forward_field, slice)});
    panel.write_ppm(out + "/fig4_montage.ppm");
  }

  // Fig. 5: deformed surface colored by displacement magnitude (PLY) plus
  // the arrow glyphs the paper renders.
  {
    std::vector<double> magnitudes;
    magnitudes.reserve(result.surface_match.displacements.size());
    for (const auto& d : result.surface_match.displacements) {
      magnitudes.push_back(norm(d));
    }
    viz::write_ply_colored(out + "/fig5_surface_colored.ply",
                           result.surface_match.surface, magnitudes);
    viz::write_arrows_obj(out + "/fig5_arrows.obj",
                          result.preop_surface.vertices.raw(),
                          result.surface_match.displacements.raw(), 400);
  }

  mesh::write_obj(out + "/fig5_surface.obj", result.surface_match.surface);
  {
    std::ofstream csv(out + "/fig5_arrows.csv");
    csv << "x0,y0,z0,x1,y1,z1,magnitude_mm\n";
    const auto& surf = result.surface_match;
    for (const mesh::VertId v : surf.displacements.ids()) {
      const Vec3 p0 = result.preop_surface.vertices[v];
      const Vec3 p1 = p0 + surf.displacements[v];
      csv << p0.x << ',' << p0.y << ',' << p0.z << ',' << p1.x << ',' << p1.y << ','
          << p1.z << ',' << norm(surf.displacements[v]) << '\n';
    }
  }
  std::printf("wrote Fig. 5 surface + arrows\n");

  {
    std::ofstream rep(out + "/case_report.txt");
    rep << "timeline (Fig. 6):\n";
    for (const auto& stage : result.timeline) {
      char line[128];
      std::snprintf(line, sizeof line, "  %-26s %8.2f s\n", stage.name.c_str(),
                    stage.seconds);
      rep << line;
    }
    rep << "\nFEM: " << result.fem.num_equations << " equations, "
        << result.fem.stats.iterations << " GMRES iterations, converged="
        << result.fem.stats.converged << "\n";
    rep << "\naccuracy vs. phantom ground truth:\n";
    rep << "  residual (rigid only): mean " << report.residual_rigid_only.mean_mm
        << " mm, max " << report.residual_rigid_only.max_mm << " mm\n";
    rep << "  recovered-field error: mean " << report.recovered_error.mean_mm
        << " mm, max " << report.recovered_error.max_mm << " mm\n";
    rep << "  boundary MAD: rigid-only " << report.mad_boundary_rigid_only
        << " -> simulated " << report.mad_boundary_simulated << "\n";
  }

  std::printf("\n");
  core::print_report(report, std::cout);

  std::printf("\ntarget registration error at anatomical landmarks:\n");
  core::print_tre_report(
      core::evaluate_landmarks(result, core::phantom_landmarks(cas)), std::cout);

  // Tissue strain summary (quantitative monitoring of the recovered change).
  {
    const auto strains =
        fem::element_strains(result.brain_mesh, result.fem.node_displacements);
    std::vector<double> vm(strains.size());
    double min_vol = 0.0;
    for (std::size_t t = 0; t < strains.size(); ++t) {
      vm[t] = strains[t].von_mises();
      min_vol = std::min(min_vol, strains[t].volumetric());
    }
    const auto summary = fem::summarize_per_element(result.brain_mesh, vm);
    std::printf("\ntissue strain: mean von-Mises %.3f, max %.3f, peak "
                "compression %.1f%%\n",
                summary.mean, summary.max, -100.0 * min_vol);
  }

  std::printf("\nreport written to %s/case_report.txt\n", out.c_str());
  return result.fem.stats.converged ? 0 : 1;
}

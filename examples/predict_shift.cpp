// Predictive simulation of brain shift — the paper's stated ambition that
// biomechanical registration "enable[s] prediction of surgical changes":
// instead of *measuring* surface displacements from an intraoperative scan,
// load the preoperative model with gravity, clamp the brain where it rests
// against the skull, leave the craniotomy-exposed patch free (traction-free
// natural boundary), and solve for the sag *before* it happens.
//
//   ./predict_shift [volume_size] [craniotomy_radius_mm] [nranks]
//
// Consistent units: lengths in mm, so Young's modulus is in N/mm² (kPa·10⁻³)
// and the gravity body force in N/mm³. Brain: E ≈ 3 kPa = 3e-3 N/mm²,
// weight after CSF drainage ≈ ρg ≈ 1e-5 N/mm³ (buoyancy loss on opening the
// dura is the dominant shift mechanism).
#include <cstdio>
#include <cstdlib>

#include "fem/deformation_solver.h"
#include "mesh/mesher.h"
#include "mesh/tri_surface.h"
#include "phantom/brain_phantom.h"
#include "viz/surface_export.h"

int main(int argc, char** argv) {
  using namespace neuro;

  const int size = argc > 1 ? std::atoi(argv[1]) : 64;
  const double craniotomy_radius = argc > 2 ? std::atof(argv[2]) : 35.0;
  const int nranks = argc > 3 ? std::atoi(argv[3]) : 2;

  std::printf("== predictive brain-shift simulation (gravity-loaded) ==\n");
  phantom::PhantomConfig pc;
  pc.dims = {size, size, size};
  pc.spacing = {2.5, 2.5, 2.5};
  const phantom::BrainGeometry geo(pc);
  ImageL labels(pc.dims, 0, pc.spacing);
  for (int k = 0; k < size; ++k) {
    for (int j = 0; j < size; ++j) {
      for (int i = 0; i < size; ++i) {
        labels(i, j, k) = phantom::label(geo.tissue_at(labels.voxel_to_physical(i, j, k)));
      }
    }
  }

  mesh::MesherConfig mc;
  mc.stride = 2;
  mc.keep_labels = {3, 4, 5, 6};
  const mesh::TetMesh mesh = mesh::mesh_labeled_volume(labels, mc);
  const mesh::TriSurface surface = mesh::extract_boundary_surface(mesh, mc.keep_labels);
  std::printf("brain mesh: %d nodes, %d tets; craniotomy radius %.0f mm\n",
              mesh.num_nodes(), mesh.num_tets(), craniotomy_radius);

  // Clamp the surface against the skull everywhere except the exposed patch
  // under the craniotomy (which stays traction-free).
  const Vec3 cc = geo.craniotomy_center();
  std::vector<std::pair<mesh::NodeId, Vec3>> clamped;
  int exposed = 0;
  for (const auto n : surface.mesh_nodes) {
    const Vec3& p = mesh.nodes[n];
    const double lateral = std::hypot(p.x - cc.x, p.y - cc.y);
    const bool in_window = lateral < craniotomy_radius && p.z > geo.head_center().z;
    if (in_window) {
      ++exposed;
    } else {
      clamped.emplace_back(n, Vec3{});
    }
  }
  std::printf("surface nodes: %d clamped against the skull, %d exposed\n",
              static_cast<int>(clamped.size()), exposed);

  // Gravity load in mm-units; material in N/mm².
  fem::MaterialMap materials(fem::Material{3e-3, 0.45});
  fem::DeformationSolveOptions options;
  options.nranks = nranks;
  options.body_force = {0.0, 0.0, -9.8e-6};  // ρg with CSF drained, N/mm³
  options.solver.gmres_restart = 60;
  const auto result = fem::solve_deformation(mesh, materials, clamped, options);
  std::printf("solve: %d equations, %s in %d iterations\n", result.num_equations,
              result.stats.converged ? "converged" : "DID NOT CONVERGE",
              result.stats.iterations);

  // Predicted sag profile.
  double max_sag = 0.0;
  mesh::NodeId deepest{0};
  for (const mesh::NodeId n : mesh.node_ids()) {
    const double sag = -result.node_displacements[n.index()].z;
    if (sag > max_sag) {
      max_sag = sag;
      deepest = n;
    }
  }
  const Vec3 where = mesh.nodes[deepest];
  std::printf("predicted peak sag: %.1f mm at (%.0f, %.0f, %.0f) — under the "
              "craniotomy at (%.0f, %.0f)\n",
              max_sag, where.x, where.y, where.z, cc.x, cc.y);

  // Export the predicted deformation for inspection.
  std::vector<double> sag(static_cast<std::size_t>(surface.num_vertices()));
  for (const mesh::VertId v : surface.vert_ids()) {
    const mesh::NodeId n = surface.mesh_nodes[v];
    sag[v.index()] = -result.node_displacements[n.index()].z;
  }
  viz::write_ply_colored("predicted_sag.ply", surface, sag);
  std::printf("wrote predicted_sag.ply (surface colored by predicted sinking)\n");

  const bool plausible = result.stats.converged && max_sag > 1.0 && max_sag < 25.0;
  std::printf("%s\n", plausible
                          ? "OK: predicted sag is in the clinically reported range."
                          : "WARNING: predicted sag outside the expected range!");
  return plausible ? 0 : 1;
}

// Quickstart: generate a synthetic neurosurgery case, run the complete
// intraoperative registration pipeline, and print the stage timeline plus a
// quantitative accuracy report against the phantom's ground truth.
//
//   ./quickstart [volume_size] [nranks]
//
// This is the smallest end-to-end use of the public API:
//   phantom::make_case → core::run_intraop_pipeline → core::evaluate_against_truth.
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/evaluation.h"
#include "core/pipeline.h"
#include "phantom/brain_phantom.h"

int main(int argc, char** argv) {
  using namespace neuro;

  const int size = argc > 1 ? std::atoi(argv[1]) : 64;
  const int nranks = argc > 2 ? std::atoi(argv[2]) : 2;

  std::printf("== neurofem quickstart ==\n");
  std::printf("Generating a %dx%dx%d synthetic neurosurgery case...\n", size, size,
              size);
  phantom::PhantomConfig pconfig;
  pconfig.dims = {size, size, size};
  pconfig.spacing = {2.5, 2.5, 2.5};
  phantom::ShiftConfig shift;  // defaults: 8 mm sinking + resection collapse
  const phantom::PhantomCase cas = phantom::make_case(pconfig, shift);

  core::PipelineConfig config = core::default_pipeline_config();
  config.do_rigid_registration = false;  // scans share a frame in this demo
  config.mesher.stride = 4;
  config.fem.nranks = nranks;

  std::printf("Running the intraoperative pipeline (%d ranks)...\n", nranks);
  const core::PipelineResult result =
      core::run_intraop_pipeline(cas.preop, cas.preop_labels, cas.intraop, config);

  std::printf("\nTimeline (paper Fig. 6):\n");
  for (const auto& stage : result.timeline) {
    std::printf("  %-26s %7.2f s\n", stage.name.c_str(), stage.seconds);
  }
  std::printf("  %-26s %7.2f s\n", "total", result.total_seconds);

  std::printf("\nFEM system: %d equations, %d fixed dofs, GMRES %s in %d iterations "
              "(rel. residual %.2e)\n",
              result.fem.num_equations, result.fem.num_fixed_dofs,
              result.fem.stats.converged ? "converged" : "did NOT converge",
              result.fem.stats.iterations, result.fem.stats.relative_residual());

  std::printf("\nAccuracy vs. phantom ground truth:\n");
  const core::AccuracyReport report = core::evaluate_against_truth(result, cas);
  core::print_report(report, std::cout);

  const bool ok = result.fem.stats.converged &&
                  report.recovered_error.mean_mm < report.residual_rigid_only.mean_mm;
  std::printf("\n%s\n", ok ? "OK: biomechanical simulation reduced the residual."
                           : "WARNING: simulation did not improve the residual!");
  return ok ? 0 : 1;
}

// Configurable scaling study over the three paper platforms.
//
//   ./scaling_study [target_equations] [max_cpus]
//
// Builds a brain FEM problem of the requested size, runs the SPMD
// assemble/solve at 1..max_cpus ranks, and prints predicted times for the
// Deep Flow Alpha cluster, the Ultra HPC 6000 SMP, and the dual Ultra 80
// cluster side by side — the cross-architecture comparison of paper §3.2.
#include <cstdio>
#include <cstdlib>

#include "../bench/common.h"

int main(int argc, char** argv) {
  using namespace neuro;

  const int target = argc > 1 ? std::atoi(argv[1]) : 30000;
  const int max_cpus = argc > 2 ? std::atoi(argv[2]) : 8;

  bench::BrainProblem problem = bench::make_brain_problem(target);
  std::printf("== scaling study: %d equations (%d nodes, %d tets) ==\n",
              problem.num_equations, problem.mesh.num_nodes(),
              problem.mesh.num_tets());

  const perf::PlatformModel platforms[] = {
      perf::deep_flow_cluster(), perf::ultra_hpc_6000(), perf::dual_ultra80_cluster()};

  std::printf("%6s", "CPUs");
  for (const auto& p : platforms) std::printf(" | %28.28s", p.name.c_str());
  std::printf("\n%6s", "");
  for (int i = 0; i < 3; ++i) std::printf(" | %13s %14s", "assemble(s)", "solve(s)");
  std::printf("\n");

  for (int cpus = 1; cpus <= max_cpus; cpus *= 2) {
    std::printf("%6d", cpus);
    for (const auto& platform : platforms) {
      const bench::ScalingRow row = bench::run_scaling_point(problem, platform, cpus);
      std::printf(" | %13.2f %14.2f", row.assemble_s, row.solve_s);
    }
    std::printf("\n");
  }

  std::printf("\n(run bench_fig7_cluster / bench_fig8_smp / bench_fig9_large for\n"
              " the paper-exact figure configurations.)\n");
  return 0;
}

// API tour of the substrate libraries, stage by stage — the building blocks a
// downstream user composes when not running the one-call pipeline:
// phantom → saturated distance transforms → k-NN segmentation → tetrahedral
// meshing → surface extraction → active-surface matching → FEM solve.
//
//   ./segment_and_mesh [volume_size]
#include <cstdio>
#include <cstdlib>

#include "fem/deformation_solver.h"
#include "image/distance.h"
#include "image/filters.h"
#include "mesh/mesher.h"
#include "mesh/tri_surface.h"
#include "phantom/brain_phantom.h"
#include "seg/intraop.h"
#include "surface/active_surface.h"

int main(int argc, char** argv) {
  using namespace neuro;
  using phantom::Tissue;

  const int size = argc > 1 ? std::atoi(argv[1]) : 64;

  // 1. Synthetic case (stands in for the preop scan + segmentation and the
  //    intraop scan; see DESIGN.md §2).
  phantom::PhantomConfig pcfg;
  pcfg.dims = {size, size, size};
  pcfg.spacing = {3.0, 3.0, 3.0};
  const phantom::PhantomCase cas = phantom::make_case(pcfg, phantom::ShiftConfig{});
  std::printf("1. phantom: %d^3 voxels at %.1f mm spacing\n", size, pcfg.spacing.x);

  // 2. Saturated distance transform of one tissue class — the spatially
  //    varying localization prior.
  const ImageF brain_dt =
      distance_to_label(cas.preop_labels, phantom::label(Tissue::kBrain), 10.0);
  double mean_dt = 0;
  for (const float v : brain_dt.data()) mean_dt += v;
  std::printf("2. saturated DT of brain class: mean %.2f mm (cap 10 mm)\n",
              mean_dt / static_cast<double>(brain_dt.size()));

  // 3. Intraoperative k-NN segmentation.
  seg::IntraopSegmentationConfig scfg;
  scfg.classes = {phantom::label(Tissue::kBackground), phantom::label(Tissue::kSkin),
                  phantom::label(Tissue::kSkullGap), phantom::label(Tissue::kBrain),
                  phantom::label(Tissue::kVentricle)};
  scfg.exclude_classes = {phantom::label(Tissue::kFalx), phantom::label(Tissue::kTumor)};
  scfg.dt_saturation_mm = 10.0;
  scfg.dt_weight = 1.5;
  const auto seg_result = seg::segment_intraop(cas.intraop, cas.preop_labels, scfg);
  const std::vector<std::uint8_t> brainish = {3, 4, 5, 6};
  const double dice =
      seg::dice_coefficient(seg::mask_of_labels(seg_result.labels, brainish),
                            seg::mask_of_labels(cas.intraop_labels, brainish), 1);
  std::printf("3. k-NN segmentation: %zu prototypes, brain Dice vs truth %.3f\n",
              seg_result.prototypes.size(), dice);

  // 4. Tetrahedral mesh of the labeled anatomy.
  mesh::MesherConfig mcfg;
  mcfg.stride = 2;
  mcfg.keep_labels = brainish;
  const mesh::TetMesh brain_mesh = mesh::mesh_labeled_volume(cas.preop_labels, mcfg);
  const mesh::QualityStats quality = mesh::quality_stats(brain_mesh);
  std::printf("4. mesh: %d nodes, %d tets, min quality %.2f, volume %.0f mm^3\n",
              brain_mesh.num_nodes(), brain_mesh.num_tets(), quality.min_quality,
              mesh::total_volume(brain_mesh));

  // 5. Boundary surface + active-surface match to the segmented intraop brain.
  const mesh::TriSurface surface = mesh::extract_boundary_surface(brain_mesh, brainish);
  const ImageL intraop_mask = seg::mask_of_labels(seg_result.labels, {3, 5, 6});
  const ImageF sdf = gaussian_smooth(
      signed_distance_to_label(intraop_mask, 1, 30.0), 0.8);
  const auto match =
      surface::deform_to_distance_field(surface, sdf, surface::ActiveSurfaceConfig{});
  std::printf("5. active surface: %d vertices, %d iterations, residual %.2f mm\n",
              surface.num_vertices(), match.iterations, match.mean_abs_potential);

  // 6. Biomechanical FEM solve driven by the measured surface displacements.
  auto bcs = surface::node_displacements(match);
  fem::DeformationSolveOptions options;
  options.nranks = 2;
  const auto solution = fem::solve_deformation(
      brain_mesh, fem::MaterialMap::homogeneous_brain(), bcs, options);
  double max_u = 0;
  for (const auto& u : solution.node_displacements) max_u = std::max(max_u, norm(u));
  std::printf("6. FEM: %d equations, GMRES %s in %d iterations, max |u| %.2f mm\n",
              solution.num_equations,
              solution.stats.converged ? "converged" : "FAILED",
              solution.stats.iterations, max_u);
  return solution.stats.converged ? 0 : 1;
}

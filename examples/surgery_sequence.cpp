// A whole procedure, scan by scan — the paper's clinical protocol: a baseline
// scan at the start of surgery, follow-up scans as resection progresses, the
// statistical classification model selected once and updated automatically,
// and a biomechanical registration after every acquisition.
//
//   ./surgery_sequence [volume_size] [nranks]
#include <cstdio>
#include <cstdlib>

#include "core/evaluation.h"
#include "core/surgery_session.h"
#include "phantom/brain_phantom.h"

int main(int argc, char** argv) {
  using namespace neuro;

  const int size = argc > 1 ? std::atoi(argv[1]) : 64;
  const int nranks = argc > 2 ? std::atoi(argv[2]) : 2;

  std::printf("== surgery sequence: baseline + 3 follow-up scans ==\n");
  phantom::PhantomConfig pc;
  pc.dims = {size, size, size};
  pc.spacing = {2.5, 2.5, 2.5};
  const std::vector<double> progress = {0.0, 0.4, 0.75, 1.0};
  const auto cases =
      phantom::make_case_sequence(pc, phantom::ShiftConfig{}, progress);

  core::PipelineConfig config = core::default_pipeline_config();
  config.do_rigid_registration = false;
  config.fem.nranks = nranks;
  core::SurgerySession session(cases[0].preop, cases[0].preop_labels, config);

  std::printf("\n scan | progress | true shift (mm) | recovered err (mm) | brain Dice "
              "| fem iters | stage total (s)\n");
  for (std::size_t s = 0; s < cases.size(); ++s) {
    const auto& result = session.process_scan(cases[s].intraop);
    const auto report = core::evaluate_against_truth(result, cases[s]);
    std::printf("  %2zu  |  %5.0f%%  | %15.2f | %18.2f | %10.3f | %9d | %10.2f\n",
                s + 1, 100.0 * progress[s], report.residual_rigid_only.mean_mm,
                report.recovered_error.mean_mm, report.brain_dice,
                result.fem.stats.iterations, result.total_seconds);
  }

  std::printf("\nstatistical model: %zu prototypes selected on scan 1, reused for "
              "all follow-ups\n", session.prototypes().size());
  std::printf("\ncumulative timeline over the procedure:\n");
  for (const auto& stage : session.cumulative_timeline()) {
    std::printf("  %-26s %8.2f s\n", stage.name.c_str(), stage.seconds);
  }
  return 0;
}

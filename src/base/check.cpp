#include "base/check.h"

#include <atomic>

namespace neuro {

namespace {

std::atomic<CheckFailureHook> g_check_failure_hook{nullptr};

}  // namespace

CheckFailureHook set_check_failure_hook(CheckFailureHook hook) {
  return g_check_failure_hook.exchange(hook, std::memory_order_acq_rel);
}

namespace detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream oss;
  oss << "NEURO_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) {
    oss << " — " << message;
  }
  const std::string what = oss.str();
  if (CheckFailureHook hook =
          g_check_failure_hook.load(std::memory_order_acquire)) {
    // A hook that itself fails a check would recurse forever; break the
    // cycle on the failing thread.
    static thread_local bool in_hook = false;
    if (!in_hook) {
      in_hook = true;
      hook(what.c_str());
      in_hook = false;
    }
  }
  throw CheckError(what);
}

}  // namespace detail

}  // namespace neuro

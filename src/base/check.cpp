#include "base/check.h"

namespace neuro::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream oss;
  oss << "NEURO_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) {
    oss << " — " << message;
  }
  throw CheckError(oss.str());
}

}  // namespace neuro::detail

// Error-handling primitives.
//
// NEURO_CHECK is an always-on invariant check (release builds included): FEM
// pipelines fail in ways that silently corrupt results, so internal
// consistency violations must abort loudly rather than propagate NaNs into a
// deformation field that could, in the real system, reach an operating room
// display.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace neuro {

/// Thrown by NEURO_CHECK / NEURO_REQUIRE on violated invariants.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

/// Observer invoked (with the composed failure message) just before
/// check_failed throws. The flight recorder (obs::FlightRecorder) installs
/// one so a violated invariant leaves a post-mortem bundle behind even when
/// the CheckError escapes to a crash. Hooks must be reentrancy-safe and must
/// not throw; they run on the failing thread.
using CheckFailureHook = void (*)(const char* message);

/// Installs `hook` (nullptr to clear) and returns the previous hook.
/// Thread-safe; the hook pointer is read with acquire semantics on failure.
CheckFailureHook set_check_failure_hook(CheckFailureHook hook);

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);
}  // namespace detail

}  // namespace neuro

/// Always-on internal invariant check. Aborts with a CheckError.
#define NEURO_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr)) [[unlikely]] {                                        \
      ::neuro::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
    }                                                                  \
  } while (false)

/// Invariant check with a formatted context message (streamed).
#define NEURO_CHECK_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) [[unlikely]] {                                        \
      std::ostringstream neuro_check_oss_;                             \
      neuro_check_oss_ << msg; /* NOLINT */                            \
      ::neuro::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                    neuro_check_oss_.str());           \
    }                                                                  \
  } while (false)

/// Precondition check on public-API arguments.
#define NEURO_REQUIRE(expr, msg) NEURO_CHECK_MSG(expr, msg)

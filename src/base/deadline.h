// Wall-clock budgets for the intraoperative deadline.
//
// The paper's clinical constraint is a hard one: the surgeon needs a usable
// deformation field within ~10 s of the intraoperative scan, not the exact
// field eventually. DeadlineBudget represents that contract as a value the
// pipeline threads through its stages: construct it when the scan arrives,
// ask each stage to take an allotment of what remains, and let the solver
// watchdog and the degradation ladder (docs/robustness.md) consult it to
// decide when to stop polishing and start degrading. A default-constructed
// budget is unlimited and costs nothing to consult — the fault-free,
// no-deadline path behaves exactly as before.
#pragma once

#include <algorithm>
#include <chrono>
#include <limits>
#include <sstream>

#include "base/status.h"

namespace neuro::base {

class DeadlineBudget {
 public:
  /// Unlimited budget: never expires, remaining() is +inf.
  DeadlineBudget() = default;

  /// Budget of `total_seconds` starting now. Non-positive totals mean
  /// "unlimited" so configs can use 0 as the off switch.
  explicit DeadlineBudget(double total_seconds)
      : total_(total_seconds > 0.0 ? total_seconds
                                   : std::numeric_limits<double>::infinity()) {}

  [[nodiscard]] static DeadlineBudget unlimited() { return DeadlineBudget{}; }

  /// True when this budget actually constrains anything.
  [[nodiscard]] bool limited() const {
    return total_ != std::numeric_limits<double>::infinity();
  }

  [[nodiscard]] double total_seconds() const { return total_; }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Seconds left before the deadline; +inf when unlimited, clamped at 0.
  [[nodiscard]] double remaining_seconds() const {
    if (!limited()) return std::numeric_limits<double>::infinity();
    return std::max(0.0, total_ - elapsed_seconds());
  }

  [[nodiscard]] bool expired() const {
    return limited() && elapsed_seconds() >= total_;
  }

  /// A stage's share of what is left: min(remaining, fraction * total).
  /// +inf when unlimited, so `budget.limited()` gates whether the consumer
  /// arms a finite watchdog deadline.
  [[nodiscard]] double stage_allotment(double fraction) const {
    if (!limited()) return std::numeric_limits<double>::infinity();
    return std::min(remaining_seconds(), fraction * total_);
  }

  /// kDeadlineExceeded naming `stage` when the budget has run out, OK status
  /// otherwise — the between-stage check the pipeline performs.
  [[nodiscard]] Status check(const char* stage) const {
    if (!expired()) return {};
    std::ostringstream oss;
    oss << stage << ": budget of " << total_ << " s exhausted after "
        << elapsed_seconds() << " s";
    return {StatusCode::kDeadlineExceeded, oss.str()};
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_ = clock::now();
  double total_ = std::numeric_limits<double>::infinity();
};

}  // namespace neuro::base

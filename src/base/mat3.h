// 3x3 and 4x4 dense matrices for rigid transforms and per-element geometry.
#pragma once

#include <array>
#include <cmath>

#include "base/check.h"
#include "base/vec3.h"

namespace neuro {

/// Row-major 3x3 matrix.
struct Mat3 {
  std::array<double, 9> m{};  // row-major

  static constexpr Mat3 identity() {
    Mat3 r;
    r.m = {1, 0, 0, 0, 1, 0, 0, 0, 1};
    return r;
  }

  constexpr double& operator()(std::size_t r, std::size_t c) { return m[3 * r + c]; }
  constexpr double operator()(std::size_t r, std::size_t c) const { return m[3 * r + c]; }

  friend constexpr Vec3 operator*(const Mat3& a, const Vec3& v) {
    return {a.m[0] * v.x + a.m[1] * v.y + a.m[2] * v.z,
            a.m[3] * v.x + a.m[4] * v.y + a.m[5] * v.z,
            a.m[6] * v.x + a.m[7] * v.y + a.m[8] * v.z};
  }

  friend constexpr Mat3 operator*(const Mat3& a, const Mat3& b) {
    Mat3 r;
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        double s = 0.0;
        for (std::size_t k = 0; k < 3; ++k) s += a(i, k) * b(k, j);
        r(i, j) = s;
      }
    }
    return r;
  }

  friend constexpr Mat3 operator+(const Mat3& a, const Mat3& b) {
    Mat3 r;
    for (std::size_t i = 0; i < 9; ++i) r.m[i] = a.m[i] + b.m[i];
    return r;
  }

  friend constexpr Mat3 operator*(const Mat3& a, double s) {
    Mat3 r;
    for (std::size_t i = 0; i < 9; ++i) r.m[i] = a.m[i] * s;
    return r;
  }

  [[nodiscard]] constexpr Mat3 transposed() const {
    Mat3 r;
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j) r(i, j) = (*this)(j, i);
    return r;
  }

  [[nodiscard]] constexpr double det() const {
    return m[0] * (m[4] * m[8] - m[5] * m[7]) - m[1] * (m[3] * m[8] - m[5] * m[6]) +
           m[2] * (m[3] * m[7] - m[4] * m[6]);
  }

  /// Inverse; requires a non-singular matrix.
  [[nodiscard]] Mat3 inverse() const {
    const double d = det();
    NEURO_CHECK_MSG(std::abs(d) > 1e-300, "Mat3::inverse of singular matrix");
    const double id = 1.0 / d;
    Mat3 r;
    r.m[0] = (m[4] * m[8] - m[5] * m[7]) * id;
    r.m[1] = (m[2] * m[7] - m[1] * m[8]) * id;
    r.m[2] = (m[1] * m[5] - m[2] * m[4]) * id;
    r.m[3] = (m[5] * m[6] - m[3] * m[8]) * id;
    r.m[4] = (m[0] * m[8] - m[2] * m[6]) * id;
    r.m[5] = (m[2] * m[3] - m[0] * m[5]) * id;
    r.m[6] = (m[3] * m[7] - m[4] * m[6]) * id;
    r.m[7] = (m[1] * m[6] - m[0] * m[7]) * id;
    r.m[8] = (m[0] * m[4] - m[1] * m[3]) * id;
    return r;
  }
};

/// Rotation matrix from Euler angles (radians), applied in Z-Y-X order:
/// R = Rz(rz) * Ry(ry) * Rx(rx). This is the parameterization the rigid
/// registration optimizer works in; angles stay small for intraoperative
/// positioning corrections so gimbal issues are not a concern.
inline Mat3 rotation_zyx(double rx, double ry, double rz) {
  const double cx = std::cos(rx), sx = std::sin(rx);
  const double cy = std::cos(ry), sy = std::sin(ry);
  const double cz = std::cos(rz), sz = std::sin(rz);
  Mat3 Rx = Mat3::identity();
  Rx(1, 1) = cx; Rx(1, 2) = -sx; Rx(2, 1) = sx; Rx(2, 2) = cx;
  Mat3 Ry = Mat3::identity();
  Ry(0, 0) = cy; Ry(0, 2) = sy; Ry(2, 0) = -sy; Ry(2, 2) = cy;
  Mat3 Rz = Mat3::identity();
  Rz(0, 0) = cz; Rz(0, 1) = -sz; Rz(1, 0) = sz; Rz(1, 1) = cz;
  return Rz * Ry * Rx;
}

}  // namespace neuro

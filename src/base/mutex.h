// Annotated synchronization primitives (base/thread_annotations.h).
//
// base::Mutex / base::MutexLock / base::CondVar are thin, zero-overhead
// wrappers over the std:: primitives that carry Clang thread-safety
// capability annotations, so the locking discipline of every shared-state
// site in the library is checked at compile time (-Werror=thread-safety in
// the clang-static CI job). Library code under src/ must use this family —
// raw std::mutex / std::lock_guard / std::condition_variable are banned by
// check_sources.py (RAW_SYNC rule); the only grandfathered user of the raw
// primitives is this header itself.
//
// The wrappers add no state and every method is a single forwarded call, so
// codegen is identical to using std:: directly (the reference-path
// bit-identity gate in CI holds across the migration).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "base/thread_annotations.h"

namespace neuro::base {

/// A standard mutex, annotated as a capability. Prefer the RAII MutexLock;
/// lock()/unlock() exist for the rare hand-over-hand or adopt patterns.
class NEURO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NEURO_ACQUIRE() { m_.lock(); }
  void unlock() NEURO_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() NEURO_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// RAII lock over a base::Mutex (scoped capability: the analysis knows the
/// mutex is held between construction and destruction).
class NEURO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NEURO_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() NEURO_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with base::Mutex. Every wait overload requires
/// the mutex to be held (the annotation makes waiting on an unlocked mutex a
/// compile error); the wait releases it while blocked and reacquires before
/// returning, exactly like std::condition_variable.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  /// Blocks until notified. The caller must re-check its predicate (spurious
  /// wakeups pass through, as with the std primitive).
  void wait(Mutex& mu) NEURO_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(adopt(mu));
    cv_.wait(lock);
    lock.release();
  }

  /// Blocks until `pred()` holds.
  template <typename Predicate>
  void wait(Mutex& mu, Predicate pred) NEURO_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(adopt(mu));
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  /// Blocks until notified or `timeout` elapses; returns false on timeout.
  template <typename Rep, typename Period>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout)
      NEURO_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(adopt(mu));
    const auto status = cv_.wait_for(lock, timeout);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  /// Blocks until `pred()` holds or `timeout` elapses; returns pred().
  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
                Predicate pred) NEURO_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(adopt(mu));
    const bool result = cv_.wait_for(lock, timeout, std::move(pred));
    lock.release();
    return result;
  }

 private:
  /// Wraps the already-held underlying std::mutex for the std wait API
  /// without touching its lock count. The thread-safety analysis does not
  /// see through this — the NEURO_REQUIRES annotations above carry the
  /// contract instead.
  static std::unique_lock<std::mutex> adopt(Mutex& mu) {
    return std::unique_lock<std::mutex>(mu.m_, std::adopt_lock);
  }

  std::condition_variable cv_;
};

}  // namespace neuro::base

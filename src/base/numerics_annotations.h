// Numerical-determinism contract annotations (docs/static_analysis.md,
// "Determinism contracts and error discipline").
//
// Every correctness claim the repo makes — Fig. 4 accuracy, backend
// equivalence, fallback-rung determinism — rests on bit-identical replay.
// tools/lint/check_numerics.py statically rejects the constructs that break
// it (unordered-container iteration feeding floating-point accumulation,
// wall-clock or RNG reads on the solve path, exact floating-point compares,
// silently dropped Status/Outcome values). The macros below are the two
// halves of that contract:
//
//   NEURO_BITEXACT           marks a function as bit-exact-contract code.
//                            Inside such a function the analyzer applies its
//                            strict profile: *any* unordered-container
//                            iteration and *any* nondeterminism source is a
//                            finding, even in files the relaxed profile
//                            allowlists. The macro expands to nothing — it is
//                            a grep-able marker, not an attribute — so it
//                            compiles identically everywhere.
//
//   NEURO_STATUS_IGNORED(expr, reason)
//                            the one sanctioned way to drop a
//                            base::Status / base::Outcome return value. Both
//                            classes are declared [[nodiscard]] at class
//                            level, so a bare discarding call fails the
//                            NEURO_WERROR build; this macro casts the value
//                            to void *and* carries the mandatory grep-able
//                            reason the analyzer (and the reviewer) reads.
//
// The third marker is a comment, not a macro, mirroring NEURO_SPMD_OK:
//
//   // NEURO_NONDET_OK(<reason>)
//                            on the finding's line or the line above,
//                            suppresses one unordered-iteration /
//                            nondet-source / float-exact-compare finding.
//                            Exact sentinel compares (structural-zero drops,
//                            `sigma == 0.0` early-outs) and the sanctioned
//                            wall-clock reads (deadline watchdogs, recv
//                            timeouts) are the intended users; anything else
//                            is a hazard to fix, not to suppress.
#pragma once

// Marker only: the determinism contract is enforced by the static analyzer,
// not the compiler, so the expansion must be empty on every toolchain.
#define NEURO_BITEXACT

// Swallows a [[nodiscard]] Status/Outcome on purpose. The reason is part of
// the call so it cannot rot away from the discard site; the analyzer treats
// the marker itself as the suppression.
#define NEURO_STATUS_IGNORED(expr, reason) static_cast<void>(expr)

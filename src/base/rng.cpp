#include "base/rng.h"

#include <cmath>

#include "base/check.h"

namespace neuro {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  NEURO_REQUIRE(n > 0, "uniform_index requires n > 0");
  // Rejection-free modulo is fine here: n is always far below 2^64 so the
  // bias is immaterial for simulation noise / sampling purposes.
  return next_u64() % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller.
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

Rng Rng::split(std::uint64_t i) const {
  std::uint64_t mix = s_[0] ^ (0xa0761d6478bd642full * (i + 1));
  return Rng(splitmix64(mix));
}

}  // namespace neuro

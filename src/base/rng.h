// Deterministic random number generation.
//
// All stochastic components (phantom noise, prototype sampling, MI sampling)
// draw from this generator so that a fixed seed reproduces an experiment
// bit-for-bit — a requirement for the regression tests and for comparing
// partitioner/preconditioner ablations on identical inputs.
#pragma once

#include <cstdint>

namespace neuro {

/// xoshiro256** — small, fast, high-quality; state is value-copyable so each
/// parallel rank can own an independently seeded stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal variate (Box–Muller, one value per call).
  double normal();

  /// Creates an independent stream (splitmix jump) for rank `i`.
  [[nodiscard]] Rng split(std::uint64_t i) const;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace neuro

#include "base/status.h"

namespace neuro::base {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kSolverStagnated: return "solver_stagnated";
    case StatusCode::kSolverDiverged: return "solver_diverged";
    case StatusCode::kNumericalInvalid: return "numerical_invalid";
    case StatusCode::kCommFault: return "comm_fault";
    case StatusCode::kValidationFailed: return "validation_failed";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
  }
  return "unknown";
}

std::string Status::to_string() const {
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.to_string();
}

}  // namespace neuro::base

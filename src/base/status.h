// Typed, recoverable error propagation.
//
// NEURO_CHECK (base/check.h) is reserved for true invariant corruption: a
// violated internal consistency condition aborts the run, because continuing
// would ship garbage to the operating-room display. Everything else that can
// go wrong intraoperatively — a stagnating Krylov solve, a NaN in the
// iterate, a dropped SPMD message, a blown stage deadline — is *recoverable*:
// the pipeline has a degradation ladder (docs/robustness.md) that can still
// deliver a usable field. Those failures propagate as values: a Status names
// what happened, an Outcome<T> carries either the result or the Status, and
// StatusError wraps a Status for the few places (SPMD rank bodies) where an
// exception is the only way out of a call stack.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>

#include "base/check.h"

namespace neuro::base {

/// The failure taxonomy of the intraoperative pipeline. Every code except kOk
/// names a *recoverable* fault class the degradation ladder knows how to
/// handle; invariant corruption never gets a code — it aborts via NEURO_CHECK.
enum class StatusCode : std::uint8_t {
  kOk,
  kDeadlineExceeded,   ///< a stage or solver ran out of its time budget
  kSolverStagnated,    ///< residual plateaued below useful progress
  kSolverDiverged,     ///< residual grew past the divergence bound
  kNumericalInvalid,   ///< NaN/Inf in an iterate, RHS, or result field
  kCommFault,          ///< dropped/corrupted/unmatched SPMD message, stalled rank
  kValidationFailed,   ///< a candidate field failed the acceptance gate
  kFailedPrecondition, ///< inputs outside the contract, detected before work
  kUnavailable,        ///< a requested fallback resource does not exist
  kResourceExhausted,  ///< a bounded queue or pool is full; retry later
};

/// Short stable name, e.g. "deadline_exceeded".
const char* status_code_name(StatusCode code);

/// A status code plus a human-readable context message. Default-constructed
/// Status is OK; error statuses carry the code and message of the failure.
/// [[nodiscard]] at class level: a dropped Status is a swallowed deadline
/// violation or solver fault — discard only via NEURO_STATUS_IGNORED(expr,
/// reason) (base/numerics_annotations.h), which keeps the reason grep-able.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "solver_stagnated: residual plateaued at 3.2e-05 over 50 iterations".
  [[nodiscard]] std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Exception carrier for a Status, for call stacks that cannot return values
/// (SPMD rank bodies, deep stage internals). Derives from CheckError so
/// legacy catch sites keep working; new code should catch StatusError and
/// consult status().code() instead of string-matching.
class StatusError : public CheckError {
 public:
  explicit StatusError(Status status)
      : CheckError(status.to_string()), status_(std::move(status)) {}

  [[nodiscard]] const Status& status() const { return status_; }

 private:
  Status status_;
};

/// Either a T or the Status explaining why there is no T. The pipeline's
/// degradation ladder returns Outcome<DeformationResult>: callers inspect
/// status() instead of discovering a silent `converged = false` three layers
/// up. Accessing value() on an error outcome is itself invariant corruption
/// and aborts. [[nodiscard]] at class level, like Status: an unread Outcome
/// silently discards either the result or the failure explaining its absence.
template <class T>
class [[nodiscard]] Outcome {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): `return result;` at ladder exits
  Outcome(T value) : value_(std::move(value)), has_value_(true) {}
  // NOLINTNEXTLINE(google-explicit-constructor): `return status;` at ladder exits
  Outcome(Status status) : status_(std::move(status)) {
    NEURO_REQUIRE(!status_.ok(), "Outcome: error constructor needs a non-OK status");
  }

  [[nodiscard]] bool ok() const { return has_value_; }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() {
    NEURO_CHECK_MSG(has_value_, "Outcome::value() on error: " << status_);
    return value_;
  }
  [[nodiscard]] const T& value() const {
    NEURO_CHECK_MSG(has_value_, "Outcome::value() on error: " << status_);
    return value_;
  }

 private:
  Status status_;
  T value_{};
  bool has_value_ = false;
};

}  // namespace neuro::base

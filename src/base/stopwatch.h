// Wall-clock timing helper used by the pipeline timeline and the benches.
#pragma once

#include <chrono>

namespace neuro {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace neuro

#include "base/strong_id.h"

#include "base/check.h"

namespace neuro::base::detail {

void id_bounds_failed() {
  throw CheckError("strong-id bounds check failed: id outside container");
}

}  // namespace neuro::base::detail

// Strong index types — compile-time separation of the repo's index spaces.
//
// The pipeline juggles half a dozen integer index spaces: tet-mesh nodes,
// tetrahedra, surface vertices/triangles, per-node dofs, and the solver's
// local/global row numbering (the 3·N-equation system the paper distributes
// across CPUs). A raw `int` lets any of them silently stand in for any other;
// a node/dof or local/global mix-up then compiles fine and surfaces only as a
// wrong deformation field. StrongId<Tag> makes each space its own type:
// construction from an integer is explicit, cross-tag assignment/comparison
// does not compile, and the only arithmetic provided is what an index
// legitimately supports (increment, offset by a count, distance between two
// ids of the same space). Everything is constexpr and the representation is a
// bare int32 — in Release builds the types compile away entirely
// (see bench_micro's typed-indexing cases).
//
// Adding a new index space is one line:
//
//   using FooId = base::StrongId<struct FooIdTag>;
//
// and containers indexed by it are IdVector<FooId, T> / IdSpan<FooId, T>,
// whose operator[] only accepts FooId (bounds-checked in debug builds, raw
// indexing in Release). Contiguous runs of ids are IdRange<FooId>, whose
// members are named first/second so it binds and reads like the std::pair
// ranges it replaced. docs/static_analysis.md § "Index spaces and strong IDs"
// has the full map of tags and conversion points.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <vector>

namespace neuro::base {

/// A typed integer index. `Tag` is any (possibly incomplete) type; distinct
/// tags give unrelated, non-interconvertible id types.
template <class Tag>
class StrongId {
 public:
  using Rep = std::int32_t;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : v_(v) {}
  constexpr explicit StrongId(std::size_t v) : v_(static_cast<Rep>(v)) {}
  constexpr explicit StrongId(std::int64_t v) : v_(static_cast<Rep>(v)) {}

  /// The underlying integer, for arithmetic that leaves this index space
  /// (e.g. flop accounting) — an explicit, grep-able escape hatch.
  [[nodiscard]] constexpr Rep value() const { return v_; }
  /// The underlying integer as a size_t, for raw-container subscripts.
  [[nodiscard]] constexpr std::size_t index() const {
    return static_cast<std::size_t>(v_);
  }

  friend constexpr bool operator==(StrongId, StrongId) = default;
  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  constexpr StrongId& operator++() {
    ++v_;
    return *this;
  }
  constexpr StrongId operator++(int) {
    StrongId old = *this;
    ++v_;
    return old;
  }
  constexpr StrongId& operator--() {
    --v_;
    return *this;
  }
  constexpr StrongId operator--(int) {
    StrongId old = *this;
    --v_;
    return old;
  }

  /// Offset by a count stays in the same index space…
  constexpr StrongId& operator+=(Rep d) {
    v_ += d;
    return *this;
  }
  constexpr StrongId& operator-=(Rep d) {
    v_ -= d;
    return *this;
  }
  friend constexpr StrongId operator+(StrongId a, Rep d) { return StrongId(a.v_ + d); }
  friend constexpr StrongId operator+(Rep d, StrongId a) { return StrongId(a.v_ + d); }
  friend constexpr StrongId operator-(StrongId a, Rep d) { return StrongId(a.v_ - d); }
  /// …while the distance between two ids of the same space is a plain count.
  friend constexpr Rep operator-(StrongId a, StrongId b) { return a.v_ - b.v_; }

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.v_;
  }

 private:
  Rep v_{0};
};

/// Half-open run [first, second) of one id space. Members are named like
/// std::pair's on purpose: partition and row ranges migrated from
/// std::pair<int, int>, and `.first`/`.second` plus structured bindings keep
/// working — now with typed ends.
template <class Id>
struct IdRange {
  Id first{};
  Id second{};

  using Rep = typename Id::Rep;

  [[nodiscard]] constexpr Rep size() const { return second - first; }
  [[nodiscard]] constexpr bool empty() const { return !(first < second); }
  [[nodiscard]] constexpr bool contains(Id id) const {
    return first <= id && id < second;
  }
  /// Zero-based offset of `id` within the range (the "local" index).
  [[nodiscard]] constexpr Rep offset_of(Id id) const { return id - first; }

  friend constexpr bool operator==(IdRange, IdRange) = default;

  /// Iteration yields the ids themselves: `for (NodeId n : part.ranges[r])`.
  struct iterator {
    Id id;
    constexpr Id operator*() const { return id; }
    constexpr iterator& operator++() {
      ++id;
      return *this;
    }
    friend constexpr bool operator==(iterator, iterator) = default;
  };
  [[nodiscard]] constexpr iterator begin() const { return {first}; }
  [[nodiscard]] constexpr iterator end() const { return {second}; }
};

/// The range [0, count) of an id space.
template <class Id>
[[nodiscard]] constexpr IdRange<Id> id_range(typename Id::Rep count) {
  return {Id{0}, Id{count}};
}

#if defined(NDEBUG)
#define NEURO_ID_BOUNDS_CHECK(cond) ((void)0)
#else
#define NEURO_ID_BOUNDS_CHECK(cond) \
  ((cond) ? (void)0 : ::neuro::base::detail::id_bounds_failed())
#endif

namespace detail {
[[noreturn]] void id_bounds_failed();
}  // namespace detail

/// std::vector whose operator[] takes the matching id type and nothing else.
/// Debug builds bounds-check every access; Release compiles to raw indexing.
/// Iteration, push_back and the wire-format escape hatch raw() are untyped on
/// purpose — only *indexing* is where index spaces get confused.
template <class Id, class T>
class IdVector {
 public:
  using value_type = T;
  using iterator = typename std::vector<T>::iterator;
  using const_iterator = typename std::vector<T>::const_iterator;

  IdVector() = default;
  explicit IdVector(std::size_t n, const T& fill = T{}) : v_(n, fill) {}
  IdVector(std::initializer_list<T> init) : v_(init) {}
  explicit IdVector(std::vector<T> v) : v_(std::move(v)) {}

  [[nodiscard]] T& operator[](Id id) {
    NEURO_ID_BOUNDS_CHECK(id.index() < v_.size());
    return v_[id.index()];
  }
  [[nodiscard]] const T& operator[](Id id) const {
    NEURO_ID_BOUNDS_CHECK(id.index() < v_.size());
    return v_[id.index()];
  }

  [[nodiscard]] std::size_t size() const { return v_.size(); }
  [[nodiscard]] bool empty() const { return v_.empty(); }
  /// One-past-the-last valid id.
  [[nodiscard]] Id end_id() const { return Id{v_.size()}; }
  /// All valid ids, for typed loops: `for (NodeId n : mesh.nodes.ids())`.
  [[nodiscard]] IdRange<Id> ids() const { return {Id{0}, end_id()}; }

  [[nodiscard]] iterator begin() { return v_.begin(); }
  [[nodiscard]] iterator end() { return v_.end(); }
  [[nodiscard]] const_iterator begin() const { return v_.begin(); }
  [[nodiscard]] const_iterator end() const { return v_.end(); }
  [[nodiscard]] T* data() { return v_.data(); }
  [[nodiscard]] const T* data() const { return v_.data(); }
  [[nodiscard]] T& front() { return v_.front(); }
  [[nodiscard]] const T& front() const { return v_.front(); }
  [[nodiscard]] T& back() { return v_.back(); }
  [[nodiscard]] const T& back() const { return v_.back(); }

  void push_back(const T& t) { v_.push_back(t); }
  void push_back(T&& t) { v_.push_back(std::move(t)); }
  template <class... Args>
  T& emplace_back(Args&&... args) {
    return v_.emplace_back(std::forward<Args>(args)...);
  }
  void resize(std::size_t n) { v_.resize(n); }
  void resize(std::size_t n, const T& fill) { v_.resize(n, fill); }
  void reserve(std::size_t n) { v_.reserve(n); }
  void assign(std::size_t n, const T& fill) { v_.assign(n, fill); }
  void clear() { v_.clear(); }
  void swap(IdVector& other) noexcept { v_.swap(other.v_); }

  /// The untyped storage, for wire formats and bulk algorithms. Indexing
  /// through raw() is the reviewed escape hatch — keep it rare.
  [[nodiscard]] std::vector<T>& raw() { return v_; }
  [[nodiscard]] const std::vector<T>& raw() const { return v_; }

  friend bool operator==(const IdVector&, const IdVector&) = default;

 private:
  std::vector<T> v_;
};

/// Non-owning view with the same typed operator[] as IdVector. `T` may be
/// const-qualified for read-only views.
template <class Id, class T>
class IdSpan {
 public:
  constexpr IdSpan() = default;
  constexpr IdSpan(T* data, std::size_t size) : data_(data), size_(size) {}
  // NOLINTNEXTLINE(google-explicit-constructor): spans are views
  constexpr IdSpan(IdVector<Id, std::remove_const_t<T>>& v)
      : data_(v.data()), size_(v.size()) {}
  // NOLINTNEXTLINE(google-explicit-constructor): spans are views
  constexpr IdSpan(const IdVector<Id, std::remove_const_t<T>>& v)
    requires std::is_const_v<T>
      : data_(v.data()), size_(v.size()) {}

  [[nodiscard]] constexpr T& operator[](Id id) const {
    NEURO_ID_BOUNDS_CHECK(id.index() < size_);
    return data_[id.index()];
  }

  [[nodiscard]] constexpr std::size_t size() const { return size_; }
  [[nodiscard]] constexpr bool empty() const { return size_ == 0; }
  [[nodiscard]] Id end_id() const { return Id{size_}; }
  [[nodiscard]] IdRange<Id> ids() const { return {Id{0}, end_id()}; }
  [[nodiscard]] constexpr T* begin() const { return data_; }
  [[nodiscard]] constexpr T* end() const { return data_ + size_; }
  [[nodiscard]] constexpr T* data() const { return data_; }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace neuro::base

namespace neuro {

/// A rank (CPU) of the SPMD team — used across mesh partitioning and the
/// solver's exchange plans; par::Communicator::rank_id() bridges to it.
using Rank = base::StrongId<struct RankTag>;

}  // namespace neuro

template <class Tag>
struct std::hash<neuro::base::StrongId<Tag>> {
  std::size_t operator()(neuro::base::StrongId<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.value());
  }
};

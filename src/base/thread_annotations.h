// Clang thread-safety capability annotations (no-ops on other compilers).
//
// These macros attach locking contracts to types, members and functions so
// that Clang's -Wthread-safety analysis can prove, at compile time, that
// every access to shared mutable state happens under the lock that guards it
// — the concurrency analogue of the strong-ID layer (base/strong_id.h): a
// locking mistake becomes a compile error instead of a TSan report that
// depends on hitting the right interleaving in a test.
//
// Usage pattern (see base/mutex.h for the annotated primitives):
//
//   class Registry {
//    public:
//     void add(int v) {
//       base::MutexLock lock(&mutex_);
//       values_.push_back(v);             // OK: mutex_ held
//     }
//    private:
//     base::Mutex mutex_;
//     std::vector<int> values_ NEURO_GUARDED_BY(mutex_);
//   };
//
// Private helper functions that assume the caller holds the lock are
// annotated NEURO_REQUIRES(mutex_) — the repo convention is to also suffix
// them `_locked`. State that is intentionally synchronized by some other
// mechanism (atomics, a barrier protocol, thread-confinement) is left
// unannotated with a comment explaining the exemption; the inventory of such
// exemptions lives in docs/static_analysis.md ("Capability annotations").
//
// The analysis runs in the clang-static CI job (-Werror=thread-safety) and
// its negative space is pinned by tests/compile_fail/ts_*.cpp. GCC and
// MSVC compile the macros away entirely, so non-Clang builds are unaffected.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define NEURO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define NEURO_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a capability (lockable). The string names the capability
/// kind in diagnostics, conventionally "mutex".
#define NEURO_CAPABILITY(x) NEURO_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability (base::MutexLock).
#define NEURO_SCOPED_CAPABILITY NEURO_THREAD_ANNOTATION(scoped_lockable)

/// A data member readable/writable only while `x` is held.
#define NEURO_GUARDED_BY(x) NEURO_THREAD_ANNOTATION(guarded_by(x))

/// A pointer member whose *pointee* is guarded by `x` (the pointer itself
/// may be read freely).
#define NEURO_PT_GUARDED_BY(x) NEURO_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function may only be called while the listed capabilities are held
/// (and they remain held on return). The `_locked` helper convention.
#define NEURO_REQUIRES(...) \
  NEURO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function acquires the listed capabilities and does not release them.
#define NEURO_ACQUIRE(...) \
  NEURO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities (which must be held).
#define NEURO_RELEASE(...) \
  NEURO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function acquires the capability if (and only if) it returns the
/// stated value (try_lock).
#define NEURO_TRY_ACQUIRE(...) \
  NEURO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The function must NOT be called while the listed capabilities are held —
/// it acquires them itself; calling with one held is a self-deadlock.
#define NEURO_EXCLUDES(...) NEURO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Documents (and teaches the analysis) that a function returns a reference
/// to the given capability.
#define NEURO_RETURN_CAPABILITY(x) NEURO_THREAD_ANNOTATION(lock_returned(x))

/// Asserts at runtime that the capability is held; the analysis trusts it.
/// Reserved for code reached from contexts the analysis cannot see.
#define NEURO_ASSERT_CAPABILITY(x) \
  NEURO_THREAD_ANNOTATION(assert_capability(x))

/// Turns the analysis off for one function. Every use must carry a comment
/// explaining which out-of-band mechanism provides the synchronization.
#define NEURO_NO_THREAD_SAFETY_ANALYSIS \
  NEURO_THREAD_ANNOTATION(no_thread_safety_analysis)

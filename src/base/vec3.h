// Small fixed-size linear-algebra types used throughout the library.
//
// These are deliberately minimal: the FEM and image code paths need 3-vectors
// and a handful of small dense matrices with predictable, inline-able
// arithmetic. Anything larger (the global stiffness system) lives in
// neuro::solver as distributed sparse structures.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <ostream>

namespace neuro {

/// A 3-component vector of double. Used for node coordinates, displacements,
/// forces, and image-space physical points.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr double& operator[](std::size_t i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr double operator[](std::size_t i) const { return i == 0 ? x : (i == 1 ? y : z); }

  constexpr Vec3& operator+=(const Vec3& o) { x += o.x; y += o.y; z += o.z; return *this; }
  constexpr Vec3& operator-=(const Vec3& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  constexpr Vec3& operator*=(double s) { x *= s; y *= s; z *= s; return *this; }
  constexpr Vec3& operator/=(double s) { x /= s; y /= s; z /= s; return *this; }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }
  friend constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
  friend constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }
  friend constexpr Vec3 operator/(Vec3 a, double s) { return a /= s; }

  friend constexpr bool operator==(const Vec3& a, const Vec3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }

  friend std::ostream& operator<<(std::ostream& os, const Vec3& v) {
    return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
  }
};

constexpr double dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

inline double norm(const Vec3& a) { return std::sqrt(dot(a, a)); }

constexpr double norm2(const Vec3& a) { return dot(a, a); }

/// Returns a/|a|, or the zero vector when |a| is (numerically) zero.
inline Vec3 normalized(const Vec3& a) {
  const double n = norm(a);
  return n > 0.0 ? a / n : Vec3{};
}

/// Integer 3-vector: voxel indices and lattice coordinates.
struct IVec3 {
  int x = 0;
  int y = 0;
  int z = 0;

  constexpr IVec3() = default;
  constexpr IVec3(int x_, int y_, int z_) : x(x_), y(y_), z(z_) {}

  constexpr int& operator[](std::size_t i) { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr int operator[](std::size_t i) const { return i == 0 ? x : (i == 1 ? y : z); }

  friend constexpr IVec3 operator+(const IVec3& a, const IVec3& b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend constexpr IVec3 operator-(const IVec3& a, const IVec3& b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend constexpr bool operator==(const IVec3& a, const IVec3& b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }

  friend std::ostream& operator<<(std::ostream& os, const IVec3& v) {
    return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
  }
};

constexpr Vec3 to_vec3(const IVec3& v) {
  return {static_cast<double>(v.x), static_cast<double>(v.y), static_cast<double>(v.z)};
}

/// Axis-aligned bounding box in physical (double) coordinates.
struct Aabb {
  Vec3 lo{1e300, 1e300, 1e300};
  Vec3 hi{-1e300, -1e300, -1e300};

  void expand(const Vec3& p) {
    for (std::size_t i = 0; i < 3; ++i) {
      lo[i] = p[i] < lo[i] ? p[i] : lo[i];
      hi[i] = p[i] > hi[i] ? p[i] : hi[i];
    }
  }

  [[nodiscard]] bool contains(const Vec3& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }

  [[nodiscard]] bool valid() const { return lo.x <= hi.x; }
};

}  // namespace neuro

#include "core/deformation_field.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "image/filters.h"

namespace neuro::core {

ImageV rasterize_displacements(const mesh::TetMesh& mesh,
                               const std::vector<Vec3>& node_displacements,
                               const ImageF& grid, ImageL* support) {
  NEURO_REQUIRE(static_cast<int>(node_displacements.size()) == mesh.num_nodes(),
                "rasterize: displacement count != node count");
  ImageV out(grid.dims(), Vec3{}, grid.spacing(), grid.origin());
  if (support != nullptr) {
    *support = ImageL(grid.dims(), 0, grid.spacing(), grid.origin());
  }
  const IVec3 d = out.dims();
  const Vec3 sp = out.spacing();
  const Vec3 org = out.origin();

  // Scan each tet's voxel bounding box; inside-tests use barycentrics with a
  // small tolerance so faces shared between tets claim their voxels exactly
  // once (last writer wins; the field is continuous across faces anyway).
  constexpr double kTol = 1e-9;
  for (const mesh::TetId t : mesh.tet_ids()) {
    const auto& tet = mesh.tets[t];
    const Vec3& a = mesh.nodes[tet[0]];
    const Vec3& b = mesh.nodes[tet[1]];
    const Vec3& c = mesh.nodes[tet[2]];
    const Vec3& e = mesh.nodes[tet[3]];
    Aabb box;
    box.expand(a);
    box.expand(b);
    box.expand(c);
    box.expand(e);
    const int i0 = std::max(0, static_cast<int>(std::ceil((box.lo.x - org.x) / sp.x)));
    const int j0 = std::max(0, static_cast<int>(std::ceil((box.lo.y - org.y) / sp.y)));
    const int k0 = std::max(0, static_cast<int>(std::ceil((box.lo.z - org.z) / sp.z)));
    const int i1 = std::min(d.x - 1, static_cast<int>(std::floor((box.hi.x - org.x) / sp.x)));
    const int j1 = std::min(d.y - 1, static_cast<int>(std::floor((box.hi.y - org.y) / sp.y)));
    const int k1 = std::min(d.z - 1, static_cast<int>(std::floor((box.hi.z - org.z) / sp.z)));

    for (int k = k0; k <= k1; ++k) {
      for (int j = j0; j <= j1; ++j) {
        for (int i = i0; i <= i1; ++i) {
          const Vec3 p = out.voxel_to_physical(i, j, k);
          const auto l = mesh::barycentric(a, b, c, e, p);
          if (l[0] < -kTol || l[1] < -kTol || l[2] < -kTol || l[3] < -kTol) continue;
          Vec3 u{};
          for (std::size_t v = 0; v < 4; ++v) {
            u += l[v] * node_displacements[tet[v].index()];
          }
          out(i, j, k) = u;
          if (support != nullptr) (*support)(i, j, k) = 1;
        }
      }
    }
  }
  return out;
}

void extend_displacement_field(ImageV& field, const ImageL& support, int passes,
                               double decay_per_pass) {
  NEURO_REQUIRE(field.dims() == support.dims(), "extend: grid mismatch");
  NEURO_REQUIRE(passes >= 0 && decay_per_pass > 0.0 && decay_per_pass <= 1.0,
                "extend: bad parameters");
  const IVec3 d = field.dims();
  ImageL filled = support;
  for (int pass = 0; pass < passes; ++pass) {
    ImageL next_filled = filled;
    ImageV next_field = field;
    for (int k = 0; k < d.z; ++k) {
      for (int j = 0; j < d.y; ++j) {
        for (int i = 0; i < d.x; ++i) {
          if (filled(i, j, k)) continue;
          Vec3 acc{};
          int n = 0;
          auto probe = [&](int ii, int jj, int kk) {
            if (ii < 0 || jj < 0 || kk < 0 || ii >= d.x || jj >= d.y || kk >= d.z) return;
            if (filled(ii, jj, kk)) {
              acc += field(ii, jj, kk);
              ++n;
            }
          };
          probe(i - 1, j, k);
          probe(i + 1, j, k);
          probe(i, j - 1, k);
          probe(i, j + 1, k);
          probe(i, j, k - 1);
          probe(i, j, k + 1);
          if (n > 0) {
            next_field(i, j, k) = (decay_per_pass / n) * acc;
            next_filled(i, j, k) = 1;
          }
        }
      }
    }
    filled = std::move(next_filled);
    field = std::move(next_field);
  }
}

ImageV invert_displacement_field(const ImageV& forward, int iterations) {
  NEURO_REQUIRE(iterations >= 1, "invert_displacement_field: iterations >= 1");
  ImageV inverse(forward.dims(), Vec3{}, forward.spacing(), forward.origin());
  const IVec3 d = forward.dims();
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        const Vec3 y = forward.voxel_to_physical(i, j, k);
        Vec3 v{};
        for (int it = 0; it < iterations; ++it) {
          const Vec3 probe = forward.physical_to_voxel(y + v);
          v = -1.0 * sample_trilinear_vec(forward, probe);
        }
        inverse(i, j, k) = v;
      }
    }
  }
  return inverse;
}

ImageF warp_backward(const ImageF& img, const ImageV& field, float outside) {
  NEURO_REQUIRE(img.dims() == field.dims(), "warp_backward: grid mismatch");
  ImageF out(field.dims(), outside, field.spacing(), field.origin());
  const IVec3 d = out.dims();
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        const Vec3 y = out.voxel_to_physical(i, j, k);
        const Vec3 src = img.physical_to_voxel(y + field(i, j, k));
        if (src.x < 0 || src.y < 0 || src.z < 0 || src.x > d.x - 1 ||
            src.y > d.y - 1 || src.z > d.z - 1) {
          continue;
        }
        out(i, j, k) = static_cast<float>(sample_trilinear(img, src));
      }
    }
  }
  return out;
}

ImageL warp_backward_labels(const ImageL& labels, const ImageV& field,
                            std::uint8_t outside) {
  NEURO_REQUIRE(labels.dims() == field.dims(), "warp_backward_labels: grid mismatch");
  ImageL out(field.dims(), outside, field.spacing(), field.origin());
  const IVec3 d = out.dims();
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        const Vec3 y = out.voxel_to_physical(i, j, k);
        const Vec3 src = labels.physical_to_voxel(y + field(i, j, k));
        const int ii = static_cast<int>(src.x + 0.5);
        const int jj = static_cast<int>(src.y + 0.5);
        const int kk = static_cast<int>(src.z + 0.5);
        if (ii < 0 || jj < 0 || kk < 0 || ii >= d.x || jj >= d.y || kk >= d.z) continue;
        out(i, j, k) = labels(ii, jj, kk);
      }
    }
  }
  return out;
}

FieldStats field_stats(const ImageV& field, const ImageL* mask) {
  if (mask != nullptr) {
    NEURO_REQUIRE(mask->dims() == field.dims(), "field_stats: mask grid mismatch");
  }
  FieldStats s;
  double sum = 0.0, sum2 = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < field.size(); ++i) {
    if (mask != nullptr && mask->data()[i] == 0) continue;
    const double m = norm(field.data()[i]);
    sum += m;
    sum2 += m * m;
    s.max_mm = std::max(s.max_mm, m);
    ++n;
  }
  if (n > 0) {
    s.mean_mm = sum / static_cast<double>(n);
    s.rms_mm = std::sqrt(sum2 / static_cast<double>(n));
  }
  return s;
}

ImageV compose_backward_fields(const ImageV& v1, const ImageV& v2) {
  NEURO_REQUIRE(v1.dims() == v2.dims(), "compose_backward_fields: grid mismatch");
  ImageV out(v2.dims(), Vec3{}, v2.spacing(), v2.origin());
  const IVec3 d = out.dims();
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        const Vec3 y = out.voxel_to_physical(i, j, k);
        const Vec3 mid = y + v2(i, j, k);
        out(i, j, k) =
            v2(i, j, k) + sample_trilinear_vec(v1, v1.physical_to_voxel(mid));
      }
    }
  }
  return out;
}

ImageF jacobian_determinant(const ImageV& field) {
  const IVec3 d = field.dims();
  const Vec3 sp = field.spacing();
  ImageF out(d, 1.0f, sp, field.origin());
  auto at = [&](int i, int j, int k) {
    i = std::clamp(i, 0, d.x - 1);
    j = std::clamp(j, 0, d.y - 1);
    k = std::clamp(k, 0, d.z - 1);
    return field(i, j, k);
  };
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        // ∇φ = I + ∇u, central differences in physical units.
        const Vec3 dx = (at(i + 1, j, k) - at(i - 1, j, k)) / (2.0 * sp.x);
        const Vec3 dy = (at(i, j + 1, k) - at(i, j - 1, k)) / (2.0 * sp.y);
        const Vec3 dz = (at(i, j, k + 1) - at(i, j, k - 1)) / (2.0 * sp.z);
        const double a00 = 1.0 + dx.x, a01 = dy.x, a02 = dz.x;
        const double a10 = dx.y, a11 = 1.0 + dy.y, a12 = dz.y;
        const double a20 = dx.z, a21 = dy.z, a22 = 1.0 + dz.z;
        out(i, j, k) = static_cast<float>(a00 * (a11 * a22 - a12 * a21) -
                                          a01 * (a10 * a22 - a12 * a20) +
                                          a02 * (a10 * a21 - a11 * a20));
      }
    }
  }
  return out;
}

std::size_t count_folded_voxels(const ImageV& field, const ImageL* mask) {
  if (mask != nullptr) {
    NEURO_REQUIRE(mask->dims() == field.dims(), "count_folded_voxels: grid mismatch");
  }
  const ImageF jac = jacobian_determinant(field);
  std::size_t folded = 0;
  for (std::size_t i = 0; i < jac.size(); ++i) {
    if (mask != nullptr && mask->data()[i] == 0) continue;
    folded += jac.data()[i] <= 0.0f;
  }
  return folded;
}

FieldStats field_error(const ImageV& a, const ImageV& b, const ImageL* mask) {
  NEURO_REQUIRE(a.dims() == b.dims(), "field_error: grid mismatch");
  ImageV diff(a.dims(), Vec3{}, a.spacing(), a.origin());
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff.data()[i] = a.data()[i] - b.data()[i];
  }
  return field_stats(diff, mask);
}

}  // namespace neuro::core

// Volumetric deformation fields: rasterizing the FEM solution onto the image
// grid, inverting it, and warping volumes through it.
//
// The FEM stage produces displacements at mesh nodes; "for display of the
// simulated deformation we need to resample a data set according to the
// computed deformation" (paper §3.2, the ~0.5 s step). Rasterization
// interpolates nodal displacements with the elements' linear shape functions
// (the same interpolation the FEM itself uses), the inverse is computed by
// fixed-point iteration, and warping is a backward trilinear resample.
#pragma once

#include <vector>

#include "image/image3d.h"
#include "mesh/tet_mesh.h"

namespace neuro::core {

/// Rasterizes per-node displacements onto `grid` (any image defines the grid;
/// its pixel data is ignored). Voxels outside every tetrahedron get zero.
/// When `support` is non-null it receives a 1/0 mask of covered voxels.
ImageV rasterize_displacements(const mesh::TetMesh& mesh,
                               const std::vector<Vec3>& node_displacements,
                               const ImageF& grid, ImageL* support = nullptr);

/// Extends a field beyond its support by breadth-first propagation: each pass
/// fills voxels adjacent to already-filled ones with the mean of their filled
/// neighbours scaled by `decay_per_pass`. Needed before inversion: the forward
/// FEM field ends abruptly at the brain surface, and the fixed-point inversion
/// at the brain-shift gap must see a smooth continuation (the tissue the gap
/// voxels "came from" lies just outside the mesh).
void extend_displacement_field(ImageV& field, const ImageL& support, int passes,
                               double decay_per_pass = 0.9);

/// Inverts a displacement field by fixed-point iteration: returns v with
/// v(y) ≈ −u(y + v(y)), so that y + v(y) recovers the source point of y.
ImageV invert_displacement_field(const ImageV& forward, int iterations = 10);

/// Backward warp: out(y) = img(y + field(y)) with trilinear interpolation.
/// `field` holds physical-unit displacement vectors on the output grid.
ImageF warp_backward(const ImageF& img, const ImageV& field, float outside = 0.0f);

/// Nearest-neighbour warp for label maps.
ImageL warp_backward_labels(const ImageL& labels, const ImageV& field,
                            std::uint8_t outside = 0);

/// Magnitude statistics of a vector field within an optional mask.
struct FieldStats {
  double mean_mm = 0.0;
  double max_mm = 0.0;
  double rms_mm = 0.0;
};
FieldStats field_stats(const ImageV& field, const ImageL* mask = nullptr);

/// Pointwise error between two displacement fields within an optional mask.
FieldStats field_error(const ImageV& a, const ImageV& b, const ImageL* mask = nullptr);

/// Composition of two backward fields on the same grid: if v1 maps scan-2
/// points to scan-1 space and v2 maps scan-3 points to scan-2 space, the
/// returned field maps scan-3 points directly to scan-1 space:
///   v(y) = v2(y) + v1(y + v2(y)).
/// This is how a multi-scan procedure (SurgerySession) chains incremental
/// deformations without resampling the data repeatedly.
ImageV compose_backward_fields(const ImageV& v1, const ImageV& v2);

/// det(∇φ) of the map φ(y) = y + field(y), central differences. A physically
/// valid deformation is orientation-preserving: the determinant stays
/// positive everywhere (values < 0 mean the recovered field folds tissue onto
/// itself — a diagnostic no intensity comparison can provide).
ImageF jacobian_determinant(const ImageV& field);

/// Number of voxels where det(∇φ) <= 0 within an optional mask.
std::size_t count_folded_voxels(const ImageV& field, const ImageL* mask = nullptr);

}  // namespace neuro::core

#include "core/evaluation.h"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "base/check.h"
#include "image/distance.h"
#include "image/filters.h"
#include "seg/knn.h"

namespace neuro::core {

AccuracyReport evaluate_against_truth(const PipelineResult& result,
                                      const phantom::PhantomCase& truth) {
  using phantom::Tissue;
  AccuracyReport report;

  const std::vector<std::uint8_t> brainish = {
      phantom::label(Tissue::kBrain), phantom::label(Tissue::kVentricle),
      phantom::label(Tissue::kFalx), phantom::label(Tissue::kTumor)};
  const ImageL true_mask = seg::mask_of_labels(truth.intraop_labels, brainish);

  report.residual_rigid_only = field_stats(truth.true_backward_shift, &true_mask);

  // Recovered total backward map composed with the rigid stage:
  // intraop y → preop T(y + v_nr(y)); truth maps y → y + v_true(y).
  {
    ImageV err(truth.true_backward_shift.dims(), Vec3{},
               truth.true_backward_shift.spacing(), truth.true_backward_shift.origin());
    const IVec3 d = err.dims();
    for (int k = 0; k < d.z; ++k) {
      for (int j = 0; j < d.y; ++j) {
        for (int i = 0; i < d.x; ++i) {
          const Vec3 y = err.voxel_to_physical(i, j, k);
          const Vec3 recovered = result.rigid.apply(y + result.backward_field(i, j, k));
          const Vec3 expected = y + truth.true_backward_shift(i, j, k);
          err(i, j, k) = recovered - expected;
        }
      }
    }
    report.recovered_error = field_stats(err, &true_mask);
  }

  report.mad_rigid_only =
      mean_abs_difference(result.aligned_preop, truth.intraop, &true_mask);
  report.mad_simulated =
      mean_abs_difference(result.warped_preop, truth.intraop, &true_mask);

  // Boundary band: within 3 mm of the true intraop brain surface — where the
  // paper's Fig. 4d judges the match.
  {
    const ImageF sdf = signed_distance_to_label(true_mask, 1, 1000.0);
    ImageL band(true_mask.dims(), 0, true_mask.spacing(), true_mask.origin());
    for (std::size_t i = 0; i < band.size(); ++i) {
      band.data()[i] = std::abs(sdf.data()[i]) <= 3.0 ? 1 : 0;
    }
    report.mad_boundary_rigid_only =
        mean_abs_difference(result.aligned_preop, truth.intraop, &band);
    report.mad_boundary_simulated =
        mean_abs_difference(result.warped_preop, truth.intraop, &band);
  }

  report.brain_dice = seg::dice_coefficient(result.intraop_brain_mask, true_mask, 1);
  report.surface_residual_mm = result.surface_match.mean_abs_potential;
  return report;
}

void print_report(const AccuracyReport& r, std::ostream& os) {
  // Format into a local stream so the caller's flags are never disturbed.
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(2);
  auto f = [&oss](double v, int width = 6) -> std::ostringstream& {
    oss << std::setw(width) << v;
    return oss;
  };
  oss << "  residual after rigid only : mean ";
  f(r.residual_rigid_only.mean_mm) << " mm   max ";
  f(r.residual_rigid_only.max_mm) << " mm\n";
  oss << "  recovered-field error     : mean ";
  f(r.recovered_error.mean_mm) << " mm   max ";
  f(r.recovered_error.max_mm) << " mm\n";
  oss << "  intensity MAD (brain)     : rigid-only ";
  f(r.mad_rigid_only) << "  simulated ";
  f(r.mad_simulated) << "\n";
  oss << "  intensity MAD (boundary)  : rigid-only ";
  f(r.mad_boundary_rigid_only) << "  simulated ";
  f(r.mad_boundary_simulated) << "\n";
  oss << std::setprecision(3) << "  intraop brain Dice        : ";
  f(r.brain_dice) << "\n";
  oss << std::setprecision(2) << "  surface residual          : ";
  f(r.surface_residual_mm) << " mm\n";
  os << oss.str();
}

}  // namespace neuro::core

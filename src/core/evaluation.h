// Quantitative evaluation of a pipeline run against phantom ground truth.
//
// The paper judges registration quality visually (its Fig. 4: "very small
// intensity differences at the boundary of the simulated deformed brain").
// The phantom carries the exact deformation that produced the intraoperative
// scan, so we report the same intensity-difference evidence *and* true
// displacement errors — rigid-only versus biomechanically simulated — which
// is the stronger form of the paper's claim.
#pragma once

#include <iosfwd>

#include "core/deformation_field.h"
#include "core/pipeline.h"
#include "phantom/brain_phantom.h"

namespace neuro::core {

struct AccuracyReport {
  /// Residual deformation after rigid alignment only (what the paper says
  /// rigid registration cannot correct): magnitude of the true shift.
  FieldStats residual_rigid_only;

  /// Error of the recovered backward field vs. the true one, within brain.
  FieldStats recovered_error;

  /// Mean |ΔI| between the (rigid-only aligned / simulated) preop image and
  /// the real intraop scan, inside the brain mask (Fig. 4d evidence).
  double mad_rigid_only = 0.0;
  double mad_simulated = 0.0;

  /// Same, restricted to a band around the intraop brain boundary, where the
  /// paper's visual assessment focuses.
  double mad_boundary_rigid_only = 0.0;
  double mad_boundary_simulated = 0.0;

  /// Intraop segmentation quality vs. phantom truth.
  double brain_dice = 0.0;

  /// Surface match: mean distance of matched surface to the true target.
  double surface_residual_mm = 0.0;
};

/// Compares a pipeline run on `truth` (the case it was fed) against the
/// phantom's analytic ground truth.
AccuracyReport evaluate_against_truth(const PipelineResult& result,
                                      const phantom::PhantomCase& truth);

/// Pretty-prints a report (one "metric: value" row per line). Callers choose
/// the destination (std::cout in the CLI tools, a file, a test buffer).
void print_report(const AccuracyReport& report, std::ostream& os);

}  // namespace neuro::core

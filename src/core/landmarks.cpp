#include "core/landmarks.h"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "base/check.h"

namespace neuro::core {

namespace {

/// Solves y + v(y) = x for the intraop position y of a preop point x:
/// fixed-point iteration on the analytic backward shift (+ rigid composition
/// when the case has one): x = q + shift(q), y = R(q).
Vec3 intraop_position_of(const phantom::PhantomCase& cas, const Vec3& preop_point) {
  Vec3 q = preop_point;
  for (int it = 0; it < 30; ++it) {
    q = preop_point - cas.geometry.shift_at(q, cas.shift);
  }
  return cas.rigid_offset.apply(q);
}

}  // namespace

std::vector<Landmark> phantom_landmarks(const phantom::PhantomCase& cas) {
  const phantom::BrainGeometry& geo = cas.geometry;
  const Vec3 c = geo.head_center();
  const Vec3 tc = geo.tumor_center();
  const double r = geo.tumor_radius();
  const Vec3 cc = geo.craniotomy_center();
  const double top_height = cc.z - c.z;  // head semi-axis in z

  // Candidate anatomical points in preoperative coordinates.
  const std::vector<std::pair<std::string, Vec3>> candidates = {
      {"deep-center", c},
      {"tumor-margin-inferior", tc - Vec3{0, 0, r + 4.0}},
      {"tumor-margin-lateral", tc - Vec3{r + 4.0, 0, 0}},
      {"contralateral-deep", {2.0 * c.x - tc.x, tc.y, c.z}},
      {"superior-cortex", {cc.x, cc.y, c.z + 0.55 * top_height}},
      {"posterior-deep", c + Vec3{0, 0.30 * top_height, -0.15 * top_height}},
      {"anterior-deep", c - Vec3{0, 0.30 * top_height, 0.10 * top_height}},
  };

  std::vector<Landmark> landmarks;
  for (const auto& [name, p] : candidates) {
    // Keep only points inside brain tissue in both configurations.
    const auto tissue = geo.tissue_at(p);
    if (tissue != phantom::Tissue::kBrain && tissue != phantom::Tissue::kFalx &&
        tissue != phantom::Tissue::kVentricle) {
      continue;
    }
    Landmark lm;
    lm.name = name;
    lm.preop_position = p;
    lm.intraop_position = intraop_position_of(cas, p);
    landmarks.push_back(std::move(lm));
  }
  NEURO_CHECK_MSG(landmarks.size() >= 4,
                  "phantom_landmarks: unexpectedly few valid landmarks ("
                      << landmarks.size() << ")");
  return landmarks;
}

TreReport evaluate_landmarks(const PipelineResult& result,
                             const std::vector<Landmark>& landmarks) {
  NEURO_REQUIRE(!landmarks.empty(), "evaluate_landmarks: no landmarks");
  TreReport report;
  double sum_rigid = 0, sum_sim = 0;
  for (const auto& lm : landmarks) {
    TreReport::Entry entry;
    entry.name = lm.name;
    const Vec3 q = lm.intraop_position;
    // Rigid-only mapping: q → T(q).
    entry.rigid_only_mm = norm(result.rigid.apply(q) - lm.preop_position);
    // Full mapping: q → T(q + v(q)).
    const Vec3 v = sample_trilinear_vec(result.backward_field,
                                        result.backward_field.physical_to_voxel(q));
    entry.simulated_mm = norm(result.rigid.apply(q + v) - lm.preop_position);
    sum_rigid += entry.rigid_only_mm;
    sum_sim += entry.simulated_mm;
    report.max_simulated_mm = std::max(report.max_simulated_mm, entry.simulated_mm);
    report.entries.push_back(std::move(entry));
  }
  report.mean_rigid_only_mm = sum_rigid / static_cast<double>(landmarks.size());
  report.mean_simulated_mm = sum_sim / static_cast<double>(landmarks.size());
  return report;
}

void print_tre_report(const TreReport& report, std::ostream& os) {
  // Format into a local stream so the caller's flags are never disturbed.
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(2);
  auto row = [&oss](const std::string& name, double rigid, double simulated) {
    oss << "  " << std::left << std::setw(24) << name << " | " << std::right
        << std::setw(19) << rigid << " | " << std::setw(18) << simulated
        << '\n';
  };
  oss << "  " << std::left << std::setw(24) << "landmark"
      << " | rigid-only TRE (mm) | simulated TRE (mm)\n";
  for (const auto& e : report.entries) {
    row(e.name, e.rigid_only_mm, e.simulated_mm);
  }
  row("mean", report.mean_rigid_only_mm, report.mean_simulated_mm);
  os << oss.str();
}

}  // namespace neuro::core

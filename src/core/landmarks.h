// Landmark-based target registration error (TRE).
//
// Clinical registration studies report TRE at anatomical landmarks — the
// metric a neurosurgeon cares about ("how far off is the navigation at the
// ventricle horn?"). The phantom knows where each anatomical point moved, so
// TRE is exact here: for a landmark at intraoperative position q, the
// recovered map should send q to its true preoperative origin.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "phantom/brain_phantom.h"

namespace neuro::core {

struct Landmark {
  std::string name;
  Vec3 intraop_position;       ///< where the point sits in the intraop scan
  Vec3 preop_position;         ///< where that tissue was preoperatively (truth)
};

/// Standard anatomical landmark set of the phantom (ventricle extremes, falx
/// ridge, resection-cavity margin, deep brain points), with ground-truth
/// correspondence from the analytic shift.
std::vector<Landmark> phantom_landmarks(const phantom::PhantomCase& cas);

struct TreReport {
  struct Entry {
    std::string name;
    double rigid_only_mm = 0.0;  ///< error using the rigid stage alone
    double simulated_mm = 0.0;   ///< error after the biomechanical simulation
  };
  std::vector<Entry> entries;
  double mean_rigid_only_mm = 0.0;
  double mean_simulated_mm = 0.0;
  double max_simulated_mm = 0.0;
};

/// Evaluates the recovered mapping at each landmark: the pipeline's total
/// intraop→preop map is q ↦ T_rigid(q + v_nonrigid(q)).
TreReport evaluate_landmarks(const PipelineResult& result,
                             const std::vector<Landmark>& landmarks);

/// Prints one row per landmark plus the summary.
void print_tre_report(const TreReport& report, std::ostream& os);

}  // namespace neuro::core

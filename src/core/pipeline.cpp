#include "core/pipeline.h"

#include <algorithm>

#include "base/check.h"
#include "core/deformation_field.h"
#include "image/components.h"
#include "image/distance.h"
#include "image/filters.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "phantom/brain_phantom.h"

namespace neuro::core {

PipelineConfig default_pipeline_config() {
  using phantom::Tissue;
  PipelineConfig config;
  config.brain_labels = {phantom::label(Tissue::kBrain), phantom::label(Tissue::kVentricle),
                         phantom::label(Tissue::kFalx), phantom::label(Tissue::kTumor)};
  config.surface_match_labels = {phantom::label(Tissue::kBrain),
                                 phantom::label(Tissue::kFalx),
                                 phantom::label(Tissue::kTumor)};
  // Localization-model classes: the coarse tissues whose saturated distance
  // transforms disambiguate similar intensities (cavity vs ventricle vs gap).
  config.seg.classes = {phantom::label(Tissue::kBackground), phantom::label(Tissue::kSkin),
                        phantom::label(Tissue::kSkullGap), phantom::label(Tissue::kBrain),
                        phantom::label(Tissue::kVentricle)};
  config.seg.exclude_classes = {phantom::label(Tissue::kFalx),
                                phantom::label(Tissue::kTumor)};
  config.seg.dt_saturation_mm = 10.0;
  config.seg.dt_weight = 1.5;
  config.mesher.keep_labels = config.brain_labels;
  config.mesher.stride = 4;
  return config;
}

double PipelineResult::stage_seconds(const std::string& name) const {
  for (const auto& s : timeline) {
    if (s.name == name) return s.seconds;
  }
  NEURO_CHECK_MSG(false, "unknown pipeline stage '" << name << "'");
  return 0.0;
}

PipelineResult run_intraop_pipeline(const ImageF& preop, const ImageL& preop_labels,
                                    const ImageF& intraop,
                                    const PipelineConfig& config,
                                    const std::vector<seg::Prototype>* reuse_prototypes,
                                    const std::vector<Vec3>* last_good) {
  NEURO_REQUIRE(preop.dims() == preop_labels.dims(),
                "pipeline: preop image/labels dims mismatch");
  NEURO_REQUIRE(!config.brain_labels.empty(), "pipeline: brain_labels unset — "
                                              "start from default_pipeline_config()");
  PipelineResult result;
  const base::DeadlineBudget budget(config.deadline_seconds);
  // The Fig. 6 StageTiming rows are views over these root spans: each stage's
  // published duration IS the span duration, so the human timeline and the
  // exported trace can never disagree (docs/observability.md).
  obs::Span total = obs::timed_span("pipeline");
  obs::Span stage = obs::timed_span("pipeline.rigid_registration");

  // --- 1. Rigid registration: align preop data to the intraop frame. ---
  if (config.do_rigid_registration) {
    obs::Span sub = obs::global_span("pipeline.rigid.register_mi");
    const auto rigid = reg::register_rigid_mi(intraop, preop, config.rigid);
    result.rigid = rigid.transform;
    result.rigid_mi = rigid.mutual_information;
  } else {
    result.rigid = RigidTransform{};
  }
  {
    obs::Span sub = obs::global_span("pipeline.rigid.resample");
    result.aligned_preop = resample_rigid(preop, intraop, result.rigid);
    ImageL grid(intraop.dims(), 0, intraop.spacing(), intraop.origin());
    result.aligned_preop_labels =
        resample_rigid_labels(preop_labels, grid, result.rigid);
  }
  result.timeline.push_back({"rigid_registration", stage.close()});

  // --- 2. Tissue classification of the intraoperative scan. ---
  stage = obs::timed_span("pipeline.tissue_classification");
  {
    obs::Span sub = obs::global_span("pipeline.seg.intraop");
    result.segmentation = seg::segment_intraop(intraop, result.aligned_preop_labels,
                                               config.seg, nullptr, reuse_prototypes);
    result.intraop_brain_mask =
        seg::mask_of_labels(result.segmentation.labels, config.brain_labels);
  }
  // Classify the aligned preop scan with the same model (recorded prototype
  // locations, features refreshed — the paper's automatic model update), so
  // the two surface-target masks share one boundary bias.
  {
    obs::Span sub = obs::global_span("pipeline.seg.preop");
    result.preop_classified_labels =
        seg::segment_intraop(result.aligned_preop, result.aligned_preop_labels,
                             config.seg, nullptr, &result.segmentation.prototypes)
            .labels;
  }
  result.timeline.push_back({"tissue_classification", stage.close()});

  // --- 3. Surface displacement via the active surface. ---
  stage = obs::timed_span("pipeline.surface_displacement");
  mesh::MesherConfig mesher = config.mesher;
  if (mesher.keep_labels.empty()) mesher.keep_labels = config.brain_labels;
  {
    obs::Span sub = obs::global_span("pipeline.surface.mesh");
    result.brain_mesh = mesh::mesh_labeled_volume(result.aligned_preop_labels, mesher);
  }
  NEURO_CHECK_MSG(result.brain_mesh.num_tets() > 0,
                  "pipeline: empty brain mesh — check labels/stride");
  result.preop_surface =
      mesh::extract_boundary_surface(result.brain_mesh, config.brain_labels);

  // Two-pass correspondence: the extracted mesh surface is a lattice
  // approximation of the smooth brain boundary, so matching it directly to
  // the intraop boundary would mix discretization error into the measured
  // deformation. Pass 1 relaxes the surface onto the *preoperative* boundary,
  // pass 2 continues onto the *intraoperative* one; the difference of the two
  // relaxed configurations is the pure anatomical displacement, prescribed at
  // the originating mesh nodes.
  const auto& match_labels = config.surface_match_labels.empty()
                                 ? config.brain_labels
                                 : config.surface_match_labels;
  ImageL preop_brain_mask =
      seg::mask_of_labels(result.preop_classified_labels, match_labels);
  ImageL intraop_match_mask =
      seg::mask_of_labels(result.segmentation.labels, match_labels);
  if (config.clean_masks) {
    // Stray classified voxels create spurious SDF attractors; the brain is
    // one connected object, so keep only the largest component.
    preop_brain_mask = keep_largest_component(preop_brain_mask);
    intraop_match_mask = keep_largest_component(intraop_match_mask);
  }
  obs::Span sdf_span = obs::global_span("pipeline.surface.sdf");
  ImageF sdf_pre = signed_distance_to_label(preop_brain_mask, 1,
                                            config.sdf_saturation_mm);
  ImageF sdf_intra = signed_distance_to_label(intraop_match_mask, 1,
                                              config.sdf_saturation_mm);
  sdf_pre = gaussian_smooth(sdf_pre, 0.8);    // soften voxel staircase
  sdf_intra = gaussian_smooth(sdf_intra, 0.8);
  sdf_span.close();

  obs::Span snap_span = obs::global_span("pipeline.surface.active_surface");
  const auto snapped = surface::deform_to_distance_field(
      result.preop_surface, sdf_pre, config.active_surface);
  result.surface_match = surface::deform_to_distance_field(
      snapped.surface, sdf_intra, config.active_surface);
  snap_span.close();
  // Re-express displacements relative to the snapped preop configuration and
  // restore the mesh-node bookkeeping of the original extraction.
  for (const mesh::VertId v : result.surface_match.displacements.ids()) {
    result.surface_match.displacements[v] =
        result.surface_match.surface.vertices[v] - snapped.surface.vertices[v];
  }
  result.surface_match.surface.mesh_nodes = result.preop_surface.mesh_nodes;
  // The anatomical displacement varies over centimetres; the voxel staircase
  // of the two masks injects ±1-voxel jitter. Membrane-smooth it away.
  surface::smooth_vertex_vectors(result.surface_match.surface,
                                 result.surface_match.displacements,
                                 config.surface_smoothing_iterations);
  result.timeline.push_back({"surface_displacement", stage.close()});

  // --- 4. Biomechanical simulation: volumetric FEM solve. ---
  stage = obs::timed_span("pipeline.biomechanical_simulation");
  const auto materials = config.heterogeneous_materials
                             ? fem::MaterialMap::heterogeneous_brain()
                             : fem::MaterialMap::homogeneous_brain();
  const auto prescribed = surface::node_displacements(result.surface_match);
  fem::DegradationOptions degrade = config.degradation;
  if (last_good != nullptr) degrade.last_good = last_good;
  // The FEM stage gets its share of whatever pipeline budget remains; the
  // ladder splits that share across its rungs. A budget that expired before
  // this stage must stay *limited* — an allotment of exactly 0.0 would read
  // as "unlimited" to DeadlineBudget and hand an overdue request a full
  // unbounded solve; clamping to an epsilon sends the ladder straight to its
  // cheap rungs instead (degrade, don't cancel — docs/service.md).
  const base::DeadlineBudget fem_budget(
      budget.limited()
          ? std::max(1e-3, budget.stage_allotment(config.fem_budget_fraction))
          : 0.0);
  auto fem_outcome = fem::solve_deformation_with_fallback(
      result.brain_mesh, materials, prescribed, config.fem, degrade, fem_budget);
  // Fail loudly when no rung produced a validated field: an unusable
  // deformation must never silently reach the visualization stage.
  if (!fem_outcome.ok()) throw base::StatusError(fem_outcome.status());
  result.fem = std::move(fem_outcome.value().deformation);
  result.degradation = std::move(fem_outcome.value().report);
  result.timeline.push_back({"biomechanical_simulation", stage.close()});
  if (result.degradation.degraded) {
    for (const auto& attempt : result.degradation.attempts) {
      result.timeline.push_back(
          {std::string("fem_fallback:") +
               fem::degradation_rung_name(attempt.rung),
           attempt.seconds});
    }
  }

  // --- 5. Visualization resample (the paper's ~0.5 s step). ---
  stage = obs::timed_span("pipeline.visualization_resample");
  ImageL support;
  {
    obs::Span sub = obs::global_span("pipeline.viz.rasterize");
    result.forward_field = rasterize_displacements(
        result.brain_mesh, result.fem.node_displacements, intraop, &support);
  }
  // Extend past the mesh boundary so the inversion sees a smooth continuation
  // across the brain-shift gap (≈ max surface displacement wide).
  ImageV extended = result.forward_field;
  const double max_disp = core::field_stats(result.forward_field).max_mm;
  const double min_spacing =
      std::min({intraop.spacing().x, intraop.spacing().y, intraop.spacing().z});
  const int passes = std::min(24, static_cast<int>(max_disp / min_spacing) + 3);
  {
    obs::Span sub = obs::global_span("pipeline.viz.extend");
    extend_displacement_field(extended, support, passes);
  }
  {
    obs::Span sub = obs::global_span("pipeline.viz.invert");
    result.backward_field = invert_displacement_field(extended);
  }
  {
    obs::Span sub = obs::global_span("pipeline.viz.warp");
    result.warped_preop = warp_backward(result.aligned_preop, result.backward_field);
  }
  result.timeline.push_back({"visualization_resample", stage.close()});

  result.total_seconds = total.close();
  auto& m = obs::metrics();
  m.counter("pipeline.runs").add();
  for (const auto& s : result.timeline) {
    m.gauge("pipeline." + s.name + ".seconds").set(s.seconds);
  }
  m.gauge("pipeline.total_seconds").set(result.total_seconds);
  return result;
}

}  // namespace neuro::core

// The intraoperative registration pipeline (paper Fig. 1 / Fig. 6).
//
// During surgery the system receives an intraoperative scan and, using the
// preoperative scan + segmentation prepared before surgery, runs:
//   rigid registration (MI) → tissue classification (k-NN with saturated-DT
//   priors) → surface displacement (active surface) → biomechanical
//   simulation (parallel FEM) → visualization resample.
// Each stage is timed, producing the paper's Fig. 6-style timeline; the FEM
// stage also returns per-rank work records for the scaling figures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/deadline.h"
#include "fem/deformation_solver.h"
#include "fem/degradation.h"
#include "image/image3d.h"
#include "image/transform.h"
#include "mesh/mesher.h"
#include "mesh/tri_surface.h"
#include "reg/rigid_registration.h"
#include "seg/intraop.h"
#include "surface/active_surface.h"

namespace neuro::core {

struct PipelineConfig {
  /// Stage toggles: skipping rigid is valid when scans share a frame (and is
  /// how the nonrigid stages are unit-tested in isolation).
  bool do_rigid_registration = true;

  reg::RigidRegistrationConfig rigid;
  seg::IntraopSegmentationConfig seg;  ///< classes default to all head tissues
  mesh::MesherConfig mesher;           ///< keep_labels defaults to brain tissues
  surface::ActiveSurfaceConfig active_surface;
  fem::DeformationSolveOptions fem;

  /// Labels that constitute "brain" for meshing and evaluation.
  std::vector<std::uint8_t> brain_labels;  ///< default: brain+ventricle+falx+tumor

  /// Labels whose union defines the surface-matching target masks. Excludes
  /// ventricle by default: a resection cavity images at ventricle-like (dark)
  /// intensity, and admitting ventricle-labeled voxels into the target mask
  /// would let a misclassified cavity bridge the sunken brain surface.
  std::vector<std::uint8_t> surface_match_labels;

  bool heterogeneous_materials = false;  ///< paper default is homogeneous
  double sdf_saturation_mm = 30.0;       ///< active-surface attraction range
  /// Laplacian smoothing sweeps applied to the measured surface displacements
  /// before they become FEM boundary conditions (voxel-jitter removal).
  int surface_smoothing_iterations = 20;

  /// Keep only the largest connected component of each surface-target mask
  /// (stray misclassified voxels otherwise become spurious SDF attractors).
  bool clean_masks = true;

  /// Wall-clock budget for the whole intraoperative pipeline (paper's ~10 s
  /// clinical constraint); 0 = unlimited. When set, the FEM stage receives
  /// `fem_budget_fraction` of whatever remains when it starts and arms the
  /// solver watchdog with it; the degradation ladder spends that budget.
  double deadline_seconds = 0.0;
  double fem_budget_fraction = 0.6;

  /// Degradation ladder configuration (fem/degradation.h). The last_good
  /// field is supplied per call by run_intraop_pipeline, not here.
  fem::DegradationOptions degradation;
};

/// Fills defaulted config fields (brain label set, seg classes, mesher keep
/// set) from the standard phantom tissue labels. Call sites with real label
/// conventions set the fields explicitly instead.
PipelineConfig default_pipeline_config();

/// One Fig. 6 timeline row. `seconds` is a view over the stage's root
/// obs::Span — the exact duration the tracer records for "pipeline.<name>" —
/// so the printed timeline and an exported trace can never disagree.
struct StageTiming {
  std::string name;
  double seconds = 0.0;
};

struct PipelineResult {
  // Stage outputs, in pipeline order.
  RigidTransform rigid;   ///< maps intraop physical points into preop space
  double rigid_mi = 0.0;
  ImageF aligned_preop;   ///< preop resampled into the intraop frame
  ImageL aligned_preop_labels;
  seg::IntraopSegmentation segmentation;
  /// The aligned preoperative scan classified with the *same* statistical
  /// model (prototypes refreshed at their recorded locations). Matching the
  /// two surfaces between equally-biased segmentations cancels the
  /// classifier's systematic boundary offset.
  ImageL preop_classified_labels;
  ImageL intraop_brain_mask;
  mesh::TetMesh brain_mesh;
  mesh::TriSurface preop_surface;
  surface::ActiveSurfaceResult surface_match;
  fem::DeformationResult fem;
  /// How the FEM field was obtained: undegraded full solve, or which ladder
  /// rung produced it and why (fem/degradation.h).
  fem::DegradationReport degradation;
  ImageV forward_field;    ///< u: aligned-preop → intraop displacement
  ImageV backward_field;   ///< inverse, used for warping
  ImageF warped_preop;     ///< the "simulated deformation" image (Fig. 4c)

  /// Fig. 6 rows. When the FEM stage degraded, one extra row per ladder
  /// attempt ("fem_fallback:<rung>") follows "biomechanical_simulation"; the
  /// fault-free timeline is unchanged.
  std::vector<StageTiming> timeline;
  double total_seconds = 0.0;

  [[nodiscard]] double stage_seconds(const std::string& name) const;
};

/// Runs the full pipeline on one intraoperative scan. When
/// `reuse_prototypes` is non-null the statistical model is not re-selected:
/// the recorded prototype locations are refreshed against the new scan (the
/// paper's automatic model update for follow-up acquisitions). `last_good`
/// (one Vec3 per mesh node, typically the previous scan's validated field)
/// arms the ladder's final rung. Throws base::StatusError only when every
/// ladder rung failed — no usable field exists at all.
PipelineResult run_intraop_pipeline(const ImageF& preop, const ImageL& preop_labels,
                                    const ImageF& intraop,
                                    const PipelineConfig& config,
                                    const std::vector<seg::Prototype>* reuse_prototypes
                                    = nullptr,
                                    const std::vector<Vec3>* last_good = nullptr);

}  // namespace neuro::core

#include "core/surgery_session.h"

#include <map>

#include "base/check.h"

namespace neuro::core {

SurgerySession::SurgerySession(ImageF preop, ImageL preop_labels,
                               PipelineConfig config)
    : preop_(std::move(preop)),
      preop_labels_(std::move(preop_labels)),
      config_(std::move(config)) {
  NEURO_REQUIRE(preop_.dims() == preop_labels_.dims(),
                "SurgerySession: preop image/labels dims mismatch");
  NEURO_REQUIRE(!config_.brain_labels.empty(),
                "SurgerySession: config.brain_labels unset — start from "
                "default_pipeline_config()");
}

const PipelineResult& SurgerySession::process_scan(const ImageF& intraop) {
  const std::vector<seg::Prototype>* reuse =
      prototypes_.empty() ? nullptr : &prototypes_;
  const std::vector<Vec3>* last_good =
      last_good_field_.empty() ? nullptr : &last_good_field_;
  results_.push_back(run_intraop_pipeline(preop_, preop_labels_, intraop,
                                          config_, reuse, last_good));
  // Carry the (refreshed) model and the validated field forward. The ladder
  // ignores a checkpoint whose size no longer matches the scan's mesh.
  prototypes_ = results_.back().segmentation.prototypes;
  last_good_field_ = results_.back().fem.node_displacements;
  return results_.back();
}

const PipelineResult& SurgerySession::result(int scan) const {
  NEURO_REQUIRE(scan >= 0 && scan < scans_processed(),
                "SurgerySession::result: scan " << scan << " of "
                                                << scans_processed());
  return results_[static_cast<std::size_t>(scan)];
}

const PipelineResult& SurgerySession::latest() const {
  NEURO_REQUIRE(!results_.empty(), "SurgerySession::latest: no scans processed");
  return results_.back();
}

std::vector<StageTiming> SurgerySession::cumulative_timeline() const {
  std::vector<StageTiming> total;
  for (const auto& result : results_) {
    for (const auto& stage : result.timeline) {
      auto it = std::find_if(total.begin(), total.end(), [&](const StageTiming& s) {
        return s.name == stage.name;
      });
      if (it == total.end()) {
        total.push_back(stage);
      } else {
        it->seconds += stage.seconds;
      }
    }
  }
  return total;
}

}  // namespace neuro::core

#include "core/surgery_session.h"

#include <algorithm>
#include <utility>

#include "base/check.h"

namespace neuro::core {

SurgerySession::SurgerySession(ImageF preop, ImageL preop_labels,
                               PipelineConfig config, SessionRetention retention)
    : preop_(std::move(preop)),
      preop_labels_(std::move(preop_labels)),
      config_(std::move(config)),
      retention_(retention) {
  NEURO_REQUIRE(preop_.dims() == preop_labels_.dims(),
                "SurgerySession: preop image/labels dims mismatch");
  NEURO_REQUIRE(!config_.brain_labels.empty(),
                "SurgerySession: config.brain_labels unset — start from "
                "default_pipeline_config()");
}

SurgerySession::SurgerySession(ImageF preop, ImageL preop_labels,
                               PipelineConfig config,
                               const SessionCheckpoint& checkpoint,
                               SessionRetention retention)
    : SurgerySession(std::move(preop), std::move(preop_labels),
                     std::move(config), retention) {
  NEURO_REQUIRE(checkpoint.scans_processed >= 0,
                "SurgerySession: negative checkpoint scan count");
  prototypes_ = checkpoint.prototypes;
  last_good_field_ = checkpoint.last_good_field;
  scans_processed_ = checkpoint.scans_processed;
  first_retained_scan_ = checkpoint.scans_processed;
  summary_offset_ = checkpoint.scans_processed;
}

const PipelineResult& SurgerySession::process_scan(const ImageF& intraop) {
  return process_scan(intraop, ScanOverrides{});
}

const PipelineResult& SurgerySession::process_scan(
    const ImageF& intraop, const ScanOverrides& overrides) {
  const std::vector<seg::Prototype>* reuse =
      prototypes_.empty() ? nullptr : &prototypes_;
  const std::vector<Vec3>* last_good =
      last_good_field_.empty() ? nullptr : &last_good_field_;
  PipelineConfig config = config_;
  if (overrides.deadline_seconds >= 0.0) {
    config.deadline_seconds = overrides.deadline_seconds;
  }
  if (overrides.nranks > 0) {
    config.fem.nranks = overrides.nranks;
  }
  config.fem.fault_injection.seed += overrides.fault_seed_offset;
  results_.push_back(run_intraop_pipeline(preop_, preop_labels_, intraop,
                                          config, reuse, last_good));
  ++scans_processed_;
  const PipelineResult& r = results_.back();
  // Carry the (refreshed) model and the validated field forward. The ladder
  // ignores a checkpoint whose size no longer matches the scan's mesh.
  prototypes_ = r.segmentation.prototypes;
  last_good_field_ = r.fem.node_displacements;
  // Every scan keeps a summary; only the last keep_full_results scans keep
  // their full (image-heavy) result (see the retention contract above).
  ScanSummary summary;
  summary.timeline = r.timeline;
  summary.total_seconds = r.total_seconds;
  summary.converged = r.fem.stats.converged;
  summary.degraded = r.degradation.degraded;
  summary.rung = r.degradation.rung;
  summary.trigger = r.degradation.trigger;
  summary.num_equations = r.fem.num_equations;
  summaries_.push_back(std::move(summary));
  if (retention_.keep_full_results > 0) {
    while (static_cast<int>(results_.size()) > retention_.keep_full_results) {
      results_.erase(results_.begin());
      ++first_retained_scan_;
    }
  }
  return results_.back();
}

bool SurgerySession::has_full_result(int scan) const {
  return scan >= first_retained_scan_ && scan < scans_processed_;
}

const PipelineResult& SurgerySession::result(int scan) const {
  NEURO_REQUIRE(scan >= 0 && scan < scans_processed_,
                "SurgerySession::result: scan " << scan << " of "
                                                << scans_processed_);
  NEURO_REQUIRE(has_full_result(scan),
                "SurgerySession::result: scan "
                    << scan << " retired by the retention policy (keeping "
                    << retention_.keep_full_results
                    << " full results, oldest retained is scan "
                    << first_retained_scan_ << "); use summary(scan)");
  return results_[static_cast<std::size_t>(scan - first_retained_scan_)];
}

const PipelineResult& SurgerySession::latest() const {
  NEURO_REQUIRE(!results_.empty(), "SurgerySession::latest: no scans processed");
  return results_.back();
}

const ScanSummary& SurgerySession::summary(int scan) const {
  NEURO_REQUIRE(scan >= summary_offset_ && scan < scans_processed_,
                "SurgerySession::summary: scan "
                    << scan << " outside [" << summary_offset_ << ", "
                    << scans_processed_ << ") recorded by this session");
  return summaries_[static_cast<std::size_t>(scan - summary_offset_)];
}

SessionCheckpoint SurgerySession::checkpoint() const {
  SessionCheckpoint cp;
  cp.prototypes = prototypes_;
  cp.last_good_field = last_good_field_;
  cp.scans_processed = scans_processed_;
  return cp;
}

std::vector<StageTiming> SurgerySession::cumulative_timeline() const {
  std::vector<StageTiming> total;
  for (const auto& summary : summaries_) {
    for (const auto& stage : summary.timeline) {
      auto it = std::find_if(total.begin(), total.end(), [&](const StageTiming& s) {
        return s.name == stage.name;
      });
      if (it == total.end()) {
        total.push_back(stage);
      } else {
        it->seconds += stage.seconds;
      }
    }
  }
  return total;
}

}  // namespace neuro::core

// Multi-scan intraoperative session.
//
// The paper's clinical protocol (§3.1): "In each neurosurgery case several
// volumetric MRI scans were carried out during surgery. The first scan was
// acquired at the beginning of the procedure … and then over the course of
// surgery other scans were acquired as the surgeon checked the progress of
// tumor resection." The statistical classification model is built once
// ("less than five minutes of user interaction") and updated automatically
// for later scans by re-reading the recorded prototype locations.
//
// SurgerySession packages that workflow: construct it with the preoperative
// data, feed it intraoperative scans as they arrive, and it runs the full
// pipeline per scan while carrying the prototype model forward and keeping
// the per-scan results and an aggregate timeline.
#pragma once

#include <vector>

#include "core/pipeline.h"

namespace neuro::core {

class SurgerySession {
 public:
  SurgerySession(ImageF preop, ImageL preop_labels, PipelineConfig config);

  /// Runs the pipeline on the next intraoperative scan. The first call
  /// selects the prototype model; later calls reuse it (locations persist,
  /// signals refresh). Returns the stored result for this scan.
  const PipelineResult& process_scan(const ImageF& intraop);

  [[nodiscard]] int scans_processed() const { return static_cast<int>(results_.size()); }
  [[nodiscard]] const PipelineResult& result(int scan) const;
  [[nodiscard]] const PipelineResult& latest() const;

  /// The carried statistical model (empty before the first scan).
  [[nodiscard]] const std::vector<seg::Prototype>& prototypes() const {
    return prototypes_;
  }

  /// The last validated deformation field (empty before the first scan).
  /// Every accepted ladder rung passes the validation gate, so this is
  /// always safe to hand to the next scan as the ladder's final fallback.
  [[nodiscard]] const std::vector<Vec3>& last_good_field() const {
    return last_good_field_;
  }

  /// Stage-by-stage seconds summed over all processed scans.
  [[nodiscard]] std::vector<StageTiming> cumulative_timeline() const;

  [[nodiscard]] const PipelineConfig& config() const { return config_; }

 private:
  ImageF preop_;
  ImageL preop_labels_;
  PipelineConfig config_;
  std::vector<seg::Prototype> prototypes_;
  std::vector<PipelineResult> results_;
  std::vector<Vec3> last_good_field_;  ///< checkpoint for the kLastGood rung
};

}  // namespace neuro::core

// Multi-scan intraoperative session.
//
// The paper's clinical protocol (§3.1): "In each neurosurgery case several
// volumetric MRI scans were carried out during surgery. The first scan was
// acquired at the beginning of the procedure … and then over the course of
// surgery other scans were acquired as the surgeon checked the progress of
// tumor resection." The statistical classification model is built once
// ("less than five minutes of user interaction") and updated automatically
// for later scans by re-reading the recorded prototype locations.
//
// SurgerySession packages that workflow: construct it with the preoperative
// data, feed it intraoperative scans as they arrive, and it runs the full
// pipeline per scan while carrying the prototype model forward.
//
// Memory contract (docs/service.md): a session may outlive dozens of scans
// under service::SessionServer, and a full PipelineResult retains every
// stage image of its scan. Sessions therefore keep only the last
// `SessionRetention::keep_full_results` full results; every scan keeps a
// lightweight ScanSummary (timings, degradation report, solve stats)
// forever, so the aggregate timeline and the audit trail never truncate.
//
// Crash/eviction contract: checkpoint() captures everything a future
// process (or a re-created session in the same server) needs to continue
// the case — the prototype model and the last validated field — and the
// restoring constructor resumes from such a checkpoint.
#pragma once

#include <cstdint>
#include <vector>

#include "core/pipeline.h"

namespace neuro::core {

/// Bounds how many full PipelineResults a session retains (see file header).
/// Non-positive keep_full_results means "keep every result" — the historical
/// behavior, for offline analysis runs that genuinely want all images.
struct SessionRetention {
  int keep_full_results = 4;
};

/// The carried-forward state of a session, sufficient to resume the case
/// after the owning object (or process) went away: the statistical model and
/// the ladder's last-good field. Scans already processed stay counted so a
/// resumed session numbers its scans continuously.
struct SessionCheckpoint {
  std::vector<seg::Prototype> prototypes;
  std::vector<Vec3> last_good_field;
  int scans_processed = 0;
};

/// One scan's lightweight record, retained for every scan regardless of the
/// full-result retention window.
struct ScanSummary {
  std::vector<StageTiming> timeline;
  double total_seconds = 0.0;
  bool converged = false;
  bool degraded = false;
  fem::DegradationRung rung = fem::DegradationRung::kFullSolve;
  base::Status trigger;  ///< why the ladder left rung 0 (kOk when it did not)
  int num_equations = 0;
};

/// Per-scan steering applied on top of the session's fixed config, used by
/// service::SessionServer: the remaining budget of the request driving this
/// scan, the rank count granted by the shared pool, and a fault-injection
/// seed offset so a retried solve draws a fresh (still deterministic) fault
/// stream instead of replaying the identical transient fault.
struct ScanOverrides {
  double deadline_seconds = -1.0;       ///< < 0: keep config; 0: unlimited
  int nranks = 0;                       ///< <= 0: keep config
  std::uint64_t fault_seed_offset = 0;  ///< added to fem.fault_injection.seed
};

class SurgerySession {
 public:
  SurgerySession(ImageF preop, ImageL preop_labels, PipelineConfig config,
                 SessionRetention retention = {});

  /// Resumes a case from a checkpoint (docs/service.md): the prototype model
  /// and the last-good field are restored, so the next process_scan behaves
  /// like the (scans_processed+1)-th scan of the original session. The
  /// checkpoint's per-scan results and summaries are gone — only the state
  /// needed to continue correctly survives a crash, by design.
  SurgerySession(ImageF preop, ImageL preop_labels, PipelineConfig config,
                 const SessionCheckpoint& checkpoint,
                 SessionRetention retention = {});

  /// Runs the pipeline on the next intraoperative scan. The first call
  /// selects the prototype model; later calls reuse it (locations persist,
  /// signals refresh). Returns the stored result for this scan; the
  /// reference stays valid until `retention.keep_full_results` further scans
  /// have been processed.
  const PipelineResult& process_scan(const ImageF& intraop);
  /// Same, with per-scan overrides (deadline, rank count, fault seed shift)
  /// applied to a copy of the session config for this scan only.
  const PipelineResult& process_scan(const ImageF& intraop,
                                     const ScanOverrides& overrides);

  /// Total scans processed over the whole case, including scans processed
  /// before a checkpoint/restore and scans whose full result has been
  /// retired by the retention policy.
  [[nodiscard]] int scans_processed() const { return scans_processed_; }

  /// True when `scan`'s full PipelineResult is still retained.
  [[nodiscard]] bool has_full_result(int scan) const;
  /// The full result of a retained scan; requires has_full_result(scan).
  [[nodiscard]] const PipelineResult& result(int scan) const;
  [[nodiscard]] const PipelineResult& latest() const;

  /// The lightweight summary of any scan processed by *this* object
  /// (summaries do not survive a checkpoint/restore).
  [[nodiscard]] const ScanSummary& summary(int scan) const;
  [[nodiscard]] int summaries_recorded() const {
    return static_cast<int>(summaries_.size());
  }

  /// The carried statistical model (empty before the first scan).
  [[nodiscard]] const std::vector<seg::Prototype>& prototypes() const {
    return prototypes_;
  }

  /// The last validated deformation field (empty before the first scan).
  /// Every accepted ladder rung passes the validation gate, so this is
  /// always safe to hand to the next scan as the ladder's final fallback.
  [[nodiscard]] const std::vector<Vec3>& last_good_field() const {
    return last_good_field_;
  }

  /// Everything needed to resume this case elsewhere (see SessionCheckpoint).
  [[nodiscard]] SessionCheckpoint checkpoint() const;

  /// Stage-by-stage seconds summed over all scans this object processed
  /// (summaries, so retired full results still contribute).
  [[nodiscard]] std::vector<StageTiming> cumulative_timeline() const;

  [[nodiscard]] const PipelineConfig& config() const { return config_; }
  [[nodiscard]] const SessionRetention& retention() const { return retention_; }

 private:
  ImageF preop_;
  ImageL preop_labels_;
  PipelineConfig config_;
  SessionRetention retention_;
  std::vector<seg::Prototype> prototypes_;
  /// The retained tail of full results: results_[i] is the full result of
  /// scan `first_retained_scan_ + i`.
  std::vector<PipelineResult> results_;
  int first_retained_scan_ = 0;
  int scans_processed_ = 0;
  std::vector<ScanSummary> summaries_;  ///< scans processed by this object
  int summary_offset_ = 0;  ///< scans processed before restore (no summaries)
  std::vector<Vec3> last_good_field_;  ///< checkpoint for the kLastGood rung
};

}  // namespace neuro::core

#include "fem/assembly.h"

#include <algorithm>

#include "base/check.h"

namespace neuro::fem {

MeshTopology MeshTopology::build(const mesh::TetMesh& mesh) {
  MeshTopology topo;
  topo.node_adj = mesh::node_adjacency(mesh);
  topo.node_tets.resize(static_cast<std::size_t>(mesh.num_nodes()));
  for (mesh::TetId t = 0; t < mesh.num_tets(); ++t) {
    for (const mesh::NodeId n : mesh.tets[static_cast<std::size_t>(t)]) {
      topo.node_tets[static_cast<std::size_t>(n)].push_back(t);
    }
  }
  return topo;
}

LocalSystem assemble_elasticity(const mesh::TetMesh& mesh, const MeshTopology& topo,
                                const MaterialMap& materials,
                                const mesh::Partition& partition,
                                const Vec3& body_force, par::Communicator& comm) {
  const auto [nb, ne] = partition.ranges[static_cast<std::size_t>(comm.rank())];
  const int num_dofs = 3 * mesh.num_nodes();
  const std::pair<int, int> dof_range{3 * nb, 3 * ne};

  // --- Sparsity: rows of owned dofs, 3x3 blocks over the node adjacency. ---
  std::vector<int> row_ptr(static_cast<std::size_t>(dof_range.second - dof_range.first) + 1, 0);
  std::size_t nnz = 0;
  for (mesh::NodeId n = nb; n < ne; ++n) {
    const std::size_t row_block = topo.node_adj[static_cast<std::size_t>(n)].size() * 3;
    for (int c = 0; c < 3; ++c) {
      nnz += row_block;
      row_ptr[static_cast<std::size_t>(3 * (n - nb) + c) + 1] = static_cast<int>(nnz);
    }
  }
  std::vector<int> cols(nnz);
  std::vector<double> values(nnz, 0.0);
  for (mesh::NodeId n = nb; n < ne; ++n) {
    const auto& adj = topo.node_adj[static_cast<std::size_t>(n)];
    for (int c = 0; c < 3; ++c) {
      int p = row_ptr[static_cast<std::size_t>(3 * (n - nb) + c)];
      for (const mesh::NodeId m : adj) {
        for (int cc = 0; cc < 3; ++cc) {
          cols[static_cast<std::size_t>(p++)] = 3 * m + cc;
        }
      }
    }
  }

  // Per-row column position lookup: rows share the node's adjacency, so a
  // node-level map (neighbour → slot) serves all three of its rows.
  auto col_slot = [&](mesh::NodeId n, mesh::NodeId m) {
    const auto& adj = topo.node_adj[static_cast<std::size_t>(n)];
    const auto it = std::lower_bound(adj.begin(), adj.end(), m);
    NEURO_CHECK(it != adj.end() && *it == m);
    return static_cast<int>(it - adj.begin());
  };

  solver::DistVector b(num_dofs, dof_range, 0.0);

  // --- Element loop: every tet incident to an owned node, deduplicated. ---
  std::vector<mesh::TetId> local_tets;
  for (mesh::NodeId n = nb; n < ne; ++n) {
    local_tets.insert(local_tets.end(), topo.node_tets[static_cast<std::size_t>(n)].begin(),
                      topo.node_tets[static_cast<std::size_t>(n)].end());
  }
  std::sort(local_tets.begin(), local_tets.end());
  local_tets.erase(std::unique(local_tets.begin(), local_tets.end()), local_tets.end());

  const bool has_body_force = norm2(body_force) > 0.0;
  for (const mesh::TetId t : local_tets) {
    const auto& tet = mesh.tets[static_cast<std::size_t>(t)];
    const TetElement elem = TetElement::from_vertices(
        mesh.nodes[static_cast<std::size_t>(tet[0])],
        mesh.nodes[static_cast<std::size_t>(tet[1])],
        mesh.nodes[static_cast<std::size_t>(tet[2])],
        mesh.nodes[static_cast<std::size_t>(tet[3])]);
    const auto D = elasticity_matrix(
        materials.for_label(mesh.tet_labels[static_cast<std::size_t>(t)]));
    const auto Ke = elem.stiffness(D);

    // Scatter only rows of owned nodes.
    for (int a = 0; a < 4; ++a) {
      const mesh::NodeId n = tet[static_cast<std::size_t>(a)];
      if (n < nb || n >= ne) continue;
      for (int bnode = 0; bnode < 4; ++bnode) {
        const mesh::NodeId m = tet[static_cast<std::size_t>(bnode)];
        const int slot = col_slot(n, m);
        for (int ca = 0; ca < 3; ++ca) {
          const int row_local = 3 * (n - nb) + ca;
          const int base = row_ptr[static_cast<std::size_t>(row_local)] + 3 * slot;
          for (int cb = 0; cb < 3; ++cb) {
            values[static_cast<std::size_t>(base + cb)] +=
                Ke[static_cast<std::size_t>(12 * (3 * a + ca) + (3 * bnode + cb))];
          }
        }
      }
      if (has_body_force) {
        const auto load = elem.body_force_load(body_force);
        for (int ca = 0; ca < 3; ++ca) {
          b[3 * n + ca] += load[static_cast<std::size_t>(3 * a + ca)];
        }
      }
    }
  }

  // Work accounting: stiffness evaluation dominates; scatter traffic counted
  // as memory bytes. This is the deterministic record the scaling model uses.
  comm.work().add_flops(static_cast<double>(local_tets.size()) *
                        (TetElement::kStiffnessFlops + 2.0 * 144.0));
  comm.work().add_mem_bytes(static_cast<double>(nnz) * 20.0 +
                            static_cast<double>(local_tets.size()) * 144.0 * 16.0);

  return LocalSystem{
      solver::DistCsrMatrix(num_dofs, dof_range, std::move(row_ptr), std::move(cols),
                            std::move(values)),
      std::move(b)};
}

}  // namespace neuro::fem

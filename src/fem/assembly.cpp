#include "fem/assembly.h"

#include <algorithm>
#include <cstdint>

#include "base/check.h"
#include "fem/dof.h"

namespace neuro::fem {

MeshTopology MeshTopology::build(const mesh::TetMesh& mesh) {
  MeshTopology topo;
  topo.node_adj = mesh::node_adjacency(mesh);
  topo.node_tets.resize(static_cast<std::size_t>(mesh.num_nodes()));
  for (const mesh::TetId t : mesh.tet_ids()) {
    for (const mesh::NodeId n : mesh.tets[t]) {
      topo.node_tets[n].push_back(t);
    }
  }
  return topo;
}

LocalSystem assemble_elasticity(const mesh::TetMesh& mesh, const MeshTopology& topo,
                                const MaterialMap& materials,
                                const mesh::Partition& partition,
                                const Vec3& body_force, par::Communicator& comm) {
  const base::IdRange<mesh::NodeId> owned = partition.ranges[comm.rank_id()];
  const auto [nb, ne] = owned;
  const int num_dofs = kDofsPerNode * mesh.num_nodes();
  const solver::RowRange dof_range = row_range_of(owned);

  // --- Sparsity: rows of owned dofs, 3x3 blocks over the node adjacency. ---
  std::vector<int> row_ptr(static_cast<std::size_t>(dof_range.size()) + 1, 0);
  std::size_t nnz = 0;
  for (mesh::NodeId n = nb; n < ne; ++n) {
    const std::size_t row_block = topo.node_adj[n].size() * 3;
    for (int c = 0; c < 3; ++c) {
      nnz += row_block;
      row_ptr[static_cast<std::size_t>(3 * (n - nb) + c) + 1] = static_cast<int>(nnz);
    }
  }
  std::vector<int> cols(nnz);
  std::vector<double> values(nnz, 0.0);
  for (mesh::NodeId n = nb; n < ne; ++n) {
    const auto& adj = topo.node_adj[n];
    for (int c = 0; c < 3; ++c) {
      int p = row_ptr[static_cast<std::size_t>(3 * (n - nb) + c)];
      for (const mesh::NodeId m : adj) {
        for (int cc = 0; cc < 3; ++cc) {
          cols[static_cast<std::size_t>(p++)] = dof_of(m, cc).value();
        }
      }
    }
  }

  // Per-row column position lookup: rows share the node's adjacency, so a
  // node-level map (neighbour → slot) serves all three of its rows.
  auto col_slot = [&](mesh::NodeId n, mesh::NodeId m) {
    const auto& adj = topo.node_adj[n];
    const auto it = std::lower_bound(adj.begin(), adj.end(), m);
    NEURO_CHECK(it != adj.end() && *it == m);
    return static_cast<int>(it - adj.begin());
  };

  solver::DistVector b(num_dofs, dof_range, 0.0);

  // --- Element loop: every tet incident to an owned node, deduplicated. ---
  std::vector<mesh::TetId> local_tets;
  for (mesh::NodeId n = nb; n < ne; ++n) {
    local_tets.insert(local_tets.end(), topo.node_tets[n].begin(),
                      topo.node_tets[n].end());
  }
  std::sort(local_tets.begin(), local_tets.end());
  local_tets.erase(std::unique(local_tets.begin(), local_tets.end()), local_tets.end());

  const bool has_body_force = norm2(body_force) > 0.0;
  for (const mesh::TetId t : local_tets) {
    const auto& tet = mesh.tets[t];
    const TetElement elem = TetElement::from_vertices(
        mesh.nodes[tet[0]], mesh.nodes[tet[1]], mesh.nodes[tet[2]],
        mesh.nodes[tet[3]]);
    const auto D = elasticity_matrix(materials.for_label(mesh.tet_labels[t]));
    const auto Ke = elem.stiffness(D);

    // Scatter only rows of owned nodes.
    for (int a = 0; a < 4; ++a) {
      const mesh::NodeId n = tet[static_cast<std::size_t>(a)];
      if (!owned.contains(n)) continue;
      for (int bnode = 0; bnode < 4; ++bnode) {
        const mesh::NodeId m = tet[static_cast<std::size_t>(bnode)];
        const int slot = col_slot(n, m);
        for (int ca = 0; ca < 3; ++ca) {
          const int row_local = 3 * (n - nb) + ca;
          const int base = row_ptr[static_cast<std::size_t>(row_local)] + 3 * slot;
          for (int cb = 0; cb < 3; ++cb) {
            values[static_cast<std::size_t>(base + cb)] +=
                Ke[static_cast<std::size_t>(12 * (3 * a + ca) + (3 * bnode + cb))];
          }
        }
      }
      if (has_body_force) {
        const auto load = elem.body_force_load(body_force);
        for (int ca = 0; ca < 3; ++ca) {
          b[row_of(dof_of(n, ca))] += load[static_cast<std::size_t>(3 * a + ca)];
        }
      }
    }
  }

  // Work accounting: stiffness evaluation dominates; scatter traffic counted
  // as memory bytes. This is the deterministic record the scaling model uses.
  comm.work().add_flops(static_cast<double>(local_tets.size()) *
                        (TetElement::kStiffnessFlops + 2.0 * 144.0));
  comm.work().add_mem_bytes(static_cast<double>(nnz) * 20.0 +
                            static_cast<double>(local_tets.size()) * 144.0 * 16.0);

  return LocalSystem{
      solver::DistCsrMatrix(num_dofs, dof_range, std::move(row_ptr), std::move(cols),
                            std::move(values)),
      std::move(b)};
}

LocalBsrSystem assemble_elasticity_bsr(const mesh::TetMesh& mesh,
                                       const MeshTopology& topo,
                                       const MaterialMap& materials,
                                       const mesh::Partition& partition,
                                       const Vec3& body_force,
                                       par::Communicator& comm) {
  const base::IdRange<mesh::NodeId> owned = partition.ranges[comm.rank_id()];
  const auto [nb, ne] = owned;
  const int num_dofs = kDofsPerNode * mesh.num_nodes();
  const solver::RowRange dof_range = row_range_of(owned);

  // --- Block sparsity: one 3x3 block per (owned node, adjacent node). ---
  std::vector<std::int32_t> block_row_ptr(static_cast<std::size_t>(owned.size()) + 1, 0);
  std::size_t nblocks = 0;
  for (mesh::NodeId n = nb; n < ne; ++n) {
    nblocks += topo.node_adj[n].size();
    block_row_ptr[static_cast<std::size_t>(n - nb) + 1] = static_cast<std::int32_t>(nblocks);
  }
  std::vector<solver::GlobalBlockRow> block_cols(nblocks);
  {
    std::size_t p = 0;
    for (mesh::NodeId n = nb; n < ne; ++n) {
      for (const mesh::NodeId m : topo.node_adj[n]) {
        block_cols[p++] = solver::GlobalBlockRow{m.value()};
      }
    }
  }
  std::vector<double> values(nblocks * 9, 0.0);

  auto col_slot = [&](mesh::NodeId n, mesh::NodeId m) {
    const auto& adj = topo.node_adj[n];
    const auto it = std::lower_bound(adj.begin(), adj.end(), m);
    NEURO_REQUIRE(it != adj.end() && *it == m,
                  "assemble_elasticity_bsr: tet neighbour missing from adjacency");
    return static_cast<int>(it - adj.begin());
  };

  solver::DistVector b(num_dofs, dof_range, 0.0);

  // --- Element loop: identical traversal and accumulation order to the
  // scalar assembly, so every block value matches it bit for bit. ---
  std::vector<mesh::TetId> local_tets;
  for (mesh::NodeId n = nb; n < ne; ++n) {
    local_tets.insert(local_tets.end(), topo.node_tets[n].begin(),
                      topo.node_tets[n].end());
  }
  std::sort(local_tets.begin(), local_tets.end());
  local_tets.erase(std::unique(local_tets.begin(), local_tets.end()), local_tets.end());

  const bool has_body_force = norm2(body_force) > 0.0;
  for (const mesh::TetId t : local_tets) {
    const auto& tet = mesh.tets[t];
    const TetElement elem = TetElement::from_vertices(
        mesh.nodes[tet[0]], mesh.nodes[tet[1]], mesh.nodes[tet[2]],
        mesh.nodes[tet[3]]);
    const auto D = elasticity_matrix(materials.for_label(mesh.tet_labels[t]));
    const auto Ke = elem.stiffness(D);

    for (int a = 0; a < 4; ++a) {
      const mesh::NodeId n = tet[static_cast<std::size_t>(a)];
      if (!owned.contains(n)) continue;
      for (int bnode = 0; bnode < 4; ++bnode) {
        const mesh::NodeId m = tet[static_cast<std::size_t>(bnode)];
        const std::size_t block =
            static_cast<std::size_t>(block_row_ptr[static_cast<std::size_t>(n - nb)]) +
            static_cast<std::size_t>(col_slot(n, m));
        for (int ca = 0; ca < 3; ++ca) {
          for (int cb = 0; cb < 3; ++cb) {
            values[block * 9 + static_cast<std::size_t>(3 * ca + cb)] +=
                Ke[static_cast<std::size_t>(12 * (3 * a + ca) + (3 * bnode + cb))];
          }
        }
      }
      if (has_body_force) {
        const auto load = elem.body_force_load(body_force);
        for (int ca = 0; ca < 3; ++ca) {
          b[row_of(dof_of(n, ca))] += load[static_cast<std::size_t>(3 * a + ca)];
        }
      }
    }
  }

  // Same stiffness flops as the scalar assembly; scatter traffic is one
  // 4-byte index per 9 values instead of one per value.
  comm.work().add_flops(static_cast<double>(local_tets.size()) *
                        (TetElement::kStiffnessFlops + 2.0 * 144.0));
  comm.work().add_mem_bytes(static_cast<double>(nblocks) * 76.0 +
                            static_cast<double>(local_tets.size()) * 144.0 * 16.0);

  return LocalBsrSystem{
      solver::DistBsrMatrix(num_dofs, dof_range, std::move(block_row_ptr),
                            std::move(block_cols), std::move(values)),
      std::move(b)};
}

}  // namespace neuro::fem

// Parallel assembly of the global elasticity system.
//
// The decomposition is the paper's: each rank owns a contiguous block of mesh
// nodes (≈ equal counts under the default partitioner) and assembles exactly
// the matrix rows of its nodes' dofs. A rank therefore computes the element
// stiffness of every tetrahedron incident to any of its nodes — elements
// straddling a partition boundary are computed by several ranks. That keeps
// assembly communication-free (matching the paper's assembly phase, which
// shows pure compute imbalance, not communication limits) at the cost of the
// connectivity-dependent duplicated work the paper identifies as its assembly
// load imbalance.
#pragma once

#include <vector>

#include "base/strong_id.h"
#include "fem/element.h"
#include "fem/material.h"
#include "mesh/partition.h"
#include "mesh/tet_mesh.h"
#include "par/communicator.h"
#include "solver/bsr_matrix.h"
#include "solver/dist_matrix.h"
#include "solver/dist_vector.h"

namespace neuro::fem {

/// Read-only mesh connectivity shared by all ranks (built once, outside the
/// SPMD region — in the paper's setting this is the replicated mesh).
struct MeshTopology {
  base::IdVector<mesh::NodeId, std::vector<mesh::NodeId>> node_adj;  ///< sorted,
                                                                     ///< incl. self
  base::IdVector<mesh::NodeId, std::vector<mesh::TetId>> node_tets;  ///< incident
                                                                     ///< tets
  [[nodiscard]] static MeshTopology build(const mesh::TetMesh& mesh);
};

/// One rank's piece of the assembled system (rows of its dofs).
struct LocalSystem {
  solver::DistCsrMatrix A;
  solver::DistVector b;
};

/// One rank's piece of the assembled system in 3x3 block form (the fast
/// backend). The node adjacency IS the block sparsity, so the blocked matrix
/// assembles natively — no scalar detour — and its block values are
/// bit-identical to the scalar assembly (same element loop, same per-entry
/// accumulation order).
struct LocalBsrSystem {
  solver::DistBsrMatrix A;
  solver::DistVector b;
};

/// Assembles the rank's rows of K u = f for linear elasticity with per-tet
/// materials and an optional constant body force. Collective only in the
/// trivial sense (no messages; every rank works on its own rows).
[[nodiscard]] LocalSystem assemble_elasticity(const mesh::TetMesh& mesh, const MeshTopology& topo,
                                const MaterialMap& materials,
                                const mesh::Partition& partition,
                                const Vec3& body_force, par::Communicator& comm);

/// Block-CSR variant of assemble_elasticity: one 3x3 block per node-adjacency
/// edge, scattered straight from the element stiffness.
[[nodiscard]] LocalBsrSystem assemble_elasticity_bsr(
    const mesh::TetMesh& mesh, const MeshTopology& topo,
    const MaterialMap& materials, const mesh::Partition& partition,
    const Vec3& body_force, par::Communicator& comm);

}  // namespace neuro::fem

#include "fem/baseline_interpolation.h"

#include <cmath>

#include "base/check.h"

namespace neuro::fem {

std::vector<Vec3> interpolate_surface_displacements(
    const mesh::TetMesh& mesh,
    const std::vector<std::pair<mesh::NodeId, Vec3>>& prescribed,
    const IdwOptions& options) {
  NEURO_REQUIRE(!prescribed.empty(),
                "interpolate_surface_displacements: no prescribed nodes");
  NEURO_REQUIRE(options.power > 0.0,
                "interpolate_surface_displacements: power must be positive");

  std::vector<Vec3> result(static_cast<std::size_t>(mesh.num_nodes()));
  std::vector<char> fixed(static_cast<std::size_t>(mesh.num_nodes()), 0);
  for (const auto& [node, u] : prescribed) {
    result[node.index()] = u;
    fixed[node.index()] = 1;
  }

  for (const mesh::NodeId n : mesh.node_ids()) {
    if (fixed[n.index()]) continue;
    const Vec3& p = mesh.nodes[n];
    Vec3 acc{};
    double total_weight = 0.0;
    for (const auto& [node, u] : prescribed) {
      const double dist = norm(p - mesh.nodes[node]);
      const double w = 1.0 / std::pow(std::max(dist, 1e-9), options.power);
      acc += w * u;
      total_weight += w;
    }
    result[n.index()] = acc / total_weight;
  }
  return result;
}

}  // namespace neuro::fem

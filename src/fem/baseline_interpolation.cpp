#include "fem/baseline_interpolation.h"

#include <cmath>

#include "base/check.h"

namespace neuro::fem {

std::vector<Vec3> interpolate_surface_displacements(
    const mesh::TetMesh& mesh,
    const std::vector<std::pair<mesh::NodeId, Vec3>>& prescribed,
    const IdwOptions& options) {
  NEURO_REQUIRE(!prescribed.empty(),
                "interpolate_surface_displacements: no prescribed nodes");
  NEURO_REQUIRE(options.power > 0.0,
                "interpolate_surface_displacements: power must be positive");

  std::vector<Vec3> result(static_cast<std::size_t>(mesh.num_nodes()));
  std::vector<char> fixed(static_cast<std::size_t>(mesh.num_nodes()), 0);
  for (const auto& [node, u] : prescribed) {
    result[static_cast<std::size_t>(node)] = u;
    fixed[static_cast<std::size_t>(node)] = 1;
  }

  for (int n = 0; n < mesh.num_nodes(); ++n) {
    if (fixed[static_cast<std::size_t>(n)]) continue;
    const Vec3& p = mesh.nodes[static_cast<std::size_t>(n)];
    Vec3 acc{};
    double total_weight = 0.0;
    for (const auto& [node, u] : prescribed) {
      const double dist = norm(p - mesh.nodes[static_cast<std::size_t>(node)]);
      const double w = 1.0 / std::pow(std::max(dist, 1e-9), options.power);
      acc += w * u;
      total_weight += w;
    }
    result[static_cast<std::size_t>(n)] = acc / total_weight;
  }
  return result;
}

}  // namespace neuro::fem

// Geometric baseline: interior displacements by surface interpolation.
//
// The paper positions its volumetric FEM against "fast surgery simulation"
// methods that keep only surface nodes (its ref. [7], Bro-Nielsen) and
// against accuracy-for-speed tradeoffs generally. This baseline represents
// that class: given the same surface displacements the FEM receives as
// boundary conditions, fill the interior by normalized inverse-distance
// weighting — no mechanics, no material model, O(interior × surface) work.
// The comparison bench quantifies what the biomechanical model buys.
#pragma once

#include <utility>
#include <vector>

#include "base/vec3.h"
#include "mesh/tet_mesh.h"

namespace neuro::fem {

struct IdwOptions {
  double power = 2.0;  ///< weight = 1 / distance^power
};

/// Returns per-node displacements: prescribed nodes keep their values,
/// all other nodes get the inverse-distance-weighted average of the
/// prescribed ones. The same call signature as solve_deformation's inputs,
/// so benches can swap the two.
[[nodiscard]] std::vector<Vec3> interpolate_surface_displacements(
    const mesh::TetMesh& mesh,
    const std::vector<std::pair<mesh::NodeId, Vec3>>& prescribed,
    const IdwOptions& options = {});

}  // namespace neuro::fem

#include "fem/boundary.h"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "base/check.h"

namespace neuro::fem {

DirichletSet DirichletSet::from_node_displacements(
    const std::vector<std::pair<mesh::NodeId, Vec3>>& prescribed) {
  DirichletSet set;
  for (const auto& [node, u] : prescribed) {
    set.add(dof_of(node, 0), u.x);
    set.add(dof_of(node, 1), u.y);
    set.add(dof_of(node, 2), u.z);
  }
  set.finalize();
  return set;
}

void DirichletSet::add(DofId dof, double value) {
  NEURO_REQUIRE(!finalized_, "DirichletSet::add after finalize");
  dofs_.push_back(dof);
  values_.push_back(value);
}

void DirichletSet::finalize() {
  std::vector<std::size_t> order(dofs_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return dofs_[a] < dofs_[b]; });
  std::vector<DofId> dofs(dofs_.size());
  std::vector<double> values(values_.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    dofs[i] = dofs_[order[i]];
    values[i] = values_[order[i]];
  }
  // Duplicate prescriptions must agree; keep the first.
  for (std::size_t i = 1; i < dofs.size(); ++i) {
    NEURO_REQUIRE(dofs[i] != dofs[i - 1] || values[i] == values[i - 1],
                  "DirichletSet: conflicting values for dof " << dofs[i]);
  }
  dofs_.clear();
  values_.clear();
  for (std::size_t i = 0; i < dofs.size(); ++i) {
    if (i == 0 || dofs[i] != dofs[i - 1]) {
      dofs_.push_back(dofs[i]);
      values_.push_back(values[i]);
    }
  }
  finalized_ = true;
}

bool DirichletSet::contains(DofId dof) const {
  NEURO_CHECK(finalized_);
  return std::binary_search(dofs_.begin(), dofs_.end(), dof);
}

double DirichletSet::value_of(DofId dof) const {
  NEURO_CHECK(finalized_);
  const auto it = std::lower_bound(dofs_.begin(), dofs_.end(), dof);
  NEURO_REQUIRE(it != dofs_.end() && *it == dof,
                "DirichletSet::value_of: dof " << dof << " not prescribed");
  return values_[static_cast<std::size_t>(it - dofs_.begin())];
}

int DirichletSet::count_in_range(DofId begin, DofId end) const {
  NEURO_CHECK(finalized_);
  const auto lo = std::lower_bound(dofs_.begin(), dofs_.end(), begin);
  const auto hi = std::lower_bound(dofs_.begin(), dofs_.end(), end);
  return static_cast<int>(hi - lo);
}

void apply_dirichlet(LocalSystem& system, const DirichletSet& bc,
                     par::Communicator& comm) {
  auto& A = system.A;
  auto& b = system.b;
  const auto [rb, re] = A.range();
  const auto& row_ptr = A.row_ptr();
  const auto& cols = A.global_cols();
  auto& values = A.values();

  for (solver::GlobalRow row = rb; row < re; ++row) {
    const int r = row - rb;
    const bool row_fixed = bc.contains(dof_of_row(row));
    if (row_fixed) {
      // Identity row carrying the prescribed value.
      for (int p = row_ptr[static_cast<std::size_t>(r)];
           p < row_ptr[static_cast<std::size_t>(r) + 1]; ++p) {
        values[static_cast<std::size_t>(p)] =
            cols[static_cast<std::size_t>(p)] == row.value() ? 1.0 : 0.0;
      }
      b[row] = bc.value_of(dof_of_row(row));
      continue;
    }
    // Move fixed columns to the right-hand side and zero them, preserving
    // symmetry with the zeroed fixed rows.
    for (int p = row_ptr[static_cast<std::size_t>(r)];
         p < row_ptr[static_cast<std::size_t>(r) + 1]; ++p) {
      const solver::GlobalRow c{cols[static_cast<std::size_t>(p)]};
      if (c != row && bc.contains(dof_of_row(c))) {
        b[row] -= values[static_cast<std::size_t>(p)] * bc.value_of(dof_of_row(c));
        values[static_cast<std::size_t>(p)] = 0.0;
      }
    }
  }

  // The scan itself is the (small) BC cost; what matters for scaling is that
  // ranks owning many fixed rows end up with trivial identity rows — less
  // solve work — which is the imbalance the paper reports.
  comm.work().add_mem_bytes(static_cast<double>(A.local_nnz()) * 12.0);
  comm.work().add_flops(static_cast<double>(A.local_nnz()) * 0.5);
}

void apply_dirichlet(LocalBsrSystem& system, const DirichletSet& bc,
                     par::Communicator& comm) {
  apply_dirichlet(system.A, system.b, bc, comm);
}

void apply_dirichlet(solver::DistBsrMatrix& A, solver::DistVector& b,
                     const DirichletSet& bc, par::Communicator& comm) {
  const solver::GlobalRow rb = A.range().first;
  const auto& row_ptr = A.block_row_ptr();
  const auto& bcols = A.block_cols();
  auto& values = A.values();

  for (int br = 0; br < A.local_block_rows(); ++br) {
    const solver::LocalBlockRow lbr{br};
    for (int ca = 0; ca < solver::DistBsrMatrix::kBlock; ++ca) {
      const solver::GlobalRow row = rb + (3 * br + ca);
      const bool row_fixed = bc.contains(dof_of_row(row));
      for (std::int32_t p = row_ptr[lbr]; p < row_ptr[lbr + 1]; ++p) {
        const int cbase = bcols[static_cast<std::size_t>(p)].value() * 3;
        for (int cb = 0; cb < solver::DistBsrMatrix::kBlock; ++cb) {
          double& v = values[static_cast<std::size_t>(p) * 9U +
                             static_cast<std::size_t>(3 * ca + cb)];
          const solver::GlobalRow c{cbase + cb};
          if (row_fixed) {
            v = c == row ? 1.0 : 0.0;
          } else if (c != row && bc.contains(dof_of_row(c))) {
            b[row] -= v * bc.value_of(dof_of_row(c));
            v = 0.0;
          }
        }
      }
      if (row_fixed) b[row] = bc.value_of(dof_of_row(row));
    }
  }

  comm.work().add_mem_bytes(static_cast<double>(A.local_nnz()) * 12.0);
  comm.work().add_flops(static_cast<double>(A.local_nnz()) * 0.5);
}

}  // namespace neuro::fem

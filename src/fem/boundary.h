// Dirichlet boundary conditions by substitution.
//
// The paper fixes "the displacements at the surface to match those generated
// by the active surface model … substituting known values for equations in
// the original system, reducing the number of unknowns" — and observes that
// this unbalances the solve because surface nodes are not distributed evenly
// across CPUs. We reproduce the substitution exactly: a fixed dof's row
// becomes an identity row carrying the prescribed value, its column is moved
// to the right-hand side everywhere else, and the matrix stays symmetric.
#pragma once

#include <vector>

#include "base/vec3.h"
#include "fem/assembly.h"
#include "fem/dof.h"
#include "mesh/tet_mesh.h"
#include "par/communicator.h"

namespace neuro::fem {

/// Sorted set of prescribed dofs with their values. Replicated on all ranks
/// (it is small: surface nodes only).
class DirichletSet {
 public:
  DirichletSet() = default;

  /// From per-node prescribed displacements (3 dofs per node).
  [[nodiscard]] static DirichletSet from_node_displacements(
      const std::vector<std::pair<mesh::NodeId, Vec3>>& prescribed);

  void add(DofId dof, double value);
  /// Must be called after the last add() and before queries.
  void finalize();

  [[nodiscard]] bool contains(DofId dof) const;
  [[nodiscard]] double value_of(DofId dof) const;  ///< requires contains(dof)
  [[nodiscard]] std::size_t size() const { return dofs_.size(); }
  [[nodiscard]] const std::vector<DofId>& dofs() const { return dofs_; }

  /// Number of fixed dofs within the dof image of a row range — the per-rank
  /// imbalance the paper discusses.
  [[nodiscard]] int count_in_range(DofId begin, DofId end) const;

 private:
  bool finalized_ = false;
  std::vector<DofId> dofs_;
  std::vector<double> values_;
};

/// Applies the substitution to one rank's rows. No communication (every rank
/// holds the full DirichletSet).
void apply_dirichlet(LocalSystem& system, const DirichletSet& bc,
                     par::Communicator& comm);

/// Block-CSR overload: identical substitution semantics and, per scalar row,
/// identical column traversal order (blocks are column-sorted and scalar
/// columns ascend within a block), so the modified values and right-hand side
/// match the scalar path bit for bit.
void apply_dirichlet(LocalBsrSystem& system, const DirichletSet& bc,
                     par::Communicator& comm);

/// Loose matrix/vector variant of the block-CSR overload (same substitution,
/// byte for byte) for callers that hold the pieces separately — the
/// matrix-free operator's node-pair storage wraps a DistBsrMatrix it owns.
void apply_dirichlet(solver::DistBsrMatrix& A, solver::DistVector& b,
                     const DirichletSet& bc, par::Communicator& comm);

}  // namespace neuro::fem

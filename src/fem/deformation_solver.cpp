#include "fem/deformation_solver.h"

#include <algorithm>
#include <optional>

#include "base/check.h"
#include "obs/trace.h"
#include "par/communicator.h"
#include "solver/additive_schwarz.h"

namespace neuro::fem {

mesh::Partition make_partition(const mesh::TetMesh& mesh, const DirichletSet& bc,
                               PartitionKind kind, int nranks) {
  switch (kind) {
    case PartitionKind::kNodeBalanced:
      return mesh::partition_node_balanced(mesh.num_nodes(), nranks);
    case PartitionKind::kConnectivityBalanced:
      return mesh::partition_connectivity_balanced(mesh, nranks);
    case PartitionKind::kFreeNodeBalanced: {
      std::vector<std::uint8_t> fixed(static_cast<std::size_t>(mesh.num_nodes()), 0);
      for (const DofId dof : bc.dofs()) {
        fixed[node_of(dof).index()] = 1;
      }
      return mesh::partition_free_node_balanced(mesh, fixed, nranks);
    }
  }
  NEURO_CHECK_MSG(false, "make_partition: unknown kind");
  return {};
}

DeformationResult solve_deformation(
    const mesh::TetMesh& mesh, const MaterialMap& materials,
    const std::vector<std::pair<mesh::NodeId, Vec3>>& prescribed,
    const DeformationSolveOptions& options) {
  NEURO_REQUIRE(options.nranks >= 1, "solve_deformation: nranks must be >= 1");
  NEURO_REQUIRE(!prescribed.empty(),
                "solve_deformation: no prescribed displacements — system singular");
  NEURO_REQUIRE(!options.mixed_precision ||
                    options.preconditioner ==
                        solver::PreconditionerKind::kAdditiveSchwarzIlu0,
                "solve_deformation: mixed_precision requires the additive-"
                "Schwarz ILU(0) preconditioner");

  DeformationResult result;
  obs::Span init_span = obs::timed_span("fem.setup");

  const DirichletSet bc = DirichletSet::from_node_displacements(prescribed);
  const mesh::Partition partition =
      make_partition(mesh, bc, options.partition, options.nranks);
  const MeshTopology topo = MeshTopology::build(mesh);

  result.wall_init_s = init_span.close();
  result.num_equations = 3 * mesh.num_nodes();
  result.num_fixed_dofs = static_cast<int>(bc.size());
  for (const Rank r : partition.rank_ids()) {
    result.nodes_per_rank.push_back(partition.nodes_of(r));
    const auto [nb, ne] = partition.ranges[r];
    result.fixed_dofs_per_rank.push_back(
        bc.count_in_range(dof_of(nb, 0), dof_of(ne, 0)));
  }

  const int P = options.nranks;
  std::vector<par::WorkRecord> assemble_work(static_cast<std::size_t>(P));
  std::vector<par::WorkRecord> bc_work(static_cast<std::size_t>(P));
  std::vector<par::WorkRecord> solve_work(static_cast<std::size_t>(P));
  std::vector<double> assemble_s(static_cast<std::size_t>(P), 0.0);
  std::vector<double> bc_s(static_cast<std::size_t>(P), 0.0);
  std::vector<double> solve_s(static_cast<std::size_t>(P), 0.0);
  std::vector<Vec3> displacements(static_cast<std::size_t>(mesh.num_nodes()));
  solver::SolveStats stats;

  par::SpmdOptions spmd;
  spmd.fault = options.fault_injection;
  par::run_spmd(P, [&](par::Communicator& comm) {
    const int rank = comm.rank();
    const auto r = static_cast<std::size_t>(rank);
    comm.work().take();  // discard any setup noise

    // --- Assemble ---
    comm.barrier();
    obs::Span phase = obs::timed_span("fem.assemble");
    // The backends carry the same pipeline; exactly one is engaged. The BSR
    // system assembles natively (no scalar detour) with bit-identical values;
    // the matrix-free backend exposes the same operator without a global
    // matrix in the hot path.
    const bool use_bsr = options.backend == MatrixBackend::kBsr;
    const bool use_mf = options.backend == MatrixBackend::kMatrixFree;
    std::optional<LocalSystem> csr;
    std::optional<LocalBsrSystem> bsr;
    std::optional<LocalMatrixFreeSystem> mf;
    if (use_mf) {
      mf.emplace(assemble_elasticity_matrix_free(
          mesh, topo, materials, partition, options.body_force, comm,
          options.matrix_free_storage, options.simd_dispatch));
    } else if (use_bsr) {
      bsr.emplace(assemble_elasticity_bsr(mesh, topo, materials, partition,
                                          options.body_force, comm));
    } else {
      csr.emplace(assemble_elasticity(mesh, topo, materials, partition,
                                      options.body_force, comm));
    }
    solver::DistVector& rhs = use_mf ? mf->b : use_bsr ? bsr->b : csr->b;
    // Concentrated nodal forces (paper Eq. 1's third load type).
    const base::IdRange<mesh::NodeId> owned = partition.ranges[comm.rank_id()];
    for (const auto& [node, f] : options.nodal_loads) {
      if (owned.contains(node)) {
        rhs[row_of(dof_of(node, 0))] += f.x;
        rhs[row_of(dof_of(node, 1))] += f.y;
        rhs[row_of(dof_of(node, 2))] += f.z;
      }
    }
    comm.barrier();
    assemble_s[r] = phase.close();
    assemble_work[r] = comm.work().take();

    // --- Boundary conditions ---
    phase = obs::timed_span("fem.bc");
    if (use_mf) {
      mf->A.apply_dirichlet(bc, rhs, comm);
    } else if (use_bsr) {
      apply_dirichlet(*bsr, bc, comm);
    } else {
      apply_dirichlet(*csr, bc, comm);
    }
    comm.barrier();
    bc_s[r] = phase.close();
    bc_work[r] = comm.work().take();

    // --- Solve ---
    phase = obs::timed_span("fem.solve");
    // Shrink to the true unknown set (paper's BC path), then build the ghost
    // exchange plan.
    if (use_mf) {
      mf->A.finalize(comm);
    } else if (use_bsr) {
      bsr->A.drop_zero_blocks();
      bsr->A.setup_ghosts(comm);
    } else {
      csr->A.drop_zeros();
      csr->A.setup_ghosts(comm);
    }
    const solver::LinearOperator& A =
        use_mf  ? static_cast<const solver::LinearOperator&>(mf->A)
        : use_bsr ? static_cast<const solver::LinearOperator&>(bsr->A)
                  : static_cast<const solver::LinearOperator&>(csr->A);
    const solver::SchwarzPrecision precision =
        options.mixed_precision ? solver::SchwarzPrecision::kMixedFloat
                                : solver::SchwarzPrecision::kDouble;
    std::unique_ptr<solver::Preconditioner> precond;
    if (use_mf && options.preconditioner ==
                      solver::PreconditionerKind::kAdditiveSchwarzIlu0) {
      // Schwarz replicates the CSR structure it is handed, so a temporary
      // owned-rows export of the matrix-free operator is enough.
      precond = std::make_unique<solver::AdditiveSchwarz>(
          mf->A.to_csr(), comm, options.schwarz_overlap, precision);
    } else {
      precond = solver::make_preconditioner(options.preconditioner, A, comm,
                                            options.schwarz_overlap, precision);
    }
    solver::DistVector x(rhs.global_size(), rhs.range(), 0.0);
    solver::SolveStats local_stats;
    if (options.mixed_precision) {
      // Float factors steer the corrections; the outer loop judges the true
      // double residual, so the tolerance reached matches the double path.
      solver::KrylovVariant variant = solver::KrylovVariant::kGmres;
      switch (options.krylov) {
        case KrylovKind::kGmres:
          variant = solver::KrylovVariant::kGmres;
          break;
        case KrylovKind::kCg:
          variant = solver::KrylovVariant::kCg;
          break;
        case KrylovKind::kBicgstab:
          variant = solver::KrylovVariant::kBicgstab;
          break;
      }
      local_stats =
          solver::iterative_refinement(A, rhs, x, *precond, variant,
                                       options.solver, options.refinement, comm);
    } else {
      switch (options.krylov) {
        case KrylovKind::kGmres:
          local_stats = solver::gmres(A, rhs, x, *precond, options.solver, comm);
          break;
        case KrylovKind::kCg:
          local_stats = solver::cg(A, rhs, x, *precond, options.solver, comm);
          break;
        case KrylovKind::kBicgstab:
          local_stats = solver::bicgstab(A, rhs, x, *precond, options.solver, comm);
          break;
      }
    }
    comm.barrier();
    if (phase.active()) {
      phase.attr("iterations", local_stats.iterations);
      phase.attr("residual", local_stats.final_residual);
      if (use_mf) {
        phase.attr("mf_storage", matrix_free_storage_name(mf->A.storage()));
        phase.attr("simd_target",
                   solver::simd::dispatch_target_name(mf->A.dispatch()));
      }
      if (options.mixed_precision) phase.attr("mixed_precision", 1);
    }
    solve_s[r] = phase.close();
    solve_work[r] = comm.work().take();

    // --- Collect the displacement field (disjoint slabs, no locking). ---
    for (const mesh::NodeId n : owned) {
      displacements[n.index()] = {x[row_of(dof_of(n, 0))],
                                  x[row_of(dof_of(n, 1))],
                                  x[row_of(dof_of(n, 2))]};
    }
    if (rank == 0) stats = local_stats;
  }, spmd);

  result.node_displacements = std::move(displacements);
  result.stats = stats;
  result.work.record("assemble", std::move(assemble_work));
  result.work.record("bc", std::move(bc_work));
  result.work.record("solve", std::move(solve_work));
  result.wall_assemble_s = *std::max_element(assemble_s.begin(), assemble_s.end());
  result.wall_bc_s = *std::max_element(bc_s.begin(), bc_s.end());
  result.wall_solve_s = *std::max_element(solve_s.begin(), solve_s.end());
  return result;
}

}  // namespace neuro::fem

// High-level driver: the paper's "biomechanical simulation of volumetric
// brain deformation" step. Given the tetrahedral mesh, a material map and
// prescribed surface displacements, it partitions the mesh, runs the SPMD
// assemble → boundary-condition → Krylov-solve sequence on the requested
// number of ranks, and returns the volumetric displacement field together
// with per-phase, per-rank work records (the input to the scaling model) and
// measured wall-clock per phase.
#pragma once

#include <utility>
#include <vector>

#include "base/vec3.h"
#include "fem/boundary.h"
#include "fem/material.h"
#include "fem/matrix_free.h"
#include "mesh/partition.h"
#include "mesh/tet_mesh.h"
#include "par/work_counter.h"
#include "solver/krylov.h"
#include "solver/refinement.h"
#include "solver/simd/dispatch.h"

namespace neuro::fem {

enum class KrylovKind { kGmres, kCg, kBicgstab };
/// Which operator backend carries the assembled system through the solve.
enum class MatrixBackend {
  kCsrReference,  ///< scalar CSR, the bitwise-stable reference path
  kBsr,           ///< 3x3 block CSR with overlapped halo exchange (fast path)
  kMatrixFree,    ///< no assembled global matrix in the hot path (matrix_free.h)
};
enum class PartitionKind {
  kNodeBalanced,          ///< the paper's: equal node counts
  kConnectivityBalanced,  ///< future-work: balance assembly work
  kFreeNodeBalanced,      ///< future-work: balance post-BC solve work
};

struct DeformationSolveOptions {
  int nranks = 1;
  PartitionKind partition = PartitionKind::kNodeBalanced;
  solver::PreconditionerKind preconditioner =
      solver::PreconditionerKind::kBlockJacobiIlu0;
  int schwarz_overlap = 1;  ///< used by kAdditiveSchwarzIlu0 only
  KrylovKind krylov = KrylovKind::kGmres;  ///< the paper's solver
  MatrixBackend backend = MatrixBackend::kCsrReference;
  /// kMatrixFree only: storage policy of the operator apply.
  MatrixFreeStorage matrix_free_storage = MatrixFreeStorage::kNodePairBlocks;
  /// kMatrixFree only: instruction-set target of the apply kernels. kAuto
  /// probes the CPU; kScalar makes kNodePairBlocks bit-identical to kBsr.
  solver::simd::DispatchTarget simd_dispatch = solver::simd::DispatchTarget::kAuto;
  /// Store the additive-Schwarz ILU(0) factors in float (solved with double
  /// accumulation) and wrap the Krylov solve in a double-precision iterative-
  /// refinement outer loop, converging to the same tolerance as the all-double
  /// path. Requires preconditioner == kAdditiveSchwarzIlu0.
  bool mixed_precision = false;
  solver::RefinementConfig refinement;  ///< mixed_precision outer loop knobs
  solver::SolverConfig solver;
  Vec3 body_force{};  ///< optional gravity-style load

  /// Seeded fault campaign applied to the SPMD run (par/fault_inject.h);
  /// inactive by default. Tests and benches use this to exercise the
  /// degradation ladder deterministically.
  par::FaultConfig fault_injection;

  /// Concentrated nodal forces (e.g. from fem::traction_loads /
  /// fem::pressure_loads), added to the right-hand side after assembly.
  std::vector<std::pair<mesh::NodeId, Vec3>> nodal_loads;
};

struct DeformationResult {
  std::vector<Vec3> node_displacements;  ///< full field, every node
  solver::SolveStats stats;
  par::PhaseWork work;  ///< phases "assemble", "bc", "solve" (+ "setup")
  double wall_assemble_s = 0.0;
  double wall_bc_s = 0.0;
  double wall_solve_s = 0.0;
  double wall_init_s = 0.0;  ///< topology + partition construction
  int num_equations = 0;
  int num_fixed_dofs = 0;
  std::vector<int> nodes_per_rank;
  std::vector<int> fixed_dofs_per_rank;
};

/// Solves K u = f with the displacements of `prescribed` nodes fixed.
/// `prescribed` must pin enough of the boundary to make the system
/// non-singular (the pipeline fixes the full brain surface).
[[nodiscard]] DeformationResult solve_deformation(
    const mesh::TetMesh& mesh, const MaterialMap& materials,
    const std::vector<std::pair<mesh::NodeId, Vec3>>& prescribed,
    const DeformationSolveOptions& options);

/// Builds the partition an options struct asks for (exposed for benches).
[[nodiscard]] mesh::Partition make_partition(const mesh::TetMesh& mesh, const DirichletSet& bc,
                               PartitionKind kind, int nranks);

}  // namespace neuro::fem

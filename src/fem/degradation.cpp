#include "fem/degradation.h"

#include <sstream>
#include <utility>

#include "base/check.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "par/verify.h"

namespace neuro::fem {

const char* degradation_rung_name(DegradationRung rung) {
  switch (rung) {
    case DegradationRung::kFullSolve: return "full_solve";
    case DegradationRung::kRelaxedSolve: return "relaxed_solve";
    case DegradationRung::kBaselineInterpolation: return "baseline_interpolation";
    case DegradationRung::kLastGood: return "last_good";
  }
  return "unknown";
}

namespace {

/// Maps a non-converged solve onto the failure taxonomy. kMaxIterations is
/// reported as stagnation: the iteration budget ran out without reaching the
/// target, which is indistinguishable from a plateau to the caller.
base::Status status_from_stats(const solver::SolveStats& stats) {
  base::StatusCode code = base::StatusCode::kSolverStagnated;
  switch (stats.stop_reason) {
    case solver::StopReason::kConverged:
      return {};
    case solver::StopReason::kMaxIterations:
    case solver::StopReason::kStagnated:
      code = base::StatusCode::kSolverStagnated;
      break;
    case solver::StopReason::kDiverged:
      code = base::StatusCode::kSolverDiverged;
      break;
    case solver::StopReason::kNumericalInvalid:
    case solver::StopReason::kBreakdown:
      code = base::StatusCode::kNumericalInvalid;
      break;
    case solver::StopReason::kDeadlineExceeded:
      code = base::StatusCode::kDeadlineExceeded;
      break;
  }
  std::string message = stats.stop_message;
  if (message.empty()) message = stop_reason_name(stats.stop_reason);
  return {code, std::move(message)};
}

/// One solve-rung attempt: runs the distributed solve, converts faults and
/// non-convergence into a typed Status, and gates the candidate field.
/// `accept_improved` is rung 1's best-so-far acceptance: a non-converged
/// iterate that still reduced the residual may pass (validation decides).
struct AttemptOutcome {
  bool accepted = false;
  base::Status status;
  DeformationResult result;
  FieldValidationReport validation;
};

AttemptOutcome run_solve_rung(
    const mesh::TetMesh& mesh, const MaterialMap& materials,
    const std::vector<std::pair<mesh::NodeId, Vec3>>& prescribed,
    const DeformationSolveOptions& options, bool accept_improved,
    const FieldValidationOptions& validation) {
  AttemptOutcome out;
  try {
    out.result = solve_deformation(mesh, materials, prescribed, options);
  } catch (const par::CommFaultError& e) {
    out.status = e.status();
    return out;
  } catch (const par::CollectiveMismatchError& e) {
    // Under NEURO_PAR_VERIFY an injected fault surfaces as a divergence
    // report; it is the same recoverable fault class.
    out.status = {base::StatusCode::kCommFault, e.what()};
    return out;
  } catch (const base::StatusError& e) {
    out.status = e.status();
    return out;
  }
  const solver::SolveStats& stats = out.result.stats;
  const bool improved = stats.final_residual < stats.initial_residual;
  if (!stats.converged && !(accept_improved && improved)) {
    out.status = status_from_stats(stats);
    return out;
  }
  out.validation = validate_displacement_field(
      mesh, out.result.node_displacements, validation);
  if (!out.validation.ok()) {
    out.status = out.validation.status;
    return out;
  }
  out.accepted = true;
  return out;
}

}  // namespace

base::Outcome<FallbackDeformationResult> solve_deformation_with_fallback(
    const mesh::TetMesh& mesh, const MaterialMap& materials,
    const std::vector<std::pair<mesh::NodeId, Vec3>>& prescribed,
    const DeformationSolveOptions& options, const DegradationOptions& degrade,
    const base::DeadlineBudget& budget) {
  FallbackDeformationResult out;
  DegradationReport& report = out.report;
  const auto record = [&report](DegradationRung rung, base::Status status,
                                double seconds) {
    obs::metrics()
        .counter(std::string("fem.rung_attempts.") + degradation_rung_name(rung))
        .add();
    report.attempts.push_back({rung, std::move(status), seconds});
  };
  // Each attempted rung gets one "fem.rung" span whose duration is exactly
  // the seconds recorded in the DegradationReport (span-as-stopwatch).
  const auto open_rung = [](DegradationRung rung) {
    obs::Span span = obs::timed_span("fem.rung");
    if (span.active()) span.attr("rung", degradation_rung_name(rung));
    return span;
  };
  const auto accept = [&](DegradationRung rung, AttemptOutcome&& attempt,
                          double seconds) {
    record(rung, {}, seconds);
    report.rung = rung;
    report.validation = attempt.validation;
    out.deformation = std::move(attempt.result);
  };
  // Leaving the full solve is a flight-recorder trigger: once the ladder
  // resolves (a degraded rung accepted, or every rung exhausted) the rank
  // threads have joined, so the orchestrating thread can safely dump a
  // post-mortem bundle carrying the trigger status and the rung chosen.
  const auto dump_postmortem = [&](const char* outcome) {
    obs::DumpContext context;
    context.detail = std::string("degradation ladder: ") + outcome + " (" +
                     report.trigger.message() + ")";
    context.attr("rung", degradation_rung_name(report.rung));
    context.attr("outcome", outcome);
    context.attr("trigger_status",
                 base::status_code_name(report.trigger.code()));
    context.attr("attempts", static_cast<std::int64_t>(report.attempts.size()));
    if (options.fault_injection.active()) {
      context.attr("fault_seed",
                   static_cast<std::int64_t>(options.fault_injection.seed));
    }
    obs::recorder().dump(
        obs::dump_trigger_from_status(report.trigger.code(),
                                      obs::DumpTrigger::kDegradation),
        context);
  };

  // Rung 0: the configured solve, watchdog armed from the budget.
  {
    DeformationSolveOptions opts = options;
    if (budget.limited()) {
      opts.solver.watchdog.deadline_seconds =
          budget.stage_allotment(degrade.full_solve_fraction);
    }
    obs::Span sw = open_rung(DegradationRung::kFullSolve);
    AttemptOutcome attempt = run_solve_rung(mesh, materials, prescribed, opts,
                                            false, degrade.validation);
    if (sw.active()) sw.attr("accepted", attempt.accepted ? 1 : 0);
    if (attempt.accepted) {
      accept(DegradationRung::kFullSolve, std::move(attempt), sw.close());
      return out;
    }
    report.trigger = attempt.status;
    record(DegradationRung::kFullSolve, std::move(attempt.status), sw.close());
  }
  report.degraded = true;

  // Rung 1: relaxed restarted GMRES, best-so-far acceptance. Skipped when
  // the budget is already gone — its time belongs to the cheap rungs now.
  if (!budget.expired()) {
    DeformationSolveOptions opts = options;
    opts.solver.rtol = degrade.relaxed_rtol;
    opts.solver.max_iterations = degrade.relaxed_max_iterations;
    if (budget.limited()) {
      opts.solver.watchdog.deadline_seconds =
          budget.stage_allotment(degrade.relaxed_solve_fraction);
    }
    obs::Span sw = open_rung(DegradationRung::kRelaxedSolve);
    AttemptOutcome attempt = run_solve_rung(mesh, materials, prescribed, opts,
                                            true, degrade.validation);
    if (sw.active()) sw.attr("accepted", attempt.accepted ? 1 : 0);
    if (attempt.accepted) {
      accept(DegradationRung::kRelaxedSolve, std::move(attempt), sw.close());
      dump_postmortem("degraded");
      return out;
    }
    record(DegradationRung::kRelaxedSolve, std::move(attempt.status),
           sw.close());
  } else {
    record(DegradationRung::kRelaxedSolve,
           budget.check("fem_fallback:relaxed_solve"), 0.0);
  }

  // Rung 2: geometric baseline. Purely local and cheap; runs even past the
  // deadline — a late usable field still beats none.
  if (degrade.allow_baseline) {
    obs::Span sw = open_rung(DegradationRung::kBaselineInterpolation);
    AttemptOutcome attempt;
    attempt.result.node_displacements =
        interpolate_surface_displacements(mesh, prescribed);
    attempt.result.num_equations = 3 * mesh.num_nodes();
    attempt.validation = validate_displacement_field(
        mesh, attempt.result.node_displacements, degrade.validation);
    if (sw.active()) sw.attr("accepted", attempt.validation.ok() ? 1 : 0);
    if (attempt.validation.ok()) {
      accept(DegradationRung::kBaselineInterpolation, std::move(attempt),
             sw.close());
      dump_postmortem("degraded");
      return out;
    }
    record(DegradationRung::kBaselineInterpolation, attempt.validation.status,
           sw.close());
  } else {
    record(DegradationRung::kBaselineInterpolation,
           {base::StatusCode::kUnavailable, "baseline rung disabled"}, 0.0);
  }

  // Rung 3: the previous validated field. Revalidated against this mesh —
  // checkpoints outlive the mesh they were computed on only by one scan, but
  // a wrong-size or stale field must not slip through.
  if (degrade.last_good != nullptr &&
      static_cast<int>(degrade.last_good->size()) == mesh.num_nodes()) {
    obs::Span sw = open_rung(DegradationRung::kLastGood);
    AttemptOutcome attempt;
    attempt.result.node_displacements = *degrade.last_good;
    attempt.result.num_equations = 3 * mesh.num_nodes();
    attempt.validation = validate_displacement_field(
        mesh, attempt.result.node_displacements, degrade.validation);
    if (sw.active()) sw.attr("accepted", attempt.validation.ok() ? 1 : 0);
    if (attempt.validation.ok()) {
      accept(DegradationRung::kLastGood, std::move(attempt), sw.close());
      dump_postmortem("degraded");
      return out;
    }
    record(DegradationRung::kLastGood, attempt.validation.status, sw.close());
  } else {
    record(DegradationRung::kLastGood,
           {base::StatusCode::kUnavailable, "no last-good field checkpointed"},
           0.0);
  }

  dump_postmortem("exhausted");
  std::ostringstream oss;
  oss << "degradation ladder exhausted; trigger: " << report.trigger;
  return base::Status{base::StatusCode::kUnavailable, oss.str()};
}

}  // namespace neuro::fem

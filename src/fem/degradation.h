// Deadline-aware graceful degradation for the biomechanical solve.
//
// The clinical contract (PAPER.md): the surgeon needs a usable volumetric
// deformation field within the intraoperative deadline, every time. When the
// full solve cannot deliver — residual stagnation, a communication fault, a
// blown budget — the answer is not an abort but a *documented* step down a
// ladder of cheaper approximations, each gated by the same acceptance test
// (fem/field_validation.h):
//
//   rung 0  kFullSolve              the configured GMRES+preconditioner solve
//   rung 1  kRelaxedSolve           restarted GMRES, relaxed rtol, small
//                                   iteration budget; accepts the best-so-far
//                                   iterate when it improved the residual
//   rung 2  kBaselineInterpolation  IDW interpolation of the prescribed
//                                   surface displacements (no mechanics)
//   rung 3  kLastGood               the previous scan's validated field
//
// The DegradationReport records every attempt with its typed Status, so the
// Fig. 6-style timeline can show *why* a scan degraded, not just that it did.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "base/deadline.h"
#include "base/status.h"
#include "fem/baseline_interpolation.h"
#include "fem/deformation_solver.h"
#include "fem/field_validation.h"

namespace neuro::fem {

enum class DegradationRung : std::uint8_t {
  kFullSolve,
  kRelaxedSolve,
  kBaselineInterpolation,
  kLastGood,
};

/// Short stable name, e.g. "baseline_interpolation".
const char* degradation_rung_name(DegradationRung rung);

struct DegradationOptions {
  /// Rung 1 solver overrides: relaxed target and a small iteration budget.
  double relaxed_rtol = 1e-3;
  int relaxed_max_iterations = 200;
  /// Fractions of the stage budget allotted to rungs 0 and 1 (the remainder
  /// is headroom for the cheap rungs and the validation passes).
  double full_solve_fraction = 0.6;
  double relaxed_solve_fraction = 0.25;
  /// Acceptance gate applied to every rung's candidate field.
  FieldValidationOptions validation;
  /// Rung 2 on/off (benches comparing pure solver robustness turn it off).
  bool allow_baseline = true;
  /// Rung 3: the last validated field, one Vec3 per mesh node (typically the
  /// previous scan's result checkpointed by core::SurgerySession). Null when
  /// no such field exists; sizes other than num_nodes are ignored likewise.
  const std::vector<Vec3>* last_good = nullptr;
};

/// One ladder attempt and how it ended.
struct DegradationAttempt {
  DegradationRung rung = DegradationRung::kFullSolve;
  base::Status status;  ///< kOk when this rung's field was accepted
  double seconds = 0.0;
};

struct DegradationReport {
  bool degraded = false;  ///< false: rung 0 converged and validated
  DegradationRung rung = DegradationRung::kFullSolve;  ///< accepted rung
  base::Status trigger;   ///< what pushed the ladder off rung 0
  std::vector<DegradationAttempt> attempts;
  FieldValidationReport validation;  ///< report of the accepted field
};

/// The ladder's product: the deformation result of whichever rung was
/// accepted, plus the report of how it got there. Rungs 2 and 3 synthesize a
/// DeformationResult whose stats show the triggering solve (if any ran).
struct FallbackDeformationResult {
  DeformationResult deformation;
  DegradationReport report;
};

/// Runs the ladder until a rung's field passes validation or the ladder is
/// exhausted. Returns an error Outcome only when *every* rung failed; the
/// pipeline turns that into a hard stage failure. Invariant-corruption
/// exceptions (plain CheckError) are not caught — they are bugs, not faults.
[[nodiscard]] base::Outcome<FallbackDeformationResult>
solve_deformation_with_fallback(
    const mesh::TetMesh& mesh, const MaterialMap& materials,
    const std::vector<std::pair<mesh::NodeId, Vec3>>& prescribed,
    const DeformationSolveOptions& options, const DegradationOptions& degrade,
    const base::DeadlineBudget& budget);

}  // namespace neuro::fem

// The node → degree-of-freedom expansion, as explicit typed conversions.
//
// Every mesh node carries three displacement dofs (x, y, z); the assembled
// system the paper solves (77,511 equations for 25,837 nodes) is indexed by
// dof. The expansion used to be bare `3 * node + axis` arithmetic scattered
// across assembly, boundary conditions and result extraction — exactly the
// arithmetic a node/dof mix-up hides in. DofId is its own strong type and
// these functions are the only sanctioned conversions:
//
//   dof_of(n, axis)   node + axis → dof        (the 3× expansion)
//   node_of(d)        dof → its node
//   axis_of(d)        dof → its axis (0..2)
//   row_of(d)         dof → solver GlobalRow   (the FEM/solver bridge)
//   dof_of_row(r)     solver GlobalRow → dof
//
// A dof and a solver row are the same *number* but different *roles*: rows
// exist for any distributed system, dofs only for the FEM's node×axis
// structure. Keeping the types separate means the solver layer cannot be
// handed a node id (or vice versa) without going through these functions.
#pragma once

#include "base/strong_id.h"
#include "mesh/tet_mesh.h"
#include "solver/dist_vector.h"

namespace neuro::fem {

/// A scalar degree of freedom: one displacement component of one mesh node.
using DofId = base::StrongId<struct DofIdTag>;

inline constexpr int kDofsPerNode = 3;

/// The dof of node `n`'s displacement component `axis` (0=x, 1=y, 2=z).
[[nodiscard]] constexpr DofId dof_of(mesh::NodeId n, int axis) {
  return DofId{kDofsPerNode * n.value() + axis};
}

/// The node a dof belongs to.
[[nodiscard]] constexpr mesh::NodeId node_of(DofId d) {
  return mesh::NodeId{d.value() / kDofsPerNode};
}

/// The displacement axis (0..2) of a dof.
[[nodiscard]] constexpr int axis_of(DofId d) { return d.value() % kDofsPerNode; }

/// The global system row carrying a dof's equation.
[[nodiscard]] constexpr solver::GlobalRow row_of(DofId d) {
  return solver::GlobalRow{d.value()};
}

/// The dof whose equation a global row carries.
[[nodiscard]] constexpr DofId dof_of_row(solver::GlobalRow r) {
  return DofId{r.value()};
}

/// The system rows of all dofs of the node range [first, second) — how a node
/// partition becomes the solver's row-block distribution.
[[nodiscard]] constexpr solver::RowRange row_range_of(base::IdRange<mesh::NodeId> nodes) {
  return {row_of(dof_of(nodes.first, 0)), row_of(dof_of(nodes.second, 0))};
}

}  // namespace neuro::fem

#include "fem/dynamics.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "fem/assembly.h"
#include "fem/boundary.h"
#include "mesh/partition.h"
#include "par/communicator.h"

namespace neuro::fem {

namespace {

/// Serial assembled stiffness (all rows on one "rank") + optional body force.
LocalSystem assemble_serial(const mesh::TetMesh& mesh, const MaterialMap& materials,
                            const Vec3& body_force) {
  const MeshTopology topo = MeshTopology::build(mesh);
  const mesh::Partition part = mesh::partition_node_balanced(mesh.num_nodes(), 1);
  const solver::RowRange unit{solver::GlobalRow{0}, solver::GlobalRow{1}};
  LocalSystem system{solver::DistCsrMatrix(1, unit, {0, 0}, {}, {}),
                     solver::DistVector(1, unit)};
  par::run_spmd(1, [&](par::Communicator& comm) {
    system = assemble_elasticity(mesh, topo, materials, part, body_force, comm);
  });
  return system;
}

/// y = K x over all dofs (serial CSR product on the raw structure).
void stiffness_apply(const solver::DistCsrMatrix& K, const std::vector<double>& x,
                     std::vector<double>& y) {
  const auto& row_ptr = K.row_ptr();
  const auto& cols = K.global_cols();
  const auto& values = K.values();
  const int n = K.local_rows();
  y.assign(static_cast<std::size_t>(n), 0.0);
  for (int r = 0; r < n; ++r) {
    double acc = 0.0;
    for (int p = row_ptr[static_cast<std::size_t>(r)];
         p < row_ptr[static_cast<std::size_t>(r) + 1]; ++p) {
      acc += values[static_cast<std::size_t>(p)] *
             x[static_cast<std::size_t>(cols[static_cast<std::size_t>(p)])];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
}

}  // namespace

std::vector<double> lumped_masses(const mesh::TetMesh& mesh, double density) {
  NEURO_REQUIRE(density > 0.0, "lumped_masses: density must be positive");
  std::vector<double> mass(static_cast<std::size_t>(mesh.num_nodes()), 0.0);
  for (const mesh::TetId t : mesh.tet_ids()) {
    const double m = density * tet_volume(mesh, t) / 4.0;
    for (const mesh::NodeId n : mesh.tets[t]) {
      mass[n.index()] += m;
    }
  }
  for (const double m : mass) {
    NEURO_CHECK_MSG(m > 0.0, "lumped_masses: isolated node with zero mass");
  }
  return mass;
}

double max_generalized_eigenvalue(const mesh::TetMesh& mesh,
                                  const MaterialMap& materials, double density,
                                  int iterations) {
  NEURO_REQUIRE(iterations > 0, "max_generalized_eigenvalue: iterations > 0");
  const LocalSystem system = assemble_serial(mesh, materials, {});
  const auto mass = lumped_masses(mesh, density);
  const int n = 3 * mesh.num_nodes();

  // Power iteration on M⁻¹ K with a deterministic start vector.
  std::vector<double> x(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] = 1.0 + 0.37 * ((i * 2654435761u) % 97) / 97.0;
  }
  std::vector<double> y;
  double lambda = 0.0;
  for (int it = 0; it < iterations; ++it) {
    stiffness_apply(system.A, x, y);
    for (int i = 0; i < n; ++i) {
      y[static_cast<std::size_t>(i)] /= mass[static_cast<std::size_t>(i / 3)];
    }
    double norm2_y = 0.0, xy = 0.0, norm2_x = 0.0;
    for (int i = 0; i < n; ++i) {
      norm2_y += y[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(i)];
      xy += x[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(i)];
      norm2_x += x[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(i)];
    }
    lambda = xy / norm2_x;  // Rayleigh quotient
    const double inv = 1.0 / std::sqrt(norm2_y);
    for (auto& v : y) v *= inv;
    x.swap(y);
  }
  NEURO_CHECK_MSG(lambda > 0.0, "max_generalized_eigenvalue: non-positive estimate");
  return lambda;
}

DynamicsResult integrate_dynamics(
    const mesh::TetMesh& mesh, const MaterialMap& materials,
    const std::vector<std::pair<mesh::NodeId, Vec3>>& prescribed,
    const DynamicsOptions& options) {
  NEURO_REQUIRE(options.steps > 0, "integrate_dynamics: steps > 0");
  NEURO_REQUIRE(options.damping_alpha >= 0.0, "integrate_dynamics: damping >= 0");

  const LocalSystem system = assemble_serial(mesh, materials, options.body_force);
  const auto mass = lumped_masses(mesh, options.density);
  const int num_nodes = mesh.num_nodes();
  const int n = 3 * num_nodes;

  // Prescribed dofs and their target values.
  std::vector<char> fixed(static_cast<std::size_t>(n), 0);
  std::vector<double> target(static_cast<std::size_t>(n), 0.0);
  for (const auto& [node, u] : prescribed) {
    for (int c = 0; c < 3; ++c) {
      fixed[dof_of(node, c).index()] = 1;
      target[dof_of(node, c).index()] = u[static_cast<std::size_t>(c)];
    }
  }

  DynamicsResult result;
  result.stable_dt_estimate =
      2.0 / std::sqrt(max_generalized_eigenvalue(mesh, materials, options.density));
  result.dt_used = options.dt > 0.0 ? options.dt : 0.8 * result.stable_dt_estimate;
  NEURO_REQUIRE(result.dt_used > 0.0, "integrate_dynamics: non-positive dt");

  std::vector<double> u(static_cast<std::size_t>(n), 0.0);
  std::vector<double> v(static_cast<std::size_t>(n), 0.0);
  std::vector<double> ku;
  const auto& f_ext = system.b.local();
  const double dt = result.dt_used;

  for (int step = 0; step < options.steps; ++step) {
    // Boundary ramp: move prescribed dofs toward their targets.
    const double ramp =
        options.bc_ramp_steps > 0
            ? std::min(1.0, static_cast<double>(step + 1) / options.bc_ramp_steps)
            : 1.0;
    for (int i = 0; i < n; ++i) {
      if (fixed[static_cast<std::size_t>(i)]) {
        u[static_cast<std::size_t>(i)] = ramp * target[static_cast<std::size_t>(i)];
        v[static_cast<std::size_t>(i)] = 0.0;
      }
    }

    stiffness_apply(system.A, u, ku);
    // Semi-implicit Euler: v += dt a;  u += dt v.
    for (int i = 0; i < n; ++i) {
      if (fixed[static_cast<std::size_t>(i)]) continue;
      const double m = mass[static_cast<std::size_t>(i / 3)];
      const double a = (f_ext[static_cast<std::size_t>(i)] -
                        ku[static_cast<std::size_t>(i)]) /
                           m -
                       options.damping_alpha * v[static_cast<std::size_t>(i)];
      v[static_cast<std::size_t>(i)] += dt * a;
      u[static_cast<std::size_t>(i)] += dt * v[static_cast<std::size_t>(i)];
    }
    ++result.steps_taken;

    if (step % std::max(1, options.energy_stride) == 0) {
      double kinetic = 0.0, strain = 0.0;
      stiffness_apply(system.A, u, ku);
      for (int i = 0; i < n; ++i) {
        kinetic += 0.5 * mass[static_cast<std::size_t>(i / 3)] *
                   v[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i)];
        strain += 0.5 * u[static_cast<std::size_t>(i)] * ku[static_cast<std::size_t>(i)];
      }
      result.kinetic_energy.push_back(kinetic);
      result.strain_energy.push_back(strain);
    }
  }

  result.displacements.resize(static_cast<std::size_t>(num_nodes));
  result.velocities.resize(static_cast<std::size_t>(num_nodes));
  for (int node = 0; node < num_nodes; ++node) {
    for (int c = 0; c < 3; ++c) {
      result.displacements[static_cast<std::size_t>(node)][static_cast<std::size_t>(c)] =
          u[static_cast<std::size_t>(3 * node + c)];
      result.velocities[static_cast<std::size_t>(node)][static_cast<std::size_t>(c)] =
          v[static_cast<std::size_t>(3 * node + c)];
    }
  }
  return result;
}

}  // namespace neuro::fem

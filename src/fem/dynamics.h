// Explicit dynamic FEM: M ü + C u̇ + K u = f.
//
// The paper solves the static problem; its research line's follow-up work
// (and intraoperative practice between scan updates) integrates the same
// mesh dynamically — to animate the transition between configurations and to
// solve the static problem by dynamic relaxation. This module provides that
// extension: lumped (diagonal) mass, mass-proportional Rayleigh damping, and
// a central-difference (semi-implicit Euler) integrator whose stable step is
// estimated automatically from the largest generalized eigenvalue of
// (M⁻¹K) by power iteration.
//
// With damping, the trajectory converges to exactly the static
// solve_deformation solution — asserted by the tests.
#pragma once

#include <utility>
#include <vector>

#include "base/vec3.h"
#include "fem/material.h"
#include "mesh/tet_mesh.h"

namespace neuro::fem {

struct DynamicsOptions {
  double density = 1.0e-6;       ///< mass density (kg/mm³ scale for mm units)
  double damping_alpha = 0.0;    ///< mass-proportional damping C = α M
  double dt = 0.0;               ///< time step; 0 = auto (0.8 × stability limit)
  int steps = 1000;
  int energy_stride = 10;        ///< record energies every n steps
  /// Ramp the prescribed displacements linearly over this many steps
  /// (0 = apply instantaneously — excites more transient).
  int bc_ramp_steps = 0;
  Vec3 body_force{};
};

struct DynamicsResult {
  std::vector<Vec3> displacements;  ///< final u per node
  std::vector<Vec3> velocities;     ///< final u̇ per node
  double dt_used = 0.0;
  double stable_dt_estimate = 0.0;
  int steps_taken = 0;
  std::vector<double> kinetic_energy;  ///< sampled every energy_stride steps
  std::vector<double> strain_energy;
};

/// Integrates the damped equations of motion with the given prescribed
/// (Dirichlet) displacements; free dofs start at rest. Runs serially.
[[nodiscard]] DynamicsResult integrate_dynamics(
    const mesh::TetMesh& mesh, const MaterialMap& materials,
    const std::vector<std::pair<mesh::NodeId, Vec3>>& prescribed,
    const DynamicsOptions& options);

/// Largest generalized eigenvalue λ of K x = λ M x (power iteration on
/// M⁻¹K); the explicit stability limit is dt_crit = 2/√λ.
[[nodiscard]] double max_generalized_eigenvalue(const mesh::TetMesh& mesh,
                                  const MaterialMap& materials, double density,
                                  int iterations = 30);

/// Lumped nodal masses: each tet's mass split equally over its 4 nodes.
[[nodiscard]] std::vector<double> lumped_masses(const mesh::TetMesh& mesh, double density);

}  // namespace neuro::fem

#include "fem/element.h"

#include "base/check.h"
#include "base/mat3.h"

namespace neuro::fem {

TetElement TetElement::from_vertices(const Vec3& p0, const Vec3& p1, const Vec3& p2,
                                     const Vec3& p3) {
  TetElement e;
  const Vec3 e1 = p1 - p0, e2 = p2 - p0, e3 = p3 - p0;
  e.volume = dot(e1, cross(e2, e3)) / 6.0;
  NEURO_CHECK_MSG(e.volume > 0.0,
                  "TetElement: non-positive volume " << e.volume
                                                     << " (bad orientation?)");
  // Barycentric gradients: with M = [e1 e2 e3] (columns), λ_{1..3} satisfy
  // p - p0 = M λ, so ∇λ_i is row i of M⁻¹; ∇λ_0 = -(∇λ_1 + ∇λ_2 + ∇λ_3).
  Mat3 M;
  for (std::size_t r = 0; r < 3; ++r) {
    M(r, 0) = e1[r];
    M(r, 1) = e2[r];
    M(r, 2) = e3[r];
  }
  const Mat3 Minv = M.inverse();
  for (std::size_t i = 1; i <= 3; ++i) {
    e.grad_n[i] = {Minv(i - 1, 0), Minv(i - 1, 1), Minv(i - 1, 2)};
  }
  e.grad_n[0] = -(e.grad_n[1] + e.grad_n[2] + e.grad_n[3]);
  return e;
}

std::array<double, 144> TetElement::stiffness(
    const std::array<std::array<double, 6>, 6>& D) const {
  // B is 6x12; column block of node i:
  //   [ bx  0   0 ]
  //   [ 0   by  0 ]
  //   [ 0   0   bz]
  //   [ by  bx  0 ]
  //   [ 0   bz  by]
  //   [ bz  0   bx]   with (bx,by,bz) = grad_n[i].
  double B[6][12] = {};
  for (int i = 0; i < 4; ++i) {
    const Vec3& g = grad_n[static_cast<std::size_t>(i)];
    const int c = 3 * i;
    B[0][c + 0] = g.x;
    B[1][c + 1] = g.y;
    B[2][c + 2] = g.z;
    B[3][c + 0] = g.y;
    B[3][c + 1] = g.x;
    B[4][c + 1] = g.z;
    B[4][c + 2] = g.y;
    B[5][c + 0] = g.z;
    B[5][c + 2] = g.x;
  }

  // DB = D * B (6x12), then Ke = V * Bᵀ * DB (12x12).
  double DB[6][12] = {};
  for (int r = 0; r < 6; ++r) {
    for (int c = 0; c < 12; ++c) {
      double acc = 0.0;
      for (int k = 0; k < 6; ++k) {
        acc += D[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)] * B[k][c];
      }
      DB[r][c] = acc;
    }
  }
  std::array<double, 144> Ke{};
  for (int r = 0; r < 12; ++r) {
    for (int c = 0; c < 12; ++c) {
      double acc = 0.0;
      for (int k = 0; k < 6; ++k) {
        acc += B[k][r] * DB[k][c];
      }
      Ke[static_cast<std::size_t>(12 * r + c)] = volume * acc;
    }
  }
  return Ke;
}

std::array<double, 12> TetElement::body_force_load(const Vec3& f) const {
  std::array<double, 12> load{};
  const double w = volume / 4.0;
  for (int i = 0; i < 4; ++i) {
    load[static_cast<std::size_t>(3 * i + 0)] = w * f.x;
    load[static_cast<std::size_t>(3 * i + 1)] = w * f.y;
    load[static_cast<std::size_t>(3 * i + 2)] = w * f.z;
  }
  return load;
}

}  // namespace neuro::fem

// Linear tetrahedral element.
//
// The paper interpolates the displacement field with linear shape functions
// over tetrahedra (its Eq. 2–3): N_i = (a_i + b_i x + c_i y + d_i z) / 6V,
// with the coefficient formulas of Zienkiewicz & Taylor pp. 91–92. For linear
// tets the strain-displacement matrix B is constant over the element, so the
// element stiffness is the single product Ke = V · Bᵀ D B (12×12).
#pragma once

#include <array>

#include "base/vec3.h"
#include "fem/material.h"

namespace neuro::fem {

/// Geometry-derived element operators for one tetrahedron.
struct TetElement {
  double volume = 0.0;
  /// Shape-function gradients ∇N_i (constant over the element); row i holds
  /// (b_i, c_i, d_i)/6V in the Zienkiewicz notation.
  std::array<Vec3, 4> grad_n{};

  /// Builds the element from vertex positions (positively oriented tet).
  [[nodiscard]] static TetElement from_vertices(const Vec3& p0, const Vec3& p1, const Vec3& p2,
                                  const Vec3& p3);

  /// Element stiffness Ke = V Bᵀ D B, 12×12 row-major, dof order
  /// (node0.x, node0.y, node0.z, node1.x, …).
  [[nodiscard]] std::array<double, 144> stiffness(
      const std::array<std::array<double, 6>, 6>& D) const;

  /// Consistent nodal load for a constant body force f (V/4 to each node).
  [[nodiscard]] std::array<double, 12> body_force_load(const Vec3& f) const;

  /// Approximate flop cost of one stiffness() call — used by the per-rank
  /// work accounting that drives the assembly scaling model.
  static constexpr double kStiffnessFlops = 12.0 * 6 * 6 * 2 + 12.0 * 12 * 6 * 2 + 200;
};

}  // namespace neuro::fem

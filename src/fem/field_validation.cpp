#include "fem/field_validation.h"

#include <cmath>
#include <sstream>

#include "base/check.h"

namespace neuro::fem {

FieldValidationReport validate_displacement_field(
    const mesh::TetMesh& mesh, const std::vector<Vec3>& displacements,
    const FieldValidationOptions& options) {
  NEURO_REQUIRE(static_cast<int>(displacements.size()) == mesh.num_nodes(),
                "validate_displacement_field: " << displacements.size()
                                                << " displacements for "
                                                << mesh.num_nodes() << " nodes");
  FieldValidationReport report;
  const Aabb box = mesh::bounds(mesh);
  report.mesh_diagonal = norm(box.hi - box.lo);

  for (const Vec3& u : displacements) {
    const double mag = norm(u);
    if (!std::isfinite(mag)) {
      report.finite = false;
      report.status = {base::StatusCode::kNumericalInvalid,
                       "displacement field contains NaN/Inf components"};
      return report;
    }
    if (mag > report.max_displacement) report.max_displacement = mag;
  }
  if (report.max_displacement >
      options.max_displacement_factor * report.mesh_diagonal) {
    std::ostringstream oss;
    oss << "max displacement " << report.max_displacement << " exceeds "
        << options.max_displacement_factor << " x mesh diagonal ("
        << report.mesh_diagonal << ")";
    report.status = {base::StatusCode::kValidationFailed, oss.str()};
    return report;
  }

  for (const mesh::TetId t : mesh.tet_ids()) {
    const auto& tet = mesh.tets[t];
    const double rest = mesh::tet_volume(mesh, t);
    const double deformed = mesh::tet_volume(
        mesh.nodes[tet[0]] + displacements[tet[0].index()],
        mesh.nodes[tet[1]] + displacements[tet[1].index()],
        mesh.nodes[tet[2]] + displacements[tet[2].index()],
        mesh.nodes[tet[3]] + displacements[tet[3].index()]);
    if (deformed <= options.min_volume_ratio * rest) ++report.inverted_tets;
  }
  if (report.inverted_tets > options.max_inverted_tets) {
    std::ostringstream oss;
    oss << report.inverted_tets << " tet(s) inverted by the field (allowed: "
        << options.max_inverted_tets << ")";
    report.status = {base::StatusCode::kValidationFailed, oss.str()};
  }
  return report;
}

}  // namespace neuro::fem

// Acceptance gate for candidate deformation fields.
//
// Every rung of the degradation ladder (fem/degradation.h) must pass this
// gate before its field reaches the operating-room display: a degraded answer
// is acceptable, a wrong one is not. The gate is deliberately cheap — one
// pass over the nodes, one pass over the tets — and purely local (no
// communication), so it can run after any solve, including a partial one.
#pragma once

#include <vector>

#include "base/status.h"
#include "base/vec3.h"
#include "mesh/tet_mesh.h"

namespace neuro::fem {

struct FieldValidationOptions {
  /// Maximum admissible |u| as a fraction of the mesh bounding-box diagonal.
  /// Brain shift is centimetres on a decimetre-scale mesh; a displacement
  /// comparable to the whole head is a solver artifact, not anatomy.
  double max_displacement_factor = 0.5;
  /// Tets whose deformed signed volume falls to or below this fraction of
  /// their rest volume count as inverted (0 = only true inversions).
  double min_volume_ratio = 0.0;
  /// How many inverted tets the field may contain and still pass. The meshes
  /// here carry no slivers, so the default is strict.
  int max_inverted_tets = 0;
};

struct FieldValidationReport {
  bool finite = true;          ///< no NaN/Inf component anywhere
  double max_displacement = 0.0;
  double mesh_diagonal = 0.0;
  int inverted_tets = 0;
  base::Status status;         ///< kOk, kNumericalInvalid, or kValidationFailed

  [[nodiscard]] bool ok() const { return status.ok(); }
};

/// Validates one displacement field (one Vec3 per mesh node) against the
/// mesh geometry. Never throws on bad data — bad data is exactly what it is
/// for; the verdict comes back as the report's status.
[[nodiscard]] FieldValidationReport validate_displacement_field(
    const mesh::TetMesh& mesh, const std::vector<Vec3>& displacements,
    const FieldValidationOptions& options = {});

}  // namespace neuro::fem

#include "fem/loads.h"

#include <algorithm>
#include <functional>
#include <map>

#include "base/check.h"

namespace neuro::fem {

namespace {

std::vector<std::pair<mesh::NodeId, Vec3>> accumulate_per_triangle(
    const mesh::TriSurface& patch,
    const std::function<Vec3(const Vec3& scaled_normal)>& force_of) {
  NEURO_REQUIRE(!patch.mesh_nodes.empty(),
                "surface loads: patch carries no mesh-node bookkeeping");
  std::map<mesh::NodeId, Vec3> per_node;
  for (const auto& tri : patch.triangles) {
    const Vec3& a = patch.vertices[tri[0]];
    const Vec3& b = patch.vertices[tri[1]];
    const Vec3& c = patch.vertices[tri[2]];
    // |cross|/2 = area; direction = outward normal for outward-oriented tris.
    const Vec3 scaled_normal = cross(b - a, c - a) * 0.5;
    const Vec3 nodal = force_of(scaled_normal) / 3.0;
    for (const mesh::VertId v : tri) {
      per_node[patch.mesh_nodes[v]] += nodal;
    }
  }
  std::vector<std::pair<mesh::NodeId, Vec3>> loads;
  loads.reserve(per_node.size());
  for (const auto& [node, f] : per_node) loads.emplace_back(node, f);
  return loads;
}

}  // namespace

std::vector<std::pair<mesh::NodeId, Vec3>> traction_loads(
    const mesh::TriSurface& patch, const Vec3& traction) {
  return accumulate_per_triangle(patch, [&](const Vec3& scaled_normal) {
    return traction * norm(scaled_normal);  // area × traction
  });
}

std::vector<std::pair<mesh::NodeId, Vec3>> pressure_loads(
    const mesh::TriSurface& patch, double pressure) {
  return accumulate_per_triangle(patch, [&](const Vec3& scaled_normal) {
    return -pressure * scaled_normal;  // area × (−p n̂)
  });
}

std::vector<std::pair<mesh::NodeId, Vec3>> merge_loads(
    std::vector<std::pair<mesh::NodeId, Vec3>> loads) {
  std::map<mesh::NodeId, Vec3> per_node;
  for (const auto& [node, f] : loads) per_node[node] += f;
  std::vector<std::pair<mesh::NodeId, Vec3>> merged;
  merged.reserve(per_node.size());
  for (const auto& [node, f] : per_node) merged.emplace_back(node, f);
  return merged;
}

}  // namespace neuro::fem

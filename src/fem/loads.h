// Surface (Neumann) loads.
//
// The paper's energy functional (its Eq. 1) admits "forces per unit volume,
// surface forces or forces concentrated at the nodes of the mesh". The
// Dirichlet-driven registration uses none, but the predictive-simulation
// path (gravity sag, CSF pressure on the exposed cortex) needs consistent
// nodal loads from surface tractions. For linear triangles the consistent
// load of a constant traction t over a face of area A is A·t/3 per vertex.
#pragma once

#include <utility>
#include <vector>

#include "base/vec3.h"
#include "mesh/tri_surface.h"

namespace neuro::fem {

/// Consistent nodal loads for a constant traction vector `t` (force per unit
/// area) applied to every triangle of `patch`. The surface must carry
/// mesh-node bookkeeping; loads are returned per mesh node (accumulated).
[[nodiscard]] std::vector<std::pair<mesh::NodeId, Vec3>> traction_loads(
    const mesh::TriSurface& patch, const Vec3& traction);

/// Consistent nodal loads for a uniform scalar pressure acting along the
/// (outward) surface normal: positive pressure pushes inward (−n direction),
/// as CSF or atmospheric pressure on an exposed cortex does.
[[nodiscard]] std::vector<std::pair<mesh::NodeId, Vec3>> pressure_loads(
    const mesh::TriSurface& patch, double pressure);

/// Merges duplicate node entries by summing their loads.
[[nodiscard]] std::vector<std::pair<mesh::NodeId, Vec3>> merge_loads(
    std::vector<std::pair<mesh::NodeId, Vec3>> loads);

}  // namespace neuro::fem

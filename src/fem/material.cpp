#include "fem/material.h"

#include "phantom/brain_phantom.h"

namespace neuro::fem {

std::array<std::array<double, 6>, 6> elasticity_matrix(const Material& m) {
  NEURO_REQUIRE(m.youngs_modulus > 0.0, "elasticity_matrix: E must be positive");
  NEURO_REQUIRE(m.poisson_ratio > -1.0 && m.poisson_ratio < 0.5,
                "elasticity_matrix: nu must lie in (-1, 0.5), got " << m.poisson_ratio);
  const double E = m.youngs_modulus;
  const double nu = m.poisson_ratio;
  const double f = E / ((1.0 + nu) * (1.0 - 2.0 * nu));
  const double a = f * (1.0 - nu);        // diagonal normal terms
  const double b = f * nu;                // off-diagonal normal coupling
  const double g = E / (2.0 * (1.0 + nu));  // shear modulus

  std::array<std::array<double, 6>, 6> D{};
  D[0] = {a, b, b, 0, 0, 0};
  D[1] = {b, a, b, 0, 0, 0};
  D[2] = {b, b, a, 0, 0, 0};
  D[3][3] = g;
  D[4][4] = g;
  D[5][5] = g;
  return D;
}

MaterialMap MaterialMap::homogeneous_brain() {
  // E = 3 kPa, nu = 0.45: a common soft-tissue setting; with pure Dirichlet
  // surface driving, only the *relative* stiffness field shapes the solution.
  return MaterialMap(Material{3000.0, 0.45});
}

MaterialMap MaterialMap::heterogeneous_brain() {
  using phantom::Tissue;
  MaterialMap map(Material{3000.0, 0.45});
  // Stiff membrane: orders of magnitude stiffer than parenchyma.
  map.set(phantom::label(Tissue::kFalx), Material{60000.0, 0.45});
  // CSF-filled ventricles: much more compliant and compressible.
  map.set(phantom::label(Tissue::kVentricle), Material{500.0, 0.10});
  // Tumor slightly stiffer than brain.
  map.set(phantom::label(Tissue::kTumor), Material{6000.0, 0.45});
  return map;
}

}  // namespace neuro::fem

// Linear-elastic material model.
//
// The paper assumes "a linear elastic continuum with no initial stresses or
// strains" (its Eq. 1) with stress σ = D ε, D the elasticity matrix of the
// material (Zienkiewicz & Taylor). It treats the brain as homogeneous — and
// attributes its one observed misregistration (the contralateral ventricles)
// to exactly that simplification — so the mesh carries per-tet tissue labels
// and this module maps labels to material parameters, enabling both the
// paper's homogeneous configuration and the heterogeneous falx/ventricle
// model its discussion proposes as future work.
#pragma once

#include <array>
#include <cstdint>
#include <map>

#include "base/check.h"

namespace neuro::fem {

struct Material {
  double youngs_modulus = 3000.0;  ///< Pa — soft-tissue scale
  double poisson_ratio = 0.45;     ///< nearly incompressible
};

/// 6x6 isotropic elasticity matrix D relating engineering strain
/// [εxx εyy εzz γxy γyz γzx] to stress.
[[nodiscard]] std::array<std::array<double, 6>, 6> elasticity_matrix(const Material& m);

/// Label → material table with a default for unlisted labels.
class MaterialMap {
 public:
  explicit MaterialMap(Material default_material = {}) : default_(default_material) {}

  void set(std::uint8_t label, Material m) { table_[label] = m; }

  [[nodiscard]] const Material& for_label(std::uint8_t label) const {
    auto it = table_.find(label);
    return it == table_.end() ? default_ : it->second;
  }

  /// The paper's configuration: every tissue shares one homogeneous material.
  [[nodiscard]] static MaterialMap homogeneous_brain();

  /// The future-work configuration: stiff falx, near-fluid ventricles.
  [[nodiscard]] static MaterialMap heterogeneous_brain();

 private:
  Material default_;
  std::map<std::uint8_t, Material> table_;
};

}  // namespace neuro::fem

#include "fem/matrix_free.h"

#include <algorithm>
#include <array>
#include <cstddef>
#include <span>

#include "base/check.h"
#include "fem/assembly.h"
#include "fem/dof.h"
#include "fem/element.h"
#include "solver/simd/block_kernels.h"

namespace neuro::fem {

namespace {

/// Every tet incident to an owned node, deduplicated — the same element set
/// (and order) the assembled backends traverse.
std::vector<mesh::TetId> collect_local_tets(const MeshTopology& topo,
                                            base::IdRange<mesh::NodeId> owned) {
  std::vector<mesh::TetId> local_tets;
  for (mesh::NodeId n = owned.first; n < owned.second; ++n) {
    local_tets.insert(local_tets.end(), topo.node_tets[n].begin(),
                      topo.node_tets[n].end());
  }
  std::sort(local_tets.begin(), local_tets.end());
  local_tets.erase(std::unique(local_tets.begin(), local_tets.end()),
                   local_tets.end());
  return local_tets;
}

/// Appends one 3x3 block in transposed (column-contiguous) layout.
void push_transposed(std::vector<double>& dst, const double* a) {
  for (int c = 0; c < 3; ++c) {
    for (int r = 0; r < 3; ++r) {
      dst.push_back(a[3 * r + c]);
    }
  }
}

/// Vector-kernel padding contract (block_kernels.h): values arrays must
/// extend four doubles past the last block.
void pad_values(std::vector<double>& v) { v.insert(v.end(), 4, 0.0); }

constexpr int kHaloTag = 703;  ///< distinct from BSR's 702 / Schwarz's 911

}  // namespace

const char* matrix_free_storage_name(MatrixFreeStorage storage) {
  switch (storage) {
    case MatrixFreeStorage::kNodePairBlocks:
      return "node-pair-blocks";
    case MatrixFreeStorage::kElementBlocks:
      return "element-blocks";
    case MatrixFreeStorage::kOnTheFly:
      return "on-the-fly";
  }
  NEURO_REQUIRE(false, "matrix_free_storage_name: unknown storage policy");
  return "";
}

LocalMatrixFreeSystem assemble_elasticity_matrix_free(
    const mesh::TetMesh& mesh, const MeshTopology& topo,
    const MaterialMap& materials, const mesh::Partition& partition,
    const Vec3& body_force, par::Communicator& comm, MatrixFreeStorage storage,
    solver::simd::DispatchTarget dispatch) {
  MatrixFreeOperator A;
  A.storage_ = storage;
  A.target_ = solver::simd::resolve_dispatch_target(dispatch);

  const base::IdRange<mesh::NodeId> owned = partition.ranges[comm.rank_id()];
  A.node_begin_ = owned.first.value();
  A.owned_nodes_ = owned.size();
  A.global_size_ = kDofsPerNode * mesh.num_nodes();
  A.range_ = row_range_of(owned);

  if (storage == MatrixFreeStorage::kNodePairBlocks) {
    // The node-pair policy wraps the natively assembled block matrix: values
    // bit-identical to MatrixBackend::kBsr, and the scalar-dispatch apply
    // delegates to it outright.
    LocalBsrSystem sys = assemble_elasticity_bsr(mesh, topo, materials,
                                                 partition, body_force, comm);
    A.inner_.emplace(std::move(sys.A));
    return LocalMatrixFreeSystem{std::move(A), std::move(sys.b)};
  }

  // --- Element storage: per-tet stiffness, no node-pair matrix at all. ---
  const std::vector<mesh::TetId> local_tets = collect_local_tets(topo, owned);
  const std::size_t ntets = local_tets.size();

  // Ghost nodes: tet corners outside the owned range, sorted & unique.
  for (const mesh::TetId t : local_tets) {
    for (const mesh::NodeId n : mesh.tets[t]) {
      if (!owned.contains(n)) A.ghost_ids_.push_back(n.value());
    }
  }
  std::sort(A.ghost_ids_.begin(), A.ghost_ids_.end());
  A.ghost_ids_.erase(std::unique(A.ghost_ids_.begin(), A.ghost_ids_.end()),
                     A.ghost_ids_.end());

  // Node slots per tet corner, and the interior/boundary element split that
  // lets the apply overlap its halo exchange.
  A.tet_slots_.resize(4 * ntets);
  for (std::size_t ti = 0; ti < ntets; ++ti) {
    const auto& tet = mesh.tets[local_tets[ti]];
    bool all_owned = true;
    for (std::size_t a = 0; a < 4; ++a) {
      const int slot = A.slot_of_node(tet[a].value());
      NEURO_REQUIRE(slot >= 0,
                    "assemble_elasticity_matrix_free: tet corner has no slot");
      A.tet_slots_[4 * ti + a] = static_cast<std::int32_t>(slot);
      all_owned = all_owned && slot < A.owned_nodes_;
    }
    (all_owned ? A.interior_tets_ : A.boundary_tets_)
        .push_back(static_cast<std::int32_t>(ti));
  }

  // Owned node → incident local tets (value_at / diagonal extraction).
  A.node_tet_ptr_.assign(static_cast<std::size_t>(A.owned_nodes_) + 1, 0);
  for (mesh::NodeId n = owned.first; n < owned.second; ++n) {
    A.node_tet_ptr_[static_cast<std::size_t>(n - owned.first) + 1] =
        A.node_tet_ptr_[static_cast<std::size_t>(n - owned.first)] +
        static_cast<std::int32_t>(topo.node_tets[n].size());
  }
  A.node_tet_ids_.reserve(static_cast<std::size_t>(A.node_tet_ptr_.back()));
  for (mesh::NodeId n = owned.first; n < owned.second; ++n) {
    for (const mesh::TetId t : topo.node_tets[n]) {
      const auto it = std::lower_bound(local_tets.begin(), local_tets.end(), t);
      A.node_tet_ids_.push_back(
          static_cast<std::int32_t>(it - local_tets.begin()));
    }
  }

  // Stiffness storage + right-hand side. The body-force accumulation order is
  // the assembled backends' (ascending tet, corner order within the tet), so
  // the rhs matches them bit for bit.
  solver::DistVector b(A.global_size_, A.range_, 0.0);
  const bool has_body_force = norm2(body_force) > 0.0;
  std::array<std::int32_t, 256> dmat_of_label{};
  dmat_of_label.fill(-1);
  if (storage == MatrixFreeStorage::kElementBlocks) {
    A.ke_.reserve(144 * ntets);
  } else {
    A.tet_vertices_.reserve(12 * ntets);
    A.tet_dmat_.reserve(ntets);
  }
  for (std::size_t ti = 0; ti < ntets; ++ti) {
    const mesh::TetId t = local_tets[ti];
    const auto& tet = mesh.tets[t];
    const TetElement elem = TetElement::from_vertices(
        mesh.nodes[tet[0]], mesh.nodes[tet[1]], mesh.nodes[tet[2]],
        mesh.nodes[tet[3]]);
    if (storage == MatrixFreeStorage::kElementBlocks) {
      const auto D = elasticity_matrix(materials.for_label(mesh.tet_labels[t]));
      const auto Ke = elem.stiffness(D);
      A.ke_.insert(A.ke_.end(), Ke.begin(), Ke.end());
    } else {
      for (std::size_t a = 0; a < 4; ++a) {
        const Vec3& p = mesh.nodes[tet[a]];
        A.tet_vertices_.push_back(p.x);
        A.tet_vertices_.push_back(p.y);
        A.tet_vertices_.push_back(p.z);
      }
      const std::uint8_t label = mesh.tet_labels[t];
      if (dmat_of_label[label] < 0) {
        dmat_of_label[label] = static_cast<std::int32_t>(A.dmats_.size());
        A.dmats_.push_back(elasticity_matrix(materials.for_label(label)));
      }
      A.tet_dmat_.push_back(dmat_of_label[label]);
    }
    if (has_body_force) {
      const auto load = elem.body_force_load(body_force);
      for (int a = 0; a < 4; ++a) {
        const mesh::NodeId n = tet[static_cast<std::size_t>(a)];
        if (!owned.contains(n)) continue;
        for (int ca = 0; ca < 3; ++ca) {
          b[row_of(dof_of(n, ca))] += load[static_cast<std::size_t>(3 * a + ca)];
        }
      }
    }
  }

  // Setup accounting: kElementBlocks pays the stiffness evaluation and the Ke
  // store here; kOnTheFly defers the stiffness to every apply.
  if (storage == MatrixFreeStorage::kElementBlocks) {
    comm.work().add_flops(static_cast<double>(ntets) *
                          TetElement::kStiffnessFlops);
    comm.work().add_mem_bytes(static_cast<double>(ntets) * 1152.0);
  } else {
    comm.work().add_mem_bytes(static_cast<double>(ntets) * (96.0 + 4.0));
  }

  return LocalMatrixFreeSystem{std::move(A), std::move(b)};
}

int MatrixFreeOperator::node_of_slot(int slot) const {
  return slot < owned_nodes_
             ? node_begin_ + slot
             : ghost_ids_[static_cast<std::size_t>(slot - owned_nodes_)];
}

int MatrixFreeOperator::slot_of_node(int node) const {
  if (node >= node_begin_ && node < node_begin_ + owned_nodes_) {
    return node - node_begin_;
  }
  const auto it = std::lower_bound(ghost_ids_.begin(), ghost_ids_.end(), node);
  if (it == ghost_ids_.end() || *it != node) return -1;
  return owned_nodes_ + static_cast<int>(it - ghost_ids_.begin());
}

const double* MatrixFreeOperator::tet_ke(std::size_t ti,
                                         std::array<double, 144>& scratch) const {
  if (storage_ == MatrixFreeStorage::kElementBlocks) {
    return &ke_[144 * ti];
  }
  const double* v = &tet_vertices_[12 * ti];
  const TetElement elem = TetElement::from_vertices(
      Vec3{v[0], v[1], v[2]}, Vec3{v[3], v[4], v[5]}, Vec3{v[6], v[7], v[8]},
      Vec3{v[9], v[10], v[11]});
  scratch = elem.stiffness(dmats_[static_cast<std::size_t>(tet_dmat_[ti])]);
  return scratch.data();
}

void MatrixFreeOperator::apply_dirichlet(const DirichletSet& bc,
                                         solver::DistVector& b,
                                         par::Communicator& comm) {
  NEURO_REQUIRE(!finalized_, "MatrixFreeOperator::apply_dirichlet after finalize");
  if (storage_ == MatrixFreeStorage::kNodePairBlocks) {
    fem::apply_dirichlet(*inner_, b, bc, comm);
    return;
  }

  // Element-level substitution: mark fixed slot dofs (masked out of the
  // apply's gather/scatter), move the fixed columns' contribution to the
  // right-hand side per element, then pin the fixed rows to their values.
  const std::size_t nslots =
      static_cast<std::size_t>(owned_nodes_) + ghost_ids_.size();
  fixed_mask_.assign(3 * nslots, 0);
  owned_fixed_rows_.clear();
  for (const DofId dof : bc.dofs()) {
    const int slot = slot_of_node(node_of(dof).value());
    if (slot < 0) continue;
    const int local = 3 * slot + axis_of(dof);
    fixed_mask_[static_cast<std::size_t>(local)] = 1;
    if (slot < owned_nodes_) owned_fixed_rows_.push_back(local);
  }

  const std::size_t ntets = tet_slots_.size() / 4;
  std::array<double, 144> scratch;
  for (std::size_t ti = 0; ti < ntets; ++ti) {
    const std::int32_t* s = &tet_slots_[4 * ti];
    bool any_fixed = false;
    for (int a = 0; a < 4 && !any_fixed; ++a) {
      for (int c = 0; c < 3 && !any_fixed; ++c) {
        any_fixed = fixed_mask_[static_cast<std::size_t>(3 * s[a] + c)] != 0;
      }
    }
    if (!any_fixed) continue;
    const double* ke = tet_ke(ti, scratch);
    for (int a = 0; a < 4; ++a) {
      if (s[a] >= owned_nodes_) continue;
      for (int ca = 0; ca < 3; ++ca) {
        const int row = 3 * s[a] + ca;
        if (fixed_mask_[static_cast<std::size_t>(row)]) continue;
        double acc = 0.0;
        for (int bn = 0; bn < 4; ++bn) {
          for (int cb = 0; cb < 3; ++cb) {
            if (!fixed_mask_[static_cast<std::size_t>(3 * s[bn] + cb)]) continue;
            const DofId fixed_dof =
                dof_of(mesh::NodeId{node_of_slot(s[bn])}, cb);
            acc += ke[static_cast<std::size_t>(12 * (3 * a + ca) +
                                               (3 * bn + cb))] *
                   bc.value_of(fixed_dof);
          }
        }
        b.local()[static_cast<std::size_t>(row)] -= acc;
      }
    }
  }
  for (const std::int32_t row : owned_fixed_rows_) {
    const solver::GlobalRow grow = range_.first + row;
    b[grow] = bc.value_of(dof_of_row(grow));
  }

  comm.work().add_mem_bytes(static_cast<double>(ntets) * 48.0);
  comm.work().add_flops(static_cast<double>(ntets) * 24.0);
}

void MatrixFreeOperator::build_halo_plan(par::Communicator& comm) {
  std::array<std::int32_t, 2> my_range{node_begin_, node_begin_ + owned_nodes_};
  const auto ranges =
      comm.allgather_parts(std::span<const std::int32_t>(my_range.data(), 2));
  const auto needs = comm.allgather_parts(
      std::span<const std::int32_t>(ghost_ids_.data(), ghost_ids_.size()));

  const Rank me = comm.rank_id();
  // Receives: my ghosts grouped by owner. Ghost ids are sorted and rank node
  // ranges are contiguous and ordered, so each owner's ghosts form one run.
  std::size_t pos = 0;
  for (Rank r{0}; r < Rank{comm.size()}; ++r) {
    if (r == me) continue;
    const std::int32_t lo = ranges[r.index()][0];
    const std::int32_t hi = ranges[r.index()][1];
    const int offset = static_cast<int>(pos);
    int count = 0;
    while (pos < ghost_ids_.size() && ghost_ids_[pos] >= lo &&
           ghost_ids_[pos] < hi) {
      ++pos;
      ++count;
    }
    if (count > 0) recvs_.push_back({r, offset, count});
  }
  NEURO_REQUIRE(pos == ghost_ids_.size(),
                "build_halo_plan: ghost node not owned by any rank");
  // Sends: owned nodes other ranks listed as ghosts.
  for (Rank r{0}; r < Rank{comm.size()}; ++r) {
    if (r == me) continue;
    Send sd;
    sd.rank = r;
    for (const std::int32_t g : needs[r.index()]) {
      if (g >= node_begin_ && g < node_begin_ + owned_nodes_) {
        sd.slots.push_back(g - node_begin_);
      }
    }
    if (!sd.slots.empty()) sends_.push_back(std::move(sd));
  }
}

void MatrixFreeOperator::finalize_node_pair(par::Communicator& comm) {
  inner_->drop_zero_blocks();
  if (target_ == solver::simd::DispatchTarget::kScalar) {
    // Scalar dispatch delegates the whole apply to the wrapped block matrix
    // (bit-identical to the kBsr backend), so it carries the halo plan.
    inner_->setup_ghosts(comm);
    return;
  }

  const solver::BlockRowRange brange = inner_->block_range();
  const auto& brp = inner_->block_row_ptr();
  const auto& bcols = inner_->block_cols();
  const auto& vals = inner_->values();
  const int nb = inner_->local_block_rows();

  for (const solver::GlobalBlockRow c : bcols) {
    if (!brange.contains(c)) ghost_ids_.push_back(c.value());
  }
  std::sort(ghost_ids_.begin(), ghost_ids_.end());
  ghost_ids_.erase(std::unique(ghost_ids_.begin(), ghost_ids_.end()),
                   ghost_ids_.end());
  build_halo_plan(comm);

  const auto row_has = [&](int m, solver::GlobalBlockRow want) {
    const auto b = bcols.begin() + brp[solver::LocalBlockRow{m}];
    const auto e = bcols.begin() + brp[solver::LocalBlockRow{m} + 1];
    const auto it = std::lower_bound(b, e, want);
    return it != e && *it == want;
  };

  // Compress to symmetric-upper: each owned pattern-paired block (n, m),
  // m > n, is stored once and applied twice (direct + transposed). Unpaired
  // owned blocks — possible only when drop_zero_blocks kept one side of an
  // exact-zero-cancelled pair — fall back to the broadcast kernel, as do all
  // ghost-column blocks (their mirror row lives on another rank).
  sym_row_ptr_.assign(static_cast<std::size_t>(nb) + 1, 0);
  ext_row_ptr_.assign(static_cast<std::size_t>(nb) + 1, 0);
  ghost_row_ptr_.assign(static_cast<std::size_t>(nb) + 1, 0);
  for (int n = 0; n < nb; ++n) {
    const solver::GlobalBlockRow gdiag = brange.first + n;
    const std::int32_t pb = brp[solver::LocalBlockRow{n}];
    const std::int32_t pe = brp[solver::LocalBlockRow{n} + 1];
    // Diagonal first: the symmetric kernel's layout contract.
    for (std::int32_t p = pb; p < pe; ++p) {
      if (bcols[static_cast<std::size_t>(p)] == gdiag) {
        sym_cols_.push_back(static_cast<std::int32_t>(n));
        push_transposed(sym_valuesT_, &vals[static_cast<std::size_t>(p) * 9U]);
        break;
      }
    }
    NEURO_REQUIRE(sym_cols_.size() ==
                      static_cast<std::size_t>(sym_row_ptr_[static_cast<std::size_t>(n)]) + 1,
                  "finalize: diagonal block missing from block row " << n);
    for (std::int32_t p = pb; p < pe; ++p) {
      const solver::GlobalBlockRow c = bcols[static_cast<std::size_t>(p)];
      if (c == gdiag) continue;
      const double* a = &vals[static_cast<std::size_t>(p) * 9U];
      if (!brange.contains(c)) {
        const auto it =
            std::lower_bound(ghost_ids_.begin(), ghost_ids_.end(), c.value());
        ghost_cols_.push_back(static_cast<std::int32_t>(
            owned_nodes_ + (it - ghost_ids_.begin())));
        push_transposed(ghost_valuesT_, a);
        continue;
      }
      const int m = brange.offset_of(c);
      if (m > n) {
        if (row_has(m, gdiag)) {
          sym_cols_.push_back(static_cast<std::int32_t>(m));
          push_transposed(sym_valuesT_, a);
        } else {
          ext_cols_.push_back(static_cast<std::int32_t>(m));
          push_transposed(ext_valuesT_, a);
        }
      } else if (!row_has(m, gdiag)) {
        ext_cols_.push_back(static_cast<std::int32_t>(m));
        push_transposed(ext_valuesT_, a);
      }
      // m < n with a pair: mirrored by row m's symmetric entry.
    }
    sym_row_ptr_[static_cast<std::size_t>(n) + 1] =
        static_cast<std::int32_t>(sym_cols_.size());
    ext_row_ptr_[static_cast<std::size_t>(n) + 1] =
        static_cast<std::int32_t>(ext_cols_.size());
    ghost_row_ptr_[static_cast<std::size_t>(n) + 1] =
        static_cast<std::int32_t>(ghost_cols_.size());
  }
  pad_values(sym_valuesT_);
  pad_values(ext_valuesT_);
  pad_values(ghost_valuesT_);
}

void MatrixFreeOperator::finalize(par::Communicator& comm) {
  NEURO_REQUIRE(!finalized_, "MatrixFreeOperator::finalize called twice");
  if (storage_ == MatrixFreeStorage::kNodePairBlocks) {
    finalize_node_pair(comm);
  } else {
    if (fixed_mask_.empty()) {
      fixed_mask_.assign(
          3 * (static_cast<std::size_t>(owned_nodes_) + ghost_ids_.size()), 0);
    }
    build_halo_plan(comm);
  }
  finalized_ = true;
}

void MatrixFreeOperator::apply_node_pair(const solver::DistVector& x,
                                         solver::DistVector& y,
                                         par::Communicator& comm) const {
  const std::size_t nb = static_cast<std::size_t>(owned_nodes_);

  // One padded gather buffer: owned x first, ghost slots after, plus the one
  // overhang double the 4-lane loads may read (block_kernels.h contract).
  std::vector<double> xg((nb + ghost_ids_.size()) * 3U + 1U, 0.0);
  std::copy(x.local().begin(), x.local().end(), xg.begin());

  std::vector<par::Communicator::PendingRecv> pending;
  std::vector<std::vector<double>> payloads(sends_.size());
  if (comm.size() > 1) {
    pending.reserve(recvs_.size());
    for (const auto& rc : recvs_) pending.push_back(comm.irecv(rc.rank, kHaloTag));
    for (std::size_t s = 0; s < sends_.size(); ++s) {
      const auto& sd = sends_[s];
      auto& payload = payloads[s];
      payload.resize(sd.slots.size() * 3U);
      for (std::size_t i = 0; i < sd.slots.size(); ++i) {
        const std::size_t src = static_cast<std::size_t>(sd.slots[i]) * 3U;
        payload[3 * i + 0] = x.local()[src + 0];
        payload[3 * i + 1] = x.local()[src + 1];
        payload[3 * i + 2] = x.local()[src + 2];
      }
      comm.isend(sd.rank, kHaloTag,
                 std::span<const double>(payload.data(), payload.size()));
    }
  }

  // Halo-free work first (the overlap): the symmetric and unpaired passes
  // touch owned columns only. The kernels accumulate, so y starts at zero.
  std::fill(y.local().begin(), y.local().end(), 0.0);
  solver::simd::block3_sym_apply(target_, sym_valuesT_.data(),
                                 sym_row_ptr_.data(), sym_cols_.data(),
                                 owned_nodes_, xg.data(), y.local().data());
  solver::simd::block3_accum_apply(target_, ext_valuesT_.data(),
                                   ext_row_ptr_.data(), ext_cols_.data(),
                                   owned_nodes_, xg.data(), y.local().data());

  if (comm.size() > 1) {
    for (std::size_t i = 0; i < recvs_.size(); ++i) {
      const auto& rc = recvs_[i];
      auto data = comm.wait<double>(pending[i]);
      NEURO_REQUIRE(static_cast<int>(data.size()) == 3 * rc.count,
                    "matrix-free apply: ghost payload size mismatch");
      std::copy(data.begin(), data.end(),
                xg.begin() + static_cast<std::ptrdiff_t>(
                                 (nb + static_cast<std::size_t>(rc.offset)) * 3U));
    }
  }
  solver::simd::block3_accum_apply(target_, ghost_valuesT_.data(),
                                   ghost_row_ptr_.data(), ghost_cols_.data(),
                                   owned_nodes_, xg.data(), y.local().data());

  // Logical work equals the BSR apply's; streamed bytes cover only the
  // stored (compressed) blocks — that gap is the policy's speedup.
  const double stored = static_cast<double>(sym_cols_.size() + ext_cols_.size() +
                                            ghost_cols_.size());
  comm.work().add_flops(kMfSymFlopsPerLogicalBlock *
                        static_cast<double>(inner_->local_blocks()));
  comm.work().add_mem_bytes(kMfSymBytesPerStoredBlock * stored +
                            kMfSymBytesPerRow * static_cast<double>(range_.size()));
}

void MatrixFreeOperator::apply_element(std::size_t ti, const double* xg,
                                       std::vector<double>& y_local,
                                       std::array<double, 144>& scratch) const {
  const std::int32_t* s = &tet_slots_[4 * ti];
  std::array<double, 12> x12;
  std::array<double, 12> y12{};
  for (int a = 0; a < 4; ++a) {
    const double* xb = xg + static_cast<std::size_t>(s[a]) * 3U;
    x12[static_cast<std::size_t>(3 * a) + 0] = xb[0];
    x12[static_cast<std::size_t>(3 * a) + 1] = xb[1];
    x12[static_cast<std::size_t>(3 * a) + 2] = xb[2];
  }
  solver::simd::elem12_apply(target_, tet_ke(ti, scratch), x12.data(),
                             y12.data());
  for (int a = 0; a < 4; ++a) {
    if (s[a] >= owned_nodes_) continue;
    const std::size_t out = static_cast<std::size_t>(s[a]) * 3U;
    y_local[out + 0] += y12[static_cast<std::size_t>(3 * a) + 0];
    y_local[out + 1] += y12[static_cast<std::size_t>(3 * a) + 1];
    y_local[out + 2] += y12[static_cast<std::size_t>(3 * a) + 2];
  }
}

void MatrixFreeOperator::apply_elements(const solver::DistVector& x,
                                        solver::DistVector& y,
                                        par::Communicator& comm) const {
  const std::size_t nowned3 = static_cast<std::size_t>(owned_nodes_) * 3U;

  // Masked gather: fixed dofs contribute nothing (their columns were moved to
  // the rhs by apply_dirichlet); their rows are pinned to x at the end.
  std::vector<double> xg((static_cast<std::size_t>(owned_nodes_) +
                          ghost_ids_.size()) * 3U + 1U, 0.0);
  for (std::size_t i = 0; i < nowned3; ++i) {
    xg[i] = fixed_mask_[i] ? 0.0 : x.local()[i];
  }

  std::vector<par::Communicator::PendingRecv> pending;
  std::vector<std::vector<double>> payloads(sends_.size());
  if (comm.size() > 1) {
    pending.reserve(recvs_.size());
    for (const auto& rc : recvs_) pending.push_back(comm.irecv(rc.rank, kHaloTag));
    for (std::size_t s = 0; s < sends_.size(); ++s) {
      const auto& sd = sends_[s];
      auto& payload = payloads[s];
      payload.resize(sd.slots.size() * 3U);
      for (std::size_t i = 0; i < sd.slots.size(); ++i) {
        const std::size_t src = static_cast<std::size_t>(sd.slots[i]) * 3U;
        payload[3 * i + 0] = x.local()[src + 0];
        payload[3 * i + 1] = x.local()[src + 1];
        payload[3 * i + 2] = x.local()[src + 2];
      }
      comm.isend(sd.rank, kHaloTag,
                 std::span<const double>(payload.data(), payload.size()));
    }
  }

  std::fill(y.local().begin(), y.local().end(), 0.0);
  std::array<double, 144> scratch;
  for (const std::int32_t ti : interior_tets_) {
    apply_element(static_cast<std::size_t>(ti), xg.data(), y.local(), scratch);
  }
  if (comm.size() > 1) {
    for (std::size_t i = 0; i < recvs_.size(); ++i) {
      const auto& rc = recvs_[i];
      auto data = comm.wait<double>(pending[i]);
      NEURO_REQUIRE(static_cast<int>(data.size()) == 3 * rc.count,
                    "matrix-free apply: ghost payload size mismatch");
      for (std::size_t k = 0; k < data.size(); ++k) {
        const std::size_t dst =
            (static_cast<std::size_t>(owned_nodes_) +
             static_cast<std::size_t>(rc.offset)) * 3U + k;
        xg[dst] = fixed_mask_[dst] ? 0.0 : data[k];
      }
    }
  }
  for (const std::int32_t ti : boundary_tets_) {
    apply_element(static_cast<std::size_t>(ti), xg.data(), y.local(), scratch);
  }
  // Fixed rows are identity rows: y = x there.
  for (const std::int32_t row : owned_fixed_rows_) {
    y.local()[static_cast<std::size_t>(row)] =
        x.local()[static_cast<std::size_t>(row)];
  }

  const double ntets = static_cast<double>(tet_slots_.size() / 4);
  if (storage_ == MatrixFreeStorage::kElementBlocks) {
    comm.work().add_flops(kMfElemFlopsPerTet * ntets);
    comm.work().add_mem_bytes(kMfElemBytesPerTet * ntets);
  } else {
    comm.work().add_flops(
        (kMfElemFlopsPerTet + TetElement::kStiffnessFlops) * ntets);
    comm.work().add_mem_bytes(kMfOnTheFlyBytesPerTet * ntets);
  }
}

void MatrixFreeOperator::apply(const solver::DistVector& x, solver::DistVector& y,
                               par::Communicator& comm) const {
  NEURO_REQUIRE(finalized_, "MatrixFreeOperator::apply before finalize");
  NEURO_REQUIRE(x.range() == range_ && y.range() == range_,
                "MatrixFreeOperator::apply: vector layout mismatch");
  if (storage_ == MatrixFreeStorage::kNodePairBlocks) {
    if (target_ == solver::simd::DispatchTarget::kScalar) {
      inner_->apply(x, y, comm);  // bit-identical to MatrixBackend::kBsr
      return;
    }
    apply_node_pair(x, y, comm);
    return;
  }
  apply_elements(x, y, comm);
}

double MatrixFreeOperator::element_row_value(solver::GlobalRow global_row,
                                             solver::GlobalRow global_col) const {
  const int lr = range_.offset_of(global_row);
  const bool row_fixed =
      !fixed_mask_.empty() && fixed_mask_[static_cast<std::size_t>(lr)] != 0;
  if (row_fixed) return global_row == global_col ? 1.0 : 0.0;
  const int cslot = slot_of_node(global_col.value() / 3);
  if (cslot < 0) return 0.0;
  const int cb = global_col.value() % 3;
  if (!fixed_mask_.empty() &&
      fixed_mask_[static_cast<std::size_t>(3 * cslot + cb)] != 0) {
    return 0.0;
  }
  const int rslot = lr / 3;
  const int ca = lr % 3;
  double acc = 0.0;
  std::array<double, 144> scratch;
  for (std::int32_t p = node_tet_ptr_[static_cast<std::size_t>(rslot)];
       p < node_tet_ptr_[static_cast<std::size_t>(rslot) + 1]; ++p) {
    const std::size_t ti = static_cast<std::size_t>(node_tet_ids_[static_cast<std::size_t>(p)]);
    const std::int32_t* s = &tet_slots_[4 * ti];
    int a = -1;
    int bn = -1;
    for (int k = 0; k < 4; ++k) {
      if (s[k] == rslot) a = k;
      if (s[k] == cslot) bn = k;
    }
    if (a < 0 || bn < 0) continue;
    acc += tet_ke(ti, scratch)[static_cast<std::size_t>(12 * (3 * a + ca) +
                                                        (3 * bn + cb))];
  }
  return acc;
}

double MatrixFreeOperator::value_at(solver::GlobalRow global_row,
                                    solver::GlobalRow global_col) const {
  NEURO_REQUIRE(range_.contains(global_row), "value_at: row not owned");
  if (storage_ == MatrixFreeStorage::kNodePairBlocks) {
    return inner_->value_at(global_row, global_col);
  }
  return element_row_value(global_row, global_col);
}

void MatrixFreeOperator::extract_diagonal_block(std::vector<int>& row_ptr,
                                                std::vector<int>& cols,
                                                std::vector<double>& values) const {
  if (storage_ == MatrixFreeStorage::kNodePairBlocks) {
    inner_->extract_diagonal_block(row_ptr, cols, values);
    return;
  }
  row_ptr.assign(static_cast<std::size_t>(range_.size()) + 1, 0);
  cols.clear();
  values.clear();
  std::vector<std::int32_t> nb_slots;
  for (int n = 0; n < owned_nodes_; ++n) {
    nb_slots.clear();
    for (std::int32_t p = node_tet_ptr_[static_cast<std::size_t>(n)];
         p < node_tet_ptr_[static_cast<std::size_t>(n) + 1]; ++p) {
      const std::size_t ti =
          static_cast<std::size_t>(node_tet_ids_[static_cast<std::size_t>(p)]);
      for (int k = 0; k < 4; ++k) {
        const std::int32_t slot = tet_slots_[4 * ti + static_cast<std::size_t>(k)];
        if (slot < owned_nodes_) nb_slots.push_back(slot);
      }
    }
    std::sort(nb_slots.begin(), nb_slots.end());
    nb_slots.erase(std::unique(nb_slots.begin(), nb_slots.end()), nb_slots.end());

    for (int ca = 0; ca < 3; ++ca) {
      const int lr = 3 * n + ca;
      const solver::GlobalRow grow = range_.first + lr;
      if (!fixed_mask_.empty() &&
          fixed_mask_[static_cast<std::size_t>(lr)] != 0) {
        cols.push_back(lr);  // identity row: only the unit diagonal survives
        values.push_back(1.0);
      } else {
        for (const std::int32_t m : nb_slots) {
          for (int cb = 0; cb < 3; ++cb) {
            const int lc = 3 * m + cb;
            const double v = element_row_value(grow, range_.first + lc);
            // Keep the entry set the reference path keeps after drop_zeros:
            // nonzeros plus the scalar diagonal.
            // NEURO_NONDET_OK(structural-zero drop: exact 0.0 is a masked/cancelled sentinel, not a tolerance test)
            if (v != 0.0 || lc == lr) {
              cols.push_back(lc);
              values.push_back(v);
            }
          }
        }
      }
      row_ptr[static_cast<std::size_t>(lr) + 1] = static_cast<int>(cols.size());
    }
  }
}

solver::DistCsrMatrix MatrixFreeOperator::to_csr() const {
  if (storage_ == MatrixFreeStorage::kNodePairBlocks) {
    return inner_->to_csr();
  }
  std::vector<int> rp(static_cast<std::size_t>(range_.size()) + 1, 0);
  std::vector<int> cols;
  std::vector<double> vals;
  std::vector<std::int32_t> nb_nodes;  // global node ids, sorted
  for (int n = 0; n < owned_nodes_; ++n) {
    nb_nodes.clear();
    for (std::int32_t p = node_tet_ptr_[static_cast<std::size_t>(n)];
         p < node_tet_ptr_[static_cast<std::size_t>(n) + 1]; ++p) {
      const std::size_t ti =
          static_cast<std::size_t>(node_tet_ids_[static_cast<std::size_t>(p)]);
      for (int k = 0; k < 4; ++k) {
        nb_nodes.push_back(static_cast<std::int32_t>(
            node_of_slot(tet_slots_[4 * ti + static_cast<std::size_t>(k)])));
      }
    }
    std::sort(nb_nodes.begin(), nb_nodes.end());
    nb_nodes.erase(std::unique(nb_nodes.begin(), nb_nodes.end()), nb_nodes.end());

    for (int ca = 0; ca < 3; ++ca) {
      const int lr = 3 * n + ca;
      const solver::GlobalRow grow = range_.first + lr;
      if (!fixed_mask_.empty() &&
          fixed_mask_[static_cast<std::size_t>(lr)] != 0) {
        cols.push_back(grow.value());
        vals.push_back(1.0);
      } else {
        for (const std::int32_t gn : nb_nodes) {
          for (int cb = 0; cb < 3; ++cb) {
            const solver::GlobalRow gcol{3 * gn + cb};
            const double v = element_row_value(grow, gcol);
            // NEURO_NONDET_OK(structural-zero drop: exact 0.0 is a masked/cancelled sentinel, not a tolerance test)
            if (v != 0.0 || gcol == grow) {
              cols.push_back(gcol.value());
              vals.push_back(v);
            }
          }
        }
      }
      rp[static_cast<std::size_t>(lr) + 1] = static_cast<int>(cols.size());
    }
  }
  return solver::DistCsrMatrix(global_size_, range_, std::move(rp),
                               std::move(cols), std::move(vals));
}

}  // namespace neuro::fem

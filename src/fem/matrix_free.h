// Matrix-free elasticity operator: y = K x with no assembled global matrix in
// the per-iteration hot path.
//
// The Krylov loop only ever needs the *action* of the stiffness matrix. This
// backend provides it through the explicitly vectorized block micro-kernels
// of src/solver/simd/ under one of three storage policies:
//
//   kNodePairBlocks  one 3x3 block per node-adjacency edge (the BSR layout,
//                    assembled bit-identically to MatrixBackend::kBsr), but
//                    applied through a symmetric-upper compression: only
//                    blocks (n, m) with m >= n are streamed and each
//                    off-diagonal block serves both y_n += A x_m and
//                    y_m += Aᵀ x_n. At the smoke mesh's ~12 blocks/row that
//                    cuts the apply's value traffic ~46% — the apply is
//                    memory-bound, so the cut is the speedup (docs/perf.md,
//                    "Matrix-free cost model"). Under kScalar dispatch the
//                    apply instead delegates to the wrapped DistBsrMatrix,
//                    bit-identical to the kBsr backend.
//   kElementBlocks   precomputed per-tet 12x12 element stiffness, applied by
//                    gather x12 → Ke x12 → scatter. No node-pair structure at
//                    all, but Ke storage streams ~5x the bytes of the BSR
//                    values on the smoke mesh — a latency/capacity trade
//                    documented honestly in docs/perf.md.
//   kOnTheFly        per-tet Ke recomputed inside every apply from vertex
//                    coordinates and the material matrix: ~1/4 the streamed
//                    bytes of kElementBlocks at ~2700 extra flops per tet —
//                    the compute-bound end of the storage spectrum.
//
// Pipeline contract (mirrors the assembled backends):
//   assemble_elasticity_matrix_free → apply_dirichlet → finalize → apply…
// finalize() is collective: it builds the halo-exchange plan (tag 703) and,
// for kNodePairBlocks under vector dispatch, the compressed symmetric arrays.
//
// Determinism: each rank accumulates into its owned rows only, in a fixed
// sorted traversal order (sorted element list / ascending block rows), so
// repeated applies are bit-identical for every policy and dispatch target.
// Cross-backend: kNodePairBlocks+kScalar equals kBsr bit for bit; every other
// (policy, target) combination is tolerance-equivalent (the vector kernels
// reorder per-row reductions; element policies re-associate the assembly sum).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "fem/boundary.h"
#include "fem/material.h"
#include "mesh/partition.h"
#include "mesh/tet_mesh.h"
#include "par/communicator.h"
#include "solver/bsr_matrix.h"
#include "solver/dist_matrix.h"
#include "solver/dist_vector.h"
#include "solver/operator.h"
#include "solver/simd/dispatch.h"

namespace neuro::fem {

/// Storage policy of the matrix-free apply (see file comment).
enum class MatrixFreeStorage : std::uint8_t {
  kNodePairBlocks,
  kElementBlocks,
  kOnTheFly,
};

/// Short stable name, e.g. "node-pair-blocks" (span attributes, bench labels).
[[nodiscard]] const char* matrix_free_storage_name(MatrixFreeStorage storage);

// Cost-model terms (docs/perf.md, "Matrix-free cost model"); the apply's work
// accounting uses exactly these, so the perf model and the counters agree.
inline constexpr double kMfSymFlopsPerLogicalBlock = 18.0;  ///< same math as BSR
inline constexpr double kMfSymBytesPerStoredBlock = 76.0;   ///< 9 vals + col idx
inline constexpr double kMfSymBytesPerRow = 16.0;           ///< x load + y store
inline constexpr double kMfElemFlopsPerTet = 288.0;         ///< 12x12 mat-vec
inline constexpr double kMfElemBytesPerTet = 1152.0 + 192.0;  ///< Ke + x12/y12
inline constexpr double kMfOnTheFlyBytesPerTet = 96.0 + 288.0 + 192.0;  ///< verts + D + x12/y12

class MatrixFreeOperator;

/// One rank's piece of the system under the matrix-free backend.
struct LocalMatrixFreeSystem;

/// Matrix-free analogue of assemble_elasticity[_bsr]: same element traversal,
/// same right-hand side. For kNodePairBlocks the wrapped block matrix is
/// bit-identical to the kBsr backend's. `dispatch` is resolved immediately
/// (kAuto probes the CPU); pass kScalar for the bitwise-reference path.
[[nodiscard]] LocalMatrixFreeSystem assemble_elasticity_matrix_free(
    const mesh::TetMesh& mesh, const MeshTopology& topo,
    const MaterialMap& materials, const mesh::Partition& partition,
    const Vec3& body_force, par::Communicator& comm, MatrixFreeStorage storage,
    solver::simd::DispatchTarget dispatch);

class MatrixFreeOperator final : public solver::LinearOperator {
 public:
  [[nodiscard]] int global_size() const override { return global_size_; }
  [[nodiscard]] solver::RowRange range() const override { return range_; }

  /// y = A x (collective). Requires finalize(). Ghost x values travel on tag
  /// 703 while the halo-free part of the apply computes (the BSR backend's
  /// VecScatterBegin/End overlap, at node granularity).
  void apply(const solver::DistVector& x, solver::DistVector& y,
             par::Communicator& comm) const override;

  [[nodiscard]] double value_at(solver::GlobalRow global_row,
                                solver::GlobalRow global_col) const override;

  void extract_diagonal_block(std::vector<int>& row_ptr, std::vector<int>& cols,
                              std::vector<double>& values) const override;

  /// Dirichlet substitution without an assembled matrix. kNodePairBlocks
  /// substitutes in the wrapped block matrix (bit-identical to the kBsr
  /// path); element policies mask fixed dofs in the apply's gather/scatter
  /// and move the fixed columns' contribution to `b` element by element —
  /// the same operator in exact arithmetic. Call before finalize().
  void apply_dirichlet(const DirichletSet& bc, solver::DistVector& b,
                       par::Communicator& comm);

  /// Collective: builds the halo plan and the dispatch-target-specific apply
  /// arrays. Must be called (on every rank simultaneously) before apply().
  void finalize(par::Communicator& comm);

  /// Owned rows as scalar CSR with the reference entry rule (nonzeros plus
  /// the scalar diagonal) — the additive-Schwarz construction input.
  [[nodiscard]] solver::DistCsrMatrix to_csr() const;

  [[nodiscard]] MatrixFreeStorage storage() const { return storage_; }
  /// The resolved dispatch target the apply kernels run on (never kAuto).
  [[nodiscard]] solver::simd::DispatchTarget dispatch() const { return target_; }

 private:
  friend LocalMatrixFreeSystem assemble_elasticity_matrix_free(
      const mesh::TetMesh& mesh, const MeshTopology& topo,
      const MaterialMap& materials, const mesh::Partition& partition,
      const Vec3& body_force, par::Communicator& comm, MatrixFreeStorage storage,
      solver::simd::DispatchTarget dispatch);

  MatrixFreeOperator() = default;

  // Global node id of a local slot (owned slots first, then ghosts).
  [[nodiscard]] int node_of_slot(int slot) const;
  // Local slot of a global node id; -1 when the node is not referenced here.
  [[nodiscard]] int slot_of_node(int node) const;
  // Element stiffness of local tet `ti` (pointer into storage, or `scratch`
  // freshly computed for kOnTheFly).
  [[nodiscard]] const double* tet_ke(std::size_t ti,
                                     std::array<double, 144>& scratch) const;
  // One element's gather → kernel → scatter into y (element policies).
  void apply_element(std::size_t ti, const double* xg,
                     std::vector<double>& y_local,
                     std::array<double, 144>& scratch) const;
  // Owned-row scalar entries of `global_row` against the dofs of owned slot
  // (element policies; Dirichlet masks applied).
  [[nodiscard]] double element_row_value(solver::GlobalRow global_row,
                                         solver::GlobalRow global_col) const;

  void apply_node_pair(const solver::DistVector& x, solver::DistVector& y,
                       par::Communicator& comm) const;
  void apply_elements(const solver::DistVector& x, solver::DistVector& y,
                      par::Communicator& comm) const;
  void finalize_node_pair(par::Communicator& comm);
  void build_halo_plan(par::Communicator& comm);

  MatrixFreeStorage storage_ = MatrixFreeStorage::kNodePairBlocks;
  solver::simd::DispatchTarget target_ = solver::simd::DispatchTarget::kScalar;
  int global_size_ = 0;
  solver::RowRange range_{};
  int owned_nodes_ = 0;
  int node_begin_ = 0;  ///< first owned mesh node id
  bool finalized_ = false;

  // --- kNodePairBlocks: the wrapped block matrix (assembled values; also the
  // bit-exact scalar-dispatch apply) plus the compressed symmetric arrays the
  // vector kernels stream. valuesT arrays are transposed per block and padded
  // four doubles past the last block (kernel contract, block_kernels.h).
  std::optional<solver::DistBsrMatrix> inner_;
  std::vector<std::int32_t> sym_row_ptr_;  ///< diag-first, then paired m > n
  std::vector<std::int32_t> sym_cols_;
  std::vector<double> sym_valuesT_;
  std::vector<std::int32_t> ext_row_ptr_;  ///< pattern-unpaired owned blocks
  std::vector<std::int32_t> ext_cols_;
  std::vector<double> ext_valuesT_;
  std::vector<std::int32_t> ghost_row_ptr_;  ///< off-rank block columns
  std::vector<std::int32_t> ghost_cols_;     ///< slot = owned_nodes_ + ghost
  std::vector<double> ghost_valuesT_;

  // --- element policies: local tets (sorted union over owned nodes, as in
  // assembly) with node slots, plus per-tet stiffness storage.
  std::vector<std::int32_t> tet_slots_;  ///< 4 per tet
  std::vector<std::int32_t> interior_tets_;  ///< all four slots owned
  std::vector<std::int32_t> boundary_tets_;  ///< at least one ghost slot
  std::vector<double> ke_;            ///< kElementBlocks: 144 per tet
  std::vector<double> tet_vertices_;  ///< kOnTheFly: 12 per tet
  std::vector<std::int32_t> tet_dmat_;  ///< kOnTheFly: index into dmats_
  std::vector<std::array<std::array<double, 6>, 6>> dmats_;
  std::vector<std::int32_t> node_tet_ptr_;  ///< owned node → incident local tets
  std::vector<std::int32_t> node_tet_ids_;
  std::vector<std::uint8_t> fixed_mask_;  ///< per slot dof (3 per slot)
  std::vector<std::int32_t> owned_fixed_rows_;  ///< local scalar rows, sorted

  // --- halo plan (node granular; for kNodePairBlocks, node == block row).
  std::vector<std::int32_t> ghost_ids_;  ///< sorted global ids of ghost slots
  struct Send {
    Rank rank;
    std::vector<std::int32_t> slots;  ///< owned slots to ship to `rank`
  };
  struct Recv {
    Rank rank;
    int offset;  ///< first ghost slot this rank fills
    int count;
  };
  std::vector<Send> sends_;
  std::vector<Recv> recvs_;
};

struct LocalMatrixFreeSystem {
  MatrixFreeOperator A;
  solver::DistVector b;
};

}  // namespace neuro::fem

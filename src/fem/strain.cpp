#include "fem/strain.h"

#include <cmath>

#include "base/check.h"
#include "fem/element.h"

namespace neuro::fem {

double ElementStrain::von_mises() const {
  const double exx = strain[0], eyy = strain[1], ezz = strain[2];
  // Tensor shear components are half the engineering shears.
  const double exy = 0.5 * strain[3], eyz = 0.5 * strain[4], ezx = 0.5 * strain[5];
  const double dev = (exx - eyy) * (exx - eyy) + (eyy - ezz) * (eyy - ezz) +
                     (ezz - exx) * (ezz - exx);
  return std::sqrt(2.0 / 9.0 * dev +
                   4.0 / 3.0 * (exy * exy + eyz * eyz + ezx * ezx));
}

std::vector<ElementStrain> element_strains(const mesh::TetMesh& mesh,
                                           const std::vector<Vec3>& displacements) {
  NEURO_REQUIRE(static_cast<int>(displacements.size()) == mesh.num_nodes(),
                "element_strains: displacement count != node count");
  std::vector<ElementStrain> strains(static_cast<std::size_t>(mesh.num_tets()));
  for (const mesh::TetId t : mesh.tet_ids()) {
    const auto& tet = mesh.tets[t];
    const TetElement elem = TetElement::from_vertices(
        mesh.nodes[tet[0]], mesh.nodes[tet[1]], mesh.nodes[tet[2]],
        mesh.nodes[tet[3]]);
    auto& e = strains[t.index()].strain;
    for (int n = 0; n < 4; ++n) {
      const Vec3& g = elem.grad_n[static_cast<std::size_t>(n)];
      const Vec3& u = displacements[tet[static_cast<std::size_t>(n)].index()];
      e[0] += g.x * u.x;
      e[1] += g.y * u.y;
      e[2] += g.z * u.z;
      e[3] += g.y * u.x + g.x * u.y;
      e[4] += g.z * u.y + g.y * u.z;
      e[5] += g.z * u.x + g.x * u.z;
    }
  }
  return strains;
}

std::vector<double> von_mises_stress(const mesh::TetMesh& mesh,
                                     const std::vector<ElementStrain>& strains,
                                     const MaterialMap& materials) {
  NEURO_REQUIRE(strains.size() == static_cast<std::size_t>(mesh.num_tets()),
                "von_mises_stress: strain count != tet count");
  std::vector<double> out(strains.size());
  for (const mesh::TetId t : mesh.tet_ids()) {
    const auto D = elasticity_matrix(materials.for_label(mesh.tet_labels[t]));
    std::array<double, 6> s{};
    for (int r = 0; r < 6; ++r) {
      for (int c = 0; c < 6; ++c) {
        s[static_cast<std::size_t>(r)] +=
            D[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] *
            strains[t.index()].strain[static_cast<std::size_t>(c)];
      }
    }
    const double sxx = s[0], syy = s[1], szz = s[2];
    const double sxy = s[3], syz = s[4], szx = s[5];
    out[t.index()] = std::sqrt(
        0.5 * ((sxx - syy) * (sxx - syy) + (syy - szz) * (syy - szz) +
               (szz - sxx) * (szz - sxx)) +
        3.0 * (sxy * sxy + syz * syz + szx * szx));
  }
  return out;
}

ScalarSummary summarize_per_element(const mesh::TetMesh& mesh,
                                    const std::vector<double>& values) {
  NEURO_REQUIRE(values.size() == static_cast<std::size_t>(mesh.num_tets()),
                "summarize_per_element: value count != tet count");
  ScalarSummary s;
  double total_volume = 0.0;
  double weighted = 0.0;
  for (const mesh::TetId t : mesh.tet_ids()) {
    const double v = tet_volume(mesh, t);
    total_volume += v;
    weighted += v * values[t.index()];
    s.max = std::max(s.max, values[t.index()]);
  }
  if (total_volume > 0.0) s.mean = weighted / total_volume;
  return s;
}

}  // namespace neuro::fem

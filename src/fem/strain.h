// Strain/stress post-processing of a computed displacement field.
//
// The paper motivates intraoperative registration with "quantitative
// monitoring of therapy application"; once the volumetric displacement field
// exists, per-element strain measures are the quantities a surgeon-facing
// system would report (tissue compression near retractors, shear at the
// resection margin). For linear tets the strain is constant per element:
// ε = B u_e, σ = D ε.
#pragma once

#include <array>
#include <vector>

#include "base/vec3.h"
#include "fem/material.h"
#include "mesh/tet_mesh.h"

namespace neuro::fem {

/// Engineering strain per element, Voigt order [εxx εyy εzz γxy γyz γzx].
struct ElementStrain {
  std::array<double, 6> strain{};

  /// Relative volume change tr(ε) (positive = expansion).
  [[nodiscard]] double volumetric() const {
    return strain[0] + strain[1] + strain[2];
  }

  /// Von Mises equivalent strain (distortion intensity, always >= 0).
  [[nodiscard]] double von_mises() const;
};

/// Computes the (constant) strain of every element from nodal displacements.
[[nodiscard]] std::vector<ElementStrain> element_strains(const mesh::TetMesh& mesh,
                                           const std::vector<Vec3>& displacements);

/// Von Mises equivalent *stress* per element, using each tet's material.
[[nodiscard]] std::vector<double> von_mises_stress(const mesh::TetMesh& mesh,
                                     const std::vector<ElementStrain>& strains,
                                     const MaterialMap& materials);

/// Volume-weighted summary of a per-element scalar.
struct ScalarSummary {
  double mean = 0.0;
  double max = 0.0;
};
[[nodiscard]] ScalarSummary summarize_per_element(const mesh::TetMesh& mesh,
                                    const std::vector<double>& values);

}  // namespace neuro::fem

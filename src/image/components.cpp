#include "image/components.h"

#include <algorithm>
#include <numeric>

#include "base/check.h"

namespace neuro {

Image3D<std::int32_t> connected_components(const ImageL& mask,
                                           std::vector<std::size_t>* sizes) {
  const IVec3 d = mask.dims();
  Image3D<std::int32_t> labels(d, 0, mask.spacing(), mask.origin());

  // Flood fill with an explicit stack (volumes are too deep for recursion).
  std::vector<std::size_t> component_sizes;
  std::vector<std::size_t> stack;
  std::int32_t next_id = 1;
  for (std::size_t seed = 0; seed < mask.size(); ++seed) {
    if (mask.data()[seed] == 0 || labels.data()[seed] != 0) continue;
    std::size_t count = 0;
    stack.push_back(seed);
    labels.data()[seed] = next_id;
    while (!stack.empty()) {
      const std::size_t v = stack.back();
      stack.pop_back();
      ++count;
      const int i = static_cast<int>(v % static_cast<std::size_t>(d.x));
      const int j = static_cast<int>((v / static_cast<std::size_t>(d.x)) %
                                     static_cast<std::size_t>(d.y));
      const int k = static_cast<int>(v / (static_cast<std::size_t>(d.x) *
                                          static_cast<std::size_t>(d.y)));
      auto visit = [&](int ii, int jj, int kk) {
        if (ii < 0 || jj < 0 || kk < 0 || ii >= d.x || jj >= d.y || kk >= d.z) return;
        const std::size_t w = labels.index(ii, jj, kk);
        if (mask.data()[w] != 0 && labels.data()[w] == 0) {
          labels.data()[w] = next_id;
          stack.push_back(w);
        }
      };
      visit(i - 1, j, k);
      visit(i + 1, j, k);
      visit(i, j - 1, k);
      visit(i, j + 1, k);
      visit(i, j, k - 1);
      visit(i, j, k + 1);
    }
    component_sizes.push_back(count);
    ++next_id;
  }

  // Renumber so that id 1 is the largest component.
  std::vector<std::int32_t> order(component_sizes.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    return component_sizes[static_cast<std::size_t>(a)] >
           component_sizes[static_cast<std::size_t>(b)];
  });
  std::vector<std::int32_t> remap(component_sizes.size());
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    remap[static_cast<std::size_t>(order[rank])] = static_cast<std::int32_t>(rank) + 1;
  }
  for (auto& v : labels.data()) {
    if (v != 0) v = remap[static_cast<std::size_t>(v) - 1];
  }
  if (sizes != nullptr) {
    sizes->resize(component_sizes.size());
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      (*sizes)[rank] = component_sizes[static_cast<std::size_t>(order[rank])];
    }
  }
  return labels;
}

ImageL keep_largest_component(const ImageL& mask) {
  const auto components = connected_components(mask);
  ImageL out(mask.dims(), 0, mask.spacing(), mask.origin());
  for (std::size_t i = 0; i < mask.size(); ++i) {
    out.data()[i] = components.data()[i] == 1 ? mask.data()[i] : 0;
  }
  return out;
}

int count_components(const ImageL& mask) {
  std::vector<std::size_t> sizes;
  connected_components(mask, &sizes);
  return static_cast<int>(sizes.size());
}

}  // namespace neuro

// Connected-component analysis on binary masks.
//
// Segmentation output contains stray voxels (noise classified as tissue) and
// the paper's pipeline implicitly relies on the brain being a single
// connected object before surface extraction. This module labels 6-connected
// components and provides the standard "keep the largest component" cleanup.
#pragma once

#include <cstdint>
#include <vector>

#include "image/image3d.h"

namespace neuro {

/// Labels 6-connected components of `mask != 0`. Component ids start at 1 in
/// decreasing size order (1 = largest); background stays 0. Returns the
/// component image; `sizes` (optional) receives voxel counts indexed by
/// component id - 1.
Image3D<std::int32_t> connected_components(const ImageL& mask,
                                           std::vector<std::size_t>* sizes = nullptr);

/// Zeroes every voxel outside the largest 6-connected component.
ImageL keep_largest_component(const ImageL& mask);

/// Number of 6-connected components of `mask != 0`.
int count_components(const ImageL& mask);

}  // namespace neuro

#include "image/distance.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "base/check.h"

namespace neuro {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// 1-D squared-distance transform (Felzenszwalb–Huttenlocher lower envelope).
/// f[i] is the squared distance at sample i on input (kInf where no feature),
/// `step` is the physical sample spacing. Overwrites f with the transform.
void edt_1d(std::vector<double>& f, std::vector<double>& scratch_v,
            std::vector<double>& scratch_z, double step) {
  const int n = static_cast<int>(f.size());
  auto& v = scratch_v;  // parabola apex positions (in index units)
  auto& z = scratch_z;  // envelope breakpoints
  v.assign(static_cast<std::size_t>(n), 0.0);
  z.assign(static_cast<std::size_t>(n) + 1, 0.0);

  const double s2 = step * step;

  // Skip leading samples with no parabola (infinite input).
  int q0 = 0;
  while (q0 < n && f[static_cast<std::size_t>(q0)] == kInf) ++q0;
  if (q0 == n) return;  // no features on this line

  int k = 0;
  v[0] = q0;
  z[0] = -kInf;
  z[1] = kInf;
  for (int q = q0 + 1; q < n; ++q) {
    if (f[static_cast<std::size_t>(q)] == kInf) continue;
    double s;
    while (true) {
      const int p = static_cast<int>(v[static_cast<std::size_t>(k)]);
      s = ((f[static_cast<std::size_t>(q)] + s2 * q * q) -
           (f[static_cast<std::size_t>(p)] + s2 * p * p)) /
          (2.0 * s2 * (q - p));
      if (s <= z[static_cast<std::size_t>(k)] && k > 0) {
        --k;
      } else {
        break;
      }
    }
    ++k;
    v[static_cast<std::size_t>(k)] = q;
    z[static_cast<std::size_t>(k)] = s;
    z[static_cast<std::size_t>(k) + 1] = kInf;
  }

  int kk = 0;
  std::vector<double> out(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) {
    while (z[static_cast<std::size_t>(kk) + 1] < q) ++kk;
    const int p = static_cast<int>(v[static_cast<std::size_t>(kk)]);
    out[static_cast<std::size_t>(q)] =
        s2 * (q - p) * (q - p) + f[static_cast<std::size_t>(p)];
  }
  f = std::move(out);
}

/// Full 3-D squared EDT given an initial indicator (0 on features, kInf off).
void edt_3d(Image3D<double>& sq) {
  const IVec3 d = sq.dims();
  const Vec3 h = sq.spacing();
  std::vector<double> line, sv, sz;

  // X axis.
  line.resize(static_cast<std::size_t>(d.x));
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; ++j) {
      bool any = false;
      for (int i = 0; i < d.x; ++i) {
        line[static_cast<std::size_t>(i)] = sq(i, j, k);
        any = any || sq(i, j, k) < kInf;
      }
      if (!any) continue;
      edt_1d(line, sv, sz, h.x);
      for (int i = 0; i < d.x; ++i) sq(i, j, k) = line[static_cast<std::size_t>(i)];
    }
  }
  // Y axis.
  line.resize(static_cast<std::size_t>(d.y));
  for (int k = 0; k < d.z; ++k) {
    for (int i = 0; i < d.x; ++i) {
      bool any = false;
      for (int j = 0; j < d.y; ++j) {
        line[static_cast<std::size_t>(j)] = sq(i, j, k);
        any = any || sq(i, j, k) < kInf;
      }
      if (!any) continue;
      edt_1d(line, sv, sz, h.y);
      for (int j = 0; j < d.y; ++j) sq(i, j, k) = line[static_cast<std::size_t>(j)];
    }
  }
  // Z axis.
  line.resize(static_cast<std::size_t>(d.z));
  for (int j = 0; j < d.y; ++j) {
    for (int i = 0; i < d.x; ++i) {
      bool any = false;
      for (int k = 0; k < d.z; ++k) {
        line[static_cast<std::size_t>(k)] = sq(i, j, k);
        any = any || sq(i, j, k) < kInf;
      }
      if (!any) continue;
      edt_1d(line, sv, sz, h.z);
      for (int k = 0; k < d.z; ++k) sq(i, j, k) = line[static_cast<std::size_t>(k)];
    }
  }
}

ImageF finalize(Image3D<double>& sq, double saturation) {
  ImageF out(sq.dims(), 0.0f, sq.spacing(), sq.origin());
  for (std::size_t i = 0; i < sq.size(); ++i) {
    double dist = sq.data()[i] == kInf ? (saturation > 0 ? saturation : 1e30)
                                       : std::sqrt(sq.data()[i]);
    if (saturation > 0.0) dist = std::min(dist, saturation);
    out.data()[i] = static_cast<float>(dist);
  }
  return out;
}

template <typename Pred>
ImageF edt_where(const ImageL& labels, Pred is_feature, double saturation) {
  Image3D<double> sq(labels.dims(), kInf, labels.spacing(), labels.origin());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (is_feature(labels.data()[i])) sq.data()[i] = 0.0;
  }
  edt_3d(sq);
  return finalize(sq, saturation);
}

}  // namespace

ImageF distance_to_label(const ImageL& labels, std::uint8_t label, double saturation) {
  return edt_where(labels, [label](std::uint8_t v) { return v == label; }, saturation);
}

ImageF distance_from_mask(const ImageL& mask, double saturation) {
  return edt_where(mask, [](std::uint8_t v) { return v != 0; }, saturation);
}

ImageF signed_distance_to_label(const ImageL& labels, std::uint8_t label,
                                double saturation) {
  // Outside distance: distance to the region; inside distance: distance to
  // the complement. Signed distance = outside - inside (<= 0 inside).
  ImageF outside =
      edt_where(labels, [label](std::uint8_t v) { return v == label; }, saturation);
  ImageF inside =
      edt_where(labels, [label](std::uint8_t v) { return v != label; }, saturation);
  ImageF out(labels.dims(), 0.0f, labels.spacing(), labels.origin());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    out.data()[i] = outside.data()[i] - inside.data()[i];
  }
  return out;
}

}  // namespace neuro

// Exact Euclidean distance transforms.
//
// The paper converts each preoperative tissue class into a "saturated distance
// transform" (its ref. [19], Ragnemalm) that serves as a spatially varying
// localization prior for intraoperative k-NN classification. We compute the
// *exact* squared EDT with the separable lower-envelope (parabola) algorithm —
// linear time per axis and exact in arbitrary dimension, which is the property
// the saturated transform needs — then saturate at a configurable cap.
#pragma once

#include <cstdint>

#include "image/image3d.h"

namespace neuro {

/// Exact Euclidean distance (physical units) from every voxel to the nearest
/// voxel where `labels == label`. Voxels of the class itself get 0. If the
/// class is absent everywhere the result is `saturation` everywhere.
/// Distances are clamped ("saturated") to `saturation` when it is > 0.
ImageF distance_to_label(const ImageL& labels, std::uint8_t label,
                         double saturation = 0.0);

/// Signed distance to the boundary of the region `labels == label`:
/// negative inside the region, positive outside, zero on the boundary voxels'
/// interface. Used by the active surface as a smooth attraction potential.
ImageF signed_distance_to_label(const ImageL& labels, std::uint8_t label,
                                double saturation = 0.0);

/// Exact EDT of a binary mask (non-zero = feature). Returns distances in
/// physical units from each voxel to the nearest feature voxel.
ImageF distance_from_mask(const ImageL& mask, double saturation = 0.0);

}  // namespace neuro

#include "image/filters.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace neuro {

namespace {

std::vector<double> gaussian_kernel(double sigma) {
  NEURO_REQUIRE(sigma > 0.0, "gaussian_smooth: sigma must be positive");
  const int radius = static_cast<int>(std::ceil(3.0 * sigma));
  std::vector<double> k(static_cast<std::size_t>(2 * radius + 1));
  double sum = 0.0;
  for (int i = -radius; i <= radius; ++i) {
    const double w = std::exp(-0.5 * (i * i) / (sigma * sigma));
    k[static_cast<std::size_t>(i + radius)] = w;
    sum += w;
  }
  for (auto& w : k) w /= sum;
  return k;
}

/// Convolves along one axis (0=x, 1=y, 2=z) with replicate boundaries.
ImageF convolve_axis(const ImageF& img, const std::vector<double>& kernel, int axis) {
  ImageF out(img.dims(), 0.0f, img.spacing(), img.origin());
  const IVec3 d = img.dims();
  const int radius = static_cast<int>(kernel.size() / 2);
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        double acc = 0.0;
        for (int t = -radius; t <= radius; ++t) {
          const int ii = axis == 0 ? i + t : i;
          const int jj = axis == 1 ? j + t : j;
          const int kk = axis == 2 ? k + t : k;
          acc += kernel[static_cast<std::size_t>(t + radius)] *
                 static_cast<double>(img.clamped(ii, jj, kk));
        }
        out(i, j, k) = static_cast<float>(acc);
      }
    }
  }
  return out;
}

}  // namespace

ImageF gaussian_smooth(const ImageF& img, double sigma) {
  const auto kernel = gaussian_kernel(sigma);
  ImageF out = convolve_axis(img, kernel, 0);
  out = convolve_axis(out, kernel, 1);
  out = convolve_axis(out, kernel, 2);
  return out;
}

ImageV gradient(const ImageF& img) {
  ImageV out(img.dims(), Vec3{}, img.spacing(), img.origin());
  const IVec3 d = img.dims();
  const Vec3 inv2h{0.5 / img.spacing().x, 0.5 / img.spacing().y, 0.5 / img.spacing().z};
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        const double gx = (img.clamped(i + 1, j, k) - img.clamped(i - 1, j, k)) * inv2h.x;
        const double gy = (img.clamped(i, j + 1, k) - img.clamped(i, j - 1, k)) * inv2h.y;
        const double gz = (img.clamped(i, j, k + 1) - img.clamped(i, j, k - 1)) * inv2h.z;
        out(i, j, k) = {gx, gy, gz};
      }
    }
  }
  return out;
}

ImageF gradient_magnitude(const ImageF& img) {
  ImageV g = gradient(img);
  ImageF out(img.dims(), 0.0f, img.spacing(), img.origin());
  for (std::size_t i = 0; i < g.size(); ++i) {
    out.data()[i] = static_cast<float>(norm(g.data()[i]));
  }
  return out;
}

Vec3 sample_trilinear_vec(const ImageV& img, const Vec3& ijk) {
  const IVec3 d = img.dims();
  double x = ijk.x, y = ijk.y, z = ijk.z;
  x = x < 0 ? 0 : (x > d.x - 1 ? d.x - 1 : x);
  y = y < 0 ? 0 : (y > d.y - 1 ? d.y - 1 : y);
  z = z < 0 ? 0 : (z > d.z - 1 ? d.z - 1 : z);
  const int i0 = static_cast<int>(x), j0 = static_cast<int>(y), k0 = static_cast<int>(z);
  const int i1 = i0 + 1 < d.x ? i0 + 1 : i0;
  const int j1 = j0 + 1 < d.y ? j0 + 1 : j0;
  const int k1 = k0 + 1 < d.z ? k0 + 1 : k0;
  const double fx = x - i0, fy = y - j0, fz = z - k0;
  auto lerp = [](const Vec3& a, const Vec3& b, double t) { return a * (1 - t) + b * t; };
  const Vec3 c00 = lerp(img(i0, j0, k0), img(i1, j0, k0), fx);
  const Vec3 c10 = lerp(img(i0, j1, k0), img(i1, j1, k0), fx);
  const Vec3 c01 = lerp(img(i0, j0, k1), img(i1, j0, k1), fx);
  const Vec3 c11 = lerp(img(i0, j1, k1), img(i1, j1, k1), fx);
  return lerp(lerp(c00, c10, fy), lerp(c01, c11, fy), fz);
}

void add_rician_noise(ImageF& img, double sigma, Rng& rng) {
  NEURO_REQUIRE(sigma >= 0.0, "add_rician_noise: sigma must be non-negative");
  // NEURO_NONDET_OK(sentinel check: exact 0.0 means "noise disabled", not a computed value)
  if (sigma == 0.0) return;
  for (auto& v : img.data()) {
    const double a = static_cast<double>(v) + sigma * rng.normal();
    const double b = sigma * rng.normal();
    v = static_cast<float>(std::sqrt(a * a + b * b));
  }
}

void apply_intensity_drift(ImageF& img, double amplitude) {
  const IVec3 d = img.dims();
  for (int k = 0; k < d.z; ++k) {
    const double gain =
        1.0 + amplitude * std::cos(3.14159265358979323846 * k / std::max(1, d.z));
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        img(i, j, k) = static_cast<float>(img(i, j, k) * gain);
      }
    }
  }
}

ImageL dilate_label(const ImageL& labels, std::uint8_t label, int radius) {
  NEURO_REQUIRE(radius >= 0, "dilate_label: radius must be non-negative");
  ImageL current(labels.dims(), 0, labels.spacing(), labels.origin());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    current.data()[i] = labels.data()[i] == label ? 1 : 0;
  }
  const IVec3 d = labels.dims();
  for (int step = 0; step < radius; ++step) {
    ImageL next = current;
    for (int k = 0; k < d.z; ++k) {
      for (int j = 0; j < d.y; ++j) {
        for (int i = 0; i < d.x; ++i) {
          if (current(i, j, k)) continue;
          const bool touch = (i > 0 && current(i - 1, j, k)) ||
                             (i + 1 < d.x && current(i + 1, j, k)) ||
                             (j > 0 && current(i, j - 1, k)) ||
                             (j + 1 < d.y && current(i, j + 1, k)) ||
                             (k > 0 && current(i, j, k - 1)) ||
                             (k + 1 < d.z && current(i, j, k + 1));
          if (touch) next(i, j, k) = 1;
        }
      }
    }
    current = std::move(next);
  }
  return current;
}

ImageF resample_to_grid(const ImageF& img, IVec3 new_dims) {
  NEURO_REQUIRE(new_dims.x > 0 && new_dims.y > 0 && new_dims.z > 0,
                "resample_to_grid: dims must be positive");
  const IVec3 d = img.dims();
  // Preserve the physical extent: new_spacing * new_dims = spacing * dims.
  const Vec3 new_spacing{img.spacing().x * d.x / new_dims.x,
                         img.spacing().y * d.y / new_dims.y,
                         img.spacing().z * d.z / new_dims.z};
  ImageF out(new_dims, 0.0f, new_spacing, img.origin());
  for (int k = 0; k < new_dims.z; ++k) {
    for (int j = 0; j < new_dims.y; ++j) {
      for (int i = 0; i < new_dims.x; ++i) {
        const Vec3 p = out.voxel_to_physical(i, j, k);
        out(i, j, k) = static_cast<float>(sample_physical(img, p));
      }
    }
  }
  return out;
}

ImageF match_histogram(const ImageF& moving, const ImageF& reference, int bins) {
  NEURO_REQUIRE(bins >= 2, "match_histogram: need at least 2 bins");
  auto range_of = [](const ImageF& im) {
    double lo = 1e300, hi = -1e300;
    for (const float v : im.data()) {
      lo = std::min(lo, static_cast<double>(v));
      hi = std::max(hi, static_cast<double>(v));
    }
    if (hi <= lo) hi = lo + 1.0;
    return std::pair<double, double>{lo, hi};
  };
  const auto [mlo, mhi] = range_of(moving);
  const auto [rlo, rhi] = range_of(reference);

  auto cdf_of = [&](const ImageF& im, double lo, double hi) {
    std::vector<double> hist(static_cast<std::size_t>(bins), 0.0);
    for (const float v : im.data()) {
      int b = static_cast<int>((v - lo) / (hi - lo) * bins);
      b = std::clamp(b, 0, bins - 1);
      hist[static_cast<std::size_t>(b)] += 1.0;
    }
    for (int b = 1; b < bins; ++b) {
      hist[static_cast<std::size_t>(b)] += hist[static_cast<std::size_t>(b) - 1];
    }
    for (auto& v : hist) v /= hist.back();
    return hist;
  };
  const auto moving_cdf = cdf_of(moving, mlo, mhi);
  const auto ref_cdf = cdf_of(reference, rlo, rhi);

  // Per-bin lookup: moving bin b (CDF value c) → reference intensity whose
  // CDF first reaches c.
  std::vector<float> lut(static_cast<std::size_t>(bins));
  int rb = 0;
  for (int b = 0; b < bins; ++b) {
    const double c = moving_cdf[static_cast<std::size_t>(b)];
    while (rb < bins - 1 && ref_cdf[static_cast<std::size_t>(rb)] < c) ++rb;
    lut[static_cast<std::size_t>(b)] =
        static_cast<float>(rlo + (rb + 0.5) / bins * (rhi - rlo));
  }

  ImageF out = moving;
  for (auto& v : out.data()) {
    int b = static_cast<int>((v - mlo) / (mhi - mlo) * bins);
    b = std::clamp(b, 0, bins - 1);
    v = lut[static_cast<std::size_t>(b)];
  }
  return out;
}

namespace {

template <typename Acc>
double masked_reduce(const ImageF& a, const ImageF& b, const ImageL* mask, Acc acc,
                     bool rms) {
  NEURO_REQUIRE(a.dims() == b.dims(), "difference: image dims mismatch");
  if (mask != nullptr) {
    NEURO_REQUIRE(a.dims() == mask->dims(), "difference: mask dims mismatch");
  }
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (mask != nullptr && mask->data()[i] == 0) continue;
    sum += acc(static_cast<double>(a.data()[i]) - static_cast<double>(b.data()[i]));
    ++n;
  }
  if (n == 0) return 0.0;
  const double mean = sum / static_cast<double>(n);
  return rms ? std::sqrt(mean) : mean;
}

}  // namespace

double mean_abs_difference(const ImageF& a, const ImageF& b, const ImageL* mask) {
  return masked_reduce(a, b, mask, [](double d) { return std::abs(d); }, false);
}

double rms_difference(const ImageF& a, const ImageF& b, const ImageL* mask) {
  return masked_reduce(a, b, mask, [](double d) { return d * d; }, true);
}

}  // namespace neuro

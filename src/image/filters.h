// Basic volumetric filters: separable Gaussian smoothing, central-difference
// gradients, and noise models. These feed the active-surface external forces
// and make the phantom's synthetic MR look like MR.
#pragma once

#include "base/rng.h"
#include "image/image3d.h"

namespace neuro {

/// Separable Gaussian smoothing with standard deviation `sigma` (in voxels).
/// Kernel radius is ceil(3*sigma); replicate boundary handling.
ImageF gaussian_smooth(const ImageF& img, double sigma);

/// Central-difference gradient in *physical* units (1/spacing applied).
ImageV gradient(const ImageF& img);

/// |gradient| as a scalar volume.
ImageF gradient_magnitude(const ImageF& img);

/// Adds Rician noise (the magnitude-MR noise model): each voxel becomes
/// sqrt((v + n1)^2 + n2^2) with n1, n2 ~ N(0, sigma^2). For v >> sigma this
/// approaches Gaussian noise; in air (v ~ 0) it produces the familiar
/// Rayleigh-distributed background.
void add_rician_noise(ImageF& img, double sigma, Rng& rng);

/// Multiplies the volume by a smooth multiplicative bias field
/// 1 + amplitude * cos(pi * z / dims.z), modelling the scan-to-scan intensity
/// drift the paper mentions when discussing its difference images (Fig. 4d).
void apply_intensity_drift(ImageF& img, double amplitude);

/// Binary morphology on label maps: true where `label` present within a
/// 6-neighbourhood `radius` (in voxels) — used to pad meshes and masks.
ImageL dilate_label(const ImageL& labels, std::uint8_t label, int radius);

/// Resamples a volume onto a new grid covering the same physical extent
/// (trilinear). Useful for resolution changes between acquisitions and for
/// feeding a coarser pipeline from a high-resolution scan.
ImageF resample_to_grid(const ImageF& img, IVec3 new_dims);

/// Histogram matching: monotonically remaps `moving`'s intensities so its
/// cumulative distribution matches `reference`'s (256-bin approximation).
/// Standardizes scan-to-scan intensity drift before intensity-based
/// processing (the variability the paper attributes its Fig. 4d residual to).
ImageF match_histogram(const ImageF& moving, const ImageF& reference, int bins = 256);

/// Mean of |a - b| over voxels where mask != 0 (mask may be empty = all).
double mean_abs_difference(const ImageF& a, const ImageF& b, const ImageL* mask = nullptr);

/// Root-mean-square difference over voxels where mask != 0.
double rms_difference(const ImageF& a, const ImageF& b, const ImageL* mask = nullptr);

}  // namespace neuro

// Volumetric image container.
//
// Image3D<T> is the substrate the whole pipeline stands on: MR intensity
// volumes (float), label maps (uint8), distance-transform channels (float)
// and displacement fields (Vec3) are all Image3D instances. Geometry follows
// the medical-imaging convention: voxel (i,j,k) sits at physical position
// origin + spacing * (i,j,k); all algorithms work in physical coordinates so
// meshes and images with different resolutions compose correctly.
#pragma once

#include <cstdint>
#include <vector>

#include "base/check.h"
#include "base/vec3.h"

namespace neuro {

/// Dense 3-D image with isotropic-or-not spacing and a physical origin.
template <typename T>
class Image3D {
 public:
  Image3D() = default;

  Image3D(IVec3 dims, T fill = T{}, Vec3 spacing = {1, 1, 1}, Vec3 origin = {0, 0, 0})
      : dims_(dims),
        spacing_(spacing),
        origin_(origin),
        data_(static_cast<std::size_t>(dims.x) * static_cast<std::size_t>(dims.y) *
                  static_cast<std::size_t>(dims.z),
              fill) {
    NEURO_REQUIRE(dims.x > 0 && dims.y > 0 && dims.z > 0,
                  "Image3D dims must be positive, got " << dims);
    NEURO_REQUIRE(spacing.x > 0 && spacing.y > 0 && spacing.z > 0,
                  "Image3D spacing must be positive");
  }

  [[nodiscard]] IVec3 dims() const { return dims_; }
  [[nodiscard]] Vec3 spacing() const { return spacing_; }
  [[nodiscard]] Vec3 origin() const { return origin_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] std::size_t index(int i, int j, int k) const {
    return static_cast<std::size_t>(i) +
           static_cast<std::size_t>(dims_.x) *
               (static_cast<std::size_t>(j) +
                static_cast<std::size_t>(dims_.y) * static_cast<std::size_t>(k));
  }

  [[nodiscard]] bool contains(int i, int j, int k) const {
    return i >= 0 && j >= 0 && k >= 0 && i < dims_.x && j < dims_.y && k < dims_.z;
  }
  [[nodiscard]] bool contains(const IVec3& v) const { return contains(v.x, v.y, v.z); }

  T& at(int i, int j, int k) {
    NEURO_CHECK_MSG(contains(i, j, k),
                    "Image3D::at out of bounds (" << i << ',' << j << ',' << k
                                                  << ") dims " << dims_);
    return data_[index(i, j, k)];
  }
  const T& at(int i, int j, int k) const {
    NEURO_CHECK_MSG(contains(i, j, k),
                    "Image3D::at out of bounds (" << i << ',' << j << ',' << k
                                                  << ") dims " << dims_);
    return data_[index(i, j, k)];
  }
  T& at(const IVec3& v) { return at(v.x, v.y, v.z); }
  const T& at(const IVec3& v) const { return at(v.x, v.y, v.z); }

  /// Unchecked access for hot loops that have already validated bounds.
  T& operator()(int i, int j, int k) { return data_[index(i, j, k)]; }
  const T& operator()(int i, int j, int k) const { return data_[index(i, j, k)]; }

  /// Clamped access: coordinates are clamped to the valid range, giving
  /// replicate-boundary semantics for filters.
  [[nodiscard]] const T& clamped(int i, int j, int k) const {
    i = i < 0 ? 0 : (i >= dims_.x ? dims_.x - 1 : i);
    j = j < 0 ? 0 : (j >= dims_.y ? dims_.y - 1 : j);
    k = k < 0 ? 0 : (k >= dims_.z ? dims_.z - 1 : k);
    return data_[index(i, j, k)];
  }

  [[nodiscard]] std::vector<T>& data() { return data_; }
  [[nodiscard]] const std::vector<T>& data() const { return data_; }

  /// Physical position of voxel center (i,j,k).
  [[nodiscard]] Vec3 voxel_to_physical(const Vec3& ijk) const {
    return {origin_.x + ijk.x * spacing_.x, origin_.y + ijk.y * spacing_.y,
            origin_.z + ijk.z * spacing_.z};
  }
  [[nodiscard]] Vec3 voxel_to_physical(int i, int j, int k) const {
    return voxel_to_physical(Vec3{static_cast<double>(i), static_cast<double>(j),
                                  static_cast<double>(k)});
  }

  /// Continuous voxel coordinates of a physical point.
  [[nodiscard]] Vec3 physical_to_voxel(const Vec3& p) const {
    return {(p.x - origin_.x) / spacing_.x, (p.y - origin_.y) / spacing_.y,
            (p.z - origin_.z) / spacing_.z};
  }

  /// Fills the whole volume with `value`.
  void fill(const T& value) { data_.assign(data_.size(), value); }

  /// True when dims, spacing and origin match `other` (data may differ).
  template <typename U>
  [[nodiscard]] bool same_grid(const Image3D<U>& other) const {
    return dims_ == other.dims() && spacing_ == other.spacing() &&
           origin_ == other.origin();
  }

 private:
  IVec3 dims_{0, 0, 0};
  Vec3 spacing_{1, 1, 1};
  Vec3 origin_{0, 0, 0};
  std::vector<T> data_;
};

using ImageF = Image3D<float>;
using ImageL = Image3D<std::uint8_t>;   ///< label map
using ImageV = Image3D<Vec3>;           ///< vector field

/// Trilinear interpolation at continuous voxel coordinates; coordinates are
/// clamped to the volume (replicate boundary). Only meaningful for arithmetic
/// pixel types.
template <typename T>
double sample_trilinear(const Image3D<T>& img, const Vec3& ijk) {
  const IVec3 d = img.dims();
  double x = ijk.x, y = ijk.y, z = ijk.z;
  x = x < 0 ? 0 : (x > d.x - 1 ? d.x - 1 : x);
  y = y < 0 ? 0 : (y > d.y - 1 ? d.y - 1 : y);
  z = z < 0 ? 0 : (z > d.z - 1 ? d.z - 1 : z);
  const int i0 = static_cast<int>(x), j0 = static_cast<int>(y), k0 = static_cast<int>(z);
  const int i1 = i0 + 1 < d.x ? i0 + 1 : i0;
  const int j1 = j0 + 1 < d.y ? j0 + 1 : j0;
  const int k1 = k0 + 1 < d.z ? k0 + 1 : k0;
  const double fx = x - i0, fy = y - j0, fz = z - k0;

  auto v = [&](int i, int j, int k) { return static_cast<double>(img(i, j, k)); };
  const double c00 = v(i0, j0, k0) * (1 - fx) + v(i1, j0, k0) * fx;
  const double c10 = v(i0, j1, k0) * (1 - fx) + v(i1, j1, k0) * fx;
  const double c01 = v(i0, j0, k1) * (1 - fx) + v(i1, j0, k1) * fx;
  const double c11 = v(i0, j1, k1) * (1 - fx) + v(i1, j1, k1) * fx;
  const double c0 = c00 * (1 - fy) + c10 * fy;
  const double c1 = c01 * (1 - fy) + c11 * fy;
  return c0 * (1 - fz) + c1 * fz;
}

/// Trilinear interpolation of a vector field at continuous voxel coordinates.
Vec3 sample_trilinear_vec(const ImageV& img, const Vec3& ijk);

/// Trilinear interpolation at a physical point.
template <typename T>
double sample_physical(const Image3D<T>& img, const Vec3& p) {
  return sample_trilinear(img, img.physical_to_voxel(p));
}

/// Nearest-neighbour sample at a physical point (for label maps).
template <typename T>
T sample_nearest(const Image3D<T>& img, const Vec3& p) {
  const Vec3 v = img.physical_to_voxel(p);
  const IVec3 d = img.dims();
  int i = static_cast<int>(v.x + 0.5), j = static_cast<int>(v.y + 0.5),
      k = static_cast<int>(v.z + 0.5);
  i = i < 0 ? 0 : (i >= d.x ? d.x - 1 : i);
  j = j < 0 ? 0 : (j >= d.y ? d.y - 1 : j);
  k = k < 0 ? 0 : (k >= d.z ? d.z - 1 : k);
  return img(i, j, k);
}

}  // namespace neuro

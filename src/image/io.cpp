#include "image/io.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>

namespace neuro {

namespace {

constexpr std::uint32_t kMagic = 0x4e564f4c;  // "NVOL"

struct Header {
  std::uint32_t magic;
  std::uint32_t elem;  // 1 = float32, 2 = uint8
  std::int32_t dims[3];
  double spacing[3];
  double origin[3];
};

template <typename T>
void write_impl(const std::string& path, const Image3D<T>& img, std::uint32_t elem) {
  std::ofstream f(path, std::ios::binary);
  NEURO_REQUIRE(f.good(), "write_volume: cannot open '" << path << "'");
  Header h{};
  h.magic = kMagic;
  h.elem = elem;
  h.dims[0] = img.dims().x;
  h.dims[1] = img.dims().y;
  h.dims[2] = img.dims().z;
  h.spacing[0] = img.spacing().x;
  h.spacing[1] = img.spacing().y;
  h.spacing[2] = img.spacing().z;
  h.origin[0] = img.origin().x;
  h.origin[1] = img.origin().y;
  h.origin[2] = img.origin().z;
  f.write(reinterpret_cast<const char*>(&h), sizeof(h));
  f.write(reinterpret_cast<const char*>(img.data().data()),
          static_cast<std::streamsize>(img.size() * sizeof(T)));
  NEURO_REQUIRE(f.good(), "write_volume: write failed for '" << path << "'");
}

template <typename T>
Image3D<T> read_impl(const std::string& path, std::uint32_t elem) {
  std::ifstream f(path, std::ios::binary);
  NEURO_REQUIRE(f.good(), "read_volume: cannot open '" << path << "'");
  Header h{};
  f.read(reinterpret_cast<char*>(&h), sizeof(h));
  NEURO_REQUIRE(f.good() && h.magic == kMagic, "read_volume: bad header in '" << path << "'");
  NEURO_REQUIRE(h.elem == elem, "read_volume: element type mismatch in '" << path << "'");
  Image3D<T> img({h.dims[0], h.dims[1], h.dims[2]}, T{},
                 {h.spacing[0], h.spacing[1], h.spacing[2]},
                 {h.origin[0], h.origin[1], h.origin[2]});
  f.read(reinterpret_cast<char*>(img.data().data()),
         static_cast<std::streamsize>(img.size() * sizeof(T)));
  NEURO_REQUIRE(f.good(), "read_volume: truncated data in '" << path << "'");
  return img;
}

}  // namespace

void write_volume(const std::string& path, const ImageF& img) { write_impl(path, img, 1); }
void write_volume(const std::string& path, const ImageL& img) { write_impl(path, img, 2); }
void write_volume(const std::string& path, const ImageV& img) { write_impl(path, img, 3); }
ImageF read_volume_f(const std::string& path) { return read_impl<float>(path, 1); }
ImageL read_volume_l(const std::string& path) { return read_impl<std::uint8_t>(path, 2); }
ImageV read_volume_v(const std::string& path) { return read_impl<Vec3>(path, 3); }

void write_slice_pgm(const std::string& path, const ImageF& img, int k, double lo,
                     double hi) {
  NEURO_REQUIRE(k >= 0 && k < img.dims().z, "write_slice_pgm: slice out of range");
  const IVec3 d = img.dims();
  if (lo >= hi) {
    lo = 1e300;
    hi = -1e300;
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        lo = std::min(lo, static_cast<double>(img(i, j, k)));
        hi = std::max(hi, static_cast<double>(img(i, j, k)));
      }
    }
    if (hi <= lo) hi = lo + 1.0;
  }
  std::ofstream f(path, std::ios::binary);
  NEURO_REQUIRE(f.good(), "write_slice_pgm: cannot open '" << path << "'");
  f << "P5\n" << d.x << ' ' << d.y << "\n255\n";
  for (int j = 0; j < d.y; ++j) {
    for (int i = 0; i < d.x; ++i) {
      double v = (static_cast<double>(img(i, j, k)) - lo) / (hi - lo);
      v = std::clamp(v, 0.0, 1.0);
      const char byte = static_cast<char>(static_cast<int>(v * 255.0 + 0.5));
      f.write(&byte, 1);
    }
  }
  NEURO_REQUIRE(f.good(), "write_slice_pgm: write failed for '" << path << "'");
}

}  // namespace neuro

// Minimal volume I/O.
//
// The on-disk format (".nvol") is a self-describing little-endian header
// (magic, element type, dims, spacing, origin) followed by raw voxels — the
// same idea as MetaImage, small enough to implement exactly and read from
// any scientific environment. PGM slice export exists so the example
// programs can emit Fig. 4-style 2-D slices viewable with stock tools.
#pragma once

#include <string>

#include "image/image3d.h"

namespace neuro {

/// Writes a float volume. Throws CheckError on I/O failure.
void write_volume(const std::string& path, const ImageF& img);
/// Writes a label volume.
void write_volume(const std::string& path, const ImageL& img);
/// Writes a displacement field (3 doubles per voxel) — lets a computed
/// deformation be stored during surgery and applied to further preoperative
/// volumes (fMRI, PET, …) as they are needed, the paper's stated use case.
void write_volume(const std::string& path, const ImageV& img);

/// Reads a float volume (element type must match).
ImageF read_volume_f(const std::string& path);
/// Reads a label volume (element type must match).
ImageL read_volume_l(const std::string& path);
/// Reads a displacement field.
ImageV read_volume_v(const std::string& path);

/// Writes axial slice k of a float volume as an 8-bit PGM, window-levelled to
/// [lo, hi] (pass lo >= hi to auto-window to the slice min/max).
void write_slice_pgm(const std::string& path, const ImageF& img, int k,
                     double lo = 0.0, double hi = 0.0);

}  // namespace neuro

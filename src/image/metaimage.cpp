#include "image/metaimage.h"

#include <fstream>
#include <map>
#include <sstream>

#include "base/check.h"

namespace neuro {

namespace {

std::string strip_mhd(std::string path) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".mhd") {
    path.resize(path.size() - 4);
  }
  return path;
}

std::string basename_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

template <typename T>
void write_impl(const std::string& path, const Image3D<T>& img,
                const char* element_type) {
  const std::string stem = strip_mhd(path);
  {
    std::ofstream mhd(stem + ".mhd");
    NEURO_REQUIRE(mhd.good(), "write_metaimage: cannot open '" << stem << ".mhd'");
    mhd << "ObjectType = Image\n";
    mhd << "NDims = 3\n";
    mhd << "BinaryData = True\n";
    mhd << "BinaryDataByteOrderMSB = False\n";
    mhd << "CompressedData = False\n";
    mhd << "DimSize = " << img.dims().x << ' ' << img.dims().y << ' ' << img.dims().z
        << "\n";
    mhd << "ElementSpacing = " << img.spacing().x << ' ' << img.spacing().y << ' '
        << img.spacing().z << "\n";
    mhd << "Offset = " << img.origin().x << ' ' << img.origin().y << ' '
        << img.origin().z << "\n";
    mhd << "ElementType = " << element_type << "\n";
    mhd << "ElementDataFile = " << basename_of(stem) << ".raw\n";
    NEURO_REQUIRE(mhd.good(), "write_metaimage: header write failed");
  }
  std::ofstream raw(stem + ".raw", std::ios::binary);
  NEURO_REQUIRE(raw.good(), "write_metaimage: cannot open '" << stem << ".raw'");
  raw.write(reinterpret_cast<const char*>(img.data().data()),
            static_cast<std::streamsize>(img.size() * sizeof(T)));
  NEURO_REQUIRE(raw.good(), "write_metaimage: raw write failed");
}

struct Header {
  IVec3 dims{0, 0, 0};
  Vec3 spacing{1, 1, 1};
  Vec3 origin{0, 0, 0};
  std::string element_type;
  std::string data_file;
};

Header parse_header(const std::string& mhd_path) {
  std::ifstream mhd(mhd_path);
  NEURO_REQUIRE(mhd.good(), "read_metaimage: cannot open '" << mhd_path << "'");
  Header h;
  std::string line;
  while (std::getline(mhd, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    auto trim = [](std::string s) {
      const auto b = s.find_first_not_of(" \t\r");
      const auto e = s.find_last_not_of(" \t\r");
      return b == std::string::npos ? std::string{} : s.substr(b, e - b + 1);
    };
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    std::istringstream vs(value);
    if (key == "NDims") {
      int n = 0;
      vs >> n;
      NEURO_REQUIRE(n == 3, "read_metaimage: only NDims = 3 supported, got " << n);
    } else if (key == "DimSize") {
      vs >> h.dims.x >> h.dims.y >> h.dims.z;
    } else if (key == "ElementSpacing") {
      vs >> h.spacing.x >> h.spacing.y >> h.spacing.z;
    } else if (key == "Offset" || key == "Origin" || key == "Position") {
      vs >> h.origin.x >> h.origin.y >> h.origin.z;
    } else if (key == "ElementType") {
      h.element_type = value;
    } else if (key == "ElementDataFile") {
      NEURO_REQUIRE(value != "LIST", "read_metaimage: file lists not supported");
      h.data_file = value;
    } else if (key == "CompressedData") {
      NEURO_REQUIRE(value == "False" || value == "false",
                    "read_metaimage: compressed data not supported");
    } else if (key == "BinaryDataByteOrderMSB") {
      NEURO_REQUIRE(value == "False" || value == "false",
                    "read_metaimage: big-endian data not supported");
    }
  }
  NEURO_REQUIRE(h.dims.x > 0 && h.dims.y > 0 && h.dims.z > 0,
                "read_metaimage: missing/invalid DimSize in '" << mhd_path << "'");
  NEURO_REQUIRE(!h.data_file.empty(),
                "read_metaimage: missing ElementDataFile in '" << mhd_path << "'");
  return h;
}

template <typename T>
Image3D<T> read_impl(const std::string& mhd_path, const char* expected_type) {
  const Header h = parse_header(mhd_path);
  NEURO_REQUIRE(h.element_type == expected_type,
                "read_metaimage: expected " << expected_type << ", file has "
                                            << h.element_type);
  // Data file is relative to the header's directory unless absolute.
  std::string data_path = h.data_file;
  if (!data_path.empty() && data_path.front() != '/') {
    const auto slash = mhd_path.find_last_of('/');
    if (slash != std::string::npos) {
      data_path = mhd_path.substr(0, slash + 1) + data_path;
    }
  }
  std::ifstream raw(data_path, std::ios::binary);
  NEURO_REQUIRE(raw.good(), "read_metaimage: cannot open data file '" << data_path
                                                                      << "'");
  Image3D<T> img(h.dims, T{}, h.spacing, h.origin);
  raw.read(reinterpret_cast<char*>(img.data().data()),
           static_cast<std::streamsize>(img.size() * sizeof(T)));
  NEURO_REQUIRE(raw.good(), "read_metaimage: truncated data in '" << data_path << "'");
  return img;
}

}  // namespace

void write_metaimage(const std::string& path, const ImageF& img) {
  write_impl(path, img, "MET_FLOAT");
}

void write_metaimage(const std::string& path, const ImageL& img) {
  write_impl(path, img, "MET_UCHAR");
}

ImageF read_metaimage_f(const std::string& mhd_path) {
  return read_impl<float>(mhd_path, "MET_FLOAT");
}

ImageL read_metaimage_l(const std::string& mhd_path) {
  return read_impl<std::uint8_t>(mhd_path, "MET_UCHAR");
}

}  // namespace neuro

// MetaImage (.mhd + .raw) reader/writer.
//
// The paper's lab worked in what became the ITK/3D Slicer ecosystem;
// MetaImage is that ecosystem's plain interchange format. Supporting it means
// volumes produced here load directly in Slicer/ITK tools and real MR data
// exported from them feeds this pipeline. Scope: 3-D, MET_FLOAT and
// MET_UCHAR, raw (uncompressed) local data files — the common denominator.
#pragma once

#include <string>

#include "image/image3d.h"

namespace neuro {

/// Writes `img` as `<path>.mhd` + `<path>.raw` (pass `path` without
/// extension, or with ".mhd" which is stripped).
void write_metaimage(const std::string& path, const ImageF& img);
void write_metaimage(const std::string& path, const ImageL& img);

/// Reads a 3-D MET_FLOAT MetaImage.
ImageF read_metaimage_f(const std::string& mhd_path);
/// Reads a 3-D MET_UCHAR MetaImage.
ImageL read_metaimage_l(const std::string& mhd_path);

}  // namespace neuro

#include "image/transform.h"

#include <algorithm>
#include <cmath>

namespace neuro {

RigidTransform RigidTransform::inverse() const {
  // The inverse of y = R(x-c)+c+t is x = R^T(y-c-t)+c, i.e. a rigid transform
  // with rotation R^T and translation -R^T t about the same center. We keep
  // the Euler parameterization by extracting angles from R^T.
  const Mat3 R = rotation_zyx(rotation[0], rotation[1], rotation[2]);
  const Mat3 Ri = R.transposed();
  // ZYX Euler extraction: R = Rz Ry Rx with
  //   R(2,0) = -sin(ry), R(2,1) = sin(rx) cos(ry), R(1,0) = sin(rz) cos(ry).
  RigidTransform inv;
  const double sy = -Ri(2, 0);
  const double ry = std::asin(std::clamp(sy, -1.0, 1.0));
  const double cy = std::cos(ry);
  double rx = 0.0, rz = 0.0;
  if (std::abs(cy) > 1e-12) {
    rx = std::atan2(Ri(2, 1), Ri(2, 2));
    rz = std::atan2(Ri(1, 0), Ri(0, 0));
  } else {
    rx = std::atan2(-Ri(1, 2), Ri(1, 1));
  }
  inv.rotation = {rx, ry, rz};
  const Vec3 t{translation[0], translation[1], translation[2]};
  const Vec3 ti = Ri * (-t);
  inv.translation = {ti.x, ti.y, ti.z};
  inv.center = center;
  return inv;
}

ImageF resample_rigid(const ImageF& moving, const ImageF& fixed_grid,
                      const RigidTransform& transform, float outside) {
  ImageF out(fixed_grid.dims(), outside, fixed_grid.spacing(), fixed_grid.origin());
  const IVec3 d = out.dims();
  const IVec3 md = moving.dims();
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        const Vec3 p_fixed = out.voxel_to_physical(i, j, k);
        const Vec3 p_moving = transform.apply(p_fixed);
        const Vec3 v = moving.physical_to_voxel(p_moving);
        if (v.x < 0 || v.y < 0 || v.z < 0 || v.x > md.x - 1 || v.y > md.y - 1 ||
            v.z > md.z - 1) {
          continue;  // keep `outside`
        }
        out(i, j, k) = static_cast<float>(sample_trilinear(moving, v));
      }
    }
  }
  return out;
}

ImageL resample_rigid_labels(const ImageL& moving, const ImageL& fixed_grid,
                             const RigidTransform& transform, std::uint8_t outside) {
  ImageL out(fixed_grid.dims(), outside, fixed_grid.spacing(), fixed_grid.origin());
  const IVec3 d = out.dims();
  const IVec3 md = moving.dims();
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        const Vec3 p_fixed = out.voxel_to_physical(i, j, k);
        const Vec3 p_moving = transform.apply(p_fixed);
        const Vec3 v = moving.physical_to_voxel(p_moving);
        const int ii = static_cast<int>(v.x + 0.5);
        const int jj = static_cast<int>(v.y + 0.5);
        const int kk = static_cast<int>(v.z + 0.5);
        if (ii < 0 || jj < 0 || kk < 0 || ii >= md.x || jj >= md.y || kk >= md.z) {
          continue;
        }
        out(i, j, k) = moving(ii, jj, kk);
      }
    }
  }
  return out;
}

}  // namespace neuro

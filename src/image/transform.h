// Rigid transforms and resampling through them.
#pragma once

#include <array>

#include "base/mat3.h"
#include "image/image3d.h"

namespace neuro {

/// Rigid 6-dof transform y = R(rx,ry,rz) * (x - c) + c + t, rotating about a
/// fixed center c (typically the volume center, which keeps rotation and
/// translation parameters well-conditioned for the optimizer).
struct RigidTransform {
  std::array<double, 3> rotation{0, 0, 0};     ///< Euler angles rx, ry, rz (rad)
  std::array<double, 3> translation{0, 0, 0};  ///< physical units
  Vec3 center{0, 0, 0};

  [[nodiscard]] Vec3 apply(const Vec3& p) const {
    const Mat3 R = rotation_zyx(rotation[0], rotation[1], rotation[2]);
    return R * (p - center) + center +
           Vec3{translation[0], translation[1], translation[2]};
  }

  /// Inverse transform: x = R^T * (y - c - t) + c.
  [[nodiscard]] Vec3 apply_inverse(const Vec3& p) const {
    const Mat3 R = rotation_zyx(rotation[0], rotation[1], rotation[2]);
    return R.transposed() * (p - center - Vec3{translation[0], translation[1],
                                               translation[2]}) +
           center;
  }

  [[nodiscard]] RigidTransform inverse() const;

  /// Flat parameter view for the optimizer: [rx, ry, rz, tx, ty, tz].
  [[nodiscard]] std::array<double, 6> params() const {
    return {rotation[0], rotation[1], rotation[2], translation[0], translation[1],
            translation[2]};
  }
  static RigidTransform from_params(const std::array<double, 6>& p, const Vec3& center) {
    RigidTransform t;
    t.rotation = {p[0], p[1], p[2]};
    t.translation = {p[3], p[4], p[5]};
    t.center = center;
    return t;
  }
};

/// Resamples `moving` onto the grid of `fixed_grid` through `transform`
/// (mapping fixed-space points into moving space), trilinear interpolation,
/// `outside` value beyond the moving volume.
ImageF resample_rigid(const ImageF& moving, const ImageF& fixed_grid,
                      const RigidTransform& transform, float outside = 0.0f);

/// Nearest-neighbour variant for label maps.
ImageL resample_rigid_labels(const ImageL& moving, const ImageL& fixed_grid,
                             const RigidTransform& transform, std::uint8_t outside = 0);

}  // namespace neuro

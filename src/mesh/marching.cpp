#include "mesh/marching.h"

#include <array>
#include <map>

#include "base/check.h"
#include "image/distance.h"

namespace neuro::mesh {

namespace {

// The same two 5-tet cube decompositions the mesher uses (bit0=+x, bit1=+y,
// bit2=+z corners), so the two algorithms tile space identically.
constexpr int kTetsEven[5][4] = {
    {0, 1, 2, 4}, {3, 2, 1, 7}, {5, 4, 7, 1}, {6, 7, 4, 2}, {1, 2, 4, 7}};
constexpr int kTetsOdd[5][4] = {
    {1, 0, 3, 5}, {2, 3, 0, 6}, {4, 5, 6, 0}, {7, 6, 5, 3}, {0, 3, 5, 6}};

struct Builder {
  TriSurface surface;
  std::map<std::pair<long long, long long>, VertId> edge_vertices;

  VertId vertex_on_edge(long long id_a, long long id_b, const Vec3& pa,
                        const Vec3& pb, double sa, double sb) {
    auto key = id_a < id_b ? std::make_pair(id_a, id_b) : std::make_pair(id_b, id_a);
    const auto it = edge_vertices.find(key);
    if (it != edge_vertices.end()) return it->second;
    const double t = sa / (sa - sb);  // signs differ, so sa - sb != 0
    const VertId v = surface.vertices.end_id();
    surface.vertices.push_back(pa + t * (pb - pa));
    edge_vertices.emplace(key, v);
    return v;
  }

  void add_triangle(VertId a, VertId b, VertId c, const Vec3& toward_positive) {
    const Vec3& pa = surface.vertices[a];
    const Vec3& pb = surface.vertices[b];
    const Vec3& pc = surface.vertices[c];
    if (dot(cross(pb - pa, pc - pa), toward_positive) < 0.0) {
      surface.triangles.push_back({a, c, b});
    } else {
      surface.triangles.push_back({a, b, c});
    }
  }
};

}  // namespace

TriSurface marching_tetrahedra(const ImageF& field, double level, int stride) {
  NEURO_REQUIRE(stride >= 1, "marching_tetrahedra: stride must be >= 1");
  const IVec3 d = field.dims();
  const IVec3 np{(d.x - 1) / stride + 1, (d.y - 1) / stride + 1, (d.z - 1) / stride + 1};
  NEURO_REQUIRE(np.x >= 2 && np.y >= 2 && np.z >= 2,
                "marching_tetrahedra: stride too large for volume " << d);

  Builder builder;
  auto lattice_id = [&](int ix, int iy, int iz) {
    return (static_cast<long long>(iz) * np.y + iy) * np.x + ix;
  };

  std::array<long long, 8> corner_id;
  std::array<Vec3, 8> corner_pos;
  std::array<double, 8> corner_val;
  for (int cz = 0; cz + 1 < np.z; ++cz) {
    for (int cy = 0; cy + 1 < np.y; ++cy) {
      for (int cx = 0; cx + 1 < np.x; ++cx) {
        for (int b = 0; b < 8; ++b) {
          const int ix = cx + (b & 1), iy = cy + ((b >> 1) & 1), iz = cz + ((b >> 2) & 1);
          corner_id[static_cast<std::size_t>(b)] = lattice_id(ix, iy, iz);
          corner_pos[static_cast<std::size_t>(b)] =
              field.voxel_to_physical(ix * stride, iy * stride, iz * stride);
          corner_val[static_cast<std::size_t>(b)] =
              static_cast<double>(field(ix * stride, iy * stride, iz * stride)) -
              level;
        }
        const bool even = ((cx + cy + cz) & 1) == 0;
        const auto& tets = even ? kTetsEven : kTetsOdd;

        for (const auto& tet : tets) {
          // Split corners by sign (s >= 0 counts as positive).
          std::array<int, 4> neg{}, pos{};
          int nn = 0, npos = 0;
          for (const int c : tet) {
            if (corner_val[static_cast<std::size_t>(c)] < 0.0) {
              neg[static_cast<std::size_t>(nn++)] = c;
            } else {
              pos[static_cast<std::size_t>(npos++)] = c;
            }
          }
          if (nn == 0 || nn == 4) continue;

          Vec3 centroid_pos{}, centroid_neg{};
          for (int i = 0; i < npos; ++i) {
            centroid_pos += corner_pos[static_cast<std::size_t>(pos[static_cast<std::size_t>(i)])];
          }
          for (int i = 0; i < nn; ++i) {
            centroid_neg += corner_pos[static_cast<std::size_t>(neg[static_cast<std::size_t>(i)])];
          }
          const Vec3 toward_positive =
              centroid_pos / npos - centroid_neg / nn;

          auto edge_vertex = [&](int ca, int cb) {
            return builder.vertex_on_edge(
                corner_id[static_cast<std::size_t>(ca)],
                corner_id[static_cast<std::size_t>(cb)],
                corner_pos[static_cast<std::size_t>(ca)],
                corner_pos[static_cast<std::size_t>(cb)],
                corner_val[static_cast<std::size_t>(ca)],
                corner_val[static_cast<std::size_t>(cb)]);
          };

          if (nn == 1 || nn == 3) {
            // One isolated corner: a single triangle cuts its three edges.
            const int apex = nn == 1 ? neg[0] : pos[0];
            const auto& others = nn == 1 ? pos : neg;
            const int count = 3;
            std::array<VertId, 3> v{};
            for (int i = 0; i < count; ++i) {
              v[static_cast<std::size_t>(i)] =
                  edge_vertex(apex, others[static_cast<std::size_t>(i)]);
            }
            builder.add_triangle(v[0], v[1], v[2], toward_positive);
          } else {
            // 2/2 split: quad across four edges → two triangles.
            const int a0 = neg[0], a1 = neg[1], b0 = pos[0], b1 = pos[1];
            const VertId v00 = edge_vertex(a0, b0);
            const VertId v01 = edge_vertex(a0, b1);
            const VertId v10 = edge_vertex(a1, b0);
            const VertId v11 = edge_vertex(a1, b1);
            builder.add_triangle(v00, v01, v11, toward_positive);
            builder.add_triangle(v00, v11, v10, toward_positive);
          }
        }
      }
    }
  }
  return builder.surface;
}

TriSurface isosurface_from_mask(const ImageL& mask, int stride) {
  // Negative inside: the zero level sits on the mask boundary with sub-voxel
  // placement from the distance values.
  const ImageF sdf = signed_distance_to_label(mask, 1, 1e6);
  return marching_tetrahedra(sdf, 0.0, stride);
}

}  // namespace neuro::mesh

// Marching-tetrahedra isosurface extraction.
//
// The paper describes its volumetric mesher as "the volumetric counterpart of
// a marching tetrahedra surface generation algorithm" — this is that surface
// algorithm. The volume is covered by the same 5-tet lattice the mesher uses;
// within each tetrahedron the scalar field is interpolated linearly and the
// zero level set is extracted as one or two triangles with sub-voxel vertex
// positions. Compared to extract_boundary_surface (faces of the labeled
// mesh, voxel-staircase geometry), marching tetrahedra yields a smooth
// surface — useful for visualization and as a lower-bias active-surface
// initialization.
#pragma once

#include "image/image3d.h"
#include "mesh/tri_surface.h"

namespace neuro::mesh {

/// Extracts the `level` isosurface of a scalar volume (typically a signed
/// distance field with level 0). Vertices are in physical coordinates;
/// triangles are oriented so normals point toward increasing field values.
/// `stride` samples the lattice every n voxels (1 = full resolution).
/// The result has no mesh-node bookkeeping (it is not tied to a TetMesh).
[[nodiscard]] TriSurface marching_tetrahedra(const ImageF& field, double level = 0.0,
                               int stride = 1);

/// Convenience: smooth isosurface of a binary mask (signed distance + MT).
[[nodiscard]] TriSurface isosurface_from_mask(const ImageL& mask, int stride = 1);

}  // namespace neuro::mesh

#include "mesh/mesher.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "base/check.h"

namespace neuro::mesh {

namespace {

// Cube corners indexed by bits (bit0 = +x, bit1 = +y, bit2 = +z).
// Five-tet decomposition with two mirror variants; adjacent cubes of opposite
// parity share matching face diagonals, making the global mesh conforming.
constexpr int kTetsEven[5][4] = {
    {0, 1, 2, 4},  // corner 0
    {3, 2, 1, 7},  // corner 3
    {5, 4, 7, 1},  // corner 5
    {6, 7, 4, 2},  // corner 6
    {1, 2, 4, 7},  // central
};
constexpr int kTetsOdd[5][4] = {
    {1, 0, 3, 5},  // corner 1
    {2, 3, 0, 6},  // corner 2
    {4, 5, 6, 0},  // corner 4
    {7, 6, 5, 3},  // corner 7
    {0, 3, 5, 6},  // central
};

}  // namespace

TetMesh mesh_labeled_volume(const ImageL& labels, const MesherConfig& config) {
  NEURO_REQUIRE(config.stride >= 1, "mesher: stride must be >= 1");
  const IVec3 d = labels.dims();
  const int s = config.stride;
  // Number of lattice points per axis; cells span [i*s, (i+1)*s] voxels.
  const IVec3 np{(d.x - 1) / s + 1, (d.y - 1) / s + 1, (d.z - 1) / s + 1};
  const IVec3 nc{np.x - 1, np.y - 1, np.z - 1};
  NEURO_REQUIRE(nc.x >= 1 && nc.y >= 1 && nc.z >= 1,
                "mesher: stride too large for volume " << d);

  auto keep = [&](std::uint8_t l) {
    if (config.keep_labels.empty()) return l != 0;
    return std::find(config.keep_labels.begin(), config.keep_labels.end(), l) !=
           config.keep_labels.end();
  };
  auto label_at_voxel = [&](int vi, int vj, int vk) {
    return labels(std::min(vi, d.x - 1), std::min(vj, d.y - 1), std::min(vk, d.z - 1));
  };

  // Lattice node id (dense over the lattice) → compacted mesh node id.
  auto lattice_id = [&](int ix, int iy, int iz) {
    return (static_cast<long long>(iz) * np.y + iy) * np.x + ix;
  };
  std::unordered_map<long long, NodeId> node_map;
  TetMesh mesh;

  std::array<IVec3, 8> corner_voxel;
  std::array<long long, 8> corner_lid;
  for (int cz = 0; cz < nc.z; ++cz) {
    for (int cy = 0; cy < nc.y; ++cy) {
      for (int cx = 0; cx < nc.x; ++cx) {
        for (int b = 0; b < 8; ++b) {
          const int ix = cx + (b & 1), iy = cy + ((b >> 1) & 1), iz = cz + ((b >> 2) & 1);
          corner_voxel[static_cast<std::size_t>(b)] = {ix * s, iy * s, iz * s};
          corner_lid[static_cast<std::size_t>(b)] = lattice_id(ix, iy, iz);
        }
        const bool even = ((cx + cy + cz) & 1) == 0;
        const auto& tets = even ? kTetsEven : kTetsOdd;

        for (const auto& tet : tets) {
          // Centroid in voxel coordinates.
          Vec3 centroid{};
          for (const int c : tet) {
            centroid += to_vec3(corner_voxel[static_cast<std::size_t>(c)]);
          }
          centroid *= 0.25;
          const std::uint8_t centroid_label =
              label_at_voxel(static_cast<int>(centroid.x + 0.5),
                             static_cast<int>(centroid.y + 0.5),
                             static_cast<int>(centroid.z + 0.5));

          std::uint8_t tet_label = centroid_label;
          if (config.rule == MesherConfig::LabelRule::kMajority) {
            // Majority over 4 corners + centroid, centroid breaking ties.
            std::map<std::uint8_t, int> votes;
            votes[centroid_label] += 1;
            for (const int c : tet) {
              const IVec3 v = corner_voxel[static_cast<std::size_t>(c)];
              ++votes[label_at_voxel(v.x, v.y, v.z)];
            }
            int best = votes[centroid_label];
            for (const auto& [l, n] : votes) {
              if (n > best) {
                best = n;
                tet_label = l;
              }
            }
          }
          if (!keep(tet_label)) continue;

          std::array<NodeId, 4> ids{};
          for (std::size_t c = 0; c < 4; ++c) {
            const long long lid = corner_lid[static_cast<std::size_t>(tet[c])];
            auto it = node_map.find(lid);
            if (it == node_map.end()) {
              it = node_map.emplace(lid, mesh.nodes.end_id()).first;
              const IVec3 v = corner_voxel[static_cast<std::size_t>(tet[c])];
              mesh.nodes.push_back(labels.voxel_to_physical(v.x, v.y, v.z));
            }
            ids[c] = it->second;
          }
          // Enforce positive orientation (templates are consistent, but this
          // keeps the invariant independent of template bookkeeping).
          if (tet_volume(mesh.nodes[ids[0]], mesh.nodes[ids[1]], mesh.nodes[ids[2]],
                         mesh.nodes[ids[3]]) < 0.0) {
            std::swap(ids[1], ids[2]);
          }
          mesh.tets.push_back(ids);
          mesh.tet_labels.push_back(tet_label);
        }
      }
    }
  }

  // Renumber nodes into lattice (x-fastest) order so contiguous node ranges
  // are spatial slabs — this is what makes the paper's "equal node counts per
  // CPU" decomposition meaningful.
  std::vector<std::pair<long long, NodeId>> order;
  order.reserve(node_map.size());
  // NEURO_NONDET_OK(visit order is erased by the std::sort on the next line)
  for (const auto& [lid, id] : node_map) order.emplace_back(lid, id);
  std::sort(order.begin(), order.end());
  base::IdVector<NodeId, NodeId> remap(node_map.size());
  base::IdVector<NodeId, Vec3> new_nodes(node_map.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    remap[order[i].second] = NodeId{i};
    new_nodes[NodeId{i}] = mesh.nodes[order[i].second];
  }
  mesh.nodes = std::move(new_nodes);
  for (auto& tet : mesh.tets) {
    for (auto& n : tet) n = remap[n];
  }
  return mesh;
}

TetMesh mesh_with_target_nodes(const ImageL& labels, MesherConfig config,
                               int min_nodes, int max_stride) {
  NEURO_REQUIRE(min_nodes > 0 && max_stride >= 1, "mesh_with_target_nodes: bad args");
  for (int s = max_stride; s >= 1; --s) {
    config.stride = s;
    TetMesh mesh = mesh_labeled_volume(labels, config);
    if (mesh.num_nodes() >= min_nodes) return mesh;
  }
  config.stride = 1;
  return mesh_labeled_volume(labels, config);
}

}  // namespace neuro::mesh

// Tetrahedral mesh generation from labeled volumes.
//
// The paper implements "a tetrahedral mesh generator specifically suited for
// labeled 3D medical images … the volumetric counterpart of a marching
// tetrahedra surface generation algorithm" (its ref. [10]): the image is
// covered by a lattice of cubes, each cube is split into five tetrahedra with
// mirrored orientation on a checkerboard so neighbouring cubes share face
// diagonals (a fully connected, consistent mesh), and every tetrahedron is
// assigned the tissue label of the anatomy it samples, so "different
// biomechanical properties and parameters can easily be assigned to the
// different cells". The lattice stride controls resolution: mesh elements
// cover several image voxels, which is exactly how the paper keeps the
// equation count far below the 4e6 voxels of the scan.
#pragma once

#include <cstdint>
#include <vector>

#include "image/image3d.h"
#include "mesh/tet_mesh.h"

namespace neuro::mesh {

struct MesherConfig {
  int stride = 4;  ///< lattice step in voxels along each axis

  /// Labels to mesh; empty means "every non-zero label".
  std::vector<std::uint8_t> keep_labels;

  /// How a tet gets its label: from the voxel nearest its centroid, or by
  /// majority over its 4 corners + centroid (more robust on thin structures).
  enum class LabelRule { kCentroid, kMajority };
  LabelRule rule = LabelRule::kMajority;
};

/// Meshes the labeled volume. Node coordinates are physical. Tets are
/// positively oriented; nodes are numbered in lattice (x-fastest) order,
/// which gives the contiguous-slab partitions spatial coherence.
[[nodiscard]] TetMesh mesh_labeled_volume(const ImageL& labels, const MesherConfig& config);

/// Picks the largest stride (coarsest mesh) whose meshed node count is at
/// least `min_nodes`, scanning stride = max_stride … 1. Returns the mesh.
/// Used by the benches to hit the paper's equation counts (77,511 = 25,837
/// nodes; 253,308 = 84,436 nodes) on the phantom anatomy.
[[nodiscard]] TetMesh mesh_with_target_nodes(const ImageL& labels, MesherConfig config,
                               int min_nodes, int max_stride = 8);

}  // namespace neuro::mesh

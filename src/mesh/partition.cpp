#include "mesh/partition.h"

#include <algorithm>
#include <numeric>

#include "base/check.h"

namespace neuro::mesh {

Rank Partition::owner_of(NodeId n) const {
  // ranges are contiguous and sorted; binary search the upper bound.
  Rank lo{0};
  Rank hi{nranks - 1};
  while (lo < hi) {
    const Rank mid{(lo.value() + hi.value()) / 2};
    if (n < ranges[mid].second) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  NEURO_CHECK_MSG(ranges[lo].contains(n),
                  "owner_of: node " << n << " outside partition");
  return lo;
}

Partition partition_weighted(const std::vector<double>& node_weights, int nranks) {
  NEURO_REQUIRE(nranks >= 1, "partition: nranks must be >= 1");
  const int n = static_cast<int>(node_weights.size());
  NEURO_REQUIRE(n >= nranks, "partition: fewer nodes (" << n << ") than ranks ("
                                                        << nranks << ")");
  const double total = std::accumulate(node_weights.begin(), node_weights.end(), 0.0);

  Partition part;
  part.nranks = nranks;
  part.ranges.resize(static_cast<std::size_t>(nranks));

  double acc = 0.0;
  int begin = 0;
  for (Rank r{0}; r < Rank{nranks}; ++r) {
    // Each remaining rank must get at least one node.
    const int max_end = n - (nranks - 1 - r.value());
    const double target = total * (r.value() + 1) / nranks;
    int end = begin + 1;
    acc += node_weights[static_cast<std::size_t>(begin)];
    while (end < max_end && acc + node_weights[static_cast<std::size_t>(end)] / 2.0 <
                                target) {
      acc += node_weights[static_cast<std::size_t>(end)];
      ++end;
    }
    if (r == Rank{nranks - 1}) end = n;  // last rank takes the remainder
    part.ranges[r] = {NodeId{begin}, NodeId{end}};
    begin = end;
  }
  return part;
}

Partition partition_node_balanced(int num_nodes, int nranks) {
  std::vector<double> w(static_cast<std::size_t>(num_nodes), 1.0);
  return partition_weighted(w, nranks);
}

Partition partition_connectivity_balanced(const TetMesh& mesh, int nranks) {
  const base::IdVector<NodeId, int> counts = node_tet_counts(mesh);
  std::vector<double> w(counts.size());
  for (const NodeId n : counts.ids()) {
    w[n.index()] = static_cast<double>(counts[n]);
  }
  return partition_weighted(w, nranks);
}

Partition partition_free_node_balanced(const TetMesh& mesh,
                                       const std::vector<std::uint8_t>& fixed,
                                       int nranks) {
  NEURO_REQUIRE(static_cast<int>(fixed.size()) == mesh.num_nodes(),
                "partition_free_node_balanced: fixed-flag size mismatch");
  // Per-row Krylov work = vector operations (identical for every row) plus
  // matrix/preconditioner traffic (≈ zero for a substituted identity row).
  // For this matrix class the two parts are comparable, so a fixed node costs
  // about half a free node.
  std::vector<double> w(fixed.size());
  for (std::size_t i = 0; i < fixed.size(); ++i) {
    w[i] = fixed[i] ? 0.5 : 1.0;
  }
  return partition_weighted(w, nranks);
}

}  // namespace neuro::mesh

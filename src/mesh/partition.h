// Mesh decomposition for parallel assembly and solve.
//
// The paper's decomposition "is based on sending approximately equal numbers
// of mesh nodes to each CPU", and it attributes its imperfect scaling to two
// imbalances this creates: (1) nodes differ in connectivity, so equal node
// counts ≠ equal assembly work; (2) applying surface displacements as boundary
// conditions removes unknowns non-uniformly across CPUs, unbalancing the
// solve. Its future-work section proposes decompositions that account for
// both. We implement the paper's partitioner plus both proposed improvements
// so the ablation bench can quantify them (DESIGN.md experiment index).
//
// All partitioners produce contiguous node ranges (nodes are in spatial slab
// order from the mesher), which is also the row-block distribution of the
// stiffness matrix.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "base/strong_id.h"
#include "mesh/tet_mesh.h"

namespace neuro::mesh {

/// A contiguous-range node partition over `nranks` ranks.
struct Partition {
  int nranks = 1;
  base::IdVector<Rank, base::IdRange<NodeId>> ranges;  ///< [begin, end) per rank

  [[nodiscard]] Rank owner_of(NodeId n) const;
  [[nodiscard]] int nodes_of(Rank rank) const { return ranges[rank].size(); }
  [[nodiscard]] base::IdRange<Rank> rank_ids() const { return ranges.ids(); }
};

/// The paper's decomposition: equal node counts per rank.
[[nodiscard]] Partition partition_node_balanced(int num_nodes, int nranks);

/// Future-work variant 1: balances estimated assembly work, i.e. the number
/// of tetrahedra incident to each rank's nodes.
[[nodiscard]] Partition partition_connectivity_balanced(const TetMesh& mesh,
                                                        int nranks);

/// Future-work variant 2: balances the number of *free* (non-Dirichlet) nodes
/// per rank, equalizing solve-side work after boundary-condition substitution.
/// `fixed` flags Dirichlet nodes.
[[nodiscard]] Partition partition_free_node_balanced(
    const TetMesh& mesh, const std::vector<std::uint8_t>& fixed, int nranks);

/// Generic weighted contiguous partition (exposed for tests): cuts the node
/// sequence so each rank's weight sum approximates total/nranks.
[[nodiscard]] Partition partition_weighted(const std::vector<double>& node_weights,
                                           int nranks);

}  // namespace neuro::mesh

#include "mesh/refine.h"

#include <map>
#include <utility>

#include "base/check.h"

namespace neuro::mesh {

namespace {

/// Midpoint-node cache keyed by the (sorted) endpoint pair, so shared edges
/// produce one shared node — this is what keeps refinement conforming.
class MidpointCache {
 public:
  explicit MidpointCache(TetMesh& mesh) : mesh_(mesh) {}

  NodeId midpoint(NodeId a, NodeId b) {
    const auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    const NodeId id = mesh_.nodes.end_id();
    mesh_.nodes.push_back((mesh_.nodes[a] + mesh_.nodes[b]) * 0.5);
    cache_.emplace(key, id);
    return id;
  }

 private:
  TetMesh& mesh_;
  std::map<std::pair<NodeId, NodeId>, NodeId> cache_;
};

void emit(TetMesh& out, std::uint8_t label, NodeId a, NodeId b, NodeId c, NodeId d) {
  std::array<NodeId, 4> tet{a, b, c, d};
  if (tet_volume(out.nodes[a], out.nodes[b], out.nodes[c], out.nodes[d]) < 0.0) {
    std::swap(tet[1], tet[2]);
  }
  out.tets.push_back(tet);
  out.tet_labels.push_back(label);
}

}  // namespace

TetMesh refine_uniform(const TetMesh& mesh) {
  TetMesh out;
  out.nodes = mesh.nodes;
  out.tets.reserve(mesh.tets.size() * 8);
  out.tet_labels.reserve(mesh.tets.size() * 8);
  MidpointCache midpoints(out);

  for (const TetId t : mesh.tet_ids()) {
    const auto& tet = mesh.tets[t];
    const std::uint8_t label = mesh.tet_labels[t];
    const NodeId v0 = tet[0], v1 = tet[1], v2 = tet[2], v3 = tet[3];
    const NodeId m01 = midpoints.midpoint(v0, v1);
    const NodeId m02 = midpoints.midpoint(v0, v2);
    const NodeId m03 = midpoints.midpoint(v0, v3);
    const NodeId m12 = midpoints.midpoint(v1, v2);
    const NodeId m13 = midpoints.midpoint(v1, v3);
    const NodeId m23 = midpoints.midpoint(v2, v3);

    // Four corner tetrahedra.
    emit(out, label, v0, m01, m02, m03);
    emit(out, label, v1, m01, m12, m13);
    emit(out, label, v2, m02, m12, m23);
    emit(out, label, v3, m03, m13, m23);

    // Inner octahedron (m01, m02, m03, m12, m13, m23): split along the
    // shortest of its three diagonals (m01–m23, m02–m13, m03–m12).
    auto len2 = [&](NodeId a, NodeId b) {
      return norm2(out.nodes[a] - out.nodes[b]);
    };
    const double d0 = len2(m01, m23);
    const double d1 = len2(m02, m13);
    const double d2 = len2(m03, m12);
    if (d0 <= d1 && d0 <= d2) {
      emit(out, label, m01, m23, m02, m03);
      emit(out, label, m01, m23, m03, m13);
      emit(out, label, m01, m23, m13, m12);
      emit(out, label, m01, m23, m12, m02);
    } else if (d1 <= d0 && d1 <= d2) {
      emit(out, label, m02, m13, m01, m03);
      emit(out, label, m02, m13, m03, m23);
      emit(out, label, m02, m13, m23, m12);
      emit(out, label, m02, m13, m12, m01);
    } else {
      emit(out, label, m03, m12, m01, m02);
      emit(out, label, m03, m12, m02, m23);
      emit(out, label, m03, m12, m23, m13);
      emit(out, label, m03, m12, m13, m01);
    }
  }
  return out;
}

TetMesh refine_uniform(const TetMesh& mesh, int levels) {
  NEURO_REQUIRE(levels >= 0, "refine_uniform: negative level count");
  TetMesh out = mesh;
  for (int l = 0; l < levels; ++l) out = refine_uniform(out);
  return out;
}

}  // namespace neuro::mesh

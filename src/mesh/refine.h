// Uniform (red) tetrahedral refinement.
//
// The paper's Fig. 9 anticipates "an improved biomechanical model … may
// necessitate a higher resolution mesh, and hence a larger number of
// equations to solve". Besides re-meshing at a smaller lattice stride, the
// standard way to get there is uniform refinement: each tetrahedron splits
// into 8 children through its edge midpoints (4 corner tets + 4 from the
// inner octahedron, cut along one of its diagonals). Refinement preserves
// total volume exactly, keeps the mesh conforming, and multiplies the
// element count by 8.
#pragma once

#include "mesh/tet_mesh.h"

namespace neuro::mesh {

/// One level of uniform 1→8 refinement. Children inherit the parent's label.
/// The octahedron diagonal is chosen shortest-first, which bounds quality
/// degradation (Bey's refinement behaves identically on our lattice tets).
[[nodiscard]] TetMesh refine_uniform(const TetMesh& mesh);

/// `levels` applications of refine_uniform.
[[nodiscard]] TetMesh refine_uniform(const TetMesh& mesh, int levels);

}  // namespace neuro::mesh

#include "mesh/tet_mesh.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "base/mat3.h"

namespace neuro::mesh {

double tet_volume(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d) {
  return dot(b - a, cross(c - a, d - a)) / 6.0;
}

double tet_volume(const TetMesh& mesh, TetId t) {
  const auto& tet = mesh.tets[t];
  return tet_volume(mesh.nodes[tet[0]], mesh.nodes[tet[1]], mesh.nodes[tet[2]],
                    mesh.nodes[tet[3]]);
}

std::array<double, 4> barycentric(const Vec3& a, const Vec3& b, const Vec3& c,
                                  const Vec3& d, const Vec3& p) {
  const double v = tet_volume(a, b, c, d);
  NEURO_CHECK_MSG(std::abs(v) > 1e-300, "barycentric: degenerate tetrahedron");
  const double inv = 1.0 / v;
  return {tet_volume(p, b, c, d) * inv, tet_volume(a, p, c, d) * inv,
          tet_volume(a, b, p, d) * inv, tet_volume(a, b, c, p) * inv};
}

double tet_quality_radius_ratio(const Vec3& a, const Vec3& b, const Vec3& c,
                                const Vec3& d) {
  const double vol = std::abs(tet_volume(a, b, c, d));
  if (vol <= 0.0) return 0.0;

  // Face areas.
  auto area = [](const Vec3& p, const Vec3& q, const Vec3& r) {
    return 0.5 * norm(cross(q - p, r - p));
  };
  const double sa = area(b, c, d) + area(a, c, d) + area(a, b, d) + area(a, b, c);
  const double inradius = 3.0 * vol / sa;

  // Circumradius via the standard determinant-free formula.
  const Vec3 ba = b - a, ca = c - a, da = d - a;
  const Vec3 num = norm2(ba) * cross(ca, da) + norm2(ca) * cross(da, ba) +
                   norm2(da) * cross(ba, ca);
  const double circumradius = norm(num) / (12.0 * vol);
  if (circumradius <= 0.0) return 0.0;
  return 3.0 * inradius / circumradius;
}

base::IdVector<NodeId, std::vector<NodeId>> node_adjacency(const TetMesh& mesh) {
  base::IdVector<NodeId, std::vector<NodeId>> adj(
      static_cast<std::size_t>(mesh.num_nodes()));
  for (const auto& tet : mesh.tets) {
    for (const NodeId a : tet) {
      for (const NodeId b : tet) {
        adj[a].push_back(b);
      }
    }
  }
  for (auto& row : adj) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
  return adj;
}

base::IdVector<NodeId, int> node_tet_counts(const TetMesh& mesh) {
  base::IdVector<NodeId, int> counts(static_cast<std::size_t>(mesh.num_nodes()), 0);
  for (const auto& tet : mesh.tets) {
    for (const NodeId n : tet) ++counts[n];
  }
  return counts;
}

double total_volume(const TetMesh& mesh) {
  double v = 0.0;
  for (const TetId t : mesh.tet_ids()) v += tet_volume(mesh, t);
  return v;
}

Aabb bounds(const TetMesh& mesh) {
  Aabb box;
  for (const auto& n : mesh.nodes) box.expand(n);
  return box;
}

QualityStats quality_stats(const TetMesh& mesh) {
  QualityStats s;
  if (mesh.tets.empty()) return s;
  s.min_volume = 1e300;
  s.max_volume = -1e300;
  double sum_q = 0.0;
  for (const TetId t : mesh.tet_ids()) {
    const auto& tet = mesh.tets[t];
    const double q = tet_quality_radius_ratio(mesh.nodes[tet[0]], mesh.nodes[tet[1]],
                                              mesh.nodes[tet[2]], mesh.nodes[tet[3]]);
    const double v = tet_volume(mesh, t);
    s.min_quality = std::min(s.min_quality, q);
    sum_q += q;
    s.min_volume = std::min(s.min_volume, v);
    s.max_volume = std::max(s.max_volume, v);
  }
  s.mean_quality = sum_q / mesh.num_tets();
  return s;
}

}  // namespace neuro::mesh

// Unstructured tetrahedral mesh.
//
// The paper's FEM runs on a tetrahedral mesh generated directly from the
// labeled volume ("the volumetric counterpart of a marching tetrahedra
// surface generation algorithm", its ref. [10]); each tetrahedron carries the
// label of the anatomical structure it lies in so different biomechanical
// properties can be assigned per tissue. This header holds the mesh container
// and geometric queries; generation lives in mesher.h, decomposition in
// partition.h.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "base/strong_id.h"
#include "base/vec3.h"

namespace neuro::mesh {

/// Index of a mesh node (vertex) — NOT a dof; see fem/dof.h for the 3× node→dof
/// expansion.
using NodeId = base::StrongId<struct NodeIdTag>;
/// Index of a tetrahedron.
using TetId = base::StrongId<struct TetIdTag>;

/// Tetrahedral mesh with per-element tissue labels.
struct TetMesh {
  base::IdVector<NodeId, Vec3> nodes;                  ///< physical coordinates
  base::IdVector<TetId, std::array<NodeId, 4>> tets;   ///< positively oriented
  base::IdVector<TetId, std::uint8_t> tet_labels;      ///< tissue label per tet

  [[nodiscard]] int num_nodes() const { return static_cast<int>(nodes.size()); }
  [[nodiscard]] int num_tets() const { return static_cast<int>(tets.size()); }
  [[nodiscard]] base::IdRange<NodeId> node_ids() const { return nodes.ids(); }
  [[nodiscard]] base::IdRange<TetId> tet_ids() const { return tets.ids(); }
};

/// Signed volume of a tetrahedron (positive for positively oriented tets).
[[nodiscard]] double tet_volume(const Vec3& a, const Vec3& b, const Vec3& c,
                                const Vec3& d);

/// Signed volume of tet `t` of the mesh.
[[nodiscard]] double tet_volume(const TetMesh& mesh, TetId t);

/// Barycentric coordinates of point p in tet (a,b,c,d); all four sum to 1.
/// Values in [0,1] iff p lies inside.
[[nodiscard]] std::array<double, 4> barycentric(const Vec3& a, const Vec3& b,
                                                const Vec3& c, const Vec3& d,
                                                const Vec3& p);

/// Radius-ratio quality of a tet: 3 * inradius / circumradius, in (0, 1];
/// 1 for the regular tetrahedron, → 0 for slivers.
[[nodiscard]] double tet_quality_radius_ratio(const Vec3& a, const Vec3& b,
                                              const Vec3& c, const Vec3& d);

/// Node-to-node adjacency (including self), sorted per row. This is exactly
/// the block-sparsity pattern of the assembled stiffness matrix.
[[nodiscard]] base::IdVector<NodeId, std::vector<NodeId>> node_adjacency(
    const TetMesh& mesh);

/// Number of tets incident to each node — the per-node assembly work that
/// drives the paper's reported assembly load imbalance.
[[nodiscard]] base::IdVector<NodeId, int> node_tet_counts(const TetMesh& mesh);

/// Total mesh volume (sum of tet volumes).
[[nodiscard]] double total_volume(const TetMesh& mesh);

/// Axis-aligned bounds of all nodes.
[[nodiscard]] Aabb bounds(const TetMesh& mesh);

/// Quality summary over all tets.
struct QualityStats {
  double min_quality = 1.0;
  double mean_quality = 0.0;
  double min_volume = 0.0;
  double max_volume = 0.0;
};
[[nodiscard]] QualityStats quality_stats(const TetMesh& mesh);

}  // namespace neuro::mesh

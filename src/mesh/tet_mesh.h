// Unstructured tetrahedral mesh.
//
// The paper's FEM runs on a tetrahedral mesh generated directly from the
// labeled volume ("the volumetric counterpart of a marching tetrahedra
// surface generation algorithm", its ref. [10]); each tetrahedron carries the
// label of the anatomical structure it lies in so different biomechanical
// properties can be assigned per tissue. This header holds the mesh container
// and geometric queries; generation lives in mesher.h, decomposition in
// partition.h.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "base/vec3.h"

namespace neuro::mesh {

using NodeId = int;
using TetId = int;

/// Tetrahedral mesh with per-element tissue labels.
struct TetMesh {
  std::vector<Vec3> nodes;                    ///< physical coordinates
  std::vector<std::array<NodeId, 4>> tets;    ///< positively oriented
  std::vector<std::uint8_t> tet_labels;       ///< tissue label per tet

  [[nodiscard]] int num_nodes() const { return static_cast<int>(nodes.size()); }
  [[nodiscard]] int num_tets() const { return static_cast<int>(tets.size()); }
};

/// Signed volume of a tetrahedron (positive for positively oriented tets).
double tet_volume(const Vec3& a, const Vec3& b, const Vec3& c, const Vec3& d);

/// Signed volume of tet `t` of the mesh.
double tet_volume(const TetMesh& mesh, TetId t);

/// Barycentric coordinates of point p in tet (a,b,c,d); all four sum to 1.
/// Values in [0,1] iff p lies inside.
std::array<double, 4> barycentric(const Vec3& a, const Vec3& b, const Vec3& c,
                                  const Vec3& d, const Vec3& p);

/// Radius-ratio quality of a tet: 3 * inradius / circumradius, in (0, 1];
/// 1 for the regular tetrahedron, → 0 for slivers.
double tet_quality_radius_ratio(const Vec3& a, const Vec3& b, const Vec3& c,
                                const Vec3& d);

/// Node-to-node adjacency (including self), sorted per row. This is exactly
/// the block-sparsity pattern of the assembled stiffness matrix.
std::vector<std::vector<NodeId>> node_adjacency(const TetMesh& mesh);

/// Number of tets incident to each node — the per-node assembly work that
/// drives the paper's reported assembly load imbalance.
std::vector<int> node_tet_counts(const TetMesh& mesh);

/// Total mesh volume (sum of tet volumes).
double total_volume(const TetMesh& mesh);

/// Axis-aligned bounds of all nodes.
Aabb bounds(const TetMesh& mesh);

/// Quality summary over all tets.
struct QualityStats {
  double min_quality = 1.0;
  double mean_quality = 0.0;
  double min_volume = 0.0;
  double max_volume = 0.0;
};
QualityStats quality_stats(const TetMesh& mesh);

}  // namespace neuro::mesh

#include "mesh/tri_surface.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <tuple>

#include "base/check.h"

namespace neuro::mesh {

TriSurface extract_boundary_surface(const TetMesh& mesh,
                                    const std::vector<std::uint8_t>& labels) {
  auto keep = [&](TetId t) {
    return std::find(labels.begin(), labels.end(), mesh.tet_labels[t]) !=
           labels.end();
  };

  // Faces of a tet (i0,i1,i2,i3), each ordered so its normal points out of
  // the tet when the tet is positively oriented.
  static constexpr int kFaces[4][3] = {{1, 2, 3}, {0, 3, 2}, {0, 1, 3}, {0, 2, 1}};

  // Count occurrences of each face among kept tets; remember one oriented copy.
  std::map<std::tuple<NodeId, NodeId, NodeId>, std::pair<int, std::array<NodeId, 3>>>
      face_count;
  for (const TetId t : mesh.tet_ids()) {
    if (!keep(t)) continue;
    const auto& tet = mesh.tets[t];
    for (const auto& f : kFaces) {
      std::array<NodeId, 3> tri{tet[static_cast<std::size_t>(f[0])],
                                tet[static_cast<std::size_t>(f[1])],
                                tet[static_cast<std::size_t>(f[2])]};
      std::array<NodeId, 3> key = tri;
      std::sort(key.begin(), key.end());
      auto& entry = face_count[{key[0], key[1], key[2]}];
      ++entry.first;
      entry.second = tri;
    }
  }

  TriSurface surface;
  std::map<NodeId, VertId> node_to_vertex;
  for (const auto& [key, entry] : face_count) {
    if (entry.first != 1) continue;  // interior face
    std::array<VertId, 3> tri{};
    for (std::size_t c = 0; c < 3; ++c) {
      const NodeId n = entry.second[c];
      auto it = node_to_vertex.find(n);
      if (it == node_to_vertex.end()) {
        it = node_to_vertex.emplace(n, surface.vertices.end_id()).first;
        surface.vertices.push_back(mesh.nodes[n]);
        surface.mesh_nodes.push_back(n);
      }
      tri[c] = it->second;
    }
    surface.triangles.push_back(tri);
  }
  return surface;
}

base::IdVector<VertId, Vec3> vertex_normals(const TriSurface& surface) {
  base::IdVector<VertId, Vec3> normals(
      static_cast<std::size_t>(surface.num_vertices()));
  for (const auto& tri : surface.triangles) {
    const Vec3& a = surface.vertices[tri[0]];
    const Vec3& b = surface.vertices[tri[1]];
    const Vec3& c = surface.vertices[tri[2]];
    const Vec3 n = cross(b - a, c - a);  // magnitude = 2*area → area weighting
    for (const VertId v : tri) normals[v] += n;
  }
  for (auto& n : normals) n = normalized(n);
  return normals;
}

base::IdVector<VertId, std::vector<VertId>> surface_adjacency(
    const TriSurface& surface) {
  base::IdVector<VertId, std::vector<VertId>> adj(
      static_cast<std::size_t>(surface.num_vertices()));
  for (const auto& tri : surface.triangles) {
    for (int e = 0; e < 3; ++e) {
      const VertId a = tri[static_cast<std::size_t>(e)];
      const VertId b = tri[static_cast<std::size_t>((e + 1) % 3)];
      adj[a].push_back(b);
      adj[b].push_back(a);
    }
  }
  for (auto& row : adj) {
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
  return adj;
}

double surface_area(const TriSurface& surface) {
  double area = 0.0;
  for (const auto& tri : surface.triangles) {
    const Vec3& a = surface.vertices[tri[0]];
    const Vec3& b = surface.vertices[tri[1]];
    const Vec3& c = surface.vertices[tri[2]];
    area += 0.5 * norm(cross(b - a, c - a));
  }
  return area;
}

void write_obj(const std::string& path, const TriSurface& surface) {
  std::ofstream f(path);
  NEURO_REQUIRE(f.good(), "write_obj: cannot open '" << path << "'");
  for (const auto& v : surface.vertices) {
    f << "v " << v.x << ' ' << v.y << ' ' << v.z << '\n';
  }
  for (const auto& t : surface.triangles) {
    f << "f " << t[0] + 1 << ' ' << t[1] + 1 << ' ' << t[2] + 1 << '\n';
  }
  NEURO_REQUIRE(f.good(), "write_obj: write failed for '" << path << "'");
}

}  // namespace neuro::mesh

// Triangulated surface extracted from a tetrahedral mesh.
//
// The paper notes that "boundary surfaces of objects represented in the mesh
// can be extracted from the mesh as triangulated surfaces, which is convenient
// for running an active surface algorithm". Extraction keeps the originating
// mesh node of every surface vertex so active-surface displacements can be
// handed to the FEM stage as nodal boundary conditions without any search.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "base/strong_id.h"
#include "base/vec3.h"
#include "mesh/tet_mesh.h"

namespace neuro::mesh {

/// Index of a surface vertex — a different space from the tet-mesh NodeId it
/// originated from (TriSurface::mesh_nodes is the bridge).
using VertId = base::StrongId<struct VertIdTag>;
/// Index of a surface triangle.
using TriId = base::StrongId<struct TriIdTag>;

struct TriSurface {
  base::IdVector<VertId, Vec3> vertices;
  base::IdVector<TriId, std::array<VertId, 3>> triangles;  ///< outward-oriented
  base::IdVector<VertId, NodeId> mesh_nodes;  ///< originating tet-mesh node per
                                              ///< vertex (empty for
                                              ///< free-standing surfaces)

  [[nodiscard]] int num_vertices() const { return static_cast<int>(vertices.size()); }
  [[nodiscard]] int num_triangles() const { return static_cast<int>(triangles.size()); }
  [[nodiscard]] base::IdRange<VertId> vert_ids() const { return vertices.ids(); }
  [[nodiscard]] base::IdRange<TriId> tri_ids() const { return triangles.ids(); }
};

/// Extracts the boundary of the sub-mesh formed by tets whose label is in
/// `labels`: faces belonging to exactly one such tet. Triangles are oriented
/// outward (away from the kept region).
[[nodiscard]] TriSurface extract_boundary_surface(
    const TetMesh& mesh, const std::vector<std::uint8_t>& labels);

/// Area-weighted vertex normals (normalized).
[[nodiscard]] base::IdVector<VertId, Vec3> vertex_normals(const TriSurface& surface);

/// Vertex-to-vertex adjacency from triangle edges, sorted, no self-entries.
[[nodiscard]] base::IdVector<VertId, std::vector<VertId>> surface_adjacency(
    const TriSurface& surface);

/// Total surface area.
[[nodiscard]] double surface_area(const TriSurface& surface);

/// Writes a Wavefront OBJ (for the Fig. 5-style visualizations).
void write_obj(const std::string& path, const TriSurface& surface);

}  // namespace neuro::mesh

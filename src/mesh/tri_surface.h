// Triangulated surface extracted from a tetrahedral mesh.
//
// The paper notes that "boundary surfaces of objects represented in the mesh
// can be extracted from the mesh as triangulated surfaces, which is convenient
// for running an active surface algorithm". Extraction keeps the originating
// mesh node of every surface vertex so active-surface displacements can be
// handed to the FEM stage as nodal boundary conditions without any search.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "base/vec3.h"
#include "mesh/tet_mesh.h"

namespace neuro::mesh {

struct TriSurface {
  std::vector<Vec3> vertices;
  std::vector<std::array<int, 3>> triangles;  ///< outward-oriented
  std::vector<NodeId> mesh_nodes;  ///< originating tet-mesh node per vertex
                                   ///< (empty for free-standing surfaces)

  [[nodiscard]] int num_vertices() const { return static_cast<int>(vertices.size()); }
  [[nodiscard]] int num_triangles() const { return static_cast<int>(triangles.size()); }
};

/// Extracts the boundary of the sub-mesh formed by tets whose label is in
/// `labels`: faces belonging to exactly one such tet. Triangles are oriented
/// outward (away from the kept region).
TriSurface extract_boundary_surface(const TetMesh& mesh,
                                    const std::vector<std::uint8_t>& labels);

/// Area-weighted vertex normals (normalized).
std::vector<Vec3> vertex_normals(const TriSurface& surface);

/// Vertex-to-vertex adjacency from triangle edges, sorted, no self-entries.
std::vector<std::vector<int>> surface_adjacency(const TriSurface& surface);

/// Total surface area.
double surface_area(const TriSurface& surface);

/// Writes a Wavefront OBJ (for the Fig. 5-style visualizations).
void write_obj(const std::string& path, const TriSurface& surface);

}  // namespace neuro::mesh

#include "obs/flight_recorder.h"

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#include "base/check.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"

namespace neuro::obs {

namespace {

using detail::write_attrs_body;
using detail::write_json_double;
using detail::write_json_fixed3;
using detail::write_json_string;

const char* env_or_empty(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr ? value : "";
}

/// The bundle's build provenance, from this translation unit's own flags
/// (same convention as bench_micro's neuro_build_type context key).
const char* build_type_string() {
#if defined(NDEBUG) && defined(__OPTIMIZE__)
  return "release";
#else
  return "debug";
#endif
}

bool obs_compiled_in() {
#ifdef NEURO_OBS_DISABLED
  return false;
#else
  return true;
#endif
}

/// Serializes one ring event. Under redact_timing the ts/dur fields are
/// omitted entirely so deterministic workloads produce byte-identical
/// bundles (counter/attr values and ordering are already deterministic).
void write_event(std::ostream& os, const TraceEvent& event,
                 bool redact_timing) {
  os << R"({"name":)";
  write_json_string(os, event.name);
  os << R"(,"kind":")"
     << (event.kind == TraceEvent::Kind::kSpan ? "span" : "counter")
     << R"(","rank":)" << event.rank << R"(,"seq":)" << event.seq;
  if (!redact_timing) {
    os << R"(,"ts_us":)";
    write_json_fixed3(os, event.ts_us);
    if (event.kind == TraceEvent::Kind::kSpan) {
      os << R"(,"dur_us":)";
      write_json_fixed3(os, event.dur_us);
    }
  }
  if (event.kind == TraceEvent::Kind::kCounter) {
    os << R"(,"value":)";
    write_json_double(os, event.value);
  }
  if (!event.attrs.empty()) {
    os << R"(,"args":{)";
    write_attrs_body(os, event.attrs);
    os << '}';
  }
  os << '}';
}

/// Recovers the solver residual history from the ring: per-iteration spans
/// named "<solver>.iteration" carry iteration/residual attrs (krylov.cpp).
void write_residual_history(std::ostream& os,
                            const std::vector<TraceEvent>& events) {
  os << "[";
  bool first = true;
  for (const auto& event : events) {
    if (event.kind != TraceEvent::Kind::kSpan) continue;
    static constexpr std::string_view kSuffix = ".iteration";
    if (event.name.size() <= kSuffix.size() ||
        event.name.compare(event.name.size() - kSuffix.size(), kSuffix.size(),
                           kSuffix) != 0) {
      continue;
    }
    const Attr* iteration = nullptr;
    const Attr* residual = nullptr;
    for (const auto& attr : event.attrs) {
      if (attr.key == "iteration" && attr.kind == Attr::Kind::kInt) {
        iteration = &attr;
      } else if (attr.key == "residual" && attr.kind == Attr::Kind::kDouble) {
        residual = &attr;
      }
    }
    if (iteration == nullptr || residual == nullptr) continue;
    if (!first) os << ",\n";
    first = false;
    os << R"({"solver":)";
    write_json_string(
        os, event.name.substr(0, event.name.size() - kSuffix.size()));
    os << R"(,"rank":)" << event.rank << R"(,"iteration":)" << iteration->i
       << R"(,"residual":)";
    write_json_double(os, residual->d);
    os << '}';
  }
  os << "]";
}

void check_failure_bridge(const char* message) {
  DumpContext context;
  context.detail = message;
  recorder().dump(DumpTrigger::kCheckFailure, context);
}

volatile std::sig_atomic_t g_in_fatal_signal = 0;

void fatal_signal_bridge(int signum) {
  // Best effort only: allocation and locking below are not async-signal-safe,
  // but the process is dying anyway — a partial bundle beats none. Reentry
  // (a second signal while dumping) falls straight through to the default
  // handler.
  if (g_in_fatal_signal == 0) {
    g_in_fatal_signal = 1;
    DumpContext context;
    context.detail = "fatal signal";
    context.attr("signal", signum);
    recorder().dump(DumpTrigger::kFatalSignal, context);
  }
  std::signal(signum, SIG_DFL);
  std::raise(signum);
}

}  // namespace

std::string_view dump_trigger_name(DumpTrigger trigger) {
  switch (trigger) {
    case DumpTrigger::kManual: return "manual";
    case DumpTrigger::kDegradation: return "degradation";
    case DumpTrigger::kWatchdog: return "watchdog";
    case DumpTrigger::kCommFault: return "comm_fault";
    case DumpTrigger::kDeadlineMiss: return "deadline_miss";
    case DumpTrigger::kAdmissionStorm: return "admission_storm";
    case DumpTrigger::kCheckFailure: return "check_failure";
    case DumpTrigger::kFatalSignal: return "fatal_signal";
  }
  return "unknown";
}

DumpTrigger dump_trigger_from_status(base::StatusCode code,
                                     DumpTrigger fallback) {
  switch (code) {
    case base::StatusCode::kCommFault:
    case base::StatusCode::kUnavailable:
      return DumpTrigger::kCommFault;
    case base::StatusCode::kDeadlineExceeded:
      return DumpTrigger::kDeadlineMiss;
    case base::StatusCode::kSolverStagnated:
    case base::StatusCode::kSolverDiverged:
    case base::StatusCode::kNumericalInvalid:
      return DumpTrigger::kWatchdog;
    default:
      return fallback;
  }
}

void DumpContext::attr(std::string_view key, double value) {
  Attr a;
  a.key = key;
  a.kind = Attr::Kind::kDouble;
  a.d = value;
  attrs.push_back(std::move(a));
}

void DumpContext::attr(std::string_view key, std::int64_t value) {
  Attr a;
  a.key = key;
  a.kind = Attr::Kind::kInt;
  a.i = value;
  attrs.push_back(std::move(a));
}

void DumpContext::attr(std::string_view key, std::string_view value) {
  Attr a;
  a.key = key;
  a.kind = Attr::Kind::kString;
  a.s = value;
  attrs.push_back(std::move(a));
}

FlightRecorder::FlightRecorder(Tracer& tracer) : tracer_(tracer) {}

void FlightRecorder::arm(Options options) {
  options_ = std::move(options);
  tracer_.set_ring_capacity(options_.ring_capacity);
  tracer_.set_enabled(true);
  armed_.store(true, std::memory_order_release);
}

void FlightRecorder::adopt_sink(Options options) {
  options_ = std::move(options);
  options_.ring_capacity = tracer_.ring_capacity();
  armed_.store(true, std::memory_order_release);
}

void FlightRecorder::note(DumpTrigger trigger, const DumpContext& context) {
  metrics()
      .counter(std::string("obs.recorder.triggers.") +
               std::string(dump_trigger_name(trigger)))
      .add(1);
  Span span = tracer_.span("recorder.trigger");
  if (span.active()) {
    span.attr("trigger", dump_trigger_name(trigger));
    if (!context.detail.empty()) span.attr("detail", context.detail);
    for (const auto& a : context.attrs) {
      switch (a.kind) {
        case Attr::Kind::kDouble: span.attr(a.key, a.d); break;
        case Attr::Kind::kInt: span.attr(a.key, a.i); break;
        case Attr::Kind::kString: span.attr(a.key, a.s); break;
      }
    }
  }
  span.close();
}

std::string FlightRecorder::dump(DumpTrigger trigger,
                                 const DumpContext& context) {
  note(trigger, context);
  if (!armed() || options_.dump_dir.empty()) return "";
  // The whole dump runs under dump_mutex_: concurrent triggers must not
  // overlap their dump_ring() handshakes (the second would clear the
  // tracer's dump_pending_ flag out from under the first).
  base::MutexLock lock(dump_mutex_);
  if (dumps_written_ >= options_.max_dumps) {
    metrics().counter("obs.recorder.dumps_suppressed").add(1);
    return "";
  }
  ++dumps_written_;
  ++dump_sequence_;
  std::ostringstream name;
  name << "postmortem_";
  name.fill('0');
  name.width(4);
  name << dump_sequence_ << ".json";
  const std::string path = options_.dump_dir + "/" + name.str();
  std::error_code ec;
  std::filesystem::create_directories(options_.dump_dir, ec);
  std::ofstream out(path);
  if (!out) {
    metrics().counter("obs.recorder.dump_errors").add(1);
    return "";
  }
  write_bundle(out, trigger, context);
  metrics().counter("obs.recorder.dumps_written").add(1);
  return path;
}

void FlightRecorder::write_bundle(std::ostream& os, DumpTrigger trigger,
                                  const DumpContext& context) const {
  const Tracer::RingDump dump = tracer_.dump_ring();
  os << "{\n\"schema\":\"neuro.postmortem.v1\",\n";

  os << R"("trigger":{"kind":)";
  write_json_string(os, dump_trigger_name(trigger));
  os << R"(,"detail":)";
  write_json_string(os, context.detail);
  os << R"(,"attrs":{)";
  write_attrs_body(os, context.attrs);
  os << "}},\n";

  os << R"("provenance":{"build_type":")" << build_type_string()
     << R"(","obs_compiled_in":)" << (obs_compiled_in() ? "true" : "false")
     << R"(,"redact_timing":)" << (options_.redact_timing ? "true" : "false")
     << R"(,"env":{"NEURO_FAULT_INJECT":)";
  write_json_string(os, env_or_empty("NEURO_FAULT_INJECT"));
  os << R"(,"NEURO_TRACE":)";
  write_json_string(os, env_or_empty("NEURO_TRACE"));
  os << R"(,"NEURO_SEED":)";
  write_json_string(os, env_or_empty("NEURO_SEED"));
  os << "}},\n";

  os << R"("streams":[)";
  for (std::size_t i = 0; i < dump.streams.size(); ++i) {
    const auto& s = dump.streams[i];
    if (i > 0) os << ",\n";
    os << R"({"rank":)" << s.rank << R"(,"recorded":)" << s.recorded
       << R"(,"retained":)" << s.retained << R"(,"wrapped":)" << s.wrapped
       << R"(,"dropped":)" << s.dropped << "}";
  }
  os << "],\n";

  os << R"("ring":{"capacity":)" << dump.ring_capacity << R"(,"events":[)"
     << "\n";
  for (std::size_t i = 0; i < dump.events.size(); ++i) {
    if (i > 0) os << ",\n";
    write_event(os, dump.events[i], options_.redact_timing);
  }
  os << "\n]},\n";

  os << R"("metrics":)";
  metrics().write_json_array(os);
  os << ",\n";

  os << R"("residual_history":)";
  write_residual_history(os, dump.events);
  os << "\n}\n";
}

FlightRecorder& recorder() {
  static FlightRecorder* instance = [] {
    auto* rec = new FlightRecorder(global());
    if (postmortem_enabled_by_env()) {
      // global() already constructed in ring mode (trace.cpp consults
      // postmortem_enabled_by_env before any thread records), so only the
      // sink needs wiring — adopt_sink never touches the tracer, making
      // this safe even when the first recorder() call lands on a rank
      // thread while its siblings record.
      FlightRecorder::Options options;
      options.dump_dir = env_or_empty("NEURO_POSTMORTEM_DIR");
      rec->adopt_sink(std::move(options));
      const char* signals = std::getenv("NEURO_POSTMORTEM_SIGNALS");
      if (signals != nullptr && signals[0] == '1') install_fatal_signal_dump();
    }
    set_check_failure_hook(&check_failure_bridge);
    return rec;
  }();
  return *instance;
}

bool postmortem_enabled_by_env() {
  const char* dir = std::getenv("NEURO_POSTMORTEM_DIR");
  return dir != nullptr && dir[0] != '\0';
}

std::size_t postmortem_ring_capacity_from_env() {
  const char* env = std::getenv("NEURO_POSTMORTEM_RING");
  std::size_t capacity = 4096;
  if (env != nullptr && env[0] != '\0') {
    capacity = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }
  // The bundle validator's retention contract promises >= 1000 events per
  // rank; don't let an env typo silently void it.
  return capacity < 1024 ? 1024 : capacity;
}

void install_fatal_signal_dump() {
  std::signal(SIGSEGV, &fatal_signal_bridge);
  std::signal(SIGABRT, &fatal_signal_bridge);
  std::signal(SIGFPE, &fatal_signal_bridge);
}

}  // namespace neuro::obs

// Black-box flight recorder with triggered post-mortem bundles.
//
// The Tracer's append-and-cap streams suit batch runs that export at exit;
// a long-running SessionServer never reaches exit, so the FlightRecorder
// arms the tracer's ring mode (bounded per-thread rings retaining the last-N
// events indefinitely) and adds a triggered-dump path: when something goes
// wrong — a degradation rung above the full solve, a Krylov watchdog fire, a
// comm fault, a deadline miss, an admission rejection storm, a CheckError or
// a fatal signal — it writes a self-contained post-mortem bundle: the ring
// contents merged across ranks, a metrics snapshot, the triggering context,
// the solver residual history recovered from the ring, and build + seed
// provenance, as one JSON artifact (schema "neuro.postmortem.v1", validated
// by tools/obs/check_trace.py --bundle). docs/observability.md documents the
// bundle format and the ring quiescence contract.
//
// Arming:
//   * environment: NEURO_POSTMORTEM_DIR=<dir> arms the process-wide
//     recorder() at startup (the global tracer constructs directly in ring
//     mode, so no quiescent reconfiguration is needed);
//     NEURO_POSTMORTEM_RING overrides the default ring capacity.
//   * programmatic: FlightRecorder::arm() at a quiescent point (benches and
//     tests use this) — it reconfigures the tracer's ring and clears it.
//
// Dumping is cheap to request and rate-limited (Options::max_dumps); an
// unarmed recorder still counts triggers in the metrics registry so tests
// can observe trigger paths without touching the filesystem.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "base/mutex.h"
#include "base/status.h"
#include "base/thread_annotations.h"
#include "obs/trace.h"

namespace neuro::obs {

/// Why a post-mortem bundle was written.
enum class DumpTrigger : std::uint8_t {
  kManual,          ///< explicit request (CLI, tests)
  kDegradation,     ///< fem degradation ladder left the full solve
  kWatchdog,        ///< Krylov watchdog stop (divergence/stagnation/NaN)
  kCommFault,       ///< communicator fault surfaced to a request
  kDeadlineMiss,    ///< a request ran out of deadline budget
  kAdmissionStorm,  ///< consecutive admission rejections crossed threshold
  kCheckFailure,    ///< NEURO_CHECK fired (via base::set_check_failure_hook)
  kFatalSignal,     ///< best-effort dump from a fatal-signal handler
};

/// Stable lower_snake_case trigger name as written into bundles.
[[nodiscard]] std::string_view dump_trigger_name(DumpTrigger trigger);

/// Maps a failure Status to the trigger class it evidences: comm faults,
/// deadline misses and solver-stop codes get their own class; anything else
/// reports as `fallback`.
[[nodiscard]] DumpTrigger dump_trigger_from_status(base::StatusCode code,
                                                   DumpTrigger fallback);

/// Free-form context attached to a dump by the triggering site (session and
/// request ids, the degradation rung chosen, the fault seed, ...). Attrs
/// reuse the trace Attr type so values serialize identically to span args.
struct DumpContext {
  std::string detail;       ///< one-line human summary of what happened
  std::vector<Attr> attrs;  ///< structured trigger context

  void attr(std::string_view key, double value);
  void attr(std::string_view key, std::int64_t value);
  void attr(std::string_view key, int value) {
    attr(key, static_cast<std::int64_t>(value));
  }
  void attr(std::string_view key, std::string_view value);
};

class FlightRecorder {
 public:
  struct Options {
    /// Ring capacity handed to Tracer::set_ring_capacity on arm(). The
    /// default comfortably exceeds the 1000-events-per-rank post-mortem
    /// retention contract.
    std::size_t ring_capacity = 4096;
    /// Directory for postmortem_NNNN.json artifacts; empty = record-only
    /// (rings run, triggers count, nothing is written).
    std::string dump_dir;
    /// Bundles written before further dumps are suppressed (counted in
    /// obs.recorder.dumps_suppressed). Keeps a flapping service from
    /// filling the disk with near-identical bundles.
    std::size_t max_dumps = 8;
    /// Omits timestamps/durations from bundle events so that two runs of a
    /// deterministic workload serialize byte-identically (timing is the one
    /// sanctioned nondeterminism; cf. the determinism CI job's
    /// `grep -v seconds`). Dump ordering is unaffected.
    bool redact_timing = false;
  };

  /// A recorder over `tracer` (tests use a local tracer; production code
  /// uses recorder(), which wraps the global tracer).
  explicit FlightRecorder(Tracer& tracer);

  /// Arms the recorder: switches the tracer into ring mode (clearing it),
  /// enables recording, and remembers the dump sink. Quiescent only — no
  /// thread may be recording into `tracer` during the switch.
  void arm(Options options);
  /// Like arm() but assumes the tracer is already in ring mode and enabled
  /// (the NEURO_POSTMORTEM_DIR path constructs the global tracer that way):
  /// only wires the dump sink, never touches the tracer, so it is safe even
  /// while other threads record.
  void adopt_sink(Options options);
  /// True once arm() ran (or the env path configured a sink).
  [[nodiscard]] bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// Records a "recorder.trigger" event into the ring (so the bundle that
  /// eventually gets written contains the trigger itself) and bumps the
  /// obs.recorder.triggers.<name> metrics counter. Safe from any thread,
  /// armed or not; never writes a file.
  void note(DumpTrigger trigger, const DumpContext& context);

  /// note() + write one post-mortem bundle to dump_dir (rate-limited; no-op
  /// file-wise when unarmed or dump_dir is empty). Safe while other threads
  /// record — ring dumping parks writers per the quiescence contract.
  /// Returns the artifact path, or empty when nothing was written.
  std::string dump(DumpTrigger trigger, const DumpContext& context)
      NEURO_EXCLUDES(dump_mutex_);

  /// Serializes one bundle for the current ring/metrics state without
  /// touching the filesystem (tests and the CLI use this directly).
  void write_bundle(std::ostream& os, DumpTrigger trigger,
                    const DumpContext& context) const;

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  Tracer& tracer_;
  std::atomic<bool> armed_{false};
  Options options_;
  mutable base::Mutex dump_mutex_;
  std::size_t dumps_written_ NEURO_GUARDED_BY(dump_mutex_) = 0;
  std::uint64_t dump_sequence_ NEURO_GUARDED_BY(dump_mutex_) = 0;
};

/// The process-wide recorder over the global tracer. First use installs the
/// base::set_check_failure_hook bridge; when NEURO_POSTMORTEM_DIR is set the
/// recorder starts armed with that sink (and NEURO_POSTMORTEM_SIGNALS=1
/// additionally installs best-effort fatal-signal handlers).
FlightRecorder& recorder();

/// True when NEURO_POSTMORTEM_DIR names a dump directory.
[[nodiscard]] bool postmortem_enabled_by_env();
/// NEURO_POSTMORTEM_RING (default 4096, clamped to >= 1024 so the per-rank
/// retention contract of the bundle validator always holds).
[[nodiscard]] std::size_t postmortem_ring_capacity_from_env();

/// Installs std::signal handlers (SIGSEGV, SIGABRT, SIGFPE) that write a
/// best-effort kFatalSignal bundle through recorder() and re-raise. Not
/// async-signal-safe in the strict sense — a last-resort diagnostic, not a
/// recovery path; see docs/observability.md.
void install_fatal_signal_dump();

}  // namespace neuro::obs

// Shared JSON serialization helpers for the obs exporters (Chrome trace,
// post-mortem bundles, service snapshots). Numeric values round-trip through
// max_digits10 so a residual read back from an artifact equals the one the
// solver saw; timestamps use fixed microsecond precision to keep artifacts
// compact and diffable.
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace neuro::obs::detail {

/// Minimal JSON string escaping (quotes, backslash, control characters).
inline void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(c)) << std::dec
             << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Full-precision double (attribute values, counter samples, residuals).
inline void write_json_double(std::ostream& os, double value) {
  std::ostringstream num;
  num << std::setprecision(17) << value;
  os << num.str();
}

/// Fixed 3-decimal value (microsecond timestamps and durations).
inline void write_json_fixed3(std::ostream& os, double value) {
  std::ostringstream num;
  num << std::fixed << std::setprecision(3) << value;
  os << num.str();
}

/// One attribute value in its native JSON type.
inline void write_attr_value(std::ostream& os, const Attr& attr) {
  switch (attr.kind) {
    case Attr::Kind::kDouble:
      write_json_double(os, attr.d);
      break;
    case Attr::Kind::kInt:
      os << attr.i;
      break;
    case Attr::Kind::kString:
      write_json_string(os, attr.s);
      break;
  }
}

/// An attribute list as a JSON object body: `"k1":v1,"k2":v2`.
inline void write_attrs_body(std::ostream& os, const std::vector<Attr>& attrs) {
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) os << ',';
    write_json_string(os, attrs[i].key);
    os << ':';
    write_attr_value(os, attrs[i]);
  }
}

}  // namespace neuro::obs::detail

#include "obs/metrics.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace neuro::obs {

namespace {

/// Doubles exported with max_digits10 so NDJSON round-trips exactly.
void write_double(std::ostream& os, double v) {
  std::ostringstream num;
  num << std::setprecision(17) << v;
  os << num.str();
}

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_edges)
    : edges_(std::move(upper_edges)),
      counts_(std::make_unique<std::atomic<std::int64_t>[]>(edges_.size())) {
  for (std::size_t i = 0; i < edges_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(double value) {
  // First edge >= value, "le"-inclusive; past the last edge is overflow.
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), value);
  if (it == edges_.end()) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
  } else {
    counts_[static_cast<std::size_t>(it - edges_.begin())].fetch_add(
        1, std::memory_order_relaxed);
  }
  total_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::reset() {
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  overflow_.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  base::MutexLock lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string(name), Entry{}).first;
  }
  if (it->second.counter == nullptr) {
    it->second.counter = std::make_unique<Counter>();
  }
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  base::MutexLock lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string(name), Entry{}).first;
  }
  if (it->second.gauge == nullptr) {
    it->second.gauge = std::make_unique<Gauge>();
  }
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_edges) {
  base::MutexLock lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    it = entries_.emplace(std::string(name), Entry{}).first;
  }
  if (it->second.histogram == nullptr) {
    it->second.histogram = std::make_unique<Histogram>(std::move(upper_edges));
  }
  return *it->second.histogram;
}

void MetricsRegistry::write_ndjson(std::ostream& os) const {
  base::MutexLock lock(mutex_);
  for (const auto& [name, entry] : entries_) {
    if (entry.counter != nullptr) {
      os << R"({"name":)";
      write_json_string(os, name);
      os << R"(,"type":"counter","value":)" << entry.counter->value() << "}\n";
    }
    if (entry.gauge != nullptr) {
      os << R"({"name":)";
      write_json_string(os, name);
      os << R"(,"type":"gauge","value":)";
      write_double(os, entry.gauge->value());
      os << "}\n";
    }
    if (entry.histogram != nullptr) {
      const Histogram& h = *entry.histogram;
      os << R"({"name":)";
      write_json_string(os, name);
      os << R"(,"type":"histogram","buckets":[)";
      for (std::size_t i = 0; i < h.bucket_count(); ++i) {
        if (i > 0) os << ',';
        os << R"({"le":)";
        write_double(os, h.upper_edge(i));
        os << R"(,"count":)" << h.count_in_bucket(i) << '}';
      }
      os << R"(],"overflow":)" << h.overflow_count() << R"(,"count":)"
         << h.total_count() << R"(,"sum":)";
      write_double(os, h.sum());
      os << "}\n";
    }
  }
}

void MetricsRegistry::write_json_array(std::ostream& os) const {
  std::ostringstream ndjson;
  write_ndjson(ndjson);
  const std::string lines = ndjson.str();
  os << "[";
  bool first = true;
  std::size_t begin = 0;
  while (begin < lines.size()) {
    std::size_t end = lines.find('\n', begin);
    if (end == std::string::npos) end = lines.size();
    if (end > begin) {
      if (!first) os << ",\n";
      first = false;
      os << lines.substr(begin, end - begin);
    }
    begin = end + 1;
  }
  os << "]";
}

std::size_t MetricsRegistry::size() const {
  base::MutexLock lock(mutex_);
  std::size_t n = 0;
  for (const auto& [name, entry] : entries_) {
    (void)name;
    n += (entry.counter != nullptr ? 1u : 0u) +
         (entry.gauge != nullptr ? 1u : 0u) +
         (entry.histogram != nullptr ? 1u : 0u);
  }
  return n;
}

void MetricsRegistry::reset_values() {
  base::MutexLock lock(mutex_);
  for (auto& [name, entry] : entries_) {
    (void)name;
    if (entry.counter != nullptr) entry.counter->reset();
    if (entry.gauge != nullptr) entry.gauge->reset();
    if (entry.histogram != nullptr) entry.histogram->reset();
  }
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace neuro::obs

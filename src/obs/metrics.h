// Process-wide metrics: counters, gauges, fixed-bucket histograms, NDJSON
// export (docs/observability.md). Complements obs::Tracer — the trace answers
// "when and where did time go", metrics answer "how often and how much" and
// survive as one small machine-readable file per run.
//
// All instruments are lock-free on the update path (atomics); the registry
// takes a mutex only to create or look up an instrument, so hot loops should
// capture the reference once. Export is deterministic: instruments sorted by
// name, one JSON object per line.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace neuro::obs {

/// Monotonically increasing integer count (events, retries, iterations).
class Counter {
 public:
  void add(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-written floating-point value (a level, not a rate).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations with
/// value <= upper_edges[i] (first matching edge wins, Prometheus "le"
/// convention); larger observations land in the overflow bucket. Edges are
/// fixed at construction and must be strictly increasing.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_edges);

  void observe(double value);
  void reset();

  [[nodiscard]] std::size_t bucket_count() const { return edges_.size(); }
  [[nodiscard]] double upper_edge(std::size_t i) const { return edges_[i]; }
  [[nodiscard]] std::int64_t count_in_bucket(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t overflow_count() const {
    return overflow_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t total_count() const {
    return total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> edges_;
  std::unique_ptr<std::atomic<std::int64_t>[]> counts_;
  std::atomic<std::int64_t> overflow_{0};
  std::atomic<std::int64_t> total_{0};
  std::atomic<double> sum_{0.0};
};

/// Owns named instruments. Lookup creates on first use and returns a stable
/// reference; re-looking-up an existing name returns the same instrument (a
/// histogram's edges are fixed by whoever created it first).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name) NEURO_EXCLUDES(mutex_);
  [[nodiscard]] Gauge& gauge(std::string_view name) NEURO_EXCLUDES(mutex_);
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::vector<double> upper_edges)
      NEURO_EXCLUDES(mutex_);

  /// One JSON object per line, instruments sorted by name:
  ///   {"name":...,"type":"counter","value":N}
  ///   {"name":...,"type":"gauge","value":X}
  ///   {"name":...,"type":"histogram","buckets":[{"le":E,"count":N},...],
  ///    "overflow":N,"count":N,"sum":X}
  void write_ndjson(std::ostream& os) const NEURO_EXCLUDES(mutex_);

  /// The same entries as write_ndjson, joined into one JSON array. The
  /// flight recorder's post-mortem bundles and the service's live snapshots
  /// embed their metrics section with this.
  void write_json_array(std::ostream& os) const NEURO_EXCLUDES(mutex_);

  /// Number of registered instruments.
  [[nodiscard]] std::size_t size() const NEURO_EXCLUDES(mutex_);

  /// Zeroes every instrument's value without removing any entry, so
  /// references captured before the reset stay valid (the registry never
  /// deletes instruments). This is what makes per-run NDJSON exports from the
  /// process-wide registry comparable: reset, run, export — two identical
  /// runs must then produce byte-identical files (tests/determinism_test.cpp).
  void reset_values() NEURO_EXCLUDES(mutex_);

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  // mutex_ guards the instrument map only. The Counter/Gauge/Histogram
  // objects it owns are annotation-exempt by design: their update paths are
  // lock-free relaxed atomics (the whole point of capturing the reference
  // once outside hot loops), and entries are never removed, so a returned
  // reference stays valid without the lock.
  mutable base::Mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_ NEURO_GUARDED_BY(mutex_);
};

/// The process-wide registry used by the hot-path instrumentation. Always
/// live (metric updates are cheap enough to leave unconditional); tools decide
/// whether to export it.
MetricsRegistry& metrics();

}  // namespace neuro::obs

#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

namespace neuro::obs {

namespace {

thread_local int t_thread_rank = -1;

/// Maps a rank to its Chrome-trace thread id: the main thread is tid 0,
/// rank r is tid r+1, so every rank gets its own Perfetto track.
int tid_of_rank(int rank) { return rank + 1; }

/// Minimal JSON string escaping (quotes, backslash, control characters).
void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(c)) << std::dec
             << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Attribute values round-trip through max_digits10 so a residual read back
/// from the trace equals the one the solver saw.
void write_attr_value(std::ostream& os, const Attr& attr) {
  switch (attr.kind) {
    case Attr::Kind::kDouble: {
      std::ostringstream num;
      num << std::setprecision(17) << attr.d;
      os << num.str();
      break;
    }
    case Attr::Kind::kInt:
      os << attr.i;
      break;
    case Attr::Kind::kString:
      write_json_string(os, attr.s);
      break;
  }
}

void write_timestamp(std::ostream& os, double us) {
  std::ostringstream num;
  num << std::fixed << std::setprecision(3) << us;
  os << num.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// Span

Span::Span(Tracer* tracer, std::string_view name, bool timed)
    : tracer_(tracer), timed_(timed) {
  if (tracer_ != nullptr) name_ = name;
  if (timed_) start_ = std::chrono::steady_clock::now();
}

void Span::move_from(Span& other) noexcept {
  tracer_ = other.tracer_;
  timed_ = other.timed_;
  closed_ = other.closed_;
  seconds_ = other.seconds_;
  start_ = other.start_;
  name_ = std::move(other.name_);
  attrs_ = std::move(other.attrs_);
  other.tracer_ = nullptr;
  other.timed_ = false;
  other.closed_ = true;
}

double Span::seconds() const {
  if (closed_ || !timed_) return seconds_;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
      .count();
}

double Span::close() {
  if (closed_) return seconds_;
  closed_ = true;
  if (!timed_) return 0.0;
  const auto end = std::chrono::steady_clock::now();
  seconds_ = std::chrono::duration<double>(end - start_).count();
  if (tracer_ != nullptr) {
    TraceEvent event;
    event.name = std::move(name_);
    event.kind = TraceEvent::Kind::kSpan;
    event.ts_us =
        std::chrono::duration<double, std::micro>(start_ - tracer_->epoch_)
            .count();
    event.dur_us = seconds_ * 1e6;
    event.rank = t_thread_rank;
    event.attrs = std::move(attrs_);
    tracer_->record(std::move(event));
    tracer_ = nullptr;
  }
  return seconds_;
}

void Span::attr(std::string_view key, double value) {
  if (tracer_ == nullptr || closed_) return;
  Attr a;
  a.key = key;
  a.kind = Attr::Kind::kDouble;
  a.d = value;
  attrs_.push_back(std::move(a));
}

void Span::attr(std::string_view key, std::int64_t value) {
  if (tracer_ == nullptr || closed_) return;
  Attr a;
  a.key = key;
  a.kind = Attr::Kind::kInt;
  a.i = value;
  attrs_.push_back(std::move(a));
}

void Span::attr(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr || closed_) return;
  Attr a;
  a.key = key;
  a.kind = Attr::Kind::kString;
  a.s = value;
  attrs_.push_back(std::move(a));
}

// ---------------------------------------------------------------------------
// Tracer

/// One thread's append-only event buffer. The owning thread appends without
/// locking; the registration list is the only shared state under a mutex.
struct Tracer::Stream {
  std::thread::id owner;
  std::vector<TraceEvent> events;
  std::uint64_t seq = 0;
  std::uint64_t dropped = 0;
};

namespace {

/// Thread-local stream cache, keyed by process-unique tracer id so a
/// destroyed tracer's slot can never alias a live one. Two entries cover the
/// common case (the global tracer plus one local tracer per thread).
struct StreamCacheEntry {
  std::uint64_t tracer_id = 0;
  Tracer::Stream* stream = nullptr;
};
thread_local StreamCacheEntry t_stream_cache[2];

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Tracer::Tracer(bool enabled) : Tracer(enabled, Options{}) {}

Tracer::Tracer(bool enabled, Options options)
    : options_(options),
      id_(next_tracer_id()),
      epoch_(std::chrono::steady_clock::now()) {
  set_enabled(enabled);
}

Tracer::~Tracer() = default;

void Tracer::set_enabled(bool enabled) {
#ifdef NEURO_OBS_DISABLED
  (void)enabled;
#else
  enabled_.store(enabled, std::memory_order_relaxed);
#endif
}

Tracer::Stream* Tracer::stream_for_this_thread() {
  for (auto& entry : t_stream_cache) {
    if (entry.tracer_id == id_) return entry.stream;
  }
  base::MutexLock lock(streams_mutex_);
  const auto self = std::this_thread::get_id();
  Stream* stream = nullptr;
  for (const auto& s : streams_) {
    if (s->owner == self) {
      stream = s.get();
      break;
    }
  }
  if (stream == nullptr) {
    streams_.push_back(std::make_unique<Stream>());
    stream = streams_.back().get();
    stream->owner = self;
  }
  // Evict the stalest slot (round-robin is fine at two entries).
  static thread_local std::size_t next_slot = 0;
  t_stream_cache[next_slot % 2] = {id_, stream};
  ++next_slot;
  return stream;
}

void Tracer::record(TraceEvent event) {
  Stream* stream = stream_for_this_thread();
  if (stream->events.size() >= options_.max_events_per_stream) {
    ++stream->dropped;
    return;
  }
  event.seq = stream->seq++;
  stream->events.push_back(std::move(event));
}

void Tracer::counter(std::string_view name, double value) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.kind = TraceEvent::Kind::kCounter;
  event.ts_us = now_us();
  event.value = value;
  event.rank = t_thread_rank;
  record(std::move(event));
}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::size_t Tracer::event_count() const {
  base::MutexLock lock(streams_mutex_);
  std::size_t n = 0;
  for (const auto& s : streams_) n += s->events.size();
  return n;
}

std::size_t Tracer::dropped_count() const {
  base::MutexLock lock(streams_mutex_);
  std::size_t n = 0;
  for (const auto& s : streams_) n += s->dropped;
  return n;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> merged;
  {
    base::MutexLock lock(streams_mutex_);
    for (const auto& s : streams_) {
      merged.insert(merged.end(), s->events.begin(), s->events.end());
    }
  }
  // Deterministic merge order regardless of stream registration order:
  // by rank track, then time; ties put the longer (enclosing) span first so
  // viewers nest complete events correctly.
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.rank != b.rank) return a.rank < b.rank;
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
              if (a.seq != b.seq) return a.seq < b.seq;
              return a.name < b.name;
            });
  return merged;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot();
  std::vector<int> ranks;
  for (const auto& e : events) {
    if (std::find(ranks.begin(), ranks.end(), e.rank) == ranks.end()) {
      ranks.push_back(e.rank);
    }
  }
  std::sort(ranks.begin(), ranks.end());

  os << "{\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  sep();
  os << R"({"ph":"M","pid":0,"tid":0,"name":"process_name",)"
     << R"("args":{"name":"neurofem"}})";
  for (const int rank : ranks) {
    sep();
    os << R"({"ph":"M","pid":0,"tid":)" << tid_of_rank(rank)
       << R"(,"name":"thread_name","args":{"name":")"
       << (rank < 0 ? std::string("main") : "rank " + std::to_string(rank))
       << "\"}}";
  }
  const std::size_t dropped = dropped_count();
  if (dropped > 0) {
    sep();
    os << R"({"ph":"I","pid":0,"tid":0,"ts":0,"s":"g",)"
       << R"("name":"trace_truncated","args":{"dropped":)" << dropped << "}}";
  }

  for (const auto& e : events) {
    sep();
    if (e.kind == TraceEvent::Kind::kSpan) {
      os << R"({"ph":"X","pid":0,"tid":)" << tid_of_rank(e.rank) << R"(,"ts":)";
      write_timestamp(os, e.ts_us);
      os << R"(,"dur":)";
      write_timestamp(os, e.dur_us);
      os << R"(,"name":)";
      write_json_string(os, e.name);
      if (!e.attrs.empty()) {
        os << R"(,"args":{)";
        for (std::size_t i = 0; i < e.attrs.size(); ++i) {
          if (i > 0) os << ',';
          write_json_string(os, e.attrs[i].key);
          os << ':';
          write_attr_value(os, e.attrs[i]);
        }
        os << '}';
      }
      os << '}';
    } else {
      os << R"({"ph":"C","pid":0,"tid":)" << tid_of_rank(e.rank) << R"(,"ts":)";
      write_timestamp(os, e.ts_us);
      os << R"(,"name":)";
      write_json_string(os, e.name);
      os << R"(,"args":{"value":)";
      std::ostringstream num;
      num << std::setprecision(17) << e.value;
      os << num.str() << "}}";
    }
  }
  os << "\n]}\n";
}

void Tracer::clear() {
  base::MutexLock lock(streams_mutex_);
  for (auto& s : streams_) {
    s->events.clear();
    s->seq = 0;
    s->dropped = 0;
  }
}

// ---------------------------------------------------------------------------
// Globals and rank binding

Tracer& global() {
  static Tracer tracer(trace_enabled_by_env());
  return tracer;
}

bool trace_enabled_by_env() {
#ifdef NEURO_OBS_DISABLED
  return false;
#else
  const char* env = std::getenv("NEURO_TRACE");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
#endif
}

ScopedThreadRank::ScopedThreadRank(int rank) : previous_(t_thread_rank) {
  t_thread_rank = rank;
}

ScopedThreadRank::~ScopedThreadRank() { t_thread_rank = previous_; }

int thread_rank() { return t_thread_rank; }

}  // namespace neuro::obs

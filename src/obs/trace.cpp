#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/json_writer.h"

namespace neuro::obs {

namespace {

using detail::write_attr_value;
using detail::write_json_string;

thread_local int t_thread_rank = -1;

/// Maps a rank to its Chrome-trace thread id: the main thread is tid 0,
/// rank r is tid r+1, so every rank gets its own Perfetto track.
int tid_of_rank(int rank) { return rank + 1; }

void write_timestamp(std::ostream& os, double us) {
  detail::write_json_fixed3(os, us);
}

}  // namespace

// ---------------------------------------------------------------------------
// Span

Span::Span(Tracer* tracer, std::string_view name, bool timed)
    : tracer_(tracer), timed_(timed) {
  if (tracer_ != nullptr) name_ = name;
  if (timed_) start_ = std::chrono::steady_clock::now();
}

void Span::move_from(Span& other) noexcept {
  tracer_ = other.tracer_;
  timed_ = other.timed_;
  closed_ = other.closed_;
  seconds_ = other.seconds_;
  start_ = other.start_;
  name_ = std::move(other.name_);
  attrs_ = std::move(other.attrs_);
  other.tracer_ = nullptr;
  other.timed_ = false;
  other.closed_ = true;
}

double Span::seconds() const {
  if (closed_ || !timed_) return seconds_;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
      .count();
}

double Span::close() {
  if (closed_) return seconds_;
  closed_ = true;
  if (!timed_) return 0.0;
  const auto end = std::chrono::steady_clock::now();
  seconds_ = std::chrono::duration<double>(end - start_).count();
  if (tracer_ != nullptr) {
    TraceEvent event;
    event.name = std::move(name_);
    event.kind = TraceEvent::Kind::kSpan;
    event.ts_us =
        std::chrono::duration<double, std::micro>(start_ - tracer_->epoch_)
            .count();
    event.dur_us = seconds_ * 1e6;
    event.rank = t_thread_rank;
    event.attrs = std::move(attrs_);
    tracer_->record(std::move(event));
    tracer_ = nullptr;
  }
  return seconds_;
}

void Span::attr(std::string_view key, double value) {
  if (tracer_ == nullptr || closed_) return;
  Attr a;
  a.key = key;
  a.kind = Attr::Kind::kDouble;
  a.d = value;
  attrs_.push_back(std::move(a));
}

void Span::attr(std::string_view key, std::int64_t value) {
  if (tracer_ == nullptr || closed_) return;
  Attr a;
  a.key = key;
  a.kind = Attr::Kind::kInt;
  a.i = value;
  attrs_.push_back(std::move(a));
}

void Span::attr(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr || closed_) return;
  Attr a;
  a.key = key;
  a.kind = Attr::Kind::kString;
  a.s = value;
  attrs_.push_back(std::move(a));
}

// ---------------------------------------------------------------------------
// Tracer

/// One thread's event buffer. The owning thread appends without locking; the
/// registration list is the only shared state under a mutex. In ring mode the
/// buffer doubles as a circular window over the last ring_capacity events and
/// `gen` (odd while an append is in flight, even at rest) lets a concurrent
/// dump_ring wait out in-flight appends; see Tracer::record.
struct Tracer::Stream {
  std::thread::id owner;
  std::vector<TraceEvent> events;
  std::uint64_t seq = 0;      ///< events recorded (owner thread only)
  int last_rank = -1;         ///< rank of the latest recorded event
  std::atomic<std::uint64_t> gen{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> wrapped{0};
};

namespace {

/// Thread-local stream cache, keyed by process-unique tracer id so a
/// destroyed tracer's slot can never alias a live one. Two entries cover the
/// common case (the global tracer plus one local tracer per thread).
struct StreamCacheEntry {
  std::uint64_t tracer_id = 0;
  Tracer::Stream* stream = nullptr;
};
thread_local StreamCacheEntry t_stream_cache[2];

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Tracer::Tracer(bool enabled) : Tracer(enabled, Options{}) {}

Tracer::Tracer(bool enabled, Options options)
    : options_(options),
      id_(next_tracer_id()),
      epoch_(std::chrono::steady_clock::now()) {
  ring_capacity_.store(options.ring_capacity, std::memory_order_relaxed);
  set_enabled(enabled);
}

Tracer::~Tracer() = default;

void Tracer::set_enabled(bool enabled) {
#ifdef NEURO_OBS_DISABLED
  (void)enabled;
#else
  enabled_.store(enabled, std::memory_order_relaxed);
#endif
}

Tracer::Stream* Tracer::stream_for_this_thread() {
  for (auto& entry : t_stream_cache) {
    if (entry.tracer_id == id_) return entry.stream;
  }
  base::MutexLock lock(streams_mutex_);
  const auto self = std::this_thread::get_id();
  Stream* stream = nullptr;
  for (const auto& s : streams_) {
    if (s->owner == self) {
      stream = s.get();
      break;
    }
  }
  if (stream == nullptr) {
    streams_.push_back(std::make_unique<Stream>());
    stream = streams_.back().get();
    stream->owner = self;
  }
  // Evict the stalest slot (round-robin is fine at two entries).
  static thread_local std::size_t next_slot = 0;
  t_stream_cache[next_slot % 2] = {id_, stream};
  ++next_slot;
  return stream;
}

void Tracer::record(TraceEvent event) {
  Stream* stream = stream_for_this_thread();
  const std::size_t ring = ring_capacity_.load(std::memory_order_relaxed);
  if (ring == 0) {
    // Append-and-cap mode: no concurrent readers by contract, so no
    // handshake — this is the path the BM_Span* overhead gates cover.
    stream->last_rank = event.rank;  // attributes drops to the right rank
    if (stream->events.size() >= options_.max_events_per_stream) {
      stream->dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    event.seq = stream->seq++;
    stream->events.push_back(std::move(event));
    return;
  }
  // Ring mode. Writers never block: mark the append in flight (gen goes
  // odd), then check for a concurrent dump. The seq_cst ordering on both
  // sides makes this a store-buffering handshake — either the dumper sees
  // this stream's odd gen and waits for it to go even again, or this writer
  // sees dump_pending and sheds the event without touching the ring. Either
  // way the dumper never copies a half-written ring slot.
  stream->gen.fetch_add(1, std::memory_order_seq_cst);
  if (dump_pending_.load(std::memory_order_seq_cst)) {
    stream->dropped.fetch_add(1, std::memory_order_relaxed);
    stream->gen.fetch_add(1, std::memory_order_release);
    return;
  }
  event.seq = stream->seq;
  stream->last_rank = event.rank;
  if (stream->events.size() < ring) {
    stream->events.push_back(std::move(event));
  } else {
    stream->events[stream->seq % ring] = std::move(event);
    stream->wrapped.fetch_add(1, std::memory_order_relaxed);
  }
  ++stream->seq;
  stream->gen.fetch_add(1, std::memory_order_release);
}

void Tracer::counter(std::string_view name, double value) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.kind = TraceEvent::Kind::kCounter;
  event.ts_us = now_us();
  event.value = value;
  event.rank = t_thread_rank;
  record(std::move(event));
}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::size_t Tracer::event_count() const {
  base::MutexLock lock(streams_mutex_);
  std::size_t n = 0;
  for (const auto& s : streams_) n += s->events.size();
  return n;
}

std::size_t Tracer::dropped_count() const {
  base::MutexLock lock(streams_mutex_);
  std::size_t n = 0;
  for (const auto& s : streams_) {
    n += s->dropped.load(std::memory_order_relaxed);
  }
  return n;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> merged;
  {
    base::MutexLock lock(streams_mutex_);
    for (const auto& s : streams_) {
      merged.insert(merged.end(), s->events.begin(), s->events.end());
    }
  }
  // Deterministic merge order regardless of stream registration order:
  // by rank track, then time; ties put the longer (enclosing) span first so
  // viewers nest complete events correctly.
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.rank != b.rank) return a.rank < b.rank;
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
              if (a.seq != b.seq) return a.seq < b.seq;
              return a.name < b.name;
            });
  return merged;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot();
  std::vector<int> ranks;
  for (const auto& e : events) {
    if (std::find(ranks.begin(), ranks.end(), e.rank) == ranks.end()) {
      ranks.push_back(e.rank);
    }
  }
  std::sort(ranks.begin(), ranks.end());

  os << "{\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  sep();
  os << R"({"ph":"M","pid":0,"tid":0,"name":"process_name",)"
     << R"("args":{"name":"neurofem"}})";
  for (const int rank : ranks) {
    sep();
    os << R"({"ph":"M","pid":0,"tid":)" << tid_of_rank(rank)
       << R"(,"name":"thread_name","args":{"name":")"
       << (rank < 0 ? std::string("main") : "rank " + std::to_string(rank))
       << "\"}}";
  }
  // Per-thread truncation accounting: one instant per rank that dropped
  // events, on that rank's own track, plus a `C` counter series so viewers
  // and check_trace.py can attribute loss to the thread that suffered it.
  std::vector<std::pair<int, std::uint64_t>> dropped_by_rank;
  {
    base::MutexLock lock(streams_mutex_);
    for (const auto& s : streams_) {
      const std::uint64_t n = s->dropped.load(std::memory_order_relaxed);
      if (n == 0) continue;
      auto it = std::find_if(dropped_by_rank.begin(), dropped_by_rank.end(),
                             [&](const auto& e) { return e.first == s->last_rank; });
      if (it == dropped_by_rank.end()) {
        dropped_by_rank.emplace_back(s->last_rank, n);
      } else {
        it->second += n;
      }
    }
  }
  std::sort(dropped_by_rank.begin(), dropped_by_rank.end());
  for (const auto& [rank, n] : dropped_by_rank) {
    sep();
    os << R"({"ph":"I","pid":0,"tid":)" << tid_of_rank(rank)
       << R"(,"ts":0,"s":"t","name":"trace_truncated","args":{"dropped":)" << n
       << R"(,"rank":)" << rank << "}}";
    sep();
    os << R"({"ph":"C","pid":0,"tid":)" << tid_of_rank(rank)
       << R"(,"ts":0,"name":"trace_dropped","args":{"value":)" << n << "}}";
  }

  for (const auto& e : events) {
    sep();
    if (e.kind == TraceEvent::Kind::kSpan) {
      os << R"({"ph":"X","pid":0,"tid":)" << tid_of_rank(e.rank) << R"(,"ts":)";
      write_timestamp(os, e.ts_us);
      os << R"(,"dur":)";
      write_timestamp(os, e.dur_us);
      os << R"(,"name":)";
      write_json_string(os, e.name);
      if (!e.attrs.empty()) {
        os << R"(,"args":{)";
        for (std::size_t i = 0; i < e.attrs.size(); ++i) {
          if (i > 0) os << ',';
          write_json_string(os, e.attrs[i].key);
          os << ':';
          write_attr_value(os, e.attrs[i]);
        }
        os << '}';
      }
      os << '}';
    } else {
      os << R"({"ph":"C","pid":0,"tid":)" << tid_of_rank(e.rank) << R"(,"ts":)";
      write_timestamp(os, e.ts_us);
      os << R"(,"name":)";
      write_json_string(os, e.name);
      os << R"(,"args":{"value":)";
      detail::write_json_double(os, e.value);
      os << "}}";
    }
  }
  os << "\n]}\n";
}

void Tracer::clear() {
  base::MutexLock lock(streams_mutex_);
  for (auto& s : streams_) {
    s->events.clear();
    s->seq = 0;
    s->last_rank = -1;
    s->dropped.store(0, std::memory_order_relaxed);
    s->wrapped.store(0, std::memory_order_relaxed);
  }
}

void Tracer::set_ring_capacity(std::size_t capacity) {
  clear();
  ring_capacity_.store(capacity, std::memory_order_relaxed);
}

Tracer::RingDump Tracer::dump_ring() const {
  RingDump dump;
  dump.ring_capacity = ring_capacity_.load(std::memory_order_relaxed);
  // Park concurrent writers: after this store, a ring-mode writer either
  // observes it and sheds its event, or had already gone in-flight (odd
  // gen) — the per-stream wait below lets those retire. A stream observed
  // even after the store stays untouched until dump_pending_ clears.
  dump_pending_.store(true, std::memory_order_seq_cst);
  {
    base::MutexLock lock(streams_mutex_);
    for (const auto& s : streams_) {
      while ((s->gen.load(std::memory_order_seq_cst) & 1) != 0) {
        std::this_thread::yield();
      }
      if (s->seq == 0) continue;  // never recorded; keep dumps stable
      RingStreamStats stats;
      stats.rank = s->last_rank;
      stats.recorded = s->seq;
      stats.retained = s->events.size();
      stats.wrapped = s->wrapped.load(std::memory_order_relaxed);
      stats.dropped = s->dropped.load(std::memory_order_relaxed);
      dump.streams.push_back(stats);
      dump.events.insert(dump.events.end(), s->events.begin(),
                         s->events.end());
    }
  }
  dump_pending_.store(false, std::memory_order_seq_cst);
  std::sort(dump.streams.begin(), dump.streams.end(),
            [](const RingStreamStats& a, const RingStreamStats& b) {
              if (a.rank != b.rank) return a.rank < b.rank;
              return a.recorded < b.recorded;
            });
  std::sort(dump.events.begin(), dump.events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.rank != b.rank) return a.rank < b.rank;
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
              if (a.seq != b.seq) return a.seq < b.seq;
              return a.name < b.name;
            });
  return dump;
}

// ---------------------------------------------------------------------------
// Globals and rank binding

namespace {

Tracer::Options global_tracer_options() {
  Tracer::Options options;
  // Arming the flight recorder via NEURO_POSTMORTEM_DIR switches the global
  // tracer into ring mode from construction, before any thread records, so
  // no quiescent reconfiguration is ever needed on the env path.
  if (postmortem_enabled_by_env()) {
    options.ring_capacity = postmortem_ring_capacity_from_env();
  }
  return options;
}

}  // namespace

Tracer& global() {
  static Tracer tracer(trace_enabled_by_env() || postmortem_enabled_by_env(),
                       global_tracer_options());
  return tracer;
}

bool trace_enabled_by_env() {
#ifdef NEURO_OBS_DISABLED
  return false;
#else
  const char* env = std::getenv("NEURO_TRACE");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
#endif
}

ScopedThreadRank::ScopedThreadRank(int rank) : previous_(t_thread_rank) {
  t_thread_rank = rank;
}

ScopedThreadRank::~ScopedThreadRank() { t_thread_rank = previous_; }

int thread_rank() { return t_thread_rank; }

}  // namespace neuro::obs

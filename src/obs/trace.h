// Per-rank tracing with Chrome trace-event export (docs/observability.md).
//
// A Tracer collects timestamped spans and counter samples into per-thread
// (per-rank: the SPMD runtime binds each rank thread via set_thread_rank)
// append-only streams and merges them into one Chrome trace-event JSON file —
// one Perfetto "thread" per rank, spans as complete `X` events, counter
// samples as `C` events. Spans are RAII, nest by scope, and carry key/value
// attributes (the Krylov loops attach the residual and the allreduce count of
// every iteration; the communicator attaches src/tag/bytes to halo waits).
//
// Cost model:
//   * tracer disabled (the clinical default): Tracer::span() is one relaxed
//     atomic load and returns an inert Span — no clock read, no allocation.
//     bench_micro's BM_SpanOverhead pins this down; CI gates it.
//   * tracer enabled: two steady_clock reads plus one append to the calling
//     thread's own stream (no lock on the hot path; a mutex is taken once per
//     thread per tracer to register the stream).
//   * NEURO_OBS_DISABLED compile definition: Tracer::enabled() is constant
//     false, so instrumentation behind it folds to nothing at compile time.
//
// Export (write_chrome_trace / snapshot) must only run when no thread is
// actively recording — after run_spmd has joined its rank threads. The
// pipeline, CLI and benches all export at end of run, which satisfies this.
//
// Flight-recorder (ring) mode: setting Options::ring_capacity (or
// set_ring_capacity at a quiescent point) turns each per-thread stream into a
// bounded ring that retains the last-N events indefinitely instead of
// truncating — the black-box mode long-running services arm so a triggered
// post-mortem dump (obs::FlightRecorder) always has recent history. In ring
// mode dump_ring() may run *while other threads record*: writers stay
// lock-free and wait-free (they drop the one colliding event into the
// per-stream dropped counter instead of blocking), and the dumper waits for
// each in-flight append to retire before copying that stream. See
// docs/observability.md for the full quiescence contract.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace neuro::obs {

class Tracer;

/// One key/value span attribute. Values are doubles, integers, or short
/// strings (e.g. a degradation rung name); exported into the event's "args".
struct Attr {
  enum class Kind : std::uint8_t { kDouble, kInt, kString };
  std::string key;
  Kind kind = Kind::kDouble;
  double d = 0.0;
  std::int64_t i = 0;
  std::string s;
};

/// A finished span or counter sample, as stored in a rank stream and
/// returned by Tracer::snapshot(). Timestamps are microseconds relative to
/// the tracer's epoch (steady clock, shared by all ranks of the process).
struct TraceEvent {
  enum class Kind : std::uint8_t { kSpan, kCounter };
  std::string name;
  Kind kind = Kind::kSpan;
  double ts_us = 0.0;
  double dur_us = 0.0;   ///< spans only
  double value = 0.0;    ///< counters only
  int rank = -1;         ///< -1 = the orchestrating main thread
  std::uint64_t seq = 0; ///< append order within the originating stream
  std::vector<Attr> attrs;
};

/// RAII span. Obtain from Tracer::span() (records only while the tracer is
/// enabled; otherwise fully inert) or Tracer::timed_span() (always measures
/// wall-clock so callers may use the span as their stopwatch, records only
/// while enabled). Movable, not copyable; closes on destruction.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { move_from(other); }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      close();
      move_from(other);
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { close(); }

  /// True when this span will be recorded into a trace on close. Callers use
  /// this to skip attribute computation on the disabled path.
  [[nodiscard]] bool active() const { return tracer_ != nullptr; }

  /// Seconds elapsed since the span opened (or its final duration once
  /// closed). Zero for an inert, untimed span.
  [[nodiscard]] double seconds() const;

  /// Ends the span: records it (when active) and returns its duration in
  /// seconds. Idempotent; also run by the destructor.
  double close();

  /// Attaches a key/value attribute. No-op unless the span is active.
  void attr(std::string_view key, double value);
  void attr(std::string_view key, std::int64_t value);
  void attr(std::string_view key, int value) {
    attr(key, static_cast<std::int64_t>(value));
  }
  void attr(std::string_view key, std::string_view value);

 private:
  friend class Tracer;
  Span(Tracer* tracer, std::string_view name, bool timed);
  void move_from(Span& other) noexcept;

  Tracer* tracer_ = nullptr;  ///< null = not recording
  bool timed_ = false;
  bool closed_ = false;
  double seconds_ = 0.0;
  std::chrono::steady_clock::time_point start_{};
  std::string name_;
  std::vector<Attr> attrs_;
};

/// Collects spans and counters from any number of threads. See file header
/// for the cost model and the export contract.
class Tracer {
 public:
  struct Options {
    /// Per-stream event cap; appends beyond it are counted, not stored, and
    /// the export marks the trace truncated (check_trace.py rejects such
    /// traces unless told otherwise). Bounds tracer memory on runaway loops.
    std::size_t max_events_per_stream = 1u << 22;
    /// Nonzero switches every stream into flight-recorder (ring) mode: each
    /// stream keeps the most recent ring_capacity events, overwriting the
    /// oldest instead of truncating. Zero keeps the append-and-cap mode.
    std::size_t ring_capacity = 0;
  };

  explicit Tracer(bool enabled = false);
  Tracer(bool enabled, Options options);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] bool enabled() const {
#ifdef NEURO_OBS_DISABLED
    return false;
#else
    return enabled_.load(std::memory_order_relaxed);
#endif
  }
  /// Ignored (stays disabled) under the NEURO_OBS_DISABLED compile definition.
  void set_enabled(bool enabled);

  /// A recording span when enabled; an inert one (no clock read) otherwise.
  [[nodiscard]] Span span(std::string_view name) {
    return Span(enabled() ? this : nullptr, name, /*timed=*/enabled());
  }

  /// A span that always measures wall-clock — the caller's stopwatch — and
  /// additionally records into the trace when the tracer is enabled. The
  /// pipeline's Fig. 6 StageTiming rows are views over these spans.
  [[nodiscard]] Span timed_span(std::string_view name) {
    return Span(enabled() ? this : nullptr, name, /*timed=*/true);
  }

  /// Records one sample of a named counter (exported as a `C` event, one
  /// counter track per rank). No-op while disabled.
  void counter(std::string_view name, double value);

  /// Number of events recorded so far across all streams (quiescent only).
  [[nodiscard]] std::size_t event_count() const NEURO_EXCLUDES(streams_mutex_);
  /// Events dropped by the per-stream cap (quiescent only).
  [[nodiscard]] std::size_t dropped_count() const
      NEURO_EXCLUDES(streams_mutex_);

  /// Deterministic merged copy of all streams: sorted by (rank, ts, -dur,
  /// seq). Call only while no thread is recording.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const
      NEURO_EXCLUDES(streams_mutex_);

  /// Writes the merged Chrome trace-event JSON ({"traceEvents": [...]}):
  /// thread-name metadata per rank, spans as `X`, counters as `C`. The
  /// output is a deterministic function of the collected events. Call only
  /// while no thread is recording.
  void write_chrome_trace(std::ostream& os) const;

  /// Discards all collected events (quiescent only). Streams registered by
  /// live threads stay registered.
  void clear() NEURO_EXCLUDES(streams_mutex_);

  /// Switches ring mode on (nonzero) or off (zero) and discards all
  /// collected events. Quiescent only — call before spawning recording
  /// threads (obs::FlightRecorder::arm does this).
  void set_ring_capacity(std::size_t capacity) NEURO_EXCLUDES(streams_mutex_);
  /// Current ring capacity (0 = append-and-cap mode).
  [[nodiscard]] std::size_t ring_capacity() const {
    return ring_capacity_.load(std::memory_order_relaxed);
  }

  /// Per-stream accounting attached to a ring dump. `rank` is the rank the
  /// stream last recorded for (-1 = orchestrating main thread).
  struct RingStreamStats {
    int rank = -1;
    std::uint64_t recorded = 0;  ///< events ever recorded into the stream
    std::uint64_t retained = 0;  ///< events present in the dump
    std::uint64_t wrapped = 0;   ///< events overwritten by ring wrap
    std::uint64_t dropped = 0;   ///< cap drops + events shed during dumps
  };

  /// One triggered flight-recorder dump: ring contents of every non-empty
  /// stream merged in snapshot() order, plus per-stream accounting.
  struct RingDump {
    std::size_t ring_capacity = 0;
    std::vector<RingStreamStats> streams;
    std::vector<TraceEvent> events;
  };

  /// Copies the retained events of every stream. In ring mode this is safe
  /// while other threads record (see the quiescence contract in the file
  /// header); in append-and-cap mode call it only at quiescence. Streams
  /// that never recorded are omitted.
  [[nodiscard]] RingDump dump_ring() const NEURO_EXCLUDES(streams_mutex_);

  /// Opaque per-thread event buffer (defined in trace.cpp).
  struct Stream;

 private:
  friend class Span;

  /// The calling thread's stream, registering one on first use.
  Stream* stream_for_this_thread();
  void record(TraceEvent event);
  [[nodiscard]] double now_us() const;

  // enabled_ is the lock-free fast-path switch (annotation-exempt: a relaxed
  // atomic, see the cost model above). streams_mutex_ guards only the
  // registration list; the Stream buffers it points to are annotation-exempt
  // by design — each is appended to exclusively by its owning thread, and
  // cross-thread reads (snapshot/export) are restricted to quiescent points
  // after run_spmd has joined its rank threads (the export contract above).
  std::atomic<bool> enabled_{false};
  // Ring mode: ring_capacity_ is read relaxed on the record path;
  // dump_pending_ is the seq_cst handshake with in-flight appends (each
  // Stream carries an odd/even generation counter; see record/dump_ring).
  std::atomic<std::size_t> ring_capacity_{0};
  mutable std::atomic<bool> dump_pending_{false};
  Options options_;
  std::uint64_t id_ = 0;  ///< process-unique, keys the thread-local cache
  std::chrono::steady_clock::time_point epoch_;
  mutable base::Mutex streams_mutex_;
  std::vector<std::unique_ptr<Stream>> streams_ NEURO_GUARDED_BY(streams_mutex_);
};

/// The process-wide tracer used by the hot-path instrumentation (Krylov
/// loops, communicator, FEM phases). Disabled unless the NEURO_TRACE
/// environment variable is truthy or a tool enables it programmatically.
Tracer& global();

/// True when the NEURO_TRACE environment variable asks for tracing ("1",
/// "true", "on", ...; "0"/"" do not). Always false under NEURO_OBS_DISABLED.
[[nodiscard]] bool trace_enabled_by_env();

/// Sugar over global(): a recording-only span (inert when disabled).
[[nodiscard]] inline Span global_span(std::string_view name) {
  return global().span(name);
}
/// Sugar over global(): an always-timed span (stopwatch + trace when on).
[[nodiscard]] inline Span timed_span(std::string_view name) {
  return global().timed_span(name);
}
/// Sugar over global(): one counter sample (dropped when disabled).
inline void counter(std::string_view name, double value) {
  global().counter(name, value);
}

/// Binds the calling thread to a rank for trace attribution; rank -1 is the
/// orchestrating main thread. par::run_spmd installs one per rank thread.
class ScopedThreadRank {
 public:
  explicit ScopedThreadRank(int rank);
  ~ScopedThreadRank();
  ScopedThreadRank(const ScopedThreadRank&) = delete;
  ScopedThreadRank& operator=(const ScopedThreadRank&) = delete;

 private:
  int previous_;
};

/// The rank bound to the calling thread (-1 outside SPMD regions).
[[nodiscard]] int thread_rank();

}  // namespace neuro::obs

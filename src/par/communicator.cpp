#include "par/communicator.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <sstream>
#include <thread>

namespace neuro::par {

namespace detail {

Team::Team(int size, bool verify)
    : size_(size), verify_(verify), slots_(static_cast<std::size_t>(size)) {
  NEURO_REQUIRE(size >= 1, "Team size must be >= 1, got " << size);
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());
  if (verify_) {
    pending_.resize(static_cast<std::size_t>(size));
    pending_valid_.assign(static_cast<std::size_t>(size), false);
    history_.resize(static_cast<std::size_t>(size));
    exited_.assign(static_cast<std::size_t>(size), false);
  }
}

void Team::push_history_locked(int rank, const CollectiveOp& op) {
  history_[static_cast<std::size_t>(rank)].push(op);
}

std::string Team::describe_ranks_locked() const {
  std::ostringstream oss;
  for (int r = 0; r < size_; ++r) {
    const auto ur = static_cast<std::size_t>(r);
    oss << "  rank " << r << ": ";
    if (exited_[ur]) {
      oss << "exited the SPMD body";
    } else if (pending_valid_[ur]) {
      oss << "at " << format_op(pending_[ur]);
    } else {
      oss << "no collective issued yet";
    }
    const auto& h = history_[ur];
    if (h.count > 0) {
      oss << "; recent:";
      const std::uint64_t n = std::min<std::uint64_t>(h.count, RankHistory::kDepth);
      for (std::uint64_t i = h.count - n; i < h.count; ++i) {
        oss << ' ' << format_op(h.ops[i % RankHistory::kDepth]);
      }
    }
    oss << '\n';
  }
  return oss.str();
}

void Team::fail_locked(const std::string& headline) {
  if (!failed_) {
    failed_ = true;
    std::ostringstream oss;
    oss << "neuro::par collective-order verification failed: " << headline
        << "\n"
        << describe_ranks_locked();
    report_ = oss.str();
    barrier_cv_.notify_all();
    // Wake ranks polling inside a verified recv so they observe the failure.
    for (auto& box : mailboxes_) box->cv.notify_all();
  }
  throw CollectiveMismatchError(report_);
}

void Team::check_pending_locked() {
  // Fast path: every rank's claim matches rank 0's.
  bool all_match = true;
  for (int r = 0; r < size_; ++r) {
    const auto ur = static_cast<std::size_t>(r);
    if (!pending_valid_[ur] || !ops_match(pending_[0], pending_[ur])) {
      all_match = false;
      break;
    }
  }
  if (all_match) return;

  // Divergence: find the majority signature so the report blames the
  // minority rank(s) rather than whichever rank happens to be rank 0.
  int ref = 0, best = -1;
  for (int i = 0; i < size_; ++i) {
    if (!pending_valid_[static_cast<std::size_t>(i)]) continue;
    int matches = 0;
    for (int j = 0; j < size_; ++j) {
      if (pending_valid_[static_cast<std::size_t>(j)] &&
          ops_match(pending_[static_cast<std::size_t>(i)],
                    pending_[static_cast<std::size_t>(j)])) {
        ++matches;
      }
    }
    if (matches > best) {
      best = matches;
      ref = i;
    }
  }
  const CollectiveOp& expected = pending_[static_cast<std::size_t>(ref)];
  std::ostringstream oss;
  oss << "ranks issued different collectives at seq " << expected.seq << ":";
  for (int r = 0; r < size_; ++r) {
    const auto ur = static_cast<std::size_t>(r);
    if (!pending_valid_[ur]) {
      oss << " rank " << r << " issued none;";
    } else if (!ops_match(expected, pending_[ur])) {
      oss << " rank " << r << " issued " << format_op(pending_[ur])
          << " while rank " << ref << " issued " << format_op(expected) << ";";
    }
  }
  fail_locked(oss.str());
}

void Team::barrier(int rank, const CollectiveOp* op) {
  std::unique_lock lock(barrier_mutex_);
  if (verify_) {
    if (failed_) throw CollectiveMismatchError(report_);
    if (op != nullptr) {
      pending_[static_cast<std::size_t>(rank)] = *op;
      pending_valid_[static_cast<std::size_t>(rank)] = true;
      push_history_locked(rank, *op);
    }
    if (exited_count_ > 0) {
      std::ostringstream oss;
      oss << "rank " << rank << " issued "
          << (op != nullptr ? format_op(*op) : std::string("a collective completion"))
          << " after " << exited_count_ << " rank(s) exited the SPMD body";
      fail_locked(oss.str());
    }
  }
  const bool sense = barrier_sense_;
  if (++barrier_count_ == size_) {
    if (verify_ && op != nullptr) check_pending_locked();  // throws on mismatch
    barrier_count_ = 0;
    barrier_sense_ = !barrier_sense_;
    barrier_cv_.notify_all();
  } else if (verify_) {
    barrier_cv_.wait(lock, [&] { return barrier_sense_ != sense || failed_; });
    // If the sense flipped, this episode completed before any failure; the
    // failure (if any) surfaces at this rank's next operation instead.
    if (barrier_sense_ == sense) throw CollectiveMismatchError(report_);
  } else {
    barrier_cv_.wait(lock, [&] { return barrier_sense_ != sense; });
  }
}

void Team::publish(int rank, const void* data, std::size_t bytes,
                   const CollectiveOp* op) {
  auto& s = slots_[static_cast<std::size_t>(rank)];
  s.data = data;
  s.bytes = bytes;
  barrier(rank, op);  // all published
}

void Team::release(int rank) {
  barrier(rank);  // all done reading
}

void Team::note_p2p(int rank, const CollectiveOp& op) {
  std::lock_guard lock(barrier_mutex_);
  if (failed_) throw CollectiveMismatchError(report_);
  push_history_locked(rank, op);
}

void Team::rank_exited(int rank) {
  if (!verify_) return;
  std::lock_guard lock(barrier_mutex_);
  exited_[static_cast<std::size_t>(rank)] = true;
  ++exited_count_;
  push_history_locked(rank, CollectiveOp{OpKind::kExit, 0, -1, -1, 0});
  if (failed_ || barrier_count_ == 0) return;
  // Ranks are blocked at a collective this rank will never join: that is a
  // guaranteed deadlock, so fail the team now (the waiters throw; this rank
  // is already on its way out and must not throw from here).
  try {
    std::ostringstream oss;
    oss << "rank " << rank << " exited the SPMD body while " << barrier_count_
        << " rank(s) wait at a collective";
    fail_locked(oss.str());
  } catch (const CollectiveMismatchError&) {
    // Reported via the waiting ranks.
  }
}

void Team::send_bytes(int src, int dst, int tag, const void* data, std::size_t bytes) {
  std::vector<std::byte> payload(bytes);
  if (bytes > 0) std::memcpy(payload.data(), data, bytes);
  auto& box = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard lock(box.mutex);
    box.queues[{src, tag}].push_back(std::move(payload));
  }
  box.cv.notify_all();
}

std::vector<std::byte> Team::recv_bytes(int src, int dst, int tag) {
  auto& box = *mailboxes_[static_cast<std::size_t>(dst)];
  std::unique_lock lock(box.mutex);
  auto key = std::make_pair(src, tag);
  const auto ready = [&] {
    auto it = box.queues.find(key);
    return it != box.queues.end() && !it->second.empty();
  };
  if (verify_) {
    // Poll instead of blocking forever so a verification failure elsewhere —
    // or a send that never comes — turns into a report, not a hang. Lock
    // order is box.mutex -> barrier_mutex_; nothing nests the other way.
    const auto deadline = std::chrono::steady_clock::now() + verify_timeout();
    while (!ready()) {
      {
        std::lock_guard vlock(barrier_mutex_);
        if (failed_) throw CollectiveMismatchError(report_);
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        std::lock_guard vlock(barrier_mutex_);
        std::ostringstream oss;
        oss << "rank " << dst << " recv(from=" << src << ", tag=" << tag
            << ") was never matched by a send (timed out after "
            << verify_timeout().count() << " ms)";
        fail_locked(oss.str());
      }
      box.cv.wait_for(lock, std::chrono::milliseconds(50));
    }
  } else {
    box.cv.wait(lock, ready);
  }
  auto& queue = box.queues[key];
  std::vector<std::byte> payload = std::move(queue.front());
  queue.pop_front();
  return payload;
}

}  // namespace detail

std::vector<WorkRecord> run_spmd(int nranks,
                                 const std::function<void(Communicator&)>& body,
                                 const SpmdOptions& options) {
  NEURO_REQUIRE(nranks >= 1, "run_spmd requires nranks >= 1, got " << nranks);
  const bool verify = options.verify == SpmdOptions::Verify::kAuto
                          ? verify_enabled_by_default()
                          : options.verify == SpmdOptions::Verify::kOn;
  detail::Team team(nranks, verify);
  std::vector<WorkRecord> work(static_cast<std::size_t>(nranks));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));

  if (nranks == 1) {
    // Run inline: keeps single-rank paths easy to debug and profile.
    Communicator comm(0, &team);
    body(comm);
    work[0] = comm.work().take();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      threads.emplace_back([&, r] {
        Communicator comm(r, &team);
        try {
          body(comm);
        } catch (...) {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
          // A failing rank must not deadlock the others at the next barrier.
          // With verification on, rank_exited below fails the team so blocked
          // ranks throw a report; without it there is no clean recovery and
          // only rank-collective failures (all ranks throw together) join.
        }
        team.rank_exited(r);
        work[static_cast<std::size_t>(r)] = comm.work().take();
      });
    }
    for (auto& t : threads) t.join();
  }

  // Prefer the root-cause application error over secondary verifier reports
  // (ranks that threw CollectiveMismatchError only because another rank died).
  std::exception_ptr first, first_app;
  for (const auto& e : errors) {
    if (!e) continue;
    if (!first) first = e;
    if (!first_app) {
      try {
        std::rethrow_exception(e);
      } catch (const CollectiveMismatchError&) {
      } catch (...) {
        first_app = e;
      }
    }
  }
  if (first_app) std::rethrow_exception(first_app);
  if (first) std::rethrow_exception(first);
  return work;
}

std::vector<WorkRecord> run_spmd(int nranks,
                                 const std::function<void(Communicator&)>& body) {
  return run_spmd(nranks, body, SpmdOptions{});
}

const std::vector<WorkRecord>& PhaseWork::phase(const std::string& name) const {
  auto it = phases_.find(name);
  NEURO_REQUIRE(it != phases_.end(), "unknown phase '" << name << "'");
  return it->second;
}

}  // namespace neuro::par

#include "par/communicator.h"

#include <exception>
#include <thread>

namespace neuro::par {

namespace detail {

Team::Team(int size) : size_(size), slots_(static_cast<std::size_t>(size)) {
  NEURO_REQUIRE(size >= 1, "Team size must be >= 1, got " << size);
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());
}

void Team::barrier() {
  std::unique_lock lock(barrier_mutex_);
  const bool sense = barrier_sense_;
  if (++barrier_count_ == size_) {
    barrier_count_ = 0;
    barrier_sense_ = !barrier_sense_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lock, [&] { return barrier_sense_ != sense; });
  }
}

void Team::publish(int rank, const void* data, std::size_t bytes) {
  auto& s = slots_[static_cast<std::size_t>(rank)];
  s.data = data;
  s.bytes = bytes;
  barrier();  // all published
}

void Team::release() {
  barrier();  // all done reading
}

void Team::send_bytes(int src, int dst, int tag, const void* data, std::size_t bytes) {
  std::vector<std::byte> payload(bytes);
  if (bytes > 0) std::memcpy(payload.data(), data, bytes);
  auto& box = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard lock(box.mutex);
    box.queues[{src, tag}].push_back(std::move(payload));
  }
  box.cv.notify_all();
}

std::vector<std::byte> Team::recv_bytes(int src, int dst, int tag) {
  auto& box = *mailboxes_[static_cast<std::size_t>(dst)];
  std::unique_lock lock(box.mutex);
  auto key = std::make_pair(src, tag);
  box.cv.wait(lock, [&] {
    auto it = box.queues.find(key);
    return it != box.queues.end() && !it->second.empty();
  });
  auto& queue = box.queues[key];
  std::vector<std::byte> payload = std::move(queue.front());
  queue.pop_front();
  return payload;
}

}  // namespace detail

std::vector<WorkRecord> run_spmd(int nranks,
                                 const std::function<void(Communicator&)>& body) {
  NEURO_REQUIRE(nranks >= 1, "run_spmd requires nranks >= 1, got " << nranks);
  detail::Team team(nranks);
  std::vector<WorkRecord> work(static_cast<std::size_t>(nranks));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));

  if (nranks == 1) {
    // Run inline: keeps single-rank paths easy to debug and profile.
    Communicator comm(0, &team);
    body(comm);
    work[0] = comm.work().take();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      threads.emplace_back([&, r] {
        Communicator comm(r, &team);
        try {
          body(comm);
        } catch (...) {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
          // A failing rank must not deadlock the others at the next barrier;
          // there is no clean recovery, so terminate the whole process the
          // way an MPI abort would. Tests exercise only rank-collective
          // failures (all ranks throw together), which join cleanly below.
        }
        work[static_cast<std::size_t>(r)] = comm.work().take();
      });
    }
    for (auto& t : threads) t.join();
  }

  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return work;
}

const std::vector<WorkRecord>& PhaseWork::phase(const std::string& name) const {
  auto it = phases_.find(name);
  NEURO_REQUIRE(it != phases_.end(), "unknown phase '" << name << "'");
  return it->second;
}

}  // namespace neuro::par

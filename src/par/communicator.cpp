#include "par/communicator.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <sstream>
#include <thread>

namespace neuro::par {

namespace detail {

Team::Team(int size, bool verify, FaultConfig fault)
    : size_(size), verify_(verify), slots_(static_cast<std::size_t>(size)) {
  NEURO_REQUIRE(size >= 1, "Team size must be >= 1, got " << size);
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());
  exited_.assign(static_cast<std::size_t>(size), false);
  if (verify_) {
    pending_.resize(static_cast<std::size_t>(size));
    pending_valid_.assign(static_cast<std::size_t>(size), false);
    history_.resize(static_cast<std::size_t>(size));
  }
  if (fault.active()) injector_ = std::make_unique<FaultInjector>(fault);
}

double Team::recv_timeout_ms() const {
  if (injector_ != nullptr && injector_->config().recv_timeout_ms > 0.0) {
    return injector_->config().recv_timeout_ms;
  }
  return default_recv_timeout_ms();
}

void Team::declare_comm_fault_locked(const std::string& reason) {
  if (comm_fault_) return;
  comm_fault_ = true;
  comm_fault_report_ = "neuro::par communication fault: " + reason;
  barrier_cv_.notify_all();
  // Wake ranks polling inside recv so they observe the fault.
  for (auto& box : mailboxes_) box->cv.notify_all();
}

void Team::push_history_locked(int rank, const CollectiveOp& op) {
  history_[static_cast<std::size_t>(rank)].push(op);
}

std::string Team::describe_ranks_locked() const {
  std::ostringstream oss;
  for (int r = 0; r < size_; ++r) {
    const auto ur = static_cast<std::size_t>(r);
    oss << "  rank " << r << ": ";
    if (exited_[ur]) {
      oss << "exited the SPMD body";
    } else if (pending_valid_[ur]) {
      oss << "at " << format_op(pending_[ur]);
    } else {
      oss << "no collective issued yet";
    }
    const auto& h = history_[ur];
    if (h.count > 0) {
      oss << "; recent:";
      const std::uint64_t n = std::min<std::uint64_t>(h.count, RankHistory::kDepth);
      for (std::uint64_t i = h.count - n; i < h.count; ++i) {
        oss << ' ' << format_op(h.ops[i % RankHistory::kDepth]);
      }
    }
    oss << '\n';
  }
  return oss.str();
}

void Team::fail_locked(const std::string& headline) {
  if (!failed_) {
    failed_ = true;
    std::ostringstream oss;
    oss << "neuro::par collective-order verification failed: " << headline
        << "\n"
        << describe_ranks_locked();
    report_ = oss.str();
    barrier_cv_.notify_all();
    // Wake ranks polling inside a verified recv so they observe the failure.
    for (auto& box : mailboxes_) box->cv.notify_all();
  }
  throw CollectiveMismatchError(report_);
}

void Team::check_pending_locked() {
  // Fast path: every rank's claim matches rank 0's.
  bool all_match = true;
  for (int r = 0; r < size_; ++r) {
    const auto ur = static_cast<std::size_t>(r);
    if (!pending_valid_[ur] || !ops_match(pending_[0], pending_[ur])) {
      all_match = false;
      break;
    }
  }
  if (all_match) return;

  // Divergence: find the majority signature so the report blames the
  // minority rank(s) rather than whichever rank happens to be rank 0.
  int ref = 0, best = -1;
  for (int i = 0; i < size_; ++i) {
    if (!pending_valid_[static_cast<std::size_t>(i)]) continue;
    int matches = 0;
    for (int j = 0; j < size_; ++j) {
      if (pending_valid_[static_cast<std::size_t>(j)] &&
          ops_match(pending_[static_cast<std::size_t>(i)],
                    pending_[static_cast<std::size_t>(j)])) {
        ++matches;
      }
    }
    if (matches > best) {
      best = matches;
      ref = i;
    }
  }
  const CollectiveOp& expected = pending_[static_cast<std::size_t>(ref)];
  std::ostringstream oss;
  oss << "ranks issued different collectives at seq " << expected.seq << ":";
  for (int r = 0; r < size_; ++r) {
    const auto ur = static_cast<std::size_t>(r);
    if (!pending_valid_[ur]) {
      oss << " rank " << r << " issued none;";
    } else if (!ops_match(expected, pending_[ur])) {
      oss << " rank " << r << " issued " << format_op(pending_[ur])
          << " while rank " << ref << " issued " << format_op(expected) << ";";
    }
  }
  fail_locked(oss.str());
}

void Team::barrier(int rank, const CollectiveOp* op) {
  base::MutexLock lock(barrier_mutex_);
  if (verify_) {
    if (failed_) throw CollectiveMismatchError(report_);
    if (op != nullptr) {
      pending_[static_cast<std::size_t>(rank)] = *op;
      pending_valid_[static_cast<std::size_t>(rank)] = true;
      push_history_locked(rank, *op);
    }
    if (exited_count_ > 0) {
      std::ostringstream oss;
      oss << "rank " << rank << " issued "
          << (op != nullptr ? format_op(*op) : std::string("a collective completion"))
          << " after " << exited_count_ << " rank(s) exited the SPMD body";
      fail_locked(oss.str());
    }
  } else {
    if (comm_fault_) throw CommFaultError(comm_fault_report_);
    if (exited_count_ > 0) {
      std::ostringstream oss;
      oss << "rank " << rank << " entered a collective after " << exited_count_
          << " rank(s) exited the SPMD body";
      declare_comm_fault_locked(oss.str());
      throw CommFaultError(comm_fault_report_);
    }
  }
  const bool sense = barrier_sense_;
  if (++barrier_count_ == size_) {
    if (verify_ && op != nullptr) check_pending_locked();  // throws on mismatch
    barrier_count_ = 0;
    barrier_sense_ = !barrier_sense_;
    barrier_cv_.notify_all();
  } else if (verify_) {
    // Explicit predicate loops: the thread-safety analysis sees the guarded
    // reads in this scope (a predicate lambda would be an opaque function).
    while (barrier_sense_ == sense && !failed_) barrier_cv_.wait(barrier_mutex_);
    // If the sense flipped, this episode completed before any failure; the
    // failure (if any) surfaces at this rank's next operation instead.
    if (barrier_sense_ == sense) throw CollectiveMismatchError(report_);
  } else {
    while (barrier_sense_ == sense && !comm_fault_) {
      barrier_cv_.wait(barrier_mutex_);
    }
    if (barrier_sense_ == sense) throw CommFaultError(comm_fault_report_);
  }
}

void Team::publish(int rank, const void* data, std::size_t bytes,
                   const CollectiveOp* op) {
  auto& s = slots_[static_cast<std::size_t>(rank)];
  s.data = data;
  s.bytes = bytes;
  barrier(rank, op);  // all published
}

void Team::release(int rank) {
  barrier(rank);  // all done reading
}

void Team::note_p2p(int rank, const CollectiveOp& op) {
  base::MutexLock lock(barrier_mutex_);
  if (failed_) throw CollectiveMismatchError(report_);
  push_history_locked(rank, op);
}

void Team::rank_exited(int rank, bool failed) {
  base::MutexLock lock(barrier_mutex_);
  exited_[static_cast<std::size_t>(rank)] = true;
  ++exited_count_;
  std::ostringstream oss;
  oss << "rank " << rank << (failed ? " failed out of" : " exited")
      << " the SPMD body while " << barrier_count_
      << " rank(s) wait at a collective";
  if (verify_) {
    push_history_locked(rank, CollectiveOp{OpKind::kExit, 0, -1, -1, 0});
    if (failed_ || barrier_count_ == 0) return;
    // Ranks are blocked at a collective this rank will never join: that is a
    // guaranteed deadlock, so fail the team now (the waiters throw; this rank
    // is already on its way out and must not throw from here).
    try {
      fail_locked(oss.str());
    } catch (const CollectiveMismatchError&) {
      // Reported via the waiting ranks.
    }
    return;
  }
  // Without verification: a rank that threw can never rejoin, so any future
  // collective or recv involving it would deadlock — fault the team now and
  // wake everyone. A clean exit only faults the team when ranks are already
  // blocked at a barrier (they would otherwise wait forever); waking recv
  // pollers is still needed so a recv from this rank fails fast.
  if (failed || barrier_count_ > 0) {
    declare_comm_fault_locked(oss.str());
  } else {
    for (auto& box : mailboxes_) box->cv.notify_all();
  }
}

void Team::send_bytes(int src, int dst, int tag, const void* data, std::size_t bytes) {
  std::vector<std::byte> payload(bytes);
  if (bytes > 0) std::memcpy(payload.data(), data, bytes);
  int copies = 1;
  if (injector_ != nullptr) [[unlikely]] {
    if (injector_->should_stall(src)) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(injector_->config().delay_ms));
    }
    switch (injector_->on_send(src, dst, tag)) {
      case FaultInjector::Action::kDeliver:
        break;
      case FaultInjector::Action::kDrop:
        return;  // silently lost; the matching recv times out
      case FaultInjector::Action::kDelay:
        // Link-style delay: the sender blocks, delivery happens late.
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(injector_->config().delay_ms));
        break;
      case FaultInjector::Action::kDuplicate:
        copies = 2;
        break;
      case FaultInjector::Action::kCorrupt:
        injector_->corrupt(payload, src, dst, tag);
        break;
    }
  }
  auto& box = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    base::MutexLock lock(box.mutex);
    auto& queue = box.queues[{src, tag}];
    for (int c = 1; c < copies; ++c) queue.push_back(payload);
    queue.push_back(std::move(payload));
  }
  box.cv.notify_all();
}

bool Team::has_message_locked(const Mailbox& box,
                              const std::pair<int, int>& key) {
  const auto it = box.queues.find(key);
  return it != box.queues.end() && !it->second.empty();
}

std::vector<std::byte> Team::recv_bytes(int src, int dst, int tag) {
  auto& box = *mailboxes_[static_cast<std::size_t>(dst)];
  base::MutexLock lock(box.mutex);
  const auto key = std::make_pair(src, tag);
  if (verify_) {
    // Poll instead of blocking forever so a verification failure elsewhere —
    // or a send that never comes — turns into a report, not a hang. Lock
    // order is box.mutex -> barrier_mutex_; nothing nests the other way.
    // A fault campaign's recv timeout override applies here too, so injected
    // faults fail fast under verification as well.
    const double override_ms =
        injector_ != nullptr ? injector_->config().recv_timeout_ms : 0.0;
    const auto timeout =
        override_ms > 0.0
            ? std::chrono::milliseconds(static_cast<long>(override_ms))
            : verify_timeout();
    // NEURO_NONDET_OK(recv-timeout machinery: affects only the fault path, never a value)
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!has_message_locked(box, key)) {
      {
        base::MutexLock vlock(barrier_mutex_);
        if (failed_) throw CollectiveMismatchError(report_);
      }
      // NEURO_NONDET_OK(recv-timeout machinery: affects only the fault path, never a value)
      if (std::chrono::steady_clock::now() >= deadline) {
        base::MutexLock vlock(barrier_mutex_);
        std::ostringstream oss;
        oss << "rank " << dst << " recv(from=" << src << ", tag=" << tag
            << ") was never matched by a send (timed out after "
            << timeout.count() << " ms)";
        fail_locked(oss.str());
      }
      box.cv.wait_for(box.mutex, std::chrono::milliseconds(50));
    }
  } else {
    // Bounded wait: a dropped message or dead sender must surface as a typed
    // kCommFault the degradation ladder can catch, never as a deadlock. Same
    // lock order as above (box.mutex -> barrier_mutex_).
    const double timeout_ms = recv_timeout_ms();
    const auto deadline =
        // NEURO_NONDET_OK(recv-timeout machinery: affects only the fault path, never a value)
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(timeout_ms));
    while (!has_message_locked(box, key)) {
      {
        base::MutexLock vlock(barrier_mutex_);
        if (comm_fault_) throw CommFaultError(comm_fault_report_);
        if (exited_[static_cast<std::size_t>(src)]) {
          // Sends are enqueued before the sender exits, so an empty queue
          // from an exited rank can never be filled.
          std::ostringstream oss;
          oss << "neuro::par communication fault: rank " << dst
              << " recv(from=" << src << ", tag=" << tag
              << "): source rank exited without sending";
          throw CommFaultError(oss.str());
        }
      }
      // NEURO_NONDET_OK(recv-timeout machinery: affects only the fault path, never a value)
      if (std::chrono::steady_clock::now() >= deadline) {
        std::ostringstream oss;
        oss << "neuro::par communication fault: rank " << dst
            << " recv(from=" << src << ", tag=" << tag << ") timed out after "
            << timeout_ms << " ms (message dropped or sender stalled)";
        throw CommFaultError(oss.str());
      }
      box.cv.wait_for(box.mutex, std::chrono::milliseconds(50));
    }
  }
  auto& queue = box.queues[key];
  std::vector<std::byte> payload = std::move(queue.front());
  queue.pop_front();
  return payload;
}

}  // namespace detail

std::vector<WorkRecord> run_spmd(int nranks,
                                 const std::function<void(Communicator&)>& body,
                                 const SpmdOptions& options) {
  NEURO_REQUIRE(nranks >= 1, "run_spmd requires nranks >= 1, got " << nranks);
  const bool verify = options.verify == SpmdOptions::Verify::kAuto
                          ? verify_enabled_by_default()
                          : options.verify == SpmdOptions::Verify::kOn;
  // A programmatic campaign wins; otherwise the environment campaign applies.
  const FaultConfig fault =
      options.fault.active() ? options.fault : fault_config_from_env();
  detail::Team team(nranks, verify, fault);
  std::vector<WorkRecord> work(static_cast<std::size_t>(nranks));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));

  if (nranks == 1) {
    // Run inline: keeps single-rank paths easy to debug and profile. The rank
    // binding is scoped so the caller's trace attribution is restored after.
    obs::ScopedThreadRank trace_rank(0);
    Communicator comm(0, &team);
    body(comm);
    work[0] = comm.work().take();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      threads.emplace_back([&, r] {
        obs::ScopedThreadRank trace_rank(r);
        Communicator comm(r, &team);
        try {
          body(comm);
        } catch (...) {
          errors[static_cast<std::size_t>(r)] = std::current_exception();
          // A failing rank must not deadlock the others: rank_exited below
          // fails the team (a verification report with verification on, a
          // CommFaultError otherwise) so blocked ranks unwind promptly.
        }
        team.rank_exited(r, errors[static_cast<std::size_t>(r)] != nullptr);
        work[static_cast<std::size_t>(r)] = comm.work().take();
      });
    }
    for (auto& t : threads) t.join();
  }

  // Prefer the root-cause application error over secondary team-failure
  // reports: ranks that threw CollectiveMismatchError or CommFaultError only
  // because another rank died. A CommFaultError still outranks a mismatch
  // report (it names the p2p operation that actually failed).
  std::exception_ptr first, first_comm, first_app;
  for (const auto& e : errors) {
    if (!e) continue;
    if (!first) first = e;
    if (!first_app) {
      try {
        std::rethrow_exception(e);
      } catch (const CollectiveMismatchError&) {
      } catch (const CommFaultError&) {
        if (!first_comm) first_comm = e;
      } catch (...) {
        first_app = e;
      }
    }
  }
  if (first_app) std::rethrow_exception(first_app);
  if (first_comm) std::rethrow_exception(first_comm);
  if (first) std::rethrow_exception(first);
  return work;
}

std::vector<WorkRecord> run_spmd(int nranks,
                                 const std::function<void(Communicator&)>& body) {
  return run_spmd(nranks, body, SpmdOptions{});
}

const std::vector<WorkRecord>& PhaseWork::phase(const std::string& name) const {
  auto it = phases_.find(name);
  NEURO_REQUIRE(it != phases_.end(), "unknown phase '" << name << "'");
  return it->second;
}

std::vector<std::string> PhaseWork::names() const {
  std::vector<std::string> result;
  result.reserve(phases_.size());
  for (const auto& [name, records] : phases_) result.push_back(name);
  return result;
}

void PhaseWork::write_report(std::ostream& os) const {
  // phases_ is a sorted map, so this iteration order — and therefore the
  // report bytes — is a pure function of the recorded phases.
  os << "phase,rank,flops,mem_bytes,comm_bytes,comm_msgs,coll_rounds,"
        "coll_bytes,overlap_comm_bytes,overlap_comm_msgs\n";
  for (const auto& [name, records] : phases_) {
    for (std::size_t r = 0; r < records.size(); ++r) {
      const WorkRecord& w = records[r];
      os << name << ',' << r << ',' << w.flops << ',' << w.mem_bytes << ','
         << w.comm_bytes << ',' << w.comm_msgs << ',' << w.coll_rounds << ','
         << w.coll_bytes << ',' << w.overlap_comm_bytes << ','
         << w.overlap_comm_msgs << '\n';
    }
  }
}

}  // namespace neuro::par

// In-process message-passing runtime.
//
// Ranks are threads; a Communicator gives each rank an MPI-like interface:
// barrier, broadcast, reductions, gathers, and point-to-point send/recv.
// All parallel algorithms in this library are written SPMD against this
// interface and never share mutable state outside it, so the decomposition is
// honest — the same code would port to MPI mechanically (DESIGN.md §6).
//
// Every operation is accounted in the rank's WorkCounter so the perf module
// can apply a network cost model (Fast Ethernet vs. SMP bus) to the run.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "base/check.h"
#include "par/work_counter.h"

namespace neuro::par {

class Communicator;

namespace detail {

/// State shared by all ranks of one parallel run.
class Team {
 public:
  explicit Team(int size);

  int size() const { return size_; }

  /// Sense-reversing central barrier.
  void barrier();

  /// Publish this rank's contribution for a collective and wait until all
  /// ranks have published; afterwards slots() may be read by everyone until
  /// the matching release().
  void publish(int rank, const void* data, std::size_t bytes);
  struct Slot {
    const void* data = nullptr;
    std::size_t bytes = 0;
  };
  const Slot& slot(int rank) const { return slots_[static_cast<std::size_t>(rank)]; }
  /// Second barrier: all ranks done reading; slots may be reused.
  void release();

  /// Point-to-point mailbox keyed by (src, dst, tag).
  void send_bytes(int src, int dst, int tag, const void* data, std::size_t bytes);
  std::vector<std::byte> recv_bytes(int src, int dst, int tag);

 private:
  int size_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  bool barrier_sense_ = false;

  std::vector<Slot> slots_;

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::map<std::pair<int, int>, std::deque<std::vector<std::byte>>> queues;
  };
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;  // indexed by dst
};

}  // namespace detail

/// Per-rank handle to the team. All methods must be called collectively by
/// every rank of the team (except send/recv, which are matched pairwise).
class Communicator {
 public:
  Communicator(int rank, detail::Team* team) : rank_(rank), team_(team) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return team_->size(); }

  WorkCounter& work() { return work_; }
  [[nodiscard]] const WorkCounter& work() const { return work_; }

  void barrier() {
    work_.add_collective(0.0);
    team_->barrier();
  }

  /// Broadcasts `data` (resized on non-roots) from `root` to all ranks.
  template <typename T>
  void broadcast(std::vector<T>& data, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint64_t count = data.size();
    // Size exchange + payload: one collective round for accounting purposes.
    team_->publish(rank_, rank_ == root ? &count : nullptr,
                   rank_ == root ? sizeof(count) : 0);
    if (rank_ != root) {
      count = *static_cast<const std::uint64_t*>(team_->slot(root).data);
      data.resize(count);
    }
    team_->release();
    team_->publish(rank_, rank_ == root ? static_cast<const void*>(data.data()) : nullptr,
                   rank_ == root ? count * sizeof(T) : 0);
    if (rank_ != root && count > 0) {
      std::memcpy(data.data(), team_->slot(root).data, count * sizeof(T));
    }
    team_->release();
    work_.add_collective(static_cast<double>(count * sizeof(T)));
  }

  /// Element-wise sum-allreduce over fixed-size vectors (same size on all
  /// ranks). Reduction is performed in rank order on every rank, so the
  /// result is identical everywhere and across runs.
  template <typename T>
  void allreduce_sum(std::span<T> inout) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> local(inout.begin(), inout.end());
    team_->publish(rank_, local.data(), local.size() * sizeof(T));
    for (std::size_t i = 0; i < inout.size(); ++i) inout[i] = T{};
    for (int r = 0; r < size(); ++r) {
      const auto* src = static_cast<const T*>(team_->slot(r).data);
      NEURO_CHECK(team_->slot(r).bytes == local.size() * sizeof(T));
      for (std::size_t i = 0; i < inout.size(); ++i) inout[i] += src[i];
    }
    team_->release();
    work_.add_collective(static_cast<double>(local.size() * sizeof(T)));
  }

  /// Scalar sum-allreduce.
  template <typename T>
  T allreduce_sum(T value) {
    allreduce_sum(std::span<T>(&value, 1));
    return value;
  }

  /// Scalar max-allreduce.
  template <typename T>
  T allreduce_max(T value) {
    T local = value;
    team_->publish(rank_, &local, sizeof(T));
    T result = local;
    for (int r = 0; r < size(); ++r) {
      const T v = *static_cast<const T*>(team_->slot(r).data);
      if (v > result) result = v;
    }
    team_->release();
    work_.add_collective(sizeof(T));
    return result;
  }

  /// Scalar min-allreduce.
  template <typename T>
  T allreduce_min(T value) {
    T local = value;
    team_->publish(rank_, &local, sizeof(T));
    T result = local;
    for (int r = 0; r < size(); ++r) {
      const T v = *static_cast<const T*>(team_->slot(r).data);
      if (v < result) result = v;
    }
    team_->release();
    work_.add_collective(sizeof(T));
    return result;
  }

  /// Gathers variable-length contributions from all ranks, concatenated in
  /// rank order. Every rank receives the full result.
  template <typename T>
  std::vector<T> allgatherv(std::span<const T> local) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> copy(local.begin(), local.end());
    team_->publish(rank_, copy.data(), copy.size() * sizeof(T));
    std::vector<T> result;
    for (int r = 0; r < size(); ++r) {
      const auto& s = team_->slot(r);
      const auto* src = static_cast<const T*>(s.data);
      result.insert(result.end(), src, src + s.bytes / sizeof(T));
    }
    team_->release();
    work_.add_collective(static_cast<double>(copy.size() * sizeof(T)));
    return result;
  }

  /// Per-rank variant of allgatherv that keeps rank boundaries.
  template <typename T>
  std::vector<std::vector<T>> allgather_parts(std::span<const T> local) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> copy(local.begin(), local.end());
    team_->publish(rank_, copy.data(), copy.size() * sizeof(T));
    std::vector<std::vector<T>> result(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) {
      const auto& s = team_->slot(r);
      const auto* src = static_cast<const T*>(s.data);
      result[static_cast<std::size_t>(r)].assign(src, src + s.bytes / sizeof(T));
    }
    team_->release();
    work_.add_collective(static_cast<double>(copy.size() * sizeof(T)));
    return result;
  }

  /// Blocking point-to-point send. Matched by recv() on `dst` with the same tag.
  template <typename T>
  void send(int dst, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    NEURO_REQUIRE(dst >= 0 && dst < size(), "send: bad destination rank " << dst);
    team_->send_bytes(rank_, dst, tag, data.data(), data.size() * sizeof(T));
    work_.add_comm(static_cast<double>(data.size() * sizeof(T)));
  }

  /// Blocking point-to-point receive from `src` with `tag`.
  template <typename T>
  std::vector<T> recv(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    NEURO_REQUIRE(src >= 0 && src < size(), "recv: bad source rank " << src);
    std::vector<std::byte> bytes = team_->recv_bytes(src, rank_, tag);
    NEURO_CHECK(bytes.size() % sizeof(T) == 0);
    std::vector<T> out(bytes.size() / sizeof(T));
    std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

 private:
  int rank_;
  detail::Team* team_;
  WorkCounter work_;
};

/// Runs `body(comm)` on `nranks` threads. Rethrows the first exception thrown
/// by any rank after all threads have joined. Returns the per-rank work
/// accumulated over the whole run (whatever was not take()n inside the body).
std::vector<WorkRecord> run_spmd(int nranks,
                                 const std::function<void(Communicator&)>& body);

}  // namespace neuro::par

// In-process message-passing runtime.
//
// Ranks are threads; a Communicator gives each rank an MPI-like interface:
// barrier, broadcast, reductions, gathers, and point-to-point send/recv.
// All parallel algorithms in this library are written SPMD against this
// interface and never share mutable state outside it, so the decomposition is
// honest — the same code would port to MPI mechanically (DESIGN.md §6).
//
// Every operation is accounted in the rank's WorkCounter so the perf module
// can apply a network cost model (Fast Ethernet vs. SMP bus) to the run.
//
// Debug builds can additionally cross-check that every rank issues the same
// sequence of collectives (see par/verify.h): with verification on, a
// diverging rank produces a per-rank report and a CollectiveMismatchError on
// all ranks instead of a deadlock or silent slot corruption.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "base/check.h"
#include "base/mutex.h"
#include "base/strong_id.h"
#include "base/thread_annotations.h"
#include "obs/trace.h"
#include "par/fault_inject.h"
#include "par/verify.h"
#include "par/work_counter.h"

namespace neuro::par {

class Communicator;

namespace detail {

/// State shared by all ranks of one parallel run.
class Team {
 public:
  explicit Team(int size, bool verify = verify_enabled_by_default(),
                FaultConfig fault = fault_config_from_env());

  int size() const { return size_; }
  bool verify() const { return verify_; }

  /// Sense-reversing central barrier. With verification on, `op` (when
  /// non-null) is this rank's claim about which collective the barrier
  /// belongs to; the last rank to arrive cross-checks all claims and fails
  /// the whole team on a mismatch.
  void barrier(int rank, const CollectiveOp* op = nullptr)
      NEURO_EXCLUDES(barrier_mutex_);

  /// Publish this rank's contribution for a collective and wait until all
  /// ranks have published; afterwards slots() may be read by everyone until
  /// the matching release().
  void publish(int rank, const void* data, std::size_t bytes,
               const CollectiveOp* op = nullptr) NEURO_EXCLUDES(barrier_mutex_);
  struct Slot {
    const void* data = nullptr;
    std::size_t bytes = 0;
  };
  const Slot& slot(int rank) const { return slots_[static_cast<std::size_t>(rank)]; }
  /// Second barrier: all ranks done reading; slots may be reused.
  void release(int rank) NEURO_EXCLUDES(barrier_mutex_);

  /// Point-to-point mailbox keyed by (src, dst, tag). Both directions pass
  /// through the fault injector when one is configured; recv waits are
  /// bounded (fault-config override, else NEURO_COMM_TIMEOUT_MS, default
  /// 30 s) and surface CommFaultError instead of deadlocking on a message
  /// that was dropped or whose sender exited.
  void send_bytes(int src, int dst, int tag, const void* data, std::size_t bytes);
  std::vector<std::byte> recv_bytes(int src, int dst, int tag)
      NEURO_EXCLUDES(barrier_mutex_);

  /// Records a send/recv in the rank's history (verification only) so
  /// divergence reports show recent point-to-point traffic. Throws if the
  /// team has already failed verification.
  void note_p2p(int rank, const CollectiveOp& op)
      NEURO_EXCLUDES(barrier_mutex_);

  /// Called by run_spmd when a rank leaves the body (normally or by
  /// exception; `failed` marks the exception case). A rank exiting while
  /// others wait at a collective is a guaranteed deadlock and fails the team
  /// immediately — as a CollectiveMismatchError report under verification,
  /// as a CommFaultError otherwise. A failed exit faults the team either way
  /// so blocked ranks unwind promptly instead of waiting out their timeouts.
  void rank_exited(int rank, bool failed = false)
      NEURO_EXCLUDES(barrier_mutex_);

 private:
  /// Ring buffer of a rank's recent operations, for divergence reports.
  struct RankHistory {
    static constexpr std::size_t kDepth = 8;
    CollectiveOp ops[kDepth];
    std::uint64_t count = 0;
    void push(const CollectiveOp& op) { ops[count++ % kDepth] = op; }
  };

  struct Mailbox {
    base::Mutex mutex;
    base::CondVar cv;
    std::map<std::pair<int, int>, std::deque<std::vector<std::byte>>> queues
        NEURO_GUARDED_BY(mutex);
  };

  // All verification state below is guarded by barrier_mutex_; the barrier is
  // the natural serialization point and verification is a debug mode, so the
  // extra time under the lock is acceptable there. The _locked helpers carry
  // NEURO_REQUIRES so calling one without the lock is a compile error under
  // Clang's thread-safety analysis.
  void push_history_locked(int rank, const CollectiveOp& op)
      NEURO_REQUIRES(barrier_mutex_);
  void check_pending_locked() NEURO_REQUIRES(barrier_mutex_);
  [[noreturn]] void fail_locked(const std::string& headline)
      NEURO_REQUIRES(barrier_mutex_);
  std::string describe_ranks_locked() const NEURO_REQUIRES(barrier_mutex_);
  /// Non-verify failure path: marks the team faulted (kCommFault) and wakes
  /// every blocked rank so the fault propagates instead of deadlocking.
  void declare_comm_fault_locked(const std::string& reason)
      NEURO_REQUIRES(barrier_mutex_);
  /// True when `box` holds a deliverable message for (src, tag) = `key`.
  static bool has_message_locked(const Mailbox& box,
                                 const std::pair<int, int>& key)
      NEURO_REQUIRES(box.mutex);
  /// The effective bounded-recv wait for this team.
  [[nodiscard]] double recv_timeout_ms() const;

  int size_;
  bool verify_;

  // Lock order: a Mailbox mutex may be held when barrier_mutex_ is acquired
  // (recv polling checks team state); never the other way around.
  base::Mutex barrier_mutex_;
  base::CondVar barrier_cv_;
  int barrier_count_ NEURO_GUARDED_BY(barrier_mutex_) = 0;
  bool barrier_sense_ NEURO_GUARDED_BY(barrier_mutex_) = false;

  // Rank-exit bookkeeping (always on: recv's early-exit detection needs it).
  std::vector<bool> exited_ NEURO_GUARDED_BY(barrier_mutex_);
  int exited_count_ NEURO_GUARDED_BY(barrier_mutex_) = 0;

  // Non-verify fault state: set once, after which every collective entry and
  // recv poll throws CommFaultError carrying the report.
  bool comm_fault_ NEURO_GUARDED_BY(barrier_mutex_) = false;
  std::string comm_fault_report_ NEURO_GUARDED_BY(barrier_mutex_);

  // Verification state (unused, and never touched, when verify_ is false).
  std::vector<CollectiveOp> pending_ NEURO_GUARDED_BY(barrier_mutex_);
  std::vector<bool> pending_valid_ NEURO_GUARDED_BY(barrier_mutex_);
  std::vector<RankHistory> history_ NEURO_GUARDED_BY(barrier_mutex_);
  bool failed_ NEURO_GUARDED_BY(barrier_mutex_) = false;
  std::string report_ NEURO_GUARDED_BY(barrier_mutex_);

  // Fault injection. Annotation-exempt: set once in the constructor, const
  // thereafter; the injector is internally synchronized (par/fault_inject.h).
  std::unique_ptr<FaultInjector> injector_;

  // Annotation-exempt by design: a rank's slot is written only between that
  // rank's publish() and the matching release() barriers, and read by others
  // only inside that window — the sense-reversing barrier provides both the
  // exclusion and the happens-before edges (docs/parallel_model.md). A mutex
  // here would serialize the very protocol that makes collectives scale.
  std::vector<Slot> slots_;

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;  // indexed by dst
};

}  // namespace detail

/// Per-rank handle to the team. All methods must be called collectively by
/// every rank of the team (except send/recv, which are matched pairwise).
class Communicator {
 public:
  Communicator(int rank, detail::Team* team)
      : rank_(rank), team_(team), verify_(team->verify()) {}

  [[nodiscard]] int rank() const { return rank_; }
  /// This rank as a strong id (the mesh partition and the solver exchange
  /// plans are indexed by Rank).
  [[nodiscard]] Rank rank_id() const { return Rank{rank_}; }
  [[nodiscard]] int size() const { return team_->size(); }

  WorkCounter& work() { return work_; }
  [[nodiscard]] const WorkCounter& work() const { return work_; }

  void barrier() {
    work_.add_collective(0.0);
    if (verify_) [[unlikely]] {
      const CollectiveOp op = next_op(OpKind::kBarrier, 0);
      team_->barrier(rank_, &op);
    } else {
      team_->barrier(rank_);
    }
  }

  /// Broadcasts `data` (resized on non-roots) from `root` to all ranks.
  template <typename T>
  void broadcast(std::vector<T>& data, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::uint64_t count = data.size();
    // Size exchange + payload: one collective round for accounting purposes.
    publish(OpKind::kBroadcast, rank_ == root ? &count : nullptr,
            rank_ == root ? sizeof(count) : 0, root);
    if (rank_ != root) {
      count = *static_cast<const std::uint64_t*>(team_->slot(root).data);
      data.resize(count);
    }
    team_->release(rank_);
    publish(OpKind::kBroadcast,
            rank_ == root ? static_cast<const void*>(data.data()) : nullptr,
            rank_ == root ? count * sizeof(T) : 0, root);
    if (rank_ != root && count > 0) {
      std::memcpy(data.data(), team_->slot(root).data, count * sizeof(T));
    }
    team_->release(rank_);
    work_.add_collective(static_cast<double>(count * sizeof(T)));
  }

  /// Element-wise sum-allreduce over fixed-size vectors (same size on all
  /// ranks). Reduction is performed in rank order on every rank, so the
  /// result is identical everywhere and across runs.
  template <typename T>
  void allreduce_sum(std::span<T> inout) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> local(inout.begin(), inout.end());
    publish(OpKind::kAllreduceSum, local.data(), local.size() * sizeof(T));
    for (std::size_t i = 0; i < inout.size(); ++i) inout[i] = T{};
    for (int r = 0; r < size(); ++r) {
      const auto* src = static_cast<const T*>(team_->slot(r).data);
      NEURO_CHECK(team_->slot(r).bytes == local.size() * sizeof(T));
      for (std::size_t i = 0; i < inout.size(); ++i) inout[i] += src[i];
    }
    team_->release(rank_);
    work_.add_collective(static_cast<double>(local.size() * sizeof(T)));
  }

  /// Scalar sum-allreduce.
  template <typename T>
  T allreduce_sum(T value) {
    allreduce_sum(std::span<T>(&value, 1));
    return value;
  }

  /// Scalar max-allreduce.
  template <typename T>
  T allreduce_max(T value) {
    T local = value;
    publish(OpKind::kAllreduceMax, &local, sizeof(T));
    T result = local;
    for (int r = 0; r < size(); ++r) {
      const T v = *static_cast<const T*>(team_->slot(r).data);
      if (v > result) result = v;
    }
    team_->release(rank_);
    work_.add_collective(sizeof(T));
    return result;
  }

  /// Scalar min-allreduce.
  template <typename T>
  T allreduce_min(T value) {
    T local = value;
    publish(OpKind::kAllreduceMin, &local, sizeof(T));
    T result = local;
    for (int r = 0; r < size(); ++r) {
      const T v = *static_cast<const T*>(team_->slot(r).data);
      if (v < result) result = v;
    }
    team_->release(rank_);
    work_.add_collective(sizeof(T));
    return result;
  }

  /// Gathers variable-length contributions from all ranks, concatenated in
  /// rank order. Every rank receives the full result.
  template <typename T>
  std::vector<T> allgatherv(std::span<const T> local) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> copy(local.begin(), local.end());
    publish(OpKind::kAllgatherv, copy.data(), copy.size() * sizeof(T));
    std::vector<T> result;
    for (int r = 0; r < size(); ++r) {
      const auto& s = team_->slot(r);
      const auto* src = static_cast<const T*>(s.data);
      result.insert(result.end(), src, src + s.bytes / sizeof(T));
    }
    team_->release(rank_);
    work_.add_collective(static_cast<double>(copy.size() * sizeof(T)));
    return result;
  }

  /// Per-rank variant of allgatherv that keeps rank boundaries.
  template <typename T>
  std::vector<std::vector<T>> allgather_parts(std::span<const T> local) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> copy(local.begin(), local.end());
    publish(OpKind::kAllgatherParts, copy.data(), copy.size() * sizeof(T));
    std::vector<std::vector<T>> result(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) {
      const auto& s = team_->slot(r);
      const auto* src = static_cast<const T*>(s.data);
      result[static_cast<std::size_t>(r)].assign(src, src + s.bytes / sizeof(T));
    }
    team_->release(rank_);
    work_.add_collective(static_cast<double>(copy.size() * sizeof(T)));
    return result;
  }

  /// Blocking point-to-point send. Matched by recv() on `dst` with the same tag.
  template <typename T>
  void send(int dst, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    NEURO_REQUIRE(dst >= 0 && dst < size(), "send: bad destination rank " << dst);
    obs::Span span = obs::global_span("comm.send");
    if (span.active()) [[unlikely]] {
      span.attr("dst", dst);
      span.attr("tag", tag);
      span.attr("bytes", static_cast<std::int64_t>(data.size() * sizeof(T)));
    }
    if (verify_) [[unlikely]] {
      team_->note_p2p(rank_, next_op(OpKind::kSend, data.size() * sizeof(T), dst, tag));
    }
    team_->send_bytes(rank_, dst, tag, data.data(), data.size() * sizeof(T));
    work_.add_comm(static_cast<double>(data.size() * sizeof(T)));
  }

  /// Typed-rank overload.
  template <typename T>
  void send(Rank dst, int tag, std::span<const T> data) {
    send(dst.value(), tag, data);
  }

  /// Blocking point-to-point receive from `src` with `tag`.
  template <typename T>
  std::vector<T> recv(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    NEURO_REQUIRE(src >= 0 && src < size(), "recv: bad source rank " << src);
    obs::Span span = obs::global_span("comm.recv");
    if (span.active()) [[unlikely]] {
      span.attr("src", src);
      span.attr("tag", tag);
    }
    if (verify_) [[unlikely]] {
      team_->note_p2p(rank_, next_op(OpKind::kRecv, 0, src, tag));
    }
    std::vector<std::byte> bytes = team_->recv_bytes(src, rank_, tag);
    if (span.active()) [[unlikely]] {
      span.attr("bytes", static_cast<std::int64_t>(bytes.size()));
    }
    NEURO_CHECK(bytes.size() % sizeof(T) == 0);
    std::vector<T> out(bytes.size() / sizeof(T));
    if (!bytes.empty()) {
      std::memcpy(out.data(), bytes.data(), bytes.size());
    }
    return out;
  }

  /// Typed-rank overload.
  template <typename T>
  std::vector<T> recv(Rank src, int tag) {
    return recv<T>(src.value(), tag);
  }

  /// Handle for a nonblocking receive posted with irecv(); complete it with
  /// wait(). Handles must not outlive the Communicator that issued them.
  struct PendingRecv {
    int src = -1;
    int tag = -1;
    bool completed = false;
  };

  /// Nonblocking point-to-point send. The mailbox runtime buffers eagerly, so
  /// the payload is enqueued (through the fault injector, like send()) and the
  /// call returns immediately; there is no send-side wait. Accounted as
  /// overlappable traffic so the cost model can hide it behind compute.
  template <typename T>
  void isend(int dst, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    NEURO_REQUIRE(dst >= 0 && dst < size(), "isend: bad destination rank " << dst);
    obs::Span span = obs::global_span("comm.isend");
    if (span.active()) [[unlikely]] {
      span.attr("dst", dst);
      span.attr("tag", tag);
      span.attr("bytes", static_cast<std::int64_t>(data.size() * sizeof(T)));
    }
    if (verify_) [[unlikely]] {
      team_->note_p2p(rank_, next_op(OpKind::kIsend, data.size() * sizeof(T), dst, tag));
    }
    team_->send_bytes(rank_, dst, tag, data.data(), data.size() * sizeof(T));
    work_.add_comm_overlapped(static_cast<double>(data.size() * sizeof(T)));
  }

  /// Typed-rank overload.
  template <typename T>
  void isend(Rank dst, int tag, std::span<const T> data) {
    isend(dst.value(), tag, data);
  }

  /// Posts a nonblocking receive from `src` with `tag`. The message is not
  /// consumed until the matching wait(); posting records the operation (for
  /// verifier divergence reports) and lets the caller compute while the
  /// sender's payload is in flight.
  [[nodiscard]] PendingRecv irecv(int src, int tag) {
    NEURO_REQUIRE(src >= 0 && src < size(), "irecv: bad source rank " << src);
    obs::Span span = obs::global_span("comm.irecv");
    if (span.active()) [[unlikely]] {
      span.attr("src", src);
      span.attr("tag", tag);
    }
    if (verify_) [[unlikely]] {
      team_->note_p2p(rank_, next_op(OpKind::kIrecv, 0, src, tag));
    }
    return PendingRecv{src, tag, false};
  }

  /// Typed-rank overload.
  [[nodiscard]] PendingRecv irecv(Rank src, int tag) {
    return irecv(src.value(), tag);
  }

  /// Completes a posted irecv and returns its payload. Blocks (bounded, fault
  /// aware — see Team::recv_bytes) only if the message has not yet arrived.
  template <typename T>
  std::vector<T> wait(PendingRecv& pending) {
    static_assert(std::is_trivially_copyable_v<T>);
    NEURO_REQUIRE(!pending.completed, "wait: receive already completed");
    obs::Span span = obs::global_span("comm.wait");
    if (span.active()) [[unlikely]] {
      span.attr("src", pending.src);
      span.attr("tag", pending.tag);
    }
    std::vector<std::byte> bytes = team_->recv_bytes(pending.src, rank_, pending.tag);
    pending.completed = true;
    if (span.active()) [[unlikely]] {
      span.attr("bytes", static_cast<std::int64_t>(bytes.size()));
    }
    NEURO_CHECK(bytes.size() % sizeof(T) == 0);
    std::vector<T> out(bytes.size() / sizeof(T));
    if (!bytes.empty()) {
      std::memcpy(out.data(), bytes.data(), bytes.size());
    }
    return out;
  }

 private:
  // Collectives and point-to-point ops are numbered independently: every rank
  // performs the same collectives (that is what the verifier checks), but
  // send/recv counts legitimately differ between ranks and must not shift the
  // collective sequence numbers being compared.
  CollectiveOp next_op(OpKind kind, std::uint64_t bytes, int root = -1,
                       int tag = -1) {
    const bool p2p = kind == OpKind::kSend || kind == OpKind::kRecv ||
                     kind == OpKind::kIsend || kind == OpKind::kIrecv;
    return CollectiveOp{kind, p2p ? p2p_seq_++ : seq_++, root, tag, bytes};
  }

  void publish(OpKind kind, const void* data, std::size_t bytes, int root = -1) {
    if (verify_) [[unlikely]] {
      const CollectiveOp op = next_op(kind, bytes, root);
      team_->publish(rank_, data, bytes, &op);
    } else {
      team_->publish(rank_, data, bytes);
    }
  }

  int rank_;
  detail::Team* team_;
  bool verify_;
  std::uint64_t seq_ = 0;
  std::uint64_t p2p_seq_ = 0;
  WorkCounter work_;
};

/// Options for run_spmd.
struct SpmdOptions {
  /// Collective-order verification (par/verify.h). kAuto follows the
  /// NEURO_PAR_VERIFY compile definition / environment variable.
  enum class Verify : std::uint8_t { kAuto, kOff, kOn };
  Verify verify = Verify::kAuto;
  /// Seeded fault campaign for this run (par/fault_inject.h). Inactive by
  /// default, in which case the environment campaign (if any) applies.
  FaultConfig fault;
};

/// Runs `body(comm)` on `nranks` threads. Rethrows the first exception thrown
/// by any rank after all threads have joined (preferring application errors
/// over secondary verifier reports). Returns the per-rank work accumulated
/// over the whole run (whatever was not take()n inside the body).
std::vector<WorkRecord> run_spmd(int nranks,
                                 const std::function<void(Communicator&)>& body,
                                 const SpmdOptions& options);
std::vector<WorkRecord> run_spmd(int nranks,
                                 const std::function<void(Communicator&)>& body);

}  // namespace neuro::par

#include "par/fault_inject.h"

#include <cstdlib>
#include <sstream>

#include "base/rng.h"

namespace neuro::par {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kBitFlip: return "bit_flip";
    case FaultKind::kStallRank: return "stall_rank";
  }
  return "unknown";
}

namespace {

FaultKind kind_from_name(const std::string& name) {
  for (const FaultKind k : {FaultKind::kNone, FaultKind::kDrop, FaultKind::kDelay,
                            FaultKind::kDuplicate, FaultKind::kBitFlip,
                            FaultKind::kStallRank}) {
    if (name == fault_kind_name(k)) return k;
  }
  NEURO_REQUIRE(false, "fault spec: unknown fault kind '" << name << "'");
  return FaultKind::kNone;
}

/// splitmix64-style mix: one well-scrambled 64-bit hash of the decision key,
/// so each message's fate is independent of every other's.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  return h;
}

}  // namespace

FaultConfig parse_fault_spec(const std::string& spec) {
  FaultConfig config;
  std::istringstream iss(spec);
  std::string field;
  bool first = true;
  while (std::getline(iss, field, ':')) {
    if (first) {
      config.kind = kind_from_name(field);
      first = false;
      continue;
    }
    const auto eq = field.find('=');
    NEURO_REQUIRE(eq != std::string::npos,
                  "fault spec: field '" << field << "' is not key=value");
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "p") {
      config.probability = std::stod(value);
    } else if (key == "seed") {
      config.seed = std::stoull(value);
    } else if (key == "rank") {
      config.rank = std::stoi(value);
    } else if (key == "tag") {
      config.tag = std::stoi(value);
    } else if (key == "max") {
      config.max_faults = std::stoi(value);
    } else if (key == "delay_ms") {
      config.delay_ms = std::stod(value);
    } else if (key == "timeout_ms") {
      config.recv_timeout_ms = std::stod(value);
    } else {
      NEURO_REQUIRE(false, "fault spec: unknown key '" << key << "'");
    }
  }
  NEURO_REQUIRE(!first, "fault spec: empty specification");
  return config;
}

FaultConfig fault_config_from_env() {
#ifdef NEURO_FAULT_INJECT
  if (const char* env = std::getenv("NEURO_FAULT_INJECT")) {
    if (env[0] != '\0' && !(env[0] == '0' && env[1] == '\0')) {
      return parse_fault_spec(env);
    }
  }
#endif
  return {};
}

double default_recv_timeout_ms() {
  if (const char* env = std::getenv("NEURO_COMM_TIMEOUT_MS")) {
    const double ms = std::strtod(env, nullptr);
    if (ms > 0.0) return ms;
  }
  return 30000.0;
}

bool FaultInjector::matches(int src, int tag) const {
  if (config_.rank >= 0 && src != config_.rank) return false;
  if (config_.tag >= 0 && tag != config_.tag) return false;
  return true;
}

FaultInjector::Action FaultInjector::on_send(int src, int dst, int tag) {
  if (config_.kind == FaultKind::kNone || config_.kind == FaultKind::kStallRank ||
      !matches(src, tag)) {
    return Action::kDeliver;
  }
  base::MutexLock lock(mutex_);
  if (config_.max_faults >= 0 && injected_ >= config_.max_faults) {
    return Action::kDeliver;
  }
  const std::uint64_t count = stream_counts_[{src, dst, tag}]++;
  std::uint64_t h = mix(config_.seed, 0x6661756c74ull);  // "fault"
  h = mix(h, static_cast<std::uint64_t>(src));
  h = mix(h, static_cast<std::uint64_t>(dst));
  h = mix(h, static_cast<std::uint64_t>(tag) + 1);  // tags may be 0
  h = mix(h, count);
  if (Rng(h).uniform() >= config_.probability) return Action::kDeliver;
  ++injected_;
  switch (config_.kind) {
    case FaultKind::kDrop: return Action::kDrop;
    case FaultKind::kDelay: return Action::kDelay;
    case FaultKind::kDuplicate: return Action::kDuplicate;
    case FaultKind::kBitFlip: return Action::kCorrupt;
    case FaultKind::kNone:
    case FaultKind::kStallRank: break;
  }
  return Action::kDeliver;
}

void FaultInjector::corrupt(std::vector<std::byte>& payload, int src, int dst,
                            int tag) const {
  if (payload.empty()) return;
  std::uint64_t h = mix(config_.seed, 0x62697466ull);  // "bitf"
  h = mix(h, static_cast<std::uint64_t>(src));
  h = mix(h, static_cast<std::uint64_t>(dst));
  h = mix(h, static_cast<std::uint64_t>(tag) + 1);
  const std::size_t pos = static_cast<std::size_t>(h % payload.size());
  payload[pos] ^= std::byte{0xFF};
}

bool FaultInjector::should_stall(int rank) {
  if (config_.kind != FaultKind::kStallRank || rank != config_.rank) return false;
  base::MutexLock lock(mutex_);
  if (stalled_) return false;
  stalled_ = true;
  ++injected_;
  return true;
}

int FaultInjector::faults_injected() const {
  base::MutexLock lock(mutex_);
  return injected_;
}

}  // namespace neuro::par

// Seeded fault injection for the SPMD runtime.
//
// The intraoperative pipeline must survive the failure modes a real cluster
// exhibits mid-surgery: a dropped or delayed message, a duplicated delivery, a
// flipped bit in a payload, a rank stalled by a paging storm. This harness
// injects exactly those faults into Team::send_bytes / recv_bytes, keyed by a
// fixed seed so every injected run is reproducible: the decision for a given
// message depends only on (seed, src, dst, tag, per-stream message count),
// never on thread scheduling. The degradation ladder's matrix test replays
// each fault class and asserts the pipeline lands on the documented rung.
//
// Activation (off by default; the hot path pays one pointer test per message):
//   * programmatically: SpmdOptions{.fault = FaultConfig{...}} — always
//     available, used by tests and benches;
//   * via environment: compile with -DNEURO_FAULT_INJECT (CMake option
//     NEURO_FAULT_INJECT=ON), then set NEURO_FAULT_INJECT to a spec such as
//       NEURO_FAULT_INJECT="drop:p=0.5:seed=7:rank=1:tag=3:timeout_ms=200"
//     Builds without the compile definition ignore the variable, so a
//     production binary cannot be fault-injected from the environment.
//
// A faulted run must degrade, not deadlock: recv gains a bounded wait (see
// Team::recv_bytes) that surfaces kCommFault through CommFaultError instead
// of blocking forever on a message that was dropped or whose sender died.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "base/mutex.h"
#include "base/status.h"
#include "base/thread_annotations.h"

namespace neuro::par {

/// Thrown by the communicator when a point-to-point operation cannot complete
/// (recv timeout, peer rank exited, team already faulted). run_spmd rethrows
/// it; the degradation ladder maps it to StatusCode::kCommFault.
class CommFaultError : public base::StatusError {
 public:
  explicit CommFaultError(std::string what)
      : base::StatusError(
            base::Status(base::StatusCode::kCommFault, std::move(what))) {}
};

/// The injectable fault classes.
enum class FaultKind : std::uint8_t {
  kNone,
  kDrop,       ///< message silently discarded
  kDelay,      ///< delivery delayed by delay_ms (sender blocks, link-style)
  kDuplicate,  ///< message delivered twice
  kBitFlip,    ///< one payload byte XORed with 0xFF
  kStallRank,  ///< the configured rank sleeps delay_ms before its next sends
};

/// Short stable name, e.g. "bit_flip".
const char* fault_kind_name(FaultKind kind);

/// One fault campaign. Message faults apply to sends matching the optional
/// rank/tag filters with probability `probability` (decided deterministically
/// from the seed); kStallRank stalls the configured rank instead.
struct FaultConfig {
  FaultKind kind = FaultKind::kNone;
  double probability = 1.0;      ///< per-message fault probability
  std::uint64_t seed = 0;        ///< reproducibility key
  int rank = -1;                 ///< sender (or stalled rank); -1 = any
  int tag = -1;                  ///< only messages with this tag; -1 = any
  int max_faults = -1;           ///< stop injecting after this many; -1 = unlimited
  double delay_ms = 20.0;        ///< kDelay / kStallRank sleep duration
  double recv_timeout_ms = 0.0;  ///< overrides the bounded recv wait when > 0

  [[nodiscard]] bool active() const { return kind != FaultKind::kNone; }
};

/// Parses a spec string: "<kind>[:p=<prob>][:seed=<n>][:rank=<r>][:tag=<t>]
/// [:max=<n>][:delay_ms=<ms>][:timeout_ms=<ms>]". Unknown keys and malformed
/// values are a precondition failure (the env var is operator input).
[[nodiscard]] FaultConfig parse_fault_spec(const std::string& spec);

/// The environment-configured campaign: parses NEURO_FAULT_INJECT in builds
/// compiled with the NEURO_FAULT_INJECT definition, inactive otherwise.
[[nodiscard]] FaultConfig fault_config_from_env();

/// How long a recv waits before declaring the message lost, when no
/// FaultConfig override applies: NEURO_COMM_TIMEOUT_MS, default 30 000.
[[nodiscard]] double default_recv_timeout_ms();

/// Per-Team injector. Thread-safe; decisions are deterministic in the message
/// stream (per (src, dst, tag) counters), independent of rank interleaving.
class FaultInjector {
 public:
  enum class Action : std::uint8_t { kDeliver, kDrop, kDelay, kDuplicate, kCorrupt };

  explicit FaultInjector(const FaultConfig& config) : config_(config) {}

  [[nodiscard]] const FaultConfig& config() const { return config_; }

  /// Decides the fate of one message (kStallRank campaigns always deliver).
  Action on_send(int src, int dst, int tag) NEURO_EXCLUDES(mutex_);

  /// XORs one deterministically chosen payload byte with 0xFF.
  void corrupt(std::vector<std::byte>& payload, int src, int dst, int tag) const;

  /// True exactly once for the configured rank of a kStallRank campaign:
  /// the caller sleeps config().delay_ms before proceeding.
  bool should_stall(int rank) NEURO_EXCLUDES(mutex_);

  /// Messages faulted so far (telemetry for benches and reports).
  [[nodiscard]] int faults_injected() const NEURO_EXCLUDES(mutex_);

 private:
  [[nodiscard]] bool matches(int src, int tag) const;

  FaultConfig config_;  // const after construction; read without the lock
  mutable base::Mutex mutex_;
  std::map<std::tuple<int, int, int>, std::uint64_t> stream_counts_
      NEURO_GUARDED_BY(mutex_);
  int injected_ NEURO_GUARDED_BY(mutex_) = 0;
  bool stalled_ NEURO_GUARDED_BY(mutex_) = false;
};

}  // namespace neuro::par

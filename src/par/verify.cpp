#include "par/verify.h"

#include <cstdlib>
#include <sstream>

namespace neuro::par {

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kBarrier: return "barrier";
    case OpKind::kBroadcast: return "broadcast";
    case OpKind::kAllreduceSum: return "allreduce_sum";
    case OpKind::kAllreduceMax: return "allreduce_max";
    case OpKind::kAllreduceMin: return "allreduce_min";
    case OpKind::kAllgatherv: return "allgatherv";
    case OpKind::kAllgatherParts: return "allgather_parts";
    case OpKind::kSend: return "send";
    case OpKind::kRecv: return "recv";
    case OpKind::kIsend: return "isend";
    case OpKind::kIrecv: return "irecv";
    case OpKind::kExit: return "exit";
  }
  return "unknown";
}

namespace {

/// Byte counts are part of the collective's signature only for the fixed-size
/// reductions; broadcast payloads differ between root and non-root ranks and
/// the gathers are variable-length by design.
bool bytes_are_signature(OpKind kind) {
  return kind == OpKind::kAllreduceSum || kind == OpKind::kAllreduceMax ||
         kind == OpKind::kAllreduceMin;
}

}  // namespace

bool ops_match(const CollectiveOp& a, const CollectiveOp& b) {
  if (a.kind != b.kind || a.seq != b.seq) return false;
  if (a.root != b.root || a.tag != b.tag) return false;
  if (bytes_are_signature(a.kind) && a.bytes != b.bytes) return false;
  return true;
}

std::string format_op(const CollectiveOp& op) {
  std::ostringstream oss;
  oss << op_kind_name(op.kind) << '#' << op.seq;
  bool open = false;
  auto field = [&](const char* name, auto value) {
    oss << (open ? ", " : "(") << name << '=' << value;
    open = true;
  };
  if (op.root >= 0) {
    field(op.kind == OpKind::kSend || op.kind == OpKind::kIsend   ? "to"
          : op.kind == OpKind::kRecv || op.kind == OpKind::kIrecv ? "from"
                                                                  : "root",
          op.root);
  }
  if (op.tag >= 0) field("tag", op.tag);
  if (bytes_are_signature(op.kind) || op.kind == OpKind::kSend ||
      op.kind == OpKind::kRecv || op.kind == OpKind::kIsend || op.bytes > 0) {
    field("bytes", op.bytes);
  }
  if (open) oss << ')';
  return oss.str();
}

bool verify_enabled_by_default() {
#ifdef NEURO_PAR_VERIFY
  return true;
#else
  const char* env = std::getenv("NEURO_PAR_VERIFY");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
#endif
}

std::chrono::milliseconds verify_timeout() {
  if (const char* env = std::getenv("NEURO_PAR_VERIFY_TIMEOUT_MS")) {
    const long ms = std::strtol(env, nullptr, 10);
    if (ms > 0) return std::chrono::milliseconds(ms);
  }
  return std::chrono::milliseconds(10000);
}

}  // namespace neuro::par

// Collective-order verification for the SPMD runtime.
//
// The communicator's collectives are only correct when every rank issues the
// same sequence of operations; a single diverging rank turns the central
// barrier into silent data corruption (one rank reads stale slots) or a
// deadlock (one rank waits for a message that never comes). Neither failure
// mode is acceptable in a runtime whose headline use is an intraoperative
// solve, so debug builds can record each rank's collective call stream and
// cross-check the streams at every synchronization point, aborting with a
// per-rank report naming the diverging call instead of hanging.
//
// Enabling the verifier (see docs/static_analysis.md):
//   * compile with -DNEURO_PAR_VERIFY (CMake: -DNEURO_PAR_VERIFY=ON) to force
//     it on for every Team, or
//   * set the NEURO_PAR_VERIFY environment variable to a non-zero value, or
//   * pass SpmdOptions{.verify = SpmdOptions::Verify::kOn} to run_spmd.
// When disabled the runtime takes the exact pre-verifier code paths plus one
// predictable branch per collective (measured < 2% on bench_micro comm ops).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "base/check.h"

namespace neuro::par {

/// Kinds of operations the verifier tracks. Collective kinds must be issued
/// by every rank together; send/recv are pairwise and only recorded so they
/// appear in divergence reports.
enum class OpKind : std::uint8_t {
  kBarrier,
  kBroadcast,
  kAllreduceSum,
  kAllreduceMax,
  kAllreduceMin,
  kAllgatherv,
  kAllgatherParts,
  kSend,
  kRecv,
  kIsend,  ///< nonblocking send posted (completion is eager in this runtime)
  kIrecv,  ///< nonblocking recv posted; the matching wait() completes it
  kExit,   ///< rank left the SPMD body (normally or by exception)
};

/// Human-readable name, e.g. "allreduce_sum".
const char* op_kind_name(OpKind kind);

/// One recorded operation in a rank's call stream.
struct CollectiveOp {
  OpKind kind = OpKind::kBarrier;
  std::uint64_t seq = 0;   ///< per-rank index of this verified operation
  int root = -1;           ///< broadcast root; peer rank for send/recv
  int tag = -1;            ///< point-to-point tag
  std::uint64_t bytes = 0; ///< payload bytes contributed by this rank
};

/// True when two ranks' operations are compatible as one collective: kinds,
/// roots and tags must agree; byte counts must agree only for the fixed-size
/// reductions (broadcast and the gathers are legitimately ragged).
bool ops_match(const CollectiveOp& a, const CollectiveOp& b);

/// Formats an op for reports, e.g. "allreduce_sum#12(bytes=8)".
std::string format_op(const CollectiveOp& op);

/// Thrown on every participating rank when the verifier detects a divergence
/// (mismatched collectives, a rank exiting while others wait, or a recv that
/// can no longer be matched). run_spmd rethrows it to the caller.
class CollectiveMismatchError : public CheckError {
 public:
  explicit CollectiveMismatchError(const std::string& what) : CheckError(what) {}
};

/// Resolves the default verification switch: true when the library was
/// compiled with NEURO_PAR_VERIFY, else the NEURO_PAR_VERIFY environment
/// variable ("", "0" and unset mean off). Read once per Team construction.
bool verify_enabled_by_default();

/// How long a verified recv (or a verified rank blocked behind a failure)
/// waits before declaring the run wedged. NEURO_PAR_VERIFY_TIMEOUT_MS
/// overrides the 10 s default.
std::chrono::milliseconds verify_timeout();

}  // namespace neuro::par

// Deterministic per-rank work accounting.
//
// The real parallel code paths (assembly, SpMV, preconditioner application,
// orthogonalization) record how much arithmetic and memory traffic each rank
// performed and how many bytes crossed the communicator. These records are
// deterministic functions of the input (mesh, partition, solver path), so the
// scaling curves derived from them by neuro::perf reproduce the *shape* of the
// paper's timing figures — including the load imbalances the paper analyzes —
// even though this host cannot time a 16-node cluster directly. See DESIGN.md §2.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace neuro::par {

/// Work performed by one rank within one phase.
struct WorkRecord {
  double flops = 0.0;        ///< floating-point operations
  double mem_bytes = 0.0;    ///< bytes read+written by compute kernels
  double comm_bytes = 0.0;   ///< point-to-point payload bytes sent by this rank
  double comm_msgs = 0.0;    ///< point-to-point messages sent by this rank
  double coll_rounds = 0.0;  ///< collective operations participated in
  double coll_bytes = 0.0;   ///< payload bytes contributed to collectives
  /// Nonblocking point-to-point traffic (isend/irecv). Kept apart from the
  /// blocking counters because the cost model may hide it behind compute
  /// (perf::predict_phase_seconds charges only the exposed remainder).
  double overlap_comm_bytes = 0.0;  ///< payload bytes sent via isend
  double overlap_comm_msgs = 0.0;   ///< messages sent via isend

  WorkRecord& operator+=(const WorkRecord& o) {
    flops += o.flops;
    mem_bytes += o.mem_bytes;
    comm_bytes += o.comm_bytes;
    comm_msgs += o.comm_msgs;
    coll_rounds += o.coll_rounds;
    coll_bytes += o.coll_bytes;
    overlap_comm_bytes += o.overlap_comm_bytes;
    overlap_comm_msgs += o.overlap_comm_msgs;
    return *this;
  }
};

/// Per-rank accumulator. Owned by the Communicator; not thread-shared.
class WorkCounter {
 public:
  void add_flops(double n) { current_.flops += n; }
  void add_mem_bytes(double n) { current_.mem_bytes += n; }
  void add_comm(double bytes, double msgs = 1.0) {
    current_.comm_bytes += bytes;
    current_.comm_msgs += msgs;
  }
  /// Nonblocking variant: the payload may overlap with compute, so it is
  /// tracked separately and priced as max(0, transfer - compute) by perf.
  void add_comm_overlapped(double bytes, double msgs = 1.0) {
    current_.overlap_comm_bytes += bytes;
    current_.overlap_comm_msgs += msgs;
  }
  void add_collective(double bytes) {
    current_.coll_rounds += 1.0;
    current_.coll_bytes += bytes;
  }

  /// Returns the work accumulated since the last take() and resets it.
  WorkRecord take() {
    WorkRecord r = current_;
    current_ = WorkRecord{};
    return r;
  }

  [[nodiscard]] const WorkRecord& current() const { return current_; }

 private:
  WorkRecord current_;
};

/// Work of all ranks for each named phase of a run, e.g.
/// phases()["assemble"][r] is rank r's assembly work.
///
/// Storage is an ordered map on purpose: phase records feed exported perf
/// reports, and iterating an unordered container there would make the report
/// bytes depend on the hash-table layout of the run
/// (tools/lint/check_numerics.py, rule `unordered-iteration`). Sorted keys
/// make every export byte-stable run-to-run.
class PhaseWork {
 public:
  void record(const std::string& phase, std::vector<WorkRecord> per_rank) {
    phases_[phase] = std::move(per_rank);
  }

  [[nodiscard]] const std::vector<WorkRecord>& phase(const std::string& name) const;

  [[nodiscard]] bool has_phase(const std::string& name) const {
    return phases_.count(name) > 0;
  }

  /// Phase names in sorted (iteration) order — the order every export uses.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Deterministic per-phase, per-rank work table: phases in sorted key
  /// order, ranks ascending, fixed formatting. Two identical runs produce
  /// byte-identical report text.
  void write_report(std::ostream& os) const;

 private:
  std::map<std::string, std::vector<WorkRecord>> phases_;
};

}  // namespace neuro::par

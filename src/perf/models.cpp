#include "perf/models.h"

#include "base/check.h"

namespace neuro::perf {

PlatformModel deep_flow_cluster() {
  PlatformModel p;
  p.name = "Deep Flow (16x Alpha 21164A 533MHz, Fast Ethernet)";
  // ~533 MHz EV56 with small on-chip caches and a 2MB L3: sustained sparse
  // matrix kernels of the era ran at a few percent of peak.
  p.machine = {"Alpha 21164A 533MHz", 7.0e7, 1.5e8};
  // 100 Mbps full duplex TCP: ~11 MB/s payload, O(100us) software latency.
  p.net = {"Fast Ethernet", 1.2e-4, 1.1e7};
  p.intra_box_net = p.net;
  p.ranks_per_box = 1;  // every rank is its own box: P>1 always crosses Ethernet
  return p;
}

PlatformModel ultra_hpc_6000() {
  PlatformModel p;
  p.name = "Sun Ultra HPC 6000 (20x UltraSPARC-II 250MHz, SMP)";
  p.machine = {"UltraSPARC-II 250MHz", 4.5e7, 1.0e8};
  // Gigaplane bus: low latency, high bandwidth, but shared — modeled as a
  // fast network; contention shows up through the per-rank memory term.
  p.net = {"Gigaplane SMP bus", 4.0e-6, 2.5e8};
  p.intra_box_net = p.net;
  p.ranks_per_box = 1 << 20;
  return p;
}

PlatformModel dual_ultra80_cluster() {
  PlatformModel p;
  p.name = "2x Sun Ultra 80 (4x UltraSPARC-II 450MHz each, Fast Ethernet)";
  p.machine = {"UltraSPARC-II 450MHz", 8.0e7, 1.6e8};
  p.net = {"Fast Ethernet", 1.2e-4, 1.1e7};
  p.intra_box_net = {"Ultra 80 bus", 4.0e-6, 3.0e8};
  p.ranks_per_box = 4;
  return p;
}

double predict_phase_seconds(const PlatformModel& platform,
                             std::span<const par::WorkRecord> per_rank) {
  NEURO_REQUIRE(!per_rank.empty(), "predict_phase_seconds: no ranks");
  const int nranks = static_cast<int>(per_rank.size());
  const NetworkModel& net = platform.network_for(nranks);

  double critical_path = 0.0;
  double coll_rounds = 0.0;
  double coll_bytes = 0.0;
  for (const auto& w : per_rank) {
    const double compute = platform.machine.compute_seconds(w);
    double t = compute;
    if (nranks > 1) {
      t += net.p2p_seconds(w.comm_bytes, w.comm_msgs);
      // Nonblocking traffic proceeds while the rank computes; only the part
      // of the transfer that the compute cannot hide is charged.
      const double overlapped =
          net.p2p_seconds(w.overlap_comm_bytes, w.overlap_comm_msgs);
      t += std::max(0.0, overlapped - compute);
    }
    critical_path = std::max(critical_path, t);
    coll_rounds = std::max(coll_rounds, w.coll_rounds);
    coll_bytes = std::max(coll_bytes, w.coll_bytes);
  }
  return critical_path + net.collective_seconds(nranks, coll_rounds, coll_bytes);
}

double compute_imbalance(const MachineModel& machine,
                         std::span<const par::WorkRecord> per_rank) {
  NEURO_REQUIRE(!per_rank.empty(), "compute_imbalance: no ranks");
  double max_t = 0.0;
  double sum_t = 0.0;
  for (const auto& w : per_rank) {
    const double t = machine.compute_seconds(w);
    max_t = std::max(max_t, t);
    sum_t += t;
  }
  const double mean = sum_t / static_cast<double>(per_rank.size());
  return mean > 0.0 ? max_t / mean : 1.0;
}

}  // namespace neuro::perf

// Machine and network cost models for the scaling studies.
//
// The paper times its parallel FEM on three 1999-era platforms (its Fig. 3 and
// §2.2): a 16-node Compaq Alpha 21164A/533 cluster on Fast Ethernet ("Deep
// Flow"), a 20-CPU Sun Ultra HPC 6000 SMP, and two 4-CPU Sun Ultra 80s on Fast
// Ethernet. None of that hardware is available here, so per DESIGN.md §2 we
// run the real SPMD algorithm, record each rank's deterministic work
// (flops/bytes/messages), and convert work to time with the models below.
// The *sustained* rates are calibrated so single-CPU times land near the
// paper's curves; the scaling shape comes from the measured work distribution,
// not from the model.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "par/work_counter.h"

namespace neuro::perf {

/// Per-CPU compute throughput model (roofline-style: flops and memory traffic
/// each take time; kernels here are memory-bound so mem_bytes dominates).
struct MachineModel {
  std::string name;
  double flops_per_sec = 1e8;      ///< sustained double-precision rate
  double mem_bytes_per_sec = 2e8;  ///< sustained per-CPU memory bandwidth

  [[nodiscard]] double compute_seconds(const par::WorkRecord& w) const {
    return w.flops / flops_per_sec + w.mem_bytes / mem_bytes_per_sec;
  }
};

/// Interconnect model. Collectives are costed as log2(P) latency-bound rounds
/// plus bandwidth on the payload, matching tree-based MPI implementations of
/// the era; point-to-point is latency + payload/bandwidth.
struct NetworkModel {
  std::string name;
  double latency_sec = 1e-4;           ///< per-message software+wire latency
  double bandwidth_bytes_per_sec = 1e7;

  [[nodiscard]] double p2p_seconds(double bytes, double msgs) const {
    return msgs * latency_sec + bytes / bandwidth_bytes_per_sec;
  }

  [[nodiscard]] double collective_seconds(int nranks, double rounds,
                                          double bytes) const {
    if (nranks <= 1) return 0.0;
    const double hops = std::ceil(std::log2(static_cast<double>(nranks)));
    return rounds * hops * latency_sec +
           hops * bytes / bandwidth_bytes_per_sec;
  }
};

/// A platform: one machine model plus the interconnect that ranks talk over.
/// For the hybrid 2x4-CPU Ultra 80 cluster, messages among the first
/// `smp_ranks_per_box` ranks of a box use the bus; the rest cross Ethernet.
/// We approximate by using the slow network once P exceeds one box.
struct PlatformModel {
  std::string name;
  MachineModel machine;
  NetworkModel net;              ///< interconnect between boxes
  NetworkModel intra_box_net;    ///< interconnect within a box (== net for
                                 ///< uniform platforms)
  int ranks_per_box = 1 << 20;   ///< effectively "all ranks in one box"

  [[nodiscard]] const NetworkModel& network_for(int nranks) const {
    return nranks > ranks_per_box ? net : intra_box_net;
  }
};

/// "Deep Flow": 16 Compaq Alpha 21164A 533 MHz workstations, RedHat Linux,
/// 100 Mbps full-duplex Fast Ethernet (paper Fig. 3).
PlatformModel deep_flow_cluster();

/// Sun Ultra HPC 6000: 20 UltraSPARC-II 250 MHz CPUs, shared memory.
PlatformModel ultra_hpc_6000();

/// Two Sun Ultra 80 boxes, 4 UltraSPARC-II 450 MHz CPUs each, Fast Ethernet
/// between the boxes.
PlatformModel dual_ultra80_cluster();

/// Predicted wall-clock for one phase executed by `per_rank.size()` ranks:
///   max over ranks of (compute + point-to-point) + collective cost.
/// Blocking point-to-point traffic (comm_bytes/comm_msgs) is charged in full;
/// nonblocking traffic (overlap_comm_bytes/overlap_comm_msgs, from isend) is
/// assumed to progress while the rank computes, so only the exposed remainder
/// max(0, transfer - compute) is charged. Batched allreduces show up as fewer
/// coll_rounds with larger coll_bytes, which the tree model prices as fewer
/// latency-bound hops — the honest cost of the fused Krylov reductions.
double predict_phase_seconds(const PlatformModel& platform,
                             std::span<const par::WorkRecord> per_rank);

/// Load imbalance of a phase: max(compute) / mean(compute). 1.0 is perfect.
double compute_imbalance(const MachineModel& machine,
                         std::span<const par::WorkRecord> per_rank);

}  // namespace neuro::perf

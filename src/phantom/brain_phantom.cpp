#include "phantom/brain_phantom.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "image/filters.h"

namespace neuro::phantom {

double tissue_intensity(Tissue t) {
  // Loosely modelled on T1-weighted 0.5T IMRI appearance (paper Fig. 4:
  // "the skin bright, the brain gray and the lateral ventricles dark").
  switch (t) {
    case Tissue::kBackground: return 8.0;
    case Tissue::kSkin: return 215.0;
    case Tissue::kSkullGap: return 32.0;
    case Tissue::kBrain: return 130.0;
    case Tissue::kVentricle: return 45.0;
    case Tissue::kFalx: return 75.0;
    case Tissue::kTumor: return 180.0;
  }
  return 0.0;
}

double BrainGeometry::ellipsoid_rho(const Vec3& p, const Vec3& c, const Vec3& semi) {
  const Vec3 u{(p.x - c.x) / semi.x, (p.y - c.y) / semi.y, (p.z - c.z) / semi.z};
  return norm(u);
}

BrainGeometry::BrainGeometry(const PhantomConfig& config) : config_(config) {
  const Vec3 extent{config.dims.x * config.spacing.x, config.dims.y * config.spacing.y,
                    config.dims.z * config.spacing.z};
  center_ = extent * 0.5;
  // Distinct semi-axes: real heads are longer anterior-posterior than they
  // are tall, and the asymmetry makes rigid rotations identifiable (a
  // y=z-symmetric head leaves rotation about x unconstrained for the
  // registration stage).
  head_semi_ = {0.40 * extent.x, 0.45 * extent.y, 0.34 * extent.z};
  lobe_offset_ = {0.16 * head_semi_.x, 0.0, 0.0};
  lobe_semi_ = {0.64 * head_semi_.x, 0.80 * head_semi_.y, 0.78 * head_semi_.z};
  vent_semi_ = {0.11 * head_semi_.x, 0.30 * head_semi_.y, 0.16 * head_semi_.z};
  vent_offset_ = {0.20 * head_semi_.x, 0.02 * head_semi_.y, 0.08 * head_semi_.z};
  tumor_radius_ = 0.16 * head_semi_.x;
  tumor_center_ = center_ + Vec3{0.38 * head_semi_.x, 0.10 * head_semi_.y,
                                 0.38 * head_semi_.z};
  craniotomy_center_ = {tumor_center_.x, tumor_center_.y, center_.z + head_semi_.z};
}

Tissue BrainGeometry::tissue_at(const Vec3& p) const {
  const double rho_head = ellipsoid_rho(p, center_, head_semi_);
  if (rho_head > 1.0) return Tissue::kBackground;

  const double rho_l = ellipsoid_rho(p, center_ - lobe_offset_, lobe_semi_);
  const double rho_r = ellipsoid_rho(p, center_ + lobe_offset_, lobe_semi_);
  const bool in_brain = std::min(rho_l, rho_r) <= 1.0;

  if (!in_brain) {
    // Between brain and skin: outer shell is skin, the rest is skull + CSF.
    return rho_head > 0.93 ? Tissue::kSkin : Tissue::kSkullGap;
  }

  // Interior structures, highest precedence first.
  const double rho_v1 = ellipsoid_rho(p, center_ - vent_offset_, vent_semi_);
  const double rho_v2 = ellipsoid_rho(p, center_ + vent_offset_, vent_semi_);
  if (std::min(rho_v1, rho_v2) <= 1.0) return Tissue::kVentricle;

  if (config_.with_tumor && norm(p - tumor_center_) <= tumor_radius_) {
    return Tissue::kTumor;
  }

  if (config_.with_falx && std::abs(p.x - center_.x) < 1.3 && p.z > center_.z) {
    return Tissue::kFalx;
  }

  return Tissue::kBrain;
}

double BrainGeometry::brain_interior_weight(const Vec3& p) const {
  const double rho_l = ellipsoid_rho(p, center_ - lobe_offset_, lobe_semi_);
  const double rho_r = ellipsoid_rho(p, center_ + lobe_offset_, lobe_semi_);
  const double rho = std::min(rho_l, rho_r);
  // Approximate interior depth in mm from the normalized radius.
  const double mean_semi = (lobe_semi_.x + lobe_semi_.y + lobe_semi_.z) / 3.0;
  const double depth_mm = (1.0 - rho) * mean_semi;
  return std::clamp(depth_mm / 4.0, 0.0, 1.0);
}

bool BrainGeometry::inside_skull(const Vec3& p) const {
  return ellipsoid_rho(p, center_, head_semi_) <= 0.90;
}

Vec3 BrainGeometry::shift_at(const Vec3& p, const ShiftConfig& shift) const {
  Vec3 v{};
  // The brain slides within the CSF gap: the field lives on brain tissue and
  // is zero outside it (skull and skin do not move). The *exposed* surface
  // under the craniotomy carries the full sinking — this is what makes the
  // deformation recoverable from surface correspondences, as in the paper —
  // while the anchored base (h → 0) and the lateral margins (wc → 0) stay put.
  const double rho_l = ellipsoid_rho(p, center_ - lobe_offset_, lobe_semi_);
  const double rho_r = ellipsoid_rho(p, center_ + lobe_offset_, lobe_semi_);
  if (std::min(rho_l, rho_r) > 1.0) return v;  // outside the brain

  // Gravity sinking under the craniotomy: backward field points *up* (an
  // intraop point maps to the higher preop point the tissue came from).
  const double dx = p.x - craniotomy_center_.x;
  const double dy = p.y - craniotomy_center_.y;
  const double s2 = shift.craniotomy_sigma_mm * shift.craniotomy_sigma_mm;
  const double wc = std::exp(-0.5 * (dx * dx + dy * dy) / s2);
  const double brain_bottom = center_.z - lobe_semi_.z;
  const double h =
      std::clamp((p.z - brain_bottom) / (2.0 * lobe_semi_.z), 0.0, 1.0);
  // Lateral rim taper: the brain is tethered at its lateral margins (falx,
  // tentorium, bridging structures), so the sag vanishes toward the side
  // walls. This also keeps the true motion normal-dominant at every surface,
  // i.e. observable by surface matching (no purely tangential slide that no
  // surface-driven registration — the paper's included — could recover).
  const double rho_xy_l = std::hypot((p.x - (center_.x - lobe_offset_.x)) / lobe_semi_.x,
                                     (p.y - center_.y) / lobe_semi_.y);
  const double rho_xy_r = std::hypot((p.x - (center_.x + lobe_offset_.x)) / lobe_semi_.x,
                                     (p.y - center_.y) / lobe_semi_.y);
  const double wl =
      std::clamp((1.0 - std::min(rho_xy_l, rho_xy_r)) / 0.35, 0.0, 1.0);
  v.z += shift.max_sink_mm * wc * wl * std::pow(h, shift.depth_exponent);

  // Collapse toward the resection cavity: tissue near the removed tumor moves
  // inward, so the backward field points away from the cavity center.
  if (shift.resect_tumor && shift.resection_collapse_mm > 0.0) {
    const Vec3 d = p - tumor_center_;
    const double r = norm(d);
    if (r > 1e-9) {
      const double rs2 = shift.resection_sigma_mm * shift.resection_sigma_mm;
      const double wr = std::exp(-0.5 * r * r / rs2);
      v += (shift.resection_collapse_mm * wr / r) * d;
    }
  }
  return v;
}

ImageF render_intensities(const ImageL& labels) {
  ImageF img(labels.dims(), 0.0f, labels.spacing(), labels.origin());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    img.data()[i] =
        static_cast<float>(tissue_intensity(static_cast<Tissue>(labels.data()[i])));
  }
  return img;
}

PhantomCase make_case(const PhantomConfig& config, const ShiftConfig& shift,
                      const RigidTransform& rigid_offset) {
  PhantomCase c;
  c.config = config;
  c.shift = shift;
  c.rigid_offset = rigid_offset;
  c.geometry = BrainGeometry(config);
  const BrainGeometry& geo = c.geometry;

  // --- Preoperative scan: anatomy in its initial configuration. ---
  c.preop_labels = ImageL(config.dims, 0, config.spacing, {0, 0, 0});
  const IVec3 d = config.dims;
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        c.preop_labels(i, j, k) = label(geo.tissue_at(c.preop_labels.voxel_to_physical(i, j, k)));
      }
    }
  }
  Rng rng(config.seed);
  c.preop = gaussian_smooth(render_intensities(c.preop_labels), 0.7);
  add_rician_noise(c.preop, config.noise_sigma, rng);

  // --- Intraoperative scan: backward warp through rigid offset + shift. ---
  // Intraop voxel y samples anatomy at x = R^-1(y) + v(R^-1(y)).
  c.intraop_labels = ImageL(config.dims, 0, config.spacing, {0, 0, 0});
  c.true_backward_shift = ImageV(config.dims, Vec3{}, config.spacing, {0, 0, 0});
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        const Vec3 y = c.intraop_labels.voxel_to_physical(i, j, k);
        const Vec3 q = rigid_offset.apply_inverse(y);
        const Vec3 x = q + geo.shift_at(q, shift);
        c.true_backward_shift(i, j, k) = x - y;
        Tissue t = geo.tissue_at(x);
        if (shift.resect_tumor && t == Tissue::kTumor) {
          // Tissue loss: the resection cavity images dark, like the
          // "large dark region" the paper describes in its Fig. 5.
          t = Tissue::kBackground;
        }
        // Fluid fills the space the sinking brain vacates: an intracranial
        // point whose source maps outside the parenchyma (into skin or air)
        // images as CSF, not as stretched scalp.
        if ((t == Tissue::kSkin || t == Tissue::kBackground) && geo.inside_skull(q) &&
            !(shift.resect_tumor &&
              norm(x - geo.tumor_center()) <= geo.tumor_radius())) {
          t = Tissue::kSkullGap;
        }
        c.intraop_labels(i, j, k) = label(t);
      }
    }
  }
  Rng rng2 = rng.split(1);
  c.intraop = gaussian_smooth(render_intensities(c.intraop_labels), 0.7);
  add_rician_noise(c.intraop, config.noise_sigma, rng2);
  apply_intensity_drift(c.intraop, config.intensity_drift);

  return c;
}

ShiftConfig shift_at_progress(const ShiftConfig& final_shift, double progress,
                              double resection_onset) {
  NEURO_REQUIRE(progress >= 0.0 && progress <= 1.0,
                "shift_at_progress: progress must lie in [0,1], got " << progress);
  ShiftConfig s = final_shift;
  s.max_sink_mm *= progress;
  const bool resected = final_shift.resect_tumor && progress >= resection_onset;
  s.resect_tumor = resected;
  s.resection_collapse_mm = resected ? final_shift.resection_collapse_mm *
                                           (progress - resection_onset) /
                                           std::max(1e-9, 1.0 - resection_onset)
                                     : 0.0;
  return s;
}

std::vector<PhantomCase> make_case_sequence(
    const PhantomConfig& config, const ShiftConfig& final_shift,
    const std::vector<double>& progress,
    const std::vector<RigidTransform>& rigid_offsets) {
  NEURO_REQUIRE(rigid_offsets.empty() || rigid_offsets.size() == progress.size(),
                "make_case_sequence: rigid_offsets must be empty or match "
                "progress count");
  std::vector<PhantomCase> cases;
  cases.reserve(progress.size());
  for (std::size_t i = 0; i < progress.size(); ++i) {
    PhantomConfig pc = config;
    // Fresh intraop noise per scan, shared preop (same base seed).
    pc.seed = config.seed + 1000 * i;
    const RigidTransform offset =
        rigid_offsets.empty() ? RigidTransform{} : rigid_offsets[i];
    cases.push_back(
        make_case(pc, shift_at_progress(final_shift, progress[i]), offset));
    // All scans of one procedure share the preoperative acquisition.
    if (i > 0) {
      cases[i].preop = cases[0].preop;
      cases[i].preop_labels = cases[0].preop_labels;
    }
  }
  return cases;
}

}  // namespace neuro::phantom

// Synthetic brain MRI phantom.
//
// The paper evaluates on intraoperative 0.5 T MRI of two neurosurgery
// patients; patient data cannot be shipped, so this module generates a
// deterministic digital phantom with the same structure the paper's images
// have (its Fig. 4: bright skin, a dark skull/CSF gap, gray brain, dark
// lateral ventricles, a stiff falx plane, a tumor) plus an *analytic*
// brain-shift + resection deformation used to synthesize the "intraoperative"
// scan. Unlike the real data, the phantom carries its ground-truth
// deformation, so registration error becomes quantifiable (DESIGN.md §2).
//
// Geometry is a two-lobe (non-convex) brain inside an ellipsoidal head; the
// shift field models the paper's observation of the brain surface "sinking"
// under the craniotomy while the skull base stays fixed.
#pragma once

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "base/vec3.h"
#include "image/image3d.h"
#include "image/transform.h"

namespace neuro::phantom {

/// Tissue labels. Values are stable across the library (tests, mesher and
/// pipeline all switch on them).
enum class Tissue : std::uint8_t {
  kBackground = 0,  ///< air outside the head
  kSkin = 1,        ///< scalp/fat — bright on MR
  kSkullGap = 2,    ///< skull + subarachnoid CSF — dark
  kBrain = 3,       ///< parenchyma — mid gray
  kVentricle = 4,   ///< lateral ventricles — dark
  kFalx = 5,        ///< cerebral falx — stiff membrane between hemispheres
  kTumor = 6,       ///< resection target
};

constexpr std::uint8_t label(Tissue t) { return static_cast<std::uint8_t>(t); }

/// Mean MR intensity per tissue (arbitrary units matched to an 8-bit window).
double tissue_intensity(Tissue t);

struct PhantomConfig {
  IVec3 dims{96, 96, 80};
  Vec3 spacing{2.0, 2.0, 2.0};  ///< mm; paper-era IMRI is ~1x1x2.5
  std::uint64_t seed = 42;
  double noise_sigma = 3.0;      ///< Rician noise level (intensity units)
  double intensity_drift = 0.015;  ///< scan-to-scan multiplicative drift
  bool with_tumor = true;
  bool with_falx = true;
};

/// Analytic brain-shift model. The field is expressed *backward*: for an
/// intraoperative point y, the matching preoperative point is y + v(y).
/// This makes synthesizing the intraop scan a single backward warp and gives
/// an exact ground truth for evaluation.
struct ShiftConfig {
  double max_sink_mm = 8.0;        ///< peak surface sinking under the craniotomy
  double craniotomy_sigma_mm = 35.0;  ///< lateral Gaussian extent of the shift
  /// Depth profile exponent: sinking scales with h^e where h ∈ [0,1] is the
  /// normalized height above the anchored brain base. e = 1 (linear decay
  /// with depth) is the harmonic/elastostatic profile for a slowly varying
  /// surface load; larger e concentrates the shift near the surface.
  double depth_exponent = 1.0;
  double resection_collapse_mm = 3.0; ///< extra collapse toward the cavity
  double resection_sigma_mm = 18.0;
  bool resect_tumor = true;        ///< remove the tumor (tissue loss)
};

/// Analytic geometry of one phantom instance (all physical/mm coordinates).
class BrainGeometry {
 public:
  explicit BrainGeometry(const PhantomConfig& config);

  /// Tissue at a physical point (pre-deformation anatomy).
  [[nodiscard]] Tissue tissue_at(const Vec3& p) const;

  /// Smooth "inside brain" factor in [0,1]: 1 well inside, 0 outside; used to
  /// confine the shift field to brain tissue.
  [[nodiscard]] double brain_interior_weight(const Vec3& p) const;

  /// True when p lies strictly inside the skull (inside the head, below the
  /// skin shell). The space the sinking brain vacates here fills with CSF.
  [[nodiscard]] bool inside_skull(const Vec3& p) const;

  /// Backward shift field v(y) (see ShiftConfig).
  [[nodiscard]] Vec3 shift_at(const Vec3& p, const ShiftConfig& shift) const;

  [[nodiscard]] Vec3 head_center() const { return center_; }
  [[nodiscard]] Vec3 tumor_center() const { return tumor_center_; }
  [[nodiscard]] double tumor_radius() const { return tumor_radius_; }
  [[nodiscard]] Vec3 craniotomy_center() const { return craniotomy_center_; }

 private:
  /// Normalized radial coordinate of p in an ellipsoid (1 on its surface).
  static double ellipsoid_rho(const Vec3& p, const Vec3& c, const Vec3& semi);

  PhantomConfig config_;
  Vec3 center_;
  Vec3 head_semi_;      ///< head (skin) ellipsoid semi-axes
  Vec3 lobe_offset_;    ///< +/- x offset of the two brain lobes
  Vec3 lobe_semi_;      ///< per-lobe semi-axes
  Vec3 vent_semi_;      ///< ventricle semi-axes
  Vec3 vent_offset_;
  Vec3 tumor_center_;
  double tumor_radius_ = 0.0;
  Vec3 craniotomy_center_;
};

/// A complete synthetic neurosurgery case.
struct PhantomCase {
  PhantomConfig config;
  ShiftConfig shift;

  ImageF preop;          ///< preoperative MR intensities
  ImageL preop_labels;   ///< preoperative segmentation (the "atlas")
  ImageF intraop;        ///< intraoperative MR after brain shift (+ optional rigid offset)
  ImageL intraop_labels; ///< ground-truth intraop segmentation
  ImageV true_backward_shift;  ///< v(y) on the intraop grid, physical units
  RigidTransform rigid_offset; ///< patient repositioning applied on top of the shift

  BrainGeometry geometry{PhantomConfig{}};
};

/// Generates a case. When `rigid_offset` is non-identity it is composed on
/// top of the biomechanical shift, exercising the MI rigid-registration stage.
PhantomCase make_case(const PhantomConfig& config, const ShiftConfig& shift,
                      const RigidTransform& rigid_offset = {});

/// One timepoint of a multi-scan procedure: the shift amplitudes are the
/// final ones scaled by `progress` ∈ [0,1]; the tumor counts as resected once
/// progress reaches `resection_onset` (before that the cavity terms are off).
/// Mirrors the paper's protocol of repeated scans "as the surgeon checked the
/// progress of tumor resection".
ShiftConfig shift_at_progress(const ShiftConfig& final_shift, double progress,
                              double resection_onset = 0.5);

/// A whole procedure: one shared preoperative acquisition plus one
/// intraoperative scan per `progress` entry (each with fresh noise, drift,
/// and its own `rigid_offset` composition when provided).
std::vector<PhantomCase> make_case_sequence(
    const PhantomConfig& config, const ShiftConfig& final_shift,
    const std::vector<double>& progress,
    const std::vector<RigidTransform>& rigid_offsets = {});

/// Renders labels to MR intensities (noise-free); exposed for tests.
ImageF render_intensities(const ImageL& labels);

}  // namespace neuro::phantom

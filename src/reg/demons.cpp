#include "reg/demons.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "image/filters.h"
#include "reg/rigid_registration.h"

namespace neuro::reg {

namespace {

/// Component-wise Gaussian smoothing of a vector field.
ImageV smooth_field(const ImageV& field, double sigma) {
  std::array<ImageF, 3> parts;
  for (int c = 0; c < 3; ++c) {
    parts[static_cast<std::size_t>(c)] =
        ImageF(field.dims(), 0.0f, field.spacing(), field.origin());
    for (std::size_t i = 0; i < field.size(); ++i) {
      parts[static_cast<std::size_t>(c)].data()[i] =
          static_cast<float>(field.data()[i][static_cast<std::size_t>(c)]);
    }
    parts[static_cast<std::size_t>(c)] =
        gaussian_smooth(parts[static_cast<std::size_t>(c)], sigma);
  }
  ImageV out(field.dims(), Vec3{}, field.spacing(), field.origin());
  for (std::size_t i = 0; i < field.size(); ++i) {
    out.data()[i] = {parts[0].data()[i], parts[1].data()[i], parts[2].data()[i]};
  }
  return out;
}

/// Resamples a (coarse) field onto a finer grid, keeping physical values.
ImageV upsample_field(const ImageV& coarse, const ImageF& fine_grid) {
  ImageV out(fine_grid.dims(), Vec3{}, fine_grid.spacing(), fine_grid.origin());
  const IVec3 d = out.dims();
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        const Vec3 p = out.voxel_to_physical(i, j, k);
        out(i, j, k) = sample_trilinear_vec(coarse, coarse.physical_to_voxel(p));
      }
    }
  }
  return out;
}

double mad_between(const ImageF& a, const ImageF& b) {
  double sum = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += std::abs(static_cast<double>(a.data()[i]) - b.data()[i]);
  }
  return sum / static_cast<double>(a.size());
}

/// Local backward warp (core::warp_backward lives above this library in the
/// dependency graph, and the metric only needs a plain resample).
ImageF warp_through(const ImageF& img, const ImageV& field) {
  ImageF out(field.dims(), 0.0f, field.spacing(), field.origin());
  const IVec3 d = out.dims();
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        const Vec3 y = out.voxel_to_physical(i, j, k);
        out(i, j, k) = static_cast<float>(
            sample_trilinear(img, img.physical_to_voxel(y + field(i, j, k))));
      }
    }
  }
  return out;
}

}  // namespace

DemonsResult demons_registration(const ImageF& fixed, const ImageF& moving,
                                 const DemonsConfig& config) {
  NEURO_REQUIRE(fixed.dims() == moving.dims(), "demons: grid mismatch");
  NEURO_REQUIRE(config.iterations > 0 && config.pyramid_levels >= 1,
                "demons: bad config");

  // Pyramids, coarsest last.
  std::vector<ImageF> fixed_pyr{fixed}, moving_pyr{moving};
  for (int l = 1; l < config.pyramid_levels; ++l) {
    fixed_pyr.push_back(downsample2(fixed_pyr.back()));
    moving_pyr.push_back(downsample2(moving_pyr.back()));
  }

  DemonsResult result;
  result.initial_mad = mad_between(fixed, moving);

  ImageV field;  // built at the coarsest level, upsampled inward
  for (int l = config.pyramid_levels - 1; l >= 0; --l) {
    const ImageF& f = fixed_pyr[static_cast<std::size_t>(l)];
    const ImageF& m = moving_pyr[static_cast<std::size_t>(l)];
    if (field.empty()) {
      field = ImageV(f.dims(), Vec3{}, f.spacing(), f.origin());
    } else {
      field = upsample_field(field, f);
    }
    const ImageV grad_fixed = gradient(f);
    const Vec3 sp = f.spacing();
    const double mean_spacing2 = (sp.x * sp.x + sp.y * sp.y + sp.z * sp.z) / 3.0;

    for (int it = 0; it < config.iterations; ++it) {
      for (int k = 0; k < f.dims().z; ++k) {
        for (int j = 0; j < f.dims().y; ++j) {
          for (int i = 0; i < f.dims().x; ++i) {
            const Vec3 y = f.voxel_to_physical(i, j, k);
            const double mv =
                sample_trilinear(m, m.physical_to_voxel(y + field(i, j, k)));
            const double diff = mv - static_cast<double>(f(i, j, k));
            const Vec3 g = grad_fixed(i, j, k);
            const double denom = norm2(g) + diff * diff / mean_spacing2;
            if (denom < 1e-9) continue;
            Vec3 step = (-diff / denom) * g;
            const double len = norm(step);
            if (len > config.max_step_mm) step *= config.max_step_mm / len;
            field(i, j, k) += step;
          }
        }
      }
      field = smooth_field(field, config.smoothing_sigma);
      ++result.iterations;
    }
  }

  result.backward_field = std::move(field);
  result.final_mad = mad_between(fixed, warp_through(moving, result.backward_field));
  return result;
}

}  // namespace neuro::reg

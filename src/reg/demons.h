// Demons nonrigid registration (Thirion) — the image-based baseline.
//
// The paper divides prior work into biomechanical models and "a
// phenomenological approach relying upon image related criteria" (its refs.
// [5, 6]; the authors' own earlier method [22, 23] is of this class and the
// paper explicitly says it "does not constitute an accurate biomechanical
// simulation … it is not possible to use such an approach for quantitative
// prediction"). Demons is the canonical member of that class: an iterative
// optical-flow-style update driven purely by intensity differences, with
// Gaussian smoothing as the only regularizer. The baseline bench puts it
// against the biomechanical pipeline on the phantom, where ground truth
// makes the accuracy and fold-count differences measurable.
#pragma once

#include "image/image3d.h"

namespace neuro::reg {

struct DemonsConfig {
  int iterations = 60;
  double smoothing_sigma = 1.5;  ///< field regularization per iteration (voxels)
  double max_step_mm = 2.0;      ///< per-iteration displacement clamp
  int pyramid_levels = 2;        ///< coarse-to-fine
};

struct DemonsResult {
  ImageV backward_field;  ///< v on the fixed grid: fixed point y samples moving at y+v(y)
  double initial_mad = 0.0;
  double final_mad = 0.0;
  int iterations = 0;
};

/// Estimates a dense backward field aligning `moving` to `fixed` (both on the
/// same grid): warp_backward(moving, field) ≈ fixed.
DemonsResult demons_registration(const ImageF& fixed, const ImageF& moving,
                                 const DemonsConfig& config = {});

}  // namespace neuro::reg

#include "reg/mutual_information.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace neuro::reg {

JointHistogram::JointHistogram(int bins, double fixed_lo, double fixed_hi,
                               double moving_lo, double moving_hi)
    : bins_(bins),
      fixed_lo_(fixed_lo),
      fixed_hi_(fixed_hi),
      moving_lo_(moving_lo),
      moving_hi_(moving_hi),
      joint_(static_cast<std::size_t>(bins) * static_cast<std::size_t>(bins), 0.0) {
  NEURO_REQUIRE(bins >= 2, "JointHistogram: need at least 2 bins");
  NEURO_REQUIRE(fixed_hi > fixed_lo && moving_hi > moving_lo,
                "JointHistogram: empty intensity range");
}

int JointHistogram::bin(double v, double lo, double hi) const {
  const double t = (v - lo) / (hi - lo);
  int b = static_cast<int>(t * bins_);
  return std::clamp(b, 0, bins_ - 1);
}

void JointHistogram::add(double fixed_value, double moving_value) {
  const int bf = bin(fixed_value, fixed_lo_, fixed_hi_);
  const int bm = bin(moving_value, moving_lo_, moving_hi_);
  joint_[static_cast<std::size_t>(bf) * static_cast<std::size_t>(bins_) +
         static_cast<std::size_t>(bm)] += 1.0;
  ++samples_;
}

void JointHistogram::clear() {
  std::fill(joint_.begin(), joint_.end(), 0.0);
  samples_ = 0;
}

namespace {
double entropy_of(const std::vector<double>& p, double total) {
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (const double c : p) {
    if (c > 0.0) {
      const double q = c / total;
      h -= q * std::log(q);
    }
  }
  return h;
}
}  // namespace

double JointHistogram::fixed_entropy() const {
  std::vector<double> marg(static_cast<std::size_t>(bins_), 0.0);
  for (int f = 0; f < bins_; ++f) {
    for (int m = 0; m < bins_; ++m) {
      marg[static_cast<std::size_t>(f)] +=
          joint_[static_cast<std::size_t>(f) * static_cast<std::size_t>(bins_) +
                 static_cast<std::size_t>(m)];
    }
  }
  return entropy_of(marg, static_cast<double>(samples_));
}

double JointHistogram::moving_entropy() const {
  std::vector<double> marg(static_cast<std::size_t>(bins_), 0.0);
  for (int f = 0; f < bins_; ++f) {
    for (int m = 0; m < bins_; ++m) {
      marg[static_cast<std::size_t>(m)] +=
          joint_[static_cast<std::size_t>(f) * static_cast<std::size_t>(bins_) +
                 static_cast<std::size_t>(m)];
    }
  }
  return entropy_of(marg, static_cast<double>(samples_));
}

double JointHistogram::joint_entropy() const {
  return entropy_of(joint_, static_cast<double>(samples_));
}

std::pair<double, double> intensity_range(const ImageF& img) {
  double lo = 1e300, hi = -1e300;
  for (const float v : img.data()) {
    lo = std::min(lo, static_cast<double>(v));
    hi = std::max(hi, static_cast<double>(v));
  }
  if (hi <= lo) hi = lo + 1.0;
  return {lo, hi};
}

double mutual_information(const ImageF& fixed, const ImageF& moving,
                          const RigidTransform& transform, const MiConfig& config) {
  NEURO_REQUIRE(config.sample_stride >= 1, "mutual_information: bad sample stride");
  const auto [flo, fhi] = intensity_range(fixed);
  const auto [mlo, mhi] = intensity_range(moving);
  JointHistogram hist(config.bins, flo, fhi, mlo, mhi);

  const IVec3 d = fixed.dims();
  const IVec3 md = moving.dims();
  for (int k = 0; k < d.z; k += config.sample_stride) {
    for (int j = 0; j < d.y; j += config.sample_stride) {
      for (int i = 0; i < d.x; i += config.sample_stride) {
        const Vec3 p = fixed.voxel_to_physical(i, j, k);
        const Vec3 v = moving.physical_to_voxel(transform.apply(p));
        if (v.x < 0 || v.y < 0 || v.z < 0 || v.x > md.x - 1 || v.y > md.y - 1 ||
            v.z > md.z - 1) {
          continue;
        }
        hist.add(static_cast<double>(fixed(i, j, k)), sample_trilinear(moving, v));
      }
    }
  }
  return hist.mutual_information();
}

double mean_squared_difference(const ImageF& fixed, const ImageF& moving,
                               const RigidTransform& transform,
                               const MiConfig& config) {
  NEURO_REQUIRE(config.sample_stride >= 1, "mean_squared_difference: bad stride");
  const IVec3 d = fixed.dims();
  const IVec3 md = moving.dims();
  double sum = 0.0;
  std::size_t n = 0;
  for (int k = 0; k < d.z; k += config.sample_stride) {
    for (int j = 0; j < d.y; j += config.sample_stride) {
      for (int i = 0; i < d.x; i += config.sample_stride) {
        const Vec3 p = fixed.voxel_to_physical(i, j, k);
        const Vec3 v = moving.physical_to_voxel(transform.apply(p));
        if (v.x < 0 || v.y < 0 || v.z < 0 || v.x > md.x - 1 || v.y > md.y - 1 ||
            v.z > md.z - 1) {
          continue;
        }
        const double diff =
            static_cast<double>(fixed(i, j, k)) - sample_trilinear(moving, v);
        sum += diff * diff;
        ++n;
      }
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace neuro::reg

// Mutual-information image similarity (paper's rigid-registration metric,
// after Wells et al., its ref. [20]).
//
// MI(A,B) = H(A) + H(B) - H(A,B) estimated from a joint intensity histogram
// over sampled fixed-image voxels mapped into the moving image. MI is the
// metric of choice here because the preoperative and intraoperative scans
// have globally consistent but not identical intensity characteristics
// (scanner drift, different noise realizations).
#pragma once

#include "image/image3d.h"
#include "image/transform.h"

namespace neuro::reg {

struct MiConfig {
  int bins = 32;
  int sample_stride = 2;  ///< use every stride-th voxel along each axis
};

/// Joint histogram between a fixed and a transformed moving image.
class JointHistogram {
 public:
  JointHistogram(int bins, double fixed_lo, double fixed_hi, double moving_lo,
                 double moving_hi);

  void add(double fixed_value, double moving_value);
  void clear();

  [[nodiscard]] std::size_t samples() const { return samples_; }

  /// Shannon entropies (nats). Empty histogram ⇒ all zero.
  [[nodiscard]] double fixed_entropy() const;
  [[nodiscard]] double moving_entropy() const;
  [[nodiscard]] double joint_entropy() const;
  [[nodiscard]] double mutual_information() const {
    return fixed_entropy() + moving_entropy() - joint_entropy();
  }

 private:
  [[nodiscard]] int bin(double v, double lo, double hi) const;

  int bins_;
  double fixed_lo_, fixed_hi_, moving_lo_, moving_hi_;
  std::vector<double> joint_;  // bins x bins, row = fixed bin
  std::size_t samples_ = 0;
};

/// Intensity range (min, max) of an image.
std::pair<double, double> intensity_range(const ImageF& img);

/// MI of `fixed` vs `moving ∘ transform` (transform maps fixed-space physical
/// points into moving space). Samples outside the moving volume are skipped.
double mutual_information(const ImageF& fixed, const ImageF& moving,
                          const RigidTransform& transform, const MiConfig& config);

/// Mean squared intensity difference over the same sampling scheme (the
/// classical mono-modality metric). Exposed as the MI baseline: unlike MI it
/// degrades under the scan-to-scan intensity drift / remapping that
/// intraoperative imaging exhibits — the reason the paper registers with MI.
double mean_squared_difference(const ImageF& fixed, const ImageF& moving,
                               const RigidTransform& transform,
                               const MiConfig& config);

}  // namespace neuro::reg

#include "reg/rigid_registration.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "base/check.h"
#include "image/filters.h"

namespace neuro::reg {

ImageF downsample2(const ImageF& img) {
  const IVec3 d = img.dims();
  const IVec3 nd{std::max(1, d.x / 2), std::max(1, d.y / 2), std::max(1, d.z / 2)};
  ImageF out(nd, 0.0f,
             {img.spacing().x * d.x / nd.x, img.spacing().y * d.y / nd.y,
              img.spacing().z * d.z / nd.z},
             img.origin());
  for (int k = 0; k < nd.z; ++k) {
    for (int j = 0; j < nd.y; ++j) {
      for (int i = 0; i < nd.x; ++i) {
        // Average the source block (folding any odd remainder into the last).
        const int i1 = (i + 1 == nd.x) ? d.x : 2 * (i + 1);
        const int j1 = (j + 1 == nd.y) ? d.y : 2 * (j + 1);
        const int k1 = (k + 1 == nd.z) ? d.z : 2 * (k + 1);
        double acc = 0.0;
        int n = 0;
        for (int kk = 2 * k; kk < k1; ++kk) {
          for (int jj = 2 * j; jj < j1; ++jj) {
            for (int ii = 2 * i; ii < i1; ++ii) {
              acc += static_cast<double>(img(ii, jj, kk));
              ++n;
            }
          }
        }
        out(i, j, k) = static_cast<float>(acc / n);
      }
    }
  }
  return out;
}

namespace {

/// Golden-section line search for the maximum of f on [a, b] after a simple
/// expansion bracketing around 0 with step `step`. Returns the best t.
template <typename F>
double line_search_max(F&& f, double step, int* evals) {
  // Bracket: evaluate at -step, 0, +step, expand toward the better side.
  double t0 = -step, t1 = 0.0, t2 = step;
  double f0 = f(t0), f1 = f(t1), f2 = f(t2);
  *evals += 3;
  int guard = 0;
  while (guard++ < 12) {
    if (f1 >= f0 && f1 >= f2) break;  // bracketed
    if (f0 > f2) {
      t2 = t1; f2 = f1;
      t1 = t0; f1 = f0;
      t0 = t1 - 2.0 * (t2 - t1);
      f0 = f(t0);
    } else {
      t0 = t1; f0 = f1;
      t1 = t2; f1 = f2;
      t2 = t1 + 2.0 * (t1 - t0);
      f2 = f(t2);
    }
    ++*evals;
  }
  // Golden-section refinement on [t0, t2].
  constexpr double kInvPhi = 0.6180339887498949;
  double a = t0, b = t2;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double fx1 = f(x1), fx2 = f(x2);
  *evals += 2;
  for (int it = 0; it < 18 && (b - a) > 1e-6 + 1e-3 * step; ++it) {
    if (fx1 >= fx2) {
      b = x2;
      x2 = x1; fx2 = fx1;
      x1 = b - kInvPhi * (b - a);
      fx1 = f(x1);
    } else {
      a = x1;
      x1 = x2; fx1 = fx2;
      x2 = a + kInvPhi * (b - a);
      fx2 = f(x2);
    }
    ++*evals;
  }
  return fx1 >= fx2 ? x1 : x2;
}

}  // namespace

RigidRegistrationResult register_rigid_mi(const ImageF& fixed, const ImageF& moving,
                                          const RigidRegistrationConfig& config,
                                          const RigidTransform& initial) {
  NEURO_REQUIRE(config.pyramid_levels >= 1, "register_rigid_mi: need >= 1 level");

  // Build pyramids, coarsest last.
  std::vector<ImageF> fixed_pyr{
      config.metric_smoothing_sigma > 0.0
          ? gaussian_smooth(fixed, config.metric_smoothing_sigma)
          : fixed};
  std::vector<ImageF> moving_pyr{
      config.metric_smoothing_sigma > 0.0
          ? gaussian_smooth(moving, config.metric_smoothing_sigma)
          : moving};
  for (int l = 1; l < config.pyramid_levels; ++l) {
    fixed_pyr.push_back(downsample2(fixed_pyr.back()));
    moving_pyr.push_back(downsample2(moving_pyr.back()));
  }

  const IVec3 fd = fixed.dims();
  const Vec3 center = fixed.voxel_to_physical(
      Vec3{(fd.x - 1) / 2.0, (fd.y - 1) / 2.0, (fd.z - 1) / 2.0});

  RigidRegistrationResult result;
  std::array<double, 6> params = initial.params();
  int evals = 0;

  for (int l = config.pyramid_levels - 1; l >= 0; --l) {
    const ImageF& f_img = fixed_pyr[static_cast<std::size_t>(l)];
    const ImageF& m_img = moving_pyr[static_cast<std::size_t>(l)];
    // Coarse levels tolerate a denser sampling because they are small.
    MiConfig mi = config.mi;

    auto metric = [&](const std::array<double, 6>& p) {
      ++evals;
      const RigidTransform t = RigidTransform::from_params(p, center);
      // The optimizer maximizes; SSD enters negated.
      return config.metric == MetricKind::kMutualInformation
                 ? mutual_information(f_img, m_img, t, mi)
                 : -mean_squared_difference(f_img, m_img, t, mi);
    };

    // Step sizes shrink on finer levels where the coarse solve got us close.
    const double scale = std::pow(0.5, config.pyramid_levels - 1 - l);
    double best = metric(params);
    for (int sweep = 0; sweep < config.powell_iterations; ++sweep) {
      const double before = best;
      for (int dim = 0; dim < 6; ++dim) {
        const double step = (dim < 3 ? config.initial_rot_step
                                     : config.initial_trans_step) *
                            scale;
        auto line = [&](double t) {
          std::array<double, 6> p = params;
          p[static_cast<std::size_t>(dim)] += t;
          return metric(p);
        };
        const double t = line_search_max(line, step, &evals);
        std::array<double, 6> p = params;
        p[static_cast<std::size_t>(dim)] += t;
        const double v = metric(p);
        if (v > best) {
          best = v;
          params = p;
        }
      }
      if (best - before < config.tolerance) break;
    }
    result.level_mi.push_back(best);
    result.mutual_information = best;
  }

  result.transform = RigidTransform::from_params(params, center);
  result.metric_evaluations = evals;
  return result;
}

}  // namespace neuro::reg

// Rigid registration by maximization of mutual information (paper §2 /
// ref. [20]): a multiresolution Powell-style optimizer over the 6 rigid
// parameters. "This method computes a global alignment accounting for
// positioning differences in the scan coordinates but does not attempt to
// correct for nonrigid deformation" — the nonrigid residual is what the
// biomechanical stage then explains.
#pragma once

#include <vector>

#include "image/image3d.h"
#include "image/transform.h"
#include "reg/mutual_information.h"

namespace neuro::reg {

/// Similarity metric driving the optimizer. The paper uses MI; SSD is the
/// mono-modality baseline, provided for comparison experiments.
enum class MetricKind { kMutualInformation, kMeanSquaredDifference };

struct RigidRegistrationConfig {
  MiConfig mi;
  MetricKind metric = MetricKind::kMutualInformation;
  /// Gaussian pre-smoothing (voxels) applied to both images before the
  /// metric. Suppresses interpolation-induced MI inflation: on noisy images,
  /// off-grid (rotated) sampling smooths the noise and spuriously raises MI,
  /// which otherwise rewards phantom rotations. 0 disables.
  double metric_smoothing_sigma = 1.0;
  int pyramid_levels = 2;        ///< 1 = full resolution only
  int powell_iterations = 4;     ///< sweeps over the 6-direction set
  double initial_rot_step = 0.03;   ///< rad; halved per pyramid level refinement
  double initial_trans_step = 4.0;  ///< physical units (mm)
  double tolerance = 1e-4;       ///< stop when a sweep improves MI by less
};

struct RigidRegistrationResult {
  RigidTransform transform;   ///< maps fixed-space points into moving space
  double mutual_information = 0.0;
  int metric_evaluations = 0;
  std::vector<double> level_mi;  ///< best MI per pyramid level (coarse→fine)
};

/// Downsamples an image by 2 along each axis (2x2x2 block mean); spacing is
/// doubled so physical geometry is preserved. Odd trailing samples fold into
/// the last block.
ImageF downsample2(const ImageF& img);

/// Finds the rigid transform maximizing MI(fixed, moving ∘ T), starting from
/// `initial`. The rotation center is fixed to the center of the fixed volume.
RigidRegistrationResult register_rigid_mi(const ImageF& fixed, const ImageF& moving,
                                          const RigidRegistrationConfig& config,
                                          const RigidTransform& initial = {});

}  // namespace neuro::reg

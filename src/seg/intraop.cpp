#include "seg/intraop.h"

#include <algorithm>

#include "base/check.h"
#include "base/rng.h"
#include "image/distance.h"

namespace neuro::seg {

FeatureStack build_feature_stack(const ImageF& scan, const ImageL& preop_labels,
                                 const IntraopSegmentationConfig& config) {
  NEURO_REQUIRE(scan.dims() == preop_labels.dims(),
                "build_feature_stack: scan/labels dims mismatch");
  NEURO_REQUIRE(!config.classes.empty(), "build_feature_stack: no classes configured");
  FeatureStack stack;
  stack.add_channel(scan, config.intensity_weight);
  for (const std::uint8_t cls : config.classes) {
    stack.add_channel(distance_to_label(preop_labels, cls, config.dt_saturation_mm),
                      config.dt_weight);
  }
  return stack;
}

IntraopSegmentation segment_intraop(const ImageF& scan, const ImageL& preop_labels,
                                    const IntraopSegmentationConfig& config,
                                    par::Communicator* comm,
                                    const std::vector<Prototype>* reuse) {
  FeatureStack stack = build_feature_stack(scan, preop_labels, config);

  IntraopSegmentation result;
  if (reuse != nullptr && !reuse->empty()) {
    result.prototypes = *reuse;
    refresh_prototypes(result.prototypes, stack);
  } else {
    // First scan: select the statistical model from the preoperative
    // segmentation (standing in for the < 5 minutes of expert interaction).
    Rng rng(config.seed);
    result.prototypes = select_prototypes_robust(
        preop_labels, stack, config.prototypes_per_class, rng,
        config.exclude_classes, config.prototype_margin_mm,
        config.prototype_trim_mads);
  }

  KnnClassifier classifier(result.prototypes, config.k);
  result.labels = comm != nullptr ? classifier.classify_volume_parallel(stack, *comm)
                                  : classifier.classify_volume(stack);
  return result;
}

ImageL mask_of_labels(const ImageL& labels, const std::vector<std::uint8_t>& keep) {
  ImageL mask(labels.dims(), 0, labels.spacing(), labels.origin());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const std::uint8_t l = labels.data()[i];
    if (std::find(keep.begin(), keep.end(), l) != keep.end()) mask.data()[i] = 1;
  }
  return mask;
}

}  // namespace neuro::seg

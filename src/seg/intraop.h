// Intraoperative segmentation driver (paper §2, Fig. 1 "Tissue Classification").
//
// Builds the multichannel feature space — intraoperative MR intensity plus one
// saturated-distance-transform channel per preoperative tissue class (the
// "explicit 3D volumetric spatially varying model of the location of that
// tissue class") — selects prototypes from the preoperative data, and runs the
// k-NN classifier to segment the new scan. A brain mask is derived from the
// result for the active-surface stage.
#pragma once

#include <cstdint>
#include <vector>

#include "image/image3d.h"
#include "par/communicator.h"
#include "seg/knn.h"

namespace neuro::seg {

struct IntraopSegmentationConfig {
  std::vector<std::uint8_t> classes;   ///< labels to model with DT channels
  /// Labels that get no prototypes (thin/rare structures — falx, tumor — that
  /// the intraoperative statistical model should not try to classify; their
  /// voxels fall to the nearest coarse class, as in the paper's five-class
  /// intraoperative model).
  std::vector<std::uint8_t> exclude_classes;
  /// Prototype robustness (see select_prototypes_robust): candidates must lie
  /// this far inside their class, and intensity outliers beyond
  /// `prototype_trim_mads` MADs of the class median are discarded. Together
  /// these keep the statistical model clean where brain shift has moved a
  /// different tissue under a recorded preoperative label.
  double prototype_margin_mm = 6.0;
  double prototype_trim_mads = 4.0;

  double dt_saturation_mm = 20.0;      ///< saturation cap of the localization model
  double dt_weight = 4.0;              ///< feature-space weight of DT channels
  double intensity_weight = 1.0;
  int prototypes_per_class = 60;
  int k = 5;
  std::uint64_t seed = 7;
};

/// Result of segmenting one intraoperative scan.
struct IntraopSegmentation {
  ImageL labels;                       ///< full classification
  std::vector<Prototype> prototypes;   ///< reusable statistical model
};

/// Builds the feature stack for a scan given the (registered) preoperative
/// segmentation: channel 0 is the scan intensity, then one saturated DT per
/// class in `config.classes`.
FeatureStack build_feature_stack(const ImageF& scan, const ImageL& preop_labels,
                                 const IntraopSegmentationConfig& config);

/// Segments an intraoperative scan. `preop_labels` must already be rigidly
/// aligned to the scan. If `reuse` is non-null, its prototypes' recorded
/// locations are refreshed against the new scan instead of selecting new ones
/// (the paper's automatic model update for follow-up scans).
IntraopSegmentation segment_intraop(const ImageF& scan, const ImageL& preop_labels,
                                    const IntraopSegmentationConfig& config,
                                    par::Communicator* comm = nullptr,
                                    const std::vector<Prototype>* reuse = nullptr);

/// Binary mask (1/0) of voxels carrying any of the given labels.
ImageL mask_of_labels(const ImageL& labels, const std::vector<std::uint8_t>& keep);

}  // namespace neuro::seg

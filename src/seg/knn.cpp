#include "seg/knn.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

#include "base/check.h"
#include "image/distance.h"

namespace neuro::seg {

void FeatureStack::add_channel(ImageF channel, double weight) {
  NEURO_REQUIRE(weight > 0.0, "FeatureStack: channel weight must be positive");
  if (!channels_.empty()) {
    NEURO_REQUIRE(channel.dims() == channels_.front().dims(),
                  "FeatureStack: channel dims mismatch");
  }
  channels_.push_back(std::move(channel));
  weights_.push_back(weight);
}

IVec3 FeatureStack::dims() const {
  NEURO_REQUIRE(!channels_.empty(), "FeatureStack: no channels");
  return channels_.front().dims();
}

std::size_t FeatureStack::voxels() const {
  NEURO_REQUIRE(!channels_.empty(), "FeatureStack: no channels");
  return channels_.front().size();
}

void FeatureStack::feature_at(int i, int j, int k, std::vector<double>& out) const {
  out.resize(channels_.size());
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    out[c] = weights_[c] * static_cast<double>(channels_[c](i, j, k));
  }
}

std::vector<Prototype> select_prototypes(const ImageL& truth, const FeatureStack& stack,
                                         int per_class, Rng& rng,
                                         const std::vector<std::uint8_t>& exclude) {
  NEURO_REQUIRE(per_class > 0, "select_prototypes: per_class must be positive");
  NEURO_REQUIRE(truth.dims() == stack.dims(), "select_prototypes: dims mismatch");

  // Bucket voxel indices by label.
  std::map<std::uint8_t, std::vector<IVec3>> by_label;
  const IVec3 d = truth.dims();
  for (int k = 0; k < d.z; ++k) {
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        const std::uint8_t l = truth(i, j, k);
        if (std::find(exclude.begin(), exclude.end(), l) != exclude.end()) continue;
        by_label[l].push_back({i, j, k});
      }
    }
  }

  std::vector<Prototype> prototypes;
  for (auto& [lbl, voxels] : by_label) {
    const int n = std::min<int>(per_class, static_cast<int>(voxels.size()));
    for (int s = 0; s < n; ++s) {
      // Sampling without replacement via partial Fisher–Yates.
      const std::size_t pick =
          static_cast<std::size_t>(s) +
          rng.uniform_index(voxels.size() - static_cast<std::size_t>(s));
      std::swap(voxels[static_cast<std::size_t>(s)], voxels[pick]);
      Prototype p;
      p.voxel = voxels[static_cast<std::size_t>(s)];
      p.label = lbl;
      stack.feature_at(p.voxel.x, p.voxel.y, p.voxel.z, p.features);
      prototypes.push_back(std::move(p));
    }
  }
  return prototypes;
}

std::vector<Prototype> select_prototypes_robust(
    const ImageL& truth, const FeatureStack& stack, int per_class, Rng& rng,
    const std::vector<std::uint8_t>& exclude, double margin_mm, double trim_mads) {
  NEURO_REQUIRE(per_class > 0, "select_prototypes_robust: per_class must be positive");
  NEURO_REQUIRE(truth.dims() == stack.dims(), "select_prototypes_robust: dims mismatch");

  // Distinct labels (minus exclusions).
  std::vector<std::uint8_t> classes;
  {
    std::array<bool, 256> seen{};
    for (const auto l : truth.data()) seen[l] = true;
    for (int l = 0; l < 256; ++l) {
      if (seen[static_cast<std::size_t>(l)] &&
          std::find(exclude.begin(), exclude.end(), static_cast<std::uint8_t>(l)) ==
              exclude.end()) {
        classes.push_back(static_cast<std::uint8_t>(l));
      }
    }
  }

  const IVec3 d = truth.dims();
  std::vector<Prototype> prototypes;
  for (const std::uint8_t cls : classes) {
    // Distance from every voxel to the nearest *other*-label voxel: inside
    // the class this is the interior depth.
    ImageL other(d, 0, truth.spacing(), truth.origin());
    for (std::size_t i = 0; i < truth.size(); ++i) {
      other.data()[i] = truth.data()[i] != cls ? 1 : 0;
    }
    const ImageF depth = distance_from_mask(other, 4.0 * margin_mm + 1.0);

    std::vector<IVec3> candidates;
    for (const double margin : {margin_mm, margin_mm / 2.0, 0.0}) {
      candidates.clear();
      for (int k = 0; k < d.z; ++k) {
        for (int j = 0; j < d.y; ++j) {
          for (int i = 0; i < d.x; ++i) {
            if (truth(i, j, k) == cls && depth(i, j, k) >= margin) {
              candidates.push_back({i, j, k});
            }
          }
        }
      }
      if (static_cast<int>(candidates.size()) >= per_class) break;
    }
    if (candidates.empty()) continue;

    // Sample without replacement.
    const int n = std::min<int>(per_class, static_cast<int>(candidates.size()));
    std::vector<Prototype> cls_protos;
    for (int s = 0; s < n; ++s) {
      const std::size_t pick =
          static_cast<std::size_t>(s) +
          rng.uniform_index(candidates.size() - static_cast<std::size_t>(s));
      std::swap(candidates[static_cast<std::size_t>(s)], candidates[pick]);
      Prototype p;
      p.voxel = candidates[static_cast<std::size_t>(s)];
      p.label = cls;
      stack.feature_at(p.voxel.x, p.voxel.y, p.voxel.z, p.features);
      cls_protos.push_back(std::move(p));
    }

    // Trim intensity outliers (channel 0) by median ± trim_mads * MAD.
    if (trim_mads > 0.0 && cls_protos.size() >= 4) {
      std::vector<double> intensities;
      intensities.reserve(cls_protos.size());
      for (const auto& p : cls_protos) intensities.push_back(p.features[0]);
      auto median_of = [](std::vector<double> v) {
        const std::size_t mid = v.size() / 2;
        std::nth_element(v.begin(), v.begin() + static_cast<long>(mid), v.end());
        return v[mid];
      };
      const double med = median_of(intensities);
      std::vector<double> deviations;
      deviations.reserve(intensities.size());
      for (const double v : intensities) deviations.push_back(std::abs(v - med));
      const double mad = std::max(median_of(deviations), 1e-6);

      std::vector<Prototype> kept;
      for (auto& p : cls_protos) {
        if (std::abs(p.features[0] - med) <= trim_mads * mad) {
          kept.push_back(std::move(p));
        }
      }
      if (kept.size() >= cls_protos.size() / 4) cls_protos = std::move(kept);
    }

    for (auto& p : cls_protos) prototypes.push_back(std::move(p));
  }
  NEURO_CHECK_MSG(!prototypes.empty(),
                  "select_prototypes_robust: no prototypes selectable");
  return prototypes;
}

void refresh_prototypes(std::vector<Prototype>& prototypes, const FeatureStack& stack) {
  for (auto& p : prototypes) {
    NEURO_REQUIRE(p.voxel.x >= 0 && p.voxel.x < stack.dims().x &&
                      p.voxel.y >= 0 && p.voxel.y < stack.dims().y &&
                      p.voxel.z >= 0 && p.voxel.z < stack.dims().z,
                  "refresh_prototypes: recorded location outside the new stack");
    stack.feature_at(p.voxel.x, p.voxel.y, p.voxel.z, p.features);
  }
}

KnnClassifier::KnnClassifier(std::vector<Prototype> prototypes, int k, Voting voting)
    : prototypes_(std::move(prototypes)), k_(k), voting_(voting) {
  NEURO_REQUIRE(k_ > 0, "KnnClassifier: k must be positive");
  NEURO_REQUIRE(!prototypes_.empty(), "KnnClassifier: need at least one prototype");
  const std::size_t nf = prototypes_.front().features.size();
  for (const auto& p : prototypes_) {
    NEURO_REQUIRE(p.features.size() == nf,
                  "KnnClassifier: inconsistent prototype feature sizes");
  }
}

std::uint8_t KnnClassifier::classify(const std::vector<double>& feature) const {
  NEURO_REQUIRE(feature.size() == prototypes_.front().features.size(),
                "KnnClassifier::classify: feature size mismatch");
  const int k = std::min<int>(k_, static_cast<int>(prototypes_.size()));

  // Partial selection of the k smallest squared distances.
  struct Hit {
    double d2;
    std::uint8_t label;
  };
  std::vector<Hit> best;
  best.reserve(static_cast<std::size_t>(k) + 1);
  for (const auto& p : prototypes_) {
    double d2 = 0.0;
    for (std::size_t c = 0; c < feature.size(); ++c) {
      const double diff = feature[c] - p.features[c];
      d2 += diff * diff;
    }
    if (static_cast<int>(best.size()) < k || d2 < best.back().d2) {
      const Hit h{d2, p.label};
      const auto pos = std::lower_bound(
          best.begin(), best.end(), h, [](const Hit& a, const Hit& b) { return a.d2 < b.d2; });
      best.insert(pos, h);
      if (static_cast<int>(best.size()) > k) best.pop_back();
    }
  }

  if (voting_ == Voting::kDistanceWeighted) {
    // Inverse-square-distance weights (ε regularizes exact hits).
    constexpr double kEps = 1e-9;
    std::map<std::uint8_t, double> weights;
    for (const auto& h : best) weights[h.label] += 1.0 / (h.d2 + kEps);
    std::uint8_t winner = best.front().label;
    double max_w = -1.0;
    for (const auto& [lbl, w] : weights) {
      if (w > max_w) {
        max_w = w;
        winner = lbl;
      }
    }
    return winner;
  }

  // Majority vote; ties go to the label whose nearest hit is closest.
  std::map<std::uint8_t, int> votes;
  for (const auto& h : best) ++votes[h.label];
  int max_votes = 0;
  for (const auto& [lbl, v] : votes) max_votes = std::max(max_votes, v);
  for (const auto& h : best) {  // best is distance-sorted
    if (votes[h.label] == max_votes) return h.label;
  }
  return best.front().label;
}

void KnnClassifier::classify_slab(const FeatureStack& stack, int k_begin, int k_end,
                                  ImageL& out) const {
  std::vector<double> feature;
  const IVec3 d = stack.dims();
  for (int k = k_begin; k < k_end; ++k) {
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        stack.feature_at(i, j, k, feature);
        out(i, j, k) = classify(feature);
      }
    }
  }
}

ImageL KnnClassifier::classify_volume(const FeatureStack& stack) const {
  const ImageF& ref = stack.channel(0);
  ImageL out(ref.dims(), 0, ref.spacing(), ref.origin());
  classify_slab(stack, 0, ref.dims().z, out);
  return out;
}

ImageL KnnClassifier::classify_volume_parallel(const FeatureStack& stack,
                                               par::Communicator& comm) const {
  const ImageF& ref = stack.channel(0);
  const IVec3 d = ref.dims();
  const int nranks = comm.size();
  const int rank = comm.rank();
  // Contiguous slice slabs, remainder spread over the first ranks.
  const int base = d.z / nranks;
  const int extra = d.z % nranks;
  const int begin = rank * base + std::min(rank, extra);
  const int end = begin + base + (rank < extra ? 1 : 0);

  ImageL out(d, 0, ref.spacing(), ref.origin());
  classify_slab(stack, begin, end, out);
  comm.work().add_flops(static_cast<double>(end - begin) * d.x * d.y *
                        static_cast<double>(prototypes_.size()) *
                        (3.0 * static_cast<double>(stack.channels())));

  // Gather the slabs: each rank contributes its slice range.
  const std::size_t slab_begin = out.index(0, 0, begin);
  const std::size_t slab_len = out.index(0, 0, end) - slab_begin;
  auto parts = comm.allgather_parts(std::span<const std::uint8_t>(
      out.data().data() + slab_begin, slab_len));
  std::size_t offset = 0;
  for (const auto& part : parts) {
    std::copy(part.begin(), part.end(), out.data().begin() + static_cast<long>(offset));
    offset += part.size();
  }
  NEURO_CHECK(offset == out.size());
  return out;
}

double label_agreement(const ImageL& a, const ImageL& b, const ImageL* mask) {
  NEURO_REQUIRE(a.dims() == b.dims(), "label_agreement: dims mismatch");
  std::size_t total = 0, same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (mask != nullptr && mask->data()[i] == 0) continue;
    ++total;
    if (a.data()[i] == b.data()[i]) ++same;
  }
  return total == 0 ? 1.0 : static_cast<double>(same) / static_cast<double>(total);
}

ConfusionMatrix::ConfusionMatrix(const ImageL& predicted, const ImageL& truth) {
  NEURO_REQUIRE(predicted.dims() == truth.dims(), "ConfusionMatrix: dims mismatch");
  std::array<bool, 256> seen{};
  for (const auto v : predicted.data()) seen[v] = true;
  for (const auto v : truth.data()) seen[v] = true;
  for (int l = 0; l < 256; ++l) {
    if (seen[static_cast<std::size_t>(l)]) {
      labels_.push_back(static_cast<std::uint8_t>(l));
    }
  }
  const std::size_t n = labels_.size();
  counts_.assign(n * n, 0);
  std::array<int, 256> index{};
  index.fill(-1);
  for (std::size_t i = 0; i < n; ++i) index[labels_[i]] = static_cast<int>(i);
  for (std::size_t v = 0; v < truth.size(); ++v) {
    const auto t = static_cast<std::size_t>(index[truth.data()[v]]);
    const auto p = static_cast<std::size_t>(index[predicted.data()[v]]);
    ++counts_[t * n + p];
    ++total_;
    correct_ += truth.data()[v] == predicted.data()[v];
  }
}

int ConfusionMatrix::index_of(std::uint8_t label) const {
  const auto it = std::lower_bound(labels_.begin(), labels_.end(), label);
  if (it == labels_.end() || *it != label) return -1;
  return static_cast<int>(it - labels_.begin());
}

std::size_t ConfusionMatrix::count(std::uint8_t truth_label,
                                   std::uint8_t predicted_label) const {
  const int t = index_of(truth_label);
  const int p = index_of(predicted_label);
  if (t < 0 || p < 0) return 0;
  return counts_[static_cast<std::size_t>(t) * labels_.size() +
                 static_cast<std::size_t>(p)];
}

double ConfusionMatrix::recall(std::uint8_t truth_label) const {
  const int t = index_of(truth_label);
  if (t < 0) return 1.0;
  std::size_t row_total = 0;
  for (std::size_t p = 0; p < labels_.size(); ++p) {
    row_total += counts_[static_cast<std::size_t>(t) * labels_.size() + p];
  }
  if (row_total == 0) return 1.0;
  return static_cast<double>(count(truth_label, truth_label)) /
         static_cast<double>(row_total);
}

double ConfusionMatrix::precision(std::uint8_t predicted_label) const {
  const int p = index_of(predicted_label);
  if (p < 0) return 1.0;
  std::size_t col_total = 0;
  for (std::size_t t = 0; t < labels_.size(); ++t) {
    col_total += counts_[t * labels_.size() + static_cast<std::size_t>(p)];
  }
  if (col_total == 0) return 1.0;
  return static_cast<double>(count(predicted_label, predicted_label)) /
         static_cast<double>(col_total);
}

double ConfusionMatrix::accuracy() const {
  return total_ == 0 ? 1.0 : static_cast<double>(correct_) / static_cast<double>(total_);
}

void ConfusionMatrix::print(std::ostream& os) const {
  // Format into a local stream so the caller's flags are never disturbed.
  std::ostringstream oss;
  oss << "  " << std::setw(10) << "truth\\pred";
  for (const auto l : labels_) oss << ' ' << std::setw(8) << static_cast<int>(l);
  oss << "   recall\n" << std::fixed << std::setprecision(3);
  for (const auto t : labels_) {
    oss << "  " << std::setw(10) << static_cast<int>(t);
    for (const auto p : labels_) {
      oss << ' ' << std::setw(8) << count(t, p);
    }
    oss << "   " << recall(t) << '\n';
  }
  oss << "  " << std::setw(10) << "precision";
  for (const auto p : labels_) oss << ' ' << std::setw(8) << precision(p);
  oss << "   acc " << accuracy() << '\n';
  os << oss.str();
}

double dice_coefficient(const ImageL& a, const ImageL& b, std::uint8_t l) {
  NEURO_REQUIRE(a.dims() == b.dims(), "dice_coefficient: dims mismatch");
  std::size_t na = 0, nb = 0, inter = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool ia = a.data()[i] == l;
    const bool ib = b.data()[i] == l;
    na += ia;
    nb += ib;
    inter += (ia && ib);
  }
  const std::size_t denom = na + nb;
  return denom == 0 ? 1.0 : 2.0 * static_cast<double>(inter) / static_cast<double>(denom);
}

}  // namespace neuro::seg

// k-NN tissue classification over multichannel feature vectors.
//
// The paper (§2) represents each voxel by a vector of the intraoperative MR
// intensity plus the spatially varying tissue-localization model (saturated
// distance transforms of the preoperative segmentation) and classifies it with
// k-NN against a small set of prototype voxels of known tissue type, selected
// once per surgery (< 5 min interaction) and reused — their *spatial
// locations* are recorded so the statistical model updates automatically on
// later scans. We reproduce that structure: prototypes are (feature, label)
// pairs with recorded voxel locations; classification is brute-force k-NN,
// parallelized over image slabs with neuro::par.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "base/rng.h"
#include "image/image3d.h"
#include "par/communicator.h"

namespace neuro::seg {

/// A stack of aligned scalar channels forming the classification feature space.
class FeatureStack {
 public:
  void add_channel(ImageF channel, double weight = 1.0);

  [[nodiscard]] std::size_t channels() const { return channels_.size(); }
  [[nodiscard]] IVec3 dims() const;
  [[nodiscard]] std::size_t voxels() const;

  /// Feature vector (weighted) of voxel (i,j,k), written into `out`
  /// (resized to channels()).
  void feature_at(int i, int j, int k, std::vector<double>& out) const;

  [[nodiscard]] const ImageF& channel(std::size_t c) const { return channels_[c]; }
  [[nodiscard]] double weight(std::size_t c) const { return weights_[c]; }

 private:
  std::vector<ImageF> channels_;
  std::vector<double> weights_;
};

/// A labeled prototype voxel: its recorded location and cached feature vector.
struct Prototype {
  IVec3 voxel;
  std::uint8_t label = 0;
  std::vector<double> features;
};

/// Selects up to `per_class` prototypes per label present in `truth`,
/// uniformly at random (deterministic in `rng`), mimicking the expert's
/// selection of "groups of prototypical voxels". Features are sampled from
/// `stack`. Labels listed in `exclude` get no prototypes.
std::vector<Prototype> select_prototypes(const ImageL& truth, const FeatureStack& stack,
                                         int per_class, Rng& rng,
                                         const std::vector<std::uint8_t>& exclude = {});

/// Robust prototype selection standing in for the paper's expert interaction
/// ("groups of prototypical voxels which represent the tissue classes"): the
/// expert picks *obviously representative* voxels on the new scan. Two
/// safeguards replicate that judgement when selection is driven by the
/// (pre-deformation) preoperative labels:
///  * interior margin — candidates must lie at least `margin_mm` inside their
///    class (away from any other label), where brain shift cannot have moved
///    a different tissue under the recorded location (falls back to half the
///    margin, then to no margin, for classes too thin to satisfy it);
///  * intensity trimming — prototypes whose channel-0 signal deviates from
///    their class median by more than `trim_mads` median-absolute-deviations
///    are discarded (no class is trimmed below a quarter of its prototypes).
std::vector<Prototype> select_prototypes_robust(
    const ImageL& truth, const FeatureStack& stack, int per_class, Rng& rng,
    const std::vector<std::uint8_t>& exclude, double margin_mm, double trim_mads);

/// Re-samples the feature vectors of existing prototypes from a new feature
/// stack (the paper's automatic model update when a new scan arrives: the
/// prototype *locations* persist, their signals are re-read).
void refresh_prototypes(std::vector<Prototype>& prototypes, const FeatureStack& stack);

/// Brute-force k-NN classifier.
class KnnClassifier {
 public:
  /// How the k nearest prototypes combine into a decision.
  enum class Voting {
    kMajority,          ///< one prototype, one vote (the classical rule)
    kDistanceWeighted,  ///< votes weighted by 1/(d² + ε) — smoother decision
                        ///< boundaries under class-imbalanced prototype sets
  };

  KnnClassifier(std::vector<Prototype> prototypes, int k,
                Voting voting = Voting::kMajority);

  /// Label of a single feature vector (among the k nearest prototypes;
  /// majority ties break toward the nearest member of the tied labels).
  [[nodiscard]] std::uint8_t classify(const std::vector<double>& feature) const;

  /// Classifies a whole feature stack serially.
  [[nodiscard]] ImageL classify_volume(const FeatureStack& stack) const;

  /// SPMD classification: each rank classifies a contiguous slab of slices,
  /// results are allgathered so every rank returns the full label volume.
  [[nodiscard]] ImageL classify_volume_parallel(const FeatureStack& stack,
                                                par::Communicator& comm) const;

  [[nodiscard]] const std::vector<Prototype>& prototypes() const { return prototypes_; }
  [[nodiscard]] int k() const { return k_; }

 private:
  void classify_slab(const FeatureStack& stack, int k_begin, int k_end,
                     ImageL& out) const;

  std::vector<Prototype> prototypes_;
  int k_;
  Voting voting_;
};

/// Fraction of voxels where `a == b` (optionally restricted to mask != 0).
double label_agreement(const ImageL& a, const ImageL& b, const ImageL* mask = nullptr);

/// Dice overlap coefficient of label `l` between two label maps.
double dice_coefficient(const ImageL& a, const ImageL& b, std::uint8_t l);

/// Per-label confusion statistics between a predicted and a truth label map —
/// the standard way to report which tissue pairs the classifier confuses
/// (e.g. resection cavity vs. ventricle, the failure mode §2's priors target).
class ConfusionMatrix {
 public:
  /// Builds from (predicted, truth); only labels present in either map get rows.
  ConfusionMatrix(const ImageL& predicted, const ImageL& truth);

  /// Voxels with truth `t` classified as `p`.
  [[nodiscard]] std::size_t count(std::uint8_t truth_label,
                                  std::uint8_t predicted_label) const;
  /// Recall (sensitivity) of a truth label; 1.0 when the label is absent.
  [[nodiscard]] double recall(std::uint8_t truth_label) const;
  /// Precision of a predicted label; 1.0 when never predicted.
  [[nodiscard]] double precision(std::uint8_t predicted_label) const;
  /// Overall voxel accuracy.
  [[nodiscard]] double accuracy() const;
  /// Labels appearing in either map, ascending.
  [[nodiscard]] const std::vector<std::uint8_t>& labels() const { return labels_; }

  /// Prints rows = truth, columns = predicted, plus recall/precision.
  void print(std::ostream& os) const;

 private:
  std::vector<std::uint8_t> labels_;
  std::vector<std::size_t> counts_;  ///< labels_.size()² row-major (truth, pred)
  std::size_t total_ = 0;
  std::size_t correct_ = 0;

  [[nodiscard]] int index_of(std::uint8_t label) const;
};

}  // namespace neuro::seg

// Bounded MPMC queue with typed rejection — the service backpressure
// primitive (docs/service.md).
//
// Overload discipline: producers never block and never grow memory. try_push
// either stores the item or returns a typed Status — kResourceExhausted when
// the ring is full (the caller surfaces the rejection to its client),
// kUnavailable once the queue is closed. Consumers pop with a bounded wait so
// a draining worker can observe shutdown instead of parking forever; after
// close() the remaining items stay poppable (drain semantics) and pop returns
// kUnavailable only when the queue is both closed and empty.
//
// Storage is a fixed-size ring over std::vector, sized once at construction —
// deliberately not std::deque/std::queue, whose unbounded growth under
// overload is exactly the failure mode this type exists to prevent (and which
// tools/lint/check_sources.py bans in src/service/).
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "base/check.h"
#include "base/mutex.h"
#include "base/status.h"
#include "base/thread_annotations.h"

namespace neuro::service {

template <class T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity), buffer_(capacity) {
    NEURO_REQUIRE(capacity > 0, "BoundedQueue: capacity must be positive");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Stores `item` or rejects it: kResourceExhausted when full, kUnavailable
  /// when closed. Never blocks, never allocates past the fixed ring.
  [[nodiscard]] base::Status try_push(T item) NEURO_EXCLUDES(mutex_) {
    base::MutexLock lock(mutex_);
    if (closed_) {
      return {base::StatusCode::kUnavailable, "BoundedQueue: closed"};
    }
    if (count_ == capacity_) {
      return {base::StatusCode::kResourceExhausted,
              "BoundedQueue: full at capacity " + std::to_string(capacity_)};
    }
    buffer_[(head_ + count_) % capacity_] = std::move(item);
    ++count_;
    if (count_ > max_depth_) max_depth_ = count_;
    nonempty_.notify_one();
    return {};
  }

  /// Removes the oldest item, waiting up to `timeout_seconds` for one to
  /// arrive. Errors: kDeadlineExceeded when the wait timed out with the queue
  /// still open, kUnavailable when the queue is closed *and* drained (the
  /// consumer's signal to exit its loop).
  [[nodiscard]] base::Outcome<T> pop(double timeout_seconds)
      NEURO_EXCLUDES(mutex_) {
    const auto timeout = std::chrono::duration<double>(timeout_seconds);
    base::MutexLock lock(mutex_);
    while (count_ == 0) {
      if (closed_) {
        return base::Status{base::StatusCode::kUnavailable,
                            "BoundedQueue: closed and drained"};
      }
      if (!nonempty_.wait_for(mutex_, timeout) && count_ == 0 && !closed_) {
        return base::Status{base::StatusCode::kDeadlineExceeded,
                            "BoundedQueue: pop timed out"};
      }
    }
    T item = std::move(buffer_[head_]);
    head_ = (head_ + 1) % capacity_;
    --count_;
    return item;
  }

  /// Stops admission (try_push returns kUnavailable from now on) and wakes
  /// every waiting consumer. Items already queued stay poppable.
  void close() NEURO_EXCLUDES(mutex_) {
    base::MutexLock lock(mutex_);
    closed_ = true;
    nonempty_.notify_all();
  }

  [[nodiscard]] bool closed() const NEURO_EXCLUDES(mutex_) {
    base::MutexLock lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const NEURO_EXCLUDES(mutex_) {
    base::MutexLock lock(mutex_);
    return count_;
  }

  /// High-water mark of size() over the queue's lifetime — the bench's
  /// queue-depth gauge; by construction never exceeds capacity().
  [[nodiscard]] std::size_t max_depth() const NEURO_EXCLUDES(mutex_) {
    base::MutexLock lock(mutex_);
    return max_depth_;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable base::Mutex mutex_;
  base::CondVar nonempty_;
  std::vector<T> buffer_ NEURO_GUARDED_BY(mutex_);  ///< fixed-size ring
  std::size_t head_ NEURO_GUARDED_BY(mutex_) = 0;
  std::size_t count_ NEURO_GUARDED_BY(mutex_) = 0;
  std::size_t max_depth_ NEURO_GUARDED_BY(mutex_) = 0;
  bool closed_ NEURO_GUARDED_BY(mutex_) = false;
};

}  // namespace neuro::service

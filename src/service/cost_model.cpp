#include "service/cost_model.h"

#include "base/check.h"

namespace neuro::service {

CostModel::CostModel(CostModelOptions options) : options_(options) {
  NEURO_REQUIRE(options_.alpha > 0.0 && options_.alpha <= 1.0,
                "CostModel: alpha must be in (0, 1], got " << options_.alpha);
  NEURO_REQUIRE(options_.prior_seconds >= 0.0,
                "CostModel: negative prior_seconds");
}

void CostModel::record(double megavoxels,
                       const std::vector<core::StageTiming>& timeline) {
  NEURO_REQUIRE(megavoxels > 0.0, "CostModel::record: non-positive size");
  double total = 0.0;
  base::MutexLock lock(mutex_);
  for (const auto& stage : timeline) {
    const double per_mvox = stage.seconds / megavoxels;
    auto [it, inserted] = stage_per_mvox_.try_emplace(stage.name, per_mvox);
    if (!inserted) {
      it->second += options_.alpha * (per_mvox - it->second);
    }
    total += stage.seconds;
  }
  if (observations_ == 0) {
    total_per_mvox_ = total / megavoxels;
    mean_service_ = total;
  } else {
    total_per_mvox_ += options_.alpha * (total / megavoxels - total_per_mvox_);
    mean_service_ += options_.alpha * (total - mean_service_);
  }
  ++observations_;
}

double CostModel::predict_service_seconds(double megavoxels) const {
  base::MutexLock lock(mutex_);
  if (observations_ == 0) return options_.prior_seconds;
  return total_per_mvox_ * megavoxels;
}

double CostModel::mean_service_seconds() const {
  base::MutexLock lock(mutex_);
  if (observations_ == 0) return options_.prior_seconds;
  return mean_service_;
}

double CostModel::predict_stage_seconds(const std::string& stage,
                                        double megavoxels) const {
  base::MutexLock lock(mutex_);
  const auto it = stage_per_mvox_.find(stage);
  if (it == stage_per_mvox_.end()) return 0.0;
  return it->second * megavoxels;
}

int CostModel::observations() const {
  base::MutexLock lock(mutex_);
  return observations_;
}

}  // namespace neuro::service

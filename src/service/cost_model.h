// Measured per-stage cost model for admission control (docs/service.md).
//
// The server cannot know a request's cost before running it, but it has seen
// requests like it: every completed scan reports its Fig. 6 stage timeline
// (rows that are views over the neuro::obs spans the pipeline records), and
// intraop voxel count is the dominant size driver across mixed acquisition
// matrices. The model keeps an exponentially-weighted moving average of
// seconds-per-megavoxel — per stage and in total — plus an EWMA of raw
// service seconds for queue-wait estimation, and predicts a request's service
// time from its voxel count alone, which is all admission control has in
// hand at submit time.
//
// Before the first observation the model answers with `prior_seconds`: an
// empty model must neither reject everything (prior too large) nor admit
// blindly (prior zero with tight deadlines); the operator picks the stance.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "core/pipeline.h"

namespace neuro::service {

struct CostModelOptions {
  double alpha = 0.35;         ///< EWMA weight of the newest observation
  double prior_seconds = 0.0;  ///< predicted service time before any data
};

class CostModel {
 public:
  explicit CostModel(CostModelOptions options = {});

  /// Records one completed request: the intraop scan size and the pipeline's
  /// stage timeline for that scan.
  void record(double megavoxels, const std::vector<core::StageTiming>& timeline)
      NEURO_EXCLUDES(mutex_);

  /// Predicted service seconds for a request over `megavoxels` of intraop
  /// data; `prior_seconds` until the first record().
  [[nodiscard]] double predict_service_seconds(double megavoxels) const
      NEURO_EXCLUDES(mutex_);

  /// EWMA of observed total service seconds irrespective of request size —
  /// the per-slot cost the queue-wait estimator multiplies by queue depth.
  [[nodiscard]] double mean_service_seconds() const NEURO_EXCLUDES(mutex_);

  /// Predicted seconds for one named pipeline stage at `megavoxels`
  /// (0 when the stage has not been observed yet).
  [[nodiscard]] double predict_stage_seconds(const std::string& stage,
                                             double megavoxels) const
      NEURO_EXCLUDES(mutex_);

  [[nodiscard]] int observations() const NEURO_EXCLUDES(mutex_);

 private:
  CostModelOptions options_;
  mutable base::Mutex mutex_;
  std::map<std::string, double> stage_per_mvox_ NEURO_GUARDED_BY(mutex_);
  double total_per_mvox_ NEURO_GUARDED_BY(mutex_) = 0.0;
  double mean_service_ NEURO_GUARDED_BY(mutex_) = 0.0;
  int observations_ NEURO_GUARDED_BY(mutex_) = 0;
};

}  // namespace neuro::service

#include "service/session_server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <thread>
#include <utility>

#include "base/check.h"
#include "fem/degradation.h"
#include "obs/flight_recorder.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace neuro::service {
namespace {

/// Request size in the unit the cost model is keyed on.
double megavoxels(const ImageF& image) {
  const IVec3 d = image.dims();
  return static_cast<double>(d.x) * d.y * d.z / 1e6;
}

/// The deadline handed to an already-expired request: small enough that the
/// ladder goes straight to its cheap rungs, nonzero so the pipeline does not
/// read it as "unlimited" (degrade, don't cancel).
constexpr double kMinSteeringSeconds = 1e-3;

/// Worker poll interval: bounds how long shutdown waits for an idle worker.
constexpr double kPopTimeoutSeconds = 0.2;

/// RAII over a RankPool grant: released on every exit path of process(),
/// including exceptions escaping the pipeline.
class RankGrant {
 public:
  RankGrant(RankPool& pool, int want)
      : pool_(pool), granted_(pool.acquire(want)) {}
  ~RankGrant() { pool_.release(granted_); }

  RankGrant(const RankGrant&) = delete;
  RankGrant& operator=(const RankGrant&) = delete;

  [[nodiscard]] int granted() const { return granted_; }

 private:
  RankPool& pool_;
  int granted_;
};

void observe_time_to_field(double seconds) {
  obs::metrics()
      .histogram("service.time_to_field_seconds",
                 {0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0})
      .observe(seconds);
}

}  // namespace

double RollingWindow::quantile(double q) const {
  const std::size_t n = count();
  if (n == 0) return 0.0;
  std::vector<double> sorted = history();
  std::sort(sorted.begin(), sorted.end());
  // Nearest-rank: the smallest sample with at least ceil(q*n) samples <= it.
  const double rank = std::ceil(q * static_cast<double>(n));
  std::size_t index = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  if (index >= n) index = n - 1;
  return sorted[index];
}

double RollingWindow::fraction_within(double threshold) const {
  const std::size_t n = count();
  if (n == 0) return 1.0;
  const std::vector<double> samples = history();
  std::size_t within = 0;
  for (const double sample : samples) {
    if (sample <= threshold) ++within;
  }
  return static_cast<double>(within) / static_cast<double>(n);
}

std::vector<double> RollingWindow::history() const {
  const std::size_t n = count();
  std::vector<double> out;
  out.reserve(n);
  const std::uint64_t start = next_ - n;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(samples_[static_cast<std::size_t>((start + i) %
                                                    samples_.size())]);
  }
  return out;
}

RankPool::RankPool(int capacity) : capacity_(capacity), free_(capacity) {
  NEURO_REQUIRE(capacity >= 1, "RankPool: capacity must be >= 1");
}

int RankPool::acquire(int want) {
  NEURO_REQUIRE(want >= 1, "RankPool::acquire: want must be >= 1");
  base::MutexLock lock(mutex_);
  while (free_ == 0) {
    freed_.wait(mutex_);
  }
  const int granted = std::min(want, free_);
  free_ -= granted;
  return granted;
}

void RankPool::release(int granted) {
  base::MutexLock lock(mutex_);
  free_ += granted;
  NEURO_REQUIRE(free_ <= capacity_, "RankPool::release: over-release");
  freed_.notify_all();
}

int RankPool::free_ranks() const {
  base::MutexLock lock(mutex_);
  return free_;
}

SessionServer::SessionServer(ServerOptions options)
    : options_(options),
      cost_(options.cost),
      queue_(options.queue_capacity),
      pool_(options.rank_pool),
      ttf_window_(options.telemetry.window),
      queue_depth_history_(options.telemetry.window) {
  NEURO_REQUIRE(options_.workers >= 0, "SessionServer: negative worker count");
  NEURO_REQUIRE(options_.ranks_per_solve >= 1,
                "SessionServer: ranks_per_solve must be >= 1");
  NEURO_REQUIRE(options_.retry.max_retries >= 0,
                "SessionServer: negative max_retries");
  NEURO_REQUIRE(options_.admission_margin > 0.0,
                "SessionServer: admission_margin must be positive");
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  if (options_.telemetry.publish_interval_seconds > 0.0 &&
      !options_.telemetry.snapshot_path.empty()) {
    publisher_ = std::thread([this] { telemetry_loop(); });
  }
}

SessionServer::~SessionServer() { shutdown(); }

SessionId SessionServer::open_session(ImageF preop, ImageL preop_labels,
                                      core::PipelineConfig config) {
  auto state = std::make_unique<SessionState>();
  state->preop = std::move(preop);
  state->labels = std::move(preop_labels);
  state->config = std::move(config);
  base::MutexLock lock(state_mutex_);
  NEURO_REQUIRE(!draining_, "SessionServer::open_session: server is draining");
  const SessionId id(next_session_id_++);
  sessions_.emplace(id, std::move(state));
  return id;
}

void SessionServer::evict_session(SessionId session) {
  SessionState* state = find_session(session);
  NEURO_REQUIRE(state != nullptr,
                "SessionServer::evict_session: unknown session "
                    << session.value());
  base::MutexLock lock(state->mutex);
  state->live.reset();
}

core::SessionCheckpoint SessionServer::session_checkpoint(
    SessionId session) const {
  SessionState* state = find_session(session);
  NEURO_REQUIRE(state != nullptr,
                "SessionServer::session_checkpoint: unknown session "
                    << session.value());
  base::MutexLock lock(state->mutex);
  if (state->live != nullptr) return state->live->checkpoint();
  return state->checkpoint;
}

base::Outcome<RequestTicket> SessionServer::submit(
    SessionId session, ImageF intraop, RequestOptions request_options) {
  SessionState* state = nullptr;
  bool draining = false;
  {
    base::MutexLock lock(state_mutex_);
    ++stats_.submitted;
    draining = draining_;
    const auto it = sessions_.find(session);
    if (it != sessions_.end()) state = it->second.get();
  }
  obs::metrics().counter("service.submitted").add();
  if (draining) {
    return reject({base::StatusCode::kUnavailable,
                   "SessionServer: draining, not admitting new requests"});
  }
  if (state == nullptr) {
    std::ostringstream oss;
    oss << "SessionServer: unknown session " << session.value();
    return reject({base::StatusCode::kFailedPrecondition, oss.str()});
  }

  const double deadline_seconds = request_options.deadline_seconds < 0.0
                                      ? options_.default_deadline_seconds
                                      : request_options.deadline_seconds;
  base::DeadlineBudget budget(deadline_seconds);
  if (budget.limited()) {
    // Admission control: reject work the measured cost model says cannot
    // finish inside its budget, instead of queueing it to fail later.
    const double size = megavoxels(intraop);
    const double predicted_service = cost_.predict_service_seconds(size);
    const double predicted_wait = static_cast<double>(queue_.size()) *
                                  cost_.mean_service_seconds() /
                                  std::max(1, options_.workers);
    const double predicted = predicted_service + predicted_wait;
    if (predicted > options_.admission_margin * budget.remaining_seconds()) {
      std::ostringstream oss;
      oss << "SessionServer: predicted " << predicted << " s (service "
          << predicted_service << " s + queue wait " << predicted_wait
          << " s) cannot meet a " << deadline_seconds << " s deadline";
      return reject({base::StatusCode::kDeadlineExceeded, oss.str()});
    }
  }

  PendingRequest request;
  request.session = session;
  request.state = state;
  request.intraop = std::move(intraop);
  request.budget = budget;
  {
    base::MutexLock lock(state_mutex_);
    request.id = RequestId(next_request_id_++);
    // The slot exists before the push so a worker can never complete a
    // request whose slot is still missing.
    slots_.emplace(request.id, CompletionSlot{});
    ++outstanding_;
  }
  const RequestId id = request.id;
  base::Status pushed = queue_.try_push(std::move(request));
  if (!pushed.ok()) {
    {
      base::MutexLock lock(state_mutex_);
      slots_.erase(id);
      --outstanding_;
    }
    return reject(std::move(pushed));
  }
  {
    base::MutexLock lock(state_mutex_);
    ++stats_.admitted;
    const auto depth = static_cast<std::int64_t>(queue_.size());
    if (depth > stats_.max_queue_depth) stats_.max_queue_depth = depth;
    queue_depth_history_.add(static_cast<double>(depth));
    consecutive_rejections_ = 0;  // an admit ends any rejection storm
  }
  obs::metrics().counter("service.admitted").add();
  obs::metrics().gauge("service.queue_depth").set(
      static_cast<double>(queue_.size()));
  return RequestTicket{id};
}

RequestReport SessionServer::wait(const RequestTicket& ticket) {
  base::MutexLock lock(state_mutex_);
  const auto it = slots_.find(ticket.id);
  NEURO_REQUIRE(it != slots_.end(),
                "SessionServer::wait: unknown or already-waited ticket "
                    << ticket.id.value());
  while (!it->second.done) {
    completion_cv_.wait(state_mutex_);
  }
  RequestReport report = std::move(it->second.report);
  slots_.erase(it);
  return report;
}

void SessionServer::drain() {
  NEURO_REQUIRE(options_.workers > 0,
                "SessionServer::drain: no workers to drain the queue; "
                "use shutdown()");
  base::MutexLock lock(state_mutex_);
  draining_ = true;
  while (outstanding_ > 0) {
    completion_cv_.wait(state_mutex_);
  }
}

void SessionServer::shutdown() {
  {
    base::MutexLock lock(state_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
    draining_ = true;
    aborting_ = true;
  }
  telemetry_cv_.notify_all();
  queue_.close();
  for (auto& worker : workers_) {
    worker.join();
  }
  workers_.clear();
  // Anything the workers did not pop (always everything when workers == 0)
  // terminates typed rather than lost.
  for (;;) {
    base::Outcome<PendingRequest> popped = queue_.pop(0.0);
    if (!popped.ok()) break;
    finish(abandon(std::move(popped.value())));
  }
  if (publisher_.joinable()) {
    publisher_.join();
    // One terminal snapshot so the file reflects the drained end state.
    publish_snapshot_to_path();
  }
}

ServerStats SessionServer::stats() const {
  base::MutexLock lock(state_mutex_);
  return stats_;
}

void SessionServer::telemetry_loop() {
  const std::chrono::duration<double> interval(
      options_.telemetry.publish_interval_seconds);
  for (;;) {
    {
      base::MutexLock lock(state_mutex_);
      if (shut_down_) return;
      (void)telemetry_cv_.wait_for(state_mutex_, interval);
      if (shut_down_) return;
    }
    publish_snapshot_to_path();
  }
}

void SessionServer::publish_snapshot_to_path() {
  const std::string& path = options_.telemetry.snapshot_path;
  if (path.empty()) return;
  // Write-then-rename so readers never observe a half-written snapshot.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp);
    if (!os) {
      obs::metrics().counter("service.snapshot_errors").add();
      return;
    }
    publish_snapshot(os);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    obs::metrics().counter("service.snapshot_errors").add();
    return;
  }
  obs::metrics().counter("service.snapshots_written").add();
}

void SessionServer::publish_snapshot(std::ostream& os) {
  struct SessionRow {
    std::uint64_t id = 0;
    std::int64_t requests = 0;
    std::size_t samples = 0;
    double p50 = 0.0;
    double p99 = 0.0;
    double attainment = 1.0;
  };
  std::uint64_t sequence = 0;
  ServerStats stats;
  std::vector<double> depth_history;
  double target = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  double attainment = 1.0;
  std::size_t window_samples = 0;
  std::int64_t window_requests = 0;
  std::vector<SessionRow> sessions;
  {
    base::MutexLock lock(state_mutex_);
    sequence = ++snapshot_sequence_;
    stats = stats_;
    depth_history = queue_depth_history_.history();
    target = options_.telemetry.slo_target_seconds > 0.0
                 ? options_.telemetry.slo_target_seconds
                 : options_.default_deadline_seconds;
    p50 = ttf_window_.quantile(0.50);
    p99 = ttf_window_.quantile(0.99);
    attainment = target > 0.0 ? ttf_window_.fraction_within(target) : 1.0;
    window_samples = ttf_window_.count();
    window_requests = static_cast<std::int64_t>(ttf_window_.total());
    sessions.reserve(session_ttf_.size());
    for (const auto& [id, window] : session_ttf_) {
      SessionRow row;
      row.id = id.value();
      row.requests = static_cast<std::int64_t>(window.total());
      row.samples = window.count();
      row.p50 = window.quantile(0.50);
      row.p99 = window.quantile(0.99);
      row.attainment = target > 0.0 ? window.fraction_within(target) : 1.0;
      sessions.push_back(row);
    }
  }
  // Gauge names carry the "seconds" suffix on purpose: the determinism CI
  // job strips timing lines by that token, and wall-clock quantiles are
  // sanctioned nondeterminism. attainment_ratio is a pure count ratio.
  obs::metrics().gauge("service.slo.p50_time_to_field_seconds").set(p50);
  obs::metrics().gauge("service.slo.p99_time_to_field_seconds").set(p99);
  obs::metrics().gauge("service.slo.attainment_ratio").set(attainment);
  obs::metrics().gauge("service.slo.target_seconds").set(target);
  obs::metrics()
      .gauge("service.queue_depth")
      .set(static_cast<double>(queue_.size()));

  os << R"({"schema":"neuro.snapshot.v1","sequence":)" << sequence;
  os << R"(,"queue":{"depth":)" << queue_.size() << R"(,"capacity":)"
     << options_.queue_capacity << R"(,"max_depth":)" << queue_.max_depth()
     << R"(,"history":[)";
  for (std::size_t i = 0; i < depth_history.size(); ++i) {
    if (i > 0) os << ',';
    obs::detail::write_json_double(os, depth_history[i]);
  }
  os << "]}";
  os << R"(,"slo":{"target_seconds":)";
  obs::detail::write_json_double(os, target);
  os << R"(,"window":)" << options_.telemetry.window << R"(,"samples":)"
     << window_samples << R"(,"requests":)" << window_requests
     << R"(,"p50_seconds":)";
  obs::detail::write_json_double(os, p50);
  os << R"(,"p99_seconds":)";
  obs::detail::write_json_double(os, p99);
  os << R"(,"attainment":)";
  obs::detail::write_json_double(os, attainment);
  os << "}";
  os << R"(,"sessions":[)";
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const SessionRow& row = sessions[i];
    if (i > 0) os << ',';
    os << R"({"session":)" << row.id << R"(,"requests":)" << row.requests
       << R"(,"samples":)" << row.samples << R"(,"p50_seconds":)";
    obs::detail::write_json_double(os, row.p50);
    os << R"(,"p99_seconds":)";
    obs::detail::write_json_double(os, row.p99);
    os << R"(,"attainment":)";
    obs::detail::write_json_double(os, row.attainment);
    os << '}';
  }
  os << "]";
  os << R"(,"stats":{"submitted":)" << stats.submitted << R"(,"admitted":)"
     << stats.admitted << R"(,"rejected_queue_full":)"
     << stats.rejected_queue_full << R"(,"rejected_deadline":)"
     << stats.rejected_deadline << R"(,"rejected_unknown_session":)"
     << stats.rejected_unknown_session << R"(,"rejected_draining":)"
     << stats.rejected_draining << R"(,"completed":)" << stats.completed
     << R"(,"usable":)" << stats.usable << R"(,"degraded":)" << stats.degraded
     << R"(,"failed":)" << stats.failed << R"(,"retries":)" << stats.retries
     << R"(,"crashes":)" << stats.crashes << R"(,"resumes":)" << stats.resumes
     << R"(,"max_queue_depth":)" << stats.max_queue_depth << "}";
  os << R"(,"metrics":)";
  obs::metrics().write_json_array(os);
  os << "}\n";
}

void SessionServer::worker_loop() {
  for (;;) {
    base::Outcome<PendingRequest> popped = queue_.pop(kPopTimeoutSeconds);
    if (!popped.ok()) {
      if (popped.status().code() == base::StatusCode::kUnavailable) return;
      continue;  // poll timeout: re-check for work or close
    }
    obs::metrics().gauge("service.queue_depth").set(
        static_cast<double>(queue_.size()));
    if (aborting()) {
      finish(abandon(std::move(popped.value())));
      continue;
    }
    finish(process(std::move(popped.value())));
  }
}

RequestReport SessionServer::process(PendingRequest request) {
  RequestReport report;
  report.id = request.id;
  report.session = request.session;
  report.rung = "-";
  report.queue_seconds = request.budget.elapsed_seconds();

  obs::Span span = obs::timed_span("service.request");
  span.attr("session", static_cast<std::int64_t>(request.session.value()));
  span.attr("request", static_cast<std::int64_t>(request.id.value()));
  span.attr("queue_seconds", report.queue_seconds);

  SessionState& state = *request.state;
  base::MutexLock lock(state.mutex);
  RankGrant grant(pool_, options_.ranks_per_solve);
  report.ranks = grant.granted();
  if (state.live == nullptr) {
    // Eviction or a prior crash dropped the live object; the case continues
    // from its checkpoint, numbering scans where it left off.
    report.resumed = state.checkpoint.scans_processed > 0;
    state.live = std::make_unique<core::SurgerySession>(
        state.preop, state.labels, state.config, state.checkpoint,
        options_.retention);
    if (report.resumed) obs::metrics().counter("service.resumes").add();
  }

  int attempt = 0;
  double backoff = options_.retry.backoff_seconds;
  for (;;) {
    core::ScanOverrides overrides;
    overrides.nranks = grant.granted();
    overrides.fault_seed_offset = static_cast<std::uint64_t>(attempt);
    if (request.budget.limited()) {
      // Degrade, don't cancel: the pipeline gets whatever budget remains
      // (epsilon once expired), and its ladder trades fidelity for time.
      overrides.deadline_seconds =
          std::max(kMinSteeringSeconds, request.budget.remaining_seconds());
    }
    try {
      const core::PipelineResult& result =
          state.live->process_scan(request.intraop, overrides);
      report.degraded = result.degradation.degraded;
      report.rung = fem::degradation_rung_name(result.degradation.rung);
      report.scan_index = state.live->scans_processed() - 1;
      state.checkpoint = state.live->checkpoint();
      cost_.record(megavoxels(request.intraop), result.timeline);
      break;
    } catch (const base::StatusError& error) {
      const base::StatusCode code = error.status().code();
      const bool transient = code == base::StatusCode::kCommFault ||
                             code == base::StatusCode::kUnavailable;
      if (transient && attempt < options_.retry.max_retries &&
          !request.budget.expired()) {
        ++attempt;
        ++report.retries;
        obs::metrics().counter("service.retries").add();
        double sleep_seconds = backoff;
        if (request.budget.limited()) {
          sleep_seconds =
              std::min(sleep_seconds, request.budget.remaining_seconds());
        }
        // The backoff wait is part of the request's observable lifetime:
        // one service.retry span per attempt plus the backoff histogram.
        obs::Span retry_span = obs::timed_span("service.retry");
        if (retry_span.active()) {
          retry_span.attr("attempt", attempt);
          retry_span.attr("status", base::status_code_name(code));
          retry_span.attr("sleep_seconds", sleep_seconds);
        }
        obs::metrics()
            .histogram("service.backoff_seconds",
                       {0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0})
            .observe(sleep_seconds);
        std::this_thread::sleep_for(
            std::chrono::duration<double>(sleep_seconds));
        retry_span.close();
        backoff *= options_.retry.backoff_multiplier;
        continue;
      }
      report.status = error.status();
      // The retry budget is spent (or the failure is not transient): comm
      // faults, deadline misses and watchdog stops leave a post-mortem
      // bundle with the request context attached.
      if (const obs::DumpTrigger trigger = obs::dump_trigger_from_status(
              code, obs::DumpTrigger::kManual);
          trigger != obs::DumpTrigger::kManual) {
        obs::DumpContext context;
        context.detail =
            std::string("request failed terminally: ") + error.what();
        context.attr("session",
                     static_cast<std::int64_t>(request.session.value()));
        context.attr("request",
                     static_cast<std::int64_t>(request.id.value()));
        context.attr("attempts", attempt + 1);
        context.attr("status", base::status_code_name(code));
        obs::recorder().dump(trigger, context);
      }
      break;
    } catch (const CheckError& error) {
      // Invariant corruption inside this session's pipeline: quarantine the
      // live object (the next request resumes from the checkpoint) and fail
      // this request typed instead of taking the server down.
      state.live.reset();
      report.crashed = true;
      report.status = {
          base::StatusCode::kUnavailable,
          std::string("SessionServer: session crashed: ") + error.what()};
      obs::metrics().counter("service.crashes").add();
      // The check-failure hook already dumped at throw time with no request
      // context; this second dump (rate-limited with the first) attaches the
      // session and request ids to the same incident.
      {
        obs::DumpContext context;
        context.detail =
            std::string("session crashed on invariant check: ") + error.what();
        context.attr("session",
                     static_cast<std::int64_t>(request.session.value()));
        context.attr("request",
                     static_cast<std::int64_t>(request.id.value()));
        context.attr("attempts", attempt + 1);
        obs::recorder().dump(obs::DumpTrigger::kCheckFailure, context);
      }
      break;
    }
  }

  report.time_to_field_seconds = request.budget.elapsed_seconds();
  report.service_seconds =
      report.time_to_field_seconds - report.queue_seconds;
  span.attr("rung", report.rung);
  span.attr("retries", report.retries);
  span.attr("ranks", report.ranks);
  span.attr("status", base::status_code_name(report.status.code()));
  return report;
}

RequestReport SessionServer::abandon(PendingRequest request) const {
  RequestReport report;
  report.id = request.id;
  report.session = request.session;
  report.rung = "-";
  report.queue_seconds = request.budget.elapsed_seconds();
  report.time_to_field_seconds = report.queue_seconds;
  report.status = {base::StatusCode::kUnavailable,
                   "SessionServer: shut down before dispatch"};
  return report;
}

void SessionServer::finish(RequestReport report) {
  obs::metrics()
      .counter(report.status.ok() ? "service.completed" : "service.failed")
      .add();
  if (report.status.ok() && report.degraded) {
    obs::metrics().counter("service.degraded").add();
  }
  observe_time_to_field(report.time_to_field_seconds);
  {
    base::MutexLock lock(state_mutex_);
    ++stats_.completed;
    if (report.status.ok()) {
      ++stats_.usable;
      if (report.degraded) ++stats_.degraded;
    } else {
      ++stats_.failed;
    }
    stats_.retries += report.retries;
    if (report.crashed) ++stats_.crashes;
    if (report.resumed) ++stats_.resumes;
    ttf_window_.add(report.time_to_field_seconds);
    auto window_it = session_ttf_.find(report.session);
    if (window_it == session_ttf_.end()) {
      window_it = session_ttf_
                      .emplace(report.session,
                               RollingWindow(options_.telemetry.window))
                      .first;
    }
    window_it->second.add(report.time_to_field_seconds);
    --outstanding_;
    const auto it = slots_.find(report.id);
    NEURO_REQUIRE(it != slots_.end(),
                  "SessionServer: report for unknown request "
                      << report.id.value());
    it->second.report = std::move(report);
    it->second.done = true;
  }
  completion_cv_.notify_all();
}

base::Status SessionServer::reject(base::Status status) {
  int rejections = 0;
  bool storm = false;
  {
    base::MutexLock lock(state_mutex_);
    switch (status.code()) {
      case base::StatusCode::kResourceExhausted:
        ++stats_.rejected_queue_full;
        break;
      case base::StatusCode::kDeadlineExceeded:
        ++stats_.rejected_deadline;
        break;
      case base::StatusCode::kFailedPrecondition:
        ++stats_.rejected_unknown_session;
        break;
      default:
        ++stats_.rejected_draining;
        break;
    }
    ++consecutive_rejections_;
    rejections = consecutive_rejections_;
    // Exactly-at-threshold so one storm produces one dump; the counter
    // resets on the next admit.
    storm = options_.telemetry.admission_storm_threshold > 0 &&
            rejections == options_.telemetry.admission_storm_threshold;
  }
  obs::metrics()
      .counter(std::string("service.rejected.") +
               base::status_code_name(status.code()))
      .add();
  if (storm) {
    obs::DumpContext context;
    context.detail =
        std::string("admission rejection storm: ") + status.message();
    context.attr("consecutive_rejections", rejections);
    context.attr("last_status", base::status_code_name(status.code()));
    obs::recorder().dump(obs::DumpTrigger::kAdmissionStorm, context);
  }
  return status;
}

SessionServer::SessionState* SessionServer::find_session(
    SessionId session) const {
  base::MutexLock lock(state_mutex_);
  const auto it = sessions_.find(session);
  return it == sessions_.end() ? nullptr : it->second.get();
}

bool SessionServer::aborting() const {
  base::MutexLock lock(state_mutex_);
  return aborting_;
}

}  // namespace neuro::service

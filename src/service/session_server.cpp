#include "service/session_server.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "base/check.h"
#include "fem/degradation.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace neuro::service {
namespace {

/// Request size in the unit the cost model is keyed on.
double megavoxels(const ImageF& image) {
  const IVec3 d = image.dims();
  return static_cast<double>(d.x) * d.y * d.z / 1e6;
}

/// The deadline handed to an already-expired request: small enough that the
/// ladder goes straight to its cheap rungs, nonzero so the pipeline does not
/// read it as "unlimited" (degrade, don't cancel).
constexpr double kMinSteeringSeconds = 1e-3;

/// Worker poll interval: bounds how long shutdown waits for an idle worker.
constexpr double kPopTimeoutSeconds = 0.2;

/// RAII over a RankPool grant: released on every exit path of process(),
/// including exceptions escaping the pipeline.
class RankGrant {
 public:
  RankGrant(RankPool& pool, int want)
      : pool_(pool), granted_(pool.acquire(want)) {}
  ~RankGrant() { pool_.release(granted_); }

  RankGrant(const RankGrant&) = delete;
  RankGrant& operator=(const RankGrant&) = delete;

  [[nodiscard]] int granted() const { return granted_; }

 private:
  RankPool& pool_;
  int granted_;
};

void observe_time_to_field(double seconds) {
  obs::metrics()
      .histogram("service.time_to_field_seconds",
                 {0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0})
      .observe(seconds);
}

}  // namespace

RankPool::RankPool(int capacity) : capacity_(capacity), free_(capacity) {
  NEURO_REQUIRE(capacity >= 1, "RankPool: capacity must be >= 1");
}

int RankPool::acquire(int want) {
  NEURO_REQUIRE(want >= 1, "RankPool::acquire: want must be >= 1");
  base::MutexLock lock(mutex_);
  while (free_ == 0) {
    freed_.wait(mutex_);
  }
  const int granted = std::min(want, free_);
  free_ -= granted;
  return granted;
}

void RankPool::release(int granted) {
  base::MutexLock lock(mutex_);
  free_ += granted;
  NEURO_REQUIRE(free_ <= capacity_, "RankPool::release: over-release");
  freed_.notify_all();
}

int RankPool::free_ranks() const {
  base::MutexLock lock(mutex_);
  return free_;
}

SessionServer::SessionServer(ServerOptions options)
    : options_(options),
      cost_(options.cost),
      queue_(options.queue_capacity),
      pool_(options.rank_pool) {
  NEURO_REQUIRE(options_.workers >= 0, "SessionServer: negative worker count");
  NEURO_REQUIRE(options_.ranks_per_solve >= 1,
                "SessionServer: ranks_per_solve must be >= 1");
  NEURO_REQUIRE(options_.retry.max_retries >= 0,
                "SessionServer: negative max_retries");
  NEURO_REQUIRE(options_.admission_margin > 0.0,
                "SessionServer: admission_margin must be positive");
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SessionServer::~SessionServer() { shutdown(); }

SessionId SessionServer::open_session(ImageF preop, ImageL preop_labels,
                                      core::PipelineConfig config) {
  auto state = std::make_unique<SessionState>();
  state->preop = std::move(preop);
  state->labels = std::move(preop_labels);
  state->config = std::move(config);
  base::MutexLock lock(state_mutex_);
  NEURO_REQUIRE(!draining_, "SessionServer::open_session: server is draining");
  const SessionId id(next_session_id_++);
  sessions_.emplace(id, std::move(state));
  return id;
}

void SessionServer::evict_session(SessionId session) {
  SessionState* state = find_session(session);
  NEURO_REQUIRE(state != nullptr,
                "SessionServer::evict_session: unknown session "
                    << session.value());
  base::MutexLock lock(state->mutex);
  state->live.reset();
}

core::SessionCheckpoint SessionServer::session_checkpoint(
    SessionId session) const {
  SessionState* state = find_session(session);
  NEURO_REQUIRE(state != nullptr,
                "SessionServer::session_checkpoint: unknown session "
                    << session.value());
  base::MutexLock lock(state->mutex);
  if (state->live != nullptr) return state->live->checkpoint();
  return state->checkpoint;
}

base::Outcome<RequestTicket> SessionServer::submit(
    SessionId session, ImageF intraop, RequestOptions request_options) {
  SessionState* state = nullptr;
  bool draining = false;
  {
    base::MutexLock lock(state_mutex_);
    ++stats_.submitted;
    draining = draining_;
    const auto it = sessions_.find(session);
    if (it != sessions_.end()) state = it->second.get();
  }
  obs::metrics().counter("service.submitted").add();
  if (draining) {
    return reject({base::StatusCode::kUnavailable,
                   "SessionServer: draining, not admitting new requests"});
  }
  if (state == nullptr) {
    std::ostringstream oss;
    oss << "SessionServer: unknown session " << session.value();
    return reject({base::StatusCode::kFailedPrecondition, oss.str()});
  }

  const double deadline_seconds = request_options.deadline_seconds < 0.0
                                      ? options_.default_deadline_seconds
                                      : request_options.deadline_seconds;
  base::DeadlineBudget budget(deadline_seconds);
  if (budget.limited()) {
    // Admission control: reject work the measured cost model says cannot
    // finish inside its budget, instead of queueing it to fail later.
    const double size = megavoxels(intraop);
    const double predicted_service = cost_.predict_service_seconds(size);
    const double predicted_wait = static_cast<double>(queue_.size()) *
                                  cost_.mean_service_seconds() /
                                  std::max(1, options_.workers);
    const double predicted = predicted_service + predicted_wait;
    if (predicted > options_.admission_margin * budget.remaining_seconds()) {
      std::ostringstream oss;
      oss << "SessionServer: predicted " << predicted << " s (service "
          << predicted_service << " s + queue wait " << predicted_wait
          << " s) cannot meet a " << deadline_seconds << " s deadline";
      return reject({base::StatusCode::kDeadlineExceeded, oss.str()});
    }
  }

  PendingRequest request;
  request.session = session;
  request.state = state;
  request.intraop = std::move(intraop);
  request.budget = budget;
  {
    base::MutexLock lock(state_mutex_);
    request.id = RequestId(next_request_id_++);
    // The slot exists before the push so a worker can never complete a
    // request whose slot is still missing.
    slots_.emplace(request.id, CompletionSlot{});
    ++outstanding_;
  }
  const RequestId id = request.id;
  base::Status pushed = queue_.try_push(std::move(request));
  if (!pushed.ok()) {
    {
      base::MutexLock lock(state_mutex_);
      slots_.erase(id);
      --outstanding_;
    }
    return reject(std::move(pushed));
  }
  {
    base::MutexLock lock(state_mutex_);
    ++stats_.admitted;
    const auto depth = static_cast<std::int64_t>(queue_.size());
    if (depth > stats_.max_queue_depth) stats_.max_queue_depth = depth;
  }
  obs::metrics().counter("service.admitted").add();
  obs::metrics().gauge("service.queue_depth").set(
      static_cast<double>(queue_.size()));
  return RequestTicket{id};
}

RequestReport SessionServer::wait(const RequestTicket& ticket) {
  base::MutexLock lock(state_mutex_);
  const auto it = slots_.find(ticket.id);
  NEURO_REQUIRE(it != slots_.end(),
                "SessionServer::wait: unknown or already-waited ticket "
                    << ticket.id.value());
  while (!it->second.done) {
    completion_cv_.wait(state_mutex_);
  }
  RequestReport report = std::move(it->second.report);
  slots_.erase(it);
  return report;
}

void SessionServer::drain() {
  NEURO_REQUIRE(options_.workers > 0,
                "SessionServer::drain: no workers to drain the queue; "
                "use shutdown()");
  base::MutexLock lock(state_mutex_);
  draining_ = true;
  while (outstanding_ > 0) {
    completion_cv_.wait(state_mutex_);
  }
}

void SessionServer::shutdown() {
  {
    base::MutexLock lock(state_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
    draining_ = true;
    aborting_ = true;
  }
  queue_.close();
  for (auto& worker : workers_) {
    worker.join();
  }
  workers_.clear();
  // Anything the workers did not pop (always everything when workers == 0)
  // terminates typed rather than lost.
  for (;;) {
    base::Outcome<PendingRequest> popped = queue_.pop(0.0);
    if (!popped.ok()) break;
    finish(abandon(std::move(popped.value())));
  }
}

ServerStats SessionServer::stats() const {
  base::MutexLock lock(state_mutex_);
  return stats_;
}

void SessionServer::worker_loop() {
  for (;;) {
    base::Outcome<PendingRequest> popped = queue_.pop(kPopTimeoutSeconds);
    if (!popped.ok()) {
      if (popped.status().code() == base::StatusCode::kUnavailable) return;
      continue;  // poll timeout: re-check for work or close
    }
    obs::metrics().gauge("service.queue_depth").set(
        static_cast<double>(queue_.size()));
    if (aborting()) {
      finish(abandon(std::move(popped.value())));
      continue;
    }
    finish(process(std::move(popped.value())));
  }
}

RequestReport SessionServer::process(PendingRequest request) {
  RequestReport report;
  report.id = request.id;
  report.session = request.session;
  report.rung = "-";
  report.queue_seconds = request.budget.elapsed_seconds();

  obs::Span span = obs::timed_span("service.request");
  span.attr("session", static_cast<std::int64_t>(request.session.value()));
  span.attr("request", static_cast<std::int64_t>(request.id.value()));
  span.attr("queue_seconds", report.queue_seconds);

  SessionState& state = *request.state;
  base::MutexLock lock(state.mutex);
  RankGrant grant(pool_, options_.ranks_per_solve);
  report.ranks = grant.granted();
  if (state.live == nullptr) {
    // Eviction or a prior crash dropped the live object; the case continues
    // from its checkpoint, numbering scans where it left off.
    report.resumed = state.checkpoint.scans_processed > 0;
    state.live = std::make_unique<core::SurgerySession>(
        state.preop, state.labels, state.config, state.checkpoint,
        options_.retention);
    if (report.resumed) obs::metrics().counter("service.resumes").add();
  }

  int attempt = 0;
  double backoff = options_.retry.backoff_seconds;
  for (;;) {
    core::ScanOverrides overrides;
    overrides.nranks = grant.granted();
    overrides.fault_seed_offset = static_cast<std::uint64_t>(attempt);
    if (request.budget.limited()) {
      // Degrade, don't cancel: the pipeline gets whatever budget remains
      // (epsilon once expired), and its ladder trades fidelity for time.
      overrides.deadline_seconds =
          std::max(kMinSteeringSeconds, request.budget.remaining_seconds());
    }
    try {
      const core::PipelineResult& result =
          state.live->process_scan(request.intraop, overrides);
      report.degraded = result.degradation.degraded;
      report.rung = fem::degradation_rung_name(result.degradation.rung);
      report.scan_index = state.live->scans_processed() - 1;
      state.checkpoint = state.live->checkpoint();
      cost_.record(megavoxels(request.intraop), result.timeline);
      break;
    } catch (const base::StatusError& error) {
      const base::StatusCode code = error.status().code();
      const bool transient = code == base::StatusCode::kCommFault ||
                             code == base::StatusCode::kUnavailable;
      if (transient && attempt < options_.retry.max_retries &&
          !request.budget.expired()) {
        ++attempt;
        ++report.retries;
        obs::metrics().counter("service.retries").add();
        double sleep_seconds = backoff;
        if (request.budget.limited()) {
          sleep_seconds =
              std::min(sleep_seconds, request.budget.remaining_seconds());
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double>(sleep_seconds));
        backoff *= options_.retry.backoff_multiplier;
        continue;
      }
      report.status = error.status();
      break;
    } catch (const CheckError& error) {
      // Invariant corruption inside this session's pipeline: quarantine the
      // live object (the next request resumes from the checkpoint) and fail
      // this request typed instead of taking the server down.
      state.live.reset();
      report.crashed = true;
      report.status = {
          base::StatusCode::kUnavailable,
          std::string("SessionServer: session crashed: ") + error.what()};
      obs::metrics().counter("service.crashes").add();
      break;
    }
  }

  report.time_to_field_seconds = request.budget.elapsed_seconds();
  report.service_seconds =
      report.time_to_field_seconds - report.queue_seconds;
  span.attr("rung", report.rung);
  span.attr("retries", report.retries);
  span.attr("ranks", report.ranks);
  span.attr("status", base::status_code_name(report.status.code()));
  return report;
}

RequestReport SessionServer::abandon(PendingRequest request) const {
  RequestReport report;
  report.id = request.id;
  report.session = request.session;
  report.rung = "-";
  report.queue_seconds = request.budget.elapsed_seconds();
  report.time_to_field_seconds = report.queue_seconds;
  report.status = {base::StatusCode::kUnavailable,
                   "SessionServer: shut down before dispatch"};
  return report;
}

void SessionServer::finish(RequestReport report) {
  obs::metrics()
      .counter(report.status.ok() ? "service.completed" : "service.failed")
      .add();
  if (report.status.ok() && report.degraded) {
    obs::metrics().counter("service.degraded").add();
  }
  observe_time_to_field(report.time_to_field_seconds);
  {
    base::MutexLock lock(state_mutex_);
    ++stats_.completed;
    if (report.status.ok()) {
      ++stats_.usable;
      if (report.degraded) ++stats_.degraded;
    } else {
      ++stats_.failed;
    }
    stats_.retries += report.retries;
    if (report.crashed) ++stats_.crashes;
    if (report.resumed) ++stats_.resumes;
    --outstanding_;
    const auto it = slots_.find(report.id);
    NEURO_REQUIRE(it != slots_.end(),
                  "SessionServer: report for unknown request "
                      << report.id.value());
    it->second.report = std::move(report);
    it->second.done = true;
  }
  completion_cv_.notify_all();
}

base::Status SessionServer::reject(base::Status status) {
  {
    base::MutexLock lock(state_mutex_);
    switch (status.code()) {
      case base::StatusCode::kResourceExhausted:
        ++stats_.rejected_queue_full;
        break;
      case base::StatusCode::kDeadlineExceeded:
        ++stats_.rejected_deadline;
        break;
      case base::StatusCode::kFailedPrecondition:
        ++stats_.rejected_unknown_session;
        break;
      default:
        ++stats_.rejected_draining;
        break;
    }
  }
  obs::metrics()
      .counter(std::string("service.rejected.") +
               base::status_code_name(status.code()))
      .add();
  return status;
}

SessionServer::SessionState* SessionServer::find_session(
    SessionId session) const {
  base::MutexLock lock(state_mutex_);
  const auto it = sessions_.find(session);
  return it == sessions_.end() ? nullptr : it->second.get();
}

bool SessionServer::aborting() const {
  base::MutexLock lock(state_mutex_);
  return aborting_;
}

}  // namespace neuro::service

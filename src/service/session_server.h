// Multi-tenant surgical-session service (docs/service.md).
//
// SessionServer promotes core::SurgerySession from a per-case object into a
// long-running service: a registry of sessions (one per operating room), a
// bounded request queue, and a worker pool dispatching pipeline solves over a
// shared rank pool. Chrisochoides et al. (PAPERS.md, arXiv 2309.03336) frame
// intraoperative registration as exactly this service problem — under load it
// is the service, not the solver, that fails first.
//
// The robustness contract, verified by tests/service_test.cpp and
// bench/bench_service.cpp:
//
//   * Admission control: requests whose deadline the measured cost model says
//     cannot be met are rejected kDeadlineExceeded at submit; a full queue
//     rejects kResourceExhausted; a draining server rejects kUnavailable.
//     Doomed work is never queued.
//   * Backpressure: the queue is a BoundedQueue — overload manifests as typed
//     rejections and a queue-depth gauge, never as unbounded memory.
//   * Degrade, don't cancel: an admitted request that slips its budget
//     mid-flight hands its *remaining* seconds to the pipeline, whose
//     degradation ladder (docs/robustness.md) trades fidelity for time; even
//     an already-expired budget yields the cheap rungs, not a cancellation.
//   * Bounded retry: transient kCommFault / kUnavailable failures retry with
//     exponential backoff at most RetryPolicy::max_retries times, each
//     attempt drawing a seed-shifted (still deterministic) fault stream.
//   * Checkpointed recovery: every completed scan refreshes the session's
//     SessionCheckpoint in the server; a crashed (CheckError) or evicted
//     session is rebuilt from it on the next request, numbering scans
//     continuously.
//   * Graceful drain/shutdown: drain() completes queued and in-flight work
//     while rejecting new admissions; shutdown() completes in-flight solves
//     and fails still-queued requests with a typed kUnavailable. Every
//     admitted request terminates in exactly one RequestReport — none are
//     lost, none deadlock.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/deadline.h"
#include "base/mutex.h"
#include "base/status.h"
#include "base/strong_id.h"
#include "base/thread_annotations.h"
#include "core/surgery_session.h"
#include "service/bounded_queue.h"
#include "service/cost_model.h"

namespace neuro::service {

using SessionId = base::StrongId<struct ServiceSessionTag>;
using RequestId = base::StrongId<struct ServiceRequestTag>;

/// Bounded retry of transient failures. Backoff sleeps are clamped to the
/// request's remaining budget, so retrying never pushes a request past the
/// point where even the cheap ladder rungs could not be attempted.
struct RetryPolicy {
  int max_retries = 2;
  double backoff_seconds = 0.02;
  double backoff_multiplier = 2.0;
};

/// Live service telemetry: rolling SLO quantiles over recent requests,
/// queue-depth history, and an optional periodic snapshot publisher. The
/// snapshot format ("neuro.snapshot.v1") is documented in
/// docs/observability.md; `neurofem obs --snapshot FILE` pretty-prints one.
struct TelemetryOptions {
  /// > 0 starts a publisher thread that writes snapshot_path every
  /// interval (and once more at shutdown). 0 = synchronous-only (tests call
  /// publish_snapshot directly).
  double publish_interval_seconds = 0.0;
  /// Snapshot file the publisher (re)writes; written via a .tmp sibling +
  /// rename so readers never observe a torn file.
  std::string snapshot_path;
  /// Rolling sample window (per session and server-wide) behind the
  /// p50/p99 time-to-field quantiles.
  std::size_t window = 64;
  /// SLO threshold for the attainment gauge; 0 falls back to
  /// default_deadline_seconds (if that is 0 too, attainment reads 1).
  double slo_target_seconds = 0.0;
  /// Consecutive admission rejections (with no admit in between) that
  /// trigger one kAdmissionStorm post-mortem dump; 0 disables the trigger.
  int admission_storm_threshold = 16;
};

struct ServerOptions {
  int workers = 2;          ///< dispatcher threads; 0 = submit-only (tests)
  int rank_pool = 4;        ///< SPMD ranks shared by concurrent solves
  int ranks_per_solve = 2;  ///< preferred grant per request (may get fewer)
  std::size_t queue_capacity = 16;
  /// Default per-request deadline when RequestOptions does not set one;
  /// 0 = unlimited (the DeadlineBudget convention).
  double default_deadline_seconds = 0.0;
  /// Admission rejects when predicted seconds exceed margin * remaining
  /// budget; < 1 admits optimistically, > 1 rejects conservatively.
  double admission_margin = 1.0;
  RetryPolicy retry;
  CostModelOptions cost;
  core::SessionRetention retention{.keep_full_results = 2};
  TelemetryOptions telemetry;
};

struct RequestOptions {
  double deadline_seconds = -1.0;  ///< < 0: server default; 0: unlimited
};

struct RequestTicket {
  RequestId id{};
};

/// The terminal record of one admitted request. status.ok() means a usable,
/// validation-gated field was delivered (possibly from a degraded rung);
/// anything else is a typed failure after the retry budget was spent.
struct RequestReport {
  RequestId id{};
  SessionId session{};
  base::Status status;
  bool degraded = false;
  bool crashed = false;  ///< this request's solve corrupted the live session
  bool resumed = false;  ///< the session was rebuilt from its checkpoint
  std::string rung;      ///< accepted ladder rung name; "-" when no field
  int scan_index = -1;   ///< session scan number this request became
  int retries = 0;
  int ranks = 0;         ///< ranks granted by the shared pool
  double queue_seconds = 0.0;
  double service_seconds = 0.0;
  double time_to_field_seconds = 0.0;  ///< admission to terminal state
};

/// Aggregate lifetime counters (ServerStats::submitted ==
/// admitted + the four rejection counters; admitted == usable + failed).
struct ServerStats {
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;
  std::int64_t rejected_queue_full = 0;
  std::int64_t rejected_deadline = 0;
  std::int64_t rejected_unknown_session = 0;
  std::int64_t rejected_draining = 0;
  std::int64_t completed = 0;  ///< admitted requests that reached a report
  std::int64_t usable = 0;     ///< completed with a usable field
  std::int64_t degraded = 0;   ///< usable but from a fallback rung
  std::int64_t failed = 0;     ///< completed with a typed failure
  std::int64_t retries = 0;
  std::int64_t crashes = 0;
  std::int64_t resumes = 0;
  std::int64_t max_queue_depth = 0;
};

/// Fixed-capacity ring of recent samples backing the rolling SLO quantiles
/// and the queue-depth history (plain vector storage — src/service bans
/// unbounded containers). Not thread-safe; the server keeps instances under
/// state_mutex_.
class RollingWindow {
 public:
  explicit RollingWindow(std::size_t capacity = 64)
      : samples_(capacity > 0 ? capacity : 1, 0.0) {}

  void add(double sample) {
    samples_[static_cast<std::size_t>(next_ % samples_.size())] = sample;
    ++next_;
  }

  /// Samples currently retained (<= capacity).
  [[nodiscard]] std::size_t count() const {
    return next_ < samples_.size() ? static_cast<std::size_t>(next_)
                                   : samples_.size();
  }
  /// Samples ever added.
  [[nodiscard]] std::uint64_t total() const { return next_; }

  /// Nearest-rank quantile (q in [0,1]) over the retained window; 0 when
  /// empty.
  [[nodiscard]] double quantile(double q) const;
  /// Fraction of retained samples <= threshold; 1 when empty.
  [[nodiscard]] double fraction_within(double threshold) const;
  /// Retained samples, oldest first.
  [[nodiscard]] std::vector<double> history() const;

 private:
  std::vector<double> samples_;
  std::uint64_t next_ = 0;
};

/// A counting pool of SPMD ranks shared by concurrent solves. acquire()
/// blocks until at least one rank is free and grants min(want, free): a
/// waiter never holds a partial grant, so the pool cannot deadlock — under
/// contention solves simply run narrower.
class RankPool {
 public:
  explicit RankPool(int capacity);

  [[nodiscard]] int acquire(int want) NEURO_EXCLUDES(mutex_);
  void release(int granted) NEURO_EXCLUDES(mutex_);

  [[nodiscard]] int capacity() const { return capacity_; }
  [[nodiscard]] int free_ranks() const NEURO_EXCLUDES(mutex_);

 private:
  const int capacity_;
  mutable base::Mutex mutex_;
  base::CondVar freed_;
  int free_ NEURO_GUARDED_BY(mutex_);
};

class SessionServer {
 public:
  explicit SessionServer(ServerOptions options = {});
  ~SessionServer();

  SessionServer(const SessionServer&) = delete;
  SessionServer& operator=(const SessionServer&) = delete;

  /// Registers a case: the preoperative data and the pipeline config every
  /// scan of this session will run with.
  [[nodiscard]] SessionId open_session(ImageF preop, ImageL preop_labels,
                                       core::PipelineConfig config)
      NEURO_EXCLUDES(state_mutex_);

  /// Drops the session's live state, keeping its checkpoint: the next
  /// admitted request rebuilds the session from the checkpoint (the
  /// explicit-eviction twin of crash recovery).
  void evict_session(SessionId session) NEURO_EXCLUDES(state_mutex_);

  /// The session's current checkpoint (live state when present, else the
  /// last one recorded by a completed scan).
  [[nodiscard]] core::SessionCheckpoint session_checkpoint(
      SessionId session) const NEURO_EXCLUDES(state_mutex_);

  /// Admission control + enqueue. Returns a ticket to wait() on, or a typed
  /// rejection: kUnavailable (draining/shut down), kFailedPrecondition
  /// (unknown session), kDeadlineExceeded (predicted cost exceeds the
  /// budget), kResourceExhausted (queue full).
  [[nodiscard]] base::Outcome<RequestTicket> submit(SessionId session,
                                                    ImageF intraop,
                                                    RequestOptions options = {})
      NEURO_EXCLUDES(state_mutex_);

  /// Blocks until the request reaches its terminal state and consumes the
  /// ticket (each ticket may be waited exactly once).
  [[nodiscard]] RequestReport wait(const RequestTicket& ticket)
      NEURO_EXCLUDES(state_mutex_);

  /// Rejects new admissions and blocks until queued + in-flight work has
  /// completed. Requires workers > 0 (nothing could drain otherwise).
  void drain() NEURO_EXCLUDES(state_mutex_);

  /// Stops the server: rejects new admissions, lets in-flight solves finish,
  /// fails still-queued requests with kUnavailable, joins the workers.
  /// Idempotent; the destructor calls it.
  void shutdown() NEURO_EXCLUDES(state_mutex_);

  [[nodiscard]] ServerStats stats() const NEURO_EXCLUDES(state_mutex_);

  /// Writes one live telemetry snapshot ("neuro.snapshot.v1"): queue depth +
  /// history, server-wide and per-session rolling p50/p99 time-to-field and
  /// SLO attainment, lifetime stats, and the metrics registry. Also
  /// refreshes the service.slo.* gauges. The publisher thread calls this
  /// every publish_interval_seconds; tests and tools may call it directly at
  /// any time.
  void publish_snapshot(std::ostream& os) NEURO_EXCLUDES(state_mutex_);

  [[nodiscard]] const ServerOptions& options() const { return options_; }
  [[nodiscard]] CostModel& cost_model() { return cost_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] std::size_t max_queue_depth() const {
    return queue_.max_depth();
  }

 private:
  /// Registry entry for one case. `preop`/`labels`/`config` are immutable
  /// after open_session; `mutex` serializes scans of this session and guards
  /// the live object and its checkpoint.
  struct SessionState {
    ImageF preop;
    ImageL labels;
    core::PipelineConfig config;
    base::Mutex mutex;
    std::unique_ptr<core::SurgerySession> live NEURO_GUARDED_BY(mutex);
    core::SessionCheckpoint checkpoint NEURO_GUARDED_BY(mutex);
  };

  struct PendingRequest {
    RequestId id{};
    SessionId session{};
    SessionState* state = nullptr;
    ImageF intraop;
    base::DeadlineBudget budget;  ///< started at admission
  };

  struct CompletionSlot {
    bool done = false;
    RequestReport report;
  };

  void worker_loop();
  void telemetry_loop();
  /// Writes the snapshot to telemetry.snapshot_path via .tmp + rename.
  void publish_snapshot_to_path();
  [[nodiscard]] RequestReport process(PendingRequest request);
  /// Terminal report for a request the server will not dispatch (shutdown
  /// popped it from the queue): typed kUnavailable, never silently dropped.
  [[nodiscard]] RequestReport abandon(PendingRequest request) const;
  void finish(RequestReport report) NEURO_EXCLUDES(state_mutex_);
  [[nodiscard]] base::Status reject(base::Status status)
      NEURO_EXCLUDES(state_mutex_);
  [[nodiscard]] SessionState* find_session(SessionId session) const
      NEURO_EXCLUDES(state_mutex_);
  [[nodiscard]] bool aborting() const NEURO_EXCLUDES(state_mutex_);

  const ServerOptions options_;
  CostModel cost_;
  BoundedQueue<PendingRequest> queue_;
  RankPool pool_;

  mutable base::Mutex state_mutex_;
  base::CondVar completion_cv_;  ///< signals slot completion and drain
  std::map<SessionId, std::unique_ptr<SessionState>> sessions_
      NEURO_GUARDED_BY(state_mutex_);
  std::map<RequestId, CompletionSlot> slots_ NEURO_GUARDED_BY(state_mutex_);
  ServerStats stats_ NEURO_GUARDED_BY(state_mutex_);
  // Telemetry state: rolling time-to-field windows (server-wide and per
  // session), admission-time queue-depth history, and the consecutive
  // rejection counter behind the admission-storm trigger.
  RollingWindow ttf_window_ NEURO_GUARDED_BY(state_mutex_);
  std::map<SessionId, RollingWindow> session_ttf_ NEURO_GUARDED_BY(state_mutex_);
  RollingWindow queue_depth_history_ NEURO_GUARDED_BY(state_mutex_);
  int consecutive_rejections_ NEURO_GUARDED_BY(state_mutex_) = 0;
  std::uint64_t snapshot_sequence_ NEURO_GUARDED_BY(state_mutex_) = 0;
  base::CondVar telemetry_cv_;  ///< wakes the publisher for shutdown
  std::int64_t next_session_id_ NEURO_GUARDED_BY(state_mutex_) = 0;
  std::int64_t next_request_id_ NEURO_GUARDED_BY(state_mutex_) = 0;
  int outstanding_ NEURO_GUARDED_BY(state_mutex_) = 0;
  bool draining_ NEURO_GUARDED_BY(state_mutex_) = false;
  bool aborting_ NEURO_GUARDED_BY(state_mutex_) = false;
  bool shut_down_ NEURO_GUARDED_BY(state_mutex_) = false;

  std::vector<std::thread> workers_;
  std::thread publisher_;  ///< telemetry publisher; joined by shutdown()
};

}  // namespace neuro::service

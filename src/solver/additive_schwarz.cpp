#include "solver/additive_schwarz.h"

#include <algorithm>

#include "base/check.h"

namespace neuro::solver {

AdditiveSchwarz::AdditiveSchwarz(const DistCsrMatrix& A, par::Communicator& comm,
                                 int overlap, SchwarzPrecision precision)
    : overlap_(overlap), precision_(precision), range_(A.range()) {
  NEURO_REQUIRE(overlap >= 0, "AdditiveSchwarz: overlap must be non-negative");
  const int n_global = A.global_size();

  // --- Exchange the matrix structure: every rank learns the full CSR. ---
  // (Rank ranges are contiguous and ordered, so concatenation is global CSR.)
  std::array<GlobalRow, 2> my_range{range_.first, range_.second};
  const auto ranges =
      comm.allgather_parts(std::span<const GlobalRow>(my_range.data(), 2));

  // Row lengths, then columns and values.
  std::vector<int> my_lengths(static_cast<std::size_t>(A.local_rows()));
  for (int r = 0; r < A.local_rows(); ++r) {
    my_lengths[static_cast<std::size_t>(r)] =
        A.row_ptr()[static_cast<std::size_t>(r) + 1] -
        A.row_ptr()[static_cast<std::size_t>(r)];
  }
  const auto all_lengths =
      comm.allgatherv(std::span<const int>(my_lengths.data(), my_lengths.size()));
  const auto all_cols = comm.allgatherv(
      std::span<const int>(A.global_cols().data(), A.global_cols().size()));
  const auto all_values =
      comm.allgatherv(std::span<const double>(A.values().data(), A.values().size()));
  NEURO_CHECK(static_cast<int>(all_lengths.size()) == n_global);

  std::vector<int> global_row_ptr(static_cast<std::size_t>(n_global) + 1, 0);
  for (int r = 0; r < n_global; ++r) {
    global_row_ptr[static_cast<std::size_t>(r) + 1] =
        global_row_ptr[static_cast<std::size_t>(r)] +
        all_lengths[static_cast<std::size_t>(r)];
  }

  // --- Grow the extended set by `overlap` adjacency layers. ---
  std::vector<char> in_set(static_cast<std::size_t>(n_global), 0);
  std::vector<GlobalRow> frontier;
  for (const GlobalRow g : range_) {
    in_set[g.index()] = 1;
    frontier.push_back(g);
  }
  for (int layer = 0; layer < overlap; ++layer) {
    std::vector<GlobalRow> next;
    for (const GlobalRow g : frontier) {
      for (int p = global_row_ptr[g.index()]; p < global_row_ptr[g.index() + 1];
           ++p) {
        const GlobalRow c{all_cols[static_cast<std::size_t>(p)]};
        if (!in_set[c.index()]) {
          in_set[c.index()] = 1;
          next.push_back(c);
        }
      }
    }
    frontier = std::move(next);
  }
  for (GlobalRow g{0}; g < GlobalRow{n_global}; ++g) {
    if (in_set[g.index()]) ext_to_global_.push_back(g);
  }

  // Ghost-map lookups: ext_to_global_ is built by an ascending scan over the
  // global rows, so it is sorted and a binary search replaces the hash map —
  // no unordered container near the numeric path, and the traversal order of
  // every loop below is a pure function of the matrix structure
  // (tools/lint/check_numerics.py, rule `unordered-iteration`).
  const auto ext_index = [this](GlobalRow g) -> int {
    const auto it =
        std::lower_bound(ext_to_global_.begin(), ext_to_global_.end(), g);
    if (it == ext_to_global_.end() || !(*it == g)) return -1;
    return static_cast<int>(it - ext_to_global_.begin());
  };
  owned_ext_positions_.reserve(static_cast<std::size_t>(A.local_rows()));
  for (const GlobalRow g : range_) {
    const int e = ext_index(g);
    NEURO_CHECK(e >= 0);
    owned_ext_positions_.push_back(e);
  }

  // --- Extract + sort + factor A(ext, ext). ---
  std::vector<int> sub_row_ptr{0};
  std::vector<int> sub_cols;
  std::vector<double> sub_values;
  std::vector<std::pair<int, double>> row;
  for (const GlobalRow g : ext_to_global_) {
    row.clear();
    for (int p = global_row_ptr[g.index()]; p < global_row_ptr[g.index() + 1];
         ++p) {
      const GlobalRow c{all_cols[static_cast<std::size_t>(p)]};
      const int e = ext_index(c);
      if (e >= 0) {
        row.emplace_back(e, all_values[static_cast<std::size_t>(p)]);
      }
    }
    std::sort(row.begin(), row.end());
    for (const auto& [c, v] : row) {
      sub_cols.push_back(c);
      sub_values.push_back(v);
    }
    sub_row_ptr.push_back(static_cast<int>(sub_cols.size()));
  }
  if (precision_ == SchwarzPrecision::kMixedFloat) {
    mixed_factor_.factor(std::move(sub_row_ptr), std::move(sub_cols),
                         std::move(sub_values));
  } else {
    factor_.factor(std::move(sub_row_ptr), std::move(sub_cols),
                   std::move(sub_values));
  }

  // Setup cost accounting: the structure exchange moves the whole matrix.
  comm.work().add_mem_bytes(12.0 * static_cast<double>(all_values.size()));

  // --- Halo-exchange plan for apply(). ---
  std::vector<GlobalRow> needed;  // halo globals, grouped by owner (sorted)
  for (const GlobalRow g : ext_to_global_) {
    if (!range_.contains(g)) needed.push_back(g);
  }
  const auto all_needed = comm.allgather_parts(
      std::span<const GlobalRow>(needed.data(), needed.size()));
  const Rank me = comm.rank_id();
  for (Rank r{0}; r < Rank{comm.size()}; ++r) {
    if (r == me) continue;
    const RowRange their{ranges[r.index()][0], ranges[r.index()][1]};
    Recv rc;
    rc.rank = r;
    for (const GlobalRow g : needed) {
      if (their.contains(g)) {
        const int e = ext_index(g);
        NEURO_CHECK(e >= 0);
        rc.ext_positions.push_back(e);
      }
    }
    if (!rc.ext_positions.empty()) recvs_.push_back(std::move(rc));

    Send sd;
    sd.rank = r;
    for (const GlobalRow g : all_needed[r.index()]) {
      if (range_.contains(g)) {
        sd.local_indices.push_back(range_.offset_of(g));
      }
    }
    if (!sd.local_indices.empty()) sends_.push_back(std::move(sd));
  }
}

void AdditiveSchwarz::apply(const DistVector& r, DistVector& z,
                            par::Communicator& comm) const {
  NEURO_CHECK(r.range() == range_ && z.range() == range_);
  const int next = extended_rows();

  std::vector<double> r_ext(static_cast<std::size_t>(next), 0.0);
  for (std::size_t i = 0; i < owned_ext_positions_.size(); ++i) {
    r_ext[static_cast<std::size_t>(owned_ext_positions_[i])] = r.local()[i];
  }

  if (comm.size() > 1) {
    constexpr int kTag = 911;
    for (const auto& sd : sends_) {
      std::vector<double> payload(sd.local_indices.size());
      for (std::size_t i = 0; i < sd.local_indices.size(); ++i) {
        payload[i] = r.local()[static_cast<std::size_t>(sd.local_indices[i])];
      }
      comm.send(sd.rank, kTag, std::span<const double>(payload.data(), payload.size()));
    }
    for (const auto& rc : recvs_) {
      const auto data = comm.recv<double>(rc.rank, kTag);
      NEURO_CHECK(data.size() == rc.ext_positions.size());
      for (std::size_t i = 0; i < data.size(); ++i) {
        r_ext[static_cast<std::size_t>(rc.ext_positions[i])] = data[i];
      }
    }
  }

  std::vector<double> z_ext;
  const bool mixed = precision_ == SchwarzPrecision::kMixedFloat;
  if (mixed) {
    mixed_factor_.solve(r_ext, z_ext);
  } else {
    factor_.solve(r_ext, z_ext);
  }

  // Restricted write-back: owned entries only (no overlap double counting).
  for (std::size_t i = 0; i < owned_ext_positions_.size(); ++i) {
    z.local()[i] = z_ext[static_cast<std::size_t>(owned_ext_positions_[i])];
  }

  // Mixed factors stream 4-byte values instead of 8 (the col index rides
  // along either way), cutting the per-sweep value traffic roughly in half.
  const double nnz = static_cast<double>(mixed ? mixed_factor_.nnz() : factor_.nnz());
  comm.work().add_flops(2.0 * nnz);
  comm.work().add_mem_bytes((mixed ? 8.0 : 12.0) * nnz +
                            16.0 * static_cast<double>(next));
}

}  // namespace neuro::solver

// Restricted additive Schwarz preconditioner with overlap.
//
// Block Jacobi (the paper's configuration) ignores all coupling between
// ranks, which is why its iteration counts grow with the block count (visible
// in the Fig. 7 bench). Additive Schwarz — PETSc's other standard parallel
// preconditioner — extends each rank's block by `overlap` layers of
// neighbouring rows, factors the overlapped block with ILU(0), and (in the
// "restricted" variant used here) writes back only the owned part of each
// local solve. Overlap 0 reduces exactly to block Jacobi.
#pragma once

#include <vector>

#include "par/communicator.h"
#include "solver/dist_matrix.h"
#include "solver/ilu_kernels.h"
#include "solver/preconditioner.h"

namespace neuro::solver {

class AdditiveSchwarz final : public Preconditioner {
 public:
  /// Collective: every rank of `comm` must construct simultaneously (matrix
  /// rows are exchanged to build the overlapped blocks). `precision` selects
  /// the ILU(0) factor storage: kMixedFloat stores float factors solved with
  /// double accumulation (see MixedIlu0Factor).
  AdditiveSchwarz(const DistCsrMatrix& A, par::Communicator& comm, int overlap = 1,
                  SchwarzPrecision precision = SchwarzPrecision::kDouble);

  void apply(const DistVector& r, DistVector& z, par::Communicator& comm) const override;
  [[nodiscard]] std::string name() const override {
    return precision_ == SchwarzPrecision::kMixedFloat
               ? "additive-schwarz/ilu0-mixed"
               : "additive-schwarz/ilu0";
  }

  [[nodiscard]] int overlap() const { return overlap_; }
  [[nodiscard]] SchwarzPrecision precision() const { return precision_; }
  /// Extended block size (owned + halo rows) on this rank.
  [[nodiscard]] int extended_rows() const { return static_cast<int>(ext_to_global_.size()); }

 private:
  int overlap_;
  SchwarzPrecision precision_;
  RowRange range_;

  std::vector<GlobalRow> ext_to_global_;  ///< sorted extended index set
  // Exactly one of the two factors is populated, per `precision_`.
  Ilu0Factor factor_;
  MixedIlu0Factor mixed_factor_;

  // Halo exchange plan for apply(): which of my owned entries each neighbour
  // needs, and where incoming values land in the extended vector.
  struct Send {
    Rank rank;
    std::vector<int> local_indices;  ///< offsets into the owned block
  };
  struct Recv {
    Rank rank;
    std::vector<int> ext_positions;  ///< slots in the extended vector
  };
  std::vector<Send> sends_;
  std::vector<Recv> recvs_;
  std::vector<int> owned_ext_positions_;  ///< owned rows' slots in ext order
};

}  // namespace neuro::solver

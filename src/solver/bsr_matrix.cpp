#include "solver/bsr_matrix.h"

#include <algorithm>
#include <array>
#include <cstddef>
#include <span>

#include "base/check.h"
#include "base/numerics_annotations.h"

namespace neuro::solver {

namespace {

constexpr int kB = DistBsrMatrix::kBlock;

/// Register-blocked y = A x over a list of block rows. Each scalar row
/// accumulates its products in the same association order as the scalar CSR
/// kernel, so the two backends agree to rounding.
NEURO_BITEXACT
template <class ColId>
void bsr_rows_kernel(const std::vector<double>& values,
                     const base::IdVector<LocalBlockRow, std::int32_t>& row_ptr,
                     const std::vector<ColId>& cols,
                     const std::vector<LocalBlockRow>& rows, const double* xg,
                     std::vector<double>& y_local) {
  for (const LocalBlockRow br : rows) {
    const std::int32_t pb = row_ptr[br];
    const std::int32_t pe = row_ptr[br + 1];
    double acc0 = 0.0;
    double acc1 = 0.0;
    double acc2 = 0.0;
    for (std::int32_t p = pb; p < pe; ++p) {
      const double* a = &values[static_cast<std::size_t>(p) * 9U];
      const double* xb = xg + cols[static_cast<std::size_t>(p)].index() * 3U;
      acc0 += a[0] * xb[0];
      acc0 += a[1] * xb[1];
      acc0 += a[2] * xb[2];
      acc1 += a[3] * xb[0];
      acc1 += a[4] * xb[1];
      acc1 += a[5] * xb[2];
      acc2 += a[6] * xb[0];
      acc2 += a[7] * xb[1];
      acc2 += a[8] * xb[2];
    }
    const std::size_t out = br.index() * 3U;
    y_local[out + 0] = acc0;
    y_local[out + 1] = acc1;
    y_local[out + 2] = acc2;
  }
}

}  // namespace

DistBsrMatrix::DistBsrMatrix(int global_size, RowRange range,
                             std::vector<std::int32_t> block_row_ptr,
                             std::vector<GlobalBlockRow> block_cols,
                             std::vector<double> values)
    : global_size_(global_size),
      range_(range),
      block_range_{GlobalBlockRow{range.first.value() / kB},
                   GlobalBlockRow{range.second.value() / kB}},
      block_row_ptr_(std::move(block_row_ptr)),
      block_cols_(std::move(block_cols)),
      values_(std::move(values)) {
  NEURO_REQUIRE(global_size_ % kB == 0,
                "DistBsrMatrix: global size not divisible by block size");
  NEURO_REQUIRE(range_.first.value() % kB == 0 && range_.second.value() % kB == 0,
                "DistBsrMatrix: row range not block-aligned");
  NEURO_REQUIRE(range_.first >= GlobalRow{0} && range_.second >= range_.first &&
                    range_.second <= GlobalRow{global_size_},
                "DistBsrMatrix: bad row range");
  NEURO_REQUIRE(static_cast<int>(block_row_ptr_.size()) == local_block_rows() + 1,
                "DistBsrMatrix: block_row_ptr size mismatch");
  NEURO_REQUIRE(values_.size() == block_cols_.size() * 9U,
                "DistBsrMatrix: cols/values size mismatch");
  NEURO_REQUIRE(block_row_ptr_.raw().front() == 0 &&
                    block_row_ptr_.raw().back() ==
                        static_cast<std::int32_t>(block_cols_.size()),
                "DistBsrMatrix: block_row_ptr bounds inconsistent");
  interior_rows_.reserve(static_cast<std::size_t>(local_block_rows()));
  for (LocalBlockRow br{0}; br < LocalBlockRow{local_block_rows()}; ++br) {
    interior_rows_.push_back(br);
  }
}

DistBsrMatrix DistBsrMatrix::from_csr(const DistCsrMatrix& csr) {
  const RowRange range = csr.range();
  NEURO_REQUIRE(csr.global_size() % kB == 0 && range.first.value() % kB == 0 &&
                    range.second.value() % kB == 0,
                "from_csr: row range not block-aligned");
  const int nb = range.size() / kB;
  const auto& rp = csr.row_ptr();
  const auto& cols = csr.global_cols();
  const auto& vals = csr.values();

  std::vector<std::int32_t> brp(static_cast<std::size_t>(nb) + 1, 0);
  std::vector<GlobalBlockRow> bcols;
  std::vector<double> bvals;
  std::vector<GlobalBlockRow> row_blocks;
  for (int br = 0; br < nb; ++br) {
    // Union of the block columns referenced by the three scalar rows.
    row_blocks.clear();
    for (int sr = kB * br; sr < kB * (br + 1); ++sr) {
      for (int p = rp[static_cast<std::size_t>(sr)];
           p < rp[static_cast<std::size_t>(sr) + 1]; ++p) {
        row_blocks.push_back(GlobalBlockRow{cols[static_cast<std::size_t>(p)] / kB});
      }
    }
    std::sort(row_blocks.begin(), row_blocks.end());
    row_blocks.erase(std::unique(row_blocks.begin(), row_blocks.end()),
                     row_blocks.end());
    const std::size_t base_block = bcols.size();
    bcols.insert(bcols.end(), row_blocks.begin(), row_blocks.end());
    bvals.resize(bvals.size() + row_blocks.size() * 9U, 0.0);
    for (int ca = 0; ca < kB; ++ca) {
      const int sr = kB * br + ca;
      for (int p = rp[static_cast<std::size_t>(sr)];
           p < rp[static_cast<std::size_t>(sr) + 1]; ++p) {
        const int c = cols[static_cast<std::size_t>(p)];
        const GlobalBlockRow bc{c / kB};
        const auto it = std::lower_bound(row_blocks.begin(), row_blocks.end(), bc);
        const std::size_t pos =
            base_block + static_cast<std::size_t>(it - row_blocks.begin());
        bvals[pos * 9U + static_cast<std::size_t>(kB * ca + c % kB)] +=
            vals[static_cast<std::size_t>(p)];
      }
    }
    brp[static_cast<std::size_t>(br) + 1] = static_cast<std::int32_t>(bcols.size());
  }
  return DistBsrMatrix(csr.global_size(), range, std::move(brp), std::move(bcols),
                       std::move(bvals));
}

DistCsrMatrix DistBsrMatrix::to_csr() const {
  const int nb = local_block_rows();
  std::vector<int> rp(static_cast<std::size_t>(local_rows()) + 1, 0);
  std::vector<int> cols;
  std::vector<double> vals;
  for (int br = 0; br < nb; ++br) {
    const std::int32_t pb = block_row_ptr_[LocalBlockRow{br}];
    const std::int32_t pe = block_row_ptr_[LocalBlockRow{br + 1}];
    for (int ca = 0; ca < kB; ++ca) {
      const int grow = range_.first.value() + kB * br + ca;
      for (std::int32_t p = pb; p < pe; ++p) {
        const int cbase = kB * block_cols_[static_cast<std::size_t>(p)].value();
        for (int cb = 0; cb < kB; ++cb) {
          const double v =
              values_[static_cast<std::size_t>(p) * 9U +
                      static_cast<std::size_t>(kB * ca + cb)];
          // NEURO_NONDET_OK(structural-zero drop: exact 0.0 is a stored sentinel, not a computed value)
          if (v != 0.0 || cbase + cb == grow) {
            cols.push_back(cbase + cb);
            vals.push_back(v);
          }
        }
      }
      rp[static_cast<std::size_t>(kB * br + ca) + 1] = static_cast<int>(cols.size());
    }
  }
  return DistCsrMatrix(global_size_, range_, std::move(rp), std::move(cols),
                       std::move(vals));
}

void DistBsrMatrix::drop_zero_blocks() {
  NEURO_REQUIRE(!ghosts_ready_, "drop_zero_blocks after setup_ghosts");
  const int nb = local_block_rows();
  std::vector<std::int32_t> new_rp(static_cast<std::size_t>(nb) + 1, 0);
  std::vector<GlobalBlockRow> new_cols;
  std::vector<double> new_vals;
  new_cols.reserve(block_cols_.size());
  new_vals.reserve(values_.size());
  for (int br = 0; br < nb; ++br) {
    const GlobalBlockRow diag = block_range_.first + br;
    for (std::int32_t p = block_row_ptr_[LocalBlockRow{br}];
         p < block_row_ptr_[LocalBlockRow{br + 1}]; ++p) {
      const double* a = &values_[static_cast<std::size_t>(p) * 9U];
      bool keep = block_cols_[static_cast<std::size_t>(p)] == diag;
      // NEURO_NONDET_OK(structural-zero drop: exact 0.0 is a stored sentinel, not a computed value)
      for (int k = 0; k < 9 && !keep; ++k) keep = a[k] != 0.0;
      if (keep) {
        new_cols.push_back(block_cols_[static_cast<std::size_t>(p)]);
        new_vals.insert(new_vals.end(), a, a + 9);
      }
    }
    new_rp[static_cast<std::size_t>(br) + 1] = static_cast<std::int32_t>(new_cols.size());
  }
  block_row_ptr_ = base::IdVector<LocalBlockRow, std::int32_t>(std::move(new_rp));
  block_cols_ = std::move(new_cols);
  values_ = std::move(new_vals);
}

void DistBsrMatrix::setup_ghosts(par::Communicator& comm) {
  NEURO_REQUIRE(!ghosts_ready_, "setup_ghosts called twice");
  const int nb = local_block_rows();

  // Referenced off-range (ghost) block columns, sorted & unique.
  std::vector<GlobalBlockRow> ghosts;
  for (const GlobalBlockRow c : block_cols_) {
    if (!block_range_.contains(c)) ghosts.push_back(c);
  }
  std::sort(ghosts.begin(), ghosts.end());
  ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
  ghost_blocks_ = ghosts;

  // Remap block columns to local slots: owned → [0, nb), ghost → nb + slot.
  local_block_cols_.resize(block_cols_.size());
  for (std::size_t i = 0; i < block_cols_.size(); ++i) {
    const GlobalBlockRow c = block_cols_[i];
    if (block_range_.contains(c)) {
      local_block_cols_[i] = LocalBlockRow{block_range_.offset_of(c)};
    } else {
      const auto it = std::lower_bound(ghosts.begin(), ghosts.end(), c);
      NEURO_REQUIRE(it != ghosts.end() && *it == c,
                    "setup_ghosts: ghost block missing from slot table");
      local_block_cols_[i] = LocalBlockRow{nb + static_cast<int>(it - ghosts.begin())};
    }
  }

  // Everyone learns everyone's block ranges and ghost needs.
  std::array<std::int32_t, 2> my_range{block_range_.first.value(),
                                       block_range_.second.value()};
  auto ranges = comm.allgather_parts(
      std::span<const std::int32_t>(my_range.data(), 2));
  auto needs = comm.allgather_parts(
      std::span<const GlobalBlockRow>(ghosts.data(), ghosts.size()));

  const Rank me = comm.rank_id();
  // Receives: my ghosts grouped by owning rank (sorted ghosts + ordered
  // contiguous ranges ⇒ contiguous runs).
  {
    std::size_t pos = 0;
    for (Rank r{0}; r < Rank{comm.size()}; ++r) {
      if (r == me) continue;
      const BlockRowRange owned{GlobalBlockRow{ranges[r.index()][0]},
                                GlobalBlockRow{ranges[r.index()][1]}};
      const int offset = static_cast<int>(pos);
      int count = 0;
      while (pos < ghosts.size() && owned.contains(ghosts[pos])) {
        ++pos;
        ++count;
      }
      if (count > 0) recvs_.push_back({r, offset, count});
    }
    NEURO_REQUIRE(pos == ghosts.size(),
                  "setup_ghosts: ghost block not owned by any rank");
  }
  // Sends: blocks of mine that other ranks listed as ghosts.
  for (Rank r{0}; r < Rank{comm.size()}; ++r) {
    if (r == me) continue;
    Exchange ex;
    ex.rank = r;
    for (const GlobalBlockRow g : needs[r.index()]) {
      if (block_range_.contains(g)) {
        ex.local_indices.push_back(LocalBlockRow{block_range_.offset_of(g)});
      }
    }
    if (!ex.local_indices.empty()) sends_.push_back(std::move(ex));
  }

  // Interior rows reference only owned block columns; everything else is a
  // boundary row and must wait for the halo.
  interior_rows_.clear();
  boundary_rows_.clear();
  for (LocalBlockRow br{0}; br < LocalBlockRow{nb}; ++br) {
    bool boundary = false;
    for (std::int32_t p = block_row_ptr_[br]; p < block_row_ptr_[br + 1]; ++p) {
      if (local_block_cols_[static_cast<std::size_t>(p)].value() >= nb) {
        boundary = true;
        break;
      }
    }
    (boundary ? boundary_rows_ : interior_rows_).push_back(br);
  }

  ghosts_ready_ = true;
}

void DistBsrMatrix::compute_rows(const std::vector<LocalBlockRow>& rows,
                                 const double* xg, DistVector& y) const {
  if (ghosts_ready_) {
    bsr_rows_kernel(values_, block_row_ptr_, local_block_cols_, rows, xg, y.local());
  } else {
    bsr_rows_kernel(values_, block_row_ptr_, block_cols_, rows, xg, y.local());
  }
}

void DistBsrMatrix::apply(const DistVector& x, DistVector& y,
                          par::Communicator& comm) const {
  NEURO_REQUIRE(ghosts_ready_ || comm.size() == 1,
                "DistBsrMatrix::apply before setup_ghosts");
  NEURO_REQUIRE(x.range() == range_ && y.range() == range_,
                "DistBsrMatrix::apply: vector layout mismatch");
  const std::size_t nb = static_cast<std::size_t>(local_block_rows());

  std::vector<double> xg((nb + ghost_blocks_.size()) * 3U);
  std::copy(x.local().begin(), x.local().end(), xg.begin());

  if (comm.size() > 1 && ghosts_ready_) {
    constexpr int kTag = 702;
    // VecScatterBegin: post the receives, then ship the halo nonblocking.
    std::vector<par::Communicator::PendingRecv> pending;
    pending.reserve(recvs_.size());
    for (const auto& rc : recvs_) pending.push_back(comm.irecv(rc.rank, kTag));
    std::vector<std::vector<double>> payloads(sends_.size());
    for (std::size_t s = 0; s < sends_.size(); ++s) {
      const auto& ex = sends_[s];
      auto& payload = payloads[s];
      payload.resize(ex.local_indices.size() * 3U);
      for (std::size_t i = 0; i < ex.local_indices.size(); ++i) {
        const std::size_t src = ex.local_indices[i].index() * 3U;
        payload[3 * i + 0] = x.local()[src + 0];
        payload[3 * i + 1] = x.local()[src + 1];
        payload[3 * i + 2] = x.local()[src + 2];
      }
      comm.isend(ex.rank, kTag,
                 std::span<const double>(payload.data(), payload.size()));
    }
    // Interior rows need no ghosts: compute them while messages are in flight.
    compute_rows(interior_rows_, xg.data(), y);
    // VecScatterEnd: complete the receives, then finish the boundary rows.
    for (std::size_t i = 0; i < recvs_.size(); ++i) {
      const auto& rc = recvs_[i];
      auto data = comm.wait<double>(pending[i]);
      NEURO_REQUIRE(static_cast<int>(data.size()) == 3 * rc.count,
                    "DistBsrMatrix::apply: ghost payload size mismatch");
      std::copy(data.begin(), data.end(),
                xg.begin() + static_cast<std::ptrdiff_t>(
                                 (nb + static_cast<std::size_t>(rc.ghost_offset)) * 3U));
    }
    compute_rows(boundary_rows_, xg.data(), y);
  } else {
    compute_rows(interior_rows_, xg.data(), y);
    compute_rows(boundary_rows_, xg.data(), y);
  }

  const double nblocks = static_cast<double>(block_cols_.size());
  comm.work().add_flops(18.0 * nblocks);
  comm.work().add_mem_bytes(76.0 * nblocks + 16.0 * static_cast<double>(local_rows()));
}

double DistBsrMatrix::value_at(GlobalRow global_row, GlobalRow global_col) const {
  NEURO_REQUIRE(range_.contains(global_row), "value_at: row not owned");
  const GlobalBlockRow bcol{global_col.value() / kB};
  const LocalBlockRow br{block_range_.offset_of(GlobalBlockRow{global_row.value() / kB})};
  // Block columns are sorted per row (the node adjacency is sorted and both
  // from_csr and drop_zero_blocks preserve order): binary search, not scan.
  const auto begin = block_cols_.begin() + block_row_ptr_[br];
  const auto end = block_cols_.begin() + block_row_ptr_[br + 1];
  const auto it = std::lower_bound(begin, end, bcol);
  if (it != end && *it == bcol) {
    return values_[static_cast<std::size_t>(it - block_cols_.begin()) * 9U +
                   static_cast<std::size_t>(kB * (global_row.value() % kB) +
                                            global_col.value() % kB)];
  }
  return 0.0;
}

double* DistBsrMatrix::find_entry(GlobalRow global_row, GlobalRow global_col) {
  NEURO_REQUIRE(range_.contains(global_row), "find_entry: row not owned");
  const GlobalBlockRow brow{global_row.value() / kB};
  const GlobalBlockRow bcol{global_col.value() / kB};
  const LocalBlockRow br{block_range_.offset_of(brow)};
  const auto begin = block_cols_.begin() + block_row_ptr_[br];
  const auto end = block_cols_.begin() + block_row_ptr_[br + 1];
  const auto it = std::lower_bound(begin, end, bcol);
  if (it != end && *it == bcol) {
    return &values_[static_cast<std::size_t>(it - block_cols_.begin()) * 9U +
                    static_cast<std::size_t>(kB * (global_row.value() % kB) +
                                             global_col.value() % kB)];
  }
  return nullptr;
}

void DistBsrMatrix::extract_diagonal_block(std::vector<int>& row_ptr,
                                           std::vector<int>& cols,
                                           std::vector<double>& values) const {
  const int nb = local_block_rows();
  row_ptr.assign(static_cast<std::size_t>(local_rows()) + 1, 0);
  cols.clear();
  values.clear();
  for (int br = 0; br < nb; ++br) {
    const std::int32_t pb = block_row_ptr_[LocalBlockRow{br}];
    const std::int32_t pe = block_row_ptr_[LocalBlockRow{br + 1}];
    for (int ca = 0; ca < kB; ++ca) {
      const int grow = range_.first.value() + kB * br + ca;
      for (std::int32_t p = pb; p < pe; ++p) {
        const GlobalBlockRow gbc = block_cols_[static_cast<std::size_t>(p)];
        if (!block_range_.contains(gbc)) continue;
        const int cbase = kB * gbc.value();
        for (int cb = 0; cb < kB; ++cb) {
          const double v = values_[static_cast<std::size_t>(p) * 9U +
                                   static_cast<std::size_t>(kB * ca + cb)];
          // Keep the entry set the reference path keeps: nonzeros plus the
          // scalar diagonal (DistCsrMatrix::drop_zeros semantics), so the
          // local preconditioners factor the identical matrix.
          // NEURO_NONDET_OK(structural-zero drop: exact 0.0 is a stored sentinel, not a computed value)
          if (v != 0.0 || cbase + cb == grow) {
            cols.push_back(range_.offset_of(GlobalRow{cbase + cb}));
            values.push_back(v);
          }
        }
      }
      row_ptr[static_cast<std::size_t>(kB * br + ca) + 1] = static_cast<int>(cols.size());
    }
  }
}

}  // namespace neuro::solver

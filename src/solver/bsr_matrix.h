// Distributed 3x3 block compressed-sparse-row matrix.
//
// 3-D elasticity couples the three dofs of a node as a unit: the assembled
// system is structurally a node-adjacency graph of dense 3x3 blocks. Storing
// it that way (PETSc's BAIJ) keeps one column index per block instead of one
// per scalar entry (~3x less index traffic) and lets the mat-vec kernel hold
// a block's x-entries in registers across three output rows.
//
// The mat-vec also overlaps its halo exchange: each rank's block rows are
// split into an *interior* set (no ghost columns) and a *boundary* set, and
// apply() posts nonblocking ghost sends/receives, computes the interior rows
// while the messages are in flight, then completes the receives and finishes
// the boundary rows — the VecScatterBegin/End pattern of the paper's PETSc
// solver. The scalar DistCsrMatrix remains the reference backend; both
// implement LinearOperator and are equivalence-tested against each other.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "base/strong_id.h"
#include "par/communicator.h"
#include "solver/dist_matrix.h"
#include "solver/dist_vector.h"
#include "solver/operator.h"

namespace neuro::solver {

/// A block row/column of the global blocked system: the image of a mesh node
/// (global scalar row / 3).
using GlobalBlockRow = base::StrongId<struct GlobalBlockRowTag>;
/// Offset into one rank's owned block rows; ghost block columns are mapped
/// into the same space after the owned run (slot >= local block count).
using LocalBlockRow = base::StrongId<struct LocalBlockRowTag>;
/// The contiguous run of global block rows one rank owns.
using BlockRowRange = base::IdRange<GlobalBlockRow>;

class DistBsrMatrix : public LinearOperator {
 public:
  static constexpr int kBlock = 3;

  /// Builds the local block rows from BSR arrays with *global* block column
  /// indices. `range` is the scalar row range (must be kBlock-aligned);
  /// `block_row_ptr` has (range.size()/kBlock + 1) entries and `values` holds
  /// kBlock*kBlock doubles per block, row-major.
  DistBsrMatrix(int global_size, RowRange range,
                std::vector<std::int32_t> block_row_ptr,
                std::vector<GlobalBlockRow> block_cols,
                std::vector<double> values);

  /// Groups a scalar CSR matrix into 3x3 blocks (union pattern per block,
  /// zero-filled). Requires a kBlock-aligned row range; the source matrix's
  /// ghost state is irrelevant (global columns are used).
  [[nodiscard]] static DistBsrMatrix from_csr(const DistCsrMatrix& csr);

  /// Expands back to a scalar CSR matrix, skipping explicitly-zero entries
  /// except the scalar diagonal — the same entry set DistCsrMatrix holds
  /// after drop_zeros(), so downstream consumers (Additive Schwarz) see the
  /// reference sparsity.
  [[nodiscard]] DistCsrMatrix to_csr() const;

  [[nodiscard]] int global_size() const override { return global_size_; }
  [[nodiscard]] RowRange range() const override { return range_; }
  [[nodiscard]] BlockRowRange block_range() const { return block_range_; }
  [[nodiscard]] int local_rows() const { return range_.size(); }
  [[nodiscard]] int local_block_rows() const { return block_range_.size(); }
  [[nodiscard]] std::size_t local_blocks() const { return block_cols_.size(); }
  /// Scalar entries stored (9 per block, zero fill included).
  [[nodiscard]] std::size_t local_nnz() const { return values_.size(); }

  /// Removes off-diagonal blocks whose 9 entries are all zero (diagonal
  /// blocks are always kept). The blocked analogue of
  /// DistCsrMatrix::drop_zeros() after boundary-condition substitution:
  /// a fully-fixed neighbour node leaves an all-zero block behind.
  /// Must be called before setup_ghosts().
  void drop_zero_blocks();

  /// Collective: builds the block-granular ghost exchange plan, remaps block
  /// columns to local+ghost slots, and splits the owned block rows into
  /// interior rows (no ghost columns) and boundary rows (at least one).
  void setup_ghosts(par::Communicator& comm);

  /// y = A x (collective). With more than one rank this posts nonblocking
  /// ghost receives and sends (Communicator::irecv/isend), computes interior
  /// rows while the halo is in flight, then waits and finishes boundary rows.
  void apply(const DistVector& x, DistVector& y,
             par::Communicator& comm) const override;

  [[nodiscard]] double value_at(GlobalRow global_row,
                                GlobalRow global_col) const override;

  /// Mutable access used by boundary-condition substitution. Row is owned.
  /// Returns nullptr when the 3x3 block is not in the sparsity pattern.
  [[nodiscard]] double* find_entry(GlobalRow global_row, GlobalRow global_col);

  /// Scalar diagonal-block extraction (see LinearOperator): skips explicit
  /// zeros except the scalar diagonal, matching the reference CSR path.
  void extract_diagonal_block(std::vector<int>& row_ptr, std::vector<int>& cols,
                              std::vector<double>& values) const override;

  /// Raw local block structure (global block columns, 9 values per block).
  [[nodiscard]] const base::IdVector<LocalBlockRow, std::int32_t>& block_row_ptr() const {
    return block_row_ptr_;
  }
  [[nodiscard]] const std::vector<GlobalBlockRow>& block_cols() const {
    return block_cols_;
  }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  [[nodiscard]] std::vector<double>& values() { return values_; }

  /// Interior/boundary split (valid after setup_ghosts; before it, every row
  /// is interior).
  [[nodiscard]] const std::vector<LocalBlockRow>& interior_rows() const {
    return interior_rows_;
  }
  [[nodiscard]] const std::vector<LocalBlockRow>& boundary_rows() const {
    return boundary_rows_;
  }

 private:
  void compute_rows(const std::vector<LocalBlockRow>& rows, const double* xg,
                    DistVector& y) const;

  int global_size_;
  RowRange range_;
  BlockRowRange block_range_;
  base::IdVector<LocalBlockRow, std::int32_t> block_row_ptr_;
  std::vector<GlobalBlockRow> block_cols_;
  std::vector<double> values_;  ///< 9 per block, row-major within the block

  // Ghost plan (built by setup_ghosts).
  bool ghosts_ready_ = false;
  std::vector<LocalBlockRow> local_block_cols_;  ///< owned → [0, nb), ghosts after
  std::vector<GlobalBlockRow> ghost_blocks_;     ///< global block per ghost slot
  struct Exchange {
    Rank rank;
    std::vector<LocalBlockRow> local_indices;  ///< owned blocks to ship to `rank`
  };
  std::vector<Exchange> sends_;
  struct Receive {
    Rank rank;
    int ghost_offset;  ///< first ghost slot filled by this rank
    int count;
  };
  std::vector<Receive> recvs_;
  std::vector<LocalBlockRow> interior_rows_;
  std::vector<LocalBlockRow> boundary_rows_;
};

}  // namespace neuro::solver

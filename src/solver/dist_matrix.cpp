#include "solver/dist_matrix.h"

#include <algorithm>
#include <array>

#include "base/check.h"
#include "base/numerics_annotations.h"

namespace neuro::solver {

DistCsrMatrix::DistCsrMatrix(int global_size, RowRange range,
                             std::vector<int> row_ptr, std::vector<int> cols,
                             std::vector<double> values)
    : global_size_(global_size),
      range_(range),
      row_ptr_(std::move(row_ptr)),
      global_cols_(std::move(cols)),
      values_(std::move(values)) {
  NEURO_REQUIRE(range_.first >= GlobalRow{0} && range_.second >= range_.first &&
                    range_.second <= GlobalRow{global_size_},
                "DistCsrMatrix: bad row range");
  NEURO_REQUIRE(static_cast<int>(row_ptr_.size()) == local_rows() + 1,
                "DistCsrMatrix: row_ptr size mismatch");
  NEURO_REQUIRE(global_cols_.size() == values_.size(),
                "DistCsrMatrix: cols/values size mismatch");
  NEURO_REQUIRE(row_ptr_.front() == 0 &&
                    row_ptr_.back() == static_cast<int>(values_.size()),
                "DistCsrMatrix: row_ptr bounds inconsistent");
}

void DistCsrMatrix::drop_zeros() {
  NEURO_CHECK_MSG(!ghosts_ready_, "drop_zeros after setup_ghosts");
  const int nlocal = local_rows();
  std::vector<int> new_row_ptr(static_cast<std::size_t>(nlocal) + 1, 0);
  std::vector<int> new_cols;
  std::vector<double> new_values;
  new_cols.reserve(global_cols_.size());
  new_values.reserve(values_.size());
  for (int r = 0; r < nlocal; ++r) {
    const GlobalRow global_row = global_of(range_, LocalRow{r});
    for (int p = row_ptr_[static_cast<std::size_t>(r)];
         p < row_ptr_[static_cast<std::size_t>(r) + 1]; ++p) {
      const int c = global_cols_[static_cast<std::size_t>(p)];
      // NEURO_NONDET_OK(structural-zero drop: exact 0.0 is a stored sentinel, not a computed value)
      if (values_[static_cast<std::size_t>(p)] != 0.0 || c == global_row.value()) {
        new_cols.push_back(c);
        new_values.push_back(values_[static_cast<std::size_t>(p)]);
      }
    }
    new_row_ptr[static_cast<std::size_t>(r) + 1] = static_cast<int>(new_cols.size());
  }
  row_ptr_ = std::move(new_row_ptr);
  global_cols_ = std::move(new_cols);
  values_ = std::move(new_values);
}

void DistCsrMatrix::setup_ghosts(par::Communicator& comm) {
  NEURO_CHECK_MSG(!ghosts_ready_, "setup_ghosts called twice");
  const int nlocal = local_rows();

  // Collect referenced off-range (ghost) columns, sorted & unique.
  std::vector<GlobalRow> ghosts;
  for (const int c : global_cols_) {
    if (!range_.contains(GlobalRow{c})) ghosts.push_back(GlobalRow{c});
  }
  std::sort(ghosts.begin(), ghosts.end());
  ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
  ghost_globals_ = ghosts;

  // Remap columns to local storage: owned → [0, nlocal), ghost → slot. The
  // ghost list is sorted and built once, so a binary search over it beats a
  // throwaway hash map (no allocation churn, no hashing).
  local_cols_.resize(global_cols_.size());
  for (std::size_t i = 0; i < global_cols_.size(); ++i) {
    const GlobalRow c{global_cols_[i]};
    if (range_.contains(c)) {
      local_cols_[i] = range_.offset_of(c);
    } else {
      const auto it = std::lower_bound(ghosts.begin(), ghosts.end(), c);
      NEURO_REQUIRE(it != ghosts.end() && *it == c,
                    "setup_ghosts: ghost column missing from slot table");
      local_cols_[i] = nlocal + static_cast<int>(it - ghosts.begin());
    }
  }

  // Everyone learns everyone's ownership ranges and ghost needs.
  std::array<int, 2> my_range{range_.first.value(), range_.second.value()};
  auto ranges = comm.allgather_parts(std::span<const int>(my_range.data(), 2));
  auto needs = comm.allgather_parts(
      std::span<const GlobalRow>(ghosts.data(), ghosts.size()));

  const Rank me = comm.rank_id();
  // Receives: my ghosts grouped by owning rank (ghosts are sorted, ranges are
  // contiguous and ordered, so groups are contiguous runs).
  {
    std::size_t pos = 0;
    for (Rank r{0}; r < Rank{comm.size()}; ++r) {
      if (r == me) continue;
      const RowRange owned{GlobalRow{ranges[r.index()][0]},
                           GlobalRow{ranges[r.index()][1]}};
      const int offset = static_cast<int>(pos);
      int count = 0;
      while (pos < ghosts.size() && owned.contains(ghosts[pos])) {
        ++pos;
        ++count;
      }
      if (count > 0) recvs_.push_back({r, offset, count});
    }
    NEURO_CHECK_MSG(pos == ghosts.size(),
                    "setup_ghosts: ghost column not owned by any rank");
  }
  // Sends: entries of mine that other ranks listed as ghosts.
  for (Rank r{0}; r < Rank{comm.size()}; ++r) {
    if (r == me) continue;
    Exchange ex;
    ex.rank = r;
    for (const GlobalRow g : needs[r.index()]) {
      if (range_.contains(g)) {
        ex.local_indices.push_back(range_.offset_of(g));
      }
    }
    if (!ex.local_indices.empty()) sends_.push_back(std::move(ex));
  }

  ghosts_ready_ = true;
}

// Reference scalar SpMV: the association order here is the contract the BSR
// backend reproduces (bit-identical y for identical x across backends).
NEURO_BITEXACT
void DistCsrMatrix::apply(const DistVector& x, DistVector& y,
                          par::Communicator& comm) const {
  NEURO_CHECK_MSG(ghosts_ready_ || comm.size() == 1,
                  "DistCsrMatrix::apply before setup_ghosts");
  NEURO_CHECK(x.range() == range_ && y.range() == range_);
  const int nlocal = local_rows();

  // Assemble the local + ghost vector image.
  std::vector<double> xg(static_cast<std::size_t>(nlocal) + ghost_globals_.size());
  std::copy(x.local().begin(), x.local().end(), xg.begin());

  if (comm.size() > 1) {
    constexpr int kTag = 701;
    std::vector<std::vector<double>> payloads(sends_.size());
    for (std::size_t s = 0; s < sends_.size(); ++s) {
      const auto& ex = sends_[s];
      auto& payload = payloads[s];
      payload.resize(ex.local_indices.size());
      for (std::size_t i = 0; i < ex.local_indices.size(); ++i) {
        payload[i] = x.local()[static_cast<std::size_t>(ex.local_indices[i])];
      }
      comm.send(ex.rank, kTag, std::span<const double>(payload.data(), payload.size()));
    }
    for (const auto& rc : recvs_) {
      auto data = comm.recv<double>(rc.rank, kTag);
      NEURO_CHECK(static_cast<int>(data.size()) == rc.count);
      std::copy(data.begin(), data.end(),
                xg.begin() + nlocal + rc.ghost_offset);
    }
  }

  // y = A * xg over local rows.
  const auto& cols = ghosts_ready_ ? local_cols_ : global_cols_;
  for (int r = 0; r < nlocal; ++r) {
    double acc = 0.0;
    for (int p = row_ptr_[static_cast<std::size_t>(r)];
         p < row_ptr_[static_cast<std::size_t>(r) + 1]; ++p) {
      acc += values_[static_cast<std::size_t>(p)] *
             xg[static_cast<std::size_t>(cols[static_cast<std::size_t>(p)])];
    }
    y.local()[static_cast<std::size_t>(r)] = acc;
  }

  comm.work().add_flops(2.0 * static_cast<double>(values_.size()));
  comm.work().add_mem_bytes(12.0 * static_cast<double>(values_.size()) +
                            16.0 * static_cast<double>(nlocal));
}

double DistCsrMatrix::value_at(GlobalRow global_row, GlobalRow global_col) const {
  NEURO_REQUIRE(range_.contains(global_row), "value_at: row not owned");
  const int r = range_.offset_of(global_row);
  // Columns are sorted per row (assembly emits them in ascending dof order
  // and drop_zeros preserves order), so a binary search replaces the linear
  // scan — value_at is called per owned row by the Jacobi preconditioner.
  const auto begin = global_cols_.begin() + row_ptr_[static_cast<std::size_t>(r)];
  const auto end = global_cols_.begin() + row_ptr_[static_cast<std::size_t>(r) + 1];
  const auto it = std::lower_bound(begin, end, global_col.value());
  if (it != end && *it == global_col.value()) {
    return values_[static_cast<std::size_t>(it - global_cols_.begin())];
  }
  return 0.0;
}

double* DistCsrMatrix::find_entry(GlobalRow global_row, GlobalRow global_col) {
  NEURO_REQUIRE(range_.contains(global_row), "find_entry: row not owned");
  const int r = range_.offset_of(global_row);
  const auto begin = global_cols_.begin() + row_ptr_[static_cast<std::size_t>(r)];
  const auto end = global_cols_.begin() + row_ptr_[static_cast<std::size_t>(r) + 1];
  const auto it = std::lower_bound(begin, end, global_col.value());
  if (it != end && *it == global_col.value()) {
    return &values_[static_cast<std::size_t>(it - global_cols_.begin())];
  }
  return nullptr;
}

void DistCsrMatrix::extract_diagonal_block(std::vector<int>& row_ptr,
                                           std::vector<int>& cols,
                                           std::vector<double>& values) const {
  const int nlocal = local_rows();
  row_ptr.assign(static_cast<std::size_t>(nlocal) + 1, 0);
  cols.clear();
  values.clear();
  for (int r = 0; r < nlocal; ++r) {
    for (int p = row_ptr_[static_cast<std::size_t>(r)];
         p < row_ptr_[static_cast<std::size_t>(r) + 1]; ++p) {
      const GlobalRow c{global_cols_[static_cast<std::size_t>(p)]};
      if (range_.contains(c)) {
        cols.push_back(range_.offset_of(c));
        values.push_back(values_[static_cast<std::size_t>(p)]);
      }
    }
    row_ptr[static_cast<std::size_t>(r) + 1] = static_cast<int>(cols.size());
  }
}

}  // namespace neuro::solver

// Distributed compressed-sparse-row matrix.
//
// Rows are distributed in contiguous blocks (one block per rank), the layout
// PETSc's MPIAIJ uses and the natural image of the mesh node partition
// (3 dof per node). Matrix-vector products exchange only the "ghost" vector
// entries each rank actually references, set up once and reused every
// iteration — the communication pattern whose cost the paper's solve-phase
// scaling reflects.
#pragma once

#include <utility>
#include <vector>

#include "base/strong_id.h"
#include "par/communicator.h"
#include "solver/dist_vector.h"
#include "solver/operator.h"

namespace neuro::solver {

class DistCsrMatrix : public LinearOperator {
 public:
  /// Builds the local row block from CSR arrays with *global* column indices.
  /// `row_ptr` has (range.size() + 1) entries. The int arrays are the CSR
  /// wire format and stay untyped; every API above them is typed.
  DistCsrMatrix(int global_size, RowRange range, std::vector<int> row_ptr,
                std::vector<int> cols, std::vector<double> values);

  [[nodiscard]] int global_size() const override { return global_size_; }
  [[nodiscard]] RowRange range() const override { return range_; }
  [[nodiscard]] int local_rows() const { return range_.size(); }
  [[nodiscard]] std::size_t local_nnz() const { return values_.size(); }

  /// Removes explicitly-zero entries from the local rows (diagonal entries
  /// are always kept). Boundary-condition substitution zeroes fixed rows and
  /// columns; compacting afterwards "reduc[es] the number of unknowns that
  /// must be solved for" exactly as the paper describes — and creates the
  /// per-rank solve imbalance it reports, because surface nodes are not
  /// spread evenly across ranks. Must be called before setup_ghosts().
  void drop_zeros();

  /// Collective: resolves which vector entries must be exchanged with which
  /// ranks during mat-vec, and remaps column indices to local+ghost storage.
  /// Must be called once (by all ranks together) before the first apply().
  void setup_ghosts(par::Communicator& comm);

  /// y = A x (collective). x and y must share this matrix's row layout.
  void apply(const DistVector& x, DistVector& y,
             par::Communicator& comm) const override;

  /// Value at (global_row, global_col); row must be owned. Zero if absent.
  /// Columns of the square system live in the same GlobalRow space as rows.
  [[nodiscard]] double value_at(GlobalRow global_row,
                                GlobalRow global_col) const override;

  /// Mutable access used by boundary-condition substitution. Row is owned.
  /// Returns nullptr when the entry is not in the sparsity pattern.
  [[nodiscard]] double* find_entry(GlobalRow global_row, GlobalRow global_col);

  /// Iterates the raw local structure (global column indices preserved
  /// separately from the ghost remap).
  [[nodiscard]] const std::vector<int>& row_ptr() const { return row_ptr_; }
  [[nodiscard]] const std::vector<int>& global_cols() const { return global_cols_; }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  [[nodiscard]] std::vector<double>& values() { return values_; }

  /// The diagonal block (columns within the owned range) as a dense-indexable
  /// CSR triple — used by block-Jacobi/ILU(0) and SSOR preconditioners.
  struct LocalBlockView {
    const std::vector<int>* row_ptr;
    const std::vector<int>* cols;       ///< *local* column indices
    const std::vector<double>* values;
    int rows;
  };

  /// Extracts a copy of the diagonal block with local column indices.
  void extract_diagonal_block(std::vector<int>& row_ptr, std::vector<int>& cols,
                              std::vector<double>& values) const override;

 private:
  int global_size_;
  RowRange range_;
  std::vector<int> row_ptr_;
  std::vector<int> global_cols_;
  std::vector<double> values_;

  // Ghost plan (built by setup_ghosts).
  bool ghosts_ready_ = false;
  std::vector<int> local_cols_;  ///< remapped: [0, nlocal) owned, then ghosts
  std::vector<GlobalRow> ghost_globals_;  ///< global index per ghost slot
  struct Exchange {
    Rank rank;
    std::vector<int> local_indices;  ///< owned entries to ship to `rank`
  };
  std::vector<Exchange> sends_;
  struct Receive {
    Rank rank;
    int ghost_offset;  ///< first ghost slot filled by this rank
    int count;
  };
  std::vector<Receive> recvs_;
};

}  // namespace neuro::solver

// Distributed dense vector (row-block layout matching DistCsrMatrix).
//
// Each rank owns the contiguous slice [begin, end) of the global vector.
// Reductions (dot, norm) are the only communicating operations; everything
// else is rank-local. Flop/byte accounting feeds the scaling model.
//
// Rows come in two index spaces that raw ints used to conflate: GlobalRow is
// a row of the assembled 3·N-equation system, LocalRow is an offset into one
// rank's owned block. They are distinct strong types — passing one where the
// other is expected does not compile (tests/compile_fail/ proves it).
#pragma once

#include <cmath>
#include <utility>
#include <vector>

#include "base/check.h"
#include "base/strong_id.h"
#include "par/communicator.h"

namespace neuro::solver {

/// A row of the global (assembled) system. In the FEM layers this is the
/// image of a dof — fem/dof.h holds the explicit DofId ↔ GlobalRow bridge.
using GlobalRow = base::StrongId<struct GlobalRowTag>;
/// An offset into one rank's owned row block: local = global − range().first.
using LocalRow = base::StrongId<struct LocalRowTag>;
/// The contiguous run of global rows one rank owns.
using RowRange = base::IdRange<GlobalRow>;

/// The owned global rows [first, first + count).
[[nodiscard]] constexpr RowRange row_range(GlobalRow first, int count) {
  return {first, first + count};
}

/// Local offset of an owned global row.
[[nodiscard]] constexpr LocalRow local_of(const RowRange& range, GlobalRow row) {
  return LocalRow{range.offset_of(row)};
}

/// Global row of a local offset.
[[nodiscard]] constexpr GlobalRow global_of(const RowRange& range, LocalRow row) {
  return range.first + row.value();
}

class DistVector {
 public:
  DistVector() = default;
  DistVector(int global_size, RowRange range, double fill = 0.0)
      : global_size_(global_size),
        range_(range),
        local_(static_cast<std::size_t>(range.size()), fill) {
    NEURO_REQUIRE(range.first >= GlobalRow{0} && range.second >= range.first &&
                      range.second <= GlobalRow{global_size},
                  "DistVector: bad ownership range");
  }

  [[nodiscard]] int global_size() const { return global_size_; }
  [[nodiscard]] RowRange range() const { return range_; }
  [[nodiscard]] int local_size() const { return static_cast<int>(local_.size()); }

  [[nodiscard]] std::vector<double>& local() { return local_; }
  [[nodiscard]] const std::vector<double>& local() const { return local_; }

  /// Access by *global* row (must be owned).
  double& operator[](GlobalRow row) {
    NEURO_CHECK(range_.contains(row));
    return local_[static_cast<std::size_t>(range_.offset_of(row))];
  }
  double operator[](GlobalRow row) const {
    NEURO_CHECK(range_.contains(row));
    return local_[static_cast<std::size_t>(range_.offset_of(row))];
  }

  /// Access by local offset into the owned block.
  double& operator[](LocalRow row) {
    NEURO_ID_BOUNDS_CHECK(row.index() < local_.size());
    return local_[row.index()];
  }
  double operator[](LocalRow row) const {
    NEURO_ID_BOUNDS_CHECK(row.index() < local_.size());
    return local_[row.index()];
  }

  void set_all(double v) { local_.assign(local_.size(), v); }

  /// this += alpha * x
  void axpy(double alpha, const DistVector& x, par::Communicator& comm) {
    NEURO_CHECK(x.local_size() == local_size());
    for (std::size_t i = 0; i < local_.size(); ++i) local_[i] += alpha * x.local_[i];
    comm.work().add_flops(2.0 * static_cast<double>(local_.size()));
    comm.work().add_mem_bytes(24.0 * static_cast<double>(local_.size()));
  }

  /// this = alpha * this
  void scale(double alpha, par::Communicator& comm) {
    for (auto& v : local_) v *= alpha;
    comm.work().add_flops(static_cast<double>(local_.size()));
    comm.work().add_mem_bytes(16.0 * static_cast<double>(local_.size()));
  }

  /// Rank-local partial dot product (no communication). Building block for
  /// batched reductions: callers collect several partials into one buffer and
  /// fuse them into a single allreduce_sum. Summing the per-rank partials in
  /// rank order — which allreduce_sum does — reproduces dot() bit for bit.
  [[nodiscard]] double dot_local(const DistVector& x,
                                 par::Communicator& comm) const {
    NEURO_REQUIRE(x.local_size() == local_size(), "dot_local: layout mismatch");
    double local = 0.0;
    for (std::size_t i = 0; i < local_.size(); ++i) local += local_[i] * x.local_[i];
    comm.work().add_flops(2.0 * static_cast<double>(local_.size()));
    comm.work().add_mem_bytes(16.0 * static_cast<double>(local_.size()));
    return local;
  }

  /// Global dot product (collective).
  [[nodiscard]] double dot(const DistVector& x, par::Communicator& comm) const {
    return comm.allreduce_sum(dot_local(x, comm));
  }

  /// Global 2-norm (collective).
  [[nodiscard]] double norm2(par::Communicator& comm) const {
    return std::sqrt(dot(*this, comm));
  }

  /// Gathers the full global vector on every rank (collective).
  [[nodiscard]] std::vector<double> gather_all(par::Communicator& comm) const {
    return comm.allgatherv(std::span<const double>(local_.data(), local_.size()));
  }

 private:
  int global_size_ = 0;
  RowRange range_{};
  std::vector<double> local_;
};

}  // namespace neuro::solver

// Distributed dense vector (row-block layout matching DistCsrMatrix).
//
// Each rank owns the contiguous slice [begin, end) of the global vector.
// Reductions (dot, norm) are the only communicating operations; everything
// else is rank-local. Flop/byte accounting feeds the scaling model.
#pragma once

#include <cmath>
#include <utility>
#include <vector>

#include "base/check.h"
#include "par/communicator.h"

namespace neuro::solver {

class DistVector {
 public:
  DistVector() = default;
  DistVector(int global_size, std::pair<int, int> range, double fill = 0.0)
      : global_size_(global_size),
        range_(range),
        local_(static_cast<std::size_t>(range.second - range.first), fill) {
    NEURO_REQUIRE(range.first >= 0 && range.second >= range.first &&
                      range.second <= global_size,
                  "DistVector: bad ownership range");
  }

  [[nodiscard]] int global_size() const { return global_size_; }
  [[nodiscard]] std::pair<int, int> range() const { return range_; }
  [[nodiscard]] int local_size() const { return static_cast<int>(local_.size()); }

  [[nodiscard]] std::vector<double>& local() { return local_; }
  [[nodiscard]] const std::vector<double>& local() const { return local_; }

  /// Access by *global* index (must be owned).
  double& operator[](int global_index) {
    NEURO_CHECK(global_index >= range_.first && global_index < range_.second);
    return local_[static_cast<std::size_t>(global_index - range_.first)];
  }
  double operator[](int global_index) const {
    NEURO_CHECK(global_index >= range_.first && global_index < range_.second);
    return local_[static_cast<std::size_t>(global_index - range_.first)];
  }

  void set_all(double v) { local_.assign(local_.size(), v); }

  /// this += alpha * x
  void axpy(double alpha, const DistVector& x, par::Communicator& comm) {
    NEURO_CHECK(x.local_size() == local_size());
    for (std::size_t i = 0; i < local_.size(); ++i) local_[i] += alpha * x.local_[i];
    comm.work().add_flops(2.0 * static_cast<double>(local_.size()));
    comm.work().add_mem_bytes(24.0 * static_cast<double>(local_.size()));
  }

  /// this = alpha * this
  void scale(double alpha, par::Communicator& comm) {
    for (auto& v : local_) v *= alpha;
    comm.work().add_flops(static_cast<double>(local_.size()));
    comm.work().add_mem_bytes(16.0 * static_cast<double>(local_.size()));
  }

  /// Global dot product (collective).
  [[nodiscard]] double dot(const DistVector& x, par::Communicator& comm) const {
    NEURO_CHECK(x.local_size() == local_size());
    double local = 0.0;
    for (std::size_t i = 0; i < local_.size(); ++i) local += local_[i] * x.local_[i];
    comm.work().add_flops(2.0 * static_cast<double>(local_.size()));
    comm.work().add_mem_bytes(16.0 * static_cast<double>(local_.size()));
    return comm.allreduce_sum(local);
  }

  /// Global 2-norm (collective).
  [[nodiscard]] double norm2(par::Communicator& comm) const {
    return std::sqrt(dot(*this, comm));
  }

  /// Gathers the full global vector on every rank (collective).
  [[nodiscard]] std::vector<double> gather_all(par::Communicator& comm) const {
    return comm.allgatherv(std::span<const double>(local_.data(), local_.size()));
  }

 private:
  int global_size_ = 0;
  std::pair<int, int> range_{0, 0};
  std::vector<double> local_;
};

}  // namespace neuro::solver

#include "solver/ilu_kernels.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "base/numerics_annotations.h"

namespace neuro::solver {

namespace {

int find_col(const std::vector<int>& cols, int b, int e, int c) {
  const auto it = std::lower_bound(cols.begin() + b, cols.begin() + e, c);
  if (it != cols.begin() + e && *it == c) return static_cast<int>(it - cols.begin());
  return -1;
}

// Shared IKJ ILU(0) elimination over a sorted-column CSR pattern; fills
// `diag_pos` and factors `values` in place. Both factor classes call this, so
// the mixed factor is the double factor demoted entry-for-entry.
void factor_ilu0_inplace(const std::vector<int>& row_ptr,
                         const std::vector<int>& cols,
                         std::vector<double>& values,
                         std::vector<int>& diag_pos) {
  const int n = static_cast<int>(row_ptr.size()) - 1;
  diag_pos.assign(static_cast<std::size_t>(n), -1);

  for (int i = 0; i < n; ++i) {
    const int b = row_ptr[static_cast<std::size_t>(i)];
    const int e = row_ptr[static_cast<std::size_t>(i) + 1];
    for (int p = b; p < e; ++p) {
      const int k = cols[static_cast<std::size_t>(p)];
      if (k >= i) break;
      const int dk = diag_pos[static_cast<std::size_t>(k)];
      NEURO_CHECK_MSG(dk >= 0, "ILU(0): missing pivot for row " << k);
      const double pivot = values[static_cast<std::size_t>(dk)];
      NEURO_CHECK_MSG(std::abs(pivot) > 1e-300, "ILU(0): zero pivot at row " << k);
      const double lik = values[static_cast<std::size_t>(p)] / pivot;
      values[static_cast<std::size_t>(p)] = lik;
      const int ke = row_ptr[static_cast<std::size_t>(k) + 1];
      for (int q = dk + 1; q < ke; ++q) {
        const int j = cols[static_cast<std::size_t>(q)];
        const int pos = find_col(cols, p + 1, e, j);
        if (pos >= 0) {
          values[static_cast<std::size_t>(pos)] -=
              lik * values[static_cast<std::size_t>(q)];
        }
      }
    }
    const int dp = find_col(cols, b, e, i);
    NEURO_REQUIRE(dp >= 0, "ILU(0): structurally missing diagonal at row " << i);
    diag_pos[static_cast<std::size_t>(i)] = dp;
  }
}

}  // namespace

void Ilu0Factor::factor(std::vector<int> row_ptr, std::vector<int> cols,
                        std::vector<double> values) {
  row_ptr_ = std::move(row_ptr);
  cols_ = std::move(cols);
  values_ = std::move(values);
  factor_ilu0_inplace(row_ptr_, cols_, values_, diag_pos_);
}

// Sequential triangular sweeps: substitution order fixes the rounding, so the
// factor application is a pure function of (factor, input) bytes.
NEURO_BITEXACT
void Ilu0Factor::solve(const std::vector<double>& in, std::vector<double>& out) const {
  const int n = rows();
  NEURO_CHECK(static_cast<int>(in.size()) == n);
  out.resize(static_cast<std::size_t>(n));

  for (int i = 0; i < n; ++i) {
    double acc = in[static_cast<std::size_t>(i)];
    for (int p = row_ptr_[static_cast<std::size_t>(i)];
         p < diag_pos_[static_cast<std::size_t>(i)]; ++p) {
      acc -= values_[static_cast<std::size_t>(p)] *
             out[static_cast<std::size_t>(cols_[static_cast<std::size_t>(p)])];
    }
    out[static_cast<std::size_t>(i)] = acc;
  }
  for (int i = n - 1; i >= 0; --i) {
    double acc = out[static_cast<std::size_t>(i)];
    const int dp = diag_pos_[static_cast<std::size_t>(i)];
    for (int p = dp + 1; p < row_ptr_[static_cast<std::size_t>(i) + 1]; ++p) {
      acc -= values_[static_cast<std::size_t>(p)] *
             out[static_cast<std::size_t>(cols_[static_cast<std::size_t>(p)])];
    }
    out[static_cast<std::size_t>(i)] = acc / values_[static_cast<std::size_t>(dp)];
  }
}

void MixedIlu0Factor::factor(std::vector<int> row_ptr, std::vector<int> cols,
                             std::vector<double> values) {
  row_ptr_ = std::move(row_ptr);
  cols_ = std::move(cols);
  factor_ilu0_inplace(row_ptr_, cols_, values, diag_pos_);
  values_.resize(values.size());
  for (std::size_t p = 0; p < values.size(); ++p) {
    values_[p] = static_cast<float>(values[p]);
  }
}

// Same substitution order as Ilu0Factor::solve; float factor entries promote
// to double inside each fused multiply, so every accumulation is double.
NEURO_BITEXACT
void MixedIlu0Factor::solve(const std::vector<double>& in,
                            std::vector<double>& out) const {
  const int n = rows();
  NEURO_REQUIRE(static_cast<int>(in.size()) == n,
                "mixed ILU(0) solve: size " << in.size() << " != rows " << n);
  out.resize(static_cast<std::size_t>(n));

  for (int i = 0; i < n; ++i) {
    double acc = in[static_cast<std::size_t>(i)];
    for (int p = row_ptr_[static_cast<std::size_t>(i)];
         p < diag_pos_[static_cast<std::size_t>(i)]; ++p) {
      acc -= static_cast<double>(values_[static_cast<std::size_t>(p)]) *
             out[static_cast<std::size_t>(cols_[static_cast<std::size_t>(p)])];
    }
    out[static_cast<std::size_t>(i)] = acc;
  }
  for (int i = n - 1; i >= 0; --i) {
    double acc = out[static_cast<std::size_t>(i)];
    const int dp = diag_pos_[static_cast<std::size_t>(i)];
    for (int p = dp + 1; p < row_ptr_[static_cast<std::size_t>(i) + 1]; ++p) {
      acc -= static_cast<double>(values_[static_cast<std::size_t>(p)]) *
             out[static_cast<std::size_t>(cols_[static_cast<std::size_t>(p)])];
    }
    out[static_cast<std::size_t>(i)] =
        acc / static_cast<double>(values_[static_cast<std::size_t>(dp)]);
  }
}

}  // namespace neuro::solver

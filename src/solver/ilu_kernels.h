// Shared ILU(0) kernel: in-place incomplete factorization of a local CSR
// block and the corresponding triangular solves. Used by the block-Jacobi
// preconditioner (diagonal block) and additive Schwarz (overlapping block).
#pragma once

#include <vector>

namespace neuro::solver {

/// An ILU(0) factorization of a square local CSR matrix whose rows have
/// sorted column indices. L is unit lower, U includes the diagonal; both are
/// stored in place over the input pattern.
class Ilu0Factor {
 public:
  /// Factors in place. `row_ptr`/`cols` describe the pattern (cols sorted per
  /// row, diagonal present); `values` is consumed. Throws on zero pivots or a
  /// structurally missing diagonal.
  void factor(std::vector<int> row_ptr, std::vector<int> cols,
              std::vector<double> values);

  /// out = (LU)⁻¹ in. Sizes must equal the factored dimension.
  void solve(const std::vector<double>& in, std::vector<double>& out) const;

  [[nodiscard]] int rows() const { return static_cast<int>(row_ptr_.size()) - 1; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }

 private:
  std::vector<int> row_ptr_;
  std::vector<int> cols_;
  std::vector<double> values_;
  std::vector<int> diag_pos_;
};

}  // namespace neuro::solver

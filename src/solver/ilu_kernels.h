// Shared ILU(0) kernel: in-place incomplete factorization of a local CSR
// block and the corresponding triangular solves. Used by the block-Jacobi
// preconditioner (diagonal block) and additive Schwarz (overlapping block).
#pragma once

#include <vector>

namespace neuro::solver {

/// An ILU(0) factorization of a square local CSR matrix whose rows have
/// sorted column indices. L is unit lower, U includes the diagonal; both are
/// stored in place over the input pattern.
class Ilu0Factor {
 public:
  /// Factors in place. `row_ptr`/`cols` describe the pattern (cols sorted per
  /// row, diagonal present); `values` is consumed. Throws on zero pivots or a
  /// structurally missing diagonal.
  void factor(std::vector<int> row_ptr, std::vector<int> cols,
              std::vector<double> values);

  /// out = (LU)⁻¹ in. Sizes must equal the factored dimension.
  void solve(const std::vector<double>& in, std::vector<double>& out) const;

  [[nodiscard]] int rows() const { return static_cast<int>(row_ptr_.size()) - 1; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }

 private:
  std::vector<int> row_ptr_;
  std::vector<int> cols_;
  std::vector<double> values_;
  std::vector<int> diag_pos_;
};

/// Mixed-precision sibling of Ilu0Factor: the elimination runs in full double
/// precision, then the factors are demoted to float storage; the triangular
/// solves stream the float factors while accumulating every substitution in
/// double. That halves the factor's value traffic per application — the
/// dominant cost of an ILU sweep — at a perturbation of one float ulp per
/// factor entry, which perturbs only the *preconditioner* (never the Krylov
/// residual), so outer convergence is tolerance-equivalent to the double
/// factor (docs/perf.md, "Mixed-precision accuracy contract").
class MixedIlu0Factor {
 public:
  /// Same contract as Ilu0Factor::factor; the double factors are demoted to
  /// float after elimination completes.
  void factor(std::vector<int> row_ptr, std::vector<int> cols,
              std::vector<double> values);

  /// out = (LU)⁻¹ in, float factor loads, double accumulation.
  void solve(const std::vector<double>& in, std::vector<double>& out) const;

  [[nodiscard]] int rows() const { return static_cast<int>(row_ptr_.size()) - 1; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }

 private:
  std::vector<int> row_ptr_;
  std::vector<int> cols_;
  std::vector<float> values_;
  std::vector<int> diag_pos_;
};

}  // namespace neuro::solver

#include "solver/krylov.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace neuro::solver {

namespace {

DistVector like(const DistVector& v) {
  return DistVector(v.global_size(), v.range());
}

}  // namespace

double true_residual_norm(const DistCsrMatrix& A, const DistVector& b,
                          const DistVector& x, par::Communicator& comm) {
  DistVector r = like(b);
  A.apply(x, r, comm);
  r.scale(-1.0, comm);
  r.axpy(1.0, b, comm);
  return r.norm2(comm);
}

SolveStats gmres(const DistCsrMatrix& A, const DistVector& b, DistVector& x,
                 const Preconditioner& M, const SolverConfig& config,
                 par::Communicator& comm) {
  NEURO_REQUIRE(config.gmres_restart >= 1, "gmres: restart must be >= 1");
  const int m = config.gmres_restart;
  SolveStats stats;

  DistVector r = like(b);
  DistVector w = like(b);
  DistVector z = like(b);

  // Initial residual r = b - A x.
  A.apply(x, r, comm);
  r.scale(-1.0, comm);
  r.axpy(1.0, b, comm);
  double beta = r.norm2(comm);
  stats.initial_residual = beta;
  stats.final_residual = beta;
  if (config.record_history) stats.history.push_back(beta);
  if (beta <= config.atol) {
    stats.converged = true;
    return stats;
  }
  const double target = std::max(config.rtol * beta, config.atol);

  std::vector<DistVector> V(static_cast<std::size_t>(m) + 1, like(b));
  // Hessenberg (column-major: H[j] has j+2 entries) and Givens rotations.
  std::vector<std::vector<double>> H(static_cast<std::size_t>(m));
  std::vector<double> cs(static_cast<std::size_t>(m)), sn(static_cast<std::size_t>(m));
  std::vector<double> g(static_cast<std::size_t>(m) + 1);

  while (stats.iterations < config.max_iterations) {
    // Restart cycle.
    V[0] = r;
    V[0].scale(1.0 / beta, comm);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int j = 0;
    for (; j < m && stats.iterations < config.max_iterations; ++j) {
      // w = A M⁻¹ v_j (right preconditioning).
      M.apply(V[static_cast<std::size_t>(j)], z, comm);
      A.apply(z, w, comm);
      ++stats.iterations;

      // Modified Gram–Schmidt: one global reduction per projection, the
      // latency-bound pattern the paper's Ethernet solve times include.
      auto& h = H[static_cast<std::size_t>(j)];
      h.assign(static_cast<std::size_t>(j) + 2, 0.0);
      for (int i = 0; i <= j; ++i) {
        const double hij = w.dot(V[static_cast<std::size_t>(i)], comm);
        h[static_cast<std::size_t>(i)] = hij;
        w.axpy(-hij, V[static_cast<std::size_t>(i)], comm);
      }
      const double hlast = w.norm2(comm);
      h[static_cast<std::size_t>(j) + 1] = hlast;

      // Apply previous Givens rotations to the new column.
      for (int i = 0; i < j; ++i) {
        const double t = cs[static_cast<std::size_t>(i)] * h[static_cast<std::size_t>(i)] +
                         sn[static_cast<std::size_t>(i)] * h[static_cast<std::size_t>(i) + 1];
        h[static_cast<std::size_t>(i) + 1] =
            -sn[static_cast<std::size_t>(i)] * h[static_cast<std::size_t>(i)] +
            cs[static_cast<std::size_t>(i)] * h[static_cast<std::size_t>(i) + 1];
        h[static_cast<std::size_t>(i)] = t;
      }
      // New rotation eliminating h[j+1].
      const double denom = std::hypot(h[static_cast<std::size_t>(j)],
                                      h[static_cast<std::size_t>(j) + 1]);
      if (denom <= 1e-300) {
        // Lucky breakdown: exact solution in the current subspace.
        cs[static_cast<std::size_t>(j)] = 1.0;
        sn[static_cast<std::size_t>(j)] = 0.0;
      } else {
        cs[static_cast<std::size_t>(j)] = h[static_cast<std::size_t>(j)] / denom;
        sn[static_cast<std::size_t>(j)] = h[static_cast<std::size_t>(j) + 1] / denom;
      }
      h[static_cast<std::size_t>(j)] = denom;
      h[static_cast<std::size_t>(j) + 1] = 0.0;
      g[static_cast<std::size_t>(j) + 1] = -sn[static_cast<std::size_t>(j)] *
                                           g[static_cast<std::size_t>(j)];
      g[static_cast<std::size_t>(j)] *= cs[static_cast<std::size_t>(j)];

      const double rho = std::abs(g[static_cast<std::size_t>(j) + 1]);
      stats.final_residual = rho;
      if (config.record_history) stats.history.push_back(rho);

      if (hlast <= 1e-300 || rho <= target) {
        ++j;
        break;
      }
      V[static_cast<std::size_t>(j) + 1] = w;
      V[static_cast<std::size_t>(j) + 1].scale(1.0 / hlast, comm);
    }

    // Back-substitute y from the triangular H, then x += M⁻¹ (V y).
    std::vector<double> y(static_cast<std::size_t>(j), 0.0);
    for (int i = j - 1; i >= 0; --i) {
      double acc = g[static_cast<std::size_t>(i)];
      for (int k = i + 1; k < j; ++k) {
        acc -= H[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] *
               y[static_cast<std::size_t>(k)];
      }
      y[static_cast<std::size_t>(i)] = acc / H[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
    }
    DistVector u = like(b);
    for (int i = 0; i < j; ++i) {
      u.axpy(y[static_cast<std::size_t>(i)], V[static_cast<std::size_t>(i)], comm);
    }
    M.apply(u, z, comm);
    x.axpy(1.0, z, comm);

    // True residual for the restart test.
    A.apply(x, r, comm);
    r.scale(-1.0, comm);
    r.axpy(1.0, b, comm);
    beta = r.norm2(comm);
    stats.final_residual = beta;
    if (beta <= target) {
      stats.converged = true;
      return stats;
    }
  }
  stats.converged = stats.final_residual <= target;
  return stats;
}

SolveStats cg(const DistCsrMatrix& A, const DistVector& b, DistVector& x,
              const Preconditioner& M, const SolverConfig& config,
              par::Communicator& comm) {
  SolveStats stats;
  DistVector r = like(b), z = like(b), p = like(b), Ap = like(b);

  A.apply(x, r, comm);
  r.scale(-1.0, comm);
  r.axpy(1.0, b, comm);
  stats.initial_residual = r.norm2(comm);
  stats.final_residual = stats.initial_residual;
  if (config.record_history) stats.history.push_back(stats.initial_residual);
  if (stats.initial_residual <= config.atol) {
    stats.converged = true;
    return stats;
  }
  const double target = std::max(config.rtol * stats.initial_residual, config.atol);

  M.apply(r, z, comm);
  p = z;
  double rz = r.dot(z, comm);

  while (stats.iterations < config.max_iterations) {
    A.apply(p, Ap, comm);
    ++stats.iterations;
    const double pAp = p.dot(Ap, comm);
    NEURO_CHECK_MSG(pAp > 0.0, "cg: matrix is not positive definite (pᵀAp = "
                                   << pAp << ")");
    const double alpha = rz / pAp;
    x.axpy(alpha, p, comm);
    r.axpy(-alpha, Ap, comm);

    const double rnorm = r.norm2(comm);
    stats.final_residual = rnorm;
    if (config.record_history) stats.history.push_back(rnorm);
    if (rnorm <= target) {
      stats.converged = true;
      return stats;
    }

    M.apply(r, z, comm);
    const double rz_new = r.dot(z, comm);
    const double betak = rz_new / rz;
    rz = rz_new;
    // p = z + beta p
    p.scale(betak, comm);
    p.axpy(1.0, z, comm);
  }
  return stats;
}

SolveStats bicgstab(const DistCsrMatrix& A, const DistVector& b, DistVector& x,
                    const Preconditioner& M, const SolverConfig& config,
                    par::Communicator& comm) {
  SolveStats stats;
  DistVector r = like(b), r0 = like(b), p = like(b), v = like(b), s = like(b),
             t = like(b), ph = like(b), sh = like(b);

  A.apply(x, r, comm);
  r.scale(-1.0, comm);
  r.axpy(1.0, b, comm);
  stats.initial_residual = r.norm2(comm);
  stats.final_residual = stats.initial_residual;
  if (config.record_history) stats.history.push_back(stats.initial_residual);
  if (stats.initial_residual <= config.atol) {
    stats.converged = true;
    return stats;
  }
  const double target = std::max(config.rtol * stats.initial_residual, config.atol);

  r0 = r;
  double rho = 1.0, alpha = 1.0, omega = 1.0;

  while (stats.iterations < config.max_iterations) {
    const double rho_new = r0.dot(r, comm);
    if (std::abs(rho_new) < 1e-300) break;  // breakdown
    if (stats.iterations == 0) {
      p = r;
    } else {
      const double beta = (rho_new / rho) * (alpha / omega);
      // p = r + beta (p - omega v)
      p.axpy(-omega, v, comm);
      p.scale(beta, comm);
      p.axpy(1.0, r, comm);
    }
    rho = rho_new;

    M.apply(p, ph, comm);
    A.apply(ph, v, comm);
    ++stats.iterations;
    const double r0v = r0.dot(v, comm);
    if (std::abs(r0v) < 1e-300) break;
    alpha = rho / r0v;

    s = r;
    s.axpy(-alpha, v, comm);
    const double snorm = s.norm2(comm);
    if (snorm <= target) {
      x.axpy(alpha, ph, comm);
      stats.final_residual = snorm;
      if (config.record_history) stats.history.push_back(snorm);
      stats.converged = true;
      return stats;
    }

    M.apply(s, sh, comm);
    A.apply(sh, t, comm);
    const double tt = t.dot(t, comm);
    if (tt < 1e-300) break;
    omega = t.dot(s, comm) / tt;

    x.axpy(alpha, ph, comm);
    x.axpy(omega, sh, comm);
    r = s;
    r.axpy(-omega, t, comm);

    const double rnorm = r.norm2(comm);
    stats.final_residual = rnorm;
    if (config.record_history) stats.history.push_back(rnorm);
    if (rnorm <= target) {
      stats.converged = true;
      return stats;
    }
    if (std::abs(omega) < 1e-300) break;
  }
  return stats;
}

}  // namespace neuro::solver

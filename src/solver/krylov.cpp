#include "solver/krylov.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <deque>
#include <span>
#include <sstream>

#include "base/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace neuro::solver {

const char* stop_reason_name(StopReason reason) {
  switch (reason) {
    case StopReason::kConverged: return "converged";
    case StopReason::kMaxIterations: return "max_iterations";
    case StopReason::kStagnated: return "stagnated";
    case StopReason::kDiverged: return "diverged";
    case StopReason::kNumericalInvalid: return "numerical_invalid";
    case StopReason::kDeadlineExceeded: return "deadline_exceeded";
    case StopReason::kBreakdown: return "breakdown";
  }
  return "unknown";
}

namespace {

DistVector like(const DistVector& v) {
  return DistVector(v.global_size(), v.range());
}

/// One watchdog per solve (see WatchdogConfig). poll() returns kConverged
/// while the iteration may continue, the stop reason otherwise; message()
/// then carries the diagnostic detail. Every test except the deadline runs on
/// collective-identical residuals, so all ranks reach the same verdict at the
/// same sample without communicating; the deadline is a collective vote.
class Watchdog {
 public:
  Watchdog(const WatchdogConfig& config, par::Communicator& comm)
      : config_(config), comm_(comm) {}

  StopReason poll(double residual, double initial_residual) {
    ++samples_;
    if (config_.check_finite && !std::isfinite(residual)) {
      std::ostringstream oss;
      oss << "residual became non-finite (" << residual << ") at sample "
          << samples_;
      message_ = oss.str();
      return StopReason::kNumericalInvalid;
    }
    if (config_.divergence_factor > 0.0 && initial_residual > 0.0 &&
        residual > config_.divergence_factor * initial_residual) {
      std::ostringstream oss;
      oss << "residual " << residual << " exceeded " << config_.divergence_factor
          << " x initial (" << initial_residual << ")";
      message_ = oss.str();
      return StopReason::kDiverged;
    }
    if (config_.stagnation_window > 0) {
      window_.push_back(residual);
      const auto span = static_cast<std::size_t>(config_.stagnation_window) + 1;
      if (window_.size() > span) window_.pop_front();
      if (window_.size() == span &&
          window_.back() >
              (1.0 - config_.stagnation_min_decrease) * window_.front()) {
        std::ostringstream oss;
        oss << "residual plateaued at " << residual << " over the last "
            << config_.stagnation_window << " iterations";
        message_ = oss.str();
        return StopReason::kStagnated;
      }
    }
    if (config_.deadline_seconds > 0.0 &&
        samples_ % std::max(1, config_.deadline_check_interval) == 0) {
      // Wall clocks differ between ranks; vote so every rank stops together.
      const double elapsed =
          // NEURO_NONDET_OK(deadline watchdog: outcome is allreduce-voted, rank-uniform, fault-path only)
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
              .count();
      const int expired = elapsed >= config_.deadline_seconds ? 1 : 0;
      if (comm_.allreduce_max(expired) != 0) {
        std::ostringstream oss;
        oss << "solve deadline of " << config_.deadline_seconds
            << " s passed after " << samples_ << " iterations";
        message_ = oss.str();
        return StopReason::kDeadlineExceeded;
      }
    }
    return StopReason::kConverged;
  }

  [[nodiscard]] const std::string& message() const { return message_; }

 private:
  WatchdogConfig config_;
  par::Communicator& comm_;
  // NEURO_NONDET_OK(deadline watchdog epoch: feeds only the voted deadline check above)
  std::chrono::steady_clock::time_point start_ = std::chrono::steady_clock::now();
  std::deque<double> window_;
  int samples_ = 0;
  std::string message_;
};

/// Marks a watchdog stop in the flight-recorder ring and metrics registry: a
/// "watchdog.fire" span carrying the reason and last residual, plus a
/// solver.watchdog_fires.<reason> counter. Rank threads never write a
/// post-mortem bundle themselves — the degradation ladder / service layer
/// turns the surfaced stop into a dump once the ranks have joined.
void note_watchdog_fire(const char* solver, StopReason stop, double residual,
                        const std::string& message) {
  obs::metrics()
      .counter(std::string("solver.watchdog_fires.") + stop_reason_name(stop))
      .add(1);
  obs::Span fire = obs::global_span("watchdog.fire");
  if (fire.active()) {
    fire.attr("solver", solver);
    fire.attr("reason", stop_reason_name(stop));
    fire.attr("residual", residual);
    fire.attr("detail", message);
  }
}

}  // namespace

double true_residual_norm(const LinearOperator& A, const DistVector& b,
                          const DistVector& x, par::Communicator& comm) {
  DistVector r = like(b);
  A.apply(x, r, comm);
  r.scale(-1.0, comm);
  r.axpy(1.0, b, comm);
  return r.norm2(comm);
}

SolveStats gmres(const LinearOperator& A, const DistVector& b, DistVector& x,
                 const Preconditioner& M, const SolverConfig& config,
                 par::Communicator& comm) {
  NEURO_REQUIRE(config.gmres_restart >= 1, "gmres: restart must be >= 1");
  const int m = config.gmres_restart;
  SolveStats stats;

  DistVector r = like(b);
  DistVector w = like(b);
  DistVector z = like(b);

  // Initial residual r = b - A x.
  A.apply(x, r, comm);
  r.scale(-1.0, comm);
  r.axpy(1.0, b, comm);
  double beta = r.norm2(comm);
  stats.initial_residual = beta;
  stats.final_residual = beta;
  if (config.record_history) stats.history.push_back(beta);
  if (beta <= config.atol) {
    stats.converged = true;
    stats.stop_reason = StopReason::kConverged;
    return stats;
  }
  const double target = std::max(config.rtol * beta, config.atol);
  Watchdog watchdog(config.watchdog, comm);
  StopReason stop = StopReason::kConverged;

  std::vector<DistVector> V(static_cast<std::size_t>(m) + 1, like(b));
  // Hessenberg (column-major: H[j] has j+2 entries) and Givens rotations.
  std::vector<std::vector<double>> H(static_cast<std::size_t>(m));
  std::vector<double> cs(static_cast<std::size_t>(m)), sn(static_cast<std::size_t>(m));
  std::vector<double> g(static_cast<std::size_t>(m) + 1);

  while (stats.iterations < config.max_iterations) {
    // Restart cycle.
    V[0] = r;
    V[0].scale(1.0 / beta, comm);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int j = 0;
    for (; j < m && stats.iterations < config.max_iterations; ++j) {
      // Per-iteration telemetry: the span covers the full Arnoldi step and
      // carries the residual plus the allreduce count actually spent on it
      // (WorkCounter delta), making the MGS-vs-CGS collective budget visible
      // per iteration in the trace.
      obs::Span iter_span = obs::global_span("gmres.iteration");
      const double rounds_before =
          iter_span.active() ? comm.work().current().coll_rounds : 0.0;
      // w = A M⁻¹ v_j (right preconditioning).
      M.apply(V[static_cast<std::size_t>(j)], z, comm);
      A.apply(z, w, comm);
      ++stats.iterations;

      auto& h = H[static_cast<std::size_t>(j)];
      h.assign(static_cast<std::size_t>(j) + 2, 0.0);
      double hlast = 0.0;
      if (config.gmres_orthogonalization == GramSchmidtKind::kClassical) {
        // Classical Gram–Schmidt: the whole projection row plus ‖w‖² travel
        // in ONE batched allreduce, so a restart cycle costs O(m) collectives
        // instead of MGS's O(m²) — the latency term that dominates the
        // paper's Ethernet solve times.
        std::vector<double> d(static_cast<std::size_t>(j) + 2);
        for (int i = 0; i <= j; ++i) {
          d[static_cast<std::size_t>(i)] =
              w.dot_local(V[static_cast<std::size_t>(i)], comm);
        }
        d[static_cast<std::size_t>(j) + 1] = w.dot_local(w, comm);
        comm.allreduce_sum(std::span<double>(d.data(), d.size()));
        const double ww = d[static_cast<std::size_t>(j) + 1];
        double est = ww;
        for (int i = 0; i <= j; ++i) {
          const double hij = d[static_cast<std::size_t>(i)];
          h[static_cast<std::size_t>(i)] = hij;
          est -= hij * hij;  // Pythagoras: ‖w − Vh‖² = ‖w‖² − Σ h²
          w.axpy(-hij, V[static_cast<std::size_t>(i)], comm);
        }
        if (config.gmres_reorthogonalize) {
          // DGKS second pass: one more batched allreduce buys back the
          // orthogonality MGS gets from its sequential projections.
          std::vector<double> d2(static_cast<std::size_t>(j) + 2);
          for (int i = 0; i <= j; ++i) {
            d2[static_cast<std::size_t>(i)] =
                w.dot_local(V[static_cast<std::size_t>(i)], comm);
          }
          d2[static_cast<std::size_t>(j) + 1] = w.dot_local(w, comm);
          comm.allreduce_sum(std::span<double>(d2.data(), d2.size()));
          est = d2[static_cast<std::size_t>(j) + 1];
          for (int i = 0; i <= j; ++i) {
            const double cij = d2[static_cast<std::size_t>(i)];
            h[static_cast<std::size_t>(i)] += cij;
            est -= cij * cij;
            w.axpy(-cij, V[static_cast<std::size_t>(i)], comm);
          }
        }
        // The subtraction cancels when w is nearly in span(V); fall back to a
        // direct norm then. est and ww are collective-identical on every
        // rank, so the branch (and its extra allreduce) is rank-consistent.
        constexpr double kCancellationGuard = 1e-4;
        hlast = est > kCancellationGuard * ww ? std::sqrt(est) : w.norm2(comm);
      } else {
        // Modified Gram–Schmidt (reference): one global reduction per
        // projection; bitwise-stable baseline for the accuracy benchmarks.
        for (int i = 0; i <= j; ++i) {
          const double hij = w.dot(V[static_cast<std::size_t>(i)], comm);
          h[static_cast<std::size_t>(i)] = hij;
          w.axpy(-hij, V[static_cast<std::size_t>(i)], comm);
        }
        hlast = w.norm2(comm);
      }
      h[static_cast<std::size_t>(j) + 1] = hlast;

      // Apply previous Givens rotations to the new column.
      for (int i = 0; i < j; ++i) {
        const double t = cs[static_cast<std::size_t>(i)] * h[static_cast<std::size_t>(i)] +
                         sn[static_cast<std::size_t>(i)] * h[static_cast<std::size_t>(i) + 1];
        h[static_cast<std::size_t>(i) + 1] =
            -sn[static_cast<std::size_t>(i)] * h[static_cast<std::size_t>(i)] +
            cs[static_cast<std::size_t>(i)] * h[static_cast<std::size_t>(i) + 1];
        h[static_cast<std::size_t>(i)] = t;
      }
      // New rotation eliminating h[j+1].
      const double denom = std::hypot(h[static_cast<std::size_t>(j)],
                                      h[static_cast<std::size_t>(j) + 1]);
      if (denom <= 1e-300) {
        // Lucky breakdown: exact solution in the current subspace.
        cs[static_cast<std::size_t>(j)] = 1.0;
        sn[static_cast<std::size_t>(j)] = 0.0;
      } else {
        cs[static_cast<std::size_t>(j)] = h[static_cast<std::size_t>(j)] / denom;
        sn[static_cast<std::size_t>(j)] = h[static_cast<std::size_t>(j) + 1] / denom;
      }
      h[static_cast<std::size_t>(j)] = denom;
      h[static_cast<std::size_t>(j) + 1] = 0.0;
      g[static_cast<std::size_t>(j) + 1] = -sn[static_cast<std::size_t>(j)] *
                                           g[static_cast<std::size_t>(j)];
      g[static_cast<std::size_t>(j)] *= cs[static_cast<std::size_t>(j)];

      const double rho = std::abs(g[static_cast<std::size_t>(j) + 1]);
      stats.final_residual = rho;
      if (config.record_history) stats.history.push_back(rho);
      if (iter_span.active()) {
        iter_span.attr("iteration", stats.iterations);
        iter_span.attr("residual", rho);
        iter_span.attr("allreduces",
                       static_cast<std::int64_t>(
                           comm.work().current().coll_rounds - rounds_before));
        obs::counter("gmres.residual", rho);
      }

      if (hlast <= 1e-300 || rho <= target) {
        ++j;
        break;
      }
      // The column is complete, so a watchdog stop here still yields a valid
      // best-so-far iterate from the back-substitution below.
      stop = watchdog.poll(rho, stats.initial_residual);
      if (stop != StopReason::kConverged) {
        note_watchdog_fire("gmres", stop, rho, watchdog.message());
        ++j;
        break;
      }
      V[static_cast<std::size_t>(j) + 1] = w;
      V[static_cast<std::size_t>(j) + 1].scale(1.0 / hlast, comm);
    }

    // Back-substitute y from the triangular H, then x += M⁻¹ (V y).
    std::vector<double> y(static_cast<std::size_t>(j), 0.0);
    for (int i = j - 1; i >= 0; --i) {
      double acc = g[static_cast<std::size_t>(i)];
      for (int k = i + 1; k < j; ++k) {
        acc -= H[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] *
               y[static_cast<std::size_t>(k)];
      }
      y[static_cast<std::size_t>(i)] = acc / H[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
    }
    DistVector u = like(b);
    for (int i = 0; i < j; ++i) {
      u.axpy(y[static_cast<std::size_t>(i)], V[static_cast<std::size_t>(i)], comm);
    }
    M.apply(u, z, comm);
    x.axpy(1.0, z, comm);

    // True residual for the restart test.
    A.apply(x, r, comm);
    r.scale(-1.0, comm);
    r.axpy(1.0, b, comm);
    beta = r.norm2(comm);
    stats.final_residual = beta;
    if (beta <= target) {
      stats.converged = true;
      stats.stop_reason = StopReason::kConverged;
      return stats;
    }
    if (stop != StopReason::kConverged) {
      // Watchdog stop: x already holds the best-so-far iterate.
      stats.stop_reason = stop;
      stats.stop_message = watchdog.message();
      return stats;
    }
  }
  stats.converged = stats.final_residual <= target;
  if (stats.converged) {
    stats.stop_reason = StopReason::kConverged;
  } else {
    std::ostringstream oss;
    oss << "gmres: " << config.max_iterations
        << " iterations exhausted at relative residual "
        << stats.relative_residual();
    stats.stop_message = oss.str();
  }
  return stats;
}

SolveStats cg(const LinearOperator& A, const DistVector& b, DistVector& x,
              const Preconditioner& M, const SolverConfig& config,
              par::Communicator& comm) {
  SolveStats stats;
  DistVector r = like(b), z = like(b), p = like(b), Ap = like(b);

  A.apply(x, r, comm);
  r.scale(-1.0, comm);
  r.axpy(1.0, b, comm);
  stats.initial_residual = r.norm2(comm);
  stats.final_residual = stats.initial_residual;
  if (config.record_history) stats.history.push_back(stats.initial_residual);
  if (stats.initial_residual <= config.atol) {
    stats.converged = true;
    stats.stop_reason = StopReason::kConverged;
    return stats;
  }
  const double target = std::max(config.rtol * stats.initial_residual, config.atol);
  Watchdog watchdog(config.watchdog, comm);

  M.apply(r, z, comm);
  p = z;
  double rz = r.dot(z, comm);

  while (stats.iterations < config.max_iterations) {
    obs::Span iter_span = obs::global_span("cg.iteration");
    const double rounds_before =
        iter_span.active() ? comm.work().current().coll_rounds : 0.0;
    A.apply(p, Ap, comm);
    ++stats.iterations;
    const double pAp = p.dot(Ap, comm);
    if (pAp <= 0.0) {
      // Indefinite (or numerically indefinite) operator: CG's contract is
      // broken, but that is an input-class failure, not invariant corruption —
      // report it as a typed breakdown so the caller can switch solvers.
      std::ostringstream oss;
      oss << "cg: matrix is not positive definite (pAp = " << pAp << ")";
      stats.stop_reason = StopReason::kBreakdown;
      stats.stop_message = oss.str();
      return stats;
    }
    const double alpha = rz / pAp;
    x.axpy(alpha, p, comm);
    r.axpy(-alpha, Ap, comm);

    double rnorm = 0.0;
    double rz_new = 0.0;
    if (config.fuse_reductions) {
      // z = M⁻¹ r is needed for the next search direction anyway; computing
      // it before the convergence test lets ‖r‖² and rᵀz share one allreduce
      // (3 → 2 collectives per iteration). The span reduction sums each
      // component in rank order, so both scalars match the unfused path bit
      // for bit; the only waste is one preconditioner apply on the final
      // iteration.
      M.apply(r, z, comm);
      std::array<double, 2> d{r.dot_local(r, comm), r.dot_local(z, comm)};
      comm.allreduce_sum(std::span<double>(d.data(), d.size()));
      rnorm = std::sqrt(d[0]);
      rz_new = d[1];
    } else {
      rnorm = r.norm2(comm);
    }
    stats.final_residual = rnorm;
    if (config.record_history) stats.history.push_back(rnorm);
    if (iter_span.active()) {
      iter_span.attr("iteration", stats.iterations);
      iter_span.attr("residual", rnorm);
      iter_span.attr("allreduces",
                     static_cast<std::int64_t>(
                         comm.work().current().coll_rounds - rounds_before));
      obs::counter("cg.residual", rnorm);
    }
    if (rnorm <= target) {
      stats.converged = true;
      stats.stop_reason = StopReason::kConverged;
      return stats;
    }
    const StopReason stop = watchdog.poll(rnorm, stats.initial_residual);
    if (stop != StopReason::kConverged) {
      note_watchdog_fire("cg", stop, rnorm, watchdog.message());
      stats.stop_reason = stop;
      stats.stop_message = watchdog.message();
      return stats;
    }

    if (!config.fuse_reductions) {
      M.apply(r, z, comm);
      rz_new = r.dot(z, comm);
    }
    const double betak = rz_new / rz;
    rz = rz_new;
    // p = z + beta p
    p.scale(betak, comm);
    p.axpy(1.0, z, comm);
  }
  std::ostringstream oss;
  oss << "cg: " << config.max_iterations
      << " iterations exhausted at relative residual " << stats.relative_residual();
  stats.stop_message = oss.str();
  return stats;
}

SolveStats bicgstab(const LinearOperator& A, const DistVector& b, DistVector& x,
                    const Preconditioner& M, const SolverConfig& config,
                    par::Communicator& comm) {
  SolveStats stats;
  DistVector r = like(b), r0 = like(b), p = like(b), v = like(b), s = like(b),
             t = like(b), ph = like(b), sh = like(b);

  A.apply(x, r, comm);
  r.scale(-1.0, comm);
  r.axpy(1.0, b, comm);
  // Same collective and the same arithmetic as r.norm2(comm); keeping rr0
  // around lets the fused path seed the first rho without another reduction
  // (r0 == r at entry, so r0ᵀr == rᵀr).
  const double rr0 = r.dot(r, comm);
  stats.initial_residual = std::sqrt(rr0);
  stats.final_residual = stats.initial_residual;
  if (config.record_history) stats.history.push_back(stats.initial_residual);
  if (stats.initial_residual <= config.atol) {
    stats.converged = true;
    stats.stop_reason = StopReason::kConverged;
    return stats;
  }
  const double target = std::max(config.rtol * stats.initial_residual, config.atol);
  Watchdog watchdog(config.watchdog, comm);

  r0 = r;
  double rho = 1.0, alpha = 1.0, omega = 1.0;
  double rho_pending = rr0;  ///< fused path: r0ᵀr carried from the last fused allreduce

  const auto breakdown = [&stats](const char* what) {
    stats.stop_reason = StopReason::kBreakdown;
    stats.stop_message = std::string("bicgstab: breakdown (") + what + ")";
  };

  while (stats.iterations < config.max_iterations) {
    obs::Span iter_span = obs::global_span("bicgstab.iteration");
    const double rounds_before =
        iter_span.active() ? comm.work().current().coll_rounds : 0.0;
    // Fused: r0ᵀr was batched into the allreduce that ended the previous
    // iteration (or equals rr0 on entry), so the loop head is collective-free.
    const double rho_new =
        config.fuse_reductions ? rho_pending : r0.dot(r, comm);
    if (std::abs(rho_new) < 1e-300) {
      breakdown("rho -> 0");
      break;
    }
    if (stats.iterations == 0) {
      p = r;
    } else {
      const double beta = (rho_new / rho) * (alpha / omega);
      // p = r + beta (p - omega v)
      p.axpy(-omega, v, comm);
      p.scale(beta, comm);
      p.axpy(1.0, r, comm);
    }
    rho = rho_new;

    M.apply(p, ph, comm);
    A.apply(ph, v, comm);
    ++stats.iterations;
    const double r0v = r0.dot(v, comm);
    if (std::abs(r0v) < 1e-300) {
      breakdown("r0.v -> 0");
      break;
    }
    alpha = rho / r0v;

    s = r;
    s.axpy(-alpha, v, comm);
    const double snorm = s.norm2(comm);
    if (snorm <= target) {
      x.axpy(alpha, ph, comm);
      stats.final_residual = snorm;
      if (config.record_history) stats.history.push_back(snorm);
      if (iter_span.active()) {
        iter_span.attr("iteration", stats.iterations);
        iter_span.attr("residual", snorm);
        iter_span.attr("allreduces",
                       static_cast<std::int64_t>(
                           comm.work().current().coll_rounds - rounds_before));
        obs::counter("bicgstab.residual", snorm);
      }
      stats.converged = true;
      stats.stop_reason = StopReason::kConverged;
      return stats;
    }

    M.apply(s, sh, comm);
    A.apply(sh, t, comm);
    double tt = 0.0;
    double ts = 0.0;
    if (config.fuse_reductions) {
      // tᵀt and tᵀs share one allreduce (both needed for omega).
      std::array<double, 2> d{t.dot_local(t, comm), t.dot_local(s, comm)};
      comm.allreduce_sum(std::span<double>(d.data(), d.size()));
      tt = d[0];
      ts = d[1];
    } else {
      tt = t.dot(t, comm);
    }
    if (tt < 1e-300) {
      breakdown("t.t -> 0");
      break;
    }
    omega = (config.fuse_reductions ? ts : t.dot(s, comm)) / tt;

    x.axpy(alpha, ph, comm);
    x.axpy(omega, sh, comm);
    r = s;
    r.axpy(-omega, t, comm);

    double rnorm = 0.0;
    if (config.fuse_reductions) {
      // ‖r‖² and the next iteration's r0ᵀr share the closing allreduce.
      // With both fusions BiCGStab runs 4 collectives per iteration instead
      // of 6; the values are bit-identical (rank-ordered span reduction).
      std::array<double, 2> d{r.dot_local(r, comm), r0.dot_local(r, comm)};
      comm.allreduce_sum(std::span<double>(d.data(), d.size()));
      rnorm = std::sqrt(d[0]);
      rho_pending = d[1];
    } else {
      rnorm = r.norm2(comm);
    }
    stats.final_residual = rnorm;
    if (config.record_history) stats.history.push_back(rnorm);
    if (iter_span.active()) {
      iter_span.attr("iteration", stats.iterations);
      iter_span.attr("residual", rnorm);
      iter_span.attr("allreduces",
                     static_cast<std::int64_t>(
                         comm.work().current().coll_rounds - rounds_before));
      obs::counter("bicgstab.residual", rnorm);
    }
    if (rnorm <= target) {
      stats.converged = true;
      stats.stop_reason = StopReason::kConverged;
      return stats;
    }
    const StopReason stop = watchdog.poll(rnorm, stats.initial_residual);
    if (stop != StopReason::kConverged) {
      note_watchdog_fire("bicgstab", stop, rnorm, watchdog.message());
      stats.stop_reason = stop;
      stats.stop_message = watchdog.message();
      return stats;
    }
    if (std::abs(omega) < 1e-300) {
      breakdown("omega -> 0");
      break;
    }
  }
  if (stats.stop_reason == StopReason::kMaxIterations &&
      stats.stop_message.empty()) {
    std::ostringstream oss;
    oss << "bicgstab: " << config.max_iterations
        << " iterations exhausted at relative residual "
        << stats.relative_residual();
    stats.stop_message = oss.str();
  }
  return stats;
}

}  // namespace neuro::solver

// Distributed Krylov solvers: restarted GMRES (the paper's solver), plus CG
// and BiCGStab for the solver ablation. All follow the PETSc structure the
// paper used: preconditioned iterations whose per-step cost is one SpMV (ghost
// exchange), one block-local preconditioner application, and a handful of
// global reductions — exactly the communication profile the paper's
// solve-phase scaling reflects.
#pragma once

#include <string>
#include <vector>

#include "par/communicator.h"
#include "solver/dist_matrix.h"
#include "solver/dist_vector.h"
#include "solver/preconditioner.h"

namespace neuro::solver {

struct SolverConfig {
  int max_iterations = 1000;
  double rtol = 1e-7;   ///< relative to the initial (preconditioned) residual
  double atol = 1e-30;
  int gmres_restart = 30;
  bool record_history = false;
};

struct SolveStats {
  bool converged = false;
  int iterations = 0;
  double initial_residual = 0.0;
  double final_residual = 0.0;
  std::vector<double> history;  ///< residual per iteration when recorded

  [[nodiscard]] double relative_residual() const {
    return initial_residual > 0.0 ? final_residual / initial_residual : 0.0;
  }
};

/// Right-preconditioned restarted GMRES(m) with modified Gram–Schmidt.
SolveStats gmres(const DistCsrMatrix& A, const DistVector& b, DistVector& x,
                 const Preconditioner& M, const SolverConfig& config,
                 par::Communicator& comm);

/// Preconditioned conjugate gradients (A and M must be SPD; the elasticity
/// system with substituted Dirichlet rows is).
SolveStats cg(const DistCsrMatrix& A, const DistVector& b, DistVector& x,
              const Preconditioner& M, const SolverConfig& config,
              par::Communicator& comm);

/// Right-preconditioned BiCGStab.
SolveStats bicgstab(const DistCsrMatrix& A, const DistVector& b, DistVector& x,
                    const Preconditioner& M, const SolverConfig& config,
                    par::Communicator& comm);

/// ‖b - A x‖₂ (collective) — independent verification of a solve.
double true_residual_norm(const DistCsrMatrix& A, const DistVector& b,
                          const DistVector& x, par::Communicator& comm);

}  // namespace neuro::solver

// Distributed Krylov solvers: restarted GMRES (the paper's solver), plus CG
// and BiCGStab for the solver ablation. All follow the PETSc structure the
// paper used: preconditioned iterations whose per-step cost is one SpMV (ghost
// exchange), one block-local preconditioner application, and a handful of
// global reductions — exactly the communication profile the paper's
// solve-phase scaling reflects.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "par/communicator.h"
#include "solver/dist_vector.h"
#include "solver/operator.h"
#include "solver/preconditioner.h"

namespace neuro::solver {

/// Why a Krylov solve returned. Everything except kConverged is a recoverable
/// outcome the degradation ladder (docs/robustness.md) maps to a typed
/// base::Status; none of these aborts.
enum class StopReason : std::uint8_t {
  kConverged,
  kMaxIterations,     ///< iteration budget exhausted without reaching target
  kStagnated,         ///< residual failed to decrease over the watchdog window
  kDiverged,          ///< residual grew past divergence_factor × initial
  kNumericalInvalid,  ///< NaN/Inf residual in the iteration
  kDeadlineExceeded,  ///< the watchdog wall-clock deadline passed
  kBreakdown,         ///< algorithmic breakdown (indefinite matrix, ρ/ω → 0)
};

/// Short stable name, e.g. "stagnated".
const char* stop_reason_name(StopReason reason);

/// Early-stop detection for the iteration loop. Residual samples are
/// collective results (identical on every rank), so the finiteness,
/// divergence, and stagnation tests are rank-consistent *without*
/// communication. Only the wall-clock deadline is rank-local; it is decided
/// by an allreduce vote, and that collective is armed only when
/// deadline_seconds > 0 — with the deadline off, the solve's collective
/// sequence is exactly the pre-watchdog one.
struct WatchdogConfig {
  bool check_finite = true;        ///< stop on NaN/Inf residual
  double divergence_factor = 1e6;  ///< stop when residual exceeds this × initial; 0 = off
  int stagnation_window = 0;       ///< iterations without progress before stopping; 0 = off
  double stagnation_min_decrease = 1e-3;  ///< required relative decrease over the window
  double deadline_seconds = 0.0;   ///< wall-clock budget for this solve; 0 = off
  int deadline_check_interval = 10;  ///< residual samples between deadline votes
};

/// GMRES orthogonalization variant. Modified Gram-Schmidt is the bitwise
/// reference; classical Gram-Schmidt batches the whole projection row plus
/// the norm into ONE allreduce per iteration, dropping the collective count
/// per restart cycle from O(m²) to O(m).
enum class GramSchmidtKind : std::uint8_t {
  kModified,
  kClassical,
};

struct SolverConfig {
  int max_iterations = 1000;
  double rtol = 1e-7;   ///< relative to the initial (preconditioned) residual
  double atol = 1e-30;
  int gmres_restart = 30;
  GramSchmidtKind gmres_orthogonalization = GramSchmidtKind::kModified;
  /// Second classical-GS pass (DGKS) restoring MGS-level orthogonality at the
  /// cost of one extra batched allreduce; ignored under kModified.
  bool gmres_reorthogonalize = false;
  /// Fuse CG/BiCGStab per-iteration dot/norm pairs into one allreduce over a
  /// small buffer. Bit-identical results (rank-ordered component-wise
  /// reduction), fewer latency-bound collectives; off reproduces the legacy
  /// one-allreduce-per-scalar sequence.
  bool fuse_reductions = true;
  bool record_history = false;
  WatchdogConfig watchdog;
};

struct SolveStats {
  bool converged = false;
  StopReason stop_reason = StopReason::kMaxIterations;
  std::string stop_message;     ///< diagnostic detail for non-converged stops
  int iterations = 0;
  double initial_residual = 0.0;
  double final_residual = 0.0;
  std::vector<double> history;  ///< residual per iteration when recorded

  [[nodiscard]] double relative_residual() const {
    return initial_residual > 0.0 ? final_residual / initial_residual : 0.0;
  }
};

/// Right-preconditioned restarted GMRES(m) with modified or classical
/// (batched-allreduce) Gram–Schmidt, per config.gmres_orthogonalization.
SolveStats gmres(const LinearOperator& A, const DistVector& b, DistVector& x,
                 const Preconditioner& M, const SolverConfig& config,
                 par::Communicator& comm);

/// Preconditioned conjugate gradients (A and M must be SPD; the elasticity
/// system with substituted Dirichlet rows is).
SolveStats cg(const LinearOperator& A, const DistVector& b, DistVector& x,
              const Preconditioner& M, const SolverConfig& config,
              par::Communicator& comm);

/// Right-preconditioned BiCGStab.
SolveStats bicgstab(const LinearOperator& A, const DistVector& b, DistVector& x,
                    const Preconditioner& M, const SolverConfig& config,
                    par::Communicator& comm);

/// ‖b - A x‖₂ (collective) — independent verification of a solve.
double true_residual_norm(const LinearOperator& A, const DistVector& b,
                          const DistVector& x, par::Communicator& comm);

}  // namespace neuro::solver

// Abstract distributed linear operator.
//
// The Krylov solvers and the local preconditioners need exactly y = A x plus
// access to the owned diagonal block; expressing that as an interface lets
// the scalar CSR reference backend and the 3x3 block-CSR backend share every
// solver layered above them (PETSc's Mat/PC split, reduced to what this
// library uses). Backends distribute rows in contiguous per-rank blocks and
// apply() is collective across the communicator.
#pragma once

#include <vector>

#include "par/communicator.h"
#include "solver/dist_vector.h"

namespace neuro::solver {

class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  /// Number of rows (== columns) of the global square system.
  [[nodiscard]] virtual int global_size() const = 0;

  /// The contiguous block of rows this rank owns.
  [[nodiscard]] virtual RowRange range() const = 0;

  /// y = A x (collective). x and y must share this operator's row layout.
  virtual void apply(const DistVector& x, DistVector& y,
                     par::Communicator& comm) const = 0;

  /// Value at (owned global row, global col); zero when outside the pattern.
  [[nodiscard]] virtual double value_at(GlobalRow global_row,
                                        GlobalRow global_col) const = 0;

  /// Copies the owned diagonal block (columns within range()) as a scalar CSR
  /// triple with local column indices — the input format of the local
  /// ILU(0)/IC(0)/SSOR preconditioners.
  virtual void extract_diagonal_block(std::vector<int>& row_ptr,
                                      std::vector<int>& cols,
                                      std::vector<double>& values) const = 0;

 protected:
  LinearOperator() = default;
  LinearOperator(const LinearOperator&) = default;
  LinearOperator& operator=(const LinearOperator&) = default;
  LinearOperator(LinearOperator&&) = default;
  LinearOperator& operator=(LinearOperator&&) = default;
};

}  // namespace neuro::solver

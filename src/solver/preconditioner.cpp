#include "solver/preconditioner.h"

#include <algorithm>
#include <cmath>

#include "solver/additive_schwarz.h"
#include "solver/bsr_matrix.h"

#include "base/check.h"

namespace neuro::solver {

void IdentityPreconditioner::apply(const DistVector& r, DistVector& z,
                                   par::Communicator& comm) const {
  z.local() = r.local();
  comm.work().add_mem_bytes(16.0 * static_cast<double>(r.local_size()));
}

JacobiPreconditioner::JacobiPreconditioner(const LinearOperator& A) {
  const RowRange range = A.range();
  inv_diag_.resize(static_cast<std::size_t>(range.size()));
  for (const GlobalRow r : range) {
    const double d = A.value_at(r, r);
    NEURO_REQUIRE(std::abs(d) > 1e-300,
                  "JacobiPreconditioner: zero diagonal at row " << r);
    inv_diag_[static_cast<std::size_t>(range.offset_of(r))] = 1.0 / d;
  }
}

void JacobiPreconditioner::apply(const DistVector& r, DistVector& z,
                                 par::Communicator& comm) const {
  NEURO_CHECK(static_cast<std::size_t>(r.local_size()) == inv_diag_.size());
  for (std::size_t i = 0; i < inv_diag_.size(); ++i) {
    z.local()[i] = r.local()[i] * inv_diag_[i];
  }
  comm.work().add_flops(static_cast<double>(inv_diag_.size()));
  comm.work().add_mem_bytes(24.0 * static_cast<double>(inv_diag_.size()));
}

namespace {

/// Extracts the local diagonal block with per-row sorted columns.
void sorted_local_block(const LinearOperator& A, std::vector<int>& row_ptr,
                        std::vector<int>& cols, std::vector<double>& values) {
  A.extract_diagonal_block(row_ptr, cols, values);
  const int n = static_cast<int>(row_ptr.size()) - 1;
  std::vector<std::pair<int, double>> row;
  for (int r = 0; r < n; ++r) {
    const int b = row_ptr[static_cast<std::size_t>(r)];
    const int e = row_ptr[static_cast<std::size_t>(r) + 1];
    row.assign(static_cast<std::size_t>(e - b), {});
    for (int p = b; p < e; ++p) {
      row[static_cast<std::size_t>(p - b)] = {cols[static_cast<std::size_t>(p)],
                                              values[static_cast<std::size_t>(p)]};
    }
    std::sort(row.begin(), row.end());
    for (int p = b; p < e; ++p) {
      cols[static_cast<std::size_t>(p)] = row[static_cast<std::size_t>(p - b)].first;
      values[static_cast<std::size_t>(p)] = row[static_cast<std::size_t>(p - b)].second;
    }
  }
}

/// Binary search for column `c` in sorted row [b, e); -1 if absent.
int find_col(const std::vector<int>& cols, int b, int e, int c) {
  auto it = std::lower_bound(cols.begin() + b, cols.begin() + e, c);
  if (it != cols.begin() + e && *it == c) {
    return static_cast<int>(it - cols.begin());
  }
  return -1;
}

}  // namespace

BlockJacobiIlu0::BlockJacobiIlu0(const LinearOperator& A) {
  sorted_local_block(A, row_ptr_, cols_, values_);
  const int n = static_cast<int>(row_ptr_.size()) - 1;
  diag_pos_.resize(static_cast<std::size_t>(n), -1);

  // Standard IKJ ILU(0): keep the sparsity pattern, drop all fill.
  for (int i = 0; i < n; ++i) {
    const int b = row_ptr_[static_cast<std::size_t>(i)];
    const int e = row_ptr_[static_cast<std::size_t>(i) + 1];
    for (int p = b; p < e; ++p) {
      const int k = cols_[static_cast<std::size_t>(p)];
      if (k >= i) break;  // row is sorted; done with the strictly-lower part
      const int dk = diag_pos_[static_cast<std::size_t>(k)];
      NEURO_CHECK_MSG(dk >= 0, "ILU(0): missing pivot for row " << k);
      const double pivot = values_[static_cast<std::size_t>(dk)];
      NEURO_CHECK_MSG(std::abs(pivot) > 1e-300, "ILU(0): zero pivot at row " << k);
      const double lik = values_[static_cast<std::size_t>(p)] / pivot;
      values_[static_cast<std::size_t>(p)] = lik;
      // Subtract lik * U(k, j) for j > k where (i, j) exists in the pattern.
      const int kb = row_ptr_[static_cast<std::size_t>(k)];
      const int ke = row_ptr_[static_cast<std::size_t>(k) + 1];
      for (int q = dk + 1; q < ke; ++q) {
        const int j = cols_[static_cast<std::size_t>(q)];
        const int pos = find_col(cols_, p + 1, e, j);
        if (pos >= 0) {
          values_[static_cast<std::size_t>(pos)] -=
              lik * values_[static_cast<std::size_t>(q)];
        }
      }
      (void)kb;
    }
    const int dp = find_col(cols_, b, e, i);
    NEURO_REQUIRE(dp >= 0, "ILU(0): structurally missing diagonal at row " << i);
    diag_pos_[static_cast<std::size_t>(i)] = dp;
  }
}

void BlockJacobiIlu0::apply(const DistVector& r, DistVector& z,
                            par::Communicator& comm) const {
  const int n = static_cast<int>(row_ptr_.size()) - 1;
  NEURO_CHECK(r.local_size() == n && z.local_size() == n);
  auto& out = z.local();
  const auto& in = r.local();

  // Forward solve L y = r (unit lower triangle).
  for (int i = 0; i < n; ++i) {
    double acc = in[static_cast<std::size_t>(i)];
    for (int p = row_ptr_[static_cast<std::size_t>(i)];
         p < diag_pos_[static_cast<std::size_t>(i)]; ++p) {
      acc -= values_[static_cast<std::size_t>(p)] *
             out[static_cast<std::size_t>(cols_[static_cast<std::size_t>(p)])];
    }
    out[static_cast<std::size_t>(i)] = acc;
  }
  // Backward solve U z = y.
  for (int i = n - 1; i >= 0; --i) {
    double acc = out[static_cast<std::size_t>(i)];
    const int dp = diag_pos_[static_cast<std::size_t>(i)];
    for (int p = dp + 1; p < row_ptr_[static_cast<std::size_t>(i) + 1]; ++p) {
      acc -= values_[static_cast<std::size_t>(p)] *
             out[static_cast<std::size_t>(cols_[static_cast<std::size_t>(p)])];
    }
    out[static_cast<std::size_t>(i)] = acc / values_[static_cast<std::size_t>(dp)];
  }

  comm.work().add_flops(2.0 * static_cast<double>(values_.size()));
  comm.work().add_mem_bytes(12.0 * static_cast<double>(values_.size()) +
                            16.0 * static_cast<double>(n));
}

BlockJacobiIc0::BlockJacobiIc0(const LinearOperator& A) {
  // Extract the sorted lower triangle (including the diagonal, which ends up
  // last in each row because columns are sorted and col <= row).
  std::vector<int> full_rp, full_cols;
  std::vector<double> full_vals;
  sorted_local_block(A, full_rp, full_cols, full_vals);
  const int n = static_cast<int>(full_rp.size()) - 1;
  row_ptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int i = 0; i < n; ++i) {
    bool has_diag = false;
    for (int p = full_rp[static_cast<std::size_t>(i)];
         p < full_rp[static_cast<std::size_t>(i) + 1]; ++p) {
      const int c = full_cols[static_cast<std::size_t>(p)];
      if (c > i) break;
      cols_.push_back(c);
      original_values_.push_back(full_vals[static_cast<std::size_t>(p)]);
      has_diag = has_diag || c == i;
    }
    NEURO_REQUIRE(has_diag, "IC(0): structurally missing diagonal at row " << i);
    row_ptr_[static_cast<std::size_t>(i) + 1] = static_cast<int>(cols_.size());
  }

  // Manteuffel shift loop: A + shift·diag(A) until the factorization exists.
  double shift = 0.0;
  while (!try_factor(shift)) {
    // NEURO_NONDET_OK(exact 0.0 is the loop's own "first attempt" sentinel, never computed)
    shift = shift == 0.0 ? 1e-3 : shift * 4.0;
    NEURO_CHECK_MSG(shift < 10.0, "IC(0): diagonal shift exploded — matrix is "
                                  "far from positive definite");
  }
  shift_ = shift;
  original_values_.clear();
  original_values_.shrink_to_fit();
}

bool BlockJacobiIc0::try_factor(double shift) {
  const int n = static_cast<int>(row_ptr_.size()) - 1;
  values_ = original_values_;
  // Apply the diagonal shift (diagonal is the last entry of each row).
  if (shift > 0.0) {
    for (int i = 0; i < n; ++i) {
      auto& d = values_[static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(i) + 1]) - 1];
      d += shift * std::abs(d);
    }
  }

  // Row-oriented IC(0): for each row i and each stored column k < i,
  //   L(i,k) = (A(i,k) - Σ_j L(i,j) L(k,j)) / L(k,k)  over shared j < k,
  //   L(i,i) = sqrt(A(i,i) - Σ_j L(i,j)²).
  for (int i = 0; i < n; ++i) {
    const int rb = row_ptr_[static_cast<std::size_t>(i)];
    const int re = row_ptr_[static_cast<std::size_t>(i) + 1];
    for (int p = rb; p < re; ++p) {
      const int k = cols_[static_cast<std::size_t>(p)];
      const int kb = row_ptr_[static_cast<std::size_t>(k)];
      const int ke = row_ptr_[static_cast<std::size_t>(k) + 1];
      if (k < i) {
        // Dot the shared prefixes of row i and row k (both sorted).
        double dot = 0.0;
        int pi = rb, pk = kb;
        while (pi < p && pk < ke - 1) {  // exclude k's diagonal
          const int ci = cols_[static_cast<std::size_t>(pi)];
          const int ck = cols_[static_cast<std::size_t>(pk)];
          if (ci == ck) {
            dot += values_[static_cast<std::size_t>(pi)] *
                   values_[static_cast<std::size_t>(pk)];
            ++pi;
            ++pk;
          } else if (ci < ck) {
            ++pi;
          } else {
            ++pk;
          }
        }
        const double lkk = values_[static_cast<std::size_t>(ke) - 1];
        values_[static_cast<std::size_t>(p)] =
            (values_[static_cast<std::size_t>(p)] - dot) / lkk;
      } else {  // k == i: diagonal
        double sum = 0.0;
        for (int q = rb; q < p; ++q) {
          sum += values_[static_cast<std::size_t>(q)] *
                 values_[static_cast<std::size_t>(q)];
        }
        const double d = values_[static_cast<std::size_t>(p)] - sum;
        if (d <= 0.0) return false;  // breakdown → retry with a larger shift
        values_[static_cast<std::size_t>(p)] = std::sqrt(d);
      }
    }
  }
  return true;
}

void BlockJacobiIc0::apply(const DistVector& r, DistVector& z,
                           par::Communicator& comm) const {
  const int n = static_cast<int>(row_ptr_.size()) - 1;
  NEURO_CHECK(r.local_size() == n && z.local_size() == n);
  auto& out = z.local();
  const auto& in = r.local();

  // Forward solve L y = r (diagonal is the last entry of each row).
  for (int i = 0; i < n; ++i) {
    double acc = in[static_cast<std::size_t>(i)];
    const int rb = row_ptr_[static_cast<std::size_t>(i)];
    const int re = row_ptr_[static_cast<std::size_t>(i) + 1];
    for (int p = rb; p < re - 1; ++p) {
      acc -= values_[static_cast<std::size_t>(p)] *
             out[static_cast<std::size_t>(cols_[static_cast<std::size_t>(p)])];
    }
    out[static_cast<std::size_t>(i)] = acc / values_[static_cast<std::size_t>(re) - 1];
  }
  // Backward solve Lᵀ z = y, column-oriented.
  for (int i = n - 1; i >= 0; --i) {
    const int rb = row_ptr_[static_cast<std::size_t>(i)];
    const int re = row_ptr_[static_cast<std::size_t>(i) + 1];
    out[static_cast<std::size_t>(i)] /= values_[static_cast<std::size_t>(re) - 1];
    const double zi = out[static_cast<std::size_t>(i)];
    for (int p = rb; p < re - 1; ++p) {
      out[static_cast<std::size_t>(cols_[static_cast<std::size_t>(p)])] -=
          values_[static_cast<std::size_t>(p)] * zi;
    }
  }

  comm.work().add_flops(4.0 * static_cast<double>(values_.size()));
  comm.work().add_mem_bytes(24.0 * static_cast<double>(values_.size()));
}

SsorPreconditioner::SsorPreconditioner(const LinearOperator& A, double omega)
    : omega_(omega) {
  NEURO_REQUIRE(omega > 0.0 && omega < 2.0, "SSOR: omega must lie in (0, 2)");
  sorted_local_block(A, row_ptr_, cols_, values_);
  const int n = static_cast<int>(row_ptr_.size()) - 1;
  diag_.resize(static_cast<std::size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    const int p = find_col(cols_, row_ptr_[static_cast<std::size_t>(i)],
                           row_ptr_[static_cast<std::size_t>(i) + 1], i);
    NEURO_REQUIRE(p >= 0, "SSOR: structurally missing diagonal at row " << i);
    diag_[static_cast<std::size_t>(i)] = values_[static_cast<std::size_t>(p)];
    NEURO_REQUIRE(std::abs(diag_[static_cast<std::size_t>(i)]) > 1e-300,
                  "SSOR: zero diagonal at row " << i);
  }
}

void SsorPreconditioner::apply(const DistVector& r, DistVector& z,
                               par::Communicator& comm) const {
  const int n = static_cast<int>(row_ptr_.size()) - 1;
  NEURO_CHECK(r.local_size() == n && z.local_size() == n);
  const auto& in = r.local();
  auto& out = z.local();

  // z = (D/ω + L)⁻¹ r  — forward sweep.
  for (int i = 0; i < n; ++i) {
    double acc = in[static_cast<std::size_t>(i)];
    for (int p = row_ptr_[static_cast<std::size_t>(i)];
         p < row_ptr_[static_cast<std::size_t>(i) + 1]; ++p) {
      const int c = cols_[static_cast<std::size_t>(p)];
      if (c < i) acc -= values_[static_cast<std::size_t>(p)] * out[static_cast<std::size_t>(c)];
    }
    out[static_cast<std::size_t>(i)] = acc * omega_ / diag_[static_cast<std::size_t>(i)];
  }
  // z ← D z / ω scaling, then backward sweep (D/ω + U)⁻¹.
  for (int i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] *= diag_[static_cast<std::size_t>(i)] *
                                        (2.0 - omega_) / omega_;
  }
  for (int i = n - 1; i >= 0; --i) {
    double acc = out[static_cast<std::size_t>(i)];
    for (int p = row_ptr_[static_cast<std::size_t>(i)];
         p < row_ptr_[static_cast<std::size_t>(i) + 1]; ++p) {
      const int c = cols_[static_cast<std::size_t>(p)];
      if (c > i) acc -= values_[static_cast<std::size_t>(p)] * out[static_cast<std::size_t>(c)];
    }
    out[static_cast<std::size_t>(i)] = acc * omega_ / diag_[static_cast<std::size_t>(i)];
  }

  comm.work().add_flops(4.0 * static_cast<double>(values_.size()));
  comm.work().add_mem_bytes(24.0 * static_cast<double>(values_.size()));
}

std::unique_ptr<Preconditioner> make_preconditioner(PreconditionerKind kind,
                                                    const LinearOperator& A,
                                                    par::Communicator& comm,
                                                    int schwarz_overlap,
                                                    SchwarzPrecision schwarz_precision) {
  if (kind == PreconditionerKind::kAdditiveSchwarzIlu0) {
    // Schwarz replicates the global scalar CSR structure at construction.
    if (const auto* csr = dynamic_cast<const DistCsrMatrix*>(&A)) {
      return std::make_unique<AdditiveSchwarz>(*csr, comm, schwarz_overlap,
                                               schwarz_precision);
    }
    const auto* bsr = dynamic_cast<const DistBsrMatrix*>(&A);
    NEURO_REQUIRE(bsr != nullptr,
                  "additive Schwarz requires a CSR or BSR operand");
    return std::make_unique<AdditiveSchwarz>(bsr->to_csr(), comm, schwarz_overlap,
                                             schwarz_precision);
  }
  return make_preconditioner(kind, A);
}

std::unique_ptr<Preconditioner> make_preconditioner(PreconditionerKind kind,
                                                    const LinearOperator& A) {
  NEURO_REQUIRE(kind != PreconditionerKind::kAdditiveSchwarzIlu0,
                "additive Schwarz needs the communicator-aware factory overload");
  switch (kind) {
    case PreconditionerKind::kNone:
      return std::make_unique<IdentityPreconditioner>();
    case PreconditionerKind::kJacobi:
      return std::make_unique<JacobiPreconditioner>(A);
    case PreconditionerKind::kBlockJacobiIlu0:
      return std::make_unique<BlockJacobiIlu0>(A);
    case PreconditionerKind::kBlockJacobiIc0:
      return std::make_unique<BlockJacobiIc0>(A);
    case PreconditionerKind::kSsor:
      return std::make_unique<SsorPreconditioner>(A);
    case PreconditionerKind::kAdditiveSchwarzIlu0:
      break;  // rejected above
  }
  NEURO_CHECK_MSG(false, "make_preconditioner: unknown kind");
  return nullptr;
}

}  // namespace neuro::solver

// Preconditioners for the distributed Krylov solvers.
//
// The paper solves its elasticity system with "the Generalized Minimal
// Residual (GMRES) solver with block Jacobi preconditioning" from PETSc.
// Block Jacobi here means: each rank's diagonal block is preconditioned
// locally with no communication — we factor the block with ILU(0), PETSc's
// default sub-preconditioner. Jacobi, SSOR and identity variants exist for
// the solver ablation bench.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "par/communicator.h"
#include "solver/dist_vector.h"
#include "solver/operator.h"

namespace neuro::solver {

class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  /// z ≈ M⁻¹ r. Never communicates (all our preconditioners are block-local;
  /// that is the point of block Jacobi).
  virtual void apply(const DistVector& r, DistVector& z,
                     par::Communicator& comm) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// M = I.
class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(const DistVector& r, DistVector& z, par::Communicator& comm) const override;
  [[nodiscard]] std::string name() const override { return "none"; }
};

/// Point Jacobi: M = diag(A).
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const LinearOperator& A);
  void apply(const DistVector& r, DistVector& z, par::Communicator& comm) const override;
  [[nodiscard]] std::string name() const override { return "jacobi"; }

 private:
  std::vector<double> inv_diag_;
};

/// Block Jacobi with an ILU(0) factorization of each rank's diagonal block
/// (the paper's configuration). With one rank this degenerates to global
/// ILU(0), exactly as in PETSc.
class BlockJacobiIlu0 final : public Preconditioner {
 public:
  explicit BlockJacobiIlu0(const LinearOperator& A);
  void apply(const DistVector& r, DistVector& z, par::Communicator& comm) const override;
  [[nodiscard]] std::string name() const override { return "block-jacobi/ilu0"; }

  [[nodiscard]] std::size_t factor_nnz() const { return values_.size(); }

 private:
  // In-place LU factors in CSR (unit lower / upper incl. diagonal), with
  // column indices local to the block and sorted per row.
  std::vector<int> row_ptr_;
  std::vector<int> cols_;
  std::vector<double> values_;
  std::vector<int> diag_pos_;  ///< position of the diagonal entry per row
};

/// Block Jacobi with an incomplete Cholesky IC(0) factorization of each
/// rank's diagonal block. Unlike ILU(0), the factorization is symmetric
/// (M = L Lᵀ is positive definite whenever it completes), making it the
/// right block preconditioner for CG on the elasticity system. Negative
/// pivots — possible on non-M-matrices — are handled by restarting the
/// factorization with a progressively shifted diagonal (Manteuffel).
class BlockJacobiIc0 final : public Preconditioner {
 public:
  explicit BlockJacobiIc0(const LinearOperator& A);
  void apply(const DistVector& r, DistVector& z, par::Communicator& comm) const override;
  [[nodiscard]] std::string name() const override { return "block-jacobi/ic0"; }

  /// Diagonal shift that made the factorization succeed (0 when none needed).
  [[nodiscard]] double shift() const { return shift_; }

 private:
  bool try_factor(double shift);

  // Lower-triangular factor in CSR (columns sorted, diagonal last per row).
  std::vector<int> row_ptr_;
  std::vector<int> cols_;
  std::vector<double> values_;
  // Unfactored lower triangle kept for shift retries.
  std::vector<double> original_values_;
  double shift_ = 0.0;
};

/// Block SSOR: one symmetric Gauss–Seidel sweep on the local block.
class SsorPreconditioner final : public Preconditioner {
 public:
  SsorPreconditioner(const LinearOperator& A, double omega = 1.0);
  void apply(const DistVector& r, DistVector& z, par::Communicator& comm) const override;
  [[nodiscard]] std::string name() const override { return "ssor"; }

 private:
  double omega_;
  std::vector<int> row_ptr_;
  std::vector<int> cols_;
  std::vector<double> values_;
  std::vector<double> diag_;
};

/// Factory used by benches/config files.
enum class PreconditionerKind {
  kNone,
  kJacobi,
  kBlockJacobiIlu0,
  kBlockJacobiIc0,
  kSsor,
  kAdditiveSchwarzIlu0,  ///< requires the communicator-aware factory overload
};
std::unique_ptr<Preconditioner> make_preconditioner(PreconditionerKind kind,
                                                    const LinearOperator& A);

/// Storage precision of the additive-Schwarz ILU(0) factors. The elimination
/// always runs in double; kMixedFloat demotes the stored factors to float and
/// accumulates the triangular solves in double, halving the factor's value
/// traffic while perturbing only the preconditioner (docs/perf.md,
/// "Mixed-precision accuracy contract").
enum class SchwarzPrecision : std::uint8_t {
  kDouble,
  kMixedFloat,
};

/// Communicator-aware factory (collective for kAdditiveSchwarzIlu0, which
/// exchanges matrix rows at construction; other kinds ignore `comm`).
/// Schwarz needs the raw scalar CSR structure: a DistCsrMatrix operand is
/// used directly, a DistBsrMatrix operand is expanded via to_csr(), anything
/// else is rejected. `schwarz_precision` selects the ILU(0) factor storage
/// and is ignored by every other kind.
std::unique_ptr<Preconditioner> make_preconditioner(
    PreconditionerKind kind, const LinearOperator& A, par::Communicator& comm,
    int schwarz_overlap = 1,
    SchwarzPrecision schwarz_precision = SchwarzPrecision::kDouble);

}  // namespace neuro::solver

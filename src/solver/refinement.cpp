#include "solver/refinement.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace neuro::solver {

namespace {

/// r = b − A x in full double precision (collective via A.apply's halo).
void true_residual(const LinearOperator& A, const DistVector& b,
                   const DistVector& x, DistVector& r, par::Communicator& comm) {
  A.apply(x, r, comm);
  r.scale(-1.0, comm);
  r.axpy(1.0, b, comm);
}

SolveStats run_inner(KrylovVariant variant, const LinearOperator& A,
                     const DistVector& b, DistVector& x, const Preconditioner& M,
                     const SolverConfig& config, par::Communicator& comm) {
  switch (variant) {
    case KrylovVariant::kGmres:
      return gmres(A, b, x, M, config, comm);
    case KrylovVariant::kCg:
      return cg(A, b, x, M, config, comm);
    case KrylovVariant::kBicgstab:
      return bicgstab(A, b, x, M, config, comm);
  }
  NEURO_REQUIRE(false, "iterative_refinement: unknown Krylov variant");
  return {};
}

}  // namespace

SolveStats iterative_refinement(const LinearOperator& A, const DistVector& b,
                                DistVector& x, const Preconditioner& M,
                                KrylovVariant variant, const SolverConfig& config,
                                const RefinementConfig& refinement,
                                par::Communicator& comm) {
  NEURO_REQUIRE(refinement.max_outer >= 1,
                "iterative_refinement: max_outer must be >= 1");
  NEURO_REQUIRE(refinement.inner_rtol_factor > 0.0 &&
                    refinement.inner_rtol_factor <= 1.0,
                "iterative_refinement: inner_rtol_factor must lie in (0, 1]");

  SolveStats stats;
  DistVector r(b.global_size(), b.range());
  true_residual(A, b, x, r, comm);
  double rnorm = r.norm2(comm);
  stats.initial_residual = rnorm;
  const double target = std::max(config.rtol * rnorm, config.atol);

  if (rnorm <= target) {
    stats.converged = true;
    stats.stop_reason = StopReason::kConverged;
    stats.final_residual = rnorm;
    return stats;
  }

  // Inner solves run against their own starting residual, slightly looser
  // than the outer goal; the outer double-precision test is authoritative.
  SolverConfig inner_config = config;
  inner_config.rtol = refinement.inner_rtol_factor * config.rtol;

  SolveStats last_inner;
  for (int outer = 0; outer < refinement.max_outer; ++outer) {
    DistVector d(b.global_size(), b.range());
    last_inner = run_inner(variant, A, r, d, M, inner_config, comm);
    stats.iterations += last_inner.iterations;
    if (config.record_history) {
      stats.history.insert(stats.history.end(), last_inner.history.begin(),
                           last_inner.history.end());
    }

    x.axpy(1.0, d, comm);
    true_residual(A, b, x, r, comm);
    rnorm = r.norm2(comm);

    if (!std::isfinite(rnorm)) {
      stats.stop_reason = StopReason::kNumericalInvalid;
      stats.stop_message = "iterative refinement: non-finite outer residual";
      stats.final_residual = rnorm;
      return stats;
    }
    if (rnorm <= target) {
      stats.converged = true;
      stats.stop_reason = StopReason::kConverged;
      stats.final_residual = rnorm;
      return stats;
    }
    // An inner breakdown/stall that left the outer residual short of target
    // will not fix itself by repeating: surface the inner reason.
    if (!last_inner.converged) break;
  }

  stats.stop_reason = last_inner.converged ? StopReason::kMaxIterations
                                           : last_inner.stop_reason;
  stats.stop_message = last_inner.converged
                           ? "iterative refinement: outer passes exhausted"
                           : last_inner.stop_message;
  stats.final_residual = rnorm;
  return stats;
}

}  // namespace neuro::solver

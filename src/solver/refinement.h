// Iterative refinement around a mixed-precision-preconditioned Krylov solve.
//
// The outer loop is the classical Wilkinson scheme applied to a Krylov inner
// solver: compute the true residual r = b − A x in full double precision,
// solve the correction system A d = r with the (possibly mixed-precision
// preconditioned) inner Krylov method to a looser tolerance, apply x += d,
// and repeat until the *true* double-precision residual meets the caller's
// tolerance. Because convergence is always judged on the double residual, the
// composite solve reaches exactly the same tolerance as an all-double solve —
// the float factors only steer the correction, they never touch the
// convergence test (docs/perf.md, "Mixed-precision accuracy contract").
#pragma once

#include <cstdint>

#include "par/communicator.h"
#include "solver/dist_vector.h"
#include "solver/krylov.h"
#include "solver/operator.h"
#include "solver/preconditioner.h"

namespace neuro::solver {

/// Which Krylov method runs the inner correction solves.
enum class KrylovVariant : std::uint8_t {
  kGmres,
  kCg,
  kBicgstab,
};

struct RefinementConfig {
  /// Outer correction passes before giving up. Each pass multiplies the
  /// residual by roughly the inner tolerance, so a handful suffices.
  int max_outer = 4;
  /// Inner solves target inner_rtol_factor × config.rtol relative to their
  /// own starting residual — slightly looser than the outer goal, so the
  /// final outer pass lands under it after the double-precision correction.
  double inner_rtol_factor = 0.5;
};

/// Solves A x = b by iterative refinement: inner `variant` solves
/// preconditioned by `M` (any precision), outer residual and correction in
/// double. Collective on `comm`; every decision derives from collective norms
/// so control flow is rank-consistent. The returned stats aggregate inner
/// iterations and report the true double-precision residual; `converged` is
/// judged against max(config.rtol × ‖b − A x₀‖₂, config.atol).
SolveStats iterative_refinement(const LinearOperator& A, const DistVector& b,
                                DistVector& x, const Preconditioner& M,
                                KrylovVariant variant, const SolverConfig& config,
                                const RefinementConfig& refinement,
                                par::Communicator& comm);

}  // namespace neuro::solver

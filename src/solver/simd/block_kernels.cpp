#include "solver/simd/block_kernels.h"

#include <cstddef>

#include "base/check.h"
#include "base/numerics_annotations.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#define NEURO_SIMD_X86 1
#endif

#if defined(__aarch64__)

#include <arm_neon.h>

#define NEURO_SIMD_NEON 1
#endif

namespace neuro::solver::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar fallbacks. Fixed association order: bit-identical run-to-run, on
// every platform, regardless of what the CPU detection would pick.
// ---------------------------------------------------------------------------

NEURO_BITEXACT
void block3_sym_scalar(const double* valuesT, const std::int32_t* row_ptr,
                       const std::int32_t* cols, int nrows, const double* xg,
                       double* y) {
  for (int br = 0; br < nrows; ++br) {
    const std::int32_t pb = row_ptr[br];
    const std::int32_t pe = row_ptr[br + 1];
    const double* xn = xg + static_cast<std::size_t>(br) * 3U;
    double acc0 = 0.0;
    double acc1 = 0.0;
    double acc2 = 0.0;
    for (std::int32_t p = pb; p < pe; ++p) {
      const double* a = valuesT + static_cast<std::size_t>(p) * 9U;
      const std::int32_t m = cols[p];
      const double* xm = xg + static_cast<std::size_t>(m) * 3U;
      // y_n += A x_m with the transposed layout A(r, c) = a[3c + r].
      acc0 += a[0] * xm[0];
      acc0 += a[3] * xm[1];
      acc0 += a[6] * xm[2];
      acc1 += a[1] * xm[0];
      acc1 += a[4] * xm[1];
      acc1 += a[7] * xm[2];
      acc2 += a[2] * xm[0];
      acc2 += a[5] * xm[1];
      acc2 += a[8] * xm[2];
      if (m != br) {
        // y_m += A^T x_n: each stored column dotted with x_n.
        double* ym = y + static_cast<std::size_t>(m) * 3U;
        ym[0] += a[0] * xn[0] + a[1] * xn[1] + a[2] * xn[2];
        ym[1] += a[3] * xn[0] + a[4] * xn[1] + a[5] * xn[2];
        ym[2] += a[6] * xn[0] + a[7] * xn[1] + a[8] * xn[2];
      }
    }
    const std::size_t out = static_cast<std::size_t>(br) * 3U;
    y[out + 0] += acc0;
    y[out + 1] += acc1;
    y[out + 2] += acc2;
  }
}

NEURO_BITEXACT
void block3_accum_scalar(const double* valuesT, const std::int32_t* row_ptr,
                         const std::int32_t* cols, int nrows, const double* xg,
                         double* y) {
  for (int br = 0; br < nrows; ++br) {
    const std::int32_t pb = row_ptr[br];
    const std::int32_t pe = row_ptr[br + 1];
    double acc0 = 0.0;
    double acc1 = 0.0;
    double acc2 = 0.0;
    for (std::int32_t p = pb; p < pe; ++p) {
      const double* a = valuesT + static_cast<std::size_t>(p) * 9U;
      const double* xb = xg + static_cast<std::size_t>(cols[p]) * 3U;
      acc0 += a[0] * xb[0];
      acc0 += a[3] * xb[1];
      acc0 += a[6] * xb[2];
      acc1 += a[1] * xb[0];
      acc1 += a[4] * xb[1];
      acc1 += a[7] * xb[2];
      acc2 += a[2] * xb[0];
      acc2 += a[5] * xb[1];
      acc2 += a[8] * xb[2];
    }
    const std::size_t out = static_cast<std::size_t>(br) * 3U;
    y[out + 0] += acc0;
    y[out + 1] += acc1;
    y[out + 2] += acc2;
  }
}

NEURO_BITEXACT
void elem12_scalar(const double* ke, const double* x12, double* y12) {
  for (int r = 0; r < 12; ++r) {
    const double* row = ke + static_cast<std::size_t>(r) * 12U;
    double acc = 0.0;
    for (int c = 0; c < 12; ++c) {
      acc += row[c] * x12[c];
    }
    y12[r] += acc;
  }
}

// ---------------------------------------------------------------------------
// SSE2 (x86-64 baseline): 2-lane columns, scalar third row.
// ---------------------------------------------------------------------------
#if defined(NEURO_SIMD_X86)

void block3_sym_sse2(const double* valuesT, const std::int32_t* row_ptr,
                     const std::int32_t* cols, int nrows, const double* xg,
                     double* y) {
  for (int br = 0; br < nrows; ++br) {
    const std::int32_t pb = row_ptr[br];
    const std::int32_t pe = row_ptr[br + 1];
    const double* xn = xg + static_cast<std::size_t>(br) * 3U;
    __m128d acc01 = _mm_setzero_pd();
    double acc2 = 0.0;
    for (std::int32_t p = pb; p < pe; ++p) {
      const double* a = valuesT + static_cast<std::size_t>(p) * 9U;
      const std::int32_t m = cols[p];
      const double* xm = xg + static_cast<std::size_t>(m) * 3U;
      acc01 = _mm_add_pd(acc01, _mm_mul_pd(_mm_loadu_pd(a + 0), _mm_set1_pd(xm[0])));
      acc01 = _mm_add_pd(acc01, _mm_mul_pd(_mm_loadu_pd(a + 3), _mm_set1_pd(xm[1])));
      acc01 = _mm_add_pd(acc01, _mm_mul_pd(_mm_loadu_pd(a + 6), _mm_set1_pd(xm[2])));
      acc2 += a[2] * xm[0] + a[5] * xm[1] + a[8] * xm[2];
      if (m != br) {
        double* ym = y + static_cast<std::size_t>(m) * 3U;
        ym[0] += a[0] * xn[0] + a[1] * xn[1] + a[2] * xn[2];
        ym[1] += a[3] * xn[0] + a[4] * xn[1] + a[5] * xn[2];
        ym[2] += a[6] * xn[0] + a[7] * xn[1] + a[8] * xn[2];
      }
    }
    double* yn = y + static_cast<std::size_t>(br) * 3U;
    _mm_storeu_pd(yn, _mm_add_pd(_mm_loadu_pd(yn), acc01));
    yn[2] += acc2;
  }
}

void block3_accum_sse2(const double* valuesT, const std::int32_t* row_ptr,
                       const std::int32_t* cols, int nrows, const double* xg,
                       double* y) {
  for (int br = 0; br < nrows; ++br) {
    const std::int32_t pb = row_ptr[br];
    const std::int32_t pe = row_ptr[br + 1];
    __m128d acc01 = _mm_setzero_pd();
    double acc2 = 0.0;
    for (std::int32_t p = pb; p < pe; ++p) {
      const double* a = valuesT + static_cast<std::size_t>(p) * 9U;
      const double* xb = xg + static_cast<std::size_t>(cols[p]) * 3U;
      acc01 = _mm_add_pd(acc01, _mm_mul_pd(_mm_loadu_pd(a + 0), _mm_set1_pd(xb[0])));
      acc01 = _mm_add_pd(acc01, _mm_mul_pd(_mm_loadu_pd(a + 3), _mm_set1_pd(xb[1])));
      acc01 = _mm_add_pd(acc01, _mm_mul_pd(_mm_loadu_pd(a + 6), _mm_set1_pd(xb[2])));
      acc2 += a[2] * xb[0] + a[5] * xb[1] + a[8] * xb[2];
    }
    double* yn = y + static_cast<std::size_t>(br) * 3U;
    _mm_storeu_pd(yn, _mm_add_pd(_mm_loadu_pd(yn), acc01));
    yn[2] += acc2;
  }
}

void elem12_sse2(const double* ke, const double* x12, double* y12) {
  __m128d acc[6];
  for (int j = 0; j < 6; ++j) {
    acc[j] = _mm_loadu_pd(y12 + 2 * j);
  }
  for (int a = 0; a < 12; ++a) {
    const __m128d xa = _mm_set1_pd(x12[a]);
    const double* col = ke + static_cast<std::size_t>(a) * 12U;
    for (int j = 0; j < 6; ++j) {
      acc[j] = _mm_add_pd(acc[j], _mm_mul_pd(_mm_loadu_pd(col + 2 * j), xa));
    }
  }
  for (int j = 0; j < 6; ++j) {
    _mm_storeu_pd(y12 + 2 * j, acc[j]);
  }
}

// ---------------------------------------------------------------------------
// AVX2+FMA: 4-lane columns (the 4th lane overhangs into the next block and is
// multiplied by a broadcast that only feeds lanes 0..2 of the result, or is
// zeroed before the horizontal sums). Compiled with a per-function target
// attribute so the rest of the library keeps the portable baseline ISA.
// ---------------------------------------------------------------------------

__attribute__((target("avx2,fma"))) void block3_sym_avx2(
    const double* valuesT, const std::int32_t* row_ptr, const std::int32_t* cols,
    int nrows, const double* xg, double* y) {
  for (int br = 0; br < nrows; ++br) {
    const std::int32_t pb = row_ptr[br];
    const std::int32_t pe = row_ptr[br + 1];
    if (pb == pe) continue;
    const double* xn = xg + static_cast<std::size_t>(br) * 3U;
    // x_n with the overhanging 4th lane zeroed, for the transpose dots.
    const __m256d xn4 =
        _mm256_blend_pd(_mm256_loadu_pd(xn), _mm256_setzero_pd(), 0x8);
    __m256d acc_a = _mm256_setzero_pd();
    __m256d acc_b = _mm256_setzero_pd();
    __m256d acc_c = _mm256_setzero_pd();
    {
      // Diagonal block (stored first: cols[pb] == br).
      const double* a = valuesT + static_cast<std::size_t>(pb) * 9U;
      acc_a = _mm256_fmadd_pd(_mm256_loadu_pd(a + 0), _mm256_broadcast_sd(xn + 0), acc_a);
      acc_b = _mm256_fmadd_pd(_mm256_loadu_pd(a + 3), _mm256_broadcast_sd(xn + 1), acc_b);
      acc_c = _mm256_fmadd_pd(_mm256_loadu_pd(a + 6), _mm256_broadcast_sd(xn + 2), acc_c);
    }
    for (std::int32_t p = pb + 1; p < pe; ++p) {
      const double* a = valuesT + static_cast<std::size_t>(p) * 9U;
      const std::int32_t m = cols[p];
      const double* xm = xg + static_cast<std::size_t>(m) * 3U;
      const __m256d c0 = _mm256_loadu_pd(a + 0);
      const __m256d c1 = _mm256_loadu_pd(a + 3);
      const __m256d c2 = _mm256_loadu_pd(a + 6);
      // y_n += A x_m (column form).
      acc_a = _mm256_fmadd_pd(c0, _mm256_broadcast_sd(xm + 0), acc_a);
      acc_b = _mm256_fmadd_pd(c1, _mm256_broadcast_sd(xm + 1), acc_b);
      acc_c = _mm256_fmadd_pd(c2, _mm256_broadcast_sd(xm + 2), acc_c);
      // y_m += A^T x_n: dot each stored column with x_n (lane 3 is zero).
      const __m256d d0 = _mm256_mul_pd(c0, xn4);
      const __m256d d1 = _mm256_mul_pd(c1, xn4);
      const __m256d d2 = _mm256_mul_pd(c2, xn4);
      const __m256d t01 = _mm256_hadd_pd(d0, d1);
      const __m128d s01 =
          _mm_add_pd(_mm256_castpd256_pd128(t01), _mm256_extractf128_pd(t01, 1));
      const __m128d s2p =
          _mm_add_pd(_mm256_castpd256_pd128(d2), _mm256_extractf128_pd(d2, 1));
      const double s2 = _mm_cvtsd_f64(_mm_add_sd(s2p, _mm_unpackhi_pd(s2p, s2p)));
      double* ym = y + static_cast<std::size_t>(m) * 3U;
      _mm_storeu_pd(ym, _mm_add_pd(_mm_loadu_pd(ym), s01));
      ym[2] += s2;
    }
    const __m256d acc = _mm256_add_pd(_mm256_add_pd(acc_a, acc_b), acc_c);
    double out[4];
    _mm256_storeu_pd(out, acc);
    double* yn = y + static_cast<std::size_t>(br) * 3U;
    yn[0] += out[0];
    yn[1] += out[1];
    yn[2] += out[2];
  }
}

__attribute__((target("avx2,fma"))) void block3_accum_avx2(
    const double* valuesT, const std::int32_t* row_ptr, const std::int32_t* cols,
    int nrows, const double* xg, double* y) {
  for (int br = 0; br < nrows; ++br) {
    const std::int32_t pb = row_ptr[br];
    const std::int32_t pe = row_ptr[br + 1];
    __m256d acc_a = _mm256_setzero_pd();
    __m256d acc_b = _mm256_setzero_pd();
    __m256d acc_c = _mm256_setzero_pd();
    for (std::int32_t p = pb; p < pe; ++p) {
      const double* a = valuesT + static_cast<std::size_t>(p) * 9U;
      const double* xb = xg + static_cast<std::size_t>(cols[p]) * 3U;
      acc_a = _mm256_fmadd_pd(_mm256_loadu_pd(a + 0), _mm256_broadcast_sd(xb + 0), acc_a);
      acc_b = _mm256_fmadd_pd(_mm256_loadu_pd(a + 3), _mm256_broadcast_sd(xb + 1), acc_b);
      acc_c = _mm256_fmadd_pd(_mm256_loadu_pd(a + 6), _mm256_broadcast_sd(xb + 2), acc_c);
    }
    const __m256d acc = _mm256_add_pd(_mm256_add_pd(acc_a, acc_b), acc_c);
    double out[4];
    _mm256_storeu_pd(out, acc);
    double* yn = y + static_cast<std::size_t>(br) * 3U;
    yn[0] += out[0];
    yn[1] += out[1];
    yn[2] += out[2];
  }
}

__attribute__((target("avx2,fma"))) void elem12_avx2(const double* ke,
                                                     const double* x12,
                                                     double* y12) {
  __m256d acc0 = _mm256_loadu_pd(y12 + 0);
  __m256d acc1 = _mm256_loadu_pd(y12 + 4);
  __m256d acc2 = _mm256_loadu_pd(y12 + 8);
  for (int a = 0; a < 12; ++a) {
    const __m256d xa = _mm256_broadcast_sd(x12 + a);
    const double* col = ke + static_cast<std::size_t>(a) * 12U;
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(col + 0), xa, acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(col + 4), xa, acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(col + 8), xa, acc2);
  }
  _mm256_storeu_pd(y12 + 0, acc0);
  _mm256_storeu_pd(y12 + 4, acc1);
  _mm256_storeu_pd(y12 + 8, acc2);
}

#endif  // NEURO_SIMD_X86

// ---------------------------------------------------------------------------
// NEON (AArch64): 2-lane columns, scalar third row — the SSE2 shape on
// AdvSIMD fused multiply-adds.
// ---------------------------------------------------------------------------
#if defined(NEURO_SIMD_NEON)

void block3_sym_neon(const double* valuesT, const std::int32_t* row_ptr,
                     const std::int32_t* cols, int nrows, const double* xg,
                     double* y) {
  for (int br = 0; br < nrows; ++br) {
    const std::int32_t pb = row_ptr[br];
    const std::int32_t pe = row_ptr[br + 1];
    const double* xn = xg + static_cast<std::size_t>(br) * 3U;
    float64x2_t acc01 = vdupq_n_f64(0.0);
    double acc2 = 0.0;
    for (std::int32_t p = pb; p < pe; ++p) {
      const double* a = valuesT + static_cast<std::size_t>(p) * 9U;
      const std::int32_t m = cols[p];
      const double* xm = xg + static_cast<std::size_t>(m) * 3U;
      acc01 = vfmaq_n_f64(acc01, vld1q_f64(a + 0), xm[0]);
      acc01 = vfmaq_n_f64(acc01, vld1q_f64(a + 3), xm[1]);
      acc01 = vfmaq_n_f64(acc01, vld1q_f64(a + 6), xm[2]);
      acc2 += a[2] * xm[0] + a[5] * xm[1] + a[8] * xm[2];
      if (m != br) {
        double* ym = y + static_cast<std::size_t>(m) * 3U;
        ym[0] += a[0] * xn[0] + a[1] * xn[1] + a[2] * xn[2];
        ym[1] += a[3] * xn[0] + a[4] * xn[1] + a[5] * xn[2];
        ym[2] += a[6] * xn[0] + a[7] * xn[1] + a[8] * xn[2];
      }
    }
    double* yn = y + static_cast<std::size_t>(br) * 3U;
    vst1q_f64(yn, vaddq_f64(vld1q_f64(yn), acc01));
    yn[2] += acc2;
  }
}

void block3_accum_neon(const double* valuesT, const std::int32_t* row_ptr,
                       const std::int32_t* cols, int nrows, const double* xg,
                       double* y) {
  for (int br = 0; br < nrows; ++br) {
    const std::int32_t pb = row_ptr[br];
    const std::int32_t pe = row_ptr[br + 1];
    float64x2_t acc01 = vdupq_n_f64(0.0);
    double acc2 = 0.0;
    for (std::int32_t p = pb; p < pe; ++p) {
      const double* a = valuesT + static_cast<std::size_t>(p) * 9U;
      const double* xb = xg + static_cast<std::size_t>(cols[p]) * 3U;
      acc01 = vfmaq_n_f64(acc01, vld1q_f64(a + 0), xb[0]);
      acc01 = vfmaq_n_f64(acc01, vld1q_f64(a + 3), xb[1]);
      acc01 = vfmaq_n_f64(acc01, vld1q_f64(a + 6), xb[2]);
      acc2 += a[2] * xb[0] + a[5] * xb[1] + a[8] * xb[2];
    }
    double* yn = y + static_cast<std::size_t>(br) * 3U;
    vst1q_f64(yn, vaddq_f64(vld1q_f64(yn), acc01));
    yn[2] += acc2;
  }
}

void elem12_neon(const double* ke, const double* x12, double* y12) {
  float64x2_t acc[6];
  for (int j = 0; j < 6; ++j) {
    acc[j] = vld1q_f64(y12 + 2 * j);
  }
  for (int a = 0; a < 12; ++a) {
    const double xa = x12[a];
    const double* col = ke + static_cast<std::size_t>(a) * 12U;
    for (int j = 0; j < 6; ++j) {
      acc[j] = vfmaq_n_f64(acc[j], vld1q_f64(col + 2 * j), xa);
    }
  }
  for (int j = 0; j < 6; ++j) {
    vst1q_f64(y12 + 2 * j, acc[j]);
  }
}

#endif  // NEURO_SIMD_NEON

}  // namespace

NEURO_BITEXACT
void block3_rows_scalar(const double* values, const std::int32_t* row_ptr,
                        const std::int32_t* cols, int nrows, const double* xg,
                        double* y) {
  for (int br = 0; br < nrows; ++br) {
    const std::int32_t pb = row_ptr[br];
    const std::int32_t pe = row_ptr[br + 1];
    double acc0 = 0.0;
    double acc1 = 0.0;
    double acc2 = 0.0;
    for (std::int32_t p = pb; p < pe; ++p) {
      const double* a = values + static_cast<std::size_t>(p) * 9U;
      const double* xb = xg + static_cast<std::size_t>(cols[p]) * 3U;
      acc0 += a[0] * xb[0];
      acc0 += a[1] * xb[1];
      acc0 += a[2] * xb[2];
      acc1 += a[3] * xb[0];
      acc1 += a[4] * xb[1];
      acc1 += a[5] * xb[2];
      acc2 += a[6] * xb[0];
      acc2 += a[7] * xb[1];
      acc2 += a[8] * xb[2];
    }
    const std::size_t out = static_cast<std::size_t>(br) * 3U;
    y[out + 0] = acc0;
    y[out + 1] = acc1;
    y[out + 2] = acc2;
  }
}

void block3_sym_apply(DispatchTarget target, const double* valuesT,
                      const std::int32_t* row_ptr, const std::int32_t* cols,
                      int nrows, const double* xg, double* y) {
  switch (target) {
    case DispatchTarget::kAuto:
      block3_sym_apply(detect_dispatch_target(), valuesT, row_ptr, cols, nrows, xg, y);
      return;
    case DispatchTarget::kScalar:
      block3_sym_scalar(valuesT, row_ptr, cols, nrows, xg, y);
      return;
    case DispatchTarget::kSse2:
#if defined(NEURO_SIMD_X86)
      block3_sym_sse2(valuesT, row_ptr, cols, nrows, xg, y);
      return;
#else
      break;
#endif
    case DispatchTarget::kAvx2:
#if defined(NEURO_SIMD_X86)
      block3_sym_avx2(valuesT, row_ptr, cols, nrows, xg, y);
      return;
#else
      break;
#endif
    case DispatchTarget::kNeon:
#if defined(NEURO_SIMD_NEON)
      block3_sym_neon(valuesT, row_ptr, cols, nrows, xg, y);
      return;
#else
      break;
#endif
  }
  NEURO_REQUIRE(false, "block3_sym_apply: target '"
                           << dispatch_target_name(target)
                           << "' not compiled into this build");
}

void block3_accum_apply(DispatchTarget target, const double* valuesT,
                        const std::int32_t* row_ptr, const std::int32_t* cols,
                        int nrows, const double* xg, double* y) {
  switch (target) {
    case DispatchTarget::kAuto:
      block3_accum_apply(detect_dispatch_target(), valuesT, row_ptr, cols, nrows, xg, y);
      return;
    case DispatchTarget::kScalar:
      block3_accum_scalar(valuesT, row_ptr, cols, nrows, xg, y);
      return;
    case DispatchTarget::kSse2:
#if defined(NEURO_SIMD_X86)
      block3_accum_sse2(valuesT, row_ptr, cols, nrows, xg, y);
      return;
#else
      break;
#endif
    case DispatchTarget::kAvx2:
#if defined(NEURO_SIMD_X86)
      block3_accum_avx2(valuesT, row_ptr, cols, nrows, xg, y);
      return;
#else
      break;
#endif
    case DispatchTarget::kNeon:
#if defined(NEURO_SIMD_NEON)
      block3_accum_neon(valuesT, row_ptr, cols, nrows, xg, y);
      return;
#else
      break;
#endif
  }
  NEURO_REQUIRE(false, "block3_accum_apply: target '"
                           << dispatch_target_name(target)
                           << "' not compiled into this build");
}

void elem12_apply(DispatchTarget target, const double* ke, const double* x12,
                  double* y12) {
  switch (target) {
    case DispatchTarget::kAuto:
      elem12_apply(detect_dispatch_target(), ke, x12, y12);
      return;
    case DispatchTarget::kScalar:
      elem12_scalar(ke, x12, y12);
      return;
    case DispatchTarget::kSse2:
#if defined(NEURO_SIMD_X86)
      elem12_sse2(ke, x12, y12);
      return;
#else
      break;
#endif
    case DispatchTarget::kAvx2:
#if defined(NEURO_SIMD_X86)
      elem12_avx2(ke, x12, y12);
      return;
#else
      break;
#endif
    case DispatchTarget::kNeon:
#if defined(NEURO_SIMD_NEON)
      elem12_neon(ke, x12, y12);
      return;
#else
      break;
#endif
  }
  NEURO_REQUIRE(false, "elem12_apply: target '"
                           << dispatch_target_name(target)
                           << "' not compiled into this build");
}

}  // namespace neuro::solver::simd

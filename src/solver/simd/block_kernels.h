// Explicitly vectorized 3x3 / 12x12 block micro-kernels.
//
// This directory is the only place in the tree allowed to touch raw SIMD
// intrinsics (tools/lint/check_sources.py, "intrinsics confinement"); every
// other layer programs against these kernels plus the DispatchTarget knob.
// Each kernel family ships a scalar fallback whose association order is fixed
// and annotated NEURO_BITEXACT — the vector variants reorder the per-row
// reductions (lane-parallel accumulators, transposed storage) and are
// tolerance-equivalent, never bit-equivalent, to the scalar reference
// (docs/perf.md, "SIMD dispatch").
//
// Storage layouts:
//   * full row-major     9 doubles per block, A(r, c) = a[3r + c] — the BSR
//                        backend's layout, consumed by block3_rows_scalar;
//   * transposed         9 doubles per block, A(r, c) = a[3c + r] — columns
//                        contiguous so a vector fmadd consumes a whole column
//                        per broadcast lane, consumed by the vector kernels.
//
// Padding contract for the vector kernels: the values array must extend at
// least 4 doubles past the last block and xg at least 1 double past its last
// entry (4-lane loads overhang a 9-double block / 3-double x panel; the
// overhanging lane is multiplied by zero or discarded, never stored).
#pragma once

#include <cstdint>

#include "solver/simd/dispatch.h"

namespace neuro::solver::simd {

/// Reference 3x3 block-row kernel over full row-major storage:
/// y[3r..3r+2] = sum_p A_p x(cols[p]) for r in [0, nrows). The association
/// order is identical to the BSR backend's kernel, so results are
/// bit-identical to DistBsrMatrix::apply on the same arrays.
void block3_rows_scalar(const double* values, const std::int32_t* row_ptr,
                        const std::int32_t* cols, int nrows, const double* xg,
                        double* y);

/// Symmetric-upper compressed apply over transposed storage. Per block row n
/// the stored blocks are the diagonal (n, n) first — cols[row_ptr[n]] must
/// equal n — then blocks (n, m) with m > n. For each off-diagonal block the
/// kernel adds both y_n += A x_m and y_m += A^T x_n, so only the upper half
/// of a structurally symmetric matrix is streamed (~46% less block traffic
/// at the smoke mesh's ~12 blocks/row). Accumulates into y; caller zeroes.
void block3_sym_apply(DispatchTarget target, const double* valuesT,
                      const std::int32_t* row_ptr, const std::int32_t* cols,
                      int nrows, const double* xg, double* y);

/// Broadcast accumulate kernel over transposed storage:
/// y[3r..3r+2] += sum_p A_p x(cols[p]). Used for the ghost-column and
/// pattern-unpaired blocks the symmetric pass cannot mirror.
void block3_accum_apply(DispatchTarget target, const double* valuesT,
                        const std::int32_t* row_ptr, const std::int32_t* cols,
                        int nrows, const double* xg, double* y);

/// One-element kernel: y12 += Ke x12 for a 12x12 row-major element stiffness.
/// Ke is symmetric up to assembly rounding; the vector variants stream Ke
/// rows as columns (i.e. apply Ke^T), which agrees with the scalar variant to
/// that same rounding. No padding needed: Ke rows are 12 doubles.
void elem12_apply(DispatchTarget target, const double* ke, const double* x12,
                  double* y12);

}  // namespace neuro::solver::simd

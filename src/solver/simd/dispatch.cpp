#include "solver/simd/dispatch.h"

#include "base/check.h"

namespace neuro::solver::simd {

std::string_view dispatch_target_name(DispatchTarget target) {
  switch (target) {
    case DispatchTarget::kAuto:
      return "auto";
    case DispatchTarget::kScalar:
      return "scalar";
    case DispatchTarget::kSse2:
      return "sse2";
    case DispatchTarget::kAvx2:
      return "avx2";
    case DispatchTarget::kNeon:
      return "neon";
  }
  return "unknown";
}

bool target_supported(DispatchTarget target) {
  switch (target) {
    case DispatchTarget::kAuto:
    case DispatchTarget::kScalar:
      return true;
    case DispatchTarget::kSse2:
#if defined(__x86_64__) || defined(_M_X64)
      return true;  // SSE2 is the x86-64 baseline; no runtime probe needed.
#else
      return false;
#endif
    case DispatchTarget::kAvx2:
#if (defined(__x86_64__) || defined(_M_X64)) && defined(__GNUC__)
      return __builtin_cpu_supports("avx2") != 0 &&
             __builtin_cpu_supports("fma") != 0;
#else
      return false;
#endif
    case DispatchTarget::kNeon:
#if defined(__aarch64__)
      return true;  // AdvSIMD is mandatory on AArch64.
#else
      return false;
#endif
  }
  return false;
}

DispatchTarget detect_dispatch_target() {
  if (target_supported(DispatchTarget::kAvx2)) return DispatchTarget::kAvx2;
  if (target_supported(DispatchTarget::kNeon)) return DispatchTarget::kNeon;
  if (target_supported(DispatchTarget::kSse2)) return DispatchTarget::kSse2;
  return DispatchTarget::kScalar;
}

DispatchTarget resolve_dispatch_target(DispatchTarget requested) {
  if (requested == DispatchTarget::kAuto) return detect_dispatch_target();
  NEURO_REQUIRE(target_supported(requested),
                "simd: dispatch target '" << dispatch_target_name(requested)
                                          << "' not supported on this CPU");
  return requested;
}

}  // namespace neuro::solver::simd

// Runtime CPU dispatch for the SIMD block kernels (src/solver/simd/).
//
// The block kernels come in one variant per instruction set; callers pick a
// variant through a DispatchTarget resolved once at operator setup, never in
// the hot loop. kScalar is always available and preserves the reference
// association order (bit-identical run-to-run and across dispatch targets of
// the same kind); the vector targets reorder the per-row reductions and are
// tolerance-equivalent (docs/perf.md, "SIMD dispatch"). Detection is a pure
// function of the CPU, so a given machine always resolves kAuto to the same
// target and solver results stay reproducible.
#pragma once

#include <cstdint>
#include <string_view>

namespace neuro::solver::simd {

/// Instruction-set target for the block kernels. kAuto resolves to the best
/// target the running CPU supports.
enum class DispatchTarget : std::uint8_t {
  kAuto,
  kScalar,
  kSse2,
  kAvx2,
  kNeon,
};

/// Stable lowercase name ("auto", "scalar", "sse2", "avx2", "neon") — used in
/// span attributes, bench context and CI job logs.
[[nodiscard]] std::string_view dispatch_target_name(DispatchTarget target);

/// Whether this build + CPU can execute kernels compiled for `target`.
/// kAuto and kScalar are always supported.
[[nodiscard]] bool target_supported(DispatchTarget target);

/// Best concrete target the running CPU supports (never kAuto; kScalar when
/// no vector ISA is available).
[[nodiscard]] DispatchTarget detect_dispatch_target();

/// Resolves a requested target to a concrete one: kAuto detects, anything
/// else is validated against the running CPU (throws via NEURO_REQUIRE when
/// the explicit request cannot run here).
[[nodiscard]] DispatchTarget resolve_dispatch_target(DispatchTarget requested);

}  // namespace neuro::solver::simd

#include "surface/active_surface.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "image/filters.h"

namespace neuro::surface {

namespace {

/// Central-difference gradient of a potential at a physical point, sampled
/// trilinearly in voxel space (h = half a voxel per axis).
Vec3 potential_gradient(const ImageF& potential, const Vec3& p) {
  const Vec3 v = potential.physical_to_voxel(p);
  const Vec3 sp = potential.spacing();
  auto s = [&](double dx, double dy, double dz) {
    return sample_trilinear(potential, {v.x + dx, v.y + dy, v.z + dz});
  };
  return {(s(0.5, 0, 0) - s(-0.5, 0, 0)) / sp.x,
          (s(0, 0.5, 0) - s(0, -0.5, 0)) / sp.y,
          (s(0, 0, 0.5) - s(0, 0, -0.5)) / sp.z};
}

ActiveSurfaceResult run(const mesh::TriSurface& initial, const ImageF& potential,
                        const ActiveSurfaceConfig& config) {
  NEURO_REQUIRE(initial.num_vertices() > 0, "active surface: empty surface");
  NEURO_REQUIRE(config.max_iterations > 0 && config.step > 0.0,
                "active surface: bad config");

  ActiveSurfaceResult result;
  result.surface = initial;
  const auto adjacency = mesh::surface_adjacency(initial);
  auto& verts = result.surface.vertices;
  base::IdVector<mesh::VertId, Vec3> next(verts.size());

  for (int it = 0; it < config.max_iterations; ++it) {
    double total_motion = 0.0;
    for (const mesh::VertId v : verts.ids()) {
      const Vec3& x = verts[v];

      // External: steepest descent on the potential.
      const Vec3 ext = -1.0 * potential_gradient(potential, x);

      // Internal: umbrella-operator membrane tension.
      Vec3 lap{};
      const auto& nbrs = adjacency[v];
      if (!nbrs.empty()) {
        for (const mesh::VertId n : nbrs) lap += verts[n];
        lap = lap / static_cast<double>(nbrs.size()) - x;
      }

      Vec3 dx = config.step * (config.force_scale * ext + config.tension * lap);
      const double len = norm(dx);
      if (len > config.max_step_mm) dx *= config.max_step_mm / len;
      next[v] = x + dx;
      total_motion += norm(dx);
    }
    verts.swap(next);
    ++result.iterations;
    result.final_mean_motion_mm = total_motion / static_cast<double>(verts.size());
    if (result.final_mean_motion_mm < config.convergence_mm) break;
  }

  result.displacements.resize(verts.size());
  double abs_pot = 0.0;
  for (const mesh::VertId v : verts.ids()) {
    result.displacements[v] = verts[v] - initial.vertices[v];
    abs_pot += std::abs(sample_physical(potential, verts[v]));
  }
  result.mean_abs_potential = abs_pot / static_cast<double>(verts.size());
  return result;
}

}  // namespace

ActiveSurfaceResult deform_to_potential(const mesh::TriSurface& initial,
                                        const ImageF& potential,
                                        const ActiveSurfaceConfig& config) {
  return run(initial, potential, config);
}

ActiveSurfaceResult deform_to_distance_field(const mesh::TriSurface& initial,
                                             const ImageF& signed_distance,
                                             const ActiveSurfaceConfig& config) {
  // potential = ½ d²: gradient = d ∇d, zero exactly on the target surface,
  // monotonically increasing away from it — a global basin of attraction.
  ImageF potential(signed_distance.dims(), 0.0f, signed_distance.spacing(),
                   signed_distance.origin());
  for (std::size_t i = 0; i < potential.size(); ++i) {
    const double d = static_cast<double>(signed_distance.data()[i]);
    potential.data()[i] = static_cast<float>(0.5 * d * d);
  }
  ActiveSurfaceResult result = run(initial, potential, config);
  // Report the residual in distance units rather than potential units.
  double abs_d = 0.0;
  for (const auto& v : result.surface.vertices) {
    abs_d += std::abs(sample_physical(signed_distance, v));
  }
  result.mean_abs_potential = abs_d / static_cast<double>(result.surface.vertices.size());
  return result;
}

ImageF edge_potential_from_image(const ImageF& image, double expected_gray,
                                 double gray_sigma, double smoothing_sigma) {
  NEURO_REQUIRE(gray_sigma > 0.0, "edge_potential: gray_sigma must be positive");
  // Normalized edge strength, gated by the gray-level prior evaluated on the
  // smoothed image (the structure's interior intensity near the edge).
  ImageF smooth = smoothing_sigma > 0.0 ? gaussian_smooth(image, smoothing_sigma)
                                        : image;
  ImageF gmag = gradient_magnitude(smooth);
  double gmax = 0.0;
  for (const float g : gmag.data()) gmax = std::max(gmax, static_cast<double>(g));
  if (gmax <= 0.0) gmax = 1.0;

  ImageF potential(image.dims(), 0.0f, image.spacing(), image.origin());
  for (std::size_t i = 0; i < potential.size(); ++i) {
    const double g = static_cast<double>(gmag.data()[i]) / gmax;
    const double dv = static_cast<double>(smooth.data()[i]) - expected_gray;
    const double prior = std::exp(-0.5 * dv * dv / (gray_sigma * gray_sigma));
    // Decreasing function of the gradient, gated by the prior: minima sit on
    // strong edges of the expected structure.
    potential.data()[i] = static_cast<float>(1.0 - g * (0.5 + 0.5 * prior));
  }
  if (smoothing_sigma > 0.0) {
    potential = gaussian_smooth(potential, smoothing_sigma);
  }
  return potential;
}

void smooth_vertex_vectors(const mesh::TriSurface& surface,
                           base::IdVector<mesh::VertId, Vec3>& field,
                           int iterations, double lambda) {
  NEURO_REQUIRE(field.size() == surface.vertices.size(),
                "smooth_vertex_vectors: field/vertex count mismatch");
  NEURO_REQUIRE(iterations >= 0 && lambda >= 0.0 && lambda <= 1.0,
                "smooth_vertex_vectors: bad parameters");
  const auto adjacency = mesh::surface_adjacency(surface);
  base::IdVector<mesh::VertId, Vec3> next(field.size());
  for (int it = 0; it < iterations; ++it) {
    for (const mesh::VertId v : field.ids()) {
      const auto& nbrs = adjacency[v];
      if (nbrs.empty()) {
        next[v] = field[v];
        continue;
      }
      Vec3 mean{};
      for (const mesh::VertId n : nbrs) mean += field[n];
      mean /= static_cast<double>(nbrs.size());
      next[v] = (1.0 - lambda) * field[v] + lambda * mean;
    }
    field.swap(next);
  }
}

std::vector<std::pair<mesh::NodeId, Vec3>> node_displacements(
    const ActiveSurfaceResult& result) {
  NEURO_REQUIRE(!result.surface.mesh_nodes.empty(),
                "node_displacements: surface was not extracted from a mesh");
  NEURO_CHECK(result.surface.mesh_nodes.size() == result.displacements.size());
  std::vector<std::pair<mesh::NodeId, Vec3>> out;
  out.reserve(result.displacements.size());
  for (const mesh::VertId v : result.displacements.ids()) {
    out.emplace_back(result.surface.mesh_nodes[v], result.displacements[v]);
  }
  return out;
}

}  // namespace neuro::surface

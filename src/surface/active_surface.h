// Active surface for brain-surface correspondence (paper §2.1.1).
//
// The paper "iteratively deforms the surface of the first brain volume to
// match that of the second volume … applying forces derived from the
// volumetric data to an elastic membrane model of the surface. The derived
// forces are a decreasing function of the data gradients, so as to be
// minimized at the edges of objects", with prior knowledge of the expected
// gray level added for robustness.
//
// Two external-force sources are provided:
//  * edge_potential_from_image(): the paper's formulation — a potential that
//    is low on strong edges whose inner gray level matches the prior;
//  * signed-distance potential from the intraoperative brain segmentation
//    (which our pipeline has anyway) — a wider capture range for the same
//    stationary points. The pipeline uses the distance field; both are
//    exercised by tests and the ablation bench.
//
// The output is a per-vertex displacement field; because extracted surfaces
// remember their tet-mesh node ids, these displacements feed the FEM stage
// directly as Dirichlet data ("apply forces to the volumetric model that will
// produce the same displacement field at the surfaces as was obtained with
// the active surface algorithm").
#pragma once

#include <vector>

#include "image/image3d.h"
#include "mesh/tet_mesh.h"
#include "mesh/tri_surface.h"

namespace neuro::surface {

struct ActiveSurfaceConfig {
  int max_iterations = 400;
  double step = 0.4;           ///< integration step (dimensionless)
  double tension = 0.35;       ///< membrane (umbrella-Laplacian) weight
  double force_scale = 1.0;    ///< external-force weight
  double max_step_mm = 1.5;    ///< per-iteration displacement clamp
  double convergence_mm = 2e-3;  ///< stop when mean vertex motion drops below
};

struct ActiveSurfaceResult {
  mesh::TriSurface surface;  ///< deformed copy of the input
  base::IdVector<mesh::VertId, Vec3> displacements;  ///< final − initial, per vertex
  int iterations = 0;
  double final_mean_motion_mm = 0.0;
  double mean_abs_potential = 0.0;   ///< residual |potential| at vertices
};

/// Deforms `initial` down the gradient of `potential` (physical-space
/// trilinear samples) with membrane regularization. The minima of the
/// potential are the attractor surface.
ActiveSurfaceResult deform_to_potential(const mesh::TriSurface& initial,
                                        const ImageF& potential,
                                        const ActiveSurfaceConfig& config);

/// Deforms `initial` onto the zero level set of a signed distance field
/// (potential = ½ d², force = −d ∇d).
ActiveSurfaceResult deform_to_distance_field(const mesh::TriSurface& initial,
                                             const ImageF& signed_distance,
                                             const ActiveSurfaceConfig& config);

/// The paper's image-derived potential: small where the gradient magnitude is
/// large *and* the local intensity matches the expected gray level of the
/// structure being tracked; large in flat or wrong-intensity regions.
/// `smoothing_sigma` (voxels) widens the basin of attraction.
ImageF edge_potential_from_image(const ImageF& image, double expected_gray,
                                 double gray_sigma, double smoothing_sigma = 2.0);

/// Converts an active-surface result into per-mesh-node prescribed
/// displacements (requires the surface to have been extracted from a mesh).
[[nodiscard]] std::vector<std::pair<mesh::NodeId, Vec3>> node_displacements(
    const ActiveSurfaceResult& result);

/// Graph-Laplacian smoothing of a per-vertex vector field:
/// d ← (1-λ) d + λ · mean(neighbour d), `iterations` times. Used to strip
/// voxel-quantization jitter out of measured surface displacements before
/// they become FEM boundary conditions — the anatomical signal varies over
/// centimetres, the segmentation jitter over one voxel.
void smooth_vertex_vectors(const mesh::TriSurface& surface,
                           base::IdVector<mesh::VertId, Vec3>& field,
                           int iterations, double lambda = 0.5);

}  // namespace neuro::surface

#include "viz/colormap.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "base/check.h"

namespace neuro::viz {

namespace {

/// Sparse control points, linearly interpolated (a compact viridis-like ramp).
constexpr std::array<std::array<double, 3>, 6> kMagnitudeStops = {{
    {0.267, 0.005, 0.329},
    {0.283, 0.141, 0.458},
    {0.254, 0.265, 0.530},
    {0.164, 0.471, 0.558},
    {0.478, 0.821, 0.318},
    {0.993, 0.906, 0.144},
}};

Rgb lerp_stops(const std::array<std::array<double, 3>, 6>& stops, double t) {
  const double x = t * (stops.size() - 1);
  const std::size_t i = std::min<std::size_t>(static_cast<std::size_t>(x),
                                              stops.size() - 2);
  const double f = x - static_cast<double>(i);
  Rgb c;
  c.r = static_cast<std::uint8_t>(255.0 * ((1 - f) * stops[i][0] + f * stops[i + 1][0]));
  c.g = static_cast<std::uint8_t>(255.0 * ((1 - f) * stops[i][1] + f * stops[i + 1][1]));
  c.b = static_cast<std::uint8_t>(255.0 * ((1 - f) * stops[i][2] + f * stops[i + 1][2]));
  return c;
}

}  // namespace

Rgb map_color(ColormapKind kind, double t) {
  t = std::clamp(t, 0.0, 1.0);
  switch (kind) {
    case ColormapKind::kGray: {
      const auto v = static_cast<std::uint8_t>(255.0 * t + 0.5);
      return {v, v, v};
    }
    case ColormapKind::kMagnitude:
      return lerp_stops(kMagnitudeStops, t);
    case ColormapKind::kDiverging: {
      // blue (0) → white (0.5) → red (1).
      if (t < 0.5) {
        const double f = t / 0.5;
        return {static_cast<std::uint8_t>(255.0 * f),
                static_cast<std::uint8_t>(255.0 * f), 255};
      }
      const double f = (t - 0.5) / 0.5;
      return {255, static_cast<std::uint8_t>(255.0 * (1 - f)),
              static_cast<std::uint8_t>(255.0 * (1 - f))};
    }
  }
  return {};
}

RgbImage::RgbImage(int width, int height)
    : width_(width),
      height_(height),
      pixels_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height)) {
  NEURO_REQUIRE(width > 0 && height > 0, "RgbImage: non-positive size");
}

Rgb& RgbImage::at(int x, int y) {
  NEURO_CHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
  return pixels_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
}

const Rgb& RgbImage::at(int x, int y) const {
  NEURO_CHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
  return pixels_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
}

void RgbImage::write_ppm(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  NEURO_REQUIRE(f.good(), "write_ppm: cannot open '" << path << "'");
  f << "P6\n" << width_ << ' ' << height_ << "\n255\n";
  f.write(reinterpret_cast<const char*>(pixels_.data()),
          static_cast<std::streamsize>(pixels_.size() * sizeof(Rgb)));
  NEURO_REQUIRE(f.good(), "write_ppm: write failed for '" << path << "'");
}

RgbImage render_slice(const ImageF& img, int k, ColormapKind kind, double lo,
                      double hi) {
  NEURO_REQUIRE(k >= 0 && k < img.dims().z, "render_slice: slice out of range");
  const IVec3 d = img.dims();
  if (lo >= hi) {
    lo = 1e300;
    hi = -1e300;
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        lo = std::min(lo, static_cast<double>(img(i, j, k)));
        hi = std::max(hi, static_cast<double>(img(i, j, k)));
      }
    }
    if (hi <= lo) hi = lo + 1.0;
  }
  RgbImage out(d.x, d.y);
  for (int j = 0; j < d.y; ++j) {
    for (int i = 0; i < d.x; ++i) {
      out.at(i, j) = map_color(kind, (img(i, j, k) - lo) / (hi - lo));
    }
  }
  return out;
}

RgbImage render_field_magnitude(const ImageV& field, int k, double max_mm) {
  NEURO_REQUIRE(k >= 0 && k < field.dims().z, "render_field_magnitude: bad slice");
  const IVec3 d = field.dims();
  if (max_mm <= 0.0) {
    for (int j = 0; j < d.y; ++j) {
      for (int i = 0; i < d.x; ++i) {
        max_mm = std::max(max_mm, norm(field(i, j, k)));
      }
    }
    if (max_mm <= 0.0) max_mm = 1.0;
  }
  RgbImage out(d.x, d.y);
  for (int j = 0; j < d.y; ++j) {
    for (int i = 0; i < d.x; ++i) {
      out.at(i, j) = map_color(ColormapKind::kMagnitude, norm(field(i, j, k)) / max_mm);
    }
  }
  return out;
}

RgbImage montage(const std::vector<RgbImage>& panels) {
  NEURO_REQUIRE(!panels.empty(), "montage: no panels");
  const int height = panels.front().height();
  int width = -2;
  for (const auto& p : panels) {
    NEURO_REQUIRE(p.height() == height, "montage: panel heights differ");
    width += p.width() + 2;
  }
  RgbImage out(width, height);
  int x0 = 0;
  for (const auto& p : panels) {
    for (int y = 0; y < height; ++y) {
      for (int x = 0; x < p.width(); ++x) {
        out.at(x0 + x, y) = p.at(x, y);
      }
    }
    x0 += p.width() + 2;
  }
  return out;
}

void overlay_mask_boundary(RgbImage& panel, const ImageL& mask, int k, Rgb color) {
  NEURO_REQUIRE(k >= 0 && k < mask.dims().z, "overlay_mask_boundary: bad slice");
  NEURO_REQUIRE(panel.width() == mask.dims().x && panel.height() == mask.dims().y,
                "overlay_mask_boundary: panel/mask size mismatch");
  const IVec3 d = mask.dims();
  for (int j = 0; j < d.y; ++j) {
    for (int i = 0; i < d.x; ++i) {
      if (!mask(i, j, k)) continue;
      const bool boundary = (i == 0 || !mask(i - 1, j, k)) ||
                            (i + 1 == d.x || !mask(i + 1, j, k)) ||
                            (j == 0 || !mask(i, j - 1, k)) ||
                            (j + 1 == d.y || !mask(i, j + 1, k));
      if (boundary) panel.at(i, j) = color;
    }
  }
}

}  // namespace neuro::viz

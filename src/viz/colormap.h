// Color mapping and 2-D image export for the visualization artifacts.
//
// The paper's system renders deformed surfaces "color coded by the magnitude
// of the deformation" and grayscale MR slices (Figs. 4–5). This module turns
// scalar data into RGB: window/level grayscale for MR, a perceptually ordered
// sequential map for magnitudes, and a diverging map for signed fields, plus
// PPM output and slice montages.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "image/image3d.h"

namespace neuro::viz {

struct Rgb {
  std::uint8_t r = 0, g = 0, b = 0;
};

enum class ColormapKind {
  kGray,       ///< window/level grayscale (MR display)
  kMagnitude,  ///< sequential dark-blue → yellow (displacement magnitude)
  kDiverging,  ///< blue → white → red (signed fields, difference images)
};

/// Maps t ∈ [0,1] (clamped) through the chosen map.
Rgb map_color(ColormapKind kind, double t);

/// A simple 2-D RGB raster.
class RgbImage {
 public:
  RgbImage(int width, int height);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  Rgb& at(int x, int y);
  [[nodiscard]] const Rgb& at(int x, int y) const;

  /// Writes a binary PPM (P6).
  void write_ppm(const std::string& path) const;

 private:
  int width_, height_;
  std::vector<Rgb> pixels_;
};

/// Renders axial slice k of a volume through a colormap, window [lo, hi]
/// (lo >= hi auto-windows to the slice range).
RgbImage render_slice(const ImageF& img, int k, ColormapKind kind, double lo = 0.0,
                      double hi = 0.0);

/// Renders the magnitude of a vector field's slice.
RgbImage render_field_magnitude(const ImageV& field, int k, double max_mm = 0.0);

/// Horizontally concatenates equal-height panels with a 2-pixel separator —
/// Fig. 4's side-by-side layout in one file.
RgbImage montage(const std::vector<RgbImage>& panels);

/// Overlays mask boundaries (non-zero voxels adjacent to zero) on a panel in
/// the given color — used to show segmentation contours on MR slices.
void overlay_mask_boundary(RgbImage& panel, const ImageL& mask, int k, Rgb color);

}  // namespace neuro::viz

#include "viz/surface_export.h"

#include <algorithm>
#include <fstream>
#include <numeric>

#include "base/check.h"

namespace neuro::viz {

void write_ply_colored(const std::string& path, const mesh::TriSurface& surface,
                       const std::vector<double>& scalars, ColormapKind kind,
                       double lo, double hi) {
  NEURO_REQUIRE(scalars.size() == surface.vertices.size(),
                "write_ply_colored: scalar/vertex count mismatch");
  if (lo >= hi) {
    lo = 1e300;
    hi = -1e300;
    for (const double s : scalars) {
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
    if (hi <= lo) hi = lo + 1.0;
  }

  std::ofstream f(path);
  NEURO_REQUIRE(f.good(), "write_ply_colored: cannot open '" << path << "'");
  f << "ply\nformat ascii 1.0\n";
  f << "element vertex " << surface.num_vertices() << "\n";
  f << "property float x\nproperty float y\nproperty float z\n";
  f << "property uchar red\nproperty uchar green\nproperty uchar blue\n";
  f << "element face " << surface.num_triangles() << "\n";
  f << "property list uchar int vertex_indices\nend_header\n";
  for (const mesh::VertId v : surface.vert_ids()) {
    const Vec3& p = surface.vertices[v];
    const Rgb c = map_color(kind, (scalars[v.index()] - lo) / (hi - lo));
    f << p.x << ' ' << p.y << ' ' << p.z << ' ' << static_cast<int>(c.r) << ' '
      << static_cast<int>(c.g) << ' ' << static_cast<int>(c.b) << '\n';
  }
  for (const auto& tri : surface.triangles) {
    f << "3 " << tri[0] << ' ' << tri[1] << ' ' << tri[2] << '\n';
  }
  NEURO_REQUIRE(f.good(), "write_ply_colored: write failed for '" << path << "'");
}

void write_arrows_obj(const std::string& path, const std::vector<Vec3>& origins,
                      const std::vector<Vec3>& displacements, int max_arrows) {
  NEURO_REQUIRE(origins.size() == displacements.size(),
                "write_arrows_obj: origin/displacement count mismatch");
  NEURO_REQUIRE(max_arrows > 0, "write_arrows_obj: max_arrows must be positive");

  // Largest arrows first (the figure's informative ones).
  std::vector<std::size_t> order(origins.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return norm2(displacements[a]) > norm2(displacements[b]);
  });
  const std::size_t n = std::min<std::size_t>(order.size(),
                                              static_cast<std::size_t>(max_arrows));

  std::ofstream f(path);
  NEURO_REQUIRE(f.good(), "write_arrows_obj: cannot open '" << path << "'");
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3& a = origins[order[i]];
    const Vec3 b = a + displacements[order[i]];
    f << "v " << a.x << ' ' << a.y << ' ' << a.z << '\n';
    f << "v " << b.x << ' ' << b.y << ' ' << b.z << '\n';
  }
  for (std::size_t i = 0; i < n; ++i) {
    f << "l " << 2 * i + 1 << ' ' << 2 * i + 2 << '\n';
  }
  NEURO_REQUIRE(f.good(), "write_arrows_obj: write failed for '" << path << "'");
}

}  // namespace neuro::viz

// Colored-surface and glyph export for Fig. 5-style renderings.
//
// The paper's Fig. 5: a surface rendering where "the color coding indicates
// the magnitude of the deformation at every point on the surface … and the
// blue arrows indicate the magnitude and direction of the deformation".
// PLY carries per-vertex colors natively and loads in standard viewers;
// arrows are exported as OBJ line segments.
#pragma once

#include <string>
#include <vector>

#include "base/vec3.h"
#include "mesh/tri_surface.h"
#include "viz/colormap.h"

namespace neuro::viz {

/// Writes an ASCII PLY of the surface with per-vertex colors from `scalars`
/// mapped through `kind` over [lo, hi] (lo >= hi auto-scales).
void write_ply_colored(const std::string& path, const mesh::TriSurface& surface,
                       const std::vector<double>& scalars,
                       ColormapKind kind = ColormapKind::kMagnitude, double lo = 0.0,
                       double hi = 0.0);

/// Writes displacement arrows (initial → initial+displacement) as OBJ line
/// elements, subsampled to at most `max_arrows` (largest magnitudes first).
void write_arrows_obj(const std::string& path, const std::vector<Vec3>& origins,
                      const std::vector<Vec3>& displacements, int max_arrows = 500);

}  // namespace neuro::viz

# Re-applies the complete label set to every test discovered from one gtest
# executable. gtest_discover_tests flattens a multi-element LABELS value while
# forwarding PROPERTIES through its discovery machinery (observed on CMake
# 3.25: `LABELS "a;b"` arrives as `LABELS a b`, leaving LABELS=a and a
# dangling token), so only the first label survives and `ctest -L b` matches
# nothing. neuro_test() appends this include after the generated
# <name>[1]_tests.cmake; it parses that file's add_test names and restores the
# full list. Inputs: NEURO_LABEL_TESTS_FILE (the generated discovery file),
# NEURO_LABELS (the complete label list).
if(EXISTS "${NEURO_LABEL_TESTS_FILE}")
  file(STRINGS "${NEURO_LABEL_TESTS_FILE}" _neuro_add_lines REGEX "^add_test")
  foreach(_neuro_line IN LISTS _neuro_add_lines)
    if(_neuro_line MATCHES "^add_test\\(\\[=*\\[([^]]+)\\]")
      set_tests_properties("${CMAKE_MATCH_1}" PROPERTIES
                           LABELS "${NEURO_LABELS}")
    endif()
  endforeach()
  unset(_neuro_add_lines)
  unset(_neuro_line)
endif()

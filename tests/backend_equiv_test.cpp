// Backend-equivalence matrix for the solver's three operator backends
// {kCsrReference, kBsr, kMatrixFree} across 1/2/4 ranks, plus the mixed-
// precision iterative-refinement contract and the binary-search entry lookups
// of the assembled backends. Labelled `perf` (sanitizer CI runs this suite)
// and `determinism` (the double-run tests).
//
// Equivalence classes (matrix_free.h file comment):
//   kMatrixFree/kNodePairBlocks under kScalar dispatch == kBsr, bit for bit;
//   every other (policy, dispatch) combination is tolerance-equivalent, and
//   each is individually deterministic run to run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "base/check.h"
#include "base/rng.h"
#include "fem/assembly.h"
#include "fem/boundary.h"
#include "fem/deformation_solver.h"
#include "fem/matrix_free.h"
#include "mesh/mesher.h"
#include "mesh/tri_surface.h"
#include "par/communicator.h"
#include "solver/bsr_matrix.h"
#include "solver/dist_matrix.h"
#include "solver/simd/dispatch.h"

namespace neuro::fem {
namespace {

/// Small solid block phantom; enough nodes to split across 4 ranks.
const mesh::TetMesh& shared_mesh() {
  static const mesh::TetMesh mesh = [] {
    ImageL labels({9, 9, 9}, 1, {2.0, 2.0, 2.0});
    mesh::MesherConfig cfg;
    cfg.stride = 2;
    return mesh::mesh_labeled_volume(labels, cfg);
  }();
  return mesh;
}

/// Nonuniform displacement on the whole boundary (definite system with a
/// nontrivial solution).
std::vector<std::pair<mesh::NodeId, Vec3>> boundary_displacements() {
  const auto surface = mesh::extract_boundary_surface(shared_mesh(), {1});
  std::vector<std::pair<mesh::NodeId, Vec3>> bcs;
  for (const auto n : surface.mesh_nodes) {
    const Vec3& p = shared_mesh().nodes[n];
    bcs.emplace_back(n, Vec3{0.02 * p.z, -0.01 * p.x, 0.015 * p.y});
  }
  return bcs;
}

DeformationSolveOptions base_options(int nranks) {
  DeformationSolveOptions opt;
  opt.nranks = nranks;
  opt.solver.rtol = 1e-10;
  return opt;
}

DeformationResult run(const DeformationSolveOptions& opt,
                      const MaterialMap& materials = MaterialMap::homogeneous_brain()) {
  return solve_deformation(shared_mesh(), materials, boundary_displacements(),
                           opt);
}

/// Bitwise displacement-field comparison (memcmp via the raw doubles).
void expect_bit_identical(const DeformationResult& a, const DeformationResult& b) {
  ASSERT_EQ(a.node_displacements.size(), b.node_displacements.size());
  for (std::size_t i = 0; i < a.node_displacements.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a.node_displacements[i], &b.node_displacements[i],
                          sizeof(Vec3)),
              0)
        << "node " << i;
  }
}

void expect_close(const DeformationResult& a, const DeformationResult& b,
                  double tol) {
  ASSERT_EQ(a.node_displacements.size(), b.node_displacements.size());
  for (std::size_t i = 0; i < a.node_displacements.size(); ++i) {
    EXPECT_NEAR(norm(a.node_displacements[i] - b.node_displacements[i]), 0.0,
                tol)
        << "node " << i;
  }
}

TEST(BackendEquivTest, MatrixFreeScalarDispatchMatchesBsrBitwise) {
  for (const int P : {1, 2, 4}) {
    auto opt = base_options(P);
    opt.backend = MatrixBackend::kBsr;
    const DeformationResult bsr = run(opt);
    opt.backend = MatrixBackend::kMatrixFree;
    opt.matrix_free_storage = MatrixFreeStorage::kNodePairBlocks;
    opt.simd_dispatch = solver::simd::DispatchTarget::kScalar;
    const DeformationResult mf = run(opt);
    ASSERT_TRUE(bsr.stats.converged) << "P=" << P;
    ASSERT_TRUE(mf.stats.converged) << "P=" << P;
    // Same assembled values, same apply (delegated), same preconditioner:
    // the whole solve replays bit for bit.
    EXPECT_EQ(mf.stats.iterations, bsr.stats.iterations) << "P=" << P;
    EXPECT_EQ(mf.stats.final_residual, bsr.stats.final_residual) << "P=" << P;
    expect_bit_identical(mf, bsr);
  }
}

TEST(BackendEquivTest, MatrixFreeSimdMatchesBsrWithinTolerance) {
  // Under kAuto the node-pair policy streams the compressed symmetric arrays
  // through the best vector ISA; the per-row reductions re-associate, so the
  // contract is tolerance + iterations, not bits. (On a machine with no
  // vector ISA kAuto resolves to kScalar and this tightens to the bitwise
  // case — still a valid pass.)
  for (const int P : {1, 2, 4}) {
    auto opt = base_options(P);
    opt.backend = MatrixBackend::kBsr;
    const DeformationResult bsr = run(opt);
    opt.backend = MatrixBackend::kMatrixFree;
    opt.matrix_free_storage = MatrixFreeStorage::kNodePairBlocks;
    opt.simd_dispatch = solver::simd::DispatchTarget::kAuto;
    const DeformationResult mf = run(opt);
    ASSERT_TRUE(bsr.stats.converged) << "P=" << P;
    ASSERT_TRUE(mf.stats.converged) << "P=" << P;
    // Identical assembled values feed identical preconditioners, so the
    // convergence path may differ only by kernel rounding: iterations ±1.
    EXPECT_LE(std::abs(mf.stats.iterations - bsr.stats.iterations), 1)
        << "P=" << P;
    expect_close(mf, bsr, 1e-8);
  }
}

TEST(BackendEquivTest, ElementPoliciesMatchReferenceWithinTolerance) {
  auto opt = base_options(2);
  opt.backend = MatrixBackend::kCsrReference;
  const DeformationResult ref = run(opt);
  ASSERT_TRUE(ref.stats.converged);
  for (const MatrixFreeStorage storage :
       {MatrixFreeStorage::kElementBlocks, MatrixFreeStorage::kOnTheFly}) {
    opt.backend = MatrixBackend::kMatrixFree;
    opt.matrix_free_storage = storage;
    const DeformationResult mf = run(opt);
    ASSERT_TRUE(mf.stats.converged)
        << matrix_free_storage_name(storage);
    expect_close(mf, ref, 1e-8);
  }
}

TEST(BackendEquivTest, DoubleRunIsBitIdenticalPerConfiguration) {
  // Determinism within a configuration: whatever the dispatch target and
  // storage policy, running the same solve twice must replay bit for bit
  // (fixed traversal order, owned-rows-only accumulation).
  for (const MatrixFreeStorage storage :
       {MatrixFreeStorage::kNodePairBlocks, MatrixFreeStorage::kElementBlocks,
        MatrixFreeStorage::kOnTheFly}) {
    auto opt = base_options(4);
    opt.backend = MatrixBackend::kMatrixFree;
    opt.matrix_free_storage = storage;
    const DeformationResult first = run(opt);
    const DeformationResult second = run(opt);
    ASSERT_TRUE(first.stats.converged) << matrix_free_storage_name(storage);
    EXPECT_EQ(first.stats.iterations, second.stats.iterations);
    EXPECT_EQ(first.stats.final_residual, second.stats.final_residual);
    expect_bit_identical(first, second);
  }
}

TEST(BackendEquivTest, MixedPrecisionReachesDoubleToleranceNearIncompressible) {
  // Near-incompressible phantom (nu = 0.49): the stiffest configuration the
  // pipeline meets, and the one where float factors lose the most digits —
  // the iterative-refinement outer loop must still land on the double
  // tolerance because convergence is judged on the double residual.
  const MaterialMap stiff{Material{3000.0, 0.49}};
  for (const int P : {1, 2, 4}) {
    auto opt = base_options(P);
    opt.preconditioner = solver::PreconditionerKind::kAdditiveSchwarzIlu0;
    opt.backend = MatrixBackend::kMatrixFree;
    opt.matrix_free_storage = MatrixFreeStorage::kNodePairBlocks;
    const DeformationResult dbl = run(opt, stiff);
    opt.mixed_precision = true;
    const DeformationResult mixed = run(opt, stiff);
    ASSERT_TRUE(dbl.stats.converged) << "P=" << P;
    ASSERT_TRUE(mixed.stats.converged) << "P=" << P;
    // Same tolerance: the refinement loop reports the true double residual.
    EXPECT_LE(mixed.stats.final_residual,
              opt.solver.rtol * mixed.stats.initial_residual * (1 + 1e-12))
        << "P=" << P;
    expect_close(mixed, dbl, 1e-8);
  }
}

TEST(BackendEquivTest, MixedPrecisionIterationsStayWithinOneOfDouble) {
  // The float factors perturb only the preconditioner (same sparsity, same
  // elimination order), so on the standard phantom the aggregate inner
  // iteration count stays within ±1 of the all-double solve.
  auto opt = base_options(2);
  opt.preconditioner = solver::PreconditionerKind::kAdditiveSchwarzIlu0;
  opt.backend = MatrixBackend::kMatrixFree;
  opt.matrix_free_storage = MatrixFreeStorage::kNodePairBlocks;
  opt.simd_dispatch = solver::simd::DispatchTarget::kScalar;
  const DeformationResult dbl = run(opt);
  opt.mixed_precision = true;
  const DeformationResult mixed = run(opt);
  ASSERT_TRUE(dbl.stats.converged);
  ASSERT_TRUE(mixed.stats.converged);
  EXPECT_LE(std::abs(mixed.stats.iterations - dbl.stats.iterations), 1);
  expect_close(mixed, dbl, 1e-8);
}

// --- Binary-search entry lookups (dist_matrix / bsr_matrix) -----------------

TEST(EntryLookupTest, CsrValueAtHitMissAndFixedRows) {
  const auto part = mesh::partition_node_balanced(shared_mesh().num_nodes(), 2);
  const MeshTopology topo = MeshTopology::build(shared_mesh());
  const DirichletSet bc =
      DirichletSet::from_node_displacements(boundary_displacements());
  par::run_spmd(2, [&](par::Communicator& comm) {
    LocalSystem csr = assemble_elasticity(
        shared_mesh(), topo, MaterialMap::homogeneous_brain(), part, {}, comm);
    apply_dirichlet(csr, bc, comm);
    const auto [rb, re] = csr.A.range();
    for (solver::GlobalRow row = rb; row < re; ++row) {
      const auto r = static_cast<std::size_t>(row - rb);
      const int pb = csr.A.row_ptr()[r];
      const int pe = csr.A.row_ptr()[r + 1];
      ASSERT_GT(pe, pb);
      // Hits: first, middle and last stored column of the row.
      for (const int p : {pb, (pb + pe) / 2, pe - 1}) {
        const solver::GlobalRow col{
            csr.A.global_cols()[static_cast<std::size_t>(p)]};
        EXPECT_EQ(csr.A.value_at(row, col),
                  csr.A.values()[static_cast<std::size_t>(p)]);
        EXPECT_EQ(csr.A.find_entry(row, col),
                  &csr.A.values()[static_cast<std::size_t>(p)]);
      }
      // Miss: a column past every stored one in this row.
      const solver::GlobalRow beyond{csr.A.global_size() + 5};
      EXPECT_EQ(csr.A.value_at(row, beyond), 0.0);
      EXPECT_EQ(csr.A.find_entry(row, beyond), nullptr);
    }
    // A fixed row is an identity row: unit diagonal, zero off-diagonals.
    const solver::GlobalRow fixed_row{row_of(bc.dofs().front()).value()};
    if (csr.A.range().contains(fixed_row)) {
      EXPECT_EQ(csr.A.value_at(fixed_row, fixed_row), 1.0);
    }
  });
}

TEST(EntryLookupTest, BsrValueAtMatchesCsrIncludingOffDiagonalBlocks) {
  const auto part = mesh::partition_node_balanced(shared_mesh().num_nodes(), 2);
  const MeshTopology topo = MeshTopology::build(shared_mesh());
  par::run_spmd(2, [&](par::Communicator& comm) {
    const LocalSystem csr = assemble_elasticity(
        shared_mesh(), topo, MaterialMap::homogeneous_brain(), part, {}, comm);
    LocalBsrSystem bsr = assemble_elasticity_bsr(
        shared_mesh(), topo, MaterialMap::homogeneous_brain(), part, {}, comm);
    const auto [rb, re] = bsr.A.range();
    Rng rng(20260808u + static_cast<std::uint64_t>(comm.rank()));
    for (int trial = 0; trial < 200; ++trial) {
      const solver::GlobalRow row =
          rb + static_cast<int>(rng.uniform_index(
                   static_cast<std::uint64_t>(re - rb)));
      const solver::GlobalRow col{static_cast<int>(rng.uniform_index(
          static_cast<std::uint64_t>(bsr.A.global_size())))};
      // The blocked lookup must agree with the scalar reference everywhere:
      // stored scalar (hit), stored block with zero scalar, absent block.
      EXPECT_EQ(bsr.A.value_at(row, col), csr.A.value_at(row, col))
          << "row " << row << " col " << col;
      double* entry = bsr.A.find_entry(row, col);
      if (entry != nullptr) {
        EXPECT_EQ(*entry, csr.A.value_at(row, col));
      } else {
        // Absent block -> the scalar reference holds no nonzero there either.
        EXPECT_EQ(csr.A.value_at(row, col), 0.0)
            << "row " << row << " col " << col;
      }
    }
    // Off-diagonal block hit: pick the second block of the first block row.
    const auto& bcols = bsr.A.block_cols();
    if (bsr.A.block_row_ptr()[solver::LocalBlockRow{0} + 1] > 1) {
      const int cbase = bcols[1].value() * 3;
      for (int ca = 0; ca < 3; ++ca) {
        for (int cb = 0; cb < 3; ++cb) {
          const solver::GlobalRow row = rb + ca;
          const solver::GlobalRow col{cbase + cb};
          EXPECT_EQ(bsr.A.value_at(row, col), csr.A.value_at(row, col));
        }
      }
    }
  });
}

TEST(EntryLookupTest, MatrixFreeValueAtMatchesAssembledBackends) {
  const auto part = mesh::partition_node_balanced(shared_mesh().num_nodes(), 2);
  const MeshTopology topo = MeshTopology::build(shared_mesh());
  const DirichletSet bc =
      DirichletSet::from_node_displacements(boundary_displacements());
  par::run_spmd(2, [&](par::Communicator& comm) {
    LocalBsrSystem bsr = assemble_elasticity_bsr(
        shared_mesh(), topo, MaterialMap::homogeneous_brain(), part, {}, comm);
    LocalMatrixFreeSystem mf = assemble_elasticity_matrix_free(
        shared_mesh(), topo, MaterialMap::homogeneous_brain(), part, {}, comm,
        MatrixFreeStorage::kElementBlocks,
        solver::simd::DispatchTarget::kScalar);
    apply_dirichlet(bsr, bc, comm);
    mf.A.apply_dirichlet(bc, mf.b, comm);
    // Same substitution, but the element path groups the fixed-column moves
    // per tet (the assembled path subtracts per stored entry) — equal to
    // rounding, not bits.
    ASSERT_EQ(mf.b.local().size(), bsr.b.local().size());
    for (std::size_t i = 0; i < mf.b.local().size(); ++i) {
      ASSERT_NEAR(mf.b.local()[i], bsr.b.local()[i], 1e-9) << "entry " << i;
    }
    const auto [rb, re] = bsr.A.range();
    Rng rng(7u + static_cast<std::uint64_t>(comm.rank()));
    for (int trial = 0; trial < 200; ++trial) {
      const solver::GlobalRow row =
          rb + static_cast<int>(rng.uniform_index(
                   static_cast<std::uint64_t>(re - rb)));
      const solver::GlobalRow col{static_cast<int>(rng.uniform_index(
          static_cast<std::uint64_t>(bsr.A.global_size())))};
      // Mini-assembly on demand re-associates the element sum, so the match
      // is to rounding, not bits.
      EXPECT_NEAR(mf.A.value_at(row, col), bsr.A.value_at(row, col), 1e-9)
          << "row " << row << " col " << col;
    }
  });
}

}  // namespace
}  // namespace neuro::fem

// Unit tests for the base module: small linear algebra, RNG, checks.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "base/check.h"
#include "base/mat3.h"
#include "base/rng.h"
#include "base/vec3.h"

namespace neuro {
namespace {

TEST(Vec3Test, ArithmeticAndAccessors) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(2.0 * a, Vec3(2, 4, 6));
  EXPECT_EQ(a * 2.0, Vec3(2, 4, 6));
  EXPECT_EQ(a / 2.0, Vec3(0.5, 1, 1.5));
  EXPECT_EQ(-a, Vec3(-1, -2, -3));
  EXPECT_DOUBLE_EQ(a[0], 1);
  EXPECT_DOUBLE_EQ(a[1], 2);
  EXPECT_DOUBLE_EQ(a[2], 3);
}

TEST(Vec3Test, DotCrossNorm) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_EQ(cross(Vec3(1, 0, 0), Vec3(0, 1, 0)), Vec3(0, 0, 1));
  // Cross product is perpendicular to both inputs.
  const Vec3 c = cross(a, b);
  EXPECT_NEAR(dot(c, a), 0.0, 1e-12);
  EXPECT_NEAR(dot(c, b), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(norm(Vec3(3, 4, 0)), 5.0);
  EXPECT_DOUBLE_EQ(norm2(Vec3(3, 4, 0)), 25.0);
}

TEST(Vec3Test, NormalizedHandlesZero) {
  EXPECT_EQ(normalized(Vec3{}), Vec3{});
  const Vec3 n = normalized(Vec3{0, 0, 5});
  EXPECT_NEAR(norm(n), 1.0, 1e-14);
}

TEST(AabbTest, ExpandAndContains) {
  Aabb box;
  EXPECT_FALSE(box.valid());
  box.expand({1, 2, 3});
  box.expand({-1, 5, 0});
  EXPECT_TRUE(box.valid());
  EXPECT_TRUE(box.contains({0, 3, 1}));
  EXPECT_FALSE(box.contains({2, 3, 1}));
}

TEST(Mat3Test, IdentityAndMultiply) {
  const Mat3 I = Mat3::identity();
  const Vec3 v{1, 2, 3};
  EXPECT_EQ(I * v, v);
  Mat3 a = Mat3::identity();
  a(0, 1) = 2.0;
  const Mat3 b = a * a;
  EXPECT_DOUBLE_EQ(b(0, 1), 4.0);
}

TEST(Mat3Test, DeterminantAndInverse) {
  Mat3 a;
  a.m = {2, 0, 0, 0, 3, 0, 0, 0, 4};
  EXPECT_DOUBLE_EQ(a.det(), 24.0);
  const Mat3 ai = a.inverse();
  const Mat3 prod = a * ai;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(Mat3Test, InverseOfSingularThrows) {
  Mat3 z;  // all zeros
  EXPECT_THROW(static_cast<void>(z.inverse()), CheckError);
}

TEST(Mat3Test, RotationIsOrthonormal) {
  const Mat3 R = rotation_zyx(0.3, -0.5, 1.1);
  const Mat3 RtR = R.transposed() * R;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(RtR(r, c), r == c ? 1.0 : 0.0, 1e-12);
    }
  }
  EXPECT_NEAR(R.det(), 1.0, 1e-12);
}

TEST(Mat3Test, RotationPreservesLength) {
  const Mat3 R = rotation_zyx(0.1, 0.2, 0.3);
  const Vec3 v{1, -2, 0.5};
  EXPECT_NEAR(norm(R * v), norm(v), 1e-12);
}

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next_u64() == b.next_u64();
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIndexCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_index(8);
    EXPECT_LT(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  Rng rng(99);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng base(5);
  Rng a = base.split(0);
  Rng b = base.split(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next_u64() == b.next_u64();
  }
  EXPECT_LT(same, 2);
}

TEST(CheckTest, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(NEURO_CHECK(1 + 1 == 2));
}

TEST(CheckTest, FailingCheckThrowsWithContext) {
  try {
    NEURO_CHECK_MSG(false, "context " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("context 42"), std::string::npos);
    EXPECT_NE(what.find("base_test.cpp"), std::string::npos);
  }
}

}  // namespace
}  // namespace neuro

// Tests for the comparison baselines: inverse-distance surface interpolation
// and demons image-based registration.
#include <gtest/gtest.h>

#include <cmath>

#include "base/check.h"
#include "fem/baseline_interpolation.h"
#include "fem/deformation_solver.h"
#include "mesh/mesher.h"
#include "mesh/tri_surface.h"
#include "reg/demons.h"

namespace neuro {
namespace {

mesh::TetMesh block(int n = 7, double spacing = 2.0) {
  ImageL labels({n, n, n}, 1, {spacing, spacing, spacing});
  mesh::MesherConfig cfg;
  cfg.stride = 2;
  return mesh::mesh_labeled_volume(labels, cfg);
}

TEST(IdwBaselineTest, PrescribedNodesKeptExactly) {
  const mesh::TetMesh mesh = block();
  const auto surface = mesh::extract_boundary_surface(mesh, {1});
  std::vector<std::pair<mesh::NodeId, Vec3>> bcs;
  for (const auto n : surface.mesh_nodes) {
    bcs.emplace_back(n, Vec3{0.1 * n.value(), -0.2, 0.0});
  }
  const auto u = fem::interpolate_surface_displacements(mesh, bcs);
  for (const auto& [node, v] : bcs) {
    EXPECT_EQ(norm(u[node.index()] - v), 0.0);
  }
}

TEST(IdwBaselineTest, ConstantBoundaryGivesConstantInterior) {
  const mesh::TetMesh mesh = block();
  const auto surface = mesh::extract_boundary_surface(mesh, {1});
  const Vec3 shift{1.5, -0.5, 2.0};
  std::vector<std::pair<mesh::NodeId, Vec3>> bcs;
  for (const auto n : surface.mesh_nodes) bcs.emplace_back(n, shift);
  const auto u = fem::interpolate_surface_displacements(mesh, bcs);
  for (const auto& v : u) {
    EXPECT_NEAR(norm(v - shift), 0.0, 1e-12);
  }
}

TEST(IdwBaselineTest, InteriorIsConvexCombination) {
  // Every interior value lies inside the bounding box of the boundary values.
  const mesh::TetMesh mesh = block();
  const auto surface = mesh::extract_boundary_surface(mesh, {1});
  std::vector<std::pair<mesh::NodeId, Vec3>> bcs;
  for (const auto n : surface.mesh_nodes) {
    const Vec3& p = mesh.nodes[n];
    bcs.emplace_back(n, Vec3{0.0, 0.0, -0.1 * p.z});
  }
  double lo = 1e300, hi = -1e300;
  for (const auto& [node, v] : bcs) {
    lo = std::min(lo, v.z);
    hi = std::max(hi, v.z);
  }
  const auto u = fem::interpolate_surface_displacements(mesh, bcs);
  for (const auto& v : u) {
    EXPECT_GE(v.z, lo - 1e-12);
    EXPECT_LE(v.z, hi + 1e-12);
  }
}

TEST(IdwBaselineTest, FemBeatsIdwOnLinearField) {
  // For an affine boundary field the FEM reproduces the interior exactly
  // (patch test); IDW does not. This is the bench's claim in miniature.
  const mesh::TetMesh mesh = block(7, 2.0);
  const auto surface = mesh::extract_boundary_surface(mesh, {1});
  auto affine = [](const Vec3& p) {
    return Vec3{0.02 * p.x + 0.01 * p.y, -0.015 * p.z, 0.01 * p.x};
  };
  std::vector<std::pair<mesh::NodeId, Vec3>> bcs;
  for (const auto n : surface.mesh_nodes) {
    bcs.emplace_back(n, affine(mesh.nodes[n]));
  }
  const auto idw = fem::interpolate_surface_displacements(mesh, bcs);
  fem::DeformationSolveOptions opt;
  opt.solver.rtol = 1e-11;
  const auto femr =
      fem::solve_deformation(mesh, fem::MaterialMap::homogeneous_brain(), bcs, opt);
  double idw_err = 0, fem_err = 0;
  for (const mesh::NodeId n : mesh.node_ids()) {
    const Vec3 truth = affine(mesh.nodes[n]);
    idw_err = std::max(idw_err, norm(idw[n.index()] - truth));
    fem_err = std::max(fem_err, norm(femr.node_displacements[n.index()] - truth));
  }
  EXPECT_LT(fem_err, 1e-5);
  EXPECT_GT(idw_err, 10.0 * fem_err);
}

TEST(IdwBaselineTest, RejectsEmptyPrescription) {
  const mesh::TetMesh mesh = block();
  EXPECT_THROW(fem::interpolate_surface_displacements(mesh, {}), CheckError);
}

/// Smooth blob image for demons tests.
ImageF blob_image(int n, Vec3 center, double amplitude = 100.0) {
  ImageF img({n, n, n}, 10.0f, {2, 2, 2});
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        const Vec3 p = img.voxel_to_physical(i, j, k);
        img(i, j, k) += static_cast<float>(
            amplitude * std::exp(-norm2(p - center) / (2.0 * 80.0)));
      }
    }
  }
  return img;
}

TEST(DemonsTest, RecoversSmallTranslation) {
  const int n = 24;
  const Vec3 c{24, 24, 24};
  const ImageF fixed = blob_image(n, c);
  const ImageF moving = blob_image(n, c - Vec3{3.0, 0, 0});  // blob shifted -x
  // Backward field should map fixed points to moving space: v ≈ (-3, 0, 0).
  reg::DemonsConfig cfg;
  cfg.iterations = 40;
  cfg.pyramid_levels = 1;
  const auto result = reg::demons_registration(fixed, moving, cfg);
  EXPECT_LT(result.final_mad, 0.5 * result.initial_mad);
  // Field direction at the blob boundary (where the gradient lives).
  const Vec3 v = result.backward_field(
      static_cast<int>(c.x / 2) + 4, static_cast<int>(c.y / 2), static_cast<int>(c.z / 2));
  EXPECT_LT(v.x, -1.0);
  EXPECT_LT(std::abs(v.y), 1.0);
}

TEST(DemonsTest, IdenticalImagesStayPut) {
  const ImageF img = blob_image(16, {16, 16, 16});
  reg::DemonsConfig cfg;
  cfg.iterations = 10;
  cfg.pyramid_levels = 1;
  const auto result = reg::demons_registration(img, img, cfg);
  double max_disp = 0;
  for (const auto& v : result.backward_field.data()) {
    max_disp = std::max(max_disp, norm(v));
  }
  EXPECT_LT(max_disp, 0.05);
}

TEST(DemonsTest, PyramidConvergesFasterOnLargeShift) {
  const int n = 32;
  const Vec3 c{32, 32, 32};
  const ImageF fixed = blob_image(n, c);
  const ImageF moving = blob_image(n, c - Vec3{8.0, 0, 0});
  reg::DemonsConfig flat;
  flat.iterations = 15;
  flat.pyramid_levels = 1;
  reg::DemonsConfig pyr = flat;
  pyr.pyramid_levels = 3;
  const auto r_flat = reg::demons_registration(fixed, moving, flat);
  const auto r_pyr = reg::demons_registration(fixed, moving, pyr);
  EXPECT_LT(r_pyr.final_mad, r_flat.final_mad);
}

TEST(DemonsTest, RejectsMismatchedGrids) {
  EXPECT_THROW(
      reg::demons_registration(ImageF({8, 8, 8}), ImageF({9, 9, 9})),
      CheckError);
}

}  // namespace
}  // namespace neuro

// Equivalence tests for the block-CSR backend (solver/bsr_matrix.h) against
// the scalar CSR reference: native assembly vs. regrouping, mat-vec to the
// bit across rank counts (the kernels share one association order), classical
// vs. modified Gram-Schmidt GMRES, and fused vs. unfused Krylov reductions.
// Labelled `perf` so the sanitizer CI jobs can run exactly this suite.
#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "base/check.h"
#include "base/rng.h"
#include "fem/assembly.h"
#include "fem/boundary.h"
#include "fem/deformation_solver.h"
#include "mesh/mesher.h"
#include "mesh/tri_surface.h"
#include "par/communicator.h"
#include "solver/bsr_matrix.h"
#include "solver/krylov.h"
#include "solver/preconditioner.h"

namespace neuro::fem {
namespace {

/// Small solid block phantom; enough nodes to split across 8 ranks.
const mesh::TetMesh& shared_mesh() {
  static const mesh::TetMesh mesh = [] {
    ImageL labels({9, 9, 9}, 1, {2.0, 2.0, 2.0});
    mesh::MesherConfig cfg;
    cfg.stride = 2;
    return mesh::mesh_labeled_volume(labels, cfg);
  }();
  return mesh;
}

const MeshTopology& shared_topo() {
  static const MeshTopology topo = MeshTopology::build(shared_mesh());
  return topo;
}

/// Prescribes a nonuniform displacement on the whole boundary (definite
/// system with a nontrivial solution).
DirichletSet boundary_bc() {
  const auto surface = mesh::extract_boundary_surface(shared_mesh(), {1});
  std::vector<std::pair<mesh::NodeId, Vec3>> bcs;
  for (const auto n : surface.mesh_nodes) {
    const Vec3& p = shared_mesh().nodes[n];
    bcs.emplace_back(n, Vec3{0.02 * p.z, -0.01 * p.x, 0.015 * p.y});
  }
  return DirichletSet::from_node_displacements(bcs);
}

/// Deterministic rank-independent test vector (seeded per global row).
solver::DistVector random_vector(int global_size, solver::RowRange range,
                                 std::uint64_t seed) {
  solver::DistVector x(global_size, range);
  for (const solver::GlobalRow g : range) {
    Rng rng(seed + static_cast<std::uint64_t>(g.value()));
    x[g] = rng.uniform(-1.0, 1.0);
  }
  return x;
}

TEST(BsrAssemblyTest, NativeMatchesRegroupedCsr) {
  for (const int P : {1, 2, 4}) {
    const auto part = mesh::partition_node_balanced(shared_mesh().num_nodes(), P);
    par::run_spmd(P, [&](par::Communicator& comm) {
      const LocalSystem csr =
          assemble_elasticity(shared_mesh(), shared_topo(),
                              MaterialMap::homogeneous_brain(), part, {}, comm);
      const LocalBsrSystem bsr = assemble_elasticity_bsr(
          shared_mesh(), shared_topo(), MaterialMap::homogeneous_brain(), part,
          {}, comm);
      const solver::DistBsrMatrix regrouped =
          solver::DistBsrMatrix::from_csr(csr.A);
      // Identical structure and bit-identical values: the native assembly
      // accumulates element contributions in the same order as the scalar one.
      ASSERT_EQ(bsr.A.block_row_ptr().raw(), regrouped.block_row_ptr().raw());
      ASSERT_EQ(bsr.A.block_cols(), regrouped.block_cols());
      ASSERT_EQ(bsr.A.values(), regrouped.values());
      ASSERT_EQ(bsr.b.local(), csr.b.local());
    });
  }
}

TEST(BsrMatvecTest, MatchesCsrToTheBitAcrossRanks) {
  for (const int P : {1, 2, 4, 8}) {
    const auto part = mesh::partition_node_balanced(shared_mesh().num_nodes(), P);
    const DirichletSet bc = boundary_bc();
    par::run_spmd(P, [&](par::Communicator& comm) {
      LocalSystem csr =
          assemble_elasticity(shared_mesh(), shared_topo(),
                              MaterialMap::homogeneous_brain(), part, {}, comm);
      LocalBsrSystem bsr = assemble_elasticity_bsr(
          shared_mesh(), shared_topo(), MaterialMap::homogeneous_brain(), part,
          {}, comm);
      apply_dirichlet(csr, bc, comm);
      apply_dirichlet(bsr, bc, comm);
      ASSERT_EQ(bsr.b.local(), csr.b.local());

      csr.A.drop_zeros();
      csr.A.setup_ghosts(comm);
      bsr.A.drop_zero_blocks();
      bsr.A.setup_ghosts(comm);

      const solver::DistVector x =
          random_vector(csr.b.global_size(), csr.b.range(), 99);
      solver::DistVector y_csr(csr.b.global_size(), csr.b.range());
      solver::DistVector y_bsr(csr.b.global_size(), csr.b.range());
      csr.A.apply(x, y_csr, comm);
      bsr.A.apply(x, y_bsr, comm);
      for (const solver::GlobalRow g : csr.b.range()) {
        // Same association order per scalar row -> identical doubles (the
        // blocked kernel only adds exact zeros the CSR path dropped).
        ASSERT_DOUBLE_EQ(y_bsr[g], y_csr[g]) << "P=" << P << " row " << g;
      }
    });
  }
}

TEST(BsrMatvecTest, InteriorBoundarySplitCoversAllRows) {
  const int P = 4;
  const auto part = mesh::partition_node_balanced(shared_mesh().num_nodes(), P);
  par::run_spmd(P, [&](par::Communicator& comm) {
    LocalBsrSystem bsr = assemble_elasticity_bsr(
        shared_mesh(), shared_topo(), MaterialMap::homogeneous_brain(), part,
        {}, comm);
    bsr.A.setup_ghosts(comm);
    const auto& interior = bsr.A.interior_rows();
    const auto& boundary = bsr.A.boundary_rows();
    ASSERT_EQ(static_cast<int>(interior.size() + boundary.size()),
              bsr.A.local_block_rows());
    std::vector<char> seen(static_cast<std::size_t>(bsr.A.local_block_rows()), 0);
    for (const auto br : interior) seen[br.index()] += 1;
    for (const auto br : boundary) seen[br.index()] += 1;
    for (const char c : seen) EXPECT_EQ(c, 1);  // disjoint and complete
    // Boundary rows exist on every rank of a connected partitioned mesh.
    if (comm.size() > 1) {
      EXPECT_FALSE(boundary.empty());
    }
    // Boundary rows genuinely reference ghost slots.
    const int nb = bsr.A.local_block_rows();
    for (const auto br : boundary) {
      bool touches_ghost = false;
      for (std::int32_t p = bsr.A.block_row_ptr()[br];
           p < bsr.A.block_row_ptr()[br + 1]; ++p) {
        const auto col = bsr.A.block_cols()[static_cast<std::size_t>(p)];
        if (!bsr.A.block_range().contains(col)) touches_ghost = true;
      }
      EXPECT_TRUE(touches_ghost) << "nb=" << nb;
    }
  });
}

TEST(BsrRoundTripTest, ToCsrReproducesDroppedReferencePattern) {
  const int P = 2;
  const auto part = mesh::partition_node_balanced(shared_mesh().num_nodes(), P);
  const DirichletSet bc = boundary_bc();
  par::run_spmd(P, [&](par::Communicator& comm) {
    LocalSystem csr =
        assemble_elasticity(shared_mesh(), shared_topo(),
                            MaterialMap::homogeneous_brain(), part, {}, comm);
    LocalBsrSystem bsr = assemble_elasticity_bsr(
        shared_mesh(), shared_topo(), MaterialMap::homogeneous_brain(), part,
        {}, comm);
    apply_dirichlet(csr, bc, comm);
    apply_dirichlet(bsr, bc, comm);
    csr.A.drop_zeros();
    bsr.A.drop_zero_blocks();
    const solver::DistCsrMatrix back = bsr.A.to_csr();
    ASSERT_EQ(back.row_ptr(), csr.A.row_ptr());
    ASSERT_EQ(back.global_cols(), csr.A.global_cols());
    ASSERT_EQ(back.values(), csr.A.values());
  });
}

/// Builds the post-BC system pair for the Krylov tests (P ranks) and returns
/// via out-params inside the SPMD region.
template <typename Fn>
void with_solver_system(int P, Fn&& fn) {
  const auto part = mesh::partition_node_balanced(shared_mesh().num_nodes(), P);
  const DirichletSet bc = boundary_bc();
  par::run_spmd(P, [&](par::Communicator& comm) {
    LocalSystem csr =
        assemble_elasticity(shared_mesh(), shared_topo(),
                            MaterialMap::homogeneous_brain(), part, {}, comm);
    apply_dirichlet(csr, bc, comm);
    csr.A.drop_zeros();
    csr.A.setup_ghosts(comm);
    fn(csr, comm);
  });
}

TEST(KrylovBatchingTest, ClassicalGramSchmidtConvergesLikeModified) {
  with_solver_system(2, [](LocalSystem& sys, par::Communicator& comm) {
    const auto M = solver::make_preconditioner(
        solver::PreconditionerKind::kBlockJacobiIlu0, sys.A, comm, 1);
    solver::SolverConfig cfg;
    cfg.rtol = 1e-9;

    solver::DistVector x_mgs(sys.b.global_size(), sys.b.range());
    cfg.gmres_orthogonalization = solver::GramSchmidtKind::kModified;
    const auto mgs = solver::gmres(sys.A, sys.b, x_mgs, *M, cfg, comm);

    solver::DistVector x_cgs(sys.b.global_size(), sys.b.range());
    cfg.gmres_orthogonalization = solver::GramSchmidtKind::kClassical;
    const auto cgs = solver::gmres(sys.A, sys.b, x_cgs, *M, cfg, comm);

    solver::DistVector x_dgks(sys.b.global_size(), sys.b.range());
    cfg.gmres_reorthogonalize = true;
    const auto dgks = solver::gmres(sys.A, sys.b, x_dgks, *M, cfg, comm);

    ASSERT_TRUE(mgs.converged);
    ASSERT_TRUE(cgs.converged);
    ASSERT_TRUE(dgks.converged);
    // Same tolerance reached; batched orthogonalization may differ in
    // rounding but not in convergence behaviour on this well-conditioned
    // system.
    const double target = 1e-9 * mgs.initial_residual;
    EXPECT_LE(solver::true_residual_norm(sys.A, sys.b, x_mgs, comm), 10 * target);
    EXPECT_LE(solver::true_residual_norm(sys.A, sys.b, x_cgs, comm), 10 * target);
    EXPECT_LE(solver::true_residual_norm(sys.A, sys.b, x_dgks, comm), 10 * target);
    // Reorthogonalization can only help (never more iterations than plain
    // CGS + a small slack for tie-breaking).
    EXPECT_LE(dgks.iterations, cgs.iterations + 1);
    // Solutions agree to solver tolerance.
    for (const solver::GlobalRow g : sys.b.range()) {
      EXPECT_NEAR(x_cgs[g], x_mgs[g], 1e-7);
      EXPECT_NEAR(x_dgks[g], x_mgs[g], 1e-7);
    }
  });
}

TEST(KrylovBatchingTest, ClassicalUsesOneAllreducePerIterationPlusGuard) {
  with_solver_system(2, [](LocalSystem& sys, par::Communicator& comm) {
    const auto M = solver::make_preconditioner(
        solver::PreconditionerKind::kBlockJacobiIlu0, sys.A, comm, 1);
    solver::SolverConfig cfg;
    cfg.rtol = 1e-9;

    auto rounds_for = [&](solver::GramSchmidtKind kind) {
      cfg.gmres_orthogonalization = kind;
      solver::DistVector x(sys.b.global_size(), sys.b.range());
      comm.work().take();
      const auto stats = solver::gmres(sys.A, sys.b, x, *M, cfg, comm);
      const par::WorkRecord w = comm.work().take();
      EXPECT_TRUE(stats.converged);
      return std::pair<double, int>{w.coll_rounds, stats.iterations};
    };

    const auto [mgs_rounds, mgs_iters] =
        rounds_for(solver::GramSchmidtKind::kModified);
    const auto [cgs_rounds, cgs_iters] =
        rounds_for(solver::GramSchmidtKind::kClassical);
    // MGS: j+2 allreduces in iteration j. CGS: 1, plus the occasional
    // cancellation-guard norm and the per-cycle setup/restart reductions.
    EXPECT_GT(mgs_rounds / std::max(1, mgs_iters), 3.0);
    EXPECT_LE(cgs_rounds / std::max(1, cgs_iters), 3.0);
    EXPECT_LT(cgs_rounds, mgs_rounds);
  });
}

TEST(KrylovBatchingTest, FusedReductionsAreBitIdentical) {
  with_solver_system(2, [](LocalSystem& sys, par::Communicator& comm) {
    const auto M = solver::make_preconditioner(
        solver::PreconditionerKind::kBlockJacobiIlu0, sys.A, comm, 1);
    for (const bool use_cg : {true, false}) {
      solver::SolverConfig cfg;
      cfg.rtol = 1e-9;
      auto solve = [&](bool fused) {
        cfg.fuse_reductions = fused;
        solver::DistVector x(sys.b.global_size(), sys.b.range());
        const auto stats =
            use_cg ? solver::cg(sys.A, sys.b, x, *M, cfg, comm)
                   : solver::bicgstab(sys.A, sys.b, x, *M, cfg, comm);
        EXPECT_TRUE(stats.converged);
        return std::pair<solver::SolveStats, solver::DistVector>{stats,
                                                                 std::move(x)};
      };
      const auto [fused, x_fused] = solve(true);
      const auto [plain, x_plain] = solve(false);
      // Fusing dot/norm pairs into one allreduce reorders nothing: the span
      // reduction sums each component in rank order exactly as the scalar
      // allreduces did. Iteration-for-iteration identical.
      EXPECT_EQ(fused.iterations, plain.iterations) << "cg=" << use_cg;
      EXPECT_EQ(fused.final_residual, plain.final_residual) << "cg=" << use_cg;
      EXPECT_EQ(fused.initial_residual, plain.initial_residual);
      ASSERT_EQ(x_fused.local(), x_plain.local()) << "cg=" << use_cg;
    }
  });
}

TEST(KrylovBatchingTest, FusedKrylovUsesFewerCollectives) {
  with_solver_system(2, [](LocalSystem& sys, par::Communicator& comm) {
    const auto M = solver::make_preconditioner(
        solver::PreconditionerKind::kBlockJacobiIlu0, sys.A, comm, 1);
    for (const bool use_cg : {true, false}) {
      solver::SolverConfig cfg;
      cfg.rtol = 1e-9;
      auto rounds = [&](bool fused) {
        cfg.fuse_reductions = fused;
        solver::DistVector x(sys.b.global_size(), sys.b.range());
        comm.work().take();
        const auto stats = use_cg
                               ? solver::cg(sys.A, sys.b, x, *M, cfg, comm)
                               : solver::bicgstab(sys.A, sys.b, x, *M, cfg, comm);
        EXPECT_TRUE(stats.converged);
        return comm.work().take().coll_rounds;
      };
      EXPECT_LT(rounds(true), rounds(false)) << "cg=" << use_cg;
    }
  });
}

TEST(BsrSolveTest, GmresOnBsrMatchesCsrWithinTolerance) {
  for (const int P : {1, 2, 4}) {
    const auto part = mesh::partition_node_balanced(shared_mesh().num_nodes(), P);
    const DirichletSet bc = boundary_bc();
    par::run_spmd(P, [&](par::Communicator& comm) {
      LocalSystem csr =
          assemble_elasticity(shared_mesh(), shared_topo(),
                              MaterialMap::homogeneous_brain(), part, {}, comm);
      LocalBsrSystem bsr = assemble_elasticity_bsr(
          shared_mesh(), shared_topo(), MaterialMap::homogeneous_brain(), part,
          {}, comm);
      apply_dirichlet(csr, bc, comm);
      apply_dirichlet(bsr, bc, comm);
      csr.A.drop_zeros();
      csr.A.setup_ghosts(comm);
      bsr.A.drop_zero_blocks();
      bsr.A.setup_ghosts(comm);

      solver::SolverConfig cfg;
      cfg.rtol = 1e-10;
      const auto M_csr = solver::make_preconditioner(
          solver::PreconditionerKind::kBlockJacobiIlu0, csr.A, comm, 1);
      const auto M_bsr = solver::make_preconditioner(
          solver::PreconditionerKind::kBlockJacobiIlu0, bsr.A, comm, 1);
      solver::DistVector x_csr(csr.b.global_size(), csr.b.range());
      solver::DistVector x_bsr(csr.b.global_size(), csr.b.range());
      const auto s_csr =
          solver::gmres(csr.A, csr.b, x_csr, *M_csr, cfg, comm);
      const auto s_bsr =
          solver::gmres(bsr.A, bsr.b, x_bsr, *M_bsr, cfg, comm);
      ASSERT_TRUE(s_csr.converged);
      ASSERT_TRUE(s_bsr.converged);
      for (const solver::GlobalRow g : csr.b.range()) {
        EXPECT_NEAR(x_bsr[g], x_csr[g], 1e-8) << "P=" << P;
      }
    });
  }
}

TEST(BsrSolveTest, DeformationBackendMatchesReference) {
  const auto surface = mesh::extract_boundary_surface(shared_mesh(), {1});
  std::vector<std::pair<mesh::NodeId, Vec3>> bcs;
  for (const auto n : surface.mesh_nodes) {
    const Vec3& p = shared_mesh().nodes[n];
    bcs.emplace_back(n, Vec3{0.01 * p.z, 0.0, -0.02 * p.x});
  }
  DeformationSolveOptions opt;
  opt.nranks = 2;
  opt.solver.rtol = 1e-10;
  opt.backend = MatrixBackend::kCsrReference;
  const DeformationResult ref =
      solve_deformation(shared_mesh(), MaterialMap::homogeneous_brain(), bcs, opt);
  opt.backend = MatrixBackend::kBsr;
  const DeformationResult fast =
      solve_deformation(shared_mesh(), MaterialMap::homogeneous_brain(), bcs, opt);
  ASSERT_TRUE(ref.stats.converged);
  ASSERT_TRUE(fast.stats.converged);
  for (std::size_t i = 0; i < ref.node_displacements.size(); ++i) {
    EXPECT_NEAR(norm(fast.node_displacements[i] - ref.node_displacements[i]),
                0.0, 1e-8);
  }
}

}  // namespace
}  // namespace neuro::fem

// compile-fail: IDs from different index spaces never compare, even when the
// underlying integers happen to be equal.
#include "mesh/tet_mesh.h"

namespace neuro {

bool probe() {
#ifdef NEURO_COMPILE_FAIL_CONTROL
  return mesh::NodeId{1} == mesh::NodeId{1};
#else
  return mesh::NodeId{1} == mesh::TetId{1};  // node vs tet: different spaces
#endif
}

}  // namespace neuro

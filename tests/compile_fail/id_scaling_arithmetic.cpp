// compile-fail: IDs support offset arithmetic (id ± int, id − id) but not
// scaling — `3 * node` is the old hand-rolled node→dof expansion, which must
// be written as fem::dof_of(node, axis).
#include "fem/dof.h"

namespace neuro {

fem::DofId probe() {
  const mesh::NodeId n{5};
#ifdef NEURO_COMPILE_FAIL_CONTROL
  return fem::dof_of(n, 2);
#else
  return fem::DofId{3 * n + 2};  // hand-rolled dof expansion
#endif
}

}  // namespace neuro

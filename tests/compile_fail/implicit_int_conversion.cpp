// compile-fail: strong IDs are only explicitly constructible from integers —
// an int silently becoming a NodeId is exactly the bug class this family
// exists to stop.
#include "mesh/tet_mesh.h"

namespace neuro {

mesh::NodeId probe() {
#ifdef NEURO_COMPILE_FAIL_CONTROL
  mesh::NodeId n{3};
  return n;
#else
  mesh::NodeId n = 3;  // implicit int → id conversion
  return n;
#endif
}

}  // namespace neuro

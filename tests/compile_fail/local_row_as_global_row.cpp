// compile-fail: LocalRow (offset into one rank's owned block) is not a
// GlobalRow (row of the assembled system); converting needs local_of /
// global_of with the owning range.
#include "solver/dist_vector.h"

namespace neuro {

solver::LocalRow probe() {
  const solver::RowRange range = solver::row_range(solver::GlobalRow{6}, 4);
#ifdef NEURO_COMPILE_FAIL_CONTROL
  return local_of(range, solver::GlobalRow{7});
#else
  return local_of(range, solver::LocalRow{1});  // local offset is not global
#endif
}

}  // namespace neuro

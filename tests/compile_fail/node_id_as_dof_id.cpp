// compile-fail: a NodeId is not a DofId — the 3x node→dof expansion must go
// through fem::dof_of(node, axis), never an implicit reinterpretation.
#include "fem/boundary.h"

namespace neuro {

bool probe() {
  fem::DirichletSet bc;
  bc.add(fem::dof_of(mesh::NodeId{1}, 0), 1.0);
  bc.finalize();
#ifdef NEURO_COMPILE_FAIL_CONTROL
  return bc.contains(fem::DofId{3});
#else
  return bc.contains(mesh::NodeId{1});  // node used where a dof is required
#endif
}

}  // namespace neuro

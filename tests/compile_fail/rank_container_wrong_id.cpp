// compile-fail: Partition::ranges maps Rank → owned node range; indexing it
// with a NodeId inverts the mapping and must not compile.
#include "mesh/partition.h"

namespace neuro {

base::IdRange<mesh::NodeId> probe(const mesh::Partition& partition) {
#ifdef NEURO_COMPILE_FAIL_CONTROL
  return partition.ranges[Rank{0}];
#else
  return partition.ranges[mesh::NodeId{0}];  // node id used as a rank
#endif
}

}  // namespace neuro

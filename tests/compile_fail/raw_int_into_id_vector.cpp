// compile-fail: IdVector's operator[] only accepts its own ID type; raw
// integer indexing must go through the grep-able .raw() escape hatch.
#include "base/strong_id.h"

namespace neuro {

using ProbeId = base::StrongId<struct ProbeIdTag>;

double probe() {
  base::IdVector<ProbeId, double> values;
  values.push_back(4.0);
#ifdef NEURO_COMPILE_FAIL_CONTROL
  return values[ProbeId{0}];
#else
  return values[0];  // raw int index into a typed container
#endif
}

}  // namespace neuro

// compile-fail: TetMesh::tets is indexed by TetId; a NodeId — however
// plausible the integer — is a different index space.
#include "mesh/tet_mesh.h"

namespace neuro {

mesh::NodeId probe(const mesh::TetMesh& mesh) {
#ifdef NEURO_COMPILE_FAIL_CONTROL
  return mesh.tets[mesh::TetId{0}][0];
#else
  return mesh.tets[mesh::NodeId{0}][0];  // node id indexing the tet array
#endif
}

}  // namespace neuro

// compile-fail (thread-safety): base::CondVar::wait() releases and
// reacquires the paired mutex, so the caller must hold it — waiting on an
// unlocked mutex (a classic lost-wakeup/UB bug with the raw std primitives)
// is rejected at compile time.
#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace neuro {

class Latch {
 public:
  void wait_ready() {
#ifdef NEURO_COMPILE_FAIL_CONTROL
    base::MutexLock lock(mutex_);
    while (!ready_) cv_.wait(mutex_);
#else
    cv_.wait(mutex_);  // wait() requires mutex_ held; nothing holds it
#endif
  }

  void open() {
    {
      base::MutexLock lock(mutex_);
      ready_ = true;
    }
    cv_.notify_all();
  }

 private:
  base::Mutex mutex_;
  base::CondVar cv_;
  bool ready_ NEURO_GUARDED_BY(mutex_) = false;
};

void probe() {
  Latch latch;
  latch.open();
  latch.wait_ready();
}

}  // namespace neuro

// compile-fail (error discipline): base::Outcome<T> is class-level
// [[nodiscard]] — discarding one discards both the value and the error it
// might carry, so -Werror=unused-result rejects the bare-call statement.
#include "base/numerics_annotations.h"
#include "base/status.h"

namespace neuro {

base::Outcome<int> count_nodes() { return base::Outcome<int>(7); }

int probe() {
#ifdef NEURO_COMPILE_FAIL_CONTROL
  const base::Outcome<int> nodes = count_nodes();
  NEURO_STATUS_IGNORED(count_nodes(), "compile-fail control: intentional drop");
  return nodes.ok() ? nodes.value() : -1;
#else
  count_nodes();  // returned Outcome<int> silently discarded
  return 0;
#endif
}

}  // namespace neuro

// compile-fail (error discipline): base::Status is class-level [[nodiscard]],
// so dropping a returned Status on the floor — a swallowed deadline violation
// or solver fault — is rejected under -Werror=unused-result. The sanctioned
// escape hatch is NEURO_STATUS_IGNORED(expr, reason), which the control
// variant proves compiles cleanly.
#include "base/numerics_annotations.h"
#include "base/status.h"

namespace neuro {

base::Status poll_budget() { return base::Status(); }

int probe() {
#ifdef NEURO_COMPILE_FAIL_CONTROL
  const base::Status st = poll_budget();
  NEURO_STATUS_IGNORED(poll_budget(), "compile-fail control: intentional drop");
  return st.ok() ? 0 : 1;
#else
  poll_budget();  // returned Status silently discarded
  return 0;
#endif
}

}  // namespace neuro

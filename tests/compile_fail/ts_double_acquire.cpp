// compile-fail (thread-safety): acquiring a mutex the thread already holds
// is a guaranteed self-deadlock with std::mutex; the analysis rejects the
// second acquisition at compile time.
#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace neuro {

class Queue {
 public:
  void push(int v) {
    base::MutexLock lock(mutex_);
#ifndef NEURO_COMPILE_FAIL_CONTROL
    base::MutexLock again(mutex_);  // mutex_ is already held: self-deadlock
#endif
    head_ = v;
  }

 private:
  base::Mutex mutex_;
  int head_ NEURO_GUARDED_BY(mutex_) = 0;
};

void probe() {
  Queue queue;
  queue.push(7);
}

}  // namespace neuro

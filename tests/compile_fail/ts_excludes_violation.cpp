// compile-fail (thread-safety): a NEURO_EXCLUDES(mutex_) function acquires
// the mutex itself (e.g. Team::barrier, MetricsRegistry::counter); calling
// it while already holding that mutex is a self-deadlock, caught statically.
#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace neuro {

class Widget {
 public:
  void refresh() NEURO_EXCLUDES(mutex_) {
    base::MutexLock lock(mutex_);
    ++generation_;
  }

  void tick() {
    base::MutexLock lock(mutex_);
    ++generation_;
#ifndef NEURO_COMPILE_FAIL_CONTROL
    refresh();  // refresh() re-acquires mutex_, which this scope holds
#endif
  }

 private:
  base::Mutex mutex_;
  int generation_ NEURO_GUARDED_BY(mutex_) = 0;
};

void probe() {
  Widget widget;
  widget.tick();
  widget.refresh();
}

}  // namespace neuro

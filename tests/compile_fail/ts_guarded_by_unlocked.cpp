// compile-fail (thread-safety): a NEURO_GUARDED_BY member may only be
// touched while its mutex is held — an unlocked read is a data race waiting
// for the right interleaving, and the capability analysis rejects it.
#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace neuro {

class Registry {
 public:
  int get() {
#ifdef NEURO_COMPILE_FAIL_CONTROL
    base::MutexLock lock(mutex_);
    return value_;
#else
    return value_;  // guarded member read with no lock held
#endif
  }

 private:
  base::Mutex mutex_;
  int value_ NEURO_GUARDED_BY(mutex_) = 0;
};

int probe() {
  Registry registry;
  return registry.get();
}

}  // namespace neuro

// compile-fail (thread-safety): a NEURO_REQUIRES(mutex_) helper (the
// `_locked` convention, e.g. Team::fail_locked) asserts that its caller
// already holds the lock; calling one from an unlocked context is rejected.
#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace neuro {

class Tally {
 public:
  void add(int v) {
#ifdef NEURO_COMPILE_FAIL_CONTROL
    base::MutexLock lock(mutex_);
    add_locked(v);
#else
    add_locked(v);  // REQUIRES(mutex_) helper called with no lock held
#endif
  }

 private:
  void add_locked(int v) NEURO_REQUIRES(mutex_) { total_ += v; }

  base::Mutex mutex_;
  int total_ NEURO_GUARDED_BY(mutex_) = 0;
};

void probe() {
  Tally tally;
  tally.add(1);
}

}  // namespace neuro

// compile-fail (thread-safety): unlock() releases the mutex capability, so
// calling it on a mutex the thread does not hold is undefined behavior with
// std::mutex — rejected at compile time.
#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace neuro {

class Gate {
 public:
  void pass() {
#ifdef NEURO_COMPILE_FAIL_CONTROL
    mutex_.lock();
    ++crossings_;
    mutex_.unlock();
#else
    mutex_.unlock();  // releasing a mutex that was never acquired
#endif
  }

 private:
  base::Mutex mutex_;
  int crossings_ NEURO_GUARDED_BY(mutex_) = 0;
};

void probe() {
  Gate gate;
  gate.pass();
}

}  // namespace neuro

// Tests for connected components, surface (Neumann) loads, and the
// deformation-field Jacobian diagnostics.
#include <gtest/gtest.h>

#include <cmath>

#include "base/check.h"
#include "core/deformation_field.h"
#include "fem/deformation_solver.h"
#include "fem/loads.h"
#include "image/components.h"
#include "mesh/mesher.h"
#include "mesh/tri_surface.h"

namespace neuro {
namespace {

TEST(ComponentsTest, EmptyMaskHasNone) {
  ImageL mask({4, 4, 4}, 0);
  EXPECT_EQ(count_components(mask), 0);
  const auto labels = connected_components(mask);
  for (const auto v : labels.data()) EXPECT_EQ(v, 0);
}

TEST(ComponentsTest, SingleBlob) {
  ImageL mask({6, 6, 6}, 0);
  for (int k = 1; k < 4; ++k)
    for (int j = 1; j < 4; ++j)
      for (int i = 1; i < 4; ++i) mask(i, j, k) = 1;
  EXPECT_EQ(count_components(mask), 1);
}

TEST(ComponentsTest, DiagonalTouchingIsSeparate) {
  // 6-connectivity: diagonal neighbours belong to different components.
  ImageL mask({4, 4, 4}, 0);
  mask.at(0, 0, 0) = 1;
  mask.at(1, 1, 0) = 1;
  EXPECT_EQ(count_components(mask), 2);
  mask.at(1, 0, 0) = 1;  // bridge them face-to-face
  EXPECT_EQ(count_components(mask), 1);
}

TEST(ComponentsTest, IdsOrderedBySize) {
  ImageL mask({10, 4, 4}, 0);
  // Big blob (6 voxels) and small blob (2 voxels), separated.
  for (int i = 0; i < 6; ++i) mask(i, 0, 0) = 1;
  mask(8, 0, 0) = mask(9, 0, 0) = 1;
  std::vector<std::size_t> sizes;
  const auto labels = connected_components(mask, &sizes);
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 6u);
  EXPECT_EQ(sizes[1], 2u);
  EXPECT_EQ(labels.at(0, 0, 0), 1);
  EXPECT_EQ(labels.at(9, 0, 0), 2);
}

TEST(ComponentsTest, KeepLargestDropsTheRest) {
  ImageL mask({10, 4, 4}, 0);
  for (int i = 0; i < 6; ++i) mask(i, 0, 0) = 3;  // arbitrary non-zero value
  mask(8, 0, 0) = 3;
  const ImageL cleaned = keep_largest_component(mask);
  EXPECT_EQ(cleaned.at(0, 0, 0), 3);  // original value preserved
  EXPECT_EQ(cleaned.at(8, 0, 0), 0);
}

TEST(ComponentsTest, WrapAroundRowsDoNotConnect) {
  // Voxel (last, j) and (0, j+1) are adjacent in memory but not in space.
  ImageL mask({4, 4, 1}, 0);
  mask.at(3, 0, 0) = 1;
  mask.at(0, 1, 0) = 1;
  EXPECT_EQ(count_components(mask), 2);
}

mesh::TriSurface block_surface() {
  ImageL labels({5, 5, 5}, 1, {2, 2, 2});
  mesh::MesherConfig cfg;
  cfg.stride = 2;
  const mesh::TetMesh mesh = mesh::mesh_labeled_volume(labels, cfg);
  static mesh::TetMesh kept;  // keep the mesh alive for surface node refs
  kept = mesh;
  return mesh::extract_boundary_surface(kept, {1});
}

TEST(SurfaceLoadsTest, TractionTotalEqualsAreaTimesTraction) {
  const mesh::TriSurface surface = block_surface();
  const Vec3 t{0.0, 0.0, -2.5};
  const auto loads = fem::traction_loads(surface, t);
  Vec3 total{};
  for (const auto& [node, f] : loads) total += f;
  const double area = mesh::surface_area(surface);
  EXPECT_NEAR(total.z, area * t.z, 1e-9);
  EXPECT_NEAR(total.x, 0.0, 1e-9);
}

TEST(SurfaceLoadsTest, PressureOnClosedSurfaceSumsToZero) {
  // ∮ p n dA = 0 on a closed surface: the net pressure force vanishes.
  const mesh::TriSurface surface = block_surface();
  const auto loads = fem::pressure_loads(surface, 7.0);
  Vec3 total{};
  for (const auto& [node, f] : loads) total += f;
  EXPECT_NEAR(norm(total), 0.0, 1e-9);
  // But individual nodes are loaded inward.
  double sum_mag = 0;
  for (const auto& [node, f] : loads) sum_mag += norm(f);
  EXPECT_GT(sum_mag, 1.0);
}

TEST(SurfaceLoadsTest, MergeSumsDuplicates) {
  std::vector<std::pair<mesh::NodeId, Vec3>> loads{{mesh::NodeId{3}, {1, 0, 0}},
                                                   {mesh::NodeId{3}, {2, 0, 0}},
                                                   {mesh::NodeId{5}, {0, 1, 0}}};
  const auto merged = fem::merge_loads(loads);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_DOUBLE_EQ(merged[0].second.x, 3.0);
}

TEST(SurfaceLoadsTest, RejectsFreeStandingSurface) {
  mesh::TriSurface s;
  s.vertices = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  using mesh::VertId;
  s.triangles = {{VertId{0}, VertId{1}, VertId{2}}};
  EXPECT_THROW(fem::traction_loads(s, {1, 0, 0}), CheckError);
}

TEST(NodalLoadSolveTest, TractionDeflectsFreeFace) {
  // Clamp the bottom of a block, pull the top face upward with a traction:
  // the top must deflect upward, the bottom stay put.
  ImageL labels({5, 5, 5}, 1, {2, 2, 2});
  mesh::MesherConfig cfg;
  cfg.stride = 2;
  const mesh::TetMesh mesh = mesh::mesh_labeled_volume(labels, cfg);
  const auto surface = mesh::extract_boundary_surface(mesh, {1});

  // Top patch (z = 8) as a sub-surface for loading.
  mesh::TriSurface top = surface;
  top.triangles.clear();
  for (const auto& tri : surface.triangles) {
    bool on_top = true;
    for (const mesh::VertId v : tri) {
      on_top = on_top && surface.vertices[v].z > 7.9;
    }
    if (on_top) top.triangles.push_back(tri);
  }
  ASSERT_GT(top.num_triangles(), 0);

  std::vector<std::pair<mesh::NodeId, Vec3>> clamps;
  for (const auto n : surface.mesh_nodes) {
    if (mesh.nodes[n].z < 0.1) clamps.emplace_back(n, Vec3{});
  }
  fem::DeformationSolveOptions opt;
  opt.nodal_loads = fem::traction_loads(top, {0, 0, 5.0});
  opt.solver.rtol = 1e-9;
  const auto result = solve_deformation(
      mesh, fem::MaterialMap(fem::Material{100.0, 0.3}), clamps, opt);
  EXPECT_TRUE(result.stats.converged);

  double top_uz = -1e9, bottom_uz = 0;
  for (const mesh::NodeId n : mesh.node_ids()) {
    const double z = mesh.nodes[n].z;
    const double uz = result.node_displacements[n.index()].z;
    if (z > 7.9) top_uz = std::max(top_uz, uz);
    if (z < 0.1) bottom_uz = std::max(bottom_uz, std::abs(uz));
  }
  EXPECT_GT(top_uz, 0.01);
  EXPECT_NEAR(bottom_uz, 0.0, 1e-9);
}

TEST(JacobianTest, ZeroFieldIsIdentity) {
  const ImageV zero({6, 6, 6});
  const ImageF jac = core::jacobian_determinant(zero);
  for (const float v : jac.data()) EXPECT_NEAR(v, 1.0f, 1e-6);
  EXPECT_EQ(core::count_folded_voxels(zero), 0u);
}

TEST(JacobianTest, UniformScalingHasAnalyticDeterminant) {
  // u = 0.1 * (p - p0): φ = p0 + 1.1 (p - p0) ⇒ det = 1.1³.
  ImageV field({10, 10, 10}, Vec3{}, {2, 2, 2});
  for (int k = 0; k < 10; ++k) {
    for (int j = 0; j < 10; ++j) {
      for (int i = 0; i < 10; ++i) {
        field(i, j, k) = 0.1 * field.voxel_to_physical(i, j, k);
      }
    }
  }
  const ImageF jac = core::jacobian_determinant(field);
  EXPECT_NEAR(jac.at(5, 5, 5), std::pow(1.1, 3.0), 1e-4);
}

TEST(JacobianTest, FoldingDetected) {
  // A reflection along x: u_x = -2x ⇒ φ_x = -x, det < 0 in the interior.
  ImageV field({8, 8, 8});
  for (int k = 0; k < 8; ++k) {
    for (int j = 0; j < 8; ++j) {
      for (int i = 0; i < 8; ++i) {
        field(i, j, k) = Vec3{-2.0 * i, 0.0, 0.0};
      }
    }
  }
  EXPECT_GT(core::count_folded_voxels(field), 100u);
}

TEST(JacobianTest, PhysicalCompressionBelowOne) {
  // Downward squeeze u_z = -0.2 z: det = 0.8 everywhere.
  ImageV field({8, 8, 8});
  for (int k = 0; k < 8; ++k) {
    for (int j = 0; j < 8; ++j) {
      for (int i = 0; i < 8; ++i) {
        field(i, j, k) = Vec3{0.0, 0.0, -0.2 * k};
      }
    }
  }
  const ImageF jac = core::jacobian_determinant(field);
  EXPECT_NEAR(jac.at(4, 4, 4), 0.8, 1e-6);
  EXPECT_EQ(core::count_folded_voxels(field), 0u);
}

}  // namespace
}  // namespace neuro

// Tests for deformation-field rasterization, inversion, extension, warping
// and the field statistics used by the evaluation module.
#include <gtest/gtest.h>

#include <cmath>

#include "base/check.h"
#include "core/deformation_field.h"
#include "mesh/mesher.h"

namespace neuro::core {
namespace {

mesh::TetMesh block_mesh(int n = 9, double spacing = 1.0, int stride = 2) {
  ImageL labels({n, n, n}, 1, {spacing, spacing, spacing});
  mesh::MesherConfig cfg;
  cfg.stride = stride;
  return mesh::mesh_labeled_volume(labels, cfg);
}

TEST(RasterizeTest, LinearNodalFieldIsExactInside) {
  // Linear interpolation over linear tets reproduces affine fields exactly.
  const mesh::TetMesh mesh = block_mesh();
  auto affine = [](const Vec3& p) {
    return Vec3{0.1 * p.x - 0.05 * p.y, 0.2 * p.z, 0.03 * p.x + 0.01 * p.z};
  };
  std::vector<Vec3> u(static_cast<std::size_t>(mesh.num_nodes()));
  for (const mesh::NodeId n : mesh.node_ids()) {
    u[n.index()] = affine(mesh.nodes[n]);
  }
  const ImageF grid({9, 9, 9});
  ImageL support;
  const ImageV field = rasterize_displacements(mesh, u, grid, &support);
  for (int k = 0; k < 9; ++k) {
    for (int j = 0; j < 9; ++j) {
      for (int i = 0; i < 9; ++i) {
        if (i > 8 || j > 8 || k > 8) continue;
        ASSERT_EQ(support(i, j, k), 1) << i << ',' << j << ',' << k;
        EXPECT_NEAR(norm(field(i, j, k) - affine(Vec3(i, j, k))), 0.0, 1e-9);
      }
    }
  }
}

TEST(RasterizeTest, OutsideMeshIsZeroAndUnsupported) {
  const mesh::TetMesh mesh = block_mesh(5, 1.0, 2);  // occupies [0,4]^3
  std::vector<Vec3> u(static_cast<std::size_t>(mesh.num_nodes()), Vec3{1, 1, 1});
  const ImageF grid({12, 12, 12});
  ImageL support;
  const ImageV field = rasterize_displacements(mesh, u, grid, &support);
  EXPECT_EQ(support(10, 10, 10), 0);
  EXPECT_EQ(norm(field(10, 10, 10)), 0.0);
  EXPECT_EQ(support(2, 2, 2), 1);
}

TEST(RasterizeTest, RejectsWrongCount) {
  const mesh::TetMesh mesh = block_mesh();
  const ImageF grid({9, 9, 9});
  std::vector<Vec3> u(3);
  EXPECT_THROW(rasterize_displacements(mesh, u, grid), CheckError);
}

TEST(InvertTest, InvertsSmoothField) {
  // Smooth analytic field with max displacement ~2 voxels; the fixed-point
  // inverse must satisfy |u(y + v(y)) + v(y)| ≈ 0.
  ImageV forward({20, 20, 20});
  for (int k = 0; k < 20; ++k) {
    for (int j = 0; j < 20; ++j) {
      for (int i = 0; i < 20; ++i) {
        const double w = std::exp(-0.02 * (norm2(Vec3(i - 10, j - 10, k - 10))));
        forward(i, j, k) = Vec3{2.0 * w, -1.5 * w, 1.0 * w};
      }
    }
  }
  const ImageV inverse = invert_displacement_field(forward, 20);
  for (int k = 4; k < 16; ++k) {
    for (int j = 4; j < 16; ++j) {
      for (int i = 4; i < 16; ++i) {
        const Vec3 y{static_cast<double>(i), static_cast<double>(j),
                     static_cast<double>(k)};
        const Vec3 v = inverse(i, j, k);
        const Vec3 u = sample_trilinear_vec(forward, y + v);
        EXPECT_LT(norm(u + v), 0.08) << i << ',' << j << ',' << k;
      }
    }
  }
}

TEST(InvertTest, ZeroFieldInvertsToZero) {
  ImageV zero({6, 6, 6});
  const ImageV inv = invert_displacement_field(zero);
  for (const auto& v : inv.data()) EXPECT_EQ(norm(v), 0.0);
}

TEST(ExtendTest, PropagatesWithDecay) {
  ImageV field({9, 9, 9});
  ImageL support({9, 9, 9}, 0);
  field(4, 4, 4) = Vec3{10, 0, 0};
  support(4, 4, 4) = 1;
  extend_displacement_field(field, support, 2, 0.5);
  EXPECT_NEAR(field(5, 4, 4).x, 5.0, 1e-12);   // one pass: 10 * 0.5
  EXPECT_NEAR(field(6, 4, 4).x, 2.5, 1e-12);   // two passes
  EXPECT_EQ(norm(field(8, 4, 4)), 0.0);        // beyond reach
  // Support voxels untouched.
  EXPECT_NEAR(field(4, 4, 4).x, 10.0, 1e-12);
}

TEST(ExtendTest, ZeroPassesIsNoop) {
  ImageV field({5, 5, 5});
  ImageL support({5, 5, 5}, 0);
  field(2, 2, 2) = Vec3{1, 2, 3};
  support(2, 2, 2) = 1;
  extend_displacement_field(field, support, 0);
  EXPECT_EQ(norm(field(3, 2, 2)), 0.0);
}

TEST(WarpTest, ZeroFieldIsIdentity) {
  ImageF img({8, 8, 8});
  for (std::size_t i = 0; i < img.size(); ++i) {
    img.data()[i] = static_cast<float>(i % 97);
  }
  const ImageV zero({8, 8, 8});
  const ImageF out = warp_backward(img, zero);
  for (std::size_t i = 0; i < img.size(); ++i) {
    EXPECT_NEAR(out.data()[i], img.data()[i], 1e-4);
  }
}

TEST(WarpTest, ConstantShiftMovesContent) {
  ImageF img({10, 10, 10}, 0.0f);
  img.at(6, 5, 5) = 100.0f;
  ImageV field({10, 10, 10}, Vec3{1, 0, 0});  // out(y) = img(y + x̂)
  const ImageF out = warp_backward(img, field);
  EXPECT_NEAR(out.at(5, 5, 5), 100.0f, 1e-3);
  EXPECT_NEAR(out.at(6, 5, 5), 0.0f, 1e-3);
}

TEST(WarpTest, LabelsNearestNeighbour) {
  ImageL labels({8, 8, 8}, 0);
  labels.at(4, 4, 4) = 7;
  ImageV field({8, 8, 8}, Vec3{0.4, 0, 0});
  const ImageL out = warp_backward_labels(labels, field);
  EXPECT_EQ(out.at(4, 4, 4), 7);  // rounds back
  ImageV big({8, 8, 8}, Vec3{1.0, 0, 0});
  EXPECT_EQ(warp_backward_labels(labels, big).at(3, 4, 4), 7);
}

TEST(WarpTest, OutsideSourceGetsFillValue) {
  ImageF img({6, 6, 6}, 50.0f);
  ImageV field({6, 6, 6}, Vec3{100, 0, 0});
  const ImageF out = warp_backward(img, field, -1.0f);
  for (const float v : out.data()) EXPECT_FLOAT_EQ(v, -1.0f);
}

TEST(FieldStatsTest, MeanMaxRms) {
  ImageV f({2, 1, 1});
  f(0, 0, 0) = Vec3{3, 0, 0};
  f(1, 0, 0) = Vec3{0, 4, 0};
  const FieldStats s = field_stats(f);
  EXPECT_DOUBLE_EQ(s.mean_mm, 3.5);
  EXPECT_DOUBLE_EQ(s.max_mm, 4.0);
  EXPECT_DOUBLE_EQ(s.rms_mm, std::sqrt((9.0 + 16.0) / 2.0));
}

TEST(FieldStatsTest, MaskRestricts) {
  ImageV f({2, 1, 1});
  f(0, 0, 0) = Vec3{3, 0, 0};
  f(1, 0, 0) = Vec3{0, 400, 0};
  ImageL mask({2, 1, 1}, 0);
  mask.at(0, 0, 0) = 1;
  const FieldStats s = field_stats(f, &mask);
  EXPECT_DOUBLE_EQ(s.max_mm, 3.0);
}

TEST(FieldErrorTest, IdenticalFieldsZeroError) {
  ImageV a({3, 3, 3}, Vec3{1, 2, 3});
  const FieldStats s = field_error(a, a);
  EXPECT_DOUBLE_EQ(s.mean_mm, 0.0);
  EXPECT_DOUBLE_EQ(s.max_mm, 0.0);
}

TEST(FieldErrorTest, MeasuresPointwiseDifference) {
  ImageV a({2, 1, 1}, Vec3{1, 0, 0});
  ImageV b({2, 1, 1}, Vec3{1, 0, 0});
  b(1, 0, 0) = Vec3{1, 2, 0};
  const FieldStats s = field_error(a, b);
  EXPECT_DOUBLE_EQ(s.max_mm, 2.0);
  EXPECT_DOUBLE_EQ(s.mean_mm, 1.0);
}

TEST(RoundTripTest, RasterizeInvertWarpRecoversImage) {
  // End-to-end consistency: push an image through a mesh deformation and its
  // inverse; interior voxels must come back (bandlimited by interpolation).
  const mesh::TetMesh mesh = block_mesh(13, 1.0, 3);
  // Smooth small deformation at the nodes.
  std::vector<Vec3> u(static_cast<std::size_t>(mesh.num_nodes()));
  for (const mesh::NodeId n : mesh.node_ids()) {
    const Vec3& p = mesh.nodes[n];
    const double w = std::sin(0.3 * p.x) * std::sin(0.3 * p.y);
    u[n.index()] = Vec3{0.8 * w, -0.5 * w, 0.0};
  }
  ImageF img({13, 13, 13});
  for (int k = 0; k < 13; ++k)
    for (int j = 0; j < 13; ++j)
      for (int i = 0; i < 13; ++i)
        img(i, j, k) = static_cast<float>(std::sin(0.5 * i) + std::cos(0.4 * j) + k);

  ImageL support;
  const ImageV forward = rasterize_displacements(mesh, u, img, &support);
  const ImageV backward = invert_displacement_field(forward, 15);
  const ImageF warped = warp_backward(img, backward);
  // warped(y) = img(y + v(y)); re-warp with the forward field to undo.
  const ImageF back = warp_backward(warped, forward);
  double worst = 0;
  for (int k = 3; k < 10; ++k) {
    for (int j = 3; j < 10; ++j) {
      for (int i = 3; i < 10; ++i) {
        worst = std::max(worst,
                         std::abs(static_cast<double>(back(i, j, k)) - img(i, j, k)));
      }
    }
  }
  EXPECT_LT(worst, 0.15);
}

}  // namespace
}  // namespace neuro::core
